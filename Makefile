# Convenience targets; everything is plain go commands underneath.

.PHONY: build test race lint fuzz bench bench-gate baseline tables verify-tables

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# simlint (vet-tool mode) + netcheck battery on one suite member.
lint:
	go build -o bin/simlint ./cmd/simlint
	go vet -vettool=bin/simlint ./...
	go run ./cmd/csim -suite s1494 -check

# Differential fuzzing: replay the fixed corpus, then let the native
# fuzzer search for disagreeing seeds for 30s (raise -fuzztime at will).
fuzz:
	go test ./internal/integration/ -run Fuzz -count=1
	go test ./internal/integration/ -fuzz=FuzzDifferential -fuzztime=30s

# Full benchmark suite -> BENCH_<timestamp>.json (several minutes).
bench:
	go run ./cmd/bench -suite full

# What CI runs: quick suite against the checked-in baseline.
bench-gate:
	go run ./cmd/bench -suite quick -baseline baselines/bench-quick.json

# Refresh the checked-in quick-suite baseline (run on a quiet machine).
baseline:
	go run ./cmd/bench -suite quick -out baselines/bench-quick.json

# Regenerate the committed tables artifact (slow: full circuit lists).
tables:
	go run ./cmd/tables > tables_output.txt

# Drift check: regenerate and diff with volatile CPU/MEM cells masked.
verify-tables:
	go run ./cmd/tables -diff tables_output.txt

# Run the fault-simulation service locally (see README "Serving").
.PHONY: serve serve-load
serve:
	go run ./cmd/csimd -addr :8416

# Drive a running csimd with the CI smoke load (serve in another shell).
serve-load:
	go run ./cmd/csimload -addr http://127.0.0.1:8416 \
	    -clients 32 -jobs 2 -circuit s5378 -random 100 -seed 1 \
	    -expect-detections 4505 -min-cache-hit 0.9
