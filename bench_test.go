// Benchmarks regenerating the paper's tables. Each benchmark runs one
// table cell (circuit × engine) as a testing.B workload; cmd/tables prints
// the complete tables with the full circuit lists.
//
// Run everything:         go test -bench=. -benchmem
// One table:              go test -bench=Table3
// Full-size Table 3 row:  go test -bench=Table3Large -benchtime=1x
package faultsim_test

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// benchEngines are the four measured configurations of Tables 3-5.
var benchEngines = []harness.Engine{
	harness.CsimV, harness.CsimM, harness.CsimMV, harness.PROOFS,
}

func deterministic(b *testing.B, name string) (*faults.Universe, *vectors.Set) {
	b.Helper()
	u, err := harness.StuckUniverse(name)
	if err != nil {
		b.Fatal(err)
	}
	vs, err := harness.DeterministicSet(name)
	if err != nil {
		b.Fatal(err)
	}
	return u, vs
}

func runCell(b *testing.B, eng harness.Engine, u *faults.Universe, vs *vectors.Set) {
	b.Helper()
	var last harness.Measurement
	for i := 0; i < b.N; i++ {
		m, err := harness.Run(eng, u, vs)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.ReportMetric(last.FltCvg(), "cvg%")
	b.ReportMetric(float64(last.MemBytes)/(1<<20), "structMB")
	b.ReportMetric(float64(vs.Len()), "ptns")
}

// BenchmarkTable2Stats measures universe construction and statistics — the
// fixed costs behind Table 2.
func BenchmarkTable2Stats(b *testing.B) {
	for _, name := range []string{"s298", "s1494", "s5378"} {
		b.Run(name, func(b *testing.B) {
			c, err := harness.Circuit(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				u := faults.StuckCollapsed(c)
				_ = u.NumFaults()
				_ = c.Stats()
			}
		})
	}
}

// BenchmarkTable3 reproduces the deterministic-pattern comparison cells on
// small and medium circuits.
func BenchmarkTable3(b *testing.B) {
	for _, name := range []string{"s298", "s444", "s526", "s1238", "s1494"} {
		u, vs := deterministic(b, name)
		for _, eng := range benchEngines {
			b.Run(fmt.Sprintf("%s/%s", name, eng), func(b *testing.B) {
				runCell(b, eng, u, vs)
			})
		}
	}
}

// BenchmarkTable3Large runs the two big Table 3 rows (s5378, s35932).
// Each iteration is a full simulation; use -benchtime=1x.
func BenchmarkTable3Large(b *testing.B) {
	for _, name := range []string{"s5378", "s35932"} {
		u, vs := deterministic(b, name)
		for _, eng := range []harness.Engine{harness.CsimMV, harness.PROOFS} {
			b.Run(fmt.Sprintf("%s/%s", name, eng), func(b *testing.B) {
				runCell(b, eng, u, vs)
			})
		}
	}
}

// BenchmarkTable4 reproduces the higher-coverage deterministic comparison
// (csim-MV vs PROOFS) on the ATPG-covered subset.
func BenchmarkTable4(b *testing.B) {
	for _, name := range []string{"s298", "s386", "s820", "s1488"} {
		u, vs := deterministic(b, name)
		for _, eng := range []harness.Engine{harness.CsimMV, harness.PROOFS} {
			b.Run(fmt.Sprintf("%s/%s", name, eng), func(b *testing.B) {
				runCell(b, eng, u, vs)
			})
		}
	}
}

// BenchmarkTable5 reproduces the random-pattern rows on the largest
// circuit.
func BenchmarkTable5(b *testing.B) {
	for _, n := range []int{100, 200} {
		u, err := harness.StuckUniverse("s35932")
		if err != nil {
			b.Fatal(err)
		}
		vs, err := harness.RandomSet("s35932", n)
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []harness.Engine{harness.CsimMV, harness.PROOFS} {
			b.Run(fmt.Sprintf("%dptns/%s", n, eng), func(b *testing.B) {
				runCell(b, eng, u, vs)
			})
		}
	}
}

// BenchmarkTable6 reproduces the transition-fault simulation rows.
func BenchmarkTable6(b *testing.B) {
	for _, name := range []string{"s298", "s444", "s1238", "s1494"} {
		b.Run(name, func(b *testing.B) {
			u, err := harness.TransitionUniverse(name)
			if err != nil {
				b.Fatal(err)
			}
			vs, err := harness.DeterministicSet(name)
			if err != nil {
				b.Fatal(err)
			}
			runCell(b, harness.CsimMV, u, vs)
		})
	}
}

// BenchmarkParallelScaling measures the fault-partition parallel engine
// (csim-P) at 1/2/4/8 workers against the single-threaded csim-MV
// baseline on the two large stand-ins. Each iteration is a full
// simulation; use -benchtime=1x. Speedup requires real cores: one
// goroutine per fault partition, one shared good-machine trace.
func BenchmarkParallelScaling(b *testing.B) {
	for _, name := range []string{"s5378", "s35932"} {
		u, vs := deterministic(b, name)
		b.Run(name+"/csim-MV", func(b *testing.B) {
			runCell(b, harness.CsimMV, u, vs)
		})
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/csim-P/workers=%d", name, w), func(b *testing.B) {
				var last harness.Measurement
				for i := 0; i < b.N; i++ {
					m, err := harness.RunParallel(u, vs, w)
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				b.ReportMetric(last.FltCvg(), "cvg%")
				b.ReportMetric(float64(last.MemBytes)/(1<<20), "structMB")
				b.ReportMetric(float64(last.Workers), "workers")
			})
		}
	}
}

// BenchmarkVectorScaling measures the vector-partition parallel engine
// (csim-V2) at 1/2/4/8 windows against the single-threaded csim-MV
// baseline on the two large stand-ins. Each iteration is a full
// simulation; use -benchtime=1x. Speedup requires real cores: one
// goroutine per speculative window plus sequential stitch-and-repair; on
// a single core the ladder measures the speculation overhead instead.
func BenchmarkVectorScaling(b *testing.B) {
	for _, name := range []string{"s5378", "s35932"} {
		u, vs := deterministic(b, name)
		b.Run(name+"/csim-MV", func(b *testing.B) {
			runCell(b, harness.CsimMV, u, vs)
		})
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/csim-V2/windows=%d", name, w), func(b *testing.B) {
				var last harness.Measurement
				for i := 0; i < b.N; i++ {
					m, err := harness.RunVectorSharded(u, vs, w)
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				b.ReportMetric(last.FltCvg(), "cvg%")
				b.ReportMetric(float64(last.MemBytes)/(1<<20), "structMB")
				b.ReportMetric(float64(last.Windows), "windows")
			})
		}
	}
}

// BenchmarkCsimMV pins the flagship engine's hot path against the
// observability layer. The disabled case is the regression gate: with no
// observer every probe sits on the nil fast path, so it must cost the
// same as the engine did before the layer existed (the obs package's own
// alloc tests prove the per-op cost is 0 allocs). The observed case
// bounds what full metrics + phase tracing + fault-lifecycle recording
// adds when switched on.
func BenchmarkCsimMV(b *testing.B) {
	u, vs := deterministic(b, "s1238")
	b.Run("disabled", func(b *testing.B) {
		runCell(b, harness.CsimMV, u, vs)
	})
	b.Run("observed", func(b *testing.B) {
		var last harness.Measurement
		for i := 0; i < b.N; i++ {
			reg := obs.NewRegistry()
			ob := &obs.Observer{
				Metrics: reg,
				Tracer:  obs.NewTracer(reg),
				Faults:  obs.NewFaultLog(u.NumFaults(), nil, 0),
			}
			m, err := harness.RunObserved(harness.CsimMV, u, vs, ob)
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		b.ReportMetric(last.FltCvg(), "cvg%")
		b.ReportMetric(float64(last.MemBytes)/(1<<20), "structMB")
	})
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationSplit isolates visible/invisible list splitting:
// csim-V (split) against the plain single-list simulator.
func BenchmarkAblationSplit(b *testing.B) {
	u, vs := deterministic(b, "s1238")
	for _, eng := range []harness.Engine{harness.CsimV, harness.CsimPlain} {
		b.Run(string(eng), func(b *testing.B) { runCell(b, eng, u, vs) })
	}
}

// BenchmarkAblationMacro isolates macro extraction: csim-MV against
// csim-V on a deterministic workload.
func BenchmarkAblationMacro(b *testing.B) {
	u, vs := deterministic(b, "s1238")
	for _, eng := range []harness.Engine{harness.CsimMV, harness.CsimV} {
		b.Run(string(eng), func(b *testing.B) { runCell(b, eng, u, vs) })
	}
}

// BenchmarkAblationDrop isolates event-driven fault dropping against the
// scan-the-whole-circuit alternative the paper rejects.
func BenchmarkAblationDrop(b *testing.B) {
	u, vs := deterministic(b, "s1238")
	for _, eng := range []harness.Engine{harness.CsimMV, harness.CsimEager} {
		b.Run(string(eng), func(b *testing.B) { runCell(b, eng, u, vs) })
	}
}

// BenchmarkAblationReconvergent compares the paper's fanout-free macros
// with the §2.2 reconvergent-region extension.
func BenchmarkAblationReconvergent(b *testing.B) {
	u, vs := deterministic(b, "s1238")
	b.Run("fanoutfree", func(b *testing.B) { runCell(b, harness.CsimMV, u, vs) })
	b.Run("reconvergent", func(b *testing.B) { runCell(b, harness.CsimReconv, u, vs) })
}
