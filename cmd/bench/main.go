// Command bench runs the reproducible benchmark suites and gates against
// baselines (see BENCHMARKS.md).
//
// Usage:
//
//	bench -suite quick                          # run, write BENCH_<ts>.json
//	bench -suite paper -md report.md            # plus a markdown report
//	bench -suite quick -baseline baselines/bench-quick.json
//	                                            # compare; exit 1 on >15% regression
//	bench -suite quick -baseline b.json -threshold 0.10 -absolute
//	bench -list                                 # print suite cells, don't run
//
// With -baseline the markdown output is the comparison (regression)
// report; without it, a plain measurement table. The exit status is the
// CI contract: 0 clean, 1 regression or behavior change vs baseline,
// 2 operational error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		suite     = flag.String("suite", "quick", "suite to run: quick|paper|full")
		trials    = flag.Int("trials", 0, "measured trials per cell (0 = default 3)")
		warmup    = flag.Int("warmup", 0, "warmup runs per cell (0 = default 1, negative = none)")
		out       = flag.String("out", "", "report path (default BENCH_<timestamp>.json in the working directory)")
		md        = flag.String("md", "", "write a markdown report/comparison to this file")
		baseline  = flag.String("baseline", "", "baseline report to compare against")
		threshold = flag.Float64("threshold", 0, "per-cell regression threshold as a fraction (0 = default 0.15)")
		absolute  = flag.Bool("absolute", false, "compare raw wall times instead of calibration-normalized scores")
		list      = flag.Bool("list", false, "list the suite's cells and exit")
		quiet     = flag.Bool("q", false, "suppress per-cell progress output")
	)
	flag.Parse()

	if err := validateSuite(*suite); err != nil {
		fatal(err)
	}
	cells, err := bench.Suite(*suite)
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, c := range cells {
			fmt.Println(c.Key())
		}
		return
	}

	opt := bench.Options{Trials: *trials, Warmup: *warmup}
	if !*quiet {
		opt.Progress = os.Stderr
	}
	now := time.Now()
	rep, err := bench.Run(*suite, cells, opt, now)
	if err != nil {
		fatal(err)
	}

	path := *out
	if path == "" {
		path = bench.Filename(now)
	}
	if err := rep.WriteFile(path); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", path, len(rep.Cells))

	if *baseline == "" {
		if err := emitMarkdown(*md, rep.WriteMarkdown); err != nil {
			fatal(err)
		}
		return
	}

	base, err := bench.ReadReportFile(*baseline)
	if err != nil {
		fatal(err)
	}
	cmp, err := bench.Compare(rep, base, bench.CompareOptions{
		Threshold: *threshold, Absolute: *absolute,
	})
	if err != nil {
		fatal(err)
	}
	if err := emitMarkdown(*md, cmp.WriteMarkdown); err != nil {
		fatal(err)
	}
	if *md == "" {
		// No explicit report target: the comparison goes to stdout so the
		// gate's verdict is always visible.
		if err := cmp.WriteMarkdown(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if err := cmp.Gate(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: GATE FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: gate passed (geo-mean speedup %.3fx over %d cells)\n",
		cmp.GeoMeanSpeedup, len(cmp.Cells))
}

// validateSuite rejects unknown -suite names with a one-line usage hint
// listing the accepted suites.
func validateSuite(name string) error {
	for _, s := range bench.SuiteNames() {
		if s == name {
			return nil
		}
	}
	return fmt.Errorf("unknown suite %q; usage: -suite %s", name, strings.Join(bench.SuiteNames(), "|"))
}

// emitMarkdown writes via render to path when path is non-empty.
func emitMarkdown(path string, render func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench: %v\n", err)
	os.Exit(2)
}
