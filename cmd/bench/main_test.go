package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestValidateSuite pins the -suite validation: every real suite is
// accepted, anything else is rejected with a one-line hint listing them.
func TestValidateSuite(t *testing.T) {
	for _, s := range bench.SuiteNames() {
		if err := validateSuite(s); err != nil {
			t.Errorf("suite %q rejected: %v", s, err)
		}
	}
	err := validateSuite("nosuch")
	if err == nil {
		t.Fatal("unknown suite accepted")
	}
	for _, want := range append([]string{"usage: -suite"}, bench.SuiteNames()...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}
	if strings.Count(err.Error(), "\n") != 0 {
		t.Errorf("hint is not one line: %q", err)
	}
}
