// Command circgen emits synthetic synchronous sequential benchmark
// circuits in .bench format — either a named stand-in from the built-in
// suite or a circuit with custom shape parameters.
//
// Usage:
//
//	circgen -suite s5378 > s5378.bench
//	circgen -pi 16 -po 8 -ff 32 -gates 500 -seed 7 > custom.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/iscas"
	"repro/internal/netlist"
)

func main() {
	var (
		suite = flag.String("suite", "", "emit a built-in suite circuit")
		pis   = flag.Int("pi", 8, "primary inputs")
		pos   = flag.Int("po", 8, "primary outputs")
		ffs   = flag.Int("ff", 16, "flip-flops")
		gates = flag.Int("gates", 200, "combinational gates")
		depth = flag.Int("depth", 0, "combinational depth (0 = size default)")
		seed  = flag.Int64("seed", 1, "generator seed")
		name  = flag.String("name", "synth", "circuit name")
	)
	flag.Parse()

	var c *netlist.Circuit
	var err error
	if *suite != "" {
		c, err = iscas.Get(*suite)
	} else {
		c, err = gen.Generate(gen.Spec{
			Name: *name, PIs: *pis, POs: *pos, DFFs: *ffs,
			Gates: *gates, Depth: *depth, Seed: *seed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}
	if err := netlist.WriteBench(os.Stdout, c); err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}
}
