// Command csim fault-simulates a synchronous sequential circuit.
//
// Usage:
//
//	csim -circuit design.bench -vectors tests.vec [flags]
//	csim -suite s5378 -random 1000 [flags]
//
// The circuit comes either from an ISCAS-89 style .bench file or from the
// built-in benchmark suite; vectors from a file (one line of 0/1/X per
// cycle) or a seeded random generator. The engine is one of the paper's
// variants (csim, csim-V, csim-M, csim-MV), the fault-partition parallel
// engine (csim-P, sharded over -workers goroutines), the PROOFS baseline,
// or the serial oracle.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/serial"
	"repro/internal/vectors"
)

func main() {
	var (
		circuitFile = flag.String("circuit", "", "path to a .bench netlist")
		suite       = flag.String("suite", "", "built-in benchmark name (e.g. s5378)")
		vectorFile  = flag.String("vectors", "", "path to a test vector file")
		randomN     = flag.Int("random", 0, "generate this many random vectors instead")
		seed        = flag.Int64("seed", 1, "random vector seed")
		engine      = flag.String("engine", "csim-MV", "csim | csim-V | csim-M | csim-MV | csim-P | PROOFS | serial")
		workers     = flag.Int("workers", runtime.NumCPU(), "csim-P fault-partition worker count")
		model       = flag.String("faults", "stuck", "fault model: stuck | stuck-all | transition")
		verbose     = flag.Bool("v", false, "list undetected faults")
	)
	flag.Parse()

	c, err := loadCircuit(*circuitFile, *suite)
	if err != nil {
		fatal(err)
	}
	vs, err := loadVectors(c, *vectorFile, *randomN, *seed)
	if err != nil {
		fatal(err)
	}
	u, err := universe(c, *model)
	if err != nil {
		fatal(err)
	}

	var m harness.Measurement
	switch *engine {
	case "serial":
		start := time.Now()
		res := serial.Simulate(u, vs)
		m = harness.Measurement{
			Engine: "serial", Circuit: c.Name, Patterns: vs.Len(),
			Faults: u.NumFaults(), Detected: res.NumDet,
			PotOnly: res.NumPotOnly(), Coverage: res.Coverage(),
			CPU: time.Since(start),
		}
	case string(harness.CsimP):
		m, err = harness.RunParallel(u, vs, *workers)
		if err != nil {
			fatal(err)
		}
	default:
		switch eng := harness.Engine(*engine); eng {
		case harness.CsimPlain, harness.CsimV, harness.CsimM, harness.CsimMV,
			harness.CsimEager, harness.CsimReconv, harness.PROOFS:
			m, err = harness.Run(eng, u, vs)
			if err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("unknown engine %q", *engine))
		}
	}

	st := c.Stats()
	fmt.Printf("circuit:   %s (%d PI, %d PO, %d FF, %d gates)\n",
		c.Name, st.PIs, st.POs, st.DFFs, st.Gates)
	fmt.Printf("engine:    %s\n", m.Engine)
	if m.Workers > 0 {
		fmt.Printf("workers:   %d\n", m.Workers)
	}
	fmt.Printf("faults:    %d (%s)\n", m.Faults, *model)
	fmt.Printf("patterns:  %d\n", m.Patterns)
	fmt.Printf("detected:  %d (%.2f%%), potential-only: %d (%.2f%% incl.)\n",
		m.Detected, m.FltCvg(),
		m.PotOnly, 100*float64(m.Detected+m.PotOnly)/float64(max(1, m.Faults)))
	fmt.Printf("cpu:       %s s\n", harness.Seconds(m.CPU))
	if m.MemBytes > 0 {
		fmt.Printf("mem:       %s MB (fault structures, peak)\n", harness.Meg(m.MemBytes))
	}

	if *verbose {
		res := serial.Simulate(u, vs) // authoritative listing
		fmt.Println("undetected faults:")
		for i, f := range u.Faults {
			if !res.Detected[i] {
				fmt.Printf("  %s\n", f.Name(c))
			}
		}
	}
}

func loadCircuit(file, suite string) (*netlist.Circuit, error) {
	switch {
	case file != "" && suite != "":
		return nil, fmt.Errorf("use -circuit or -suite, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(file, f)
	case suite != "":
		return iscas.Get(suite)
	}
	return nil, fmt.Errorf("one of -circuit or -suite is required")
}

func loadVectors(c *netlist.Circuit, file string, n int, seed int64) (*vectors.Set, error) {
	switch {
	case file != "" && n > 0:
		return nil, fmt.Errorf("use -vectors or -random, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return vectors.Parse(f, len(c.PIs))
	case n > 0:
		return vectors.Random(c, n, seed), nil
	}
	return nil, fmt.Errorf("one of -vectors or -random is required")
}

func universe(c *netlist.Circuit, model string) (*faults.Universe, error) {
	switch model {
	case "stuck":
		return faults.StuckCollapsed(c), nil
	case "stuck-all":
		return faults.StuckAll(c), nil
	case "transition":
		return faults.Transition(c), nil
	}
	return nil, fmt.Errorf("unknown fault model %q", model)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csim:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
