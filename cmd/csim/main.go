// Command csim fault-simulates a synchronous sequential circuit.
//
// Usage:
//
//	csim -circuit design.bench -vectors tests.vec [flags]
//	csim -suite s5378 -random 1000 [flags]
//
// The circuit comes either from an ISCAS-89 style .bench file or from the
// built-in benchmark suite; vectors from a file (one line of 0/1/X per
// cycle) or a seeded random generator. The engine is one of the paper's
// variants (csim, csim-V, csim-M, csim-MV), the fault-partition parallel
// engine (csim-P, sharded over -workers goroutines), the vector-partition
// engine (csim-V2, speculation + repair over -shards windows), the 2-D
// grid (csim-grid, fault shards × vector windows via -shards KxW, or
// scheduler-planned with -shards auto), the compiled bit-parallel engine
// (csim-C, alias "compiled": levelized straight-line code over packed
// 64-vector words), the PROOFS baseline, or the serial oracle.
//
// Observability (see OBSERVABILITY.md): -metrics-out snapshots the metric
// registry to JSON, -trace-out writes a chrome://tracing phase trace,
// -trace-faults records per-fault lifecycle events, and -metrics-addr
// serves expvar + pprof live during (and, with -hold, after) the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/iscas"
	"repro/internal/macro"
	"repro/internal/netcheck"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serial"
	"repro/internal/vectors"
)

func main() {
	var (
		circuitFile = flag.String("circuit", "", "path to a .bench netlist")
		suite       = flag.String("suite", "", "built-in benchmark name (e.g. s5378)")
		vectorFile  = flag.String("vectors", "", "path to a test vector file")
		randomN     = flag.Int("random", 0, "generate this many random vectors instead")
		seed        = flag.Int64("seed", 1, "random vector seed")
		engine      = flag.String("engine", "csim-MV", "csim | csim-V | csim-M | csim-MV | csim-P | csim-V2 | csim-grid | csim-C (alias: compiled) | PROOFS | serial")
		workers     = flag.Int("workers", runtime.NumCPU(), "csim-P fault-partition worker count")
		shards      = flag.String("shards", "auto", "csim-V2 window count (N) or csim-grid shape (KxW fault shards x windows; 'auto' lets the scheduler pick)")
		model       = flag.String("faults", "stuck", "fault model: stuck | stuck-all | transition")
		check       = flag.Bool("check", false, "verify netlist/fault-list/macro-plan invariants and exit without simulating")
		verbose     = flag.Bool("v", false, "list undetected faults")

		metricsOut  = flag.String("metrics-out", "", "write a metrics registry snapshot (JSON) to this file")
		traceOut    = flag.String("trace-out", "", "write a chrome://tracing phase trace (JSON) to this file")
		traceAlloc  = flag.Bool("trace-alloc", false, "sample allocation deltas at phase boundaries (with -trace-out)")
		traceFaults = flag.String("trace-faults", "", "record fault lifecycle events: 'all', fault IDs (3,17), or fault-name substrings")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar + pprof + /metricsz on this address (e.g. :6060)")
		hold        = flag.Bool("hold", false, "with -metrics-addr: keep serving after the run until interrupted")
	)
	flag.Parse()

	// Reject unknown names up front with a hint listing the accepted
	// values, instead of failing deep inside engine setup.
	if err := validateSelections(*engine, *model, *suite); err != nil {
		fatal(err)
	}

	// Any observability flag switches the layer on; without them every
	// probe stays on the nil fast path.
	var ob *obs.Observer
	var reg *obs.Registry
	var tr *obs.Tracer
	if *metricsAddr != "" || *metricsOut != "" || *traceOut != "" || *traceFaults != "" {
		reg = obs.NewRegistry()
		tr = obs.NewTracer(reg)
		tr.AllocDeltas = *traceAlloc
		ob = &obs.Observer{Metrics: reg, Tracer: tr}
	}

	if *metricsAddr != "" {
		obs.PublishExpvar("faultsim", reg)
		bound, stop, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Printf("metrics:   serving http://%s/debug/vars (pprof under /debug/pprof/)\n", bound)
	}

	sp := ob.Span("parse")
	c, err := loadCircuit(*circuitFile, *suite)
	sp.End()
	if err != nil {
		fatal(err)
	}
	// Every loaded circuit passes the structural verifier: malformed input
	// dies here with a diagnostic instead of panicking inside an engine.
	if err := netcheck.AsError(netcheck.Check(c)); err != nil {
		fatal(err)
	}
	if *check {
		if err := runCheck(c, *model); err != nil {
			fatal(err)
		}
		return
	}
	vs, err := loadVectors(c, *vectorFile, *randomN, *seed)
	if err != nil {
		fatal(err)
	}
	sp = ob.Span("collapse")
	u, err := universe(c, *model)
	sp.End()
	if err != nil {
		fatal(err)
	}

	var flog *obs.FaultLog
	if *traceFaults != "" {
		ids, err := parseFaultFilter(*traceFaults, u, c)
		if err != nil {
			fatal(err)
		}
		flog = obs.NewFaultLog(u.NumFaults(), ids, 0)
		ob.Faults = flog
		if *engine == string(harness.PROOFS) || *engine == "serial" {
			fmt.Fprintf(os.Stderr, "csim: warning: -trace-faults records nothing under engine %s (csim engines only)\n", *engine)
		}
	}

	var m harness.Measurement
	switch *engine {
	case "serial":
		start := time.Now()
		ssp := ob.Span("fault-sim")
		res := serial.Simulate(u, vs)
		ssp.End()
		m = harness.Measurement{
			Engine: "serial", Circuit: c.Name, Patterns: vs.Len(),
			Faults: u.NumFaults(), Detected: res.NumDet,
			PotOnly: res.NumPotOnly(), Coverage: res.Coverage(),
			CPU: time.Since(start),
		}
	case string(harness.CsimP):
		if eff := (parallel.Options{Workers: *workers}).EffectiveWorkers(u.NumFaults()); *workers > eff {
			fmt.Fprintf(os.Stderr, "csim: warning: -workers %d exceeds the fault-partition count; running %d workers (one per fault)\n",
				*workers, eff)
		}
		m, err = harness.RunParallelObserved(u, vs, *workers, ob)
		if err != nil {
			fatal(err)
		}
	case string(harness.CsimV2):
		_, w, err2 := parseShards(*shards, false)
		if err2 != nil {
			fatal(err2)
		}
		m, err = harness.RunVectorShardedObserved(u, vs, w, ob)
		if err != nil {
			fatal(err)
		}
	case string(harness.CsimGrid):
		k, w, err2 := parseShards(*shards, true)
		if err2 != nil {
			fatal(err2)
		}
		m, err = harness.RunGridObserved(u, vs, k, w, ob)
		if err != nil {
			fatal(err)
		}
	case "compiled": // alias for csim-C
		m, err = harness.RunObserved(harness.CsimC, u, vs, ob)
		if err != nil {
			fatal(err)
		}
	default:
		switch eng := harness.Engine(*engine); eng {
		case harness.CsimPlain, harness.CsimV, harness.CsimM, harness.CsimMV,
			harness.CsimEager, harness.CsimReconv, harness.CsimC, harness.PROOFS:
			m, err = harness.RunObserved(eng, u, vs, ob)
			if err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("unknown engine %q", *engine))
		}
	}

	st := c.Stats()
	fmt.Printf("circuit:   %s (%d PI, %d PO, %d FF, %d gates)\n",
		c.Name, st.PIs, st.POs, st.DFFs, st.Gates)
	fmt.Printf("engine:    %s\n", m.Engine)
	if m.Workers > 0 {
		fmt.Printf("workers:   %d\n", m.Workers)
	}
	if m.Windows > 0 {
		fmt.Printf("windows:   %d\n", m.Windows)
	}
	fmt.Printf("faults:    %d (%s)\n", m.Faults, *model)
	fmt.Printf("patterns:  %d\n", m.Patterns)
	fmt.Printf("detected:  %d (%.2f%%), potential-only: %d (%.2f%% incl.)\n",
		m.Detected, m.FltCvg(),
		m.PotOnly, 100*float64(m.Detected+m.PotOnly)/float64(max(1, m.Faults)))
	fmt.Printf("cpu:       %s s\n", harness.Seconds(m.CPU))
	if m.MemBytes > 0 {
		fmt.Printf("mem:       %s MB (fault structures, peak)\n", harness.Meg(m.MemBytes))
	}

	if flog != nil {
		printFaultEvents(flog, u, c)
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, reg.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics:   wrote %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, tr.WriteChrome); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:     wrote %s (load in chrome://tracing or Perfetto)\n", *traceOut)
	}

	if *verbose {
		res := serial.Simulate(u, vs) // authoritative listing
		fmt.Println("undetected faults:")
		for i, f := range u.Faults {
			if !res.Detected[i] {
				fmt.Printf("  %s\n", f.Name(c))
			}
		}
	}

	if *metricsAddr != "" && *hold {
		fmt.Println("holding:   metrics endpoint stays up; interrupt (ctrl-c) to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// parseFaultFilter resolves a -trace-faults spec against the universe:
// "all" tracks every fault (nil filter); otherwise a comma-separated mix
// of numeric fault IDs and fault-name substrings (matched against
// Fault.Name, e.g. "G10" matches G10/SA0 and G10/SA1).
func parseFaultFilter(spec string, u *faults.Universe, c *netlist.Circuit) ([]int32, error) {
	if spec == "all" {
		return nil, nil
	}
	var ids []int32
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if n, err := strconv.Atoi(tok); err == nil {
			if n < 0 || n >= u.NumFaults() {
				return nil, fmt.Errorf("-trace-faults: fault ID %d out of range [0,%d)", n, u.NumFaults())
			}
			ids = append(ids, int32(n))
			continue
		}
		found := false
		for i := range u.Faults {
			if strings.Contains(u.Faults[i].Name(c), tok) {
				ids = append(ids, int32(i))
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("-trace-faults: no fault name contains %q", tok)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("-trace-faults: empty filter %q", spec)
	}
	return ids, nil
}

// printFaultEvents lists the recorded lifecycle events with fault and
// gate names resolved; long logs are elided after a prefix.
func printFaultEvents(flog *obs.FaultLog, u *faults.Universe, c *netlist.Circuit) {
	const maxPrint = 200
	events, clipped := flog.Events()
	note := ""
	if clipped {
		note = " (log limit hit; earliest events kept)"
	}
	fmt.Printf("fault lifecycle: %d events%s\n", len(events), note)
	for i, ev := range events {
		if i == maxPrint {
			fmt.Printf("  ... %d more (use -metrics-out and the API for the full log)\n", len(events)-maxPrint)
			break
		}
		vec := strconv.Itoa(int(ev.Vec))
		if ev.Vec < 0 {
			vec = "-"
		}
		fmt.Printf("  vec=%-5s fault=%-20s %-21s at %s\n",
			vec, u.Faults[ev.Fault].Name(c), ev.Kind, c.Gate(netlist.GateID(ev.Gate)).Name)
	}
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runCheck is the -check mode: beyond the structural circuit checks
// (already run on load), verify the selected fault model's universe and
// the macro plans every engine variant would extract, then report.
func runCheck(c *netlist.Circuit, model string) error {
	u, err := universe(c, model)
	if err != nil {
		return err
	}
	if err := netcheck.AsError(netcheck.CheckUniverse(u)); err != nil {
		return err
	}
	trivial := macro.Trivial(c)
	if err := netcheck.AsError(netcheck.CheckPlan(trivial)); err != nil {
		return err
	}
	plans := 1
	for _, reconv := range []bool{false, true} {
		var p *macro.Plan
		if reconv {
			p, err = macro.ExtractReconvergent(c, macro.DefaultMaxInputs)
		} else {
			p, err = macro.Extract(c, macro.DefaultMaxInputs)
		}
		if err != nil {
			return err
		}
		if err := netcheck.AsError(netcheck.CheckPlan(p)); err != nil {
			return err
		}
		if err := netcheck.AsError(netcheck.CheckPlanMaximal(p, macro.DefaultMaxInputs, reconv)); err != nil {
			return err
		}
		plans++
	}
	st := c.Stats()
	fmt.Printf("check:     %s OK (%d PI, %d PO, %d FF, %d gates; %d faults [%s]; %d plans verified)\n",
		c.Name, st.PIs, st.POs, st.DFFs, st.Gates, u.NumFaults(), model, plans)
	return nil
}

// engineNames and modelNames are the accepted -engine and -faults
// values, in the spelling the flags document.
var (
	engineNames = []string{"csim", "csim-V", "csim-M", "csim-MV",
		"csim-MV-eagerdrop", "csim-MV-reconvergent", "csim-P", "csim-V2",
		"csim-grid", "csim-C", "compiled", "PROOFS", "serial"}
	modelNames = []string{"stuck", "stuck-all", "transition"}
)

// parseShards resolves the -shards flag. "auto" defers the shape to the
// engine default (csim-V2: one window per CPU) or the unified scheduler
// (csim-grid). A bare "N" is a window count for csim-V2 and an N×1
// fault-shard split for csim-grid; "KxW" pins a full grid shape (csim-V2
// accepts it only with K=1).
func parseShards(spec string, grid bool) (k, w int, err error) {
	if spec == "" || spec == "auto" {
		return 0, 0, nil
	}
	if i := strings.IndexByte(spec, 'x'); i >= 0 {
		k, err = strconv.Atoi(spec[:i])
		if err == nil {
			w, err = strconv.Atoi(spec[i+1:])
		}
		if err != nil || k < 1 || w < 1 {
			return 0, 0, fmt.Errorf("-shards %q: want KxW with K,W >= 1", spec)
		}
		if !grid && k != 1 {
			return 0, 0, fmt.Errorf("-shards %q: csim-V2 splits vectors only; use -engine csim-grid for fault shards", spec)
		}
		return k, w, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 1 {
		return 0, 0, fmt.Errorf("-shards %q: want auto, N or KxW", spec)
	}
	if grid {
		return n, 1, nil
	}
	return 0, n, nil
}

// validateSelections rejects unknown -engine/-faults/-suite values with
// a one-line usage hint listing the accepted names.
func validateSelections(engine, model, suite string) error {
	if !containsName(engineNames, engine) {
		return fmt.Errorf("unknown engine %q; usage: -engine %s", engine, strings.Join(engineNames, "|"))
	}
	if !containsName(modelNames, model) {
		return fmt.Errorf("unknown fault model %q; usage: -faults %s", model, strings.Join(modelNames, "|"))
	}
	if suite != "" && !containsName(iscas.Names(), suite) {
		return fmt.Errorf("unknown suite circuit %q; usage: -suite %s", suite, strings.Join(iscas.Names(), "|"))
	}
	return nil
}

func containsName(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func loadCircuit(file, suite string) (*netlist.Circuit, error) {
	switch {
	case file != "" && suite != "":
		return nil, fmt.Errorf("use -circuit or -suite, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(file, f)
	case suite != "":
		return iscas.Get(suite)
	}
	return nil, fmt.Errorf("one of -circuit or -suite is required")
}

func loadVectors(c *netlist.Circuit, file string, n int, seed int64) (*vectors.Set, error) {
	switch {
	case file != "" && n > 0:
		return nil, fmt.Errorf("use -vectors or -random, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return vectors.Parse(f, len(c.PIs))
	case n > 0:
		return vectors.Random(c, n, seed), nil
	}
	return nil, fmt.Errorf("one of -vectors or -random is required")
}

func universe(c *netlist.Circuit, model string) (*faults.Universe, error) {
	switch model {
	case "stuck":
		return faults.StuckCollapsed(c), nil
	case "stuck-all":
		return faults.StuckAll(c), nil
	case "transition":
		return faults.Transition(c), nil
	}
	return nil, fmt.Errorf("unknown fault model %q", model)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csim:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
