package main

import (
	"strings"
	"testing"
)

// TestValidateSelections pins the up-front flag validation: unknown
// -engine/-faults/-suite names are rejected with a one-line hint that
// lists the accepted values, and every accepted value passes.
func TestValidateSelections(t *testing.T) {
	for _, eng := range engineNames {
		if err := validateSelections(eng, "stuck", "s27"); err != nil {
			t.Errorf("engine %q rejected: %v", eng, err)
		}
	}
	for _, model := range modelNames {
		if err := validateSelections("csim-MV", model, ""); err != nil {
			t.Errorf("model %q rejected: %v", model, err)
		}
	}
	cases := []struct {
		name                 string
		engine, model, suite string
		wantIn               string
	}{
		{"unknown engine", "csim-X", "stuck", "", "usage: -engine"},
		{"unknown model", "csim-MV", "bridging", "", "usage: -faults"},
		{"unknown suite", "csim-MV", "stuck", "s999999", "usage: -suite"},
	}
	for _, tc := range cases {
		err := validateSelections(tc.engine, tc.model, tc.suite)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantIn) {
			t.Errorf("%s: error %q lacks hint %q", tc.name, err, tc.wantIn)
		}
		if strings.Count(err.Error(), "\n") != 0 {
			t.Errorf("%s: hint is not one line: %q", tc.name, err)
		}
	}
}
