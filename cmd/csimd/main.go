// Command csimd serves fault simulation over HTTP/JSON: a bounded job
// queue in front of a worker pool over the repository's engines, with a
// compiled-circuit cache and the observability endpoints.
//
// Usage:
//
//	csimd -addr :8416 -workers 8 -queue 256
//
// Endpoints:
//
//	POST   /api/v1/jobs            submit a job (JSON JobSpec); 429 + Retry-After when full
//	GET    /api/v1/jobs            list jobs
//	GET    /api/v1/jobs/{id}       job status + result
//	GET    /api/v1/jobs/{id}/debug flight-recorder postmortem
//	DELETE /api/v1/jobs/{id}       cancel (frees a queued job's slot immediately)
//	GET    /healthz                liveness
//	GET    /readyz                 readiness (503 while draining)
//	GET    /metricsz               metric registry snapshot (also /debug/vars, /debug/pprof);
//	                               ?format=prometheus for text exposition
//
// Submissions may carry an X-Csim-Job-Id header; the server adopts it as
// the job ID and every structured log record and flight event for that
// job carries it. Structured logs go to stderr (-log-format, -log-level).
//
// SIGINT/SIGTERM starts a graceful drain: admissions stop, queued and
// running jobs finish (bounded by -drain-timeout), then the process
// exits 0. See DESIGN.md §10 and the README "Serving" section.
//
// Coordinator mode (-coordinator) serves the same API but executes
// nothing locally: each admitted job is split into fault-partition
// shards and fanned out to the worker csimd nodes named by
// -worker-addrs (comma-separated base URLs) or -worker-file (one URL
// per line, # comments). Workers are ordinary csimd processes — the
// coordinator is a client of their job API. See DESIGN.md §13 and the
// README "Distributed" section.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8416", "listen address")
		workers      = flag.Int("workers", runtime.NumCPU(), "simulation worker-pool size")
		queue        = flag.Int("queue", 256, "admission queue depth (full queue answers 429)")
		cacheSize    = flag.Int("cache", 64, "compiled-circuit cache capacity (circuits)")
		maxInline    = flag.Int64("max-inline", 4<<20, "inline netlist/vector size bound in bytes (oversized answers 413)")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "default per-job run-time bound")
		maxTimeout   = flag.Duration("max-job-timeout", 30*time.Minute, "cap on spec-requested per-job timeouts")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "bound on the graceful drain after SIGTERM")
		retained     = flag.Int("retained", 8192, "finished jobs kept for polling before eviction")
		traceOut     = flag.String("trace-out", "", "write a chrome://tracing phase trace (JSON) on exit")
		logFormat    = flag.String("log-format", "json", "structured log format on stderr: json or text")
		logLevel     = flag.String("log-level", "info", "log threshold: debug, info, warn or error")
		flightBuf    = flag.Int("flight-buffer", obs.DefaultFlightEvents, "per-job flight-recorder capacity (events)")

		coordinator   = flag.Bool("coordinator", false, "coordinate a worker fleet instead of executing locally")
		workerAddrs   = flag.String("worker-addrs", "", "comma-separated worker base URLs (coordinator mode)")
		workerFile    = flag.String("worker-file", "", "file of worker base URLs, one per line (coordinator mode)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "worker /readyz health-probe spacing (coordinator mode)")
		shardTimeout  = flag.Duration("shard-timeout", 2*time.Minute, "per-shard attempt bound before re-queue (coordinator mode)")
		shardRetries  = flag.Int("shard-retries", 3, "workers a shard may be tried on before the job fails (coordinator mode)")
		perWorker     = flag.Int("per-worker-inflight", 2, "concurrent shards per worker (coordinator mode)")
	)
	flag.Parse()

	// Metrics are always on — the service exists to serve them. The
	// tracer is unbounded, so it is attached only when a trace file was
	// asked for.
	reg := obs.NewRegistry()
	ob := &obs.Observer{Metrics: reg}
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.NewTracer(reg)
		ob.Tracer = tr
	}
	obs.PublishExpvar("csimd", reg)
	stopSampler := obs.StartRuntimeSampler(reg, 5*time.Second)
	defer stopSampler()

	lg, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}

	cfg := service.Config{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		MaxInlineBytes: *maxInline,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		Retained:       *retained,
		Obs:            ob,
		Log:            lg,
		FlightEvents:   *flightBuf,
	}
	var coord *dist.Coordinator
	if *coordinator {
		fleet, err := workerList(*workerAddrs, *workerFile)
		if err != nil {
			fatal(err)
		}
		coord, err = dist.New(dist.Config{
			Workers:           fleet,
			ProbeInterval:     *probeInterval,
			ShardTimeout:      *shardTimeout,
			MaxAttempts:       *shardRetries,
			PerWorkerInflight: *perWorker,
			Obs:               ob,
			Log:               lg,
		})
		if err != nil {
			fatal(err)
		}
		defer coord.Close()
		cfg.Runner = coord
	}
	srv := service.New(cfg)
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	if coord != nil {
		fmt.Printf("csimd:     coordinating http://%s/api/v1/jobs over %d worker(s)\n",
			srv.Addr(), len(coord.Workers()))
	} else {
		fmt.Printf("csimd:     serving http://%s/api/v1/jobs (%d workers, queue %d, cache %d)\n",
			srv.Addr(), *workers, *queue, *cacheSize)
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	sig := <-ch
	fmt.Printf("csimd:     %s received; draining (bound %s)\n", sig, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "csimd: drain incomplete: %v\n", err)
		writeTrace(*traceOut, tr)
		os.Exit(1)
	}
	fmt.Println("csimd:     drained cleanly")
	writeTrace(*traceOut, tr)
}

// workerList resolves the coordinator's fleet from -worker-addrs
// (comma-separated) plus -worker-file (one URL per line; blank lines
// and # comments skipped), normalizing bare host:port to http://.
func workerList(addrs, file string) ([]string, error) {
	var out []string
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, normalizeWorkerURL(a))
		}
	}
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, fmt.Errorf("-worker-file: %w", err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, normalizeWorkerURL(line))
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("-worker-file: %w", err)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-coordinator needs workers via -worker-addrs or -worker-file")
	}
	return out, nil
}

// normalizeWorkerURL defaults a scheme-less worker address to http.
func normalizeWorkerURL(a string) string {
	if strings.Contains(a, "://") {
		return a
	}
	return "http://" + a
}

// buildLogger assembles the stderr slog handler from the -log-format and
// -log-level flags. Logs go to stderr so the startup/drain lines on
// stdout stay machine-greppable.
func buildLogger(format, level string) (*obs.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return obs.NewLogger(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return obs.NewLogger(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want json or text", format)
	}
}

// writeTrace dumps the phase trace if one was recorded.
func writeTrace(path string, tr *obs.Tracer) {
	if path == "" || tr == nil {
		return
	}
	if err := writeTo(path, tr.WriteChrome); err != nil {
		fmt.Fprintf(os.Stderr, "csimd: trace: %v\n", err)
		return
	}
	fmt.Printf("trace:     wrote %s (load in chrome://tracing or Perfetto)\n", path)
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csimd:", err)
	os.Exit(1)
}
