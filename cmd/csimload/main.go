// Command csimload load-tests a csimd server: N concurrent clients each
// submit a stream of identical jobs, wait for results, and the tool
// reports throughput, latency percentiles, cache behaviour and queue
// rejections. Assertion flags make it a CI gate:
//
//	csimload -addr http://127.0.0.1:8416 -clients 64 -jobs 2 \
//	    -circuit s5378 -random 100 -expect-detections 4505 \
//	    -min-cache-hit 0.9 -min-inflight 50
//
// exits non-zero when a job fails or its result is dropped, when a
// completed job's detection count differs from -expect-detections, when
// the server-side cache hit rate ends below -min-cache-hit, when the
// peak number of concurrently in-flight jobs never reaches
// -min-inflight, or when -expect-reject is set and the run never drew a
// 429. Queue rejections are retried honouring the server's Retry-After
// hint (capped per sleep by -max-retry-wait, jittered to de-synchronize
// the herd, and bounded in total per job by -max-retry-time), so
// overload slows the run down but never silently livelocks it. With
// -check-prom the tool also scrapes /metricsz?format=prometheus after
// the run and fails unless the exposition parses cleanly (with
// -clients 0 this is a standalone scrape check against an
// already-running server).
//
// Multi-node mode: -nodes takes a comma-separated list of csimd base
// URLs (workers or coordinators) and round-robins the client
// goroutines across them; assertions aggregate over all nodes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "http://127.0.0.1:8416", "csimd base URL")
		nodes        = flag.String("nodes", "", "comma-separated csimd base URLs; clients round-robin across them (overrides -addr)")
		clients      = flag.Int("clients", 16, "concurrent client goroutines")
		jobs         = flag.Int("jobs", 4, "jobs per client")
		circuit      = flag.String("circuit", "s5378", "built-in suite circuit to simulate")
		model        = flag.String("model", "stuck", "fault model: stuck | stuck-all | transition")
		engine       = flag.String("engine", "csim-MV", "engine name (see csimd docs)")
		randomN      = flag.Int("random", 100, "random vectors per job")
		seed         = flag.Int64("seed", 1, "random vector seed")
		poll         = flag.Duration("poll", 5*time.Millisecond, "job status poll interval")
		timeout      = flag.Duration("timeout", 5*time.Minute, "whole-run deadline")
		maxRetryWait = flag.Duration("max-retry-wait", 2*time.Second, "cap on one honoured Retry-After sleep")
		maxRetryTime = flag.Duration("max-retry-time", 30*time.Second, "cap on a single job's total 429 backoff before its submission fails")

		expectDet   = flag.Int("expect-detections", -1, "assert every completed job detects exactly this many faults (-1 disables)")
		minCacheHit = flag.Float64("min-cache-hit", 0, "assert the final server cache hit rate is at least this fraction (0 disables)")
		minInflight = flag.Int("min-inflight", 0, "assert the peak concurrently in-flight job count reaches this (0 disables)")
		expectRej   = flag.Bool("expect-reject", false, "assert the run drew at least one 429 queue rejection")
		checkProm   = flag.Bool("check-prom", false, "fetch /metricsz?format=prometheus after the run and assert it parses")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	urls := []string{*addr}
	if *nodes != "" {
		urls = urls[:0]
		for _, u := range strings.Split(*nodes, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			fmt.Fprintln(os.Stderr, "csimload: -nodes named no URLs")
			os.Exit(1)
		}
	}
	nodeClients := make([]*service.Client, len(urls))
	for i, u := range urls {
		nodeClients[i] = service.NewClient(u)
	}
	spec := service.JobSpec{
		Circuit: *circuit, Model: *model, Engine: *engine,
		Random: *randomN, Seed: *seed,
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  []string

		inflight     atomic.Int64
		peakInflight atomic.Int64
		rejections   atomic.Int64
		detMismatch  atomic.Int64
		completed    atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(cl *service.Client) {
			defer wg.Done()
			for i := 0; i < *jobs; i++ {
				jStart := time.Now()
				v, err := submitWithRetry(ctx, cl, spec, *maxRetryWait, *maxRetryTime, &rejections)
				if err != nil {
					record(&mu, &failures, fmt.Sprintf("submit: %v", err))
					return
				}
				n := inflight.Add(1)
				for {
					if p := peakInflight.Load(); n <= p || peakInflight.CompareAndSwap(p, n) {
						break
					}
				}
				v, err = cl.Wait(ctx, v.ID, *poll)
				inflight.Add(-1)
				if err != nil {
					record(&mu, &failures, fmt.Sprintf("wait %s: %v", v.ID, err))
					return
				}
				if v.Status != service.StatusDone || v.Result == nil {
					record(&mu, &failures, fmt.Sprintf("job %s: status %s, error %q", v.ID, v.Status, v.Error))
					continue
				}
				completed.Add(1)
				if *expectDet >= 0 && v.Result.Detected != *expectDet {
					detMismatch.Add(1)
					record(&mu, &failures, fmt.Sprintf("job %s: detected %d, want %d", v.ID, v.Result.Detected, *expectDet))
				}
				mu.Lock()
				latencies = append(latencies, time.Since(jStart))
				mu.Unlock()
			}
		}(nodeClients[c%len(nodeClients)])
	}
	wg.Wait()
	wall := time.Since(start)

	sum := harness.Summarize(latencies, wall)
	total := *clients * *jobs
	fmt.Printf("csimload:  %s %s/%s random=%d x %d clients x %d jobs\n",
		strings.Join(urls, ","), *circuit, *engine, *randomN, *clients, *jobs)
	fmt.Printf("completed: %d/%d (rejected-then-retried: %d, peak in-flight: %d)\n",
		completed.Load(), total, rejections.Load(), peakInflight.Load())
	fmt.Printf("latency:   %s\n", sum)

	hitRate := cacheHitRate(ctx, nodeClients)
	if hitRate >= 0 {
		fmt.Printf("cache:     hit rate %.1f%%\n", 100*hitRate)
	}

	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Fprintf(os.Stderr, "csimload: FAIL: "+format+"\n", args...)
	}
	if len(failures) > 0 {
		for i, f := range failures {
			if i == 10 {
				fmt.Fprintf(os.Stderr, "csimload: ... %d more failures\n", len(failures)-10)
				break
			}
			fmt.Fprintf(os.Stderr, "csimload: %s\n", f)
		}
		fail("%d of %d jobs did not complete cleanly", len(failures), total)
	}
	if int(completed.Load()) != total && len(failures) == 0 {
		fail("completed %d of %d jobs with no recorded failure (dropped results)", completed.Load(), total)
	}
	if *expectDet >= 0 && detMismatch.Load() > 0 {
		fail("%d completed jobs had wrong detection counts", detMismatch.Load())
	}
	if *minCacheHit > 0 {
		if hitRate < 0 {
			fail("cache hit rate unavailable from /metricsz")
		} else if hitRate < *minCacheHit {
			fail("cache hit rate %.3f below the required %.3f", hitRate, *minCacheHit)
		}
	}
	if *minInflight > 0 && peakInflight.Load() < int64(*minInflight) {
		fail("peak in-flight %d never reached the required %d", peakInflight.Load(), *minInflight)
	}
	if *expectRej && rejections.Load() == 0 {
		fail("expected at least one 429 queue rejection; saw none")
	}
	if *checkProm {
		for i, ncl := range nodeClients {
			body, err := ncl.MetricszProm(ctx)
			if err != nil {
				fail("prometheus scrape (node %d): %v", i, err)
			} else if n, err := obs.CheckExposition(strings.NewReader(body)); err != nil {
				fail("prometheus exposition invalid (node %d): %v", i, err)
			} else {
				fmt.Printf("prom:      node %d: %d samples, exposition valid\n", i, n)
			}
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// submitWithRetry submits a job, backing off on 429 for the server's
// Retry-After hint — capped per sleep by maxWait, jittered by up to
// half the sleep so rejected clients don't re-converge on the same
// instant, and bounded in total by maxTotal so a saturated server
// fails the job loudly instead of livelocking the run.
func submitWithRetry(ctx context.Context, cl *service.Client, spec service.JobSpec,
	maxWait, maxTotal time.Duration, rejections *atomic.Int64) (service.JobView, error) {
	var waited time.Duration
	for {
		v, err := cl.Submit(ctx, spec)
		var qf *service.QueueFullError
		if !errors.As(err, &qf) {
			return v, err
		}
		rejections.Add(1)
		wait := qf.RetryAfter
		if wait > maxWait {
			wait = maxWait
		}
		wait += time.Duration(rand.Int63n(int64(wait)/2 + 1))
		if waited+wait > maxTotal {
			return v, fmt.Errorf("429 retry budget %s exhausted after %s of backoff: %w", maxTotal, waited, err)
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-time.After(wait):
		}
		waited += wait
	}
}

// cacheHitRate reads the final hit rate aggregated over every node's
// /metricsz; -1 when the metrics are unavailable or no lookup
// happened anywhere.
func cacheHitRate(ctx context.Context, cls []*service.Client) float64 {
	var hits, misses int64
	seen := false
	for _, cl := range cls {
		m, err := cl.Metricsz(ctx)
		if err != nil {
			continue
		}
		seen = true
		hits += m["serve.cache_hits"].Value
		misses += m["serve.cache_misses"].Value
	}
	if !seen || hits+misses == 0 {
		return -1
	}
	return float64(hits) / float64(hits+misses)
}

func record(mu *sync.Mutex, failures *[]string, msg string) {
	mu.Lock()
	*failures = append(*failures, msg)
	mu.Unlock()
}
