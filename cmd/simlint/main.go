// Command simlint runs the project's custom static-analysis suite
// (internal/lint) over Go packages. It has two modes:
//
// Standalone multichecker:
//
//	simlint [-analyzers=hotpathalloc,maprange] [-json] ./...
//
// loads packages from source via the go tool, runs the selected
// analyzers (all by default) and prints diagnostics. //simlint:ignore
// directives are honored: suppressed diagnostics don't fail the run but
// are counted (and, with -json, emitted with their suppression reason),
// while malformed or unused directives are failures in their own right.
// -json replaces the human output with one sorted array of diagnostic
// objects — analyzer, position, message, suppression state — for CI
// artifacts. Exit status is 2 if any active diagnostic, malformed
// directive or unused suppression remains, 1 on a loading/analysis
// error, 0 otherwise.
//
// Vet tool (unitchecker protocol):
//
//	go vet -vettool=$(which simlint) ./...
//
// go vet probes the tool with -V=full and -flags, then invokes it once
// per package with a JSON config file argument; simlint type-checks the
// unit against the compiler's export data and reports diagnostics the
// same way cmd/vet does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	// go vet protocol probes arrive as the sole argument.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full":
			// The version string participates in go's build cache key.
			fmt.Printf("%s version simlint-1.1\n", os.Args[0])
			return
		case "-flags":
			printVetFlags()
			return
		}
	}
	if cfg := cfgArg(); cfg != "" {
		os.Exit(unitcheck(cfg))
	}
	os.Exit(standalone())
}

// cfgArg returns the trailing *.cfg argument of a unitchecker
// invocation, or "".
func cfgArg() string {
	if n := len(os.Args); n > 1 && strings.HasSuffix(os.Args[n-1], ".cfg") {
		return os.Args[n-1]
	}
	return ""
}

// printVetFlags advertises per-analyzer enable flags in the JSON shape
// `go vet` expects from a vettool's -flags probe.
func printVetFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var fs []jsonFlag
	for _, a := range lint.All() {
		fs = append(fs, jsonFlag{a.Name, true, firstLine(a.Doc)})
	}
	data, err := json.MarshalIndent(fs, "", "\t")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// selectFlags registers one bool flag per analyzer on fs and returns the
// map of selections. If no flag is set, all analyzers run.
func selectFlags(fs *flag.FlagSet) map[string]*bool {
	sel := map[string]*bool{}
	for _, a := range lint.All() {
		sel[a.Name] = fs.Bool(a.Name, false, firstLine(a.Doc))
	}
	return sel
}

func selected(sel map[string]*bool) []*lint.Analyzer {
	any := false
	for _, on := range sel {
		any = any || *on
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if !any || *sel[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
	os.Exit(1)
}

// ---- standalone multichecker mode ----

func standalone() int {
	fs := flag.NewFlagSet("simlint", flag.ExitOnError)
	list := fs.String("analyzers", "", "comma-separated analyzer `names` to run (default: all)")
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (includes suppressed ones)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: simlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(fs.Output(), "  %-17s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	analyzers := lint.All()
	if *list != "" {
		analyzers = nil
		for _, name := range strings.Split(*list, ",") {
			a, ok := lint.ByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown analyzer %q", name))
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	l := lint.NewLoader(*dir)
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	r, err := lint.RunAll(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := writeJSONReport(os.Stdout, r); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range r.Diags {
			fmt.Fprintln(os.Stderr, d)
		}
		for _, d := range r.Malformed {
			fmt.Fprintln(os.Stderr, d)
		}
		for _, s := range r.Unused {
			fmt.Fprintf(os.Stderr, "%s: unused suppression: no %s diagnostic on this or the next line\n", s.Pos, s.Analyzer)
		}
		if n := len(r.Suppressed); n > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d diagnostic(s) suppressed by //simlint:ignore\n", n)
		}
	}
	if r.Failed() {
		return 2
	}
	return 0
}

// jsonDiagnostic is one entry of the -json report: active, suppressed
// and malformed diagnostics share the shape, and unused suppressions
// are folded in under the pseudo-analyzer "simlint" so a consumer sees
// every failure in one sorted list.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Suppressed diagnostics carry the directive's reason and do not
	// fail the run.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// writeJSONReport emits the full report as one position-sorted array.
func writeJSONReport(w io.Writer, r *lint.Report) error {
	out := []jsonDiagnostic{}
	add := func(d lint.Diagnostic) {
		out = append(out, jsonDiagnostic{
			Analyzer:   d.Analyzer,
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.SuppressReason,
		})
	}
	for _, d := range r.Diags {
		add(d)
	}
	for _, d := range r.Suppressed {
		add(d)
	}
	for _, d := range r.Malformed {
		add(d)
	}
	for _, s := range r.Unused {
		out = append(out, jsonDiagnostic{
			Analyzer: "simlint",
			File:     s.Pos.Filename,
			Line:     s.Pos.Line,
			Col:      s.Pos.Column,
			Message:  fmt.Sprintf("unused suppression: no %s diagnostic on this or the next line", s.Analyzer),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// ---- go vet -vettool (unitchecker) mode ----

// vetConfig is the package-unit description cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	fs := flag.NewFlagSet("simlint", flag.ExitOnError)
	sel := selectFlags(fs)
	jsonOut := fs.Bool("json", false, "emit JSON diagnostics")
	fs.Int("c", -1, "ignored (context lines; accepted for vet compatibility)")
	fs.String("V", "", "ignored (version probe; accepted for vet compatibility)")
	fs.Parse(os.Args[1 : len(os.Args)-1])

	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}

	// simlint carries no cross-package facts, but go vet caches the
	// output file per unit, so it must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := typecheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	analyzers := selected(sel)
	r, err := lint.RunAll([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fatal(err)
	}
	diags := append(r.Diags, r.Malformed...)
	// An unused suppression is only provably stale when every analyzer it
	// could have silenced actually ran.
	if len(analyzers) == len(lint.All()) {
		for _, s := range r.Unused {
			diags = append(diags, lint.Diagnostic{
				Analyzer: "simlint",
				Pos:      s.Pos,
				Message:  fmt.Sprintf("unused suppression: no %s diagnostic on this or the next line", s.Analyzer),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	if *jsonOut {
		printJSON(cfg.ImportPath, diags)
		return 0 // JSON consumers read the payload, not the exit status
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheckUnit parses the unit's files and type-checks them against the
// compiler export data listed in the config, mirroring cmd/vet.
func typecheckUnit(cfg *vetConfig) (*lint.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{
		PkgPath:   cfg.ImportPath,
		Name:      tpkg.Name(),
		Dir:       cfg.Dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// printJSON mirrors unitchecker's -json shape:
// {pkgpath: {analyzer: [{posn, message}]}}.
func printJSON(pkgPath string, diags []lint.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{d.Pos.String(), d.Message})
	}
	data, err := json.MarshalIndent(map[string]map[string][]jsonDiag{pkgPath: byAnalyzer}, "", "\t")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}
