package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"repro/internal/lint"
)

// TestWriteJSONReport pins the -json artifact shape: one sorted array
// mixing active, suppressed and malformed diagnostics plus unused
// suppressions, each entry carrying analyzer, position, message and
// suppression state.
func TestWriteJSONReport(t *testing.T) {
	r := &lint.Report{
		Diags: []lint.Diagnostic{{
			Analyzer: "guardedby",
			Pos:      token.Position{Filename: "b.go", Line: 7, Column: 2},
			Message:  "access to q.items without holding q.mu",
		}},
		Suppressed: []lint.Diagnostic{{
			Analyzer:       "goroutinelife",
			Pos:            token.Position{Filename: "a.go", Line: 12, Column: 3},
			Message:        "leak-shaped spawn",
			Suppressed:     true,
			SuppressReason: "pump bounded by listener",
		}},
		Malformed: []lint.Diagnostic{{
			Analyzer: "simlint",
			Pos:      token.Position{Filename: "a.go", Line: 30, Column: 1},
			Message:  "malformed //simlint:ignore maprange: a reason is mandatory",
		}},
	}
	var buf bytes.Buffer
	if err := writeJSONReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	var got []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3: %s", len(got), buf.String())
	}
	// Position-sorted: a.go:12 before a.go:30 before b.go:7.
	if got[0].File != "a.go" || got[0].Line != 12 || got[1].Line != 30 || got[2].File != "b.go" {
		t.Errorf("entries not position-sorted: %s", buf.String())
	}
	sup := got[0]
	if sup.Analyzer != "goroutinelife" || !sup.Suppressed || sup.Reason != "pump bounded by listener" {
		t.Errorf("suppressed entry lost its state: %+v", sup)
	}
	if act := got[2]; act.Suppressed || act.Reason != "" || act.Col != 2 {
		t.Errorf("active entry carries wrong state: %+v", act)
	}
	if got[1].Analyzer != "simlint" {
		t.Errorf("malformed entry analyzer = %q, want simlint", got[1].Analyzer)
	}
}

// TestWriteJSONReportEmpty: a clean run is an empty array, not null —
// consumers can range over it unconditionally.
func TestWriteJSONReportEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSONReport(&buf, &lint.Report{}); err != nil {
		t.Fatal(err)
	}
	var got []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("want [], got %s", buf.String())
	}
}
