// Command tables regenerates the paper's experimental tables (2-6) on the
// benchmark suite. Absolute numbers reflect this machine and the synthetic
// stand-in circuits; the shapes (which engine wins, where macro extraction
// pays off, transition coverage below 50%) are the reproduction targets.
//
// Usage:
//
//	tables            # all tables, full circuit lists (slow)
//	tables -table 3   # one table
//	tables -quick     # small-circuit subsets only
//	tables -table 3 -metrics-out t3.json   # per-cell registry snapshots
//	tables -diff tables_output.txt         # drift check (see below)
//	tables -engines                        # engine registry as markdown
//	tables -engines-readme README.md       # engine-table drift check
//
// The -diff mode regenerates the selected tables and compares them
// against a previously captured output file, masking the volatile
// CPU/MEM columns (two-decimal numbers) so only the deterministic
// content — circuit statistics, fault counts, pattern counts,
// coverages, table structure — must match. CI runs it against the
// checked-in tables_output.txt so the file cannot silently go stale.
//
// The -engines mode prints harness.Engines() as the markdown table
// README.md embeds; -engines-readme extracts that table back out of the
// README (its only three-column table with a backticked first cell) and
// fails when a row is missing, extra, reordered or reworded — CI runs
// it so the README cannot drift from the engine registry.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"repro/internal/harness"
)

// quickCircuits is the -quick circuit subset shared by tables 2-4 and 6.
var quickCircuits = []string{"s298", "s344", "s386", "s820", "s1494"}

// emit writes the requested table (0 = all) to w. A non-nil sink collects
// one metric-registry snapshot per Table 3 cell (circuit x engine).
func emit(w io.Writer, table int, quick bool, sink *harness.MetricsSink) error {
	t3 := harness.Table3Circuits
	t4 := harness.Table4Circuits
	t6 := harness.Table6Circuits
	t5ckt := "s35932"
	t5counts := harness.Table5PatternCounts
	if quick {
		t3 = quickCircuits
		t4 = quickCircuits
		t6 = quickCircuits
		t5ckt = "s1494"
		t5counts = []int{100, 500}
	}

	type job struct {
		n   int
		run func() (*harness.Table, error)
	}
	jobs := []job{
		{2, func() (*harness.Table, error) { return harness.Table2(t3) }},
		{3, func() (*harness.Table, error) { return harness.Table3Observed(t3, sink) }},
		{4, func() (*harness.Table, error) { return harness.Table4(t4) }},
		{5, func() (*harness.Table, error) { return harness.Table5(t5ckt, t5counts) }},
		{6, func() (*harness.Table, error) { return harness.Table6(t6) }},
	}
	for _, j := range jobs {
		if table != 0 && table != j.n {
			continue
		}
		t, err := j.run()
		if err != nil {
			return fmt.Errorf("table %d: %w", j.n, err)
		}
		fmt.Fprintln(w, t.String())
	}
	return nil
}

// volatileNum matches the CPU/MEM table cells: Seconds and Meg both
// print two decimals, while the deterministic coverage columns print one
// — so masking exactly the two-decimal numbers keeps coverage checked.
var volatileNum = regexp.MustCompile(`\b\d+\.\d\d\b`)

// maskVolatile replaces every CPU/MEM number with a fixed placeholder
// and trims trailing space (column widths move with the numbers).
func maskVolatile(text string) []string {
	var out []string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		out = append(out, strings.TrimRight(volatileNum.ReplaceAllString(sc.Text(), "#.##"), " "))
	}
	return out
}

// diffTables regenerates the selected tables and compares them, masked,
// against the captured file; mismatching lines go to w.
func diffTables(w io.Writer, path string, table int, quick bool) (ok bool, err error) {
	want, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var buf strings.Builder
	if err := emit(&buf, table, quick, nil); err != nil {
		return false, err
	}
	got, exp := maskVolatile(buf.String()), maskVolatile(string(want))
	ok = true
	for i := 0; i < len(got) || i < len(exp); i++ {
		var g, e string
		if i < len(got) {
			g = got[i]
		}
		if i < len(exp) {
			e = exp[i]
		}
		if g != e {
			if ok {
				fmt.Fprintf(w, "tables: %s is stale (masked diff, line %d):\n", path, i+1)
			}
			ok = false
			fmt.Fprintf(w, "  -%s\n  +%s\n", e, g)
		}
	}
	return ok, nil
}

// engineRows renders the engine registry as the README's markdown rows
// (header excluded): one "| `name` | kind | description |" per engine.
func engineRows() []string {
	var rows []string
	for _, e := range harness.Engines() {
		rows = append(rows, fmt.Sprintf("| `%s` | %s | %s |", e.Name, e.Kind, e.Description))
	}
	return rows
}

// engineRow matches one three-column markdown row with a backticked
// first cell — the README engine table's row shape (every other README
// table is two-column, so this pattern finds exactly the engine rows).
var engineRow = regexp.MustCompile("^\\|\\s*(`[^`]+`)\\s*\\|([^|]*)\\|([^|]*)\\|\\s*$")

// diffEngines extracts the engine table from the README and compares it
// row-by-row, in order, against the registry; mismatches go to w.
func diffEngines(w io.Writer, path string) (ok bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var got []string
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		if m := engineRow.FindStringSubmatch(sc.Text()); m != nil {
			got = append(got, fmt.Sprintf("| %s | %s | %s |",
				m[1], strings.TrimSpace(m[2]), strings.TrimSpace(m[3])))
		}
	}
	want := engineRows()
	ok = true
	for i := 0; i < len(got) || i < len(want); i++ {
		var g, e string
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			e = want[i]
		}
		if g != e {
			if ok {
				fmt.Fprintf(w, "tables: engine table in %s disagrees with harness.Engines() (row %d):\n", path, i+1)
			}
			ok = false
			fmt.Fprintf(w, "  registry: %s\n  readme:   %s\n", e, g)
		}
	}
	if !ok {
		fmt.Fprintln(w, "tables: regenerate the README rows with: go run ./cmd/tables -engines")
	}
	return ok, nil
}

// validateTable rejects -table values outside the paper's tables with a
// one-line usage hint; without it an unknown number matched no job and
// the command silently emitted nothing.
func validateTable(n int) error {
	if n == 0 || (n >= 2 && n <= 6) {
		return nil
	}
	return fmt.Errorf("no table %d; usage: -table 2|3|4|5|6 (0 = all)", n)
}

func main() {
	var (
		table      = flag.Int("table", 0, "table number (2-6); 0 = all")
		quick      = flag.Bool("quick", false, "restrict to small circuits")
		metricsOut = flag.String("metrics-out", "", "write per-cell metric snapshots (Table 3) to this JSON file")
		diff       = flag.String("diff", "", "regenerate and compare against this captured output file (CPU/MEM columns masked); exit 1 on drift")
		engines    = flag.Bool("engines", false, "print the engine registry as the README's markdown table and exit")
		engReadme  = flag.String("engines-readme", "", "compare the engine table in this README against the registry; exit 1 on drift")
	)
	flag.Parse()

	if *engines {
		fmt.Println("| Engine | Kind | What it is |")
		fmt.Println("|---|---|---|")
		for _, row := range engineRows() {
			fmt.Println(row)
		}
		return
	}
	if *engReadme != "" {
		ok, err := diffEngines(os.Stderr, *engReadme)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tables: engine table in %s is up to date\n", *engReadme)
		return
	}
	if err := validateTable(*table); err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
	if *diff != "" {
		ok, err := diffTables(os.Stderr, *diff, *table, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "tables: regenerate with: go run ./cmd/tables > %s\n", *diff)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tables: %s is up to date\n", *diff)
		return
	}

	var sink *harness.MetricsSink
	if *metricsOut != "" {
		sink = &harness.MetricsSink{}
	}
	if err := emit(os.Stdout, *table, *quick, sink); err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
	if sink != nil {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = sink.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
	}
}
