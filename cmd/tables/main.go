// Command tables regenerates the paper's experimental tables (2-6) on the
// benchmark suite. Absolute numbers reflect this machine and the synthetic
// stand-in circuits; the shapes (which engine wins, where macro extraction
// pays off, transition coverage below 50%) are the reproduction targets.
//
// Usage:
//
//	tables            # all tables, full circuit lists (slow)
//	tables -table 3   # one table
//	tables -quick     # small-circuit subsets only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		table = flag.Int("table", 0, "table number (2-6); 0 = all")
		quick = flag.Bool("quick", false, "restrict to small circuits")
	)
	flag.Parse()

	t3 := harness.Table3Circuits
	t4 := harness.Table4Circuits
	t6 := harness.Table6Circuits
	t5ckt := "s35932"
	t5counts := harness.Table5PatternCounts
	if *quick {
		t3 = []string{"s298", "s344", "s386", "s820", "s1494"}
		t4 = []string{"s298", "s344", "s386", "s820", "s1494"}
		t6 = t4
		t5ckt = "s1494"
		t5counts = []int{100, 500}
	}

	type job struct {
		n   int
		run func() (*harness.Table, error)
	}
	jobs := []job{
		{2, func() (*harness.Table, error) { return harness.Table2(t3) }},
		{3, func() (*harness.Table, error) { return harness.Table3(t3) }},
		{4, func() (*harness.Table, error) { return harness.Table4(t4) }},
		{5, func() (*harness.Table, error) { return harness.Table5(t5ckt, t5counts) }},
		{6, func() (*harness.Table, error) { return harness.Table6(t6) }},
	}
	for _, j := range jobs {
		if *table != 0 && *table != j.n {
			continue
		}
		t, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: table %d: %v\n", j.n, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
}
