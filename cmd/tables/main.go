// Command tables regenerates the paper's experimental tables (2-6) on the
// benchmark suite. Absolute numbers reflect this machine and the synthetic
// stand-in circuits; the shapes (which engine wins, where macro extraction
// pays off, transition coverage below 50%) are the reproduction targets.
//
// Usage:
//
//	tables            # all tables, full circuit lists (slow)
//	tables -table 3   # one table
//	tables -quick     # small-circuit subsets only
//	tables -table 3 -metrics-out t3.json   # per-cell registry snapshots
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
)

// quickCircuits is the -quick circuit subset shared by tables 2-4 and 6.
var quickCircuits = []string{"s298", "s344", "s386", "s820", "s1494"}

// emit writes the requested table (0 = all) to w. A non-nil sink collects
// one metric-registry snapshot per Table 3 cell (circuit x engine).
func emit(w io.Writer, table int, quick bool, sink *harness.MetricsSink) error {
	t3 := harness.Table3Circuits
	t4 := harness.Table4Circuits
	t6 := harness.Table6Circuits
	t5ckt := "s35932"
	t5counts := harness.Table5PatternCounts
	if quick {
		t3 = quickCircuits
		t4 = quickCircuits
		t6 = quickCircuits
		t5ckt = "s1494"
		t5counts = []int{100, 500}
	}

	type job struct {
		n   int
		run func() (*harness.Table, error)
	}
	jobs := []job{
		{2, func() (*harness.Table, error) { return harness.Table2(t3) }},
		{3, func() (*harness.Table, error) { return harness.Table3Observed(t3, sink) }},
		{4, func() (*harness.Table, error) { return harness.Table4(t4) }},
		{5, func() (*harness.Table, error) { return harness.Table5(t5ckt, t5counts) }},
		{6, func() (*harness.Table, error) { return harness.Table6(t6) }},
	}
	for _, j := range jobs {
		if table != 0 && table != j.n {
			continue
		}
		t, err := j.run()
		if err != nil {
			return fmt.Errorf("table %d: %w", j.n, err)
		}
		fmt.Fprintln(w, t.String())
	}
	return nil
}

func main() {
	var (
		table      = flag.Int("table", 0, "table number (2-6); 0 = all")
		quick      = flag.Bool("quick", false, "restrict to small circuits")
		metricsOut = flag.String("metrics-out", "", "write per-cell metric snapshots (Table 3) to this JSON file")
	)
	flag.Parse()

	var sink *harness.MetricsSink
	if *metricsOut != "" {
		sink = &harness.MetricsSink{}
	}
	if err := emit(os.Stdout, *table, *quick, sink); err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
	if sink != nil {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = sink.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
	}
}
