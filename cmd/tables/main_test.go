package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestValidateTable pins the -table validation: 0 and 2-6 are accepted,
// anything else — which previously matched no table and silently emitted
// nothing — is rejected with a one-line usage hint.
func TestValidateTable(t *testing.T) {
	for _, n := range []int{0, 2, 3, 4, 5, 6} {
		if err := validateTable(n); err != nil {
			t.Errorf("table %d rejected: %v", n, err)
		}
	}
	for _, n := range []int{1, 7, -1, 42} {
		err := validateTable(n)
		if err == nil {
			t.Errorf("table %d accepted", n)
			continue
		}
		if !strings.Contains(err.Error(), "usage: -table") {
			t.Errorf("table %d: error %q lacks usage hint", n, err)
		}
	}
}

// TestMaskVolatile pins the drift-check masking: CPU/MEM cells (two
// decimals) are replaced, coverage cells (one decimal) and integer
// columns survive, and trailing space is trimmed.
func TestMaskVolatile(t *testing.T) {
	in := "s298   430  1.23   98.4   12.50  \nTotal  135.00 0.07\n"
	got := maskVolatile(in)
	want := []string{
		"s298   430  #.##   98.4   #.##",
		"Total  #.## #.##",
	}
	if len(got) != len(want) {
		t.Fatalf("maskVolatile returned %d lines, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// TestDiffTablesQuick checks both directions of the drift gate on the
// quick Table 2: a freshly captured file passes, a doctored one (changed
// coverage cell) fails even though CPU/MEM columns are masked.
func TestDiffTablesQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := emit(&buf, 2, true, nil); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(t.TempDir(), "fresh.txt")
	if err := os.WriteFile(fresh, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var diag bytes.Buffer
	ok, err := diffTables(&diag, fresh, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("fresh capture reported stale:\n%s", diag.String())
	}

	doctored := bytes.Replace(buf.Bytes(), []byte("."), []byte("!"), 1)
	if bytes.Equal(doctored, buf.Bytes()) {
		t.Fatal("could not doctor the capture")
	}
	stale := filepath.Join(t.TempDir(), "stale.txt")
	if err := os.WriteFile(stale, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	diag.Reset()
	ok, err = diffTables(&diag, stale, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("doctored capture passed the drift check")
	}
}

// TestTable2QuickGolden pins the `tables -table 2 -quick` output: circuit
// statistics, fault counts, deterministic pattern counts and coverage are
// all seeded and platform-independent, so any drift means a refactor
// changed circuit generation, fault collapsing, ATPG, or the simulator
// itself. Regenerate deliberately with: go test ./cmd/tables -update
func TestTable2QuickGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := emit(&buf, 2, true, nil); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "table2_quick.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("table 2 output drifted from golden file.\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}
