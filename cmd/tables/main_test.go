package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestTable2QuickGolden pins the `tables -table 2 -quick` output: circuit
// statistics, fault counts, deterministic pattern counts and coverage are
// all seeded and platform-independent, so any drift means a refactor
// changed circuit generation, fault collapsing, ATPG, or the simulator
// itself. Regenerate deliberately with: go test ./cmd/tables -update
func TestTable2QuickGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := emit(&buf, 2, true, nil); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "table2_quick.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("table 2 output drifted from golden file.\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}
