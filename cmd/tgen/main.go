// Command tgen generates test sequences for a synchronous sequential
// circuit: deterministic (PODEM over time frames, as the paper's companion
// generator [14]) or random.
//
// Usage:
//
//	tgen -suite s1494 -o tests.vec
//	tgen -circuit design.bench -random 1000 -o tests.vec
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

func main() {
	var (
		circuitFile = flag.String("circuit", "", "path to a .bench netlist")
		suite       = flag.String("suite", "", "built-in benchmark name")
		randomN     = flag.Int("random", 0, "emit this many random vectors instead of running ATPG")
		seed        = flag.Int64("seed", 1, "generation seed")
		preamble    = flag.Int("preamble", 64, "random vectors before deterministic targeting")
		frames      = flag.Int("frames", 8, "time-frame unroll bound")
		backtracks  = flag.Int("backtracks", 400, "PODEM backtrack limit per target")
		out         = flag.String("o", "", "output vector file (default stdout)")
	)
	flag.Parse()

	c, err := loadCircuit(*circuitFile, *suite)
	if err != nil {
		fatal(err)
	}

	var vs *vectors.Set
	if *randomN > 0 {
		vs = vectors.Random(c, *randomN, *seed)
	} else {
		u := faults.StuckCollapsed(c)
		res := atpg.Generate(u, atpg.Options{
			Seed:           *seed,
			FillRandom:     true,
			RandomPreamble: *preamble,
			MaxFrames:      *frames,
			MaxBacktrack:   *backtracks,
		})
		vs = res.Vectors
		fmt.Fprintf(os.Stderr,
			"tgen: %d vectors; %d/%d faults detected (%.1f%%), %d targeted, %d aborted, %d untestable(bounded)\n",
			vs.Len(), res.Detected, u.NumFaults(),
			100*float64(res.Detected)/float64(u.NumFaults()),
			res.Targeted, res.Aborted, res.Untestable)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := vectors.Write(w, vs); err != nil {
		fatal(err)
	}
}

func loadCircuit(file, suite string) (*netlist.Circuit, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(file, f)
	case suite != "":
		return iscas.Get(suite)
	}
	return nil, fmt.Errorf("one of -circuit or -suite is required")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgen:", err)
	os.Exit(1)
}
