package faultsim_test

import (
	"context"
	"testing"
	"time"

	faultsim "repro"
)

// TestSimulateDistributedFacade drives the one-shot distributed helper
// end to end: two real worker servers, a coordinator over them, and a
// result identical to the serial oracle.
func TestSimulateDistributedFacade(t *testing.T) {
	var fleet []string
	for i := 0; i < 2; i++ {
		w := faultsim.NewServer(faultsim.ServeConfig{Addr: "127.0.0.1:0", Workers: 2})
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		fleet = append(fleet, "http://"+w.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := faultsim.SimulateDistributed(ctx, faultsim.DistConfig{
		Workers:       fleet,
		ProbeInterval: 20 * time.Millisecond,
		Poll:          2 * time.Millisecond,
	}, faultsim.JobSpec{
		Circuit: "s298", Engine: "csim-grid", Random: 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	c, err := faultsim.Benchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	want := faultsim.SimulateSerial(faultsim.StuckFaults(c), faultsim.RandomVectors(c, 40, 7))
	if res.Detected != want.NumDet || res.PotOnly != want.NumPotOnly() {
		t.Errorf("distributed %d/%d, serial oracle %d/%d",
			res.Detected, res.PotOnly, want.NumDet, want.NumPotOnly())
	}
	if res.Workers < 1 {
		t.Errorf("result records no fault-shard count: %+v", res)
	}
}
