// Atpg demonstrates the deterministic test-generation flow behind the
// paper's Tables 2 and 4: random preamble, PODEM over time frames for the
// surviving faults, fault dropping between targets, and a final
// cross-check of the claimed coverage against the serial oracle.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	faultsim "repro"
)

func main() {
	circuit := flag.String("circuit", "s386", "suite benchmark to target")
	flag.Parse()

	c, err := faultsim.Benchmark(*circuit)
	if err != nil {
		log.Fatal(err)
	}
	u := faultsim.StuckFaults(c)
	st := c.Stats()
	fmt.Printf("%s: %d gates, %d FFs, %d collapsed stuck-at faults\n",
		c.Name, st.Gates, st.DFFs, u.NumFaults())

	// Random-only baseline for comparison.
	rnd := faultsim.RandomVectors(c, 1000, 3)
	sim, err := faultsim.New(u, faultsim.CsimMV())
	if err != nil {
		log.Fatal(err)
	}
	rndRes := sim.Run(rnd)
	fmt.Printf("baseline: 1000 random vectors -> %.1f%% coverage\n",
		100*rndRes.Coverage())

	start := time.Now()
	gen := faultsim.GenerateTests(u, faultsim.ATPGOptions{
		Seed:           7,
		FillRandom:     true,
		RandomPreamble: 64,
		MaxFrames:      8,
		MaxBacktrack:   200,
	})
	fmt.Printf("ATPG:     %d vectors in %.2fs -> %d/%d detected (%.1f%%)\n",
		gen.Vectors.Len(), time.Since(start).Seconds(),
		gen.Detected, u.NumFaults(),
		100*float64(gen.Detected)/float64(u.NumFaults()))
	fmt.Printf("          targeted %d, aborted %d, untestable within bound %d\n",
		gen.Targeted, gen.Aborted, gen.Untestable)

	// The oracle must agree with the campaign's claim.
	oracle := faultsim.SimulateSerial(u, gen.Vectors)
	fmt.Printf("oracle:   %d detections — agreement: %v\n",
		oracle.NumDet, oracle.NumDet == gen.Detected)
	if gen.Detected > rndRes.NumDet {
		fmt.Printf("deterministic set beats the random baseline by %d faults with %.1fx fewer vectors\n",
			gen.Detected-rndRes.NumDet, float64(rnd.Len())/float64(gen.Vectors.Len()))
	}
}
