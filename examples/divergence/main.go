// Divergence walks the paper's Figure 1: concurrent fault simulation
// represents a faulty machine explicitly only where it differs from the
// good machine. Driving a small circuit vector by vector, the trace shows
// fault elements diverging when an effect appears, converging when the
// machine re-joins the good machine, and dropping on detection.
package main

import (
	"fmt"
	"log"

	faultsim "repro"
	"repro/internal/csim"
)

// Like Figure 1: G1 fans out to G3 and G4, so a fault effect at G1 can
// stay alive through one path while converging on the other.
const bench = `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z3)
OUTPUT(z4)
g1 = AND(a, b)
g2 = OR(b, c)
z3 = OR(g1, c)
z4 = AND(g1, g2)
`

func main() {
	c, err := faultsim.ParseBench("fig1", bench)
	if err != nil {
		log.Fatal(err)
	}
	u := faultsim.StuckFaults(c)

	cfg := faultsim.CsimV() // no macros, so every gate is visible in the trace
	cfg.Trace = func(ev csim.TraceEvent) {
		kind := map[csim.TraceKind]string{
			csim.TraceDiverge:  "diverge ",
			csim.TraceConverge: "converge",
			csim.TraceDetect:   "DETECT  ",
		}[ev.Kind]
		fmt.Printf("  t=%d  %s  fault %-14s at gate %s\n",
			ev.Vec, kind, u.Faults[ev.Fault].Name(c), c.Gate(ev.Gate).Name)
	}
	sim, err := faultsim.New(u, cfg)
	if err != nil {
		log.Fatal(err)
	}

	seq := [][]byte{
		{'1', '1', '0'}, // activates faults on the g1 cone
		{'0', '1', '0'}, // g1 falls: some machines converge, others persist
		{'1', '0', '1'}, // Figure 1.2: fault implicit at g1, explicit beyond
		{'0', '0', '0'},
	}
	for t, row := range seq {
		fmt.Printf("vector %d: a=%c b=%c c=%c\n", t, row[0], row[1], row[2])
		vs, err := faultsim.ParseVectors(string(row)+"\n", 3)
		if err != nil {
			log.Fatal(err)
		}
		sim.Cycle(vs.Vecs[0])
		st := sim.Stats()
		fmt.Printf("  live fault elements: %d\n", st.CurElems)
	}

	res := sim.Result()
	fmt.Printf("\ndetected %d/%d faults in %d vectors\n",
		res.NumDet, u.NumFaults(), len(seq))
}
