// Quickstart: parse a small netlist, build the stuck-at universe, simulate
// a random test sequence with the paper's best configuration (csim-MV),
// and report coverage alongside the PROOFS baseline and the serial oracle.
package main

import (
	"fmt"
	"log"

	faultsim "repro"
)

const bench = `
# a 2-bit loadable counter with carry-out
INPUT(load)
INPUT(d0)
INPUT(d1)
OUTPUT(carry)
OUTPUT(q0)
OUTPUT(q1)
nload = NOT(load)
t0    = NOT(q0)
x1    = XOR(q1, q0)
h0    = AND(t0, nload)
h1    = AND(x1, nload)
l0    = AND(d0, load)
l1    = AND(d1, load)
n0    = OR(h0, l0)
n1    = OR(h1, l1)
carry = AND(q0, q1)
q0 = DFF(n0)
q1 = DFF(n1)
`

func main() {
	c, err := faultsim.ParseBench("counter2", bench)
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("circuit %s: %d PIs, %d POs, %d FFs, %d gates, depth %d\n",
		c.Name, st.PIs, st.POs, st.DFFs, st.Gates, st.MaxLevel)

	u := faultsim.StuckFaults(c)
	fmt.Printf("collapsed stuck-at universe: %d faults\n", u.NumFaults())

	vs := faultsim.RandomVectors(c, 64, 2026)

	// The paper's simulator with both improvements.
	sim, err := faultsim.New(u, faultsim.CsimMV())
	if err != nil {
		log.Fatal(err)
	}
	res := sim.Run(vs)
	stats := sim.Stats()
	fmt.Printf("csim-MV:  %d/%d detected (%.1f%%), %d potential-only\n",
		res.NumDet, u.NumFaults(), 100*res.Coverage(), res.NumPotOnly())
	fmt.Printf("          %d macros (Figure 3 extraction), peak %d fault elements\n",
		stats.Macros, stats.PeakElems)

	// The PROOFS baseline must agree exactly.
	pr, err := faultsim.NewProofs(u)
	if err != nil {
		log.Fatal(err)
	}
	prRes := pr.Run(vs)
	fmt.Printf("PROOFS:   %d/%d detected — agreement: %v\n",
		prRes.NumDet, u.NumFaults(), res.Diff(prRes) == "")

	// And so must the brute-force oracle.
	oracle := faultsim.SimulateSerial(u, vs)
	fmt.Printf("serial:   %d/%d detected — agreement: %v\n",
		oracle.NumDet, u.NumFaults(), res.Diff(oracle) == "")

	fmt.Println("undetected faults:")
	for i, f := range u.Faults {
		if !res.Detected[i] {
			fmt.Printf("  %s\n", f.Name(c))
		}
	}
}
