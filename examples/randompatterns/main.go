// Randompatterns reruns the Table 5 experiment shape: random-pattern fault
// simulation of a large benchmark, comparing csim-MV with the PROOFS
// baseline as the pattern count grows. The paper's observation to verify:
// memory stays lower than under high-coverage deterministic patterns,
// because faults activate slowly.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	faultsim "repro"
)

func main() {
	circuit := flag.String("circuit", "s5378", "suite benchmark to simulate")
	flag.Parse()

	c, err := faultsim.Benchmark(*circuit)
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("%s: %d gates, %d FFs, collapsed faults: %d\n",
		c.Name, st.Gates, st.DFFs, faultsim.StuckFaults(c).NumFaults())
	fmt.Printf("%-8s %-9s %-12s %-12s %-12s\n",
		"#ptns", "fltcvg%", "csim-MV s", "csim-MV MB", "PROOFS s")

	for _, n := range []int{50, 100, 200, 400} {
		u := faultsim.StuckFaults(c)
		vs := faultsim.RandomVectors(c, n, 7)

		start := time.Now()
		sim, err := faultsim.New(u, faultsim.CsimMV())
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run(vs)
		csimTime := time.Since(start)

		u2 := faultsim.StuckFaults(c)
		start = time.Now()
		pr, err := faultsim.NewProofs(u2)
		if err != nil {
			log.Fatal(err)
		}
		prRes := pr.Run(vs)
		prTime := time.Since(start)

		if d := res.Diff(prRes); d != "" {
			log.Fatalf("engines disagree:\n%s", d)
		}
		fmt.Printf("%-8d %-9.1f %-12.2f %-12.2f %-12.2f\n",
			n, 100*res.Coverage(), csimTime.Seconds(),
			float64(sim.Stats().MemBytes)/(1<<20), prTime.Seconds())
	}
}
