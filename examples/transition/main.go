// Transition walks the paper's Figure 4 and Table 1: simulating gate-input
// transition (gross delay) faults in a sequential circuit.
//
// The circuit is the figure's shape: gate G1's input 1 is fed by a primary
// input; its input 2 is fed from a flip-flop, and the output O is observed.
// A 0→1 transition fault at input 1 delays the rising edge past the sample
// point, so the two-vector sequence 0,1 exposes it; the 1→0 fault needs the
// longer sequence the paper walks through, because the latched state must
// first be set up and the sensitizing side input re-established.
package main

import (
	"fmt"
	"log"

	faultsim "repro"
	"repro/internal/faults"
	"repro/internal/logic"
)

const bench = `
INPUT(in1)
OUTPUT(o)
q   = DFF(in1)
nq  = NOT(q)
o   = NAND(in1, nq)
`

func main() {
	// Table 1 first: the complete PV/CV -> FV relationship.
	fmt.Println("Table 1. Transition fault value relationship")
	fmt.Println("  PV CV | FV(slow-to-rise) FV(slow-to-fall)")
	for _, pv := range []logic.V{logic.Zero, logic.One, logic.X} {
		for _, cv := range []logic.V{logic.Zero, logic.One, logic.X} {
			fmt.Printf("  %s  %s  |        %s               %s\n",
				pv, cv,
				faults.TransitionFV(faults.STR, pv, cv),
				faults.TransitionFV(faults.STF, pv, cv))
		}
	}

	c, err := faultsim.ParseBench("fig4", bench)
	if err != nil {
		log.Fatal(err)
	}
	u := faultsim.TransitionFaults(c)
	fmt.Printf("\ncircuit fig4: %d transition faults (two per gate input)\n", u.NumFaults())

	show := func(title, vecText string) {
		vs, err := faultsim.ParseVectors(vecText, 1)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := faultsim.New(u, faultsim.CsimMV())
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run(vs)
		fmt.Printf("\n%s (%d vectors):\n", title, vs.Len())
		for i, f := range u.Faults {
			mark := " "
			if res.Detected[i] {
				mark = fmt.Sprintf("detected at t=%d", res.DetectedAt[i])
			}
			fmt.Printf("  %-16s %s\n", f.Name(c), mark)
		}
	}

	// A rising edge at in1, observed combinationally and through the FF.
	show("sequence 0,1,1", "0\n1\n1\n")
	// The paper's longer walk for the 1->0 fault: set the flip-flop, let
	// the side input settle, then launch the falling edge.
	show("sequence 1,1,0,1,0", "1\n1\n0\n1\n0\n")

	// Cross-check against the oracle.
	vs, _ := faultsim.ParseVectors("1\n1\n0\n1\n0\n", 1)
	sim, _ := faultsim.New(u, faultsim.CsimMV())
	res := sim.Run(vs)
	oracle := faultsim.SimulateSerial(u, vs)
	fmt.Printf("\nconcurrent vs serial agreement: %v\n", res.Diff(oracle) == "")
}
