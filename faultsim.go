// Package faultsim is a concurrent fault simulator for synchronous
// sequential circuits, reproducing Lee and Reddy, "On Efficient Concurrent
// Fault Simulation for Synchronous Sequential Circuits" (DAC 1992).
//
// It simulates one good machine and many faulty machines together over
// gate-level ISCAS-89 style netlists, supporting the single stuck-at and
// the gate-input transition (gross delay) fault models, with the paper's
// three engineering improvements — event-driven fault dropping,
// visible/invisible fault-list splitting, and fanout-free-region macro
// extraction — plus a PROOFS-style bit-parallel baseline, a brute-force
// serial oracle, a deterministic sequential test generator, and a seeded
// benchmark-circuit generator.
//
// Quick start:
//
//	c, _ := faultsim.ParseBench("adder", benchText)
//	u := faultsim.StuckFaults(c)
//	sim, _ := faultsim.New(u, faultsim.CsimMV())
//	res := sim.Run(faultsim.RandomVectors(c, 1000, 1))
//	fmt.Printf("coverage %.1f%%\n", 100*res.Coverage())
//
// The subsystem packages under internal/ carry the implementation; this
// package is the supported surface.
package faultsim

import (
	"context"
	"io"
	"log/slog"

	"repro/internal/atpg"
	"repro/internal/compiled"
	"repro/internal/csim"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/goodsim"
	"repro/internal/iscas"
	"repro/internal/macro"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/proofs"
	"repro/internal/serial"
	"repro/internal/service"
	"repro/internal/vectors"
)

// Core circuit types.
type (
	// Circuit is a levelized gate-level synchronous sequential circuit.
	Circuit = netlist.Circuit
	// Gate is one circuit node.
	Gate = netlist.Gate
	// GateID indexes a gate within its circuit.
	GateID = netlist.GateID
	// CircuitSpec prescribes a synthetic benchmark's shape.
	CircuitSpec = gen.Spec
)

// Fault model types.
type (
	// Fault is a single stuck-at or transition fault.
	Fault = faults.Fault
	// FaultKind is SA0, SA1, STR or STF.
	FaultKind = faults.Kind
	// Universe is a fault list over a circuit.
	Universe = faults.Universe
	// Result accumulates detections.
	Result = faults.Result
)

// Simulation types.
type (
	// Config selects the concurrent simulator variant.
	Config = csim.Config
	// ParallelConfig configures the fault-partition parallel engine
	// (csim-P): a worker count plus the per-partition variant.
	ParallelConfig = parallel.Options
	// VectorConfig configures the vector-partition parallel engine
	// (csim-V2): a window count plus the per-window variant.
	VectorConfig = parallel.VOptions
	// GridConfig configures the 2-D fault×vector grid engine (csim-grid).
	GridConfig = parallel.GridOptions
	// GridAutoConfig configures a scheduler-planned grid run.
	GridAutoConfig = parallel.AutoOptions
	// GridPlan is the unified scheduler's K×W split decision.
	GridPlan = parallel.Plan
	// JobShape describes one simulation job to the unified scheduler.
	JobShape = parallel.JobShape
	// Simulator is the concurrent fault simulator (the paper's csim).
	Simulator = csim.Simulator
	// SimStats instruments a concurrent-simulation run.
	SimStats = csim.Stats
	// Proofs is the PROOFS-style bit-parallel baseline simulator.
	Proofs = proofs.Sim
	// GoodSim is the fault-free reference simulator.
	GoodSim = goodsim.Sim
	// CompiledProgram is a circuit lowered once for the compiled
	// bit-parallel engine (csim-C): branch-free levelized straight-line
	// evaluation over flat word arrays. Immutable and shareable across
	// concurrent simulators.
	CompiledProgram = compiled.Program
	// CompiledSim is the csim-C fault simulator: a packed good-machine
	// trace plus per-fault bit-parallel cone re-evaluation, 64 vectors
	// per pass.
	CompiledSim = compiled.Sim
	// CompiledGood is the compiled good machine: macro-inlined table
	// lookups over the compiled program, no fault simulation.
	CompiledGood = compiled.Good
	// MacroPlan is a fanout-free-region macro-extraction plan over a
	// circuit (Config.Plan, CompileCircuit).
	MacroPlan = macro.Plan
	// Vectors is an ordered test sequence.
	Vectors = vectors.Set
	// ATPGOptions tunes the deterministic test generator.
	ATPGOptions = atpg.Options
	// ATPGResult reports a generation campaign.
	ATPGResult = atpg.Result
)

// Observability types (see OBSERVABILITY.md).
type (
	// Observer bundles the observability layer handed to a run: a metric
	// registry, a phase tracer, and a fault-lifecycle log, any of which
	// may be nil. A nil *Observer disables observation entirely at zero
	// per-event cost.
	Observer = obs.Observer
	// MetricRegistry is a typed registry of counters, gauges and
	// histograms.
	MetricRegistry = obs.Registry
	// PhaseTracer records span-style phase timings and can emit a
	// chrome://tracing JSON trace.
	PhaseTracer = obs.Tracer
	// FaultEventLog records per-fault lifecycle events (injected,
	// diverged, became-visible, latched, detected, dropped).
	FaultEventLog = obs.FaultLog
	// FaultEvent is one fault-lifecycle event.
	FaultEvent = obs.FaultEvent
	// Logger is the structured logger handed to a run through
	// Observer.Log: a nil-safe slog wrapper. A nil *Logger disables
	// logging at zero per-record cost.
	Logger = obs.Logger
	// FlightRecorder is the bounded per-job ring buffer of lifecycle
	// events that backs a postmortem dump; nil disables recording.
	FlightRecorder = obs.FlightRecorder
	// FlightEvent is one recorded lifecycle event.
	FlightEvent = obs.FlightEvent
)

// Fault kinds.
const (
	SA0 = faults.SA0 // stuck-at-0
	SA1 = faults.SA1 // stuck-at-1
	STR = faults.STR // slow-to-rise transition fault
	STF = faults.STF // slow-to-fall transition fault
)

// ParseBench parses an ISCAS-89 .bench netlist.
func ParseBench(name, text string) (*Circuit, error) {
	return netlist.ParseBenchString(name, text)
}

// ReadBench reads a .bench netlist from a stream.
func ReadBench(name string, r io.Reader) (*Circuit, error) {
	return netlist.ParseBench(name, r)
}

// WriteBench serializes a circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return netlist.WriteBench(w, c) }

// GenerateCircuit builds a seeded synthetic benchmark circuit.
func GenerateCircuit(spec CircuitSpec) (*Circuit, error) { return gen.Generate(spec) }

// Benchmark returns a circuit from the built-in suite (the genuine s27 or
// a published-shape stand-in such as "s5378").
func Benchmark(name string) (*Circuit, error) { return iscas.Get(name) }

// BenchmarkNames lists the built-in suite.
func BenchmarkNames() []string { return iscas.Names() }

// StuckFaults builds the equivalence-collapsed single stuck-at universe.
func StuckFaults(c *Circuit) *Universe { return faults.StuckCollapsed(c) }

// StuckFaultsAll builds the complete (uncollapsed) stuck-at universe.
func StuckFaultsAll(c *Circuit) *Universe { return faults.StuckAll(c) }

// TransitionFaults builds the §3 transition-fault universe.
func TransitionFaults(c *Circuit) *Universe { return faults.Transition(c) }

// Csim returns the base concurrent simulator configuration (no
// improvements); CsimV, CsimM and CsimMV enable the paper's variants.
func Csim() Config { return Config{} }

// CsimV enables visible/invisible fault-list splitting.
func CsimV() Config { return csim.V() }

// CsimM enables macro extraction.
func CsimM() Config { return csim.M() }

// CsimMV enables both improvements — the paper's best configuration.
func CsimMV() Config { return csim.MV() }

// CsimP configures the fault-partition parallel engine: the csim-MV
// variant sharded over `workers` goroutines (workers <= 0 means
// runtime.NumCPU()), each replaying a shared good-machine trace. The
// merged result is bit-identical to the single-threaded run regardless of
// worker count.
func CsimP(workers int) ParallelConfig {
	return parallel.Options{Workers: workers, Config: csim.MV()}
}

// SimulateParallel runs the csim-P engine over the whole vector set and
// returns the merged detections plus merged instrumentation counters.
func SimulateParallel(u *Universe, vs *Vectors, cfg ParallelConfig) (*Result, SimStats, error) {
	return parallel.Simulate(u, vs, cfg)
}

// CsimV2 configures the vector-partition parallel engine: the csim-MV
// variant over the vector sequence split into `windows` concurrent
// speculative windows (windows <= 0 means runtime.NumCPU()), stitched
// with targeted repair runs. The merged result is bit-identical to the
// single-threaded run regardless of window count.
func CsimV2(windows int) VectorConfig {
	return parallel.VOptions{Windows: windows, Config: csim.MV()}
}

// SimulateVectorParallel runs the csim-V2 engine and returns the merged
// detections plus summed instrumentation counters.
func SimulateVectorParallel(u *Universe, vs *Vectors, cfg VectorConfig) (*Result, SimStats, error) {
	return parallel.SimulateVectorSharded(u, vs, cfg)
}

// CsimGrid configures the 2-D engine: faultShards fault partitions
// crossed with windows vector windows (each axis <= 0 defaults to 1).
func CsimGrid(faultShards, windows int) GridConfig {
	return parallel.GridOptions{FaultShards: faultShards, Windows: windows, Config: csim.MV()}
}

// SimulateGrid runs the csim-grid engine at the configured shape.
func SimulateGrid(u *Universe, vs *Vectors, cfg GridConfig) (*Result, SimStats, error) {
	return parallel.SimulateGrid(u, vs, cfg)
}

// PlanGrid asks the unified scheduler for the K×W split it would use
// for a job of the given shape. The decision is deterministic.
func PlanGrid(sh JobShape) GridPlan { return parallel.Decide(sh) }

// SimulateGridAuto lets the scheduler pick the grid shape for the job,
// runs it, and returns the plan used alongside the merged result.
func SimulateGridAuto(u *Universe, vs *Vectors, cfg GridAutoConfig) (*Result, SimStats, GridPlan, error) {
	return parallel.SimulateAuto(u, vs, cfg)
}

// NewObserver builds a fully enabled observability bundle: a fresh
// metric registry with a phase tracer feeding it. Attach a fault log by
// setting the Faults field; attach the bundle through Config.Obs or
// ParallelConfig.Obs.
func NewObserver() *Observer {
	reg := obs.NewRegistry()
	return &obs.Observer{Metrics: reg, Tracer: obs.NewTracer(reg)}
}

// NewFaultLog builds a fault-lifecycle event log for a universe of
// numFaults faults. track selects the fault IDs to record (nil = all);
// limit bounds the in-memory event count (0 = default).
func NewFaultLog(numFaults int, track []int32, limit int) *FaultEventLog {
	return obs.NewFaultLog(numFaults, track, limit)
}

// NewLogger wraps a slog handler into the nil-safe structured logger the
// engines accept through Observer.Log. A nil handler yields a nil
// (disabled) logger.
func NewLogger(h slog.Handler) *Logger { return obs.NewLogger(h) }

// NewFlightRecorder builds a bounded lifecycle ring buffer holding the
// most recent capacity events (capacity <= 0 uses the default).
func NewFlightRecorder(capacity int) *FlightRecorder {
	return obs.NewFlightRecorder(capacity)
}

// WithJobID returns a context carrying a correlation ID; the service
// client sends it as the X-Csim-Job-Id header and the server adopts it
// as the job's ID.
func WithJobID(ctx context.Context, id string) context.Context {
	return obs.WithJobID(ctx, id)
}

// JobIDFrom extracts the correlation ID from ctx ("" when absent).
func JobIDFrom(ctx context.Context) string { return obs.JobIDFrom(ctx) }

// New builds a concurrent fault simulator over a universe.
func New(u *Universe, cfg Config) (*Simulator, error) { return csim.New(u, cfg) }

// NewProofs builds the PROOFS baseline simulator (stuck-at only).
func NewProofs(u *Universe) (*Proofs, error) { return proofs.New(u) }

// NewGoodSim builds a fault-free simulator.
func NewGoodSim(c *Circuit) *GoodSim { return goodsim.New(c) }

// CompileCircuit lowers a circuit for the csim-C engine. plan may be
// nil; a non-nil macro plan additionally inlines macros as lookup
// tables in the compiled good machine (NewCompiledGood).
func CompileCircuit(c *Circuit, plan *MacroPlan) *CompiledProgram {
	return compiled.Compile(c, plan)
}

// NewCompiled builds the csim-C fault simulator, compiling the
// universe's circuit internally. To amortize compilation across
// universes (say, stuck-at and transition over one circuit), use
// CompileCircuit once and NewCompiledWith per universe.
func NewCompiled(u *Universe) (*CompiledSim, error) { return compiled.New(u) }

// NewCompiledWith builds a csim-C simulator over an already compiled
// program; the program must be compiled from the universe's circuit.
func NewCompiledWith(p *CompiledProgram, u *Universe) (*CompiledSim, error) {
	return compiled.NewWith(p, u)
}

// SimulateCompiled runs the csim-C engine over the whole vector set.
// Detections are bit-identical to SimulateSerial.
func SimulateCompiled(u *Universe, vs *Vectors) (*Result, error) {
	sim, err := compiled.New(u)
	if err != nil {
		return nil, err
	}
	return sim.Run(vs), nil
}

// NewCompiledGood builds the compiled good machine over a program.
func NewCompiledGood(p *CompiledProgram) *CompiledGood { return p.NewGood() }

// ExtractMacros builds the fanout-free-region macro plan csim-M/csim-MV
// use (maxInputs <= 0 uses the default cap).
func ExtractMacros(c *Circuit, maxInputs int) (*MacroPlan, error) {
	if maxInputs <= 0 {
		maxInputs = macro.DefaultMaxInputs
	}
	return macro.Extract(c, maxInputs)
}

// SimulateSerial runs the brute-force oracle (one resimulation per fault).
func SimulateSerial(u *Universe, vs *Vectors) *Result { return serial.Simulate(u, vs) }

// RandomVectors generates n seeded random binary test vectors.
func RandomVectors(c *Circuit, n int, seed int64) *Vectors {
	return vectors.Random(c, n, seed)
}

// ParseVectors parses a vector file (one 0/1/X line per cycle).
func ParseVectors(text string, numPIs int) (*Vectors, error) {
	return vectors.ParseString(text, numPIs)
}

// GenerateTests runs the deterministic sequential test generator.
func GenerateTests(u *Universe, opts ATPGOptions) ATPGResult { return atpg.Generate(u, opts) }

// Service types (the csimd server and its client; see DESIGN.md §10).
type (
	// ServeConfig tunes the fault-simulation service: listen address,
	// worker-pool size, admission-queue depth, compiled-circuit cache
	// capacity, size and time bounds, and the observability bundle.
	ServeConfig = service.Config
	// Server is the networked fault-simulation service behind cmd/csimd:
	// an HTTP/JSON job API in front of a bounded queue and a worker pool
	// over this package's engines.
	Server = service.Server
	// ServeClient talks to a running csimd server: submit, poll, wait,
	// cancel, and read the metrics snapshot.
	ServeClient = service.Client
	// JobSpec describes one simulation job submitted to a Server: the
	// circuit (suite name or inline .bench), fault model, engine, and
	// vector spec.
	JobSpec = service.JobSpec
	// JobView is a job's status/result as the service reports it.
	JobView = service.JobView
	// JobResult is a finished job's payload: detections, coverage and
	// engine counters.
	JobResult = service.ResultView
	// JobPostmortem is a job's flight-recorder dump as served at
	// GET /api/v1/jobs/{id}/debug.
	JobPostmortem = service.Postmortem
)

// NewServer builds the fault-simulation service; call Start on it to
// serve, and Drain (graceful) or Close (hard) to stop.
func NewServer(cfg ServeConfig) *Server { return service.New(cfg) }

// NewServeClient builds a client for a csimd server's base URL, e.g.
// "http://127.0.0.1:8416".
func NewServeClient(baseURL string) *ServeClient { return service.NewClient(baseURL) }

// Distributed types (the csimd coordinator; see DESIGN.md §13).
type (
	// DistConfig tunes a distributed coordinator: the worker fleet's
	// base URLs, health-probe and shard-timeout bounds, retry policy,
	// and the observability bundle.
	DistConfig = dist.Config
	// Coordinator fans jobs out to a csimd worker fleet as
	// fault-partition shards and merges the results deterministically.
	// It implements the service tier's JobRunner, so NewServer with
	// ServeConfig.Runner set to a Coordinator serves the ordinary job
	// API distributed.
	Coordinator = dist.Coordinator
)

// NewCoordinator builds a distributed coordinator over a worker fleet
// and starts its health probers; Close stops them. Plug it into a
// server via ServeConfig.Runner.
func NewCoordinator(cfg DistConfig) (*Coordinator, error) { return dist.New(cfg) }

// SimulateDistributed runs one simulation job across a csimd worker
// fleet and waits for the merged result: a self-contained helper that
// brings up a coordinator-fronted server on a loopback port, submits
// spec, and tears everything down. The result is bit-identical to the
// same spec run locally. For anything beyond a one-shot — job streams,
// polling, cancellation — build a NewCoordinator-backed NewServer and
// use the job API.
func SimulateDistributed(ctx context.Context, cfg DistConfig, spec JobSpec) (*JobResult, error) {
	coord, err := dist.New(cfg)
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	srv := service.New(service.Config{Addr: "127.0.0.1:0", Runner: coord, Obs: cfg.Obs, Log: cfg.Log})
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()
	v, err := service.NewClient("http://"+srv.Addr()).Run(ctx, spec, 0)
	if err != nil {
		return nil, err
	}
	if v.Status != service.StatusDone {
		return nil, &DistJobError{Status: string(v.Status), Msg: v.Error}
	}
	return v.Result, nil
}

// DistJobError reports a distributed job that ended in a non-done
// terminal state (failed or cancelled).
type DistJobError struct {
	// Status is the terminal job status.
	Status string
	// Msg is the job's error line.
	Msg string
}

// Error renders the terminal status and the job's error line.
func (e *DistJobError) Error() string {
	return "distributed job " + e.Status + ": " + e.Msg
}
