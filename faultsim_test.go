package faultsim_test

import (
	"strings"
	"testing"

	faultsim "repro"
)

// TestPublicAPIEndToEnd drives the complete documented flow through the
// facade: parse, build universes, simulate with every engine, generate
// tests, and check the engines agree.
func TestPublicAPIEndToEnd(t *testing.T) {
	c, err := faultsim.Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	u := faultsim.StuckFaults(c)
	if u.NumFaults() == 0 {
		t.Fatal("empty universe")
	}
	vs := faultsim.RandomVectors(c, 100, 7)

	sim, err := faultsim.New(u, faultsim.CsimMV())
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(vs)

	pr, err := faultsim.NewProofs(u)
	if err != nil {
		t.Fatal(err)
	}
	prRes := pr.Run(vs)
	if d := res.Diff(prRes); d != "" {
		t.Errorf("csim vs PROOFS:\n%s", d)
	}
	oracle := faultsim.SimulateSerial(u, vs)
	if d := res.Diff(oracle); d != "" {
		t.Errorf("csim vs serial:\n%s", d)
	}

	pres, pstats, err := faultsim.SimulateParallel(u, vs, faultsim.CsimP(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := pres.Diff(oracle); d != "" {
		t.Errorf("csim-P vs serial:\n%s", d)
	}
	if pstats.Detections != pres.NumDet {
		t.Errorf("csim-P stats report %d detections, result has %d",
			pstats.Detections, pres.NumDet)
	}

	vres, _, err := faultsim.SimulateVectorParallel(u, vs, faultsim.CsimV2(3))
	if err != nil {
		t.Fatal(err)
	}
	if d := vres.Diff(oracle); d != "" {
		t.Errorf("csim-V2 vs serial:\n%s", d)
	}
	gres, _, err := faultsim.SimulateGrid(u, vs, faultsim.CsimGrid(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d := gres.Diff(oracle); d != "" {
		t.Errorf("csim-grid vs serial:\n%s", d)
	}
	ares, _, plan, err := faultsim.SimulateGridAuto(u, vs, faultsim.GridAutoConfig{
		MaxProcs: 4, Config: faultsim.CsimMV()})
	if err != nil {
		t.Fatal(err)
	}
	if plan.FaultShards < 1 || plan.Windows < 1 {
		t.Errorf("scheduler plan %v has an empty axis", plan)
	}
	if plan != faultsim.PlanGrid(faultsim.JobShape{
		Gates: len(c.Gates), Faults: u.NumFaults(), Vectors: vs.Len(), MaxProcs: 4,
	}) {
		t.Errorf("SimulateGridAuto plan %v differs from PlanGrid", plan)
	}
	if d := ares.Diff(oracle); d != "" {
		t.Errorf("auto csim-grid vs serial:\n%s", d)
	}

	tu := faultsim.TransitionFaults(c)
	tsim, err := faultsim.New(tu, faultsim.CsimV())
	if err != nil {
		t.Fatal(err)
	}
	tres := tsim.Run(vs)
	if d := tres.Diff(faultsim.SimulateSerial(tu, vs)); d != "" {
		t.Errorf("transition csim vs serial:\n%s", d)
	}

	gen := faultsim.GenerateTests(u, faultsim.ATPGOptions{Seed: 3, RandomPreamble: 16})
	if gen.Vectors.Len() == 0 {
		t.Error("ATPG produced no vectors")
	}
}

func TestPublicAPIBenchIO(t *testing.T) {
	c, err := faultsim.ParseBench("tiny", "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := faultsim.WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := faultsim.ReadBench("tiny2", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Stats().Gates != c.Stats().Gates {
		t.Error("bench round trip changed the circuit")
	}
}

func TestPublicAPIGenerate(t *testing.T) {
	c, err := faultsim.GenerateCircuit(faultsim.CircuitSpec{
		Name: "g", PIs: 4, POs: 4, DFFs: 4, Gates: 60, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Gates; got != 60 {
		t.Errorf("generated %d gates, want 60", got)
	}
	names := faultsim.BenchmarkNames()
	if len(names) == 0 || names[0] != "s27" {
		t.Errorf("BenchmarkNames = %v", names)
	}
}

func TestGoodSimFacade(t *testing.T) {
	c, err := faultsim.ParseBench("b", "INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = BUFF(q)\n")
	if err != nil {
		t.Fatal(err)
	}
	gs := faultsim.NewGoodSim(c)
	vs, err := faultsim.ParseVectors("1\n0\n", 1)
	if err != nil {
		t.Fatal(err)
	}
	gs.Cycle(vs.Vecs[0])
	out := gs.Cycle(vs.Vecs[1])
	if out[0] != faultsim.SA1.StuckValue() { // logic.One via the facade constants
		t.Errorf("z = %v, want 1", out[0])
	}
}
