// Package atpg generates deterministic test sequences for single stuck-at
// faults in synchronous sequential circuits, reproducing the role of the
// authors' companion test generator (reference [14] of the paper): the
// higher-coverage deterministic pattern sets of Tables 2-4.
//
// The algorithm is PODEM extended over an iterative time-frame expansion:
// the circuit is unrolled up to MaxFrames copies starting from the all-X
// state, every signal carries a dual-rail ternary pair (good value, faulty
// value), and decisions are made only at primary inputs of specific
// frames, found by backtracing objectives through the unrolled netlist.
// Between targets, generated sequences are fault-simulated (with the
// concurrent simulator) so that one sequence drops many faults.
package atpg

import (
	"math/rand"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// Options tunes the generator.
type Options struct {
	MaxFrames    int   // time-frame unroll bound per target (default 8)
	MaxBacktrack int   // PODEM backtrack limit per target (default 400)
	Seed         int64 // randomizes fill values and tie-breaking
	FillRandom   bool  // fill unassigned PIs randomly (true) or with 0
	// RandomPreamble prepends this many random vectors and drops whatever
	// they detect before deterministic targeting begins — the standard
	// two-phase flow, which also keeps campaign time in check.
	RandomPreamble int
}

func (o Options) withDefaults() Options {
	if o.MaxFrames == 0 {
		o.MaxFrames = 8
	}
	if o.MaxBacktrack == 0 {
		o.MaxBacktrack = 400
	}
	return o
}

// Result reports a generation campaign.
type Result struct {
	Vectors    *vectors.Set
	Detected   int // faults detected by the emitted sequence (via csim)
	Aborted    int // targets abandoned at the backtrack limit
	Untestable int // targets proven untestable within the frame bound
	Targeted   int // faults explicitly targeted
}

// pair is a dual-rail ternary signal value: the good machine's value and
// the faulty machine's value.
type pair struct {
	g, f logic.V
}

func (p pair) isD() bool { // D or D-bar: binary difference
	return p.g.Binary() && p.f.Binary() && p.g != p.f
}

type gen struct {
	c    *netlist.Circuit
	opts Options
	rng  *rand.Rand

	flt *faults.Fault

	// frames[t].val[g] is the dual-rail value of gate g in frame t.
	frames []frame
	// decisions records assigned PIs for backtracking.
	decisions []decision

	untestable bool // set when the bounded search space was exhausted
}

type frame struct {
	val []pair
	// piSet[i] marks primary input i as decided in this frame.
	piSet []bool
	piVal []logic.V
}

type decision struct {
	frame   int
	pi      int // index into circuit PIs
	val     logic.V
	flipped bool
}

// Generate runs a full campaign over the universe: target undetected
// faults one by one, fault-simulate each emitted sequence, drop everything
// it detects, and continue until all faults are classified or targeted.
func Generate(u *faults.Universe, opts Options) Result {
	opts = opts.withDefaults()
	c := u.Circuit
	res := Result{Vectors: vectors.New(len(c.PIs))}
	rng := rand.New(rand.NewSource(opts.Seed))

	sim, err := csim.New(u, csim.MV())
	if err != nil {
		panic(err) // universe and circuit come from the same caller
	}
	if opts.RandomPreamble > 0 {
		pre := vectors.Random(c, opts.RandomPreamble, opts.Seed+31)
		for _, vec := range pre.Vecs {
			res.Vectors.Append(vec)
			sim.Cycle(vec)
		}
	}
	for fi := range u.Faults {
		if sim.Result().Detected[fi] {
			continue
		}
		f := &u.Faults[fi]
		if !f.Kind.Stuck() {
			continue // the deterministic generator targets stuck-at faults
		}
		res.Targeted++
		g := &gen{c: c, opts: opts, rng: rng, flt: f}
		seq, ok := g.target()
		switch {
		case ok:
			for _, vec := range seq {
				res.Vectors.Append(vec)
				sim.Cycle(vec)
			}
		case g.untestable:
			res.Untestable++
		default:
			res.Aborted++
		}
	}
	res.Detected = sim.Result().NumDet
	return res
}

// GenerateVectors is a convenience wrapper returning only the test set.
func GenerateVectors(u *faults.Universe, opts Options) *vectors.Set {
	return Generate(u, opts).Vectors
}
