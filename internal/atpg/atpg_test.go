package atpg

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/serial"
	"repro/internal/vectors"
)

func mustParse(t *testing.T, name, text string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCombinationalFullCoverage(t *testing.T) {
	// Every fault of an irredundant combinational circuit must be found.
	c := mustParse(t, "comb", `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
n1 = NAND(a, b)
n2 = NOR(b, c)
z = XOR(n1, n2)
`)
	u := faults.StuckCollapsed(c)
	res := Generate(u, Options{Seed: 1})
	if res.Detected != u.NumFaults() {
		t.Errorf("detected %d/%d faults; aborted=%d untestable=%d",
			res.Detected, u.NumFaults(), res.Aborted, res.Untestable)
	}
}

func TestSequentialActivationThroughState(t *testing.T) {
	// Detecting faults on z requires latching a value first: sequences
	// must span at least two frames.
	c := mustParse(t, "ff", `
INPUT(a)
OUTPUT(z)
q = DFF(a)
z = AND(q, a)
`)
	u := faults.StuckCollapsed(c)
	res := Generate(u, Options{Seed: 3})
	if got := float64(res.Detected) / float64(u.NumFaults()); got < 0.9 {
		t.Errorf("coverage %.2f too low; aborted=%d untestable=%d",
			got, res.Aborted, res.Untestable)
	}
	if res.Vectors.Len() < 2 {
		t.Errorf("sequence of %d vectors cannot exercise state", res.Vectors.Len())
	}
}

func TestS27CoverageBeatsRandom(t *testing.T) {
	// Note: under 3-valued simulation from the all-X state the good s27
	// machine reaches only 8 states and its PO never outputs 0, so hard
	// (binary/binary) detection coverage is structurally capped well below
	// the nominal fault count. The deterministic generator must therefore
	// detect everything a long random sequence detects, with far fewer
	// vectors.
	c := iscas.MustGet("s27")
	u := faults.StuckCollapsed(c)
	res := Generate(u, Options{Seed: 7, FillRandom: true})
	// Cross-check the claimed coverage with the independent serial oracle.
	oracle := serial.Simulate(u, res.Vectors)
	if oracle.NumDet != res.Detected {
		t.Fatalf("campaign reports %d detections, serial oracle %d", res.Detected, oracle.NumDet)
	}
	rnd := serial.Simulate(u, vectors.Random(c, 1000, 99))
	for i := range rnd.Detected {
		if rnd.Detected[i] && !oracle.Detected[i] {
			t.Errorf("random-detectable fault %s missed by ATPG", u.Faults[i].Name(c))
		}
	}
	if res.Vectors.Len() >= 1000 {
		t.Errorf("ATPG needed %d vectors; not more compact than random", res.Vectors.Len())
	}
}

func TestUntestableFaultClassified(t *testing.T) {
	// z = OR(a, NOT(a)) is constant 1: z SA1 is untestable.
	c := mustParse(t, "red", `
INPUT(a)
OUTPUT(z)
na = NOT(a)
z = OR(a, na)
`)
	u := faults.StuckAll(c)
	res := Generate(u, Options{Seed: 1})
	if res.Untestable == 0 {
		t.Errorf("no untestable faults found in a redundant circuit (aborted=%d)", res.Aborted)
	}
	// And the testable ones must still be covered: z SA0 is detectable.
	oracle := serial.Simulate(u, res.Vectors)
	var zSA0 int32 = -1
	for i, f := range u.Faults {
		if f.Gate == c.MustByName("z") && f.Pin == faults.OutPin && f.Kind == faults.SA0 {
			zSA0 = int32(i)
		}
	}
	if !oracle.Detected[zSA0] {
		t.Error("z/O SA0 not detected")
	}
}

func TestUnobservableFaultIsUntestable(t *testing.T) {
	// Gate u drives nothing: its faults can never reach a PO.
	c := mustParse(t, "dead", `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
deadend = OR(a, b)
`)
	u := faults.StuckAll(c)
	res := Generate(u, Options{Seed: 2})
	if res.Untestable == 0 {
		t.Error("unobservable faults not classified untestable")
	}
}

func TestDeterministic(t *testing.T) {
	c := iscas.MustGet("s27")
	u := faults.StuckCollapsed(c)
	a := Generate(u, Options{Seed: 11})
	b := Generate(u, Options{Seed: 11})
	if a.Vectors.String() != b.Vectors.String() {
		t.Error("same seed produced different test sets")
	}
	if a.Detected != b.Detected {
		t.Errorf("same seed, different coverage: %d vs %d", a.Detected, b.Detected)
	}
}

func TestGenerateVectorsWrapper(t *testing.T) {
	c := iscas.MustGet("s27")
	u := faults.StuckCollapsed(c)
	vs := GenerateVectors(u, Options{Seed: 5})
	if vs.Len() == 0 || vs.NumPIs != len(c.PIs) {
		t.Errorf("bad vector set: %d vecs, %d PIs", vs.Len(), vs.NumPIs)
	}
}
