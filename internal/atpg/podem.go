package atpg

import (
	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// target attempts to derive a detecting sequence for g.flt. It returns the
// sequence (one vector per frame, X-filled per options) and whether the
// fault was detected.
func (g *gen) target() ([][]logic.V, bool) {
	distFF, reachable := g.ffDistanceToPO()
	if !reachable {
		g.untestable = true
		return nil, false
	}
	backtracks := 0
	exhaustedEverywhere := true
	for k := distFF + 1; k <= g.opts.MaxFrames; k++ {
		g.setupFrames(k)
		aFrame := k - 1 - distFF
		ok, exhausted := g.podem(aFrame, &backtracks)
		if ok {
			return g.extractVectors(), true
		}
		if !exhausted {
			exhaustedEverywhere = false
		}
		if backtracks >= g.opts.MaxBacktrack {
			return nil, false
		}
	}
	g.untestable = exhaustedEverywhere
	return nil, false
}

// ffDistanceToPO returns the minimum number of flip-flop crossings on any
// path from the fault site to a primary output (0-1 BFS), and whether a PO
// is reachable at all.
func (g *gen) ffDistanceToPO() (int, bool) {
	c := g.c
	const inf = 1 << 30
	dist := make([]int, len(c.Gates))
	for i := range dist {
		dist[i] = inf
	}
	// Deque for 0-1 BFS.
	dq := make([]netlist.GateID, 0, 64)
	start := g.flt.Gate
	dist[start] = 0
	dq = append(dq, start)
	for len(dq) > 0 {
		id := dq[0]
		dq = dq[1:]
		gt := c.Gate(id)
		for _, fo := range gt.Fanout {
			w := 0
			if c.Gate(fo).Op == logic.OpDFF {
				w = 1
			}
			if nd := dist[id] + w; nd < dist[fo] {
				dist[fo] = nd
				if w == 0 {
					dq = append([]netlist.GateID{fo}, dq...)
				} else {
					dq = append(dq, fo)
				}
			}
		}
	}
	best := inf
	for _, po := range c.POs {
		if dist[po] < best {
			best = dist[po]
		}
	}
	return best, best < inf
}

func (g *gen) setupFrames(k int) {
	g.frames = g.frames[:0]
	for t := 0; t < k; t++ {
		g.frames = append(g.frames, frame{
			val:   make([]pair, len(g.c.Gates)),
			piSet: make([]bool, len(g.c.PIs)),
			piVal: make([]logic.V, len(g.c.PIs)),
		})
	}
	g.decisions = g.decisions[:0]
	g.simulate(0)
}

// podem runs the decision search with the activation objective pinned at
// frame aFrame. Returns (detected, searchExhausted).
func (g *gen) podem(aFrame int, backtracks *int) (bool, bool) {
	for {
		if g.detected() >= 0 {
			return true, false
		}
		obj, ok := g.objective(aFrame)
		if ok {
			if piFrame, pi, val, found := g.backtrace(obj); found {
				g.assign(piFrame, pi, val, false)
				continue
			}
		}
		// No objective reachable: undo the most recent unflipped decision.
		if !g.backtrack(backtracks) {
			return false, true
		}
		if *backtracks >= g.opts.MaxBacktrack {
			return false, false
		}
	}
}

func (g *gen) assign(frame, pi int, val logic.V, flipped bool) {
	fr := &g.frames[frame]
	fr.piSet[pi] = true
	fr.piVal[pi] = val
	g.decisions = append(g.decisions, decision{frame: frame, pi: pi, val: val, flipped: flipped})
	g.simulate(frame)
}

// backtrack pops flipped decisions and flips the newest unflipped one.
func (g *gen) backtrack(backtracks *int) bool {
	for len(g.decisions) > 0 {
		d := g.decisions[len(g.decisions)-1]
		g.decisions = g.decisions[:len(g.decisions)-1]
		fr := &g.frames[d.frame]
		fr.piSet[d.pi] = false
		if !d.flipped {
			*backtracks++
			g.assign(d.frame, d.pi, d.val.Not(), true)
			return true
		}
	}
	// All decisions exhausted; restore the undecided state.
	g.simulate(0)
	return false
}

// simulate recomputes the dual-rail values of frames from..end.
func (g *gen) simulate(from int) {
	c := g.c
	f := g.flt
	for t := from; t < len(g.frames); t++ {
		fr := &g.frames[t]
		for i, pi := range c.PIs {
			v := logic.X
			if fr.piSet[i] {
				v = fr.piVal[i]
			}
			p := pair{g: v, f: v}
			if f.Gate == pi && f.Pin == faults.OutPin {
				p.f = f.Kind.StuckValue()
			}
			fr.val[pi] = p
		}
		for _, ff := range c.DFFs {
			var p pair
			if t == 0 {
				p = pair{g: logic.X, f: logic.X}
			} else {
				d := c.Gate(ff).Fanin[0]
				p = g.frames[t-1].val[d]
				if f.Gate == ff && f.Pin == 0 {
					p.f = f.Kind.StuckValue()
				}
			}
			if f.Gate == ff && f.Pin == faults.OutPin {
				p.f = f.Kind.StuckValue()
			}
			fr.val[ff] = p
		}
		var gi, fi [logic.MaxPins]logic.V
		for _, lv := range c.Levels {
			for _, id := range lv {
				gt := c.Gate(id)
				for j, fin := range gt.Fanin {
					p := fr.val[fin]
					gi[j], fi[j] = p.g, p.f
					if f.Gate == id && f.Pin == j {
						fi[j] = f.Kind.StuckValue()
					}
				}
				out := pair{
					g: logic.Eval(gt.Op, gi[:len(gt.Fanin)]),
					f: logic.Eval(gt.Op, fi[:len(gt.Fanin)]),
				}
				if f.Gate == id && f.Pin == faults.OutPin {
					out.f = f.Kind.StuckValue()
				}
				fr.val[id] = out
			}
		}
	}
}

// detected returns the earliest frame whose primary outputs expose the
// fault, or -1.
func (g *gen) detected() int {
	for t := range g.frames {
		for _, po := range g.c.POs {
			if g.frames[t].val[po].isD() {
				return t
			}
		}
	}
	return -1
}

// objective picks the next value objective: first activate the fault at
// aFrame, then advance the D-frontier toward the outputs.
type objectiveT struct {
	gate  netlist.GateID
	frame int
	val   logic.V
}

func (g *gen) objective(aFrame int) (objectiveT, bool) {
	c := g.c
	f := g.flt

	// Activation: the fault-site line must carry the complement of the
	// stuck value in some frame early enough (<= aMax) that the effect can
	// still cross the required number of flip-flops before the last frame.
	siteLine := f.Gate
	if f.Pin != faults.OutPin {
		siteLine = c.Gate(f.Gate).Fanin[f.Pin]
	}
	want := f.Kind.StuckValue().Not()
	aMax := aFrame
	if aMax >= len(g.frames) {
		aMax = len(g.frames) - 1
	}
	if g.anyD() < 0 {
		activated := false
		for t := 0; t <= aMax; t++ {
			if g.frames[t].val[siteLine].g == want {
				activated = true
				break
			}
		}
		if !activated {
			// Prefer the latest still-useful frame: it leaves the most
			// room for state setup in the frames before it.
			for t := aMax; t >= 0; t-- {
				if g.frames[t].val[siteLine].g == logic.X {
					return objectiveT{gate: siteLine, frame: t, val: want}, true
				}
			}
			return objectiveT{}, false // pinned to the stuck value everywhere
		}
		// Activated but no binary divergence: an input-pin fault on a
		// combinational gate still needs its site gate sensitized.
		if f.Pin != faults.OutPin && !c.Gate(f.Gate).IsSource() {
			for t := 0; t <= aMax; t++ {
				if g.frames[t].val[siteLine].g == want {
					if obj, ok := g.sensitizeGate(f.Gate, t, f.Pin); ok {
						return obj, true
					}
				}
			}
		}
		return objectiveT{}, false
	}

	// Propagation: pick a D-frontier gate and make one of its unassigned
	// inputs non-controlling.
	for t := range g.frames {
		fr := &g.frames[t]
		for i := range c.Gates {
			gt := &c.Gates[i]
			if gt.IsSource() || fr.val[i].isD() {
				continue
			}
			if fr.val[i].g != logic.X && fr.val[i].f != logic.X {
				continue // fully resolved, not extendable
			}
			hasD := false
			for _, fin := range gt.Fanin {
				if fr.val[fin].isD() {
					hasD = true
					break
				}
			}
			if !hasD {
				continue
			}
			if obj, ok := g.sensitizeGate(netlist.GateID(i), t, -2); ok {
				return obj, true
			}
		}
	}
	return objectiveT{}, false
}

// anyD returns a frame containing a binary good/faulty divergence, or -1.
func (g *gen) anyD() int {
	for t := range g.frames {
		for i := range g.c.Gates {
			if g.frames[t].val[i].isD() {
				return t
			}
		}
	}
	return -1
}

// sensitizeGate proposes an objective that drives one X input of gate id
// (other than skipPin) to the gate's non-controlling value.
func (g *gen) sensitizeGate(id netlist.GateID, t, skipPin int) (objectiveT, bool) {
	gt := g.c.Gate(id)
	nc := logic.One
	if cv, ok := gt.Op.Controlling(); ok {
		nc = cv.Not()
	} else if g.rng.Intn(2) == 0 {
		nc = logic.Zero // XOR family: any binary value sensitizes
	}
	for j, fin := range gt.Fanin {
		if j == skipPin {
			continue
		}
		p := g.frames[t].val[fin]
		if p.g == logic.X {
			return objectiveT{gate: fin, frame: t, val: nc}, true
		}
	}
	return objectiveT{}, false
}

// backtrace walks an objective backwards through X-valued good-machine
// lines to an unassigned primary input decision. It explores alternative
// X inputs depth-first, so a dead end (the frame-0 flip-flop boundary)
// does not hide reachable primary inputs on sibling paths.
func (g *gen) backtrace(obj objectiveT) (frame, pi int, val logic.V, ok bool) {
	seen := make(map[[2]int32]bool)
	return g.backtraceDFS(obj.gate, obj.frame, obj.val, seen)
}

func (g *gen) backtraceDFS(gate netlist.GateID, t int, v logic.V, seen map[[2]int32]bool) (int, int, logic.V, bool) {
	key := [2]int32{int32(gate), int32(t)}
	if seen[key] {
		return 0, 0, 0, false
	}
	seen[key] = true
	c := g.c
	gt := c.Gate(gate)
	switch gt.Op {
	case logic.OpInput:
		for i, p := range c.PIs {
			if p == gate {
				if g.frames[t].piSet[i] {
					return 0, 0, 0, false
				}
				return t, i, v, true
			}
		}
		return 0, 0, 0, false
	case logic.OpDFF:
		if t == 0 {
			return 0, 0, 0, false // initial state is X, unjustifiable
		}
		return g.backtraceDFS(gt.Fanin[0], t-1, v, seen)
	}
	base := v
	if gt.Op.Inverting() {
		base = v.Not()
	}
	var targetVal logic.V
	if cv, hasCtl := gt.Op.Controlling(); hasCtl {
		if base == cv {
			targetVal = cv // one controlling input suffices
		} else {
			targetVal = cv.Not() // all inputs must be non-controlling
		}
	} else {
		// XOR family: any binary value works; bias randomly.
		targetVal = logic.V(g.rng.Intn(2))
	}
	for _, fin := range gt.Fanin {
		if g.frames[t].val[fin].g != logic.X {
			continue
		}
		if fr, pi, val, ok := g.backtraceDFS(fin, t, targetVal, seen); ok {
			return fr, pi, val, ok
		}
	}
	return 0, 0, 0, false
}

// extractVectors emits the PI assignments of frames 0..detectionFrame,
// filling don't-cares per options.
func (g *gen) extractVectors() [][]logic.V {
	last := g.detected()
	if last < 0 {
		last = len(g.frames) - 1
	}
	out := make([][]logic.V, 0, last+1)
	for t := 0; t <= last; t++ {
		fr := &g.frames[t]
		vec := make([]logic.V, len(g.c.PIs))
		for i := range vec {
			switch {
			case fr.piSet[i]:
				vec[i] = fr.piVal[i]
			case g.opts.FillRandom:
				vec[i] = logic.V(g.rng.Intn(2))
			default:
				vec[i] = logic.Zero
			}
		}
		out = append(out, vec)
	}
	return out
}
