// Package bench is the reproducible benchmark pipeline: it defines
// benchmark suites as explicit cell grids (engine variant × circuit ×
// fault model × vector source × worker count), runs each cell with warmup
// and repeated trials under the observability layer, and serializes the
// results as schema-versioned BENCH_<timestamp>.json reports that later
// runs compare against (per-cell delta, geometric-mean speedup, and a
// configurable regression threshold — the CI bench-gate).
//
// The package deliberately owns no workload logic: circuits, vector sets,
// fault universes and engine execution all come from internal/harness, so
// a cell measured here is exactly a table cell of cmd/tables. What bench
// adds is the measurement discipline — fixed trial counts, per-trial
// phase timings through the obs tracer, calibration-normalized scores —
// and the file format that makes runs comparable across commits.
//
// See BENCHMARKS.md for the operator's guide and the JSON schema
// reference; cmd/bench is the CLI driver.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/harness"
)

// Fault-model names used in cell definitions and report keys.
const (
	// ModelStuck is the equivalence-collapsed single stuck-at universe.
	ModelStuck = "stuck"
	// ModelTransition is the §3 gate-input transition-fault universe.
	ModelTransition = "transition"
)

// VectorSpec names a cell's test-vector source: the circuit's
// deterministic set (internal/atpg, cached and seeded) or a seeded random
// sequence of N vectors. The zero value is invalid; use Det or Rand.
type VectorSpec struct {
	// Kind is "det" (deterministic suite set) or "rand".
	Kind string
	// N is the vector count for Kind "rand"; ignored for "det".
	N int
}

// Det selects the circuit's deterministic test set.
func Det() VectorSpec { return VectorSpec{Kind: "det"} }

// Rand selects n seeded random vectors.
func Rand(n int) VectorSpec { return VectorSpec{Kind: "rand", N: n} }

// String renders the spec as it appears in cell keys: "det" or "rand:N".
func (v VectorSpec) String() string {
	if v.Kind == "rand" {
		return fmt.Sprintf("rand:%d", v.N)
	}
	return v.Kind
}

// Cell is one benchmark measurement point: an engine run on one workload.
type Cell struct {
	// Engine is the simulator configuration under measurement.
	Engine harness.Engine
	// Circuit names a built-in suite circuit (e.g. "s5378").
	Circuit string
	// Model is ModelStuck or ModelTransition.
	Model string
	// Vectors selects the test sequence.
	Vectors VectorSpec
	// Workers is the csim-P partition count, or the csim-grid fault-shard
	// count (0 elsewhere; 0 for csim-P means runtime.NumCPU(), 0 for
	// csim-grid defers the axis to the scheduler).
	Workers int
	// Windows is the csim-V2 / csim-grid vector-window count (0
	// elsewhere; 0 for csim-V2 means runtime.NumCPU(), 0 for csim-grid
	// defers the axis to the scheduler).
	Windows int
	// Heavy marks cells too expensive for repeated trials: the runner
	// clamps them to one trial and no warmup regardless of Options.
	Heavy bool
}

// Key is the cell's stable identity in reports and baselines:
// "circuit/engine/model/vectors" plus "/wN" for explicit worker counts
// and "/vN" for explicit window counts.
func (c Cell) Key() string {
	k := fmt.Sprintf("%s/%s/%s/%s", c.Circuit, c.Engine, c.Model, c.Vectors)
	if c.Workers > 0 {
		k += fmt.Sprintf("/w%d", c.Workers)
	}
	if c.Windows > 0 {
		k += fmt.Sprintf("/v%d", c.Windows)
	}
	return k
}

// Calibration is the fixed workload every suite run measures first:
// cell scores are reported as multiples of this cell's best wall time, so
// two reports from different machines compare meaningfully (see
// Compare). It must stay cheap, deterministic and untouched by suite
// edits.
func Calibration() Cell {
	return Cell{Engine: harness.CsimMV, Circuit: "s1494", Model: ModelStuck, Vectors: Det()}
}

// SuiteNames lists the predefined suites in -suite flag order.
func SuiteNames() []string { return []string{"quick", "paper", "full"} }

// Suite returns the named predefined suite.
//
//   - "quick": small circuits, every engine family — the CI bench-gate
//     grid, a few seconds end to end.
//   - "paper": the Table 3 grid up to s5378 (all csim variants, csim-P,
//     PROOFS) plus transition and oracle spot cells — a couple of minutes.
//   - "full": paper plus the two large stand-ins with csim-P worker and
//     csim-V2 window scaling (1/2/4/8 each), 2-D grid cells, and
//     reduced-vector oracle cells — tens of minutes.
func Suite(name string) ([]Cell, error) {
	switch name {
	case "quick":
		return quickSuite(), nil
	case "paper":
		return paperSuite(), nil
	case "full":
		return fullSuite(), nil
	}
	return nil, fmt.Errorf("bench: unknown suite %q (have %v)", name, SuiteNames())
}

// quickSuite is the CI regression grid: every engine family on circuits
// small enough that warmup + 3 trials finish in seconds.
func quickSuite() []Cell {
	var cells []Cell
	for _, ckt := range []string{"s298", "s444", "s1494"} {
		for _, eng := range []harness.Engine{
			harness.CsimV, harness.CsimM, harness.CsimMV, harness.CsimC, harness.PROOFS,
		} {
			cells = append(cells, Cell{Engine: eng, Circuit: ckt, Model: ModelStuck, Vectors: Det()})
		}
	}
	cells = append(cells,
		// One oracle cell pins the throughput floor.
		Cell{Engine: harness.Serial, Circuit: "s298", Model: ModelStuck, Vectors: Det()},
		// One parallel cell exercises the partition/merge path.
		Cell{Engine: harness.CsimP, Circuit: "s1494", Model: ModelStuck, Vectors: Det(), Workers: 2},
		// One vector-sharded cell exercises the speculation/repair path.
		Cell{Engine: harness.CsimV2, Circuit: "s1494", Model: ModelStuck, Vectors: Det(), Windows: 2},
		// One 2-D cell crosses both axes.
		Cell{Engine: harness.CsimGrid, Circuit: "s1494", Model: ModelStuck, Vectors: Det(), Workers: 2, Windows: 2},
		// One transition cell exercises the second fault model.
		Cell{Engine: harness.CsimMV, Circuit: "s298", Model: ModelTransition, Vectors: Det()},
		// One transition vector-sharded cell covers driver-history carry.
		Cell{Engine: harness.CsimV2, Circuit: "s298", Model: ModelTransition, Vectors: Det(), Windows: 2},
		// One compiled transition cell covers masked transition injection.
		Cell{Engine: harness.CsimC, Circuit: "s298", Model: ModelTransition, Vectors: Det()},
		// The good-machine throughput pair: interpreted event-driven vs
		// compiled straight-line evaluation on the largest stand-in
		// (BENCHMARKS.md "Interpreted vs compiled").
		Cell{Engine: harness.GoodSim, Circuit: "s35932", Model: ModelStuck, Vectors: Det()},
		Cell{Engine: harness.GoodC, Circuit: "s35932", Model: ModelStuck, Vectors: Det()},
	)
	return cells
}

// paperCircuits is the Table 3 list up to s5378 (s35932 is full-suite
// only: a single cell runs tens of seconds).
var paperCircuits = []string{
	"s298", "s344", "s349", "s382", "s386", "s400", "s444", "s510",
	"s526", "s641", "s713", "s820", "s832", "s953", "s1196", "s1238",
	"s1423", "s1488", "s1494", "s5378",
}

// paperSuite reproduces the Table 3 measurement grid with deterministic
// sets, plus transition-model and oracle spot checks.
func paperSuite() []Cell {
	var cells []Cell
	for _, ckt := range paperCircuits {
		for _, eng := range []harness.Engine{
			harness.CsimV, harness.CsimM, harness.CsimMV, harness.CsimP, harness.PROOFS,
		} {
			cells = append(cells, Cell{Engine: eng, Circuit: ckt, Model: ModelStuck, Vectors: Det()})
		}
	}
	for _, ckt := range []string{"s298", "s444", "s1238", "s1494"} {
		cells = append(cells, Cell{Engine: harness.CsimMV, Circuit: ckt, Model: ModelTransition, Vectors: Det()})
	}
	for _, ckt := range []string{"s298", "s1494", "s5378"} {
		cells = append(cells, Cell{Engine: harness.CsimC, Circuit: ckt, Model: ModelStuck, Vectors: Det()})
	}
	for _, ckt := range []string{"s298", "s344", "s386"} {
		cells = append(cells, Cell{Engine: harness.Serial, Circuit: ckt, Model: ModelStuck, Vectors: Det()})
	}
	return cells
}

// fullSuite extends the paper grid with the s35932 row, csim-P worker
// and csim-V2 window scaling on both large stand-ins, 2-D grid cells,
// and reduced-vector oracle cells (the serial engine is
// O(faults × vectors × gates); full-length oracle runs on the large
// circuits would take hours).
func fullSuite() []Cell {
	cells := paperSuite()
	for _, eng := range []harness.Engine{
		harness.CsimV, harness.CsimM, harness.CsimMV, harness.CsimC, harness.PROOFS,
	} {
		cells = append(cells, Cell{Engine: eng, Circuit: "s35932", Model: ModelStuck, Vectors: Det(), Heavy: true})
	}
	// The good-machine pair on the same circuit, full-length, so the
	// interpreted-vs-compiled ratio is also recorded at full scale.
	cells = append(cells,
		Cell{Engine: harness.GoodSim, Circuit: "s35932", Model: ModelStuck, Vectors: Det()},
		Cell{Engine: harness.GoodC, Circuit: "s35932", Model: ModelStuck, Vectors: Det()},
	)
	for _, w := range []int{1, 2, 4, 8} {
		cells = append(cells,
			Cell{Engine: harness.CsimP, Circuit: "s5378", Model: ModelStuck, Vectors: Det(), Workers: w},
			Cell{Engine: harness.CsimP, Circuit: "s35932", Model: ModelStuck, Vectors: Det(), Workers: w, Heavy: true},
			// The vector-shard scaling ladder mirrors the worker ladder.
			Cell{Engine: harness.CsimV2, Circuit: "s5378", Model: ModelStuck, Vectors: Det(), Windows: w},
			Cell{Engine: harness.CsimV2, Circuit: "s35932", Model: ModelStuck, Vectors: Det(), Windows: w, Heavy: true},
		)
	}
	cells = append(cells,
		// The 2-D grid and the scheduler-planned shape on both stand-ins.
		Cell{Engine: harness.CsimGrid, Circuit: "s5378", Model: ModelStuck, Vectors: Det(), Workers: 2, Windows: 2},
		Cell{Engine: harness.CsimGrid, Circuit: "s35932", Model: ModelStuck, Vectors: Det(), Workers: 2, Windows: 2, Heavy: true},
		Cell{Engine: harness.CsimGrid, Circuit: "s5378", Model: ModelStuck, Vectors: Det()},
	)
	cells = append(cells,
		Cell{Engine: harness.Serial, Circuit: "s5378", Model: ModelStuck, Vectors: Rand(8), Heavy: true},
		Cell{Engine: harness.Serial, Circuit: "s35932", Model: ModelStuck, Vectors: Rand(2), Heavy: true},
	)
	return cells
}

// sortedPhaseNames returns the keys of a phase-duration map in stable
// (sorted) order; every consumer that renders phases iterates this.
func sortedPhaseNames(phases map[string]int64) []string {
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
