package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// tinyCells is the smallest real workload grid: the genuine s27 plus the
// smallest stand-in, enough to exercise serial, concurrent and parallel
// engines in well under a second.
func tinyCells() []Cell {
	return []Cell{
		{Engine: harness.CsimMV, Circuit: "s27", Model: ModelStuck, Vectors: Det()},
		{Engine: harness.Serial, Circuit: "s27", Model: ModelStuck, Vectors: Rand(8)},
		{Engine: harness.CsimP, Circuit: "s298", Model: ModelStuck, Vectors: Rand(16), Workers: 2},
	}
}

func tinyRun(t *testing.T) *Report {
	t.Helper()
	rep, err := Run("tiny", tinyCells(), Options{Trials: 2, Warmup: -1}, time.Unix(1754000000, 0))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSuitesResolve(t *testing.T) {
	for _, name := range SuiteNames() {
		cells, err := Suite(name)
		if err != nil {
			t.Fatalf("Suite(%q): %v", name, err)
		}
		if len(cells) == 0 {
			t.Fatalf("Suite(%q) is empty", name)
		}
		seen := map[string]bool{}
		for _, c := range cells {
			k := c.Key()
			if seen[k] {
				t.Errorf("Suite(%q): duplicate cell key %s", name, k)
			}
			seen[k] = true
		}
	}
	if _, err := Suite("nosuch"); err == nil {
		t.Error("Suite(nosuch) should fail")
	}
}

func TestCellKeys(t *testing.T) {
	c := Cell{Engine: harness.CsimP, Circuit: "s298", Model: ModelStuck, Vectors: Rand(100), Workers: 4}
	if got, want := c.Key(), "s298/csim-P/stuck/rand:100/w4"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	c = Cell{Engine: harness.CsimMV, Circuit: "s27", Model: ModelTransition, Vectors: Det()}
	if got, want := c.Key(), "s27/csim-MV/transition/det"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
}

func TestFilename(t *testing.T) {
	ts := time.Date(2026, 8, 5, 12, 34, 56, 0, time.UTC)
	if got, want := Filename(ts), "BENCH_20260805T123456Z.json"; got != want {
		t.Errorf("Filename = %q, want %q", got, want)
	}
}

// TestQuickSmoke is the deterministic smoke test: a tiny real run must
// populate every headline field, and a second run must reproduce the
// deterministic outputs (detections, coverage, sizes) exactly.
func TestQuickSmoke(t *testing.T) {
	rep := tinyRun(t)
	if rep.Schema != Schema {
		t.Fatalf("Schema = %q", rep.Schema)
	}
	if rep.CalibrationNs <= 0 {
		t.Fatalf("CalibrationNs = %d, want > 0", rep.CalibrationNs)
	}
	if len(rep.Cells) != len(tinyCells()) {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), len(tinyCells()))
	}
	for _, c := range rep.Cells {
		if c.BestNs <= 0 || len(c.TrialNs) != 2 {
			t.Errorf("%s: BestNs=%d trials=%d, want positive time and 2 trials", c.Key, c.BestNs, len(c.TrialNs))
		}
		if c.Patterns <= 0 || c.Faults <= 0 || c.Detected <= 0 {
			t.Errorf("%s: empty workload (patterns=%d faults=%d detected=%d)", c.Key, c.Patterns, c.Faults, c.Detected)
		}
		if c.CyclesPerSec <= 0 || c.FaultCyclesPerSec <= 0 {
			t.Errorf("%s: throughput not computed", c.Key)
		}
		if len(c.PhasesNs) == 0 {
			t.Errorf("%s: no phase timings recorded", c.Key)
		}
		if len(c.Metrics) == 0 {
			t.Errorf("%s: no metrics snapshot recorded", c.Key)
		}
	}
	again := tinyRun(t)
	for i, c := range rep.Cells {
		d := again.Cells[i]
		if c.Detected != d.Detected || c.PotOnly != d.PotOnly ||
			c.Coverage != d.Coverage || c.Patterns != d.Patterns || c.Faults != d.Faults {
			t.Errorf("%s: deterministic outputs differ between runs: %+v vs %+v", c.Key, c, d)
		}
	}
}

func TestHeavyCellClampsTrials(t *testing.T) {
	cells := []Cell{{Engine: harness.CsimMV, Circuit: "s27", Model: ModelStuck, Vectors: Det(), Heavy: true}}
	rep, err := Run("tiny", cells, Options{Trials: 5, Warmup: 3}, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Cells[0].TrialNs); got != 1 {
		t.Fatalf("heavy cell ran %d trials, want 1", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep := tinyRun(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Errorf("round trip mutated the report:\nout: %+v\nin:  %+v", rep, got)
	}
}

func TestSchemaVersionRejection(t *testing.T) {
	rep := tinyRun(t)
	rep.Schema = "faultsim-bench/v999"
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(&buf); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("unknown schema accepted (err=%v)", err)
	}
	if _, err := ReadReport(strings.NewReader(`{"cells":[]}`)); err == nil {
		t.Error("missing schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// synthetic builds a handcrafted report for comparison-math tests.
func synthetic(calNs int64, cells map[string]int64) *Report {
	r := &Report{Schema: Schema, Created: "2026-08-05T00:00:00Z", Suite: "tiny",
		Trials: 1, Warmup: 0, CalibrationNs: calNs}
	// Deterministic cell order independent of map order.
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		ns, ok := cells[k]
		if !ok {
			continue
		}
		r.Cells = append(r.Cells, CellResult{
			Key: k, Patterns: 10, Faults: 100, Detected: 42,
			BestNs: ns, TrialNs: []int64{ns},
			PhasesNs: map[string]int64{"fault-sim": ns * 9 / 10, "good-sim": ns / 10},
		})
	}
	return r
}

func TestCompareDeltaAndGeoMean(t *testing.T) {
	base := synthetic(1e6, map[string]int64{"a": 100e6, "b": 200e6})
	cur := synthetic(1e6, map[string]int64{"a": 50e6, "b": 200e6})
	cmp, err := Compare(cur, base, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Cells) != 2 {
		t.Fatalf("got %d cells", len(cmp.Cells))
	}
	a := cmp.Cells[0]
	if a.Key != "a" || math.Abs(a.Delta-(-0.5)) > 1e-12 {
		t.Errorf("cell a delta = %v, want -0.5", a.Delta)
	}
	if a.Regressed {
		t.Error("a 2x speedup flagged as regression")
	}
	// Speedups 2.0 and 1.0 -> geo-mean sqrt(2).
	if want := math.Sqrt2; math.Abs(cmp.GeoMeanSpeedup-want) > 1e-12 {
		t.Errorf("GeoMeanSpeedup = %v, want %v", cmp.GeoMeanSpeedup, want)
	}
	if err := cmp.Gate(); err != nil {
		t.Errorf("clean comparison gated: %v", err)
	}
}

func TestCompareThresholdEdges(t *testing.T) {
	base := synthetic(1e6, map[string]int64{"a": 100e6})
	for _, tc := range []struct {
		curNs     int64
		threshold float64
		regressed bool
	}{
		{115e6, 0.15, false}, // exactly +15%: not over threshold
		{116e6, 0.15, true},  // just past
		{114e6, 0.15, false},
		{105e6, 0.04, true}, // custom tighter threshold
		{120e6, 0, true},    // 0 falls back to the 15% default
		{114e6, 0, false},
	} {
		cur := synthetic(1e6, map[string]int64{"a": tc.curNs})
		cmp, err := Compare(cur, base, CompareOptions{Threshold: tc.threshold})
		if err != nil {
			t.Fatal(err)
		}
		if got := cmp.Cells[0].Regressed; got != tc.regressed {
			t.Errorf("cur=%dms threshold=%v: regressed=%v, want %v",
				tc.curNs/1e6, tc.threshold, got, tc.regressed)
		}
	}
}

func TestCompareNormalization(t *testing.T) {
	// The "slower machine" baseline: everything, calibration included,
	// takes 2x as long. Normalized comparison must see no regression;
	// absolute comparison must see +100%.
	base := synthetic(2e6, map[string]int64{"a": 200e6})
	cur := synthetic(1e6, map[string]int64{"a": 100e6})
	norm, err := Compare(cur, base, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := norm.Cells[0].Delta; math.Abs(d) > 1e-12 {
		t.Errorf("normalized delta = %v, want 0", d)
	}
	abs, err := Compare(base, cur, CompareOptions{Absolute: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := abs.Cells[0].Delta; math.Abs(d-1.0) > 1e-12 {
		t.Errorf("absolute delta = %v, want +1.0", d)
	}
	// Normalized mode without calibration must refuse rather than divide
	// by zero.
	nocal := synthetic(0, map[string]int64{"a": 100e6})
	if _, err := Compare(cur, nocal, CompareOptions{}); err == nil {
		t.Error("normalized compare without calibration should fail")
	}
}

func TestCompareKeyMismatches(t *testing.T) {
	base := synthetic(1e6, map[string]int64{"a": 100e6, "b": 100e6})
	cur := synthetic(1e6, map[string]int64{"a": 100e6, "c": 100e6})
	cmp, err := Compare(cur, base, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Cells) != 1 || cmp.Cells[0].Key != "a" {
		t.Fatalf("shared cells = %+v, want just a", cmp.Cells)
	}
	if !reflect.DeepEqual(cmp.NewKeys, []string{"c"}) || !reflect.DeepEqual(cmp.MissingKeys, []string{"b"}) {
		t.Errorf("NewKeys=%v MissingKeys=%v", cmp.NewKeys, cmp.MissingKeys)
	}
	if err := cmp.Gate(); err != nil {
		t.Errorf("key mismatch alone should not gate: %v", err)
	}
}

// TestGateFailsOnDoctoredBaseline is the acceptance check for the CI
// bench-gate: feeding the comparison a baseline doctored to be >15%
// faster than the real measurement must fail the gate, and the markdown
// report must carry the per-phase breakdown for the regressed cell.
func TestGateFailsOnDoctoredBaseline(t *testing.T) {
	cur := tinyRun(t)
	var buf bytes.Buffer
	if err := cur.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doctored, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The doctored baseline claims every cell used to run in half the
	// time (calibration untouched): the current run reads 2x slower.
	for i := range doctored.Cells {
		doctored.Cells[i].BestNs /= 2
		for name, v := range doctored.Cells[i].PhasesNs {
			doctored.Cells[i].PhasesNs[name] = v / 2
		}
	}
	cmp, err := Compare(cur, doctored, CompareOptions{Threshold: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(cmp.Regressions()), len(cur.Cells); got != want {
		t.Fatalf("%d regressions, want %d", got, want)
	}
	if err := cmp.Gate(); err == nil {
		t.Fatal("gate passed against a baseline doctored 2x faster")
	}
	var md bytes.Buffer
	if err := cmp.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	if !strings.Contains(out, "**FAIL**") {
		t.Error("markdown comparison does not announce FAIL")
	}
	if !strings.Contains(out, "phase breakdown") || !strings.Contains(out, "fault-sim") {
		t.Error("markdown comparison lacks the per-phase breakdown")
	}
}

// TestGateFailsOnBehaviorChange: detection counts are deterministic, so a
// baseline mismatch is a functional regression even at equal speed.
func TestGateFailsOnBehaviorChange(t *testing.T) {
	base := synthetic(1e6, map[string]int64{"a": 100e6})
	cur := synthetic(1e6, map[string]int64{"a": 100e6})
	cur.Cells[0].Detected++
	cmp, err := Compare(cur, base, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.BehaviorChanges()) != 1 {
		t.Fatalf("behavior change not detected: %+v", cmp.Cells)
	}
	if err := cmp.Gate(); err == nil {
		t.Fatal("gate passed a detection-count change")
	}
}

// TestReportMarkdown sanity-checks the no-baseline rendering.
func TestReportMarkdown(t *testing.T) {
	rep := tinyRun(t)
	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"suite \"tiny\"", "s27/csim-MV/stuck/det", "fault-cycles/s"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("report markdown missing %q", want)
		}
	}
}

// TestCellResultJSONNames pins the schema's field spelling: renaming a
// JSON key is a schema change and must bump the Schema version.
func TestCellResultJSONNames(t *testing.T) {
	b, err := json.Marshal(CellResult{Key: "k", PhasesNs: map[string]int64{"p": 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"key"`, `"best_ns"`, `"mem_bytes"`, `"alloc_bytes"`,
		`"cycles_per_sec"`, `"fault_cycles_per_sec"`, `"phases_ns"`, `"trial_ns"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("CellResult JSON missing field %s in %s", want, b)
		}
	}
}
