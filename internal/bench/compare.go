package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// DefaultThreshold is the regression gate: a cell whose score grows by
// more than this fraction over the baseline fails the comparison (the CI
// bench-gate uses the default).
const DefaultThreshold = 0.15

// CompareOptions tunes a baseline comparison.
type CompareOptions struct {
	// Threshold is the per-cell relative slowdown that counts as a
	// regression (0 means DefaultThreshold; e.g. 0.15 = +15%).
	Threshold float64
	// Absolute compares raw wall times instead of calibration-normalized
	// scores. Only meaningful when both reports come from the same
	// machine; the default normalized mode divides each cell's time by
	// its report's calibration time so cross-machine baselines compare
	// hardware-independently (to first order).
	Absolute bool
}

func (o CompareOptions) threshold() float64 {
	if o.Threshold <= 0 {
		return DefaultThreshold
	}
	return o.Threshold
}

// PhaseDelta is one phase's wall time in the current and baseline run of
// a cell — the pointer from "this cell regressed" to "this phase did it".
type PhaseDelta struct {
	// Name is the obs tracer span name ("fault-sim", "good-sim", ...).
	Name string `json:"name"`
	// BaseNs and CurNs are the phase wall times in the two runs.
	BaseNs int64 `json:"base_ns"`
	// CurNs is the phase wall time in the current run.
	CurNs int64 `json:"cur_ns"`
}

// CellDelta is one cell's baseline comparison.
type CellDelta struct {
	// Key is the cell identity both reports share.
	Key string `json:"key"`
	// BaseNs and CurNs are the best wall times.
	BaseNs int64 `json:"base_ns"`
	// CurNs is the current run's best wall time.
	CurNs int64 `json:"cur_ns"`
	// BaseScore and CurScore are the compared quantities: raw seconds in
	// absolute mode, multiples of the run's calibration time otherwise.
	BaseScore float64 `json:"base_score"`
	// CurScore is the current run's compared quantity.
	CurScore float64 `json:"cur_score"`
	// Delta is (CurScore - BaseScore) / BaseScore; +0.20 reads "20%
	// slower than baseline".
	Delta float64 `json:"delta"`
	// Regressed marks Delta above the comparison threshold.
	Regressed bool `json:"regressed"`
	// BehaviorChanged marks a detection-count or coverage mismatch —
	// never measurement noise, always a functional change.
	BehaviorChanged bool `json:"behavior_changed,omitempty"`
	// Phases breaks the cell down by tracer phase (sorted by name);
	// populated for regressed cells.
	Phases []PhaseDelta `json:"phases,omitempty"`
}

// Comparison is a full current-vs-baseline evaluation.
type Comparison struct {
	// Threshold is the effective per-cell regression threshold.
	Threshold float64 `json:"threshold"`
	// Absolute records the comparison mode.
	Absolute bool `json:"absolute"`
	// Cells holds one delta per key present in both reports, in current-
	// report order.
	Cells []CellDelta `json:"cells"`
	// NewKeys lists cells only the current report has.
	NewKeys []string `json:"new_keys,omitempty"`
	// MissingKeys lists cells only the baseline has.
	MissingKeys []string `json:"missing_keys,omitempty"`
	// GeoMeanSpeedup is exp(mean(ln(base/cur))) over the shared cells:
	// above 1 the run is faster than its baseline overall.
	GeoMeanSpeedup float64 `json:"geo_mean_speedup"`
}

// score converts a cell wall time to the compared quantity.
func score(ns, calibrationNs int64, absolute bool) float64 {
	if absolute || calibrationNs <= 0 {
		return float64(ns) / 1e9
	}
	return float64(ns) / float64(calibrationNs)
}

// Compare evaluates the current report against a baseline. Cells join on
// Key; keys present on only one side are listed, not failed, so suites
// can grow without invalidating old baselines.
func Compare(cur, base *Report, opt CompareOptions) (*Comparison, error) {
	if cur == nil || base == nil {
		return nil, fmt.Errorf("bench: Compare needs two reports")
	}
	if !opt.Absolute && (cur.CalibrationNs <= 0 || base.CalibrationNs <= 0) {
		return nil, fmt.Errorf("bench: normalized comparison needs calibration_ns in both reports (re-run, or use absolute mode)")
	}
	cmp := &Comparison{Threshold: opt.threshold(), Absolute: opt.Absolute}
	baseKeys := map[string]bool{}
	for _, b := range base.Cells {
		baseKeys[b.Key] = true
	}
	logSum, logN := 0.0, 0
	for _, c := range cur.Cells {
		b, ok := base.Cell(c.Key)
		if !ok {
			cmp.NewKeys = append(cmp.NewKeys, c.Key)
			continue
		}
		delete(baseKeys, c.Key)
		d := CellDelta{
			Key:       c.Key,
			BaseNs:    b.BestNs,
			CurNs:     c.BestNs,
			BaseScore: score(b.BestNs, base.CalibrationNs, opt.Absolute),
			CurScore:  score(c.BestNs, cur.CalibrationNs, opt.Absolute),
		}
		if d.BaseScore > 0 {
			d.Delta = (d.CurScore - d.BaseScore) / d.BaseScore
		}
		d.Regressed = d.Delta > cmp.Threshold
		d.BehaviorChanged = c.Detected != b.Detected || c.PotOnly != b.PotOnly ||
			c.Patterns != b.Patterns || c.Faults != b.Faults
		if d.Regressed {
			d.Phases = phaseDeltas(b.PhasesNs, c.PhasesNs)
		}
		if d.BaseScore > 0 && d.CurScore > 0 {
			logSum += math.Log(d.BaseScore / d.CurScore)
			logN++
		}
		cmp.Cells = append(cmp.Cells, d)
	}
	for k := range baseKeys {
		cmp.MissingKeys = append(cmp.MissingKeys, k)
	}
	sort.Strings(cmp.MissingKeys)
	if logN > 0 {
		cmp.GeoMeanSpeedup = math.Exp(logSum / float64(logN))
	}
	return cmp, nil
}

// phaseDeltas merges two phase maps into a sorted slice covering every
// phase either run recorded.
func phaseDeltas(base, cur map[string]int64) []PhaseDelta {
	all := map[string]int64{}
	for n, v := range base {
		all[n] = v
	}
	for n := range cur {
		if _, ok := all[n]; !ok {
			all[n] = 0
		}
	}
	out := make([]PhaseDelta, 0, len(all))
	for _, n := range sortedPhaseNames(all) {
		out = append(out, PhaseDelta{Name: n, BaseNs: base[n], CurNs: cur[n]})
	}
	return out
}

// Regressions returns the cells over threshold, worst first.
func (c *Comparison) Regressions() []CellDelta {
	var out []CellDelta
	for _, d := range c.Cells {
		if d.Regressed {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Delta > out[j].Delta })
	return out
}

// BehaviorChanges returns the cells whose detection counts, coverage
// inputs or workload sizes differ from the baseline.
func (c *Comparison) BehaviorChanges() []CellDelta {
	var out []CellDelta
	for _, d := range c.Cells {
		if d.BehaviorChanged {
			out = append(out, d)
		}
	}
	return out
}

// Gate returns a non-nil error when the comparison should fail CI: any
// cell regressed past threshold, or any cell's deterministic outputs
// (detections, workload sizes) changed against the baseline.
func (c *Comparison) Gate() error {
	regs := c.Regressions()
	beh := c.BehaviorChanges()
	if len(regs) == 0 && len(beh) == 0 {
		return nil
	}
	msg := ""
	if len(regs) > 0 {
		msg = fmt.Sprintf("%d cell(s) regressed past %.0f%% (worst: %s %+.1f%%)",
			len(regs), 100*c.Threshold, regs[0].Key, 100*regs[0].Delta)
	}
	if len(beh) > 0 {
		if msg != "" {
			msg += "; "
		}
		msg += fmt.Sprintf("%d cell(s) changed behavior vs baseline (first: %s)",
			len(beh), beh[0].Key)
	}
	return fmt.Errorf("bench: %s", msg)
}

// WriteMarkdown renders the comparison as the regression report: a
// summary line, the per-cell table, and a per-phase breakdown for every
// regressed cell.
func (c *Comparison) WriteMarkdown(w io.Writer) error {
	mode := "calibration-normalized"
	if c.Absolute {
		mode = "absolute wall time"
	}
	fmt.Fprintf(w, "# Benchmark comparison (%s, threshold %.0f%%)\n\n", mode, 100*c.Threshold)
	regs := c.Regressions()
	beh := c.BehaviorChanges()
	switch {
	case len(regs) == 0 && len(beh) == 0:
		fmt.Fprintf(w, "**PASS** — geo-mean speedup vs baseline: **%.3f×** over %d cells\n\n",
			c.GeoMeanSpeedup, len(c.Cells))
	default:
		fmt.Fprintf(w, "**FAIL** — %d regression(s), %d behavior change(s); geo-mean speedup %.3f×\n\n",
			len(regs), len(beh), c.GeoMeanSpeedup)
	}
	fmt.Fprintln(w, "| cell | base | current | Δ | status |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	for _, d := range c.Cells {
		status := "ok"
		switch {
		case d.BehaviorChanged && d.Regressed:
			status = "**REGRESSED, BEHAVIOR CHANGED**"
		case d.BehaviorChanged:
			status = "**BEHAVIOR CHANGED**"
		case d.Regressed:
			status = "**REGRESSED**"
		case d.Delta < -0.05:
			status = "improved"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %+.1f%% | %s |\n",
			d.Key, time.Duration(d.BaseNs).Round(time.Microsecond),
			time.Duration(d.CurNs).Round(time.Microsecond), 100*d.Delta, status)
	}
	fmt.Fprintln(w)
	for _, d := range regs {
		fmt.Fprintf(w, "## %s — phase breakdown\n\n", d.Key)
		fmt.Fprintln(w, "| phase | base | current | Δ |")
		fmt.Fprintln(w, "|---|---:|---:|---:|")
		for _, p := range d.Phases {
			delta := "n/a"
			if p.BaseNs > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*float64(p.CurNs-p.BaseNs)/float64(p.BaseNs))
			}
			fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
				p.Name, time.Duration(p.BaseNs).Round(time.Microsecond),
				time.Duration(p.CurNs).Round(time.Microsecond), delta)
		}
		fmt.Fprintln(w)
	}
	if len(c.NewKeys) > 0 {
		fmt.Fprintf(w, "New cells (no baseline): %d\n\n", len(c.NewKeys))
	}
	if len(c.MissingKeys) > 0 {
		fmt.Fprintf(w, "Baseline cells missing from this run: %d\n\n", len(c.MissingKeys))
	}
	return nil
}
