package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs"
)

// Schema is the report format identifier. ReadReport rejects any other
// value, so a format change must bump the version and (if old baselines
// should keep working) grow an explicit migration path.
const Schema = "faultsim-bench/v1"

// Host records the machine a report was measured on. Wall times are only
// directly comparable between reports with matching hosts; Compare's
// default calibration-normalized mode exists for everything else.
type Host struct {
	// Go is the toolchain version (runtime.Version()).
	Go string `json:"go"`
	// OS is runtime.GOOS.
	OS string `json:"os"`
	// Arch is runtime.GOARCH.
	Arch string `json:"arch"`
	// CPUs is runtime.NumCPU() — the csim-P scaling ceiling.
	CPUs int `json:"cpus"`
}

// CellResult is one measured cell of a report.
type CellResult struct {
	// Key is the cell's stable identity (Cell.Key); baselines join on it.
	Key string `json:"key"`
	// Engine is the simulator configuration (harness.Engine).
	Engine string `json:"engine"`
	// Circuit is the suite circuit name.
	Circuit string `json:"circuit"`
	// Model is the fault model (ModelStuck or ModelTransition).
	Model string `json:"model"`
	// Vectors is the vector source spec ("det" or "rand:N").
	Vectors string `json:"vectors"`
	// Workers is the explicit csim-P partition / csim-grid fault-shard
	// count (0 elsewhere).
	Workers int `json:"workers,omitempty"`
	// Windows is the explicit csim-V2 / csim-grid vector-window count
	// (0 elsewhere).
	Windows int `json:"windows,omitempty"`
	// Heavy records that the cell ran once without warmup.
	Heavy bool `json:"heavy,omitempty"`

	// Patterns is the applied vector count.
	Patterns int `json:"patterns"`
	// Faults is the universe size.
	Faults int `json:"faults"`
	// Detected is the hard-detection count (deterministic: a mismatch
	// against a baseline is a behavioral change, not noise).
	Detected int `json:"detected"`
	// PotOnly is the potentially-but-never-hard detected count.
	PotOnly int `json:"pot_only"`
	// Coverage is the hard fault coverage in [0,1].
	Coverage float64 `json:"coverage"`

	// TrialNs lists every measured trial's wall time in order.
	TrialNs []int64 `json:"trial_ns"`
	// BestNs is the fastest trial's wall time — the headline number.
	BestNs int64 `json:"best_ns"`
	// MemBytes is the accounted fault-structure memory at peak.
	MemBytes int64 `json:"mem_bytes"`
	// AllocBytes is the heap allocated during the fastest trial.
	AllocBytes int64 `json:"alloc_bytes"`
	// CyclesPerSec is Patterns divided by the best wall time.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// FaultCyclesPerSec is Patterns × Faults divided by the best wall
	// time — the throughput number that compares cells of different
	// sizes.
	FaultCyclesPerSec float64 `json:"fault_cycles_per_sec"`
	// PhasesNs is the fastest trial's per-phase wall time from the obs
	// tracer (phase name → nanoseconds); regression reports use it to
	// point at the phase that slowed down.
	PhasesNs map[string]int64 `json:"phases_ns,omitempty"`
	// Metrics is the fastest trial's full metric-registry snapshot.
	Metrics []obs.Point `json:"metrics,omitempty"`
}

// Report is one complete suite run — the BENCH_<timestamp>.json payload.
type Report struct {
	// Schema is the format identifier (the Schema constant).
	Schema string `json:"schema"`
	// Created is the run's UTC timestamp (RFC 3339).
	Created string `json:"created"`
	// Host is the measuring machine.
	Host Host `json:"host"`
	// Suite names the cell grid ("quick", "paper", "full", or a caller-
	// defined name for custom grids).
	Suite string `json:"suite"`
	// Trials and Warmup record the effective Options (heavy cells clamp
	// to one trial regardless).
	Trials int `json:"trials"`
	// Warmup is the discarded-run count per cell.
	Warmup int `json:"warmup"`
	// CalibrationNs is the Calibration cell's best wall time on this
	// host; Compare divides cell times by it in normalized mode.
	CalibrationNs int64 `json:"calibration_ns"`
	// Cells holds one result per suite cell, in suite order.
	Cells []CellResult `json:"cells"`
}

// Filename returns the conventional report name for a run timestamp:
// BENCH_<UTC compact timestamp>.json.
func Filename(t time.Time) string {
	return "BENCH_" + t.UTC().Format("20060102T150405Z") + ".json"
}

// WriteJSON serializes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (0644, truncating).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Cell returns the result with the given key and whether it exists.
func (r *Report) Cell(key string) (CellResult, bool) {
	for _, c := range r.Cells {
		if c.Key == key {
			return c, true
		}
	}
	return CellResult{}, false
}

// ReadReport parses a report, rejecting unknown schema versions — a
// baseline from a future (or corrupted) format fails loudly rather than
// comparing garbage.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parsing report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: unsupported report schema %q (want %q)", r.Schema, Schema)
	}
	return &r, nil
}

// ReadReportFile reads and validates the report at path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// WriteMarkdown renders the report as a standalone markdown table
// (no baseline): one row per cell with the headline measurements.
func (r *Report) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# Benchmark report — suite %q\n\n", r.Suite)
	fmt.Fprintf(w, "%s · %s %s/%s · %d CPU · %d trial(s), %d warmup · calibration %s\n\n",
		r.Created, r.Host.Go, r.Host.OS, r.Host.Arch, r.Host.CPUs,
		r.Trials, r.Warmup, time.Duration(r.CalibrationNs))
	fmt.Fprintln(w, "| cell | wall | cycles/s | fault-cycles/s | mem MB | alloc MB | cvg% |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "| %s | %s | %.0f | %.3g | %.2f | %.2f | %.1f |\n",
			c.Key, time.Duration(c.BestNs).Round(time.Microsecond),
			c.CyclesPerSec, c.FaultCyclesPerSec,
			float64(c.MemBytes)/(1<<20), float64(c.AllocBytes)/(1<<20),
			100*c.Coverage)
	}
	return nil
}
