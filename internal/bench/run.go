package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// Options tunes a suite run. The zero value is usable: DefaultTrials
// trials after DefaultWarmup warmup runs, no progress output.
type Options struct {
	// Trials is the measured-run count per cell (<= 0 means
	// DefaultTrials). The reported wall time is the fastest trial.
	Trials int
	// Warmup is the discarded-run count per cell (0 means DefaultWarmup,
	// negative means none) — it pays the one-time costs (vector-set
	// generation, page faults) outside the measurement.
	Warmup int
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// Default trial shape: one warmup then three measured trials per cell.
const (
	// DefaultTrials is the measured-run count when Options.Trials is 0.
	DefaultTrials = 3
	// DefaultWarmup is the warmup-run count when Options.Warmup is
	// negative.
	DefaultWarmup = 1
)

func (o Options) trials() int {
	if o.Trials <= 0 {
		return DefaultTrials
	}
	return o.Trials
}

func (o Options) warmup() int {
	if o.Warmup < 0 {
		return 0
	}
	if o.Warmup == 0 {
		return DefaultWarmup
	}
	return o.Warmup
}

// Run measures every cell of a suite and assembles the report: the
// calibration cell first, then each suite cell in order. now stamps the
// report's Created field (the caller owns the clock so runs stay
// scriptable and testable).
func Run(suiteName string, cells []Cell, opt Options, now time.Time) (*Report, error) {
	rep := &Report{
		Schema:  Schema,
		Created: now.UTC().Format(time.RFC3339),
		Host: Host{
			Go:   runtime.Version(),
			OS:   runtime.GOOS,
			Arch: runtime.GOARCH,
			CPUs: runtime.NumCPU(),
		},
		Suite:  suiteName,
		Trials: opt.trials(),
		Warmup: opt.warmup(),
	}
	cal, err := runCell(Calibration(), opt)
	if err != nil {
		return nil, fmt.Errorf("bench: calibration: %w", err)
	}
	rep.CalibrationNs = cal.BestNs
	if opt.Progress != nil {
		fmt.Fprintf(opt.Progress, "calibration %-40s %12s\n",
			cal.Key, time.Duration(cal.BestNs))
	}
	for _, c := range cells {
		res, err := runCell(c, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.Key(), err)
		}
		rep.Cells = append(rep.Cells, res)
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "%-52s %12s  %8.1f cyc/s  cvg %.1f%%\n",
				res.Key, time.Duration(res.BestNs), res.CyclesPerSec, 100*res.Coverage)
		}
	}
	return rep, nil
}

// workload resolves a cell's fault universe and vector set through the
// harness (the single source of workload truth — see internal/harness).
func workload(c Cell) (*faults.Universe, *vectors.Set, error) {
	var u *faults.Universe
	var err error
	switch c.Model {
	case ModelStuck:
		u, err = harness.StuckUniverse(c.Circuit)
	case ModelTransition:
		u, err = harness.TransitionUniverse(c.Circuit)
	default:
		return nil, nil, fmt.Errorf("unknown fault model %q", c.Model)
	}
	if err != nil {
		return nil, nil, err
	}
	var vs *vectors.Set
	switch c.Vectors.Kind {
	case "det":
		vs, err = harness.DeterministicSet(c.Circuit)
	case "rand":
		vs, err = harness.RandomSet(c.Circuit, c.Vectors.N)
	default:
		return nil, nil, fmt.Errorf("unknown vector spec %q", c.Vectors)
	}
	if err != nil {
		return nil, nil, err
	}
	return u, vs, nil
}

// runCell measures one cell: warmup runs (discarded), then trials, each
// under a fresh observer so per-trial phase timings and metric snapshots
// don't bleed between trials. The fastest trial supplies the headline
// wall time, its phase breakdown, and its metrics snapshot.
func runCell(c Cell, opt Options) (CellResult, error) {
	u, vs, err := workload(c)
	if err != nil {
		return CellResult{}, err
	}
	warmup, trials := opt.warmup(), opt.trials()
	if c.Heavy {
		warmup, trials = 0, 1
	}
	res := CellResult{
		Key:      c.Key(),
		Engine:   string(c.Engine),
		Circuit:  c.Circuit,
		Model:    c.Model,
		Vectors:  c.Vectors.String(),
		Workers:  c.Workers,
		Windows:  c.Windows,
		Heavy:    c.Heavy,
		Patterns: vs.Len(),
		Faults:   u.NumFaults(),
	}
	for i := 0; i < warmup; i++ {
		if _, _, err := runOnce(c, u, vs); err != nil {
			return res, err
		}
	}
	best := -1
	for i := 0; i < trials; i++ {
		m, tr, err := runOnce(c, u, vs)
		if err != nil {
			return res, err
		}
		res.TrialNs = append(res.TrialNs, tr.wallNs)
		if best < 0 || tr.wallNs < res.TrialNs[best] {
			best = i
			res.BestNs = tr.wallNs
			res.MemBytes = m.MemBytes
			res.AllocBytes = tr.allocBytes
			res.PhasesNs = tr.phasesNs
			res.Metrics = tr.metrics
			res.Detected = m.Detected
			res.PotOnly = m.PotOnly
			res.Coverage = m.Coverage
		}
	}
	if res.BestNs > 0 {
		secs := float64(res.BestNs) / 1e9
		res.CyclesPerSec = float64(res.Patterns) / secs
		res.FaultCyclesPerSec = float64(res.Patterns) * float64(res.Faults) / secs
	}
	return res, nil
}

// trial is one measured run's raw instrumentation.
type trial struct {
	wallNs     int64
	allocBytes int64
	phasesNs   map[string]int64
	metrics    []obs.Point
}

// runOnce executes one cell run under a fresh observer and returns the
// harness measurement plus the per-trial instrumentation.
func runOnce(c Cell, u *faults.Universe, vs *vectors.Set) (harness.Measurement, trial, error) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg)
	ob := &obs.Observer{Metrics: reg, Tracer: tracer}

	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	var m harness.Measurement
	var err error
	switch c.Engine {
	case harness.CsimP:
		m, err = harness.RunParallelObserved(u, vs, c.Workers, ob)
	case harness.CsimV2:
		m, err = harness.RunVectorShardedObserved(u, vs, c.Windows, ob)
	case harness.CsimGrid:
		m, err = harness.RunGridObserved(u, vs, c.Workers, c.Windows, ob)
	default:
		m, err = harness.RunObserved(c.Engine, u, vs, ob)
	}
	wall := time.Since(t0)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if err != nil {
		return m, trial{}, err
	}

	tr := trial{
		wallNs:     wall.Nanoseconds(),
		allocBytes: int64(m1.TotalAlloc - m0.TotalAlloc),
		phasesNs:   map[string]int64{},
		metrics:    reg.Snapshot(),
	}
	for name, d := range tracer.PhaseDurations() {
		tr.phasesNs[name] = d.Nanoseconds()
	}
	return m, tr, nil
}
