// Package compiled implements csim-C, the compiled bit-parallel
// simulation backend. A circuit is compiled once into branch-free,
// levelized straight-line evaluation over flat structure-of-arrays
// word storage: the per-cycle hot path walks dense int32 arrays and
// packed uint64 bit-planes instead of interpreting netlist arenas.
//
// Three artifacts come out of one compilation:
//
//   - Program: the immutable compiled form — the level-ordered gate
//     list lowered to a fused two-input instruction stream (one table
//     lookup per step, wide gates decomposed into chains), flattened
//     fanin/fanout/DFF adjacency, and (optionally) a macro-inlined
//     good-machine instruction stream whose macros evaluate by table
//     lookup.
//   - Trace: the packed good-machine waveform. The good machine runs
//     cycle-serially (the state recurrence of a sequential circuit
//     admits no 64-cycle shortcut) but deposits every gate's settled
//     value as one bit-column per cycle, so 64 cycles of every signal
//     occupy two uint64 bit-planes per gate.
//   - Sim: the fault simulator. Each fault is re-evaluated 64 vectors
//     per pass against the packed trace, restricted to the fault's
//     output cone by event-driven plane propagation, with detection
//     reduced into the standard faults.Result / csim.Stats types so
//     merging and sharding machinery compose unchanged.
//
// Detection semantics are bit-identical to internal/serial (and thus
// to csim): DESIGN.md §12 gives the argument.
package compiled

import (
	"repro/internal/logic"
	"repro/internal/macro"
	"repro/internal/netlist"
)

// Opcodes for compiled gate evaluation. Even codes are the base
// (non-inverting) functions; code|1 is the complemented form, so
// code&^1 recovers the base and code&1 the inversion — the plane
// evaluator computes the base function and swaps bit-planes to invert.
const (
	opBuf uint8 = iota
	opNot
	opAnd
	opNand
	opOr
	opNor
	opXor
	opXnor
)

// sop is one fused two-input step of the scalar straight-line program:
// val[out] = scalarTab[tbl][val[x]<<2|val[y]]. Gates with more than two
// inputs are decomposed at compile time into a chain of sops that
// accumulate into val[out] (legal in level order: nothing reads out
// before its last sop retires), so the evaluator is a single loop with
// no per-gate arity branch — every iteration is two value loads, one
// table load and one store.
type sop struct {
	out, x, y int32
	tbl       uint8
}

// tableMaxInputs caps the leaf count for which the compiler requests a
// full ternary macro table (4^n entries) from internal/macro; wider
// macros keep cone replay in the compiled good machine.
const tableMaxInputs = 8

// goodInstr is one step of the macro-inlined good-machine program:
// evaluate the macro rooted at root from its leaf values, by table
// lookup when tbl is non-nil and by cone replay otherwise.
type goodInstr struct {
	root   netlist.GateID
	leaves []netlist.GateID
	tbl    []logic.V
	m      *macro.Macro
}

// Program is a circuit compiled for csim-C. It is immutable once
// Compile returns — every evaluation method works on caller-owned or
// Sim-owned scratch — so one Program may back any number of
// concurrently running simulators, exactly like a shared macro.Plan.
//
//simlint:immutable
type Program struct {
	c *netlist.Circuit

	// order lists the non-source gates in ascending level order; scode
	// is the same order lowered to fused two-input scalar instructions.
	order []netlist.GateID
	scode []sop

	// code holds the compiled opcode per gate (sources keep opBuf,
	// never evaluated).
	code []uint8

	// Flattened fanin adjacency: gate g's inputs are
	// fanins[faninOff[g]:faninOff[g+1]].
	faninOff []int32
	fanins   []netlist.GateID

	// Flattened combinational fanout (source consumers excluded):
	// fanouts[fanoutOff[g]:fanoutOff[g+1]].
	fanoutOff []int32
	fanouts   []netlist.GateID

	// Flattened DFF adjacency: fedFFs[fedOff[g]:fedOff[g+1]] are the
	// indices (into c.DFFs) of flip-flops whose D input is driven by g.
	fedOff []int32
	fedFFs []int32

	// dffD maps a DFF index to its D-input driver gate; dffIdx maps a
	// gate to its DFF index, or -1.
	dffD   []netlist.GateID
	dffIdx []int32

	level    []int32
	maxLevel int32

	// good is the macro-inlined good-machine program (nil when the
	// Program was compiled without a plan); goodFrame is the replay
	// scratch size it needs.
	good      []goodInstr
	goodFrame int
}

// Circuit returns the compiled circuit.
func (p *Program) Circuit() *netlist.Circuit { return p.c }

// NumGates returns the compiled circuit's gate count.
func (p *Program) NumGates() int { return len(p.c.Gates) }

// opcode compiles one netlist operation. Sources are never evaluated;
// OUTPUT markers have buffer semantics.
func opcode(op logic.Op) uint8 {
	switch op {
	case logic.OpBuf, logic.OpOutput, logic.OpInput, logic.OpDFF:
		return opBuf
	case logic.OpNot:
		return opNot
	case logic.OpAnd:
		return opAnd
	case logic.OpNand:
		return opNand
	case logic.OpOr:
		return opOr
	case logic.OpNor:
		return opNor
	case logic.OpXor:
		return opXor
	case logic.OpXnor:
		return opXnor
	}
	return opBuf
}

// Compile lowers a levelized circuit into its compiled form. plan may
// be nil: the fault simulator works purely at gate level, so a plan
// only adds the macro-inlined good-machine program (used by Good).
// Macros up to 8 leaves are inlined as full ternary lookup tables
// (exported by internal/macro); wider macros keep cone replay.
func Compile(c *netlist.Circuit, plan *macro.Plan) *Program {
	ng := len(c.Gates)
	p := &Program{
		c:         c,
		code:      make([]uint8, ng),
		faninOff:  make([]int32, ng+1),
		fanoutOff: make([]int32, ng+1),
		fedOff:    make([]int32, ng+1),
		level:     make([]int32, ng),
		maxLevel:  c.MaxLevel,
		dffD:      make([]netlist.GateID, len(c.DFFs)),
		dffIdx:    make([]int32, ng),
	}
	for i := range p.dffIdx {
		p.dffIdx[i] = -1
	}
	for i, ff := range c.DFFs {
		p.dffD[i] = c.Gate(ff).Fanin[0]
		p.dffIdx[ff] = int32(i)
	}

	// Level-ordered non-source gate list.
	for l := 1; l < len(c.Levels); l++ {
		for _, g := range c.Levels[l] {
			if !c.Gate(g).IsSource() {
				p.order = append(p.order, g)
			}
		}
	}

	// Flattened adjacency and opcodes.
	nin, nout, nfed := 0, 0, 0
	for i := range c.Gates {
		g := &c.Gates[i]
		nin += len(g.Fanin)
		for _, fo := range g.Fanout {
			if c.Gate(fo).IsSource() {
				nfed++
			} else {
				nout++
			}
		}
	}
	p.fanins = make([]netlist.GateID, 0, nin)
	p.fanouts = make([]netlist.GateID, 0, nout)
	p.fedFFs = make([]int32, 0, nfed)
	for i := range c.Gates {
		g := &c.Gates[i]
		p.code[i] = opcode(g.Op)
		p.level[i] = g.Level
		p.faninOff[i] = int32(len(p.fanins))
		p.fanins = append(p.fanins, g.Fanin...)
		p.fanoutOff[i] = int32(len(p.fanouts))
		p.fedOff[i] = int32(len(p.fedFFs))
		for _, fo := range g.Fanout {
			if c.Gate(fo).IsSource() {
				p.fedFFs = append(p.fedFFs, p.dffIdx[fo])
			} else {
				p.fanouts = append(p.fanouts, fo)
			}
		}
	}
	p.faninOff[ng] = int32(len(p.fanins))
	p.fanoutOff[ng] = int32(len(p.fanouts))
	p.fedOff[ng] = int32(len(p.fedFFs))

	// Lower the level order to the fused scalar instruction stream.
	for _, g := range p.order {
		p.scode = append(p.scode, lowerScalar(p.code[g], int32(g), p.fanin(g))...)
	}

	if plan != nil {
		p.compileGood(plan)
	}
	return p
}

// compileGood lowers a macro plan into the inlined good-machine
// instruction stream: one instruction per macro root, in plan level
// order, with lookup tables exported for every table-sized macro.
func (p *Program) compileGood(plan *macro.Plan) {
	for l := 1; l < len(plan.Levels); l++ {
		for _, root := range plan.Levels[l] {
			m := plan.Macro(root)
			p.good = append(p.good, goodInstr{
				root:   root,
				leaves: m.Leaves,
				tbl:    m.BuildTable(tableMaxInputs),
				m:      m,
			})
			if fs := m.FrameSize(); fs > p.goodFrame {
				p.goodFrame = fs
			}
		}
	}
}

// fanin returns gate g's input gates.
func (p *Program) fanin(g netlist.GateID) []netlist.GateID {
	return p.fanins[p.faninOff[g]:p.faninOff[g+1]]
}

// fanout returns gate g's combinational consumers.
func (p *Program) fanout(g netlist.GateID) []netlist.GateID {
	return p.fanouts[p.fanoutOff[g]:p.fanoutOff[g+1]]
}

// fed returns the DFF indices whose D input g drives.
func (p *Program) fed(g netlist.GateID) []int32 {
	return p.fedFFs[p.fedOff[g]:p.fedOff[g+1]]
}

// feedsFF reports whether any flip-flop samples g.
func (p *Program) feedsFF(g netlist.GateID) bool {
	return p.fedOff[g+1] > p.fedOff[g]
}

// scalarTab holds the two-input ternary function tables of every
// opcode, indexed scalarTab[op][a<<2|b]. opBuf and opNot ignore b, so
// single-input sops pass x for both operands.
var scalarTab [8][16]logic.V

func init() {
	for i := 0; i < 16; i++ {
		a, b := logic.V(i>>2), logic.V(i&3)
		scalarTab[opBuf][i] = a
		scalarTab[opNot][i] = a.Not()
		scalarTab[opAnd][i] = logic.And2(a, b)
		scalarTab[opNand][i] = logic.And2(a, b).Not()
		scalarTab[opOr][i] = logic.Or2(a, b)
		scalarTab[opNor][i] = logic.Or2(a, b).Not()
		scalarTab[opXor][i] = logic.Xor2(a, b)
		scalarTab[opXnor][i] = logic.Xor2(a, b).Not()
	}
}

// lowerScalar decomposes one gate into fused two-input sops. Arity one
// reduces to a buffer or inverter of the single input; arity two maps
// directly; wider gates chain the base (non-inverting) function
// through val[out] and fold any output inversion into the final link.
func lowerScalar(code uint8, out int32, ins []netlist.GateID) []sop {
	switch len(ins) {
	case 0:
		return nil // sources are never in the order
	case 1:
		// AND/OR/XOR of one input is the input; the inversion bit
		// (code&1) picks buffer vs inverter.
		x := int32(ins[0])
		return []sop{{out: out, x: x, y: x, tbl: opBuf | code&1}}
	case 2:
		return []sop{{out: out, x: int32(ins[0]), y: int32(ins[1]), tbl: code}}
	}
	base := code &^ 1
	ops := make([]sop, 0, len(ins)-1)
	ops = append(ops, sop{out: out, x: int32(ins[0]), y: int32(ins[1]), tbl: base})
	for _, f := range ins[2 : len(ins)-1] {
		ops = append(ops, sop{out: out, x: out, y: int32(f), tbl: base})
	}
	// The last link applies the full opcode, inversion included:
	// NAND(a,b,c) = NAND(AND(a,b), c).
	return append(ops, sop{out: out, x: out, y: int32(ins[len(ins)-1]), tbl: code})
}

// evalScalar runs one full straight-line evaluation of the
// combinational network over val (indexed by gate): the lowered
// instruction stream in level order, one table lookup per step.
func (p *Program) evalScalar(val []logic.V) {
	for _, in := range p.scode {
		val[in.out] = scalarTab[in.tbl][int(val[in.x])<<2|int(val[in.y])]
	}
}
