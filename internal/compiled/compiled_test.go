package compiled

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/goodsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/macro"
	"repro/internal/netlist"
	"repro/internal/serial"
	"repro/internal/vectors"
)

func genCircuit(t *testing.T, seed int64, pis, pos, ffs, gates int) *netlist.Circuit {
	t.Helper()
	c, err := gen.Generate(gen.Spec{
		Name: fmt.Sprintf("rnd%d", seed),
		PIs:  pis, POs: pos, DFFs: ffs, Gates: gates, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func compare(t *testing.T, tag string, want, got *faults.Result) {
	t.Helper()
	if d := want.Diff(got); d != "" {
		t.Fatalf("%s: detections differ:\n%s", tag, d)
	}
	for i := range want.DetectedAt {
		if want.DetectedAt[i] != got.DetectedAt[i] {
			t.Fatalf("%s: fault %s first detected at %d, oracle %d", tag,
				want.Universe.Faults[i].Name(want.Universe.Circuit),
				got.DetectedAt[i], want.DetectedAt[i])
		}
		if want.PotDetected[i] != got.PotDetected[i] {
			t.Fatalf("%s: fault %s potential %v, oracle %v", tag,
				want.Universe.Faults[i].Name(want.Universe.Circuit),
				got.PotDetected[i], want.PotDetected[i])
		}
	}
}

// runBoth runs the serial oracle and csim-C over the same workload and
// requires bit-identical results.
func runBoth(t *testing.T, tag string, u *faults.Universe, vs *vectors.Set) {
	t.Helper()
	want := serial.Simulate(u, vs)
	sim, err := New(u)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	compare(t, tag, want, sim.Run(vs))
}

// TestWidthEdges pins the bit-parallel pass boundaries: vector counts
// around and across the 64-lane word width, on both fault models.
func TestWidthEdges(t *testing.T) {
	c := genCircuit(t, 7, 4, 3, 5, 40)
	for _, nv := range []int{1, 63, 64, 65, 130} {
		vs := vectors.Random(c, nv, int64(nv))
		for _, model := range []string{"stuck", "stuck-all", "transition"} {
			var u *faults.Universe
			switch model {
			case "stuck":
				u = faults.StuckCollapsed(c)
			case "stuck-all":
				u = faults.StuckAll(c)
			case "transition":
				u = faults.Transition(c)
			}
			runBoth(t, fmt.Sprintf("%s/%s/n=%d", c.Name, model, nv), u, vs)
		}
	}
}

// TestRandomCircuitsAgree sweeps circuit shapes — combinational-only,
// state-heavy, FF-to-FF chains — against the oracle.
func TestRandomCircuitsAgree(t *testing.T) {
	shapes := []struct{ pis, pos, ffs, gates int }{
		{2, 2, 0, 12},
		{4, 3, 2, 30},
		{3, 2, 6, 25},
		{5, 4, 8, 80},
		{6, 5, 12, 150},
	}
	for si, sh := range shapes {
		for seed := int64(1); seed <= 3; seed++ {
			c := genCircuit(t, 100*int64(si)+seed, sh.pis, sh.pos, sh.ffs, sh.gates)
			vs := vectors.Random(c, 70, seed)
			runBoth(t, c.Name+"/stuck", faults.StuckCollapsed(c), vs)
			runBoth(t, c.Name+"/stuck-all", faults.StuckAll(c), vs)
			runBoth(t, c.Name+"/transition", faults.Transition(c), vs)
		}
	}
}

// TestBundledCircuits checks csim-C against the oracle on bundled
// suite circuits for both fault models.
func TestBundledCircuits(t *testing.T) {
	names := []string{"s27", "s298", "s344"}
	nv := 48
	if testing.Short() {
		names = names[:2]
		nv = 24
	}
	for _, name := range names {
		c, err := iscas.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		vs := vectors.Random(c, nv, 42)
		runBoth(t, name+"/stuck", faults.StuckCollapsed(c), vs)
		runBoth(t, name+"/transition", faults.Transition(c), vs)
	}
}

// TestXVectors drives explicit X input values through the packed
// planes.
func TestXVectors(t *testing.T) {
	c := genCircuit(t, 11, 3, 2, 4, 30)
	vs := vectors.Random(c, 40, 3)
	for i := range vs.Vecs {
		vs.Vecs[i][i%len(vs.Vecs[i])] = logic.X
	}
	runBoth(t, "xvec/stuck", faults.StuckCollapsed(c), vs)
	runBoth(t, "xvec/transition", faults.Transition(c), vs)
}

// TestTraceMatchesGoodsim checks the packed trace lane-for-lane
// against the interpreted good machine.
func TestTraceMatchesGoodsim(t *testing.T) {
	c := genCircuit(t, 5, 4, 3, 5, 60)
	vs := vectors.Random(c, 130, 9)
	p := Compile(c, nil)
	tr, _ := p.Trace(vs)
	ref := goodsim.Record(c, vs.Vecs)
	for cyc := 0; cyc < vs.Len(); cyc++ {
		for g := range c.Gates {
			if got, want := tr.At(cyc, netlist.GateID(g)), ref.At(cyc, netlist.GateID(g)); got != want {
				t.Fatalf("cycle %d gate %s: trace %v, goodsim %v", cyc, c.Gates[g].Name, got, want)
			}
		}
	}
}

// TestGoodMatchesGoodsim checks the macro-inlined good machine against
// the interpreted one at the primary outputs, with and without a plan.
func TestGoodMatchesGoodsim(t *testing.T) {
	c := genCircuit(t, 21, 5, 4, 6, 90)
	vs := vectors.Random(c, 100, 13)
	plan, err := macro.Extract(c, macro.DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		plan *macro.Plan
	}{{"macro", plan}, {"fallback", nil}} {
		p := Compile(c, tc.plan)
		g := p.NewGood()
		ref := goodsim.New(c)
		for cyc := 0; cyc < vs.Len(); cyc++ {
			g.Cycle(vs.Vecs[cyc])
			ref.Apply(vs.Vecs[cyc])
			for i, po := range c.POs {
				if got, want := g.Val(po), ref.Val(po); got != want {
					t.Fatalf("%s: cycle %d PO %d: compiled %v, goodsim %v", tc.name, cyc, i, got, want)
				}
			}
			ref.Clock()
		}
	}
}

// TestStatsAccounting checks that a run reports the standard counters.
func TestStatsAccounting(t *testing.T) {
	c := genCircuit(t, 31, 4, 3, 4, 50)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 64, 17)
	sim, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(vs)
	st := sim.Stats()
	if st.GoodEvals == 0 {
		t.Error("GoodEvals = 0 after a run")
	}
	if st.Evals == 0 {
		t.Error("Evals = 0 after a run")
	}
	if st.Detections != res.NumDet {
		t.Errorf("Detections = %d, result has %d", st.Detections, res.NumDet)
	}
	if st.MemBytes <= 0 {
		t.Error("MemBytes not accounted")
	}
}

// TestNewWithRejectsMismatch pins the Program/Universe circuit check.
func TestNewWithRejectsMismatch(t *testing.T) {
	a := genCircuit(t, 41, 3, 2, 2, 20)
	b := genCircuit(t, 43, 3, 2, 2, 20)
	if _, err := NewWith(Compile(a, nil), faults.StuckCollapsed(b)); err == nil {
		t.Fatal("NewWith accepted a universe over a different circuit")
	}
}
