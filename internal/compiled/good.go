package compiled

import (
	"repro/internal/logic"
	"repro/internal/macro"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// Good is the compiled good-machine simulator: per cycle it evaluates
// the macro-inlined instruction stream — one table lookup per
// table-sized macro, cone replay for wide ones — over a flat value
// array, skipping macro-interior gates entirely. When the Program was
// compiled without a plan it falls back to the straight-line
// whole-network evaluator. Semantics match goodsim.Sim at the primary
// outputs and flip-flop state; interior gate values are not
// maintained.
type Good struct {
	p       *Program
	val     []logic.V
	next    []logic.V
	frame   []logic.V
	leafBuf [logic.MaxPins]logic.V

	// Evals counts macro (or gate) evaluations performed.
	Evals int64
}

// NewGood builds a good-machine simulator over the compiled program,
// with every signal initialized to X.
func (p *Program) NewGood() *Good {
	g := &Good{
		p:     p,
		val:   make([]logic.V, len(p.c.Gates)),
		next:  make([]logic.V, len(p.c.DFFs)),
		frame: make([]logic.V, p.goodFrame),
	}
	g.Reset()
	return g
}

// Reset returns every signal, including flip-flop state, to X.
func (g *Good) Reset() {
	for i := range g.val {
		g.val[i] = logic.X
	}
}

// Val returns the current value of a gate's output line. Only sources,
// macro roots and (in the fallback mode) all gates carry meaningful
// values.
func (g *Good) Val(id netlist.GateID) logic.V { return g.val[id] }

// Outputs copies the current primary-output values into dst
// (allocating if nil) and returns it.
func (g *Good) Outputs(dst []logic.V) []logic.V {
	if dst == nil {
		dst = make([]logic.V, len(g.p.c.POs))
	}
	for i, po := range g.p.c.POs {
		dst[i] = g.val[po]
	}
	return dst
}

// Cycle runs one full clock cycle: assert vec on the primary inputs,
// evaluate the compiled network, then latch the flip-flops. The
// settled PO values are readable through Outputs before the next call.
func (g *Good) Cycle(vec []logic.V) {
	p := g.p
	for i, pi := range p.c.PIs {
		g.val[pi] = vec[i].Norm()
	}
	if p.good != nil {
		for i := range p.good {
			ins := &p.good[i]
			in := g.leafBuf[:len(ins.leaves)]
			for j, l := range ins.leaves {
				in[j] = g.val[l]
			}
			if ins.tbl != nil {
				g.val[ins.root] = ins.tbl[macro.TableIndex(in)]
			} else {
				g.val[ins.root] = ins.m.Eval(in, g.frame)
			}
		}
		g.Evals += int64(len(p.good))
	} else {
		p.evalScalar(g.val)
		g.Evals += int64(len(p.order))
	}
	for i := range p.c.DFFs {
		g.next[i] = g.val[p.dffD[i]]
	}
	for i, ff := range p.c.DFFs {
		g.val[ff] = g.next[i]
	}
}

// Run simulates the whole vector sequence from the all-X state.
func (g *Good) Run(vs *vectors.Set) {
	g.Reset()
	for t := 0; t < vs.Len(); t++ {
		g.Cycle(vs.Vecs[t])
	}
}
