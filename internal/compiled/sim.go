package compiled

import (
	"fmt"
	"math/bits"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// siteKind classifies a fault site once, so the per-pass hot path
// switches on a dense enum instead of re-deriving gate/pin/kind
// combinations.
type siteKind uint8

const (
	siteComb      siteKind = iota // stuck-at on a combinational gate (pin or output)
	sitePI                        // stuck-at on a primary-input line
	siteDFFOut                    // stuck-at on a flip-flop output
	siteDFFD                      // stuck-at on a flip-flop D pin
	siteCombTrans                 // transition fault on a combinational gate input
	siteDFFTrans                  // transition fault on a flip-flop D pin
)

// ffDiff is one faulty-machine state divergence: flip-flop ff (index
// into Circuit.DFFs) enters the next cycle holding val instead of the
// good value.
type ffDiff struct {
	ff  int32
	val logic.V
}

// Sim is the csim-C fault simulator. It owns the mutable per-pass
// scratch (bit-planes, event queue, epoch stamps) and is therefore not
// safe for concurrent use; share the Program, not the Sim.
//
// Each fault is simulated in passes of up to 64 cycles against the
// packed good trace. A pass speculates that the faulty machine's
// flip-flop state equals the good machine's in every lane after the
// first; event-driven plane propagation then finds the earliest lane
// where a flip-flop input diverges, the pass result is kept exactly up
// to that lane, and the next pass resumes one cycle later carrying the
// true state difference list. Output-cone restriction falls out of the
// event discipline: only gates downstream of an injected difference
// are ever evaluated.
type Sim struct {
	p     *Program
	u     *faults.Universe
	stats csim.Stats

	tr         *Trace
	trV1, trV0 []uint64 // bit-planes of the current 64-cycle block

	v1, v0    []uint64
	stamp     []int32
	epoch     int32
	sched     []bool
	queue     [][]netlist.GateID
	touched   []netlist.GateID
	touchMark []bool
	diffs     []ffDiff
	peakDiffs int
}

// New compiles u's circuit and returns a simulator over it.
func New(u *faults.Universe) (*Sim, error) {
	return NewWith(Compile(u.Circuit, nil), u)
}

// NewWith builds a simulator over an already compiled program — the
// service cache memoizes the Program and hands it to every job over
// the same circuit. The universe must be over the compiled circuit.
func NewWith(p *Program, u *faults.Universe) (*Sim, error) {
	if u.Circuit != p.c {
		return nil, fmt.Errorf("compiled: universe circuit %q does not match compiled program %q",
			u.Circuit.Name, p.c.Name)
	}
	ng := len(p.c.Gates)
	s := &Sim{
		p:         p,
		u:         u,
		v1:        make([]uint64, ng),
		v0:        make([]uint64, ng),
		stamp:     make([]int32, ng),
		sched:     make([]bool, ng),
		queue:     make([][]netlist.GateID, p.maxLevel+1),
		touchMark: make([]bool, ng),
	}
	for i := range s.stamp {
		s.stamp[i] = -1
	}
	return s, nil
}

// Stats returns the run's instrumentation counters in the standard
// csim form, so harness tables, bench cells and the service's stats
// view consume csim-C runs unchanged.
func (s *Sim) Stats() csim.Stats { return s.stats }

// Run simulates every fault of the universe over the vector sequence:
// one compiled good-machine pass building the packed trace, then
// per-fault bit-parallel re-evaluation. Detections are bit-identical
// to serial.Simulate, including first-detection vector indices and
// potential (X at a sampled output) detections.
func (s *Sim) Run(vs *vectors.Set) *faults.Result {
	res := faults.NewResult(s.u)
	tr, gevals := s.p.Trace(vs)
	s.tr = tr
	s.stats.GoodEvals += int(gevals)
	nc := vs.Len()
	if nc > 0 {
		for fi := range s.u.Faults {
			s.runFault(&s.u.Faults[fi], nc, res)
		}
	}
	s.stats.Detections = res.NumDet
	s.stats.PeakElems = s.peakDiffs
	s.stats.MemBytes = tr.Bytes() +
		int64(len(s.v1)+len(s.v0))*8 + // scratch planes
		int64(len(s.stamp))*4 +
		int64(s.peakDiffs)*8
	return res
}

// classify resolves a fault to its site kind and, for transition
// faults, the site pin's driver gate.
func (s *Sim) classify(f *faults.Fault) (siteKind, netlist.GateID) {
	op := s.p.c.Gate(f.Gate).Op
	if f.Kind.Stuck() {
		switch op {
		case logic.OpInput:
			return sitePI, netlist.NoGate
		case logic.OpDFF:
			if f.Pin == faults.OutPin {
				return siteDFFOut, netlist.NoGate
			}
			return siteDFFD, netlist.NoGate
		}
		return siteComb, netlist.NoGate
	}
	drv := s.p.fanin(f.Gate)[f.Pin]
	if op == logic.OpDFF {
		return siteDFFTrans, drv
	}
	return siteCombTrans, drv
}

// runFault simulates one fault to detection or vector exhaustion.
func (s *Sim) runFault(f *faults.Fault, nc int, res *faults.Result) {
	st, drv := s.classify(f)
	s.diffs = s.diffs[:0]
	prevDrv := logic.X
	for cyc := 0; cyc < nc; {
		done, next := s.pass(f, st, drv, cyc, nc, res, &prevDrv)
		if done {
			return
		}
		cyc = next
	}
}

// read returns gate g's faulty bit-planes, lazily initializing them
// from the good trace on first touch in the current pass.
func (s *Sim) read(g netlist.GateID) (uint64, uint64) {
	if s.stamp[g] != s.epoch {
		s.stamp[g] = s.epoch
		s.v1[g] = s.trV1[g]
		s.v0[g] = s.trV0[g]
	}
	return s.v1[g], s.v0[g]
}

// forcePlanes overwrites the masked lanes of a plane pair with v.
func forcePlanes(a1, a0 uint64, v logic.V, m uint64) (uint64, uint64) {
	a1 &^= m
	a0 &^= m
	switch v {
	case logic.One:
		a1 |= m
	case logic.Zero:
		a0 |= m
	}
	return a1, a0
}

// force overwrites the masked lanes of gate g's faulty planes with v.
func (s *Sim) force(g netlist.GateID, v logic.V, m uint64) {
	s.read(g)
	s.v1[g], s.v0[g] = forcePlanes(s.v1[g], s.v0[g], v, m)
}

// setLane writes one lane of gate g's faulty planes.
func (s *Sim) setLane(g netlist.GateID, lane uint, v logic.V) {
	s.read(g)
	bit := uint64(1) << lane
	s.v1[g] = s.v1[g]&^bit | oneBit[v]<<lane
	s.v0[g] = s.v0[g]&^bit | zeroBit[v]<<lane
}

// schedule queues gate g for evaluation at its level.
func (s *Sim) schedule(g netlist.GateID) {
	if s.sched[g] {
		return
	}
	s.sched[g] = true
	s.queue[s.p.level[g]] = append(s.queue[s.p.level[g]], g)
	s.stats.Scheds++
}

// schedFanouts queues gate g's combinational consumers.
func (s *Sim) schedFanouts(g netlist.GateID) {
	for _, fo := range s.p.fanout(g) {
		s.schedule(fo)
	}
}

// touch records that gate g's planes were written this pass, when any
// flip-flop samples g — the set the divergence cutoff and state carry
// inspect.
func (s *Sim) touch(g netlist.GateID) {
	if !s.p.feedsFF(g) || s.touchMark[g] {
		return
	}
	s.touchMark[g] = true
	s.touched = append(s.touched, g)
}

// pass simulates fault f over the lanes [cyc%64, …] of cyc's 64-cycle
// block. It returns (true, 0) when the fault was detected, else
// (false, next) with the first cycle the next pass must resume from.
func (s *Sim) pass(f *faults.Fault, st siteKind, drv netlist.GateID, cyc, nc int, res *faults.Result, prevDrv *logic.V) (bool, int) {
	p := s.p
	b := cyc / wordW
	off := uint(cyc % wordW)
	n := nc - b*wordW
	if n > wordW {
		n = wordW
	}
	wEnd := uint(n - 1)
	if st == siteDFFTrans {
		// The latched fault value recurs through the state register, so
		// this site kind advances one cycle per pass.
		wEnd = off
	}
	mask := maskRange(off, wEnd)
	s.epoch++
	s.touched = s.touched[:0]
	s.trV1, s.trV0 = s.tr.block(b)

	// Install the carried state differences at the entry lane.
	for _, d := range s.diffs {
		ffg := p.c.DFFs[d.ff]
		s.setLane(ffg, off, d.val)
		s.schedFanouts(ffg)
		s.touch(ffg)
	}

	// Inject the fault. Flip-flop-sited stuck faults pin the state
	// line's planes exactly (no speculation), so the site register is
	// exempt from the divergence cutoff and carries its own next-state
	// difference explicitly.
	exempt := int32(-1)
	switch st {
	case sitePI:
		s.force(f.Gate, f.Kind.StuckValue(), mask)
		s.schedFanouts(f.Gate)
		s.touch(f.Gate)
	case siteDFFOut:
		s.force(f.Gate, f.Kind.StuckValue(), mask)
		s.schedFanouts(f.Gate)
		s.touch(f.Gate)
		exempt = p.dffIdx[f.Gate]
	case siteDFFD:
		// Lane off holds the carried (or good) state; the stuck D pin
		// fixes every later lane's latched value.
		if m2 := mask &^ (uint64(1) << off); m2 != 0 {
			s.force(f.Gate, f.Kind.StuckValue(), m2)
			s.schedFanouts(f.Gate)
			s.touch(f.Gate)
		}
		exempt = p.dffIdx[f.Gate]
	case siteDFFTrans:
		exempt = p.dffIdx[f.Gate]
	case siteComb, siteCombTrans:
		s.schedule(f.Gate)
	}

	// Event-driven level-order plane propagation.
	for l := int32(1); l <= p.maxLevel; l++ {
		bucket := s.queue[l]
		for i := 0; i < len(bucket); i++ {
			g := bucket[i]
			s.sched[g] = false
			s.evalGate(g, f, st, drv, off, mask, *prevDrv)
		}
		s.queue[l] = bucket[:0]
	}

	// Divergence cutoff: the first lane where a flip-flop input
	// diverges invalidates the speculation from the next lane on. Lane
	// L itself executed with a correct entering state and stays valid.
	last := wEnd
	var div uint64
	for _, g := range s.touched {
		fed := p.fed(g)
		if exempt >= 0 && len(fed) == 1 && fed[0] == exempt {
			continue
		}
		div |= (s.v1[g] ^ s.trV1[g]) | (s.v0[g] ^ s.trV0[g])
	}
	if div &= mask; div != 0 {
		if fl := uint(bits.TrailingZeros64(div)); fl < last {
			last = fl
		}
	}

	// Detection over the valid lanes, against the good trace: a hard
	// detect needs opposite binary planes; a potential detect is good
	// binary against faulty X. Only epoch-stamped POs can differ.
	valid := maskRange(off, last)
	var det, pot uint64
	for _, po := range p.c.POs {
		if s.stamp[po] != s.epoch {
			continue
		}
		f1, f0 := s.v1[po], s.v0[po]
		g1, g0 := s.trV1[po], s.trV0[po]
		det |= g1&f0 | g0&f1
		pot |= (g1 | g0) &^ (f1 | f0)
	}
	det &= valid
	pot &= valid
	s.clearTouch()
	if det != 0 {
		dl := uint(bits.TrailingZeros64(det))
		// The serial oracle records a potential detect on the detecting
		// cycle itself, then stops simulating the fault.
		if pot&maskRange(off, dl) != 0 {
			res.PotDetect(f.ID)
		}
		res.Detect(f.ID, b*wordW+int(dl))
		return true, 0
	}
	if pot != 0 {
		res.PotDetect(f.ID)
	}

	// Carry the true state difference out of lane `last` into the next
	// pass.
	nd := s.diffs[:0]
	for _, g := range s.touched {
		fv := planeVal(s.v1[g], s.v0[g], last)
		gv := planeVal(s.trV1[g], s.trV0[g], last)
		if fv == gv {
			continue
		}
		for _, ffi := range p.fed(g) {
			if ffi == exempt {
				continue
			}
			nd = append(nd, ffDiff{ff: ffi, val: fv})
		}
	}
	switch st {
	case siteDFFOut, siteDFFD:
		sv := f.Kind.StuckValue()
		dd := p.dffD[exempt]
		if gq := planeVal(s.trV1[dd], s.trV0[dd], last); sv != gq {
			nd = append(nd, ffDiff{ff: exempt, val: sv})
		}
	case siteDFFTrans:
		raw := s.laneVal(drv, last)
		fv := faults.TransitionFV(f.Kind, *prevDrv, raw)
		*prevDrv = raw
		if gq := planeVal(s.trV1[drv], s.trV0[drv], last); fv != gq {
			nd = append(nd, ffDiff{ff: exempt, val: fv})
		}
	case siteCombTrans:
		*prevDrv = s.laneVal(drv, last)
	}
	s.diffs = nd
	if len(nd) > s.peakDiffs {
		s.peakDiffs = len(nd)
	}
	s.stats.CurElems = len(nd)
	return false, b*wordW + int(last) + 1
}

// clearTouch resets the touch marks; the touched list itself survives
// until the carry step of the same pass reads it.
func (s *Sim) clearTouch() {
	for _, g := range s.touched {
		s.touchMark[g] = false
	}
}

// laneVal reads gate g's faulty value at a lane: its planes when
// written this pass, the good trace otherwise.
func (s *Sim) laneVal(g netlist.GateID, lane uint) logic.V {
	if s.stamp[g] == s.epoch {
		return planeVal(s.v1[g], s.v0[g], lane)
	}
	return planeVal(s.trV1[g], s.trV0[g], lane)
}

// evalGate re-evaluates one gate's bit-planes from its fanin planes,
// applying the fault's pin or output forcing when g is the site, and
// schedules the fanout on change.
func (s *Sim) evalGate(g netlist.GateID, f *faults.Fault, st siteKind, drv netlist.GateID, off uint, mask uint64, prevDrv logic.V) {
	p := s.p
	ins := p.fanin(g)
	code := p.code[g]
	isSite := g == f.Gate && (st == siteComb || st == siteCombTrans)

	pin := func(j int) (uint64, uint64) {
		i1, i0 := s.read(ins[j])
		if isSite && f.Pin == j {
			if st == siteComb {
				i1, i0 = forcePlanes(i1, i0, f.Kind.StuckValue(), mask)
			} else {
				// Transition: the effective pin value is TransitionFV
				// (ternary AND for STR, OR for STF) of the driver's
				// previous-cycle and current values. The driver is
				// strictly upstream in level order, so its planes are
				// final; shifting them by one lane yields previous-cycle
				// values, with the carried scalar spliced into the entry
				// lane.
				d1, d0 := s.lanePlanes(drv)
				bit := uint64(1) << off
				p1 := d1<<1&^bit | oneBit[prevDrv]<<off
				p0 := d0<<1&^bit | zeroBit[prevDrv]<<off
				var e1, e0 uint64
				if f.Kind == faults.STR {
					e1, e0 = p1&i1, p0|i0
				} else {
					e1, e0 = p1|i1, p0&i0
				}
				i1 = i1&^mask | e1&mask
				i0 = i0&^mask | e0&mask
			}
		}
		return i1, i0
	}

	var a1, a0 uint64
	switch code &^ 1 {
	case opBuf:
		a1, a0 = pin(0)
	case opAnd:
		a1, a0 = ^uint64(0), 0
		for j := range ins {
			i1, i0 := pin(j)
			a1 &= i1
			a0 |= i0
		}
	case opOr:
		a1, a0 = 0, ^uint64(0)
		for j := range ins {
			i1, i0 := pin(j)
			a1 |= i1
			a0 &= i0
		}
	case opXor:
		a1, a0 = 0, ^uint64(0)
		for j := range ins {
			i1, i0 := pin(j)
			a1, a0 = a1&i0|a0&i1, a1&i1|a0&i0
		}
	}
	if code&1 != 0 {
		a1, a0 = a0, a1
	}
	if isSite && st == siteComb && f.Pin == faults.OutPin {
		a1, a0 = forcePlanes(a1, a0, f.Kind.StuckValue(), mask)
	}

	s.stats.Evals++
	o1, o0 := s.read(g)
	if a1 == o1 && a0 == o0 {
		return
	}
	s.v1[g], s.v0[g] = a1, a0
	s.schedFanouts(g)
	s.touch(g)
}

// lanePlanes reads gate g's faulty planes without initializing them:
// the trace planes when untouched this pass.
func (s *Sim) lanePlanes(g netlist.GateID) (uint64, uint64) {
	if s.stamp[g] == s.epoch {
		return s.v1[g], s.v0[g]
	}
	return s.trV1[g], s.trV0[g]
}
