package compiled

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// wordW is the pass width: one uint64 bit-plane lane per cycle.
const wordW = 64

// oneBit and zeroBit map a normalized ternary value to its bit-plane
// contribution: lane bit set in v1 for One, in v0 for Zero, in neither
// for X. Indexing with a normalized V is branch-free.
var (
	oneBit  = [3]uint64{0, 1, 0}
	zeroBit = [3]uint64{1, 0, 0}
)

// planeVal decodes one lane of a (v1, v0) bit-plane pair.
func planeVal(v1, v0 uint64, lane uint) logic.V {
	if v1>>lane&1 != 0 {
		return logic.One
	}
	if v0>>lane&1 != 0 {
		return logic.Zero
	}
	return logic.X
}

// maskRange returns the lane mask with bits [lo, hi] set (inclusive);
// lo <= hi <= 63.
func maskRange(lo, hi uint) uint64 {
	return (^uint64(0) << lo) & (^uint64(0) >> (63 - hi))
}

// Trace is the packed good-machine waveform: for every gate (sources
// included) and every cycle, the settled ternary value before the
// clock edge, stored as two uint64 bit-planes per gate per 64-cycle
// block. It is the fault simulator's shared baseline — the compiled
// analogue of goodsim.Trace — and is immutable once Trace returns.
//
//simlint:immutable
type Trace struct {
	ng     int
	cycles int
	blocks int
	v1, v0 []uint64 // blocks × ng, block-major: index b*ng + gate
}

// Cycles returns the number of recorded clock cycles.
func (tr *Trace) Cycles() int { return tr.cycles }

// Bytes returns the trace's packed storage size.
func (tr *Trace) Bytes() int64 { return int64(len(tr.v1)+len(tr.v0)) * 8 }

// block returns the bit-plane slices of 64-cycle block b, indexed by
// gate.
func (tr *Trace) block(b int) (v1, v0 []uint64) {
	lo, hi := b*tr.ng, (b+1)*tr.ng
	return tr.v1[lo:hi], tr.v0[lo:hi]
}

// At returns gate g's settled good value on the given cycle.
func (tr *Trace) At(cycle int, g netlist.GateID) logic.V {
	i := (cycle/wordW)*tr.ng + int(g)
	return planeVal(tr.v1[i], tr.v0[i], uint(cycle%wordW))
}

// Trace runs the compiled good machine over the whole vector sequence
// from the all-X state and returns the packed waveform plus the number
// of gate evaluations performed. The machine itself is cycle-serial —
// the next-state recurrence of a sequential circuit forbids evaluating
// 64 cycles at once — but each cycle's settled values are deposited as
// one bit-column, so the fault passes downstream consume the result 64
// cycles at a time.
func (p *Program) Trace(vs *vectors.Set) (*Trace, int64) {
	nc := vs.Len()
	ng := len(p.c.Gates)
	blocks := (nc + wordW - 1) / wordW
	tr := &Trace{
		ng:     ng,
		cycles: nc,
		blocks: blocks,
		v1:     make([]uint64, blocks*ng),
		v0:     make([]uint64, blocks*ng),
	}
	val := make([]logic.V, ng)
	for i := range val {
		val[i] = logic.X
	}
	next := make([]logic.V, len(p.c.DFFs))
	evals := int64(0)
	for t := 0; t < nc; t++ {
		for i, pi := range p.c.PIs {
			val[pi] = vs.Vecs[t][i].Norm()
		}
		p.evalScalar(val)
		evals += int64(len(p.order))
		base := (t / wordW) * ng
		lane := uint(t % wordW)
		for g := 0; g < ng; g++ {
			v := val[g]
			tr.v1[base+g] |= oneBit[v] << lane
			tr.v0[base+g] |= zeroBit[v] << lane
		}
		// Sample all D inputs before latching so FF-to-FF chains clock
		// simultaneously, exactly like goodsim.Clock.
		for i := range p.c.DFFs {
			next[i] = val[p.dffD[i]]
		}
		for i, ff := range p.c.DFFs {
			val[ff] = next[i]
		}
	}
	return tr, evals
}
