package csim

import (
	"fmt"
	"math"
)

// CheckInvariants audits the simulator's fault-list machinery between
// cycles: the shared sentinel, sorted sentinel-terminated per-gate
// lists, the split-mode visible/invisible partition against current
// good values, arena accounting against the free list, and the local
// fault siting tables. It is a debug hook for differential tests and
// `cmd/csim -check`; it allocates and is never called on the hot path.
func (s *Simulator) CheckInvariants() error {
	// Sentinel: arena slot 0 terminates every list and carries a fault ID
	// beyond all real faults so merges stop naturally.
	if len(s.arena) == 0 {
		return fmt.Errorf("csim: arena missing its sentinel slot")
	}
	if s.arena[0].fault != s.sentinel || s.arena[0].next != 0 {
		return fmt.Errorf("csim: sentinel corrupt: fault %d next %d, want fault %d next 0",
			s.arena[0].fault, s.arena[0].next, s.sentinel)
	}

	inList := make([]bool, len(s.arena))
	listed := 0
	walk := func(head int32, what string, vis bool, gate int) error {
		steps := 0
		prevFault := int32(-1)
		for idx := head; idx != 0; idx = s.arena[idx].next {
			if idx < 0 || int(idx) >= len(s.arena) {
				return fmt.Errorf("csim: %s list of gate %s links to arena index %d of %d",
					what, s.c.Gates[gate].Name, idx, len(s.arena))
			}
			if steps++; steps > len(s.arena) {
				return fmt.Errorf("csim: %s list of gate %s is cyclic",
					what, s.c.Gates[gate].Name)
			}
			e := &s.arena[idx]
			if inList[idx] {
				return fmt.Errorf("csim: arena element %d appears in two lists", idx)
			}
			inList[idx] = true
			listed++
			if e.fault < 0 || e.fault >= s.sentinel {
				return fmt.Errorf("csim: %s list of gate %s holds fault ID %d outside [0,%d)",
					what, s.c.Gates[gate].Name, e.fault, s.sentinel)
			}
			if e.fault <= prevFault {
				return fmt.Errorf("csim: %s list of gate %s not strictly ascending: %d after %d",
					what, s.c.Gates[gate].Name, e.fault, prevFault)
			}
			prevFault = e.fault
			// Partition discipline. Elements of dropped faults may linger
			// until a traversal reclaims them; they are exempt.
			if !s.dropped[e.fault] {
				good := s.goodVal[gate]
				if s.cfg.SplitLists && !vis && e.word.Out() != good {
					return fmt.Errorf("csim: invisible element (gate %s, fault %d) drives %v, good is %v",
						s.c.Gates[gate].Name, e.fault, e.word.Out(), good)
				}
				if s.cfg.SplitLists && vis && e.word.Out() == good {
					return fmt.Errorf("csim: visible element (gate %s, fault %d) matches the good value %v",
						s.c.Gates[gate].Name, e.fault, good)
				}
			}
		}
		return nil
	}
	for i := range s.c.Gates {
		if err := walk(s.vis[i], "visible", true, i); err != nil {
			return err
		}
		if err := walk(s.inv[i], "invisible", false, i); err != nil {
			return err
		}
		if !s.cfg.SplitLists && s.inv[i] != 0 {
			return fmt.Errorf("csim: gate %s has an invisible list without SplitLists",
				s.c.Gates[i].Name)
		}
	}

	// Free list: disjoint from live lists, poisoned fault IDs, and the
	// arena fully accounted for (1 sentinel + listed + free).
	free := 0
	steps := 0
	for idx := s.freeHead; idx >= 0; idx = s.arena[idx].next {
		if int(idx) >= len(s.arena) {
			return fmt.Errorf("csim: free list links to arena index %d of %d", idx, len(s.arena))
		}
		if steps++; steps > len(s.arena) {
			return fmt.Errorf("csim: free list is cyclic")
		}
		if idx == 0 {
			return fmt.Errorf("csim: sentinel slot on the free list")
		}
		if inList[idx] {
			return fmt.Errorf("csim: arena element %d on both a fault list and the free list", idx)
		}
		if s.arena[idx].fault != math.MaxInt32 {
			return fmt.Errorf("csim: free element %d not poisoned (fault %d)", idx, s.arena[idx].fault)
		}
		free++
	}
	if listed != s.stats.CurElems {
		return fmt.Errorf("csim: CurElems is %d but lists hold %d element(s)", s.stats.CurElems, listed)
	}
	if 1+listed+free != len(s.arena) {
		return fmt.Errorf("csim: arena leak: %d slot(s) = 1 sentinel + %d listed + %d free, want %d",
			len(s.arena), listed, free, 1+listed+free)
	}

	// Local fault tables: sorted, unique, in range.
	for g, loc := range s.locals {
		for i, f := range loc {
			if f < 0 || f >= s.sentinel {
				return fmt.Errorf("csim: gate %s local fault %d outside [0,%d)",
					s.c.Gates[g].Name, f, s.sentinel)
			}
			if i > 0 && loc[i-1] >= f {
				return fmt.Errorf("csim: gate %s local faults not strictly ascending",
					s.c.Gates[g].Name)
			}
		}
	}
	return nil
}
