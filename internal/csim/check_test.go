package csim

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

func checkSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	c, err := netlist.NewBuilder("chk").
		Input("i1").Input("i2").
		Gate("a", logic.OpAnd, "i1", "i2").
		Gate("n", logic.OpNot, "a").
		DFF("q", "n").
		Gate("o", logic.OpOr, "q", "i1").
		Output("o").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(faults.StuckAll(c), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(vectors.Random(c, 20, 7))
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("healthy simulator rejected: %v", err)
	}
	return s
}

// TestCheckInvariantsDetectsCorruption seeds one corruption per case and
// verifies the audit names it.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(s *Simulator)
		want    string
	}{
		{"sentinel", func(s *Simulator) { s.arena[0].next = 1 }, "sentinel corrupt"},
		{"accounting", func(s *Simulator) { s.stats.CurElems++ }, "CurElems"},
		{"local-order", func(s *Simulator) {
			for g := range s.locals {
				if len(s.locals[g]) >= 2 {
					l := s.locals[g]
					l[0], l[1] = l[1], l[0]
					return
				}
			}
			t.Fatal("no gate with 2+ local faults")
		}, "not strictly ascending"},
		{"free-poison", func(s *Simulator) {
			if s.freeHead < 0 {
				t.Skip("free list empty for this workload")
			}
			s.arena[s.freeHead].fault = 3
		}, "not poisoned"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := checkSim(t, MV())
			tc.corrupt(s)
			err := s.CheckInvariants()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("corruption %q: got %v, want mention of %q", tc.name, err, tc.want)
			}
		})
	}
}

// TestCheckInvariantsSplitPartition corrupts the visible/invisible
// partition directly: moving a visible element into the invisible list
// (or vice versa) must be caught in split mode.
func TestCheckInvariantsSplitPartition(t *testing.T) {
	s := checkSim(t, MV())
	moved := false
	for g := range s.vis {
		if head := s.vis[g]; head != 0 && !s.dropped[s.arena[head].fault] {
			s.inv[g], s.vis[g] = head, s.arena[head].next
			s.arena[head].next = 0
			moved = true
			break
		}
	}
	if !moved {
		t.Skip("no live visible element after this workload")
	}
	err := s.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "invisible element") {
		t.Fatalf("got %v, want invisible-element violation", err)
	}
}

// TestCheckInvariantsAllConfigs runs the audit after a short campaign in
// every engine configuration.
func TestCheckInvariantsAllConfigs(t *testing.T) {
	for _, cfg := range []Config{{}, V(), M(), MV()} {
		checkSim(t, cfg)
	}
}
