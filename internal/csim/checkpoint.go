package csim

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Checkpoint is a complete, canonical snapshot of a simulator at a clock
// boundary: restoring it into a fresh simulator over the same universe
// and configuration continues the run bit-identically — same detections,
// same fault-list contents, same Stats counters — as if the original had
// never stopped. Arena layout (element indices, free-list order) is
// deliberately absent: lists are stored as value sequences, so two
// simulators in equivalent states produce equal Checkpoints regardless of
// allocation history, and reflect.DeepEqual is a valid state comparison.
//
// The good trace (SetGoodTrace) and observability sinks are not part of
// the checkpoint; attach the trace before Restore.
type Checkpoint struct {
	VecIndex   int
	FirstCycle bool
	GoodVal    []logic.V
	GoodWord   []logic.Word
	// Vis and Inv hold each gate's fault lists in list order (sorted by
	// fault ID), including not-yet-reclaimed elements of dropped faults —
	// lazy reclamation is part of the simulator's observable cost model.
	Vis, Inv   [][]ElemState
	Dropped    []bool
	PrevDriver []logic.V
	// Retrig and Sched preserve the pending re-trigger list and the event
	// queue (level-major, in-bucket order) verbatim: in-bucket order
	// cannot change results, but it does steer the transient element
	// high-water mark, which Stats counts.
	Retrig []netlist.GateID
	Sched  []netlist.GateID
	// PinEvent is each root's pending leaf-event mask.
	PinEvent []uint32
	Counters Ats
	Result   *faults.Result
}

// ElemState is one fault element of a checkpointed list.
type ElemState struct {
	Fault int32
	Word  logic.Word
}

// Checkpoint snapshots the simulator between Cycle calls.
func (s *Simulator) Checkpoint() *Checkpoint {
	n := len(s.c.Gates)
	cp := &Checkpoint{
		VecIndex:   s.vecIndex,
		FirstCycle: s.firstCycle,
		GoodVal:    append([]logic.V(nil), s.goodVal...),
		GoodWord:   append([]logic.Word(nil), s.goodWord...),
		Vis:        make([][]ElemState, n),
		Inv:        make([][]ElemState, n),
		Dropped:    append([]bool(nil), s.dropped...),
		PinEvent:   append([]uint32(nil), s.pinEvent...),
		Counters:   s.stats,
		Result:     cloneResult(s.res),
	}
	if s.prevDriver != nil {
		cp.PrevDriver = append([]logic.V(nil), s.prevDriver...)
	}
	if len(s.retrig) > 0 {
		cp.Retrig = append([]netlist.GateID(nil), s.retrig...)
	}
	for l := range s.queue {
		for _, r := range s.queue[l] {
			cp.Sched = append(cp.Sched, r)
		}
	}
	walk := func(head int32) []ElemState {
		var out []ElemState
		for idx := head; s.arena[idx].fault < s.sentinel; idx = s.arena[idx].next {
			out = append(out, ElemState{Fault: s.arena[idx].fault, Word: s.arena[idx].word})
		}
		return out
	}
	for g := 0; g < n; g++ {
		cp.Vis[g] = walk(s.vis[g])
		cp.Inv[g] = walk(s.inv[g])
	}
	return cp
}

// Restore loads a checkpoint into a freshly constructed simulator built
// over the same universe and configuration (and, for partition
// simulators, the same fault subset). A good trace, if the original run
// used one, must be attached with SetGoodTrace before restoring.
func (s *Simulator) Restore(cp *Checkpoint) error {
	if !s.firstCycle || s.vecIndex != 0 || s.stats.CurElems != 0 {
		return fmt.Errorf("csim: Restore requires a fresh simulator")
	}
	n := len(s.c.Gates)
	if len(cp.GoodVal) != n || len(cp.GoodWord) != n || len(cp.Vis) != n ||
		len(cp.Inv) != n || len(cp.PinEvent) != n {
		return fmt.Errorf("csim: checkpoint is for a %d-gate circuit, simulator has %d", len(cp.GoodVal), n)
	}
	if len(cp.Dropped) != len(s.dropped) {
		return fmt.Errorf("csim: checkpoint covers %d faults, universe has %d", len(cp.Dropped)-1, len(s.dropped)-1)
	}
	if (cp.PrevDriver != nil) != (s.prevDriver != nil) {
		return fmt.Errorf("csim: checkpoint and simulator disagree on transition-fault state")
	}
	s.vecIndex = cp.VecIndex
	s.firstCycle = cp.FirstCycle
	copy(s.goodVal, cp.GoodVal)
	copy(s.goodWord, cp.GoodWord)
	copy(s.dropped, cp.Dropped)
	copy(s.pinEvent, cp.PinEvent)
	if cp.PrevDriver != nil {
		copy(s.prevDriver, cp.PrevDriver)
	}
	for g := 0; g < n; g++ {
		s.vis[g] = s.rebuildList(cp.Vis[g])
		s.inv[g] = s.rebuildList(cp.Inv[g])
	}
	s.retrig = s.retrig[:0]
	for _, r := range cp.Retrig {
		s.retrigger(r)
	}
	for _, r := range cp.Sched {
		if int(r) < 0 || int(r) >= n || s.plan.ByRoot[r] == nil {
			return fmt.Errorf("csim: checkpoint schedules gate %d, which is not a macro root", r)
		}
		s.scheduleRoot(r)
	}
	s.res = cloneResult(cp.Result)
	// The rebuild above went through alloc/scheduleRoot, which count;
	// the checkpointed counters are authoritative.
	s.stats = cp.Counters
	return nil
}

// rebuildList materializes a checkpointed list in the arena.
func (s *Simulator) rebuildList(es []ElemState) int32 {
	nb := newListBuilder()
	for _, e := range es {
		nb.append(s, s.alloc(e.Fault, e.Word, 0))
	}
	return nb.finish(s)
}

// cloneResult deep-copies a detection result.
func cloneResult(r *faults.Result) *faults.Result {
	return &faults.Result{
		Universe:    r.Universe,
		Detected:    append([]bool(nil), r.Detected...),
		DetectedAt:  append([]int32(nil), r.DetectedAt...),
		NumDet:      r.NumDet,
		PotDetected: append([]bool(nil), r.PotDetected...),
	}
}
