package csim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/goodsim"
	"repro/internal/vectors"
)

func checkpointCircuit(t *testing.T, seed int64) (*faults.Universe, *faults.Universe, *vectors.Set) {
	t.Helper()
	c, err := gen.Generate(gen.Spec{
		Name: fmt.Sprintf("cp%d", seed),
		PIs:  5, POs: 4, DFFs: 7, Gates: 80, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return faults.StuckCollapsed(c), faults.Transition(c), vectors.Random(c, 60, seed)
}

// TestCheckpointRoundTripBitIdentical is the checkpoint property test:
// snapshot → restore into a fresh simulator → resimulate the rest of the
// window must be bit-identical to the uninterrupted run — same good and
// faulty state, same fault-list contents, same Stats counters, same
// detections. Checked across stuck-at and transition models, several
// configurations, and several split points.
func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		stuck, trans, vs := checkpointCircuit(t, 6100+seed)
		for _, model := range []struct {
			name string
			u    *faults.Universe
		}{{"stuck", stuck}, {"transition", trans}} {
			for _, cfg := range []Config{{}, MV()} {
				for _, split := range []int{1, vs.Len() / 3, vs.Len() / 2, vs.Len() - 1} {
					tag := fmt.Sprintf("seed %d %s macros=%v split=%d",
						seed, model.name, cfg.Macros, split)

					simA, err := New(model.u, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < split; i++ {
						simA.Cycle(vs.Vecs[i])
					}
					cp := simA.Checkpoint()
					for i := split; i < vs.Len(); i++ {
						simA.Cycle(vs.Vecs[i])
					}
					finalA := simA.Checkpoint()

					simB, err := New(model.u, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := simB.Restore(cp); err != nil {
						t.Fatalf("%s: restore: %v", tag, err)
					}
					if err := simB.CheckInvariants(); err != nil {
						t.Fatalf("%s: invariants after restore: %v", tag, err)
					}
					for i := split; i < vs.Len(); i++ {
						simB.Cycle(vs.Vecs[i])
					}
					finalB := simB.Checkpoint()

					if !reflect.DeepEqual(finalA, finalB) {
						t.Fatalf("%s: resumed run diverged from uninterrupted run\nA: %+v\nB: %+v",
							tag, finalA.Counters, finalB.Counters)
					}
					if simA.Stats() != simB.Stats() {
						t.Fatalf("%s: stats differ: %+v vs %+v", tag, simA.Stats(), simB.Stats())
					}
					if d := simA.Result().Diff(simB.Result()); d != "" {
						t.Fatalf("%s: detections differ:\n%s", tag, d)
					}
					if err := simB.CheckInvariants(); err != nil {
						t.Fatalf("%s: invariants after resume: %v", tag, err)
					}
				}
			}
		}
	}
}

// TestCheckpointRoundTripWithTrace repeats the round trip in trace-replay
// mode (the configuration csim-P and csim-V2 run in): the trace must be
// attached before Restore, and the resumed run must stay bit-identical.
func TestCheckpointRoundTripWithTrace(t *testing.T) {
	_, trans, vs := checkpointCircuit(t, 6200)
	trace := goodsim.Record(trans.Circuit, vs.Vecs)
	split := vs.Len() / 2

	simA, err := New(trans, MV())
	if err != nil {
		t.Fatal(err)
	}
	if err := simA.SetGoodTrace(trace); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < split; i++ {
		simA.Cycle(vs.Vecs[i])
	}
	cp := simA.Checkpoint()
	for i := split; i < vs.Len(); i++ {
		simA.Cycle(vs.Vecs[i])
	}
	finalA := simA.Checkpoint()

	simB, err := New(trans, MV())
	if err != nil {
		t.Fatal(err)
	}
	if err := simB.SetGoodTrace(trace); err != nil {
		t.Fatal(err)
	}
	if err := simB.Restore(cp); err != nil {
		t.Fatal(err)
	}
	for i := split; i < vs.Len(); i++ {
		simB.Cycle(vs.Vecs[i])
	}
	if !reflect.DeepEqual(finalA, simB.Checkpoint()) {
		t.Fatal("trace-replay resumed run diverged from uninterrupted run")
	}
}

// TestCheckpointCanonical: two equivalent simulators with different
// allocation histories must produce equal Checkpoints — arena layout must
// not leak into the snapshot. A restored simulator's arena is rebuilt in
// list order, so checkpointing it again right away is the sharpest test.
func TestCheckpointCanonical(t *testing.T) {
	stuck, _, vs := checkpointCircuit(t, 6300)
	sim, err := New(stuck, MV())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sim.Cycle(vs.Vecs[i])
	}
	cp := sim.Checkpoint()
	re, err := New(stuck, MV())
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, re.Checkpoint()) {
		t.Fatal("checkpoint of a restored simulator differs from the checkpoint it was restored from")
	}
}

// TestRestoreValidation: restoring into the wrong simulator must fail
// loudly, not corrupt state.
func TestRestoreValidation(t *testing.T) {
	stuck, trans, vs := checkpointCircuit(t, 6400)
	sim, err := New(stuck, MV())
	if err != nil {
		t.Fatal(err)
	}
	sim.Cycle(vs.Vecs[0])
	cp := sim.Checkpoint()

	if err := sim.Restore(cp); err == nil {
		t.Error("Restore into a used simulator must fail")
	}
	other, err := New(trans, MV())
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(cp); err == nil {
		t.Error("Restore across fault universes must fail")
	}
}
