// Package csim is the paper's primary contribution: a concurrent fault
// simulator for synchronous sequential circuits with the simplicity of
// deductive fault simulation (§2). One good machine and many faulty
// machines are simulated together; a faulty machine is represented
// explicitly only at gates where its state differs from the good machine,
// by a fault element holding a fault identifier, a packed state word, and
// a link to the next element (Figure 2).
//
// The simulator implements all of the paper's improvements:
//
//   - zero-delay levelized scheduling: only gate identifiers are queued,
//     and each gate is evaluated at most once per settle phase;
//   - event-driven fault dropping: elements of detected faults are
//     reclaimed while lists containing them are traversed, with a terminal
//     sentinel element whose imaginary descriptor is never dropped;
//   - visible/invisible list splitting (Config.SplitLists, the V of
//     csim-V): fanout propagation walks only the visible list;
//   - macro extraction (Config.Macros, the M of csim-M): fanout-free
//     regions evaluate as single lookup-table gates and internal stuck-at
//     faults become functional faults;
//   - transition-fault simulation (§3) using the per-gate previous values
//     the concurrent method keeps anyway.
package csim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/logic"
	"repro/internal/macro"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// Config selects the simulator variant. The paper's named configurations:
// csim-V = {SplitLists}, csim-M = {Macros}, csim-MV = {SplitLists, Macros}.
type Config struct {
	// SplitLists keeps visible and invisible faults in separate lists per
	// gate so that fanout propagation never touches invisible elements.
	SplitLists bool
	// Macros collapses fanout-free regions into table-lookup macro gates.
	Macros bool
	// MacroMaxInputs caps macro leaf counts (default
	// macro.DefaultMaxInputs).
	MacroMaxInputs int
	// ReconvergentMacros enables the paper's §2.2 extension: macros are
	// not limited to fanout-free regions, so reconvergent logic collapses
	// too and more stuck-at faults become functional faults. Implies
	// Macros.
	ReconvergentMacros bool
	// EagerDrop disables the paper's event-driven dropping: on every
	// detection the whole circuit is scanned for the dropped fault's
	// elements. Exists as an ablation baseline.
	EagerDrop bool
	// Plan, when non-nil, supplies a precompiled macro plan and skips
	// extraction entirely — the compiled-circuit cache in
	// internal/service hands the same immutable plan to every job on the
	// same netlist. The plan must cover the universe's circuit and must
	// have been extracted with settings matching Macros /
	// ReconvergentMacros / MacroMaxInputs; the circuit identity is
	// checked, the settings are the caller's contract. macro.Plan and
	// its Macros are //simlint:immutable — the immutableplan analyzer
	// proves no store to them is reachable after extraction returns, so
	// sharing one Plan across jobs is race-free by construction.
	Plan *macro.Plan
	// Trace, when non-nil, receives divergence/convergence/detection
	// events (used by the Figure 1 walkthrough example).
	Trace func(ev TraceEvent)
	// Obs attaches the observability layer: the metric registry the
	// simulator registers into, the phase tracer, and the fault-lifecycle
	// event log (see internal/obs and OBSERVABILITY.md). Nil — the
	// default — disables observability entirely; the hot paths then take
	// the nil fast path at zero added allocations.
	Obs *obs.Observer
	// ObsPrefix namespaces this simulator's metrics inside the registry;
	// empty means DefaultObsPrefix ("csim."). The csim-P engine gives
	// each partition worker its own prefix so per-worker gauges stay
	// distinguishable.
	ObsPrefix string
}

// MV returns the paper's best configuration, csim-MV.
func MV() Config { return Config{SplitLists: true, Macros: true} }

// V returns csim-V (split lists, no macros).
func V() Config { return Config{SplitLists: true} }

// M returns csim-M (macros, single list per gate).
func M() Config { return Config{Macros: true} }

// TraceEvent reports one concurrent-simulation event for tracing.
type TraceEvent struct {
	Kind  TraceKind
	Gate  netlist.GateID
	Fault int32
	Vec   int
}

// TraceKind enumerates traceable events.
type TraceKind uint8

// Trace event kinds.
const (
	TraceDiverge TraceKind = iota
	TraceConverge
	TraceDetect
)

// elem is a fault element (Figure 2): fault identifier, packed faulty gate
// state, and next link. Elements live in an arena indexed by int32; index
// 0 is the terminal sentinel shared by every list.
type elem struct {
	fault int32
	next  int32
	word  logic.Word
}

// elemSize is the accounted per-element memory footprint in bytes.
const elemSize = 16

// Simulator is a concurrent fault simulator over one fault universe.
type Simulator struct {
	c    *netlist.Circuit
	u    *faults.Universe
	cfg  Config
	plan *macro.Plan
	res  *faults.Result

	sentinel int32 // fault ID of the terminal element (= len(u.Faults))
	dropped  []bool

	// ids is the sorted fault subset a partition simulator is restricted
	// to; nil means the whole universe. The window/checkpoint APIs use it
	// to enumerate exactly the simulated faults.
	ids []int32

	// goodTrace, when non-nil, supplies prerecorded good-machine values:
	// evalRoot looks the settled root value up instead of evaluating the
	// macro's good function (the replay hook behind csim-P).
	goodTrace *goodsim.Trace

	goodVal  []logic.V    // per gate; meaningful for sources and roots
	goodWord []logic.Word // per root: packed good leaf values + output

	arena    []elem
	freeHead int32
	stats    Ats

	vis []int32 // per gate: visible-list head (arena index, 0 = empty)
	inv []int32 // per gate: invisible-list head (split mode only)

	locals [][]int32 // per gate: sorted IDs of faults sited at that gate

	// fstTab memoizes, per local stuck fault on a table-sized macro, the
	// macro's per-fault functional lookup table (macro.StuckTable). The
	// cache is per simulator — a Plan is immutable and may be shared by
	// concurrent simulators, so the mutable memo cannot live on the macro.
	fstTab [][]logic.V

	// consumers[g] lists the (root, leafPin) pairs fed by gate g.
	consumers [][]consumer

	prevDriver []logic.V // per transition fault: driver value last cycle
	retrig     []netlist.GateID
	retrigOn   []bool

	sched    []bool
	pinEvent []uint32
	queue    [][]netlist.GateID

	// scratch
	gin, fin, frame []logic.V
	newQ            []logic.V // DFF commit scratch (good values)
	newQLists       [][]pendingElem
	dffEvent        []bool
	vecIndex        int
	firstCycle      bool

	// Observability (all nil when Config.Obs is nil — the zero-cost
	// disabled state).
	flog *obs.FaultLog
	sink *obsSink
}

// Ats is the internal mutable counter block (kept separate so Stats can be
// returned by value).
type Ats struct {
	Evals, GoodEvals, PeakElems, CurElems, Detections, Skips, Scheds int
}

type consumer struct {
	root netlist.GateID
	pin  int32
}

type pendingElem struct {
	fault int32
	word  logic.Word
}

// New builds a simulator for the universe's circuit. The universe may be
// stuck-at, transition, or mixed.
func New(u *faults.Universe, cfg Config) (*Simulator, error) {
	return newSim(u, cfg, nil)
}

// NewPartition builds a simulator restricted to the subset of u's faults
// whose IDs are listed in ids. Only subset faults are injected, tracked
// and detected; results are still reported against the full universe
// (global fault IDs), so per-partition results from disjoint subsets can
// be combined with faults.MergeResults. Concurrent fault simulation
// evolves each faulty machine independently of every other, so a
// partitioned run detects exactly the faults the full run would.
func NewPartition(u *faults.Universe, cfg Config, ids []int32) (*Simulator, error) {
	sub := make([]int32, len(ids))
	copy(sub, ids)
	sort.Slice(sub, func(i, j int) bool { return sub[i] < sub[j] })
	for i, id := range sub {
		if id < 0 || int(id) >= len(u.Faults) {
			return nil, fmt.Errorf("csim: partition fault ID %d outside universe of %d", id, len(u.Faults))
		}
		if i > 0 && sub[i-1] == id {
			return nil, fmt.Errorf("csim: duplicate fault ID %d in partition", id)
		}
	}
	return newSim(u, cfg, sub)
}

// newSim builds the simulator; ids, when non-nil, restricts the simulated
// faults to that sorted subset of the universe.
func newSim(u *faults.Universe, cfg Config, ids []int32) (*Simulator, error) {
	c := u.Circuit
	if cfg.MacroMaxInputs == 0 {
		cfg.MacroMaxInputs = macro.DefaultMaxInputs
	}
	if cfg.ObsPrefix == "" {
		cfg.ObsPrefix = DefaultObsPrefix
	}
	var plan *macro.Plan
	var err error
	if cfg.Plan != nil {
		if cfg.Plan.C != c {
			return nil, fmt.Errorf("csim: precompiled plan is for circuit %q, universe is over %q",
				cfg.Plan.C.Name, c.Name)
		}
		plan = cfg.Plan
	} else {
		sp := cfg.Obs.Span("macro-extract")
		switch {
		case cfg.ReconvergentMacros:
			plan, err = macro.ExtractReconvergent(c, cfg.MacroMaxInputs)
		case cfg.Macros:
			plan, err = macro.Extract(c, cfg.MacroMaxInputs)
		default:
			plan = macro.Trivial(c)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	n := len(c.Gates)
	s := &Simulator{
		c: c, u: u, cfg: cfg, plan: plan,
		res:       faults.NewResult(u),
		sentinel:  int32(len(u.Faults)),
		dropped:   make([]bool, len(u.Faults)+1),
		goodVal:   make([]logic.V, n),
		goodWord:  make([]logic.Word, n),
		vis:       make([]int32, n),
		inv:       make([]int32, n),
		locals:    make([][]int32, n),
		fstTab:    make([][]logic.V, len(u.Faults)),
		consumers: make([][]consumer, n),
		retrigOn:  make([]bool, n),
		sched:     make([]bool, n),
		pinEvent:  make([]uint32, n),
		queue:     make([][]netlist.GateID, plan.MaxLevel+1),
	}
	s.ids = ids
	// Arena slot 0 is the sentinel: a terminal element whose fault ID is
	// larger than every real fault and whose descriptor is never dropped.
	s.arena = []elem{{fault: s.sentinel, next: 0}}
	s.freeHead = -1

	maxLeaves := 0
	for _, m := range plan.ByRoot {
		if m != nil && m.NumLeaves() > maxLeaves {
			maxLeaves = m.NumLeaves()
		}
	}
	s.gin = make([]logic.V, maxLeaves)
	s.fin = make([]logic.V, maxLeaves)
	s.frame = make([]logic.V, plan.MaxFrame)
	s.newQ = make([]logic.V, len(c.DFFs))
	s.newQLists = make([][]pendingElem, len(c.DFFs))
	s.dffEvent = make([]bool, len(c.DFFs))

	s.flog = cfg.Obs.FaultLog()
	if reg := cfg.Obs.Registry(); reg != nil {
		s.sink = newObsSink(reg, cfg.ObsPrefix, s.numSimFaults(ids))
		ms := plan.Summary()
		reg.Gauge(cfg.ObsPrefix + "macro_absorbed_gates").Set(int64(ms.AbsorbedGates))
		reg.Gauge(cfg.ObsPrefix + "macro_max_frame").Set(int64(ms.MaxFrame))
		reg.Gauge(cfg.ObsPrefix + "macro_levels").Set(int64(ms.MaxLevel))
	}

	// Fault-site ownership: faults on absorbed gates belong to their
	// macro's root. A partition-restricted simulator sites only its own
	// subset; ids is sorted, so per-gate locals stay sorted.
	anyTransition := false
	site := func(id int32) {
		f := &u.Faults[id]
		owner := f.Gate
		if !c.Gate(f.Gate).IsSource() {
			owner = plan.Owner[f.Gate]
		}
		s.locals[owner] = append(s.locals[owner], f.ID)
		if !f.Kind.Stuck() {
			anyTransition = true
		}
		if s.flog != nil {
			s.flog.Emit(obs.FaultEvent{Vec: -1, Fault: f.ID, Gate: int32(owner), Kind: obs.FaultInjected})
		}
	}
	if ids == nil {
		for i := range u.Faults {
			site(int32(i))
		}
	} else {
		for _, id := range ids {
			site(id)
		}
	}
	if anyTransition {
		s.prevDriver = make([]logic.V, len(u.Faults))
		for i := range s.prevDriver {
			s.prevDriver[i] = logic.X
		}
	}

	// Consumer adjacency over the macro graph.
	for id, m := range plan.ByRoot {
		if m == nil {
			continue
		}
		for p, l := range m.Leaves {
			s.consumers[l] = append(s.consumers[l],
				consumer{root: netlist.GateID(id), pin: int32(p)})
		}
	}

	s.resetState()
	return s, nil
}

func (s *Simulator) resetState() {
	for i := range s.goodVal {
		s.goodVal[i] = logic.X
	}
	for id, m := range s.plan.ByRoot {
		if m == nil {
			continue
		}
		// An impossible all-ones word guarantees the first evaluation sees
		// a good-input change, so every local fault's activation under the
		// initial all-X state is established.
		s.goodWord[id] = ^logic.Word(0)
	}
	s.firstCycle = true
	s.vecIndex = 0
}

// Result returns the accumulated detections.
func (s *Simulator) Result() *faults.Result { return s.res }

// Stats returns instrumentation counters.
func (s *Simulator) Stats() Stats {
	return Stats{
		Skips:      s.stats.Skips,
		Evals:      s.stats.Evals,
		GoodEvals:  s.stats.GoodEvals,
		Scheds:     s.stats.Scheds,
		PeakElems:  s.stats.PeakElems,
		CurElems:   s.stats.CurElems,
		Macros:     s.plan.NumMacros(),
		MemBytes:   int64(s.stats.PeakElems) * elemSize,
		Detections: s.stats.Detections,
	}
}

// numSimFaults is the simulated fault count: the partition size, or the
// whole universe when unrestricted.
func (s *Simulator) numSimFaults(ids []int32) int {
	if ids != nil {
		return len(ids)
	}
	return len(s.u.Faults)
}

// Plan exposes the macro plan (inspection/tests).
func (s *Simulator) Plan() *macro.Plan { return s.plan }

// SetGoodTrace attaches a prerecorded good-machine trace: the simulator
// replays settled good values from the trace instead of evaluating macro
// good functions, so the good machine is derived once per vector set no
// matter how many partitions replay it. The trace must come from a
// goodsim.Record of the same circuit over the same vector sequence that
// will be simulated (recording more cycles than are run is fine). Must be
// called before the first Cycle.
func (s *Simulator) SetGoodTrace(tr *goodsim.Trace) error {
	if tr.NumGates() != len(s.c.Gates) {
		return fmt.Errorf("csim: good trace covers %d gates, circuit has %d",
			tr.NumGates(), len(s.c.Gates))
	}
	if !s.firstCycle || s.vecIndex != 0 {
		return fmt.Errorf("csim: good trace must be attached before simulation starts")
	}
	s.goodTrace = tr
	return nil
}

// GoodVal returns the good-machine value of a source or macro-root gate.
func (s *Simulator) GoodVal(g netlist.GateID) logic.V { return s.goodVal[g] }

// Run simulates the whole vector set and returns the detections.
func (s *Simulator) Run(vs *vectors.Set) *faults.Result {
	if vs.NumPIs != len(s.c.PIs) {
		panic(fmt.Sprintf("csim: vector width %d, circuit has %d PIs", vs.NumPIs, len(s.c.PIs)))
	}
	for _, v := range vs.Vecs {
		s.Cycle(v)
	}
	return s.res
}

// alloc takes an element from the free list or grows the arena.
func (s *Simulator) alloc(fault int32, word logic.Word, next int32) int32 {
	var idx int32
	if s.freeHead >= 0 {
		idx = s.freeHead
		s.freeHead = s.arena[idx].next
		s.arena[idx] = elem{fault: fault, word: word, next: next}
	} else {
		idx = int32(len(s.arena))
		s.arena = append(s.arena, elem{fault: fault, word: word, next: next})
	}
	s.stats.CurElems++
	if s.stats.CurElems > s.stats.PeakElems {
		s.stats.PeakElems = s.stats.CurElems
	}
	return idx
}

// free returns an element to the free list.
func (s *Simulator) free(idx int32) {
	s.arena[idx].next = s.freeHead
	s.arena[idx].fault = math.MaxInt32
	s.freeHead = idx
	s.stats.CurElems--
}

func (s *Simulator) trace(kind TraceKind, g netlist.GateID, fault int32) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{Kind: kind, Gate: g, Fault: fault, Vec: s.vecIndex})
	}
}

// fev emits one fault-lifecycle event; with no log attached it reduces to
// an inlined nil check.
func (s *Simulator) fev(kind obs.FaultEventKind, g netlist.GateID, fault int32) {
	if s.flog == nil {
		return
	}
	s.flog.Emit(obs.FaultEvent{Vec: int32(s.vecIndex), Fault: fault, Gate: int32(g), Kind: kind})
}
