package csim

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/serial"
	"repro/internal/vectors"
)

const s27Bench = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

// testCircuits exercise the simulator corners: pure combinational,
// feedback through FFs, reconvergent fanout, XOR trees, FF-to-FF chains,
// duplicated fanin pins, PO-on-PI and PO-on-FF.
var testCircuits = []struct{ name, text string }{
	{"s27", s27Bench},
	{"comb", `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
OUTPUT(w)
n1 = NAND(a, b)
n2 = NOR(b, c)
z = XOR(n1, n2)
w = AND(n1, n2, a)
`},
	{"ffchain", `
INPUT(a)
OUTPUT(z)
q1 = DFF(a)
q2 = DFF(q1)
q3 = DFF(q2)
z = XNOR(q3, a)
`},
	{"feedback", `
INPUT(en)
INPUT(d)
OUTPUT(q)
OUTPUT(nz)
sel = NOT(en)
h1 = AND(q, sel)
h2 = AND(d, en)
nxt = OR(h1, h2)
q = DFF(nxt)
nz = NOT(q)
`},
	{"duppin", `
INPUT(a)
INPUT(b)
OUTPUT(z)
m = AND(a, a)
z = OR(m, b)
`},
	{"poOnPi", `
INPUT(a)
OUTPUT(a)
OUTPUT(z)
q = DFF(a)
z = NOT(q)
`},
	{"reconv", `
INPUT(a)
INPUT(b)
OUTPUT(z)
s = NOT(a)
p1 = AND(s, b)
p2 = OR(s, b)
z = XOR(p1, p2)
`},
	{"counterish", `
INPUT(rst)
OUTPUT(q0)
OUTPUT(q1)
nrst = NOT(rst)
t0 = NOT(q0)
d0 = AND(t0, nrst)
x1 = XOR(q1, q0)
d1 = AND(x1, nrst)
q0 = DFF(d0)
q1 = DFF(d1)
`},
}

var configs = []struct {
	name string
	cfg  Config
}{
	{"plain", Config{}},
	{"csim-V", V()},
	{"csim-M", M()},
	{"csim-MV", MV()},
	{"eager", Config{SplitLists: true, Macros: true, EagerDrop: true}},
	{"reconv", Config{SplitLists: true, ReconvergentMacros: true}},
}

func mustParse(t *testing.T, name, text string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStuckAtMatchesSerial is the central cross-validation: every csim
// configuration must report exactly the serial oracle's detected fault
// set, with identical first-detection vectors.
func TestStuckAtMatchesSerial(t *testing.T) {
	for _, tc := range testCircuits {
		c := mustParse(t, tc.name, tc.text)
		for _, uni := range []struct {
			name string
			u    *faults.Universe
		}{
			{"full", faults.StuckAll(c)},
			{"collapsed", faults.StuckCollapsed(c)},
		} {
			vs := vectors.Random(c, 150, int64(len(tc.name)*77+1))
			want := serial.Simulate(uni.u, vs)
			for _, cf := range configs {
				sim, err := New(uni.u, cf.cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: New: %v", tc.name, uni.name, cf.name, err)
				}
				got := sim.Run(vs)
				if d := want.Diff(got); d != "" {
					t.Errorf("%s/%s/%s: csim disagrees with serial:\n%s",
						tc.name, uni.name, cf.name, d)
					continue
				}
				for i := range want.DetectedAt {
					if want.DetectedAt[i] != got.DetectedAt[i] {
						t.Errorf("%s/%s/%s: fault %s first detected at %d, serial says %d",
							tc.name, uni.name, cf.name,
							uni.u.Faults[i].Name(c), got.DetectedAt[i], want.DetectedAt[i])
						break
					}
					if want.PotDetected[i] != got.PotDetected[i] {
						t.Errorf("%s/%s/%s: fault %s potential detection %v, serial says %v",
							tc.name, uni.name, cf.name,
							uni.u.Faults[i].Name(c), got.PotDetected[i], want.PotDetected[i])
						break
					}
				}
			}
		}
	}
}

// TestTransitionMatchesSerial cross-validates the §3 transition-fault mode.
func TestTransitionMatchesSerial(t *testing.T) {
	for _, tc := range testCircuits {
		c := mustParse(t, tc.name, tc.text)
		u := faults.Transition(c)
		vs := vectors.Random(c, 200, int64(len(tc.name)*13+5))
		want := serial.Simulate(u, vs)
		for _, cf := range configs {
			sim, err := New(u, cf.cfg)
			if err != nil {
				t.Fatalf("%s/%s: New: %v", tc.name, cf.name, err)
			}
			got := sim.Run(vs)
			if d := want.Diff(got); d != "" {
				t.Errorf("%s/%s: transition csim disagrees with serial:\n%s", tc.name, cf.name, d)
				continue
			}
			for i := range want.DetectedAt {
				if want.DetectedAt[i] != got.DetectedAt[i] {
					t.Errorf("%s/%s: fault %s first detected at %d, serial says %d",
						tc.name, cf.name, u.Faults[i].Name(c), got.DetectedAt[i], want.DetectedAt[i])
					break
				}
			}
		}
	}
}

// TestGoodMachineAgreesWithGoodsim: csim's embedded good machine must track
// the standalone good simulator at every root and source.
func TestGoodMachineAgreesWithGoodsim(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 100, 321)
	sim, err := New(u, MV())
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefGood(c)
	for _, vec := range vs.Vecs {
		sim.Cycle(vec)
		ref.cycle(vec)
		for id, m := range sim.plan.ByRoot {
			if m == nil {
				continue
			}
			if sim.GoodVal(netlist.GateID(id)) != ref.val[id] {
				t.Fatalf("good value mismatch at %s: %v vs %v",
					c.Gate(netlist.GateID(id)).Name, sim.GoodVal(netlist.GateID(id)), ref.val[id])
			}
		}
		for _, src := range append(append([]netlist.GateID{}, c.PIs...), c.DFFs...) {
			if sim.GoodVal(src) != ref.val[src] {
				t.Fatalf("good source mismatch at %s", c.Gate(src).Name)
			}
		}
	}
}

// refGood is an independent full-evaluation good machine.
type refGood struct {
	c   *netlist.Circuit
	val []logic.V
}

func newRefGood(c *netlist.Circuit) *refGood {
	r := &refGood{c: c, val: make([]logic.V, len(c.Gates))}
	for i := range r.val {
		r.val[i] = logic.X
	}
	return r
}

func (r *refGood) cycle(vec []logic.V) {
	for i, pi := range r.c.PIs {
		r.val[pi] = vec[i]
	}
	for _, lv := range r.c.Levels {
		for _, id := range lv {
			g := r.c.Gate(id)
			in := make([]logic.V, len(g.Fanin))
			for j, f := range g.Fanin {
				in[j] = r.val[f]
			}
			r.val[id] = logic.Eval(g.Op, in)
		}
	}
	next := make([]logic.V, len(r.c.DFFs))
	for i, ff := range r.c.DFFs {
		next[i] = r.val[r.c.Gate(ff).Fanin[0]]
	}
	for i, ff := range r.c.DFFs {
		r.val[ff] = next[i]
	}
}

// TestNoElementLeaks: after dropping every fault (full-coverage run), the
// live element count must return to near zero once lists are swept.
func TestNoElementLeaks(t *testing.T) {
	c := mustParse(t, "buf", "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
	u := faults.StuckAll(c)
	sim, err := New(u, MV())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := vectors.ParseString("1\n0\n1\n0\n", 1)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(vs)
	if res.Coverage() != 1.0 {
		t.Fatalf("coverage %v, want 1", res.Coverage())
	}
	if sim.Stats().CurElems != 0 {
		t.Errorf("%d elements still live after all faults detected", sim.Stats().CurElems)
	}
}

// TestListInvariants walks every list after every cycle: sorted, sentinel-
// terminated, visibility placement correct.
func TestListInvariants(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckAll(c)
	for _, cf := range configs {
		sim, err := New(u, cf.cfg)
		if err != nil {
			t.Fatal(err)
		}
		vs := vectors.Random(c, 60, 9)
		for _, vec := range vs.Vecs {
			sim.Cycle(vec)
			live := 0
			for gi := range c.Gates {
				for li, head := range []int32{sim.vis[gi], sim.inv[gi]} {
					prev := int32(-1)
					cur := head
					for cur != 0 {
						e := sim.arena[cur]
						if prev >= 0 && sim.arena[prev].fault >= e.fault {
							t.Fatalf("%s: list at gate %d not strictly sorted", cf.name, gi)
						}
						if e.fault >= sim.sentinel {
							t.Fatalf("%s: sentinel fault id inside list", cf.name)
						}
						if cf.cfg.SplitLists {
							root := netlist.GateID(gi)
							visNow := e.word.Out() != sim.goodVal[root]
							if li == 0 && !visNow && !c.Gate(root).IsSource() {
								t.Fatalf("%s: invisible element in visible list at %s (fault %s)",
									cf.name, c.Gate(root).Name, u.Faults[e.fault].Name(c))
							}
							if li == 1 && visNow {
								t.Fatalf("%s: visible element in invisible list at %s",
									cf.name, c.Gate(root).Name)
							}
						}
						live++
						prev = cur
						cur = e.next
					}
				}
			}
			if live != sim.Stats().CurElems {
				t.Fatalf("%s: %d linked elements but CurElems=%d", cf.name, live, sim.Stats().CurElems)
			}
		}
	}
}

// TestSplitReducesPropagationWork: csim-V must evaluate no more faulty
// machines than the unsplit variant (invisible elements are skipped during
// propagation). We check the weaker, always-true property that results
// agree and both terminate; the ablation bench quantifies the difference.
func TestSplitAgreesWithUnsplit(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckAll(c)
	vs := vectors.Random(c, 300, 1234)
	a, err := New(u, Config{SplitLists: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Run(vs)
	rb := b.Run(vs)
	if d := ra.Diff(rb); d != "" {
		t.Errorf("split vs unsplit disagree:\n%s", d)
	}
}

func TestMacroReducesGoodEvals(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckAll(c)
	vs := vectors.Random(c, 300, 77)
	m, err := New(u, M())
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(vs)
	v.Run(vs)
	if m.Stats().GoodEvals >= v.Stats().GoodEvals {
		t.Errorf("macro extraction did not reduce good evaluations: %d vs %d",
			m.Stats().GoodEvals, v.Stats().GoodEvals)
	}
	if m.Stats().Macros >= v.Stats().Macros {
		t.Errorf("macro plan has %d macros, trivial %d", m.Stats().Macros, v.Stats().Macros)
	}
}

func TestRunPanicsOnWidthMismatch(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckAll(c)
	sim, err := New(u, MV())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Run with wrong vector width did not panic")
		}
	}()
	sim.Run(vectors.New(2))
}

func TestTraceEventsEmitted(t *testing.T) {
	c := mustParse(t, "buf", "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
	u := faults.StuckAll(c)
	var events []TraceEvent
	cfg := MV()
	cfg.Trace = func(ev TraceEvent) { events = append(events, ev) }
	sim, err := New(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs, _ := vectors.ParseString("1\n0\n", 1)
	sim.Run(vs)
	var div, det int
	for _, ev := range events {
		switch ev.Kind {
		case TraceDiverge:
			div++
		case TraceDetect:
			det++
		}
	}
	if div == 0 || det == 0 {
		t.Errorf("trace recorded %d divergences, %d detections; want both > 0", div, det)
	}
}

// TestDataStructure pins down the Figure 2 properties: sentinel at arena
// slot 0, terminal fault ID above every real fault, never dropped.
func TestDataStructure(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckAll(c)
	sim, err := New(u, MV())
	if err != nil {
		t.Fatal(err)
	}
	if sim.arena[0].fault != int32(len(u.Faults)) {
		t.Errorf("sentinel fault = %d, want %d", sim.arena[0].fault, len(u.Faults))
	}
	if sim.arena[0].next != 0 {
		t.Error("sentinel must link to itself")
	}
	for _, f := range u.Faults {
		if f.ID >= sim.sentinel {
			t.Errorf("fault ID %d not below sentinel %d", f.ID, sim.sentinel)
		}
	}
	if sim.dropped[sim.sentinel] {
		t.Error("sentinel descriptor marked dropped")
	}
	vs := vectors.Random(c, 50, 2)
	sim.Run(vs)
	if sim.dropped[sim.sentinel] {
		t.Error("sentinel descriptor dropped during simulation")
	}
}

// TestWideMacrosUseReplayPath: raising the macro leaf cap beyond the
// lookup-table bound exercises the cone-replay evaluation path and the
// per-fault replay injection for wide functional faults; results must
// still match the serial oracle.
func TestWideMacrosUseReplayPath(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckAll(c)
	vs := vectors.Random(c, 150, 88)
	cfg := MV()
	cfg.MacroMaxInputs = 12 // above macro.TableMaxInputs
	sim, err := New(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := sim.Run(vs)
	want := serial.Simulate(u, vs)
	if d := want.Diff(got); d != "" {
		t.Errorf("wide-macro csim disagrees with serial:\n%s", d)
	}
}

// TestResetBehaviour: Stats survive but simulation state returns to the
// initial all-X configuration... csim has no public Reset; constructing a
// fresh simulator over the same universe must be independent of earlier
// runs (universes are read-only).
func TestUniverseReuseAcrossSimulators(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckAll(c)
	vs := vectors.Random(c, 80, 21)
	a, err := New(u, MV())
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Run(vs)
	b, err := New(u, MV())
	if err != nil {
		t.Fatal(err)
	}
	rb := b.Run(vs)
	if d := ra.Diff(rb); d != "" {
		t.Errorf("universe reuse changed results:\n%s", d)
	}
}

// TestTransitionRetriggerFlush: after a delayed edge, the fault effect
// must vanish on the next cycle even when no new events reach the
// site macro — the retrigger mechanism. A constant input after an edge
// reproduces it.
func TestTransitionRetriggerFlush(t *testing.T) {
	c := mustParse(t, "tr", "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nm = AND(a, b)\nz = BUFF(m)\n")
	u := faults.Transition(c)
	// b toggles each cycle; a rises once then stays constant, so the STR
	// machine at m's pin 0 must converge without any event on pin 0.
	vs, err := vectors.ParseString("01\n11\n10\n11\n10\n", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{{}, MV()} {
		sim, err := New(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := sim.Run(vs)
		want := serial.Simulate(u, vs)
		if d := want.Diff(got); d != "" {
			t.Errorf("macros=%v: retrigger flush broken:\n%s", cfg.Macros, d)
		}
	}
}

// TestMergeStatsSums: the merge must sum every additive counter and the
// memory accounting — partitions own disjoint arenas, so a
// last-writer-wins merge would under-report the run's footprint. Macros
// describes the shared plan, so the merge keeps the maximum.
func TestMergeStatsSums(t *testing.T) {
	a := Stats{Evals: 10, Skips: 3, GoodEvals: 7, PeakElems: 100,
		CurElems: 4, Macros: 9, MemBytes: 1600, Detections: 2}
	b := Stats{Evals: 1, Skips: 2, GoodEvals: 3, PeakElems: 40,
		CurElems: 5, Macros: 9, MemBytes: 640, Detections: 6}
	got := MergeStats(a, b)
	want := Stats{Evals: 11, Skips: 5, GoodEvals: 10, PeakElems: 140,
		CurElems: 9, Macros: 9, MemBytes: 2240, Detections: 8}
	if got != want {
		t.Errorf("MergeStats = %+v, want %+v", got, want)
	}
	if one := MergeStats(a); one != a {
		t.Errorf("MergeStats of one part = %+v, want %+v", one, a)
	}
}

// TestPartitionedMatchesFull: for every test circuit and configuration,
// splitting the universe into partition simulators and merging their
// results must reproduce the full run exactly — detections, first
// detecting vectors, potential detections, and the partition-invariant
// counters (detections sum; the summed peaks bound the full run's peak).
func TestPartitionedMatchesFull(t *testing.T) {
	for _, tc := range testCircuits {
		c := mustParse(t, tc.name, tc.text)
		u := faults.StuckCollapsed(c)
		vs := vectors.Random(c, 60, 5)
		for _, cf := range configs {
			full, err := New(u, cf.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := full.Run(vs)
			const k = 3
			parts := make([][]int32, k)
			for i := 0; i < u.NumFaults(); i++ {
				parts[i%k] = append(parts[i%k], int32(i))
			}
			results := make([]*faults.Result, k)
			var merged Stats
			for i, ids := range parts {
				sim, err := NewPartition(u, cf.cfg, ids)
				if err != nil {
					t.Fatal(err)
				}
				results[i] = sim.Run(vs)
				merged = MergeStats(merged, sim.Stats())
			}
			got := faults.MergeResults(results...)
			tag := tc.name + "/" + cf.name
			if d := want.Diff(got); d != "" {
				t.Errorf("%s: partitioned detections differ:\n%s", tag, d)
				continue
			}
			for i := range want.DetectedAt {
				if want.DetectedAt[i] != got.DetectedAt[i] {
					t.Errorf("%s: fault %d first detected at %d, full run %d",
						tag, i, got.DetectedAt[i], want.DetectedAt[i])
					break
				}
				if want.PotDetected[i] != got.PotDetected[i] {
					t.Errorf("%s: fault %d potential %v, full run %v",
						tag, i, got.PotDetected[i], want.PotDetected[i])
					break
				}
			}
			st := full.Stats()
			if merged.Detections != st.Detections {
				t.Errorf("%s: merged detections %d, full run %d",
					tag, merged.Detections, st.Detections)
			}
			if merged.PeakElems < st.PeakElems {
				t.Errorf("%s: summed partition peaks %d below full-run peak %d",
					tag, merged.PeakElems, st.PeakElems)
			}
		}
	}
}

// TestPartitionRejectsBadIDs: out-of-range and duplicate fault IDs must
// be reported, not silently simulated.
func TestPartitionRejectsBadIDs(t *testing.T) {
	c := mustParse(t, "comb", testCircuits[1].text)
	u := faults.StuckCollapsed(c)
	if _, err := NewPartition(u, MV(), []int32{0, int32(u.NumFaults())}); err == nil {
		t.Error("out-of-range fault ID accepted")
	}
	if _, err := NewPartition(u, MV(), []int32{-1}); err == nil {
		t.Error("negative fault ID accepted")
	}
	if _, err := NewPartition(u, MV(), []int32{2, 2}); err == nil {
		t.Error("duplicate fault ID accepted")
	}
}

// TestGoodTraceReplayExact: with a recorded good trace attached the
// simulator must report exactly the same detections and good values as
// the self-evaluating run, for every configuration (macro good functions
// and the trace agree on settled values by construction).
func TestGoodTraceReplayExact(t *testing.T) {
	for _, tc := range testCircuits {
		c := mustParse(t, tc.name, tc.text)
		u := faults.StuckCollapsed(c)
		vs := vectors.Random(c, 60, 8)
		tr := goodsim.Record(c, vs.Vecs)
		for _, cf := range configs {
			plain, err := New(u, cf.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := plain.Run(vs)
			replay, err := New(u, cf.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := replay.SetGoodTrace(tr); err != nil {
				t.Fatal(err)
			}
			got := replay.Run(vs)
			if d := want.Diff(got); d != "" {
				t.Errorf("%s/%s: replay diverged:\n%s", tc.name, cf.name, d)
			}
			if ps, rs := plain.Stats(), replay.Stats(); ps != rs {
				t.Errorf("%s/%s: replay stats %+v, self-evaluating %+v",
					tc.name, cf.name, rs, ps)
			}
		}
	}
}

// TestSetGoodTraceValidation: wrong circuit and late attachment are
// rejected; running past the recorded trace panics.
func TestSetGoodTraceValidation(t *testing.T) {
	c := mustParse(t, "comb", testCircuits[1].text)
	other := mustParse(t, "s27", s27Bench)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 10, 1)
	tr := goodsim.Record(c, vs.Vecs)

	sim, err := New(u, MV())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetGoodTrace(goodsim.Record(other, vectors.Random(other, 10, 1).Vecs)); err == nil {
		t.Error("trace of a different circuit accepted")
	}
	sim.Run(vs.Slice(2))
	if err := sim.SetGoodTrace(tr); err == nil {
		t.Error("trace attached after simulation started")
	}

	short, err := New(u, MV())
	if err != nil {
		t.Fatal(err)
	}
	if err := short.SetGoodTrace(goodsim.Record(c, vs.Vecs[:3])); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("running past the recorded trace did not panic")
		}
	}()
	short.Run(vs)
}
