package csim

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/obs"
)

// Cycle simulates one clock period: apply the vector, settle the
// combinational network, look for detections at the primary outputs, then
// clock the flip-flops (good machine and every faulty machine together).
func (s *Simulator) Cycle(vec []logic.V) {
	if s.goodTrace != nil && s.vecIndex >= s.goodTrace.Cycles() {
		panic(fmt.Sprintf("csim: vector %d beyond the recorded good trace (%d cycles)",
			s.vecIndex, s.goodTrace.Cycles()))
	}
	// Observability is published once per cycle (never per event): with a
	// sink attached the cycle is timed and the counters flushed at the
	// end; without one this is a single nil check.
	var cycleStart time.Time
	if s.sink != nil {
		cycleStart = time.Now()
	}
	// Re-arm macros whose transition faults fired a delayed edge last
	// cycle: their elements must be re-examined even without new events.
	for _, r := range s.retrig {
		s.retrigOn[r] = false
		s.scheduleRoot(r)
	}
	s.retrig = s.retrig[:0]
	if s.firstCycle {
		// Evaluate everything once so that fault activation under the
		// initial all-X state is established; afterwards events carry all
		// changes.
		s.firstCycle = false
		for _, lv := range s.plan.Levels {
			for _, r := range lv {
				s.scheduleRoot(r)
			}
		}
	}
	s.applyPIs(vec)
	s.settle()
	s.detect()
	s.clock()
	s.vecIndex++
	if s.sink != nil {
		s.sink.flush(s.Stats(), time.Since(cycleStart))
	}
}

// applyPIs asserts the vector on the primary inputs. Every PI's local
// fault list (output stuck-ats) is re-examined each cycle; the lists are
// tiny, and this keeps fault activation exact.
//
//simlint:hotpath
func (s *Simulator) applyPIs(vec []logic.V) {
	for i, pi := range s.c.PIs {
		newGood := vec[i].Norm()
		oldGood := s.goodVal[pi]
		s.goodVal[pi] = newGood
		anyEvent := newGood != oldGood

		ownVis := mkCursor(&s.vis[pi])
		loc := s.locals[pi]
		li := 0
		nb := newListBuilder()
		for {
			f := s.sentinel
			if fv := s.fault(ownVis.cur); fv < f {
				f = fv
			}
			if li < len(loc) && loc[li] < f {
				f = loc[li]
			}
			if f >= s.sentinel {
				break
			}
			ownIdx := int32(-1)
			if s.fault(ownVis.cur) == f {
				ownIdx = ownVis.cur
				ownVis.advance(s)
			}
			isLocal := li < len(loc) && loc[li] == f
			if isLocal {
				li++
			}
			if s.dropped[f] {
				if ownIdx >= 0 {
					s.free(ownIdx)
				}
				continue
			}
			newOut := newGood
			if isLocal {
				flt := &s.u.Faults[f]
				if flt.Pin == faults.OutPin && flt.Kind.Stuck() {
					newOut = flt.Kind.StuckValue()
				}
			}
			oldOut := oldGood
			if ownIdx >= 0 {
				oldOut = s.arena[ownIdx].word.Out()
			}
			if newOut == newGood {
				if ownIdx >= 0 {
					s.free(ownIdx)
					s.trace(TraceConverge, pi, f)
					s.fev(obs.FaultConverged, pi, f)
				}
			} else {
				w := logic.PackWord(nil, newOut)
				if ownIdx < 0 {
					ownIdx = s.alloc(f, w, 0)
					s.trace(TraceDiverge, pi, f)
					s.fev(obs.FaultDiverged, pi, f)
					// A PI element always carries a differing output.
					s.fev(obs.FaultVisible, pi, f)
				} else {
					s.arena[ownIdx].word = w
				}
				nb.append(s, ownIdx)
			}
			if newOut != oldOut {
				anyEvent = true
			}
		}
		s.vis[pi] = nb.finish(s)
		if anyEvent {
			s.notify(pi)
		}
	}
}

// settle drains the event queue in level order. Consumers live at strictly
// higher macro levels than producers, so one sweep suffices.
//
//simlint:hotpath
func (s *Simulator) settle() {
	for l := 1; l < len(s.queue); l++ {
		bucket := s.queue[l]
		for i := 0; i < len(bucket); i++ {
			s.evalRoot(bucket[i])
		}
		s.queue[l] = s.queue[l][:0]
	}
}

// detect scans the visible lists of the primary outputs: a fault whose
// machine drives a binary value different from a binary good value is
// detected and dropped.
//
//simlint:hotpath
func (s *Simulator) detect() {
	// Pass 1: potential detections (good binary, faulty X). Recorded
	// before any dropping this cycle so that PO processing order cannot
	// hide an X observation behind a same-cycle hard detection.
	for _, po := range s.c.POs {
		good := s.goodVal[po]
		if !good.Binary() {
			continue
		}
		cu := mkCursor(&s.vis[po])
		for s.fault(cu.cur) < s.sentinel {
			f := s.fault(cu.cur)
			if s.dropped[f] {
				s.free(cu.unlink(s))
				continue
			}
			if !s.arena[cu.cur].word.Out().Binary() {
				s.res.PotDetect(f)
				s.fev(obs.FaultPotDetected, po, f)
			}
			cu.advance(s)
		}
	}
	dropsHappened := false
	for _, po := range s.c.POs {
		good := s.goodVal[po]
		cu := mkCursor(&s.vis[po])
		for s.fault(cu.cur) < s.sentinel {
			f := s.fault(cu.cur)
			if s.dropped[f] {
				s.free(cu.unlink(s))
				continue
			}
			out := s.arena[cu.cur].word.Out()
			if good.Binary() && out.Binary() && out != good {
				s.dropped[f] = true
				s.res.Detect(f, s.vecIndex)
				s.stats.Detections++
				s.trace(TraceDetect, po, f)
				s.fev(obs.FaultDetected, po, f)
				// Detection drops the fault; its elements are reclaimed
				// event-driven from here on.
				s.fev(obs.FaultDropped, po, f)
				s.free(cu.unlink(s))
				dropsHappened = true
				continue
			}
			cu.advance(s)
		}
	}
	if s.cfg.EagerDrop && dropsHappened {
		s.scanDropAll()
	}
}

// scanDropAll is the ablation alternative to event-driven dropping: scan
// every list in the circuit and reclaim elements of detected faults
// immediately (the paper's "no effective scheme to search them without
// scanning the whole circuit").
func (s *Simulator) scanDropAll() {
	sweep := func(head *int32) {
		cu := mkCursor(head)
		for s.fault(cu.cur) < s.sentinel {
			if s.dropped[s.fault(cu.cur)] {
				s.free(cu.unlink(s))
				continue
			}
			cu.advance(s)
		}
	}
	for i := range s.c.Gates {
		sweep(&s.vis[i])
		sweep(&s.inv[i])
	}
}

// clock latches every flip-flop: good machine and all faulty machines.
// Phase one computes every DFF's next state from the pre-clock values;
// phase two commits, so FF-to-FF chains latch simultaneously.
//
//simlint:hotpath
func (s *Simulator) clock() {
	pendEvent := s.dffEvent

	for di, ff := range s.c.DFFs {
		d := s.c.Gate(ff).Fanin[0]
		newGoodQ := s.goodVal[d]
		oldGoodQ := s.goodVal[ff]
		s.newQ[di] = newGoodQ
		anyEvent := newGoodQ != oldGoodQ

		pend := s.newQLists[di][:0]
		dvis := mkCursor(&s.vis[d])
		ownVis := mkCursor(&s.vis[ff])
		loc := s.locals[ff]
		li := 0
		for {
			f := s.sentinel
			if fv := s.fault(dvis.cur); fv < f {
				f = fv
			}
			if fv := s.fault(ownVis.cur); fv < f {
				f = fv
			}
			if li < len(loc) && loc[li] < f {
				f = loc[li]
			}
			if f >= s.sentinel {
				break
			}
			var ownIdx int32 = -1
			if s.fault(ownVis.cur) == f {
				ownIdx = ownVis.cur
				ownVis.advance(s) // read-only walk; commit frees the old list
			}
			isLocal := li < len(loc) && loc[li] == f
			if isLocal {
				li++
			}
			inD := s.fault(dvis.cur) == f
			dRaw := newGoodQ
			if inD {
				dRaw = s.arena[dvis.cur].word.Out()
				dvis.advance(s)
			}
			if s.dropped[f] {
				continue // old elements reclaimed at commit
			}
			newQv := dRaw
			if isLocal {
				flt := &s.u.Faults[f]
				switch {
				case flt.Pin == 0 && flt.Kind.Stuck():
					newQv = flt.Kind.StuckValue()
				case flt.Pin == 0: // transition fault on the D pin
					prev := s.prevDriver[f]
					newQv = faults.TransitionFV(flt.Kind, prev, dRaw)
					s.prevDriver[f] = dRaw
				case flt.Pin == faults.OutPin && flt.Kind.Stuck():
					newQv = flt.Kind.StuckValue()
				}
			}
			oldQ := oldGoodQ
			if ownIdx >= 0 {
				oldQ = s.arena[ownIdx].word.Out()
			}
			if newQv != newGoodQ {
				pend = append(pend, pendingElem{fault: f, word: logic.PackWord(nil, newQv)})
				// The faulty state survives the clock edge: the only way a
				// fault outlives the cycle that activated it.
				s.fev(obs.FaultLatched, ff, f)
			}
			if newQv != oldQ {
				anyEvent = true
			}
		}
		s.newQLists[di] = pend
		pendEvent[di] = anyEvent
	}

	// Commit.
	for di, ff := range s.c.DFFs {
		// Reclaim the old state elements.
		cu := mkCursor(&s.vis[ff])
		for s.fault(cu.cur) < s.sentinel {
			s.free(cu.unlink(s))
		}
		s.goodVal[ff] = s.newQ[di]
		nb := newListBuilder()
		for _, pe := range s.newQLists[di] {
			nb.append(s, s.alloc(pe.fault, pe.word, 0))
		}
		s.vis[ff] = nb.finish(s)
		if pendEvent[di] {
			s.notify(ff)
		}
	}
}
