package csim

import (
	"math/bits"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/macro"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// cursor walks a sorted, sentinel-terminated fault list. prev tracking
// allows in-place unlinking (event-driven fault dropping happens during
// ordinary traversals, as in §2.2).
type cursor struct {
	head *int32
	prev int32 // arena index of the previous element; -1 = at head slot
	cur  int32
}

func mkCursor(head *int32) cursor { return cursor{head: head, prev: -1, cur: *head} }

// fault returns the fault ID at the cursor (the sentinel's ID at list end).
func (s *Simulator) fault(idx int32) int32 { return s.arena[idx].fault }

// advance moves past the current element, keeping it linked.
func (cu *cursor) advance(s *Simulator) {
	cu.prev = cu.cur
	cu.cur = s.arena[cu.cur].next
}

// unlink removes the current element from the list and returns its index;
// the cursor moves to the next element.
func (cu *cursor) unlink(s *Simulator) int32 {
	idx := cu.cur
	nxt := s.arena[idx].next
	if cu.prev < 0 {
		*cu.head = nxt
	} else {
		s.arena[cu.prev].next = nxt
	}
	cu.cur = nxt
	return idx
}

// listBuilder assembles a sorted list by appending in merge order.
type listBuilder struct {
	head, tail int32 // tail = -1 while empty
}

func newListBuilder() listBuilder { return listBuilder{head: 0, tail: -1} }

func (b *listBuilder) append(s *Simulator, idx int32) {
	if b.tail < 0 {
		b.head = idx
	} else {
		s.arena[b.tail].next = idx
	}
	b.tail = idx
}

// finish terminates the list with the sentinel and returns its head.
func (b *listBuilder) finish(s *Simulator) int32 {
	if b.tail < 0 {
		return 0
	}
	s.arena[b.tail].next = 0
	return b.head
}

// eventSrc is one distinct leaf gate with pending events feeding the gate
// under evaluation, with the set of macro pins it drives.
type eventSrc struct {
	gate netlist.GateID
	pins uint32
	cu   cursor
	fv   int32 // cached fault ID at the cursor
}

// notify schedules the consumers of gate g after an output event (good or
// any faulty machine).
//
//simlint:hotpath
func (s *Simulator) notify(g netlist.GateID) {
	for _, cs := range s.consumers[g] {
		s.pinEvent[cs.root] |= 1 << uint(cs.pin)
		s.scheduleRoot(cs.root)
	}
}

// scheduleRoot enqueues a macro root at its level, once per phase. The
// level buckets keep their capacity across cycles, so the append below is
// allocation-free in the steady state.
//
//simlint:hotpath
func (s *Simulator) scheduleRoot(r netlist.GateID) {
	if s.sched[r] {
		return
	}
	s.sched[r] = true
	s.stats.Scheds++
	l := s.plan.RootLevel[r]
	s.queue[l] = append(s.queue[l], r)
}

func (s *Simulator) retrigger(r netlist.GateID) {
	if !s.retrigOn[r] {
		s.retrigOn[r] = true
		s.retrig = append(s.retrig, r)
	}
}

// evalRoot evaluates one macro root: the good machine plus the merged
// stream of (a) its own fault lists, (b) the visible lists of every fanin
// that had an event this phase (the multi-list traversal of [3]), and
// (c) the faults sited inside the macro. Its own lists are rebuilt in
// sorted order as the merge runs.
//
//simlint:hotpath
func (s *Simulator) evalRoot(r netlist.GateID) {
	s.sched[r] = false
	mask := s.pinEvent[r]
	s.pinEvent[r] = 0

	m := s.plan.ByRoot[r]
	k := m.NumLeaves()
	gin := s.gin[:k]
	for i, l := range m.Leaves {
		gin[i] = s.goodVal[l]
	}
	oldGW := s.goodWord[r]
	oldGoodOut := oldGW.Out()
	var newGoodOut logic.V
	var newGW logic.Word
	goodInChanged := logic.PackWord(gin, 0) != oldGW.InputBits()
	if !goodInChanged {
		newGoodOut = oldGoodOut
		newGW = oldGW
	} else {
		if s.goodTrace != nil {
			// Replay mode: the settled good value was recorded once for
			// the whole vector set; no per-partition re-derivation.
			newGoodOut = s.goodTrace.At(s.vecIndex, r)
		} else {
			newGoodOut = m.Eval(gin, s.frame)
		}
		s.stats.GoodEvals++
		newGW = logic.PackWord(gin, newGoodOut)
		s.goodWord[r] = newGW
		s.goodVal[r] = newGoodOut
	}
	anyEvent := newGoodOut != oldGoodOut

	// Distinct event sources with their pin sets.
	var srcsArr [logic.MaxPins]eventSrc
	srcs := srcsArr[:0]
	for pins := mask; pins != 0; {
		p := bits.TrailingZeros32(pins)
		pins &= pins - 1
		g := m.Leaves[p]
		found := false
		for i := range srcs {
			if srcs[i].gate == g {
				srcs[i].pins |= 1 << uint(p)
				found = true
				break
			}
		}
		if !found {
			srcs = append(srcs, eventSrc{gate: g, pins: 1 << uint(p), cu: mkCursor(&s.vis[g])})
		}
	}

	ownVis := mkCursor(&s.vis[r])
	ownInv := mkCursor(&s.inv[r])
	ownVisF := s.fault(ownVis.cur)
	ownInvF := s.fault(ownInv.cur)
	for i := range srcs {
		srcs[i].fv = s.fault(srcs[i].cu.cur)
	}
	loc := s.locals[r]
	li := 0
	locF := s.sentinel
	if li < len(loc) {
		locF = loc[li]
	}
	nbVis := newListBuilder()
	nbInv := newListBuilder()
	fin := s.fin[:k]

	for {
		f := ownVisF
		if ownInvF < f {
			f = ownInvF
		}
		for i := range srcs {
			if srcs[i].fv < f {
				f = srcs[i].fv
			}
		}
		if locF < f {
			f = locF
		}
		if f >= s.sentinel {
			break
		}

		// Claim the machine's own element, if present, and move past it;
		// the old own lists are being consumed and rebuilt.
		ownIdx := int32(-1)
		if ownVisF == f {
			ownIdx = ownVis.cur
			ownVis.advance(s)
			ownVisF = s.fault(ownVis.cur)
		} else if ownInvF == f {
			ownIdx = ownInv.cur
			ownInv.advance(s)
			ownInvF = s.fault(ownInv.cur)
		}
		isLocal := locF == f
		if isLocal {
			li++
			locF = s.sentinel
			if li < len(loc) {
				locF = loc[li]
			}
		}

		if s.dropped[f] {
			// Event-driven dropping: reclaim elements of detected faults
			// wherever a traversal meets them.
			if ownIdx >= 0 {
				s.free(ownIdx)
			}
			for i := range srcs {
				if srcs[i].fv == f {
					s.free(srcs[i].cu.unlink(s))
					srcs[i].fv = s.fault(srcs[i].cu.cur)
				}
			}
			continue
		}

		// Assemble the machine's input values: stored word (or good) with
		// event pins refreshed from the fanin lists. Tracking whether any
		// pin actually changed lets unchanged machines skip re-evaluation
		// entirely — the point of keeping redundant input copies (§2).
		var oldOut logic.V
		if ownIdx >= 0 {
			w := s.arena[ownIdx].word
			oldOut = w.Out()
			for i := 0; i < k; i++ {
				fin[i] = w.In(i)
			}
		} else {
			oldOut = oldGoodOut
			copy(fin, gin)
		}
		changed := false
		for i := range srcs {
			sc := &srcs[i]
			v := s.goodVal[sc.gate]
			if sc.fv == f {
				v = s.arena[sc.cu.cur].word.Out()
				sc.cu.advance(s)
				sc.fv = s.fault(sc.cu.cur)
			}
			for pins := sc.pins; pins != 0; {
				p := bits.TrailingZeros32(pins)
				pins &= pins - 1
				if fin[p] != v {
					fin[p] = v
					changed = true
				}
			}
		}

		isTransitionLocal := isLocal && !s.u.Faults[f].Kind.Stuck()
		skippable := !changed && !isTransitionLocal &&
			// A local stuck fault without an element was inactive at the
			// last evaluation; that holds only while the good inputs stay
			// put.
			!(isLocal && ownIdx < 0 && goodInChanged)
		if skippable {
			s.stats.Skips++
			if ownIdx < 0 {
				continue // still tracks the good machine implicitly
			}
			// Element exists and no input moved: the stored word is
			// current. Only its convergence/visibility status against the
			// (possibly changed) good word needs refreshing.
			newW := s.arena[ownIdx].word
			if newW == newGW {
				s.free(ownIdx)
				s.trace(TraceConverge, r, f)
				s.fev(obs.FaultConverged, r, f)
			} else if s.cfg.SplitLists && newW.Out() == newGoodOut {
				nbInv.append(s, ownIdx)
			} else {
				nbVis.append(s, ownIdx)
				// Visibility here can flip without a faulty-machine event:
				// the good output moved away from the stored faulty output.
				if newW.Out() != newGoodOut && oldOut == oldGoodOut {
					s.fev(obs.FaultVisible, r, f)
				}
			}
			continue // output unchanged: no event for this machine
		}

		// Evaluate the faulty machine; faults local to this macro are
		// injected functionally (§2.2 macro functional faults).
		var newOut logic.V
		if isLocal {
			flt := &s.u.Faults[f]
			if flt.Kind.Stuck() {
				if m.Table != nil {
					// Table-sized macro: evaluate through the fault's
					// functional table, built once per simulator (§2.2).
					tbl := s.fstTab[f]
					if tbl == nil {
						tbl = m.StuckTable(flt.Gate, flt.Pin, flt.Kind.StuckValue())
						s.fstTab[f] = tbl
					}
					newOut = tbl[macro.TableIndex(fin)]
				} else {
					newOut = m.EvalStuck(fin, s.frame, flt.Gate, flt.Pin, flt.Kind.StuckValue())
				}
			} else {
				prev := s.prevDriver[f]
				var driver logic.V
				newOut, driver = m.EvalTransition(fin, s.frame, flt.Gate, flt.Pin, flt.Kind, prev)
				s.prevDriver[f] = driver
				// A delayed edge fires within the next cycle; the machine
				// must be re-evaluated then even with no new events.
				if faults.TransitionFV(flt.Kind, prev, driver) != driver {
					s.retrigger(r)
				}
			}
		} else {
			newOut = m.Eval(fin, s.frame)
		}
		s.stats.Evals++

		newW := logic.PackWord(fin, newOut)
		wasVis := ownIdx >= 0 && oldOut != oldGoodOut
		if newW == newGW {
			// Converged: state identical to the good machine.
			if ownIdx >= 0 {
				s.free(ownIdx)
				s.trace(TraceConverge, r, f)
				s.fev(obs.FaultConverged, r, f)
			}
		} else {
			if ownIdx < 0 {
				ownIdx = s.alloc(f, newW, 0)
				s.trace(TraceDiverge, r, f)
				s.fev(obs.FaultDiverged, r, f)
			} else {
				s.arena[ownIdx].word = newW
			}
			if s.cfg.SplitLists && newOut == newGoodOut {
				nbInv.append(s, ownIdx)
			} else {
				nbVis.append(s, ownIdx)
				if newOut != newGoodOut && !wasVis {
					s.fev(obs.FaultVisible, r, f)
				}
			}
		}
		if newOut != oldOut {
			anyEvent = true
		}
	}
	s.vis[r] = nbVis.finish(s)
	s.inv[r] = nbInv.finish(s)
	if anyEvent {
		s.notify(r)
	}
}
