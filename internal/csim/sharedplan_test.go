package csim

import (
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/macro"
	"repro/internal/netlist"
	"repro/internal/serial"
	"repro/internal/vectors"
)

// TestSharedPlanConcurrentSims: a precompiled Plan injected via
// Config.Plan must be safe to share across concurrently running
// simulators — the service's compiled-circuit cache hands one Plan to
// every in-flight job on the same circuit. Under -race this pins the
// plan's immutability contract; the per-fault functional-table memo
// used to live on the Macro itself and raced exactly here.
func TestSharedPlanConcurrentSims(t *testing.T) {
	const sims = 8
	for _, tc := range testCircuits {
		c := mustParse(t, tc.name, tc.text)
		plan, err := macro.Extract(c, macro.DefaultMaxInputs)
		if err != nil {
			t.Fatalf("%s: Extract: %v", tc.name, err)
		}
		for _, uni := range []struct {
			name string
			u    *faults.Universe
		}{
			{"stuck", faults.StuckAll(c)},
			{"transition", faults.Transition(c)},
		} {
			vs := vectors.Random(c, 120, int64(len(tc.name)*31+5))
			want := serial.Simulate(uni.u, vs)
			var wg sync.WaitGroup
			errs := make(chan string, sims)
			for i := 0; i < sims; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					sim, err := New(uni.u, Config{SplitLists: true, Macros: true, Plan: plan})
					if err != nil {
						errs <- tc.name + "/" + uni.name + ": New: " + err.Error()
						return
					}
					got := sim.Run(vs)
					if d := want.Diff(got); d != "" {
						errs <- tc.name + "/" + uni.name + ": shared-plan sim disagrees with serial:\n" + d
					}
				}()
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Error(e)
			}
		}
	}
}

// TestSharedPlanRejectsForeignCircuit: Config.Plan for a different
// circuit must be rejected at construction, not misbehave at run time.
func TestSharedPlanRejectsForeignCircuit(t *testing.T) {
	a := mustParse(t, "s27", s27Bench)
	b, err := netlist.ParseBenchString("tiny", "INPUT(x)\nOUTPUT(z)\nz = NOT(x)\n")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := macro.Extract(b, macro.DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(faults.StuckAll(a), Config{Macros: true, Plan: plan}); err == nil {
		t.Fatal("expected an error for a plan compiled from another circuit")
	}
}
