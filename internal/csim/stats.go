package csim

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Stats reports instrumentation counters. It is the compatibility facade
// over the observability layer: each field carries an `obs` tag naming
// its registry metric, its kind, and its merge policy, and that one tag
// table drives registration (publishing into an obs.Registry), snapshot
// read-back (StatsFromRegistry), and partition merging (MergeStats) — a
// field added here is automatically registered, published, and merged,
// and a field missing its tag panics loudly instead of being silently
// dropped.
type Stats struct {
	Evals      int   `obs:"evals,counter,sum"`      // faulty-machine gate evaluations
	Skips      int   `obs:"skips,counter,sum"`      // merged machines skipped without re-evaluation
	GoodEvals  int   `obs:"good_evals,counter,sum"` // good-machine value refreshes (evaluations or trace replays)
	Scheds     int   `obs:"scheds,counter,sum"`     // macro roots scheduled for evaluation
	PeakElems  int   `obs:"peak_elems,gauge,sum"`   // high-water mark of live fault elements
	CurElems   int   `obs:"cur_elems,gauge,sum"`    // live fault elements now
	Macros     int   `obs:"macros,gauge,max"`       // macro count of the plan in use
	MemBytes   int64 `obs:"mem_bytes,gauge,sum"`    // accounted fault-element memory at peak
	Detections int   `obs:"detections,counter,sum"`
}

// mergePolicy says how a Stats field combines across disjoint partitions.
type mergePolicy uint8

const (
	mergeSum mergePolicy = iota // disjoint arenas/fault subsets: totals add
	mergeMax                    // identical per-partition property: keep max
)

// statField is one entry of the tag table.
type statField struct {
	index  int    // struct field index
	name   string // registry metric suffix
	kind   obs.Kind
	policy mergePolicy
}

var (
	statFieldsOnce sync.Once
	statFieldsVal  []statField
)

// statFields parses the Stats tag table once. It panics on a field
// without a well-formed `obs` tag, so extending Stats without declaring
// how the new counter merges is impossible.
func statFields() []statField {
	statFieldsOnce.Do(func() {
		t := reflect.TypeOf(Stats{})
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			tag := f.Tag.Get("obs")
			parts := strings.Split(tag, ",")
			if len(parts) != 3 {
				panic(fmt.Sprintf("csim: Stats field %s needs an obs:\"name,kind,policy\" tag", f.Name))
			}
			sf := statField{index: i, name: parts[0]}
			switch parts[1] {
			case "counter":
				sf.kind = obs.KindCounter
			case "gauge":
				sf.kind = obs.KindGauge
			default:
				panic(fmt.Sprintf("csim: Stats field %s has unknown kind %q", f.Name, parts[1]))
			}
			switch parts[2] {
			case "sum":
				sf.policy = mergeSum
			case "max":
				sf.policy = mergeMax
			default:
				panic(fmt.Sprintf("csim: Stats field %s has unknown merge policy %q", f.Name, parts[2]))
			}
			switch f.Type.Kind() {
			case reflect.Int, reflect.Int32, reflect.Int64:
			default:
				panic(fmt.Sprintf("csim: Stats field %s must be an integer type", f.Name))
			}
			statFieldsVal = append(statFieldsVal, sf)
		}
	})
	return statFieldsVal
}

// MergeStats combines per-partition counters into run totals, driven
// generically by the Stats tag table so newly added fields merge
// automatically. Every partition owns a disjoint element arena and a
// disjoint fault subset, so additive counters and the memory accounting
// sum (`sum` policy) — the run's peak fault-structure footprint is the
// sum of per-partition peaks, never a last-writer-wins value — while
// properties identical across partitions (the macro plan) keep the
// maximum (`max` policy).
func MergeStats(parts ...Stats) Stats {
	var out Stats
	ov := reflect.ValueOf(&out).Elem()
	for _, p := range parts {
		pv := reflect.ValueOf(p)
		for _, f := range statFields() {
			cur := ov.Field(f.index).Int()
			v := pv.Field(f.index).Int()
			switch f.policy {
			case mergeSum:
				cur += v
			case mergeMax:
				if v > cur {
					cur = v
				}
			}
			ov.Field(f.index).SetInt(cur)
		}
	}
	return out
}

// PublishStats registers the tag table's metrics under prefix and loads
// st into them: gauges are set, counters accumulate (publishing into a
// fresh prefix reproduces st exactly). parallel uses it for the merged
// run totals; the per-cycle path below uses the same table.
func PublishStats(reg *obs.Registry, prefix string, st Stats) {
	if reg == nil {
		return
	}
	sv := reflect.ValueOf(st)
	for _, f := range statFields() {
		v := sv.Field(f.index).Int()
		switch f.kind {
		case obs.KindCounter:
			reg.Counter(prefix + f.name).Add(v)
		case obs.KindGauge:
			reg.Gauge(prefix + f.name).Set(v)
		}
	}
}

// StatsFromRegistry reconstructs a Stats block from the metrics published
// under prefix, reporting ok = false when none are present. The harness
// sources its table columns from this instead of bespoke counters.
func StatsFromRegistry(reg *obs.Registry, prefix string) (st Stats, ok bool) {
	if reg == nil {
		return Stats{}, false
	}
	sv := reflect.ValueOf(&st).Elem()
	for _, f := range statFields() {
		p, found := reg.Get(prefix + f.name)
		if !found {
			continue
		}
		ok = true
		sv.Field(f.index).SetInt(p.Value)
	}
	return st, ok
}

// DefaultObsPrefix namespaces a simulator's metrics when Config.ObsPrefix
// is empty.
const DefaultObsPrefix = "csim."

// cycleNsBuckets is the fixed bucket layout of the per-cycle wall-clock
// histogram: 1 µs to ~4.3 s, ×4 per bucket.
var cycleNsBuckets = obs.ExpBuckets(1024, 4, 12)

// obsSink holds the registered metric handles of one simulator plus the
// previously flushed counter values; flush runs once per Cycle, so the
// per-event hot paths stay untouched. A nil *obsSink disables flushing.
type obsSink struct {
	reg       *obs.Registry
	prefix    string
	counters  []*obs.Counter // parallel to statFields; nil for gauges
	gauges    []*obs.Gauge   // parallel to statFields; nil for counters
	cycles    *obs.Counter
	cycleNs   *obs.Histogram
	queue     *obs.Gauge // roots scheduled during the last cycle
	live      *obs.Gauge // simulated faults not yet detected/dropped
	prev      Stats
	prevSched int
	numFaults int
}

// newObsSink registers the simulator's metric set under prefix.
func newObsSink(reg *obs.Registry, prefix string, numFaults int) *obsSink {
	sink := &obsSink{reg: reg, prefix: prefix, numFaults: numFaults}
	for _, f := range statFields() {
		switch f.kind {
		case obs.KindCounter:
			sink.counters = append(sink.counters, reg.Counter(prefix+f.name))
			sink.gauges = append(sink.gauges, nil)
		case obs.KindGauge:
			sink.counters = append(sink.counters, nil)
			sink.gauges = append(sink.gauges, reg.Gauge(prefix+f.name))
		}
	}
	sink.cycles = reg.Counter(prefix + "cycles")
	sink.cycleNs = reg.Histogram(prefix+"cycle_ns", cycleNsBuckets)
	sink.queue = reg.Gauge(prefix + "queue_depth")
	sink.live = reg.Gauge(prefix + "faults_live")
	sink.live.Set(int64(numFaults))
	return sink
}

// flush publishes the cycle's deltas: counters advance by cur-prev,
// gauges track the current value, and the worker-level gauges (queue
// depth, live faults) and the cycle histogram update.
func (sink *obsSink) flush(cur Stats, cycleTime time.Duration) {
	sv := reflect.ValueOf(cur)
	pv := reflect.ValueOf(sink.prev)
	for i, f := range statFields() {
		v := sv.Field(f.index).Int()
		if c := sink.counters[i]; c != nil {
			c.Add(v - pv.Field(f.index).Int())
		} else {
			sink.gauges[i].Set(v)
		}
	}
	sink.cycles.Inc()
	sink.cycleNs.Observe(cycleTime.Nanoseconds())
	sink.queue.Set(int64(cur.Scheds - sink.prevSched))
	sink.live.Set(int64(sink.numFaults - cur.Detections))
	sink.prevSched = cur.Scheds
	sink.prev = cur
}
