package csim

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// setStatFields fills every Stats field through the tag table with
// value(fieldIndex), so tests cover fields added later automatically.
func setStatFields(value func(i int) int64) Stats {
	var st Stats
	sv := reflect.ValueOf(&st).Elem()
	for _, f := range statFields() {
		sv.Field(f.index).SetInt(value(f.index))
	}
	return st
}

// TestMergeStatsCoversEveryField drives the generic merge over every
// Stats field: `sum` fields add, `max` fields keep the maximum, and — the
// regression the tag table exists for — no field comes back zero, which
// is what the old field-by-field summing did to fields added after it.
func TestMergeStatsCoversEveryField(t *testing.T) {
	a := setStatFields(func(i int) int64 { return int64(i + 1) })
	b := setStatFields(func(i int) int64 { return int64(10 * (i + 1)) })
	got := MergeStats(a, b)
	gv := reflect.ValueOf(got)
	for _, f := range statFields() {
		want := int64(11 * (f.index + 1)) // sum
		if f.policy == mergeMax {
			want = int64(10 * (f.index + 1))
		}
		if v := gv.Field(f.index).Int(); v != want {
			t.Errorf("field %s merged to %d, want %d",
				reflect.TypeOf(got).Field(f.index).Name, v, want)
		}
		if gv.Field(f.index).Int() == 0 {
			t.Errorf("field %s silently dropped by MergeStats",
				reflect.TypeOf(got).Field(f.index).Name)
		}
	}
}

// TestStatsTagTableComplete asserts the tag table spans the whole struct:
// statFields panics on an untagged field, and every field must be listed
// exactly once.
func TestStatsTagTableComplete(t *testing.T) {
	fields := statFields()
	if want := reflect.TypeOf(Stats{}).NumField(); len(fields) != want {
		t.Fatalf("tag table has %d entries, Stats has %d fields", len(fields), want)
	}
	seen := map[int]bool{}
	names := map[string]bool{}
	for _, f := range fields {
		if seen[f.index] || names[f.name] {
			t.Fatalf("duplicate tag table entry: %+v", f)
		}
		seen[f.index] = true
		names[f.name] = true
	}
}

// TestPublishStatsRoundTrip checks registry publication and read-back
// reproduce the struct exactly, for every field.
func TestPublishStatsRoundTrip(t *testing.T) {
	st := setStatFields(func(i int) int64 { return int64(100 + i) })
	reg := obs.NewRegistry()
	PublishStats(reg, "x.", st)
	got, ok := StatsFromRegistry(reg, "x.")
	if !ok {
		t.Fatalf("StatsFromRegistry found nothing under the published prefix")
	}
	if got != st {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
	if _, ok := StatsFromRegistry(reg, "other."); ok {
		t.Fatalf("StatsFromRegistry invented metrics under an unused prefix")
	}
	if _, ok := StatsFromRegistry(nil, "x."); ok {
		t.Fatalf("nil registry must report ok=false")
	}
}

// TestObservedRunMatchesStats runs s27 with the full observability layer
// attached and checks (a) the registry agrees with the Stats facade,
// (b) the macro-extract phase span was recorded, and (c) the fault
// lifecycle log saw the whole arc — injection through detection and drop
// — for a detected fault.
func TestObservedRunMatchesStats(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckCollapsed(c)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	flog := obs.NewFaultLog(len(u.Faults), nil, 0)
	cfg := MV()
	cfg.Obs = &obs.Observer{Metrics: reg, Tracer: tr, Faults: flog}

	sim, err := New(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(vectors.Random(c, 64, 7))
	if res.NumDet == 0 {
		t.Fatalf("expected detections on s27")
	}

	// Registry mirrors the Stats facade after the last cycle's flush.
	st := sim.Stats()
	got, ok := StatsFromRegistry(reg, DefaultObsPrefix)
	if !ok {
		t.Fatalf("no metrics registered under %q", DefaultObsPrefix)
	}
	if got != st {
		t.Fatalf("registry disagrees with Stats facade:\n reg %+v\n sim %+v", got, st)
	}
	if p, ok := reg.Get(DefaultObsPrefix + "cycles"); !ok || p.Value != 64 {
		t.Fatalf("cycles counter = %+v, want 64", p)
	}
	if p, ok := reg.Get(DefaultObsPrefix + "cycle_ns"); !ok || p.Count != 64 {
		t.Fatalf("cycle_ns histogram count = %+v, want 64", p)
	}
	if p, ok := reg.Get(DefaultObsPrefix + "faults_live"); !ok ||
		p.Value != int64(len(u.Faults)-st.Detections) {
		t.Fatalf("faults_live = %+v, want %d", p, len(u.Faults)-st.Detections)
	}

	// Phase spans: macro extraction inside New, duration counter in the
	// registry.
	if durs := tr.PhaseDurations(); durs["macro-extract"] <= 0 {
		t.Fatalf("macro-extract span missing: %v", durs)
	}

	// Fault lifecycle: pick a detected fault and demand its full arc.
	events, _ := flog.Events()
	var target int32 = -1
	for i, d := range res.Detected {
		if d {
			target = int32(i)
			break
		}
	}
	saw := map[obs.FaultEventKind]bool{}
	for _, ev := range events {
		if ev.Fault == target {
			saw[ev.Kind] = true
		}
	}
	for _, kind := range []obs.FaultEventKind{
		obs.FaultInjected, obs.FaultDiverged, obs.FaultVisible,
		obs.FaultDetected, obs.FaultDropped,
	} {
		if !saw[kind] {
			t.Errorf("detected fault %d missing lifecycle event %q (saw %v)", target, kind, saw)
		}
	}
}

// TestObservedRunIsBitIdentical guards the observer against Heisenberg
// effects: attaching the full observability layer must not change a
// single detection.
func TestObservedRunIsBitIdentical(t *testing.T) {
	for _, tc := range testCircuits {
		c := mustParse(t, tc.name, tc.text)
		u := faults.StuckCollapsed(c)
		vs := vectors.Random(c, 48, 3)

		plain, err := New(u, MV())
		if err != nil {
			t.Fatal(err)
		}
		resPlain := plain.Run(vs)

		cfg := MV()
		cfg.Obs = &obs.Observer{
			Metrics: obs.NewRegistry(),
			Tracer:  obs.NewTracer(nil),
			Faults:  obs.NewFaultLog(len(u.Faults), nil, 0),
		}
		observed, err := New(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resObs := observed.Run(vs)

		if diff := resPlain.Diff(resObs); diff != "" {
			t.Fatalf("%s: observability changed the result:\n%s", tc.name, diff)
		}
		if plain.Stats() != observed.Stats() {
			t.Fatalf("%s: observability changed the counters:\n plain %+v\n obs   %+v",
				tc.name, plain.Stats(), observed.Stats())
		}
	}
}
