package csim

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// This file is the vector-sharding state API behind csim-V2 (see
// internal/parallel and DESIGN.md §11). The only per-fault state that
// crosses a clock boundary in the concurrent method is (a) the fault's
// divergent flip-flop elements after the clock edge, (b) a transition
// fault's previous-cycle driver value, and (c) the dropped flag (owned by
// the window merge, which freezes detected faults). Everything
// combinational is a derived cache that a warm-started simulator
// re-establishes by evaluating every macro once on its first cycle — the
// same full sweep a fresh simulator performs anyway. A SeqState captures
// exactly (a) and (b) in a canonical, arena-independent form, so window
// runs can be warm-started, compared, and spliced.

// FFElem is one divergent flip-flop element of a SeqState: fault Fault's
// machine holds Val at flip-flop DFF while the good machine holds the
// traced value. SeqState keeps FFElems sorted by (Fault, DFF).
type FFElem struct {
	Fault int32
	DFF   netlist.GateID
	Val   logic.V
}

// DriverVal is one transition fault's previous-cycle driver value.
// SeqState keeps DriverVals sorted by Fault, one entry per live
// transition fault of the covered subset.
type DriverVal struct {
	Fault int32
	Val   logic.V
}

// SeqState is the cross-cycle faulty-machine state of a fault subset at a
// clock boundary: which machines hold divergent flip-flop values, and the
// per-transition-fault driver history. Boundary b is the state entering
// cycle b (after cycle b-1's clock edge); b = 0 is the initial all-X
// state, which has no elements and all-X drivers.
type SeqState struct {
	Boundary int
	FF       []FFElem
	Drivers  []DriverVal
}

// CaptureSeqState snapshots the simulator's sequential state at the
// current clock boundary (call between Cycles). Dropped faults are
// omitted: the window merge freezes them, so their state is never used
// again.
func (s *Simulator) CaptureSeqState() *SeqState {
	st := &SeqState{Boundary: s.vecIndex}
	for _, ff := range s.c.DFFs {
		for idx := s.vis[ff]; s.arena[idx].fault < s.sentinel; idx = s.arena[idx].next {
			f := s.arena[idx].fault
			if s.dropped[f] {
				continue
			}
			st.FF = append(st.FF, FFElem{Fault: f, DFF: ff, Val: s.arena[idx].word.Out()})
		}
	}
	sort.Slice(st.FF, func(i, j int) bool {
		if st.FF[i].Fault != st.FF[j].Fault {
			return st.FF[i].Fault < st.FF[j].Fault
		}
		return st.FF[i].DFF < st.FF[j].DFF
	})
	if s.prevDriver != nil {
		s.forEachSimFault(func(id int32) {
			if s.dropped[id] || s.u.Faults[id].Kind.Stuck() {
				return
			}
			st.Drivers = append(st.Drivers, DriverVal{Fault: id, Val: s.prevDriver[id]})
		})
	}
	return st
}

// forEachSimFault visits the simulated fault IDs in increasing order.
func (s *Simulator) forEachSimFault(fn func(id int32)) {
	if s.ids == nil {
		for i := range s.u.Faults {
			fn(int32(i))
		}
		return
	}
	for _, id := range s.ids {
		fn(id)
	}
}

// ExpectedSeqState derives, from the recorded good trace alone, the
// sequential state every fault in ids would hold at boundary b if its
// machine is clean there — no divergent flip-flops latched from earlier
// cycles. Faults sited on a flip-flop re-diverge locally at every clock
// edge, so their boundary elements and driver history follow directly
// from the traced D values; all other faults are state-free when clean.
// ids nil means the whole universe. The window engine warm-starts its
// speculative runs from this state and repairs the faults for which the
// exact state (CaptureSeqState of the previous window) disagrees.
func ExpectedSeqState(u *faults.Universe, tr *goodsim.Trace, b int, ids []int32) *SeqState {
	if b < 0 || b > tr.Cycles() {
		panic(fmt.Sprintf("csim: expected state at boundary %d outside trace of %d cycles", b, tr.Cycles()))
	}
	c := u.Circuit
	st := &SeqState{Boundary: b}
	add := func(id int32) {
		f := &u.Faults[id]
		g := c.Gate(f.Gate)
		isDFF := g.Op == logic.OpDFF
		if !f.Kind.Stuck() {
			// Transition fault: driver = the faulted pin's pre-injection
			// value at the machine's last evaluation, which for a clean
			// machine is the good value of the driving gate at cycle b-1.
			// The trace records every gate (macro interiors included), so
			// this holds for macro-internal sites too.
			dv := logic.X
			if b > 0 {
				dv = tr.At(b-1, c.Gate(f.Gate).Fanin[f.Pin])
			}
			st.Drivers = append(st.Drivers, DriverVal{Fault: id, Val: dv})
		}
		if !isDFF || b == 0 {
			return
		}
		// Flip-flop-sited faults re-assert at every clock edge
		// (cycle.go clock(), the isLocal cases), so their boundary
		// element is a pure function of the traced D values.
		d := g.Fanin[0]
		goodQ := tr.At(b-1, d)
		var q logic.V
		switch {
		case f.Kind.Stuck():
			q = f.Kind.StuckValue()
		default: // transition fault on the D pin
			pv := logic.X
			if b >= 2 {
				pv = tr.At(b-2, d)
			}
			q = faults.TransitionFV(f.Kind, pv, goodQ)
		}
		if q != goodQ {
			st.FF = append(st.FF, FFElem{Fault: id, DFF: f.Gate, Val: q})
		}
	}
	if ids == nil {
		for i := range u.Faults {
			add(int32(i))
		}
	} else {
		for _, id := range ids {
			add(id)
		}
	}
	// add emits in increasing fault order with one DFF per fault, so both
	// slices are already canonically sorted.
	return st
}

// StartWindow positions a freshly constructed simulator at clock boundary
// b with the given sequential state: good flip-flop values come from the
// attached good trace, the state's elements are installed on their
// flip-flops, and driver histories are restored. The simulator must have
// a good trace attached (SetGoodTrace) and must not have simulated yet;
// subsequent Cycle calls consume vectors b, b+1, ... and report
// detections at absolute vector indices. The first cycle after a warm
// start evaluates every macro once (exactly like a cold start), which
// re-derives all combinational fault elements from the installed
// sequential state.
func (s *Simulator) StartWindow(b int, st *SeqState) error {
	if !s.firstCycle || s.vecIndex != 0 || s.stats.CurElems != 0 {
		return fmt.Errorf("csim: StartWindow requires a fresh simulator")
	}
	if s.goodTrace == nil {
		return fmt.Errorf("csim: StartWindow requires a good trace (SetGoodTrace)")
	}
	if b < 0 || b > s.goodTrace.Cycles() {
		return fmt.Errorf("csim: window boundary %d outside the recorded trace (%d cycles)", b, s.goodTrace.Cycles())
	}
	if st.Boundary != b {
		return fmt.Errorf("csim: state is for boundary %d, window starts at %d", st.Boundary, b)
	}
	s.vecIndex = b
	if b > 0 {
		for _, ff := range s.c.DFFs {
			s.goodVal[ff] = s.goodTrace.At(b-1, s.c.Gate(ff).Fanin[0])
		}
	}
	// Install the divergent flip-flop elements. st.FF is sorted by
	// (Fault, DFF), so the per-DFF sublists arrive in increasing fault
	// order — the invariant every arena list keeps.
	builders := make(map[netlist.GateID]*listBuilder)
	for i, e := range st.FF {
		if i > 0 {
			p := st.FF[i-1]
			if e.Fault < p.Fault || (e.Fault == p.Fault && e.DFF <= p.DFF) {
				return fmt.Errorf("csim: StartWindow state not sorted by (fault, dff)")
			}
		}
		if e.Fault < 0 || e.Fault >= s.sentinel {
			return fmt.Errorf("csim: StartWindow fault %d outside universe", e.Fault)
		}
		if !s.simulatesFault(e.Fault) {
			return fmt.Errorf("csim: StartWindow fault %d not in this partition", e.Fault)
		}
		if s.c.Gate(e.DFF).Op != logic.OpDFF {
			return fmt.Errorf("csim: StartWindow gate %d is not a flip-flop", e.DFF)
		}
		nb, ok := builders[e.DFF]
		if !ok {
			b := newListBuilder()
			nb = &b
			builders[e.DFF] = nb
		}
		nb.append(s, s.alloc(e.Fault, logic.PackWord(nil, e.Val), 0))
	}
	for _, ff := range s.c.DFFs {
		if nb, ok := builders[ff]; ok {
			s.vis[ff] = nb.finish(s)
			// Mark the divergence as an event so the first settle pulls
			// the installed elements into the fanout.
			s.notify(ff)
		}
	}
	for _, dv := range st.Drivers {
		if dv.Fault < 0 || dv.Fault >= s.sentinel {
			return fmt.Errorf("csim: StartWindow driver fault %d outside universe", dv.Fault)
		}
		if s.prevDriver == nil {
			return fmt.Errorf("csim: StartWindow driver state for a partition without transition faults")
		}
		s.prevDriver[dv.Fault] = dv.Val
	}
	return nil
}

// simulatesFault reports whether id is in this simulator's fault subset.
func (s *Simulator) simulatesFault(id int32) bool {
	if s.ids == nil {
		return true
	}
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// DiffSeqStates returns, sorted, the faults whose sequential state
// differs between the two states at the same boundary — the faults whose
// speculative window run started from the wrong state and must be
// repaired. skip, when non-nil, excludes faults (the frozen, already
// detected ones) from the comparison.
func DiffSeqStates(exact, expected *SeqState, skip func(int32) bool) []int32 {
	if exact.Boundary != expected.Boundary {
		panic(fmt.Sprintf("csim: diffing states at boundaries %d and %d", exact.Boundary, expected.Boundary))
	}
	dirty := make(map[int32]bool)
	mark := func(f int32) {
		if skip == nil || !skip(f) {
			dirty[f] = true
		}
	}
	a, b := exact.FF, expected.FF
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && (a[i].Fault < b[j].Fault ||
			(a[i].Fault == b[j].Fault && a[i].DFF < b[j].DFF))):
			mark(a[i].Fault)
			i++
		case i >= len(a) || b[j].Fault < a[i].Fault ||
			(b[j].Fault == a[i].Fault && b[j].DFF < a[i].DFF):
			mark(b[j].Fault)
			j++
		default: // same (fault, dff)
			if a[i].Val != b[j].Val {
				mark(a[i].Fault)
			}
			i++
			j++
		}
	}
	da, db := exact.Drivers, expected.Drivers
	i, j = 0, 0
	for i < len(da) || j < len(db) {
		switch {
		case j >= len(db) || (i < len(da) && da[i].Fault < db[j].Fault):
			mark(da[i].Fault)
			i++
		case i >= len(da) || db[j].Fault < da[i].Fault:
			mark(db[j].Fault)
			j++
		default:
			if da[i].Val != db[j].Val {
				mark(da[i].Fault)
			}
			i++
			j++
		}
	}
	out := make([]int32, 0, len(dirty))
	for f := range dirty {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Restrict returns the sub-state covering only the given sorted fault
// IDs.
func (st *SeqState) Restrict(ids []int32) *SeqState {
	in := make(map[int32]bool, len(ids))
	for _, id := range ids {
		in[id] = true
	}
	out := &SeqState{Boundary: st.Boundary}
	for _, e := range st.FF {
		if in[e.Fault] {
			out.FF = append(out.FF, e)
		}
	}
	for _, d := range st.Drivers {
		if in[d.Fault] {
			out.Drivers = append(out.Drivers, d)
		}
	}
	return out
}

// SpliceSeqState builds the exact state at a boundary from a speculative
// run's capture and a repair run's capture: faults in dirty (sorted) take
// their state from repair, everything else from spec. omit, when non-nil,
// drops faults (the frozen ones) from the result entirely.
func SpliceSeqState(spec, repair *SeqState, dirty []int32, omit func(int32) bool) *SeqState {
	if repair != nil && repair.Boundary != spec.Boundary {
		panic(fmt.Sprintf("csim: splicing states at boundaries %d and %d", spec.Boundary, repair.Boundary))
	}
	in := make(map[int32]bool, len(dirty))
	for _, id := range dirty {
		in[id] = true
	}
	keepSpec := func(f int32) bool { return !in[f] && (omit == nil || !omit(f)) }
	keepRep := func(f int32) bool { return in[f] && (omit == nil || !omit(f)) }
	out := &SeqState{Boundary: spec.Boundary}
	var rff []FFElem
	var rdv []DriverVal
	if repair != nil {
		rff, rdv = repair.FF, repair.Drivers
	}
	i, j := 0, 0
	for i < len(spec.FF) || j < len(rff) {
		var takeSpec bool
		switch {
		case i >= len(spec.FF):
			takeSpec = false
		case j >= len(rff):
			takeSpec = true
		default:
			a, b := spec.FF[i], rff[j]
			takeSpec = a.Fault < b.Fault || (a.Fault == b.Fault && a.DFF < b.DFF)
		}
		if takeSpec {
			if keepSpec(spec.FF[i].Fault) {
				out.FF = append(out.FF, spec.FF[i])
			}
			i++
		} else {
			if keepRep(rff[j].Fault) {
				out.FF = append(out.FF, rff[j])
			}
			j++
		}
	}
	i, j = 0, 0
	for i < len(spec.Drivers) || j < len(rdv) {
		var takeSpec bool
		switch {
		case i >= len(spec.Drivers):
			takeSpec = false
		case j >= len(rdv):
			takeSpec = true
		default:
			takeSpec = spec.Drivers[i].Fault < rdv[j].Fault
		}
		if takeSpec {
			if keepSpec(spec.Drivers[i].Fault) {
				out.Drivers = append(out.Drivers, spec.Drivers[i])
			}
			i++
		} else {
			if keepRep(rdv[j].Fault) {
				out.Drivers = append(out.Drivers, rdv[j])
			}
			j++
		}
	}
	return out
}
