package csim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/goodsim"
	"repro/internal/logic"
	"repro/internal/vectors"
)

func windowCircuit(t *testing.T, seed int64) (*faults.Universe, *faults.Universe, *vectors.Set) {
	t.Helper()
	c, err := gen.Generate(gen.Spec{
		Name: fmt.Sprintf("win%d", seed),
		PIs:  5, POs: 4, DFFs: 8, Gates: 90, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return faults.StuckCollapsed(c), faults.Transition(c), vectors.Random(c, 50, seed)
}

// TestExpectedSeqStateBoundaryZero: boundary 0 is the initial all-X
// state — no divergent flip-flops, all-X driver history.
func TestExpectedSeqStateBoundaryZero(t *testing.T) {
	stuck, trans, vs := windowCircuit(t, 7100)
	trace := goodsim.Record(stuck.Circuit, vs.Vecs)
	st := ExpectedSeqState(stuck, trace, 0, nil)
	if len(st.FF) != 0 || len(st.Drivers) != 0 {
		t.Errorf("stuck boundary-0 state not empty: %d elems, %d drivers", len(st.FF), len(st.Drivers))
	}
	tt := ExpectedSeqState(trans, trace, 0, nil)
	if len(tt.FF) != 0 {
		t.Errorf("transition boundary-0 state has %d elems", len(tt.FF))
	}
	nt := 0
	for i := range trans.Faults {
		if !trans.Faults[i].Kind.Stuck() {
			nt++
		}
	}
	if len(tt.Drivers) != nt {
		t.Errorf("boundary-0 drivers cover %d faults, universe has %d transition faults", len(tt.Drivers), nt)
	}
	for _, d := range tt.Drivers {
		if d.Val != logic.X {
			t.Errorf("boundary-0 driver for fault %d is %v, want X", d.Fault, d.Val)
		}
	}
}

// TestStartWindowZeroEqualsColdStart: warm-starting at boundary 0 from
// the expected (empty) state is exactly a cold trace-replay start.
func TestStartWindowZeroEqualsColdStart(t *testing.T) {
	for _, model := range []string{"stuck", "transition"} {
		stuck, trans, vs := windowCircuit(t, 7200)
		u := stuck
		if model == "transition" {
			u = trans
		}
		trace := goodsim.Record(u.Circuit, vs.Vecs)

		cold, err := New(u, MV())
		if err != nil {
			t.Fatal(err)
		}
		if err := cold.SetGoodTrace(trace); err != nil {
			t.Fatal(err)
		}
		cold.Run(vs)

		warm, err := New(u, MV())
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.SetGoodTrace(trace); err != nil {
			t.Fatal(err)
		}
		if err := warm.StartWindow(0, ExpectedSeqState(u, trace, 0, nil)); err != nil {
			t.Fatal(err)
		}
		warm.Run(vs)

		if !reflect.DeepEqual(cold.Checkpoint(), warm.Checkpoint()) {
			t.Errorf("%s: boundary-0 warm start differs from cold start", model)
		}
	}
}

// TestCaptureSeqStateCanonical: captures are sorted by (fault, dff) /
// fault, contain no dropped faults, and agree with the simulator's
// flip-flop lists.
func TestCaptureSeqStateCanonical(t *testing.T) {
	_, trans, vs := windowCircuit(t, 7300)
	sim, err := New(trans, MV())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		sim.Cycle(vs.Vecs[i])
	}
	st := sim.CaptureSeqState()
	if st.Boundary != 30 {
		t.Fatalf("boundary %d, want 30", st.Boundary)
	}
	if !sort.SliceIsSorted(st.FF, func(i, j int) bool {
		if st.FF[i].Fault != st.FF[j].Fault {
			return st.FF[i].Fault < st.FF[j].Fault
		}
		return st.FF[i].DFF < st.FF[j].DFF
	}) {
		t.Error("FF elements not sorted by (fault, dff)")
	}
	if !sort.SliceIsSorted(st.Drivers, func(i, j int) bool {
		return st.Drivers[i].Fault < st.Drivers[j].Fault
	}) {
		t.Error("drivers not sorted by fault")
	}
	res := sim.Result()
	for _, e := range st.FF {
		if res.Detected[e.Fault] {
			t.Errorf("captured element for dropped fault %d", e.Fault)
		}
	}
	for _, d := range st.Drivers {
		if res.Detected[d.Fault] {
			t.Errorf("captured driver for dropped fault %d", d.Fault)
		}
		if trans.Faults[d.Fault].Kind.Stuck() {
			t.Errorf("driver entry for stuck fault %d", d.Fault)
		}
	}
}

// TestStartWindowValidation: the warm-start API must reject misuse.
func TestStartWindowValidation(t *testing.T) {
	stuck, _, vs := windowCircuit(t, 7400)
	trace := goodsim.Record(stuck.Circuit, vs.Vecs)
	empty := &SeqState{Boundary: 10}

	sim, err := New(stuck, MV())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.StartWindow(10, empty); err == nil {
		t.Error("StartWindow without a good trace must fail")
	}
	if err := sim.SetGoodTrace(trace); err != nil {
		t.Fatal(err)
	}
	if err := sim.StartWindow(3, empty); err == nil {
		t.Error("StartWindow at a mismatched boundary must fail")
	}
	if err := sim.StartWindow(vs.Len()+1, &SeqState{Boundary: vs.Len() + 1}); err == nil {
		t.Error("StartWindow beyond the trace must fail")
	}
	if err := sim.StartWindow(10, empty); err != nil {
		t.Fatalf("valid StartWindow failed: %v", err)
	}
	sim.Cycle(vs.Vecs[10])
	if err := sim.StartWindow(10, empty); err == nil {
		t.Error("StartWindow on a used simulator must fail")
	}
}

// TestDiffSeqStates: the dirty set is exactly the faults whose element
// multisets or driver values differ, with frozen faults excluded.
func TestDiffSeqStates(t *testing.T) {
	a := &SeqState{
		Boundary: 5,
		FF: []FFElem{
			{Fault: 1, DFF: 10, Val: logic.One},
			{Fault: 2, DFF: 11, Val: logic.Zero},
			{Fault: 4, DFF: 10, Val: logic.X},
		},
		Drivers: []DriverVal{{Fault: 7, Val: logic.One}, {Fault: 9, Val: logic.X}},
	}
	b := &SeqState{
		Boundary: 5,
		FF: []FFElem{
			{Fault: 1, DFF: 10, Val: logic.One},  // identical → clean
			{Fault: 2, DFF: 11, Val: logic.One},  // value differs → dirty
			{Fault: 3, DFF: 12, Val: logic.Zero}, // only in b → dirty
			// fault 4 only in a → dirty
		},
		Drivers: []DriverVal{{Fault: 7, Val: logic.Zero}, {Fault: 9, Val: logic.X}},
	}
	got := DiffSeqStates(a, b, nil)
	want := []int32{2, 3, 4, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dirty = %v, want %v", got, want)
	}
	got = DiffSeqStates(a, b, func(f int32) bool { return f == 3 || f == 7 })
	want = []int32{2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dirty with skip = %v, want %v", got, want)
	}
	if d := DiffSeqStates(a, a, nil); len(d) != 0 {
		t.Errorf("self-diff = %v, want empty", d)
	}
}

// TestSpliceSeqState: dirty faults come from the repair state, the rest
// from the speculative state, omitted faults from neither — and the
// result stays sorted.
func TestSpliceSeqState(t *testing.T) {
	spec := &SeqState{
		Boundary: 8,
		FF: []FFElem{
			{Fault: 1, DFF: 10, Val: logic.One},
			{Fault: 2, DFF: 11, Val: logic.Zero}, // dirty: replaced by repair
			{Fault: 5, DFF: 12, Val: logic.X},    // frozen: omitted
		},
		Drivers: []DriverVal{{Fault: 2, Val: logic.Zero}, {Fault: 6, Val: logic.One}},
	}
	repair := &SeqState{
		Boundary: 8,
		FF: []FFElem{
			{Fault: 2, DFF: 10, Val: logic.One},
			{Fault: 2, DFF: 11, Val: logic.One},
		},
		Drivers: []DriverVal{{Fault: 2, Val: logic.One}},
	}
	got := SpliceSeqState(spec, repair, []int32{2}, func(f int32) bool { return f == 5 })
	want := &SeqState{
		Boundary: 8,
		FF: []FFElem{
			{Fault: 1, DFF: 10, Val: logic.One},
			{Fault: 2, DFF: 10, Val: logic.One},
			{Fault: 2, DFF: 11, Val: logic.One},
		},
		Drivers: []DriverVal{{Fault: 2, Val: logic.One}, {Fault: 6, Val: logic.One}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splice = %+v, want %+v", got, want)
	}
	// No repair: spec minus omitted.
	got = SpliceSeqState(spec, nil, nil, func(f int32) bool { return f == 5 })
	if len(got.FF) != 2 || got.FF[0].Fault != 1 || got.FF[1].Fault != 2 {
		t.Errorf("repair-free splice = %+v", got)
	}
}

// TestRestrict keeps only the listed faults.
func TestRestrict(t *testing.T) {
	st := &SeqState{
		Boundary: 3,
		FF:       []FFElem{{Fault: 1, DFF: 4, Val: logic.One}, {Fault: 2, DFF: 4, Val: logic.Zero}},
		Drivers:  []DriverVal{{Fault: 1, Val: logic.X}, {Fault: 3, Val: logic.One}},
	}
	r := st.Restrict([]int32{1})
	if len(r.FF) != 1 || r.FF[0].Fault != 1 || len(r.Drivers) != 1 || r.Drivers[0].Fault != 1 {
		t.Errorf("restrict = %+v", r)
	}
	if r.Boundary != 3 {
		t.Errorf("restrict lost the boundary: %d", r.Boundary)
	}
}
