// Package deductive implements Armstrong's deductive fault simulation
// (reference [1] of the paper) for two-valued combinational circuits. The
// paper's concurrent simulator deliberately adopts this method's
// simplicity — one flat fault list per gate — while fixing its
// restrictions; the deductive simulator is kept as the historical baseline
// and as an independent cross-check on combinational circuits.
//
// Per vector, each gate carries the set of faults whose presence would
// complement the gate's output. The lists are deduced level by level with
// the classic set algebra: with S the controlling-value inputs of a gate,
//
//	S empty:    L_out = union of all input lists (+ local faults)
//	S nonempty: L_out = intersection over S minus union over the others
//
// XOR gates use the odd-parity (symmetric difference) rule. Faults
// appearing in a primary output's list are detected.
package deductive

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// Simulate runs deductive fault simulation over a two-valued combinational
// workload: the circuit must have no flip-flops, and every vector must be
// fully binary.
func Simulate(u *faults.Universe, vs *vectors.Set) (*faults.Result, error) {
	c := u.Circuit
	if len(c.DFFs) != 0 {
		return nil, fmt.Errorf("deductive: %s is sequential; deductive simulation here is combinational-only", c.Name)
	}
	for i := range u.Faults {
		if !u.Faults[i].Kind.Stuck() {
			return nil, fmt.Errorf("deductive: fault %d is not stuck-at", i)
		}
	}
	res := faults.NewResult(u)

	// Faults indexed by site for local-fault injection.
	outFaults := make([][]int32, len(c.Gates))            // by gate
	pinFaults := make(map[[2]int32][]int32, len(c.Gates)) // by (gate,pin)
	for i := range u.Faults {
		f := &u.Faults[i]
		if f.Pin == faults.OutPin {
			outFaults[f.Gate] = append(outFaults[f.Gate], f.ID)
		} else {
			key := [2]int32{int32(f.Gate), int32(f.Pin)}
			pinFaults[key] = append(pinFaults[key], f.ID)
		}
	}

	val := make([]logic.V, len(c.Gates))
	lists := make([][]int32, len(c.Gates))

	for t, vec := range vs.Vecs {
		for _, v := range vec {
			if !v.Binary() {
				return nil, fmt.Errorf("deductive: vector %d contains X", t)
			}
		}
		for i, pi := range c.PIs {
			val[pi] = vec[i]
			// A PI line list holds its own output faults with the opposite
			// polarity.
			lists[pi] = activated(outFaults[pi], u, vec[i])
		}
		for _, lv := range c.Levels {
			for _, id := range lv {
				val[id], lists[id] = deduce(c, u, id, val, lists, pinFaults, outFaults)
			}
		}
		for _, po := range c.POs {
			for _, f := range lists[po] {
				res.Detect(f, t)
			}
		}
	}
	return res, nil
}

// activated filters site faults to those whose stuck value differs from
// the good value (the fault complements the line).
func activated(ids []int32, u *faults.Universe, good logic.V) []int32 {
	var out []int32
	for _, id := range ids {
		if u.Faults[id].Kind.StuckValue() != good {
			out = append(out, id)
		}
	}
	return out
}

// deduce computes a gate's good value and fault list from its fanin lists.
func deduce(c *netlist.Circuit, u *faults.Universe, id netlist.GateID,
	val []logic.V, lists [][]int32,
	pinFaults map[[2]int32][]int32, outFaults [][]int32) (logic.V, []int32) {

	g := c.Gate(id)
	n := len(g.Fanin)
	inVals := make([]logic.V, n)
	// Effective per-pin lists: the fanin list plus this gate's own
	// input-pin faults that complement the pin.
	inLists := make([][]int32, n)
	for j, f := range g.Fanin {
		inVals[j] = val[f]
		pl := lists[f]
		for _, fid := range pinFaults[[2]int32{int32(id), int32(j)}] {
			if u.Faults[fid].Kind.StuckValue() != inVals[j] {
				pl = union(pl, []int32{fid})
			} else {
				// A stuck-at matching the good pin value pins the line:
				// upstream effects cannot flip this pin for that machine.
				pl = subtract(pl, []int32{fid})
			}
		}
		inLists[j] = pl
	}
	good := logic.Eval(g.Op, inVals)

	var L []int32
	switch g.Op.Base() {
	case logic.OpXor:
		// Odd parity: a fault flips the output iff it flips an odd number
		// of inputs.
		for _, pl := range inLists {
			L = symDiff(L, pl)
		}
	case logic.OpBuf:
		L = inLists[0]
	default: // AND/OR families
		cv, _ := g.Op.Controlling()
		var ctl, non [][]int32
		for j := range inLists {
			if inVals[j] == cv {
				ctl = append(ctl, inLists[j])
			} else {
				non = append(non, inLists[j])
			}
		}
		if len(ctl) == 0 {
			for _, pl := range non {
				L = union(L, pl)
			}
		} else {
			L = ctl[0]
			for _, pl := range ctl[1:] {
				L = intersect(L, pl)
			}
			for _, pl := range non {
				L = subtract(L, pl)
			}
		}
	}
	// Local output faults: an activated one complements the output for its
	// machine regardless of the deduced list; a non-activated one pins the
	// output.
	for _, fid := range outFaults[id] {
		if u.Faults[fid].Kind.StuckValue() != good {
			L = union(L, []int32{fid})
		} else {
			L = subtract(L, []int32{fid})
		}
	}
	return good, L
}

// Sorted-set algebra over fault ID slices.

func union(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func subtract(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

func symDiff(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
