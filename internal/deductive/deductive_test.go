package deductive

import (
	"testing"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/serial"
	"repro/internal/vectors"
)

var combCircuits = []struct{ name, text string }{
	{"and", "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n"},
	{"c17ish", `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(z1)
OUTPUT(z2)
n1 = NAND(a, c)
n2 = NAND(c, d)
n3 = NAND(b, n2)
n4 = NAND(n2, e)
z1 = NAND(n1, n3)
z2 = NAND(n3, n4)
`},
	{"mixed", `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
OUTPUT(w)
i1 = NOT(a)
x1 = XOR(i1, b)
o1 = NOR(x1, c)
a1 = AND(x1, b, c)
z = OR(o1, a1)
w = XNOR(a1, c)
`},
	{"reconv", `
INPUT(a)
INPUT(b)
OUTPUT(z)
s = NOT(a)
p1 = AND(s, b)
p2 = OR(s, b)
z = XOR(p1, p2)
`},
}

func mustParse(t *testing.T, name, text string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMatchesSerial: deductive, serial, and concurrent simulation must
// report identical detections on binary combinational workloads.
func TestMatchesSerial(t *testing.T) {
	for _, tc := range combCircuits {
		c := mustParse(t, tc.name, tc.text)
		for _, uni := range []struct {
			name string
			u    *faults.Universe
		}{
			{"full", faults.StuckAll(c)},
			{"collapsed", faults.StuckCollapsed(c)},
		} {
			vs := vectors.Random(c, 100, int64(len(tc.name)))
			got, err := Simulate(uni.u, vs)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, uni.name, err)
			}
			want := serial.Simulate(uni.u, vs)
			if d := want.Diff(got); d != "" {
				t.Errorf("%s/%s: deductive disagrees with serial:\n%s", tc.name, uni.name, d)
			}
			for i := range want.DetectedAt {
				if want.DetectedAt[i] != got.DetectedAt[i] {
					t.Errorf("%s/%s: fault %s first detection %d vs serial %d",
						tc.name, uni.name, uni.u.Faults[i].Name(c),
						got.DetectedAt[i], want.DetectedAt[i])
					break
				}
			}
			sim, err := csim.New(uni.u, csim.MV())
			if err != nil {
				t.Fatal(err)
			}
			cres := sim.Run(vs)
			if d := cres.Diff(got); d != "" {
				t.Errorf("%s/%s: deductive disagrees with concurrent:\n%s", tc.name, uni.name, d)
			}
		}
	}
}

func TestExhaustiveVectorsFullCoverage(t *testing.T) {
	// On the NAND network, exhaustive binary vectors must detect every
	// irredundant fault; cross-check the count with serial.
	c := mustParse(t, "c17ish", combCircuits[1].text)
	u := faults.StuckCollapsed(c)
	vs := vectors.New(len(c.PIs))
	for pat := 0; pat < 1<<len(c.PIs); pat++ {
		vec := make([]int, len(c.PIs))
		row := ""
		for i := range vec {
			row += string(rune('0' + (pat>>i)&1))
		}
		parsed, err := vectors.ParseString(row+"\n", len(c.PIs))
		if err != nil {
			t.Fatal(err)
		}
		vs.Append(parsed.Vecs[0])
	}
	got, err := Simulate(u, vs)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Simulate(u, vs)
	if got.NumDet != want.NumDet {
		t.Errorf("deductive %d vs serial %d detections", got.NumDet, want.NumDet)
	}
	if got.Coverage() < 0.99 {
		t.Errorf("exhaustive coverage only %.2f; undetected:\n%s",
			got.Coverage(), diffList(got))
	}
}

func diffList(r *faults.Result) string {
	out := ""
	for i, d := range r.Detected {
		if !d {
			out += r.Universe.Faults[i].Name(r.Universe.Circuit) + "\n"
		}
	}
	return out
}

func TestRejectsSequential(t *testing.T) {
	c := mustParse(t, "ff", "INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = NOT(q)\n")
	if _, err := Simulate(faults.StuckAll(c), vectors.Random(c, 5, 1)); err == nil {
		t.Error("sequential circuit accepted")
	}
}

func TestRejectsXVectors(t *testing.T) {
	c := mustParse(t, "and", combCircuits[0].text)
	vs, err := vectors.ParseString("1X\n", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(faults.StuckAll(c), vs); err == nil {
		t.Error("X vector accepted")
	}
}

func TestRejectsTransitionFaults(t *testing.T) {
	c := mustParse(t, "and", combCircuits[0].text)
	if _, err := Simulate(faults.Transition(c), vectors.Random(c, 5, 1)); err == nil {
		t.Error("transition universe accepted")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := []int32{1, 3, 5, 7}
	b := []int32{3, 4, 7, 9}
	eq := func(x []int32, want ...int32) bool {
		if len(x) != len(want) {
			return false
		}
		for i := range x {
			if x[i] != want[i] {
				return false
			}
		}
		return true
	}
	if got := union(a, b); !eq(got, 1, 3, 4, 5, 7, 9) {
		t.Errorf("union = %v", got)
	}
	if got := intersect(a, b); !eq(got, 3, 7) {
		t.Errorf("intersect = %v", got)
	}
	if got := subtract(a, b); !eq(got, 1, 5) {
		t.Errorf("subtract = %v", got)
	}
	if got := symDiff(a, b); !eq(got, 1, 4, 5, 9) {
		t.Errorf("symDiff = %v", got)
	}
	if got := union(nil, nil); len(got) != 0 {
		t.Errorf("union(nil,nil) = %v", got)
	}
}
