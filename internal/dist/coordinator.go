package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/jobid"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/service"
)

// Coordinator fans admitted jobs out to a worker fleet. It implements
// service.JobRunner, so a csimd started with -coordinator plugs it
// into the ordinary server via service.Config.Runner and keeps the
// whole service tier — admission queue, retention, correlation IDs,
// job API, flight recorder — unchanged; only execution is replaced.
//
// Every distributed job runs as K fault-partition shards, each a
// csim-grid job with pinned shard coordinates on one worker. The
// detections payloads stream back and merge deterministically, so the
// final result is bit-identical to a local run regardless of worker
// count, shard placement, arrival order, or mid-job worker loss.
type Coordinator struct {
	cfg Config
	ob  *obs.Observer
	log *obs.Logger
	reg *registry

	cJobs       *obs.Counter
	cJobsFailed *obs.Counter
	cDispatched *obs.Counter
	cRequeued   *obs.Counter
	cShardFail  *obs.Counter
	cShardDone  *obs.Counter
	hMergeNS    *obs.Histogram
}

// mergeBuckets is the merge-latency histogram layout: 4 µs to ~4 s,
// ×4 per bucket.
var mergeBuckets = obs.ExpBuckets(4096, 4, 11)

// New builds a coordinator over a non-empty worker fleet and starts
// its health probers; Close stops them.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: coordinator needs at least one worker address")
	}
	cfg = cfg.withDefaults()
	reg := cfg.Obs.Registry()
	c := &Coordinator{
		cfg: cfg,
		ob:  cfg.Obs,
		log: cfg.Log,
		reg: newRegistry(cfg),

		cJobs:       reg.Counter("dist.jobs"),
		cJobsFailed: reg.Counter("dist.jobs_failed"),
		cDispatched: reg.Counter("dist.shards_dispatched"),
		cRequeued:   reg.Counter("dist.shards_requeued"),
		cShardFail:  reg.Counter("dist.shards_failed"),
		cShardDone:  reg.Counter("dist.shards_completed"),
		hMergeNS:    reg.Histogram("dist.merge_ns", mergeBuckets),
	}
	reg.Gauge("dist.workers").Set(int64(len(cfg.Workers)))
	return c, nil
}

// Close stops the health probers. In-flight RunJob calls are not
// interrupted (the server drains those through its own lifecycle).
func (c *Coordinator) Close() { c.reg.stopProbes() }

// Workers returns the configured worker addresses.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.reg.workers))
	for i, w := range c.reg.workers {
		out[i] = w.addr
	}
	return out
}

// RunJob distributes one admitted job across the fleet: plan the K×W
// split, dispatch shards with retry and re-queue, merge the streamed
// results. The coordinator-side state machine (pending → dispatched →
// merging → done/failed) is published through req.SetPhase, so it
// lands in the job view and the flight recorder.
func (c *Coordinator) RunJob(ctx context.Context, req *service.RunRequest) (*service.ResultView, error) {
	c.cJobs.Inc()
	req.SetPhase("pending")
	start := time.Now()

	u, err := req.CC.Universe(req.Spec.Model)
	if err != nil {
		return c.failJob(req, err)
	}
	vs, err := service.BuildVectors(req.Spec, req.CC)
	if err != nil {
		return c.failJob(req, err)
	}

	// Shape the split: explicit workers/windows pin K and W; otherwise
	// the scheduler decides against the fleet's dispatch capacity.
	k, w := req.Spec.Workers, req.Spec.Windows
	if k <= 0 && w <= 0 {
		shape := parallel.JobShape{
			Gates:    len(req.CC.Circuit.Gates),
			Faults:   u.NumFaults(),
			Vectors:  vs.Len(),
			MaxProcs: c.cfg.MaxProcs,
		}
		plan, why := parallel.Explain(shape)
		k, w = plan.FaultShards, plan.Windows
		req.Obs.Recorder().Recordf("decide", "dist plan %s (%s)", plan, why)
	}
	if k <= 0 {
		k = len(c.reg.workers)
	}
	if w <= 0 {
		w = 1
	}

	jlog := c.log.With(slog.String("job_id", req.ID))
	req.Obs.Recorder().Recordf("dispatch", "fanning %d fault shards x %d windows over %d workers",
		k, w, len(c.reg.workers))
	jlog.Info("dist job dispatching",
		slog.String("phase", "dispatch"),
		slog.Int("fault_shards", k),
		slog.Int("windows", w),
		slog.Int("workers", len(c.reg.workers)))
	req.SetPhase("dispatched")

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	m := newMerger(k)
	errCh := make(chan error, k)
	var wg sync.WaitGroup
	for shard := 0; shard < k; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			rv, err := c.runShard(jctx, req, shard, k, w)
			if err == nil {
				_, err = m.add(shard, rv)
			}
			if err != nil {
				errCh <- fmt.Errorf("shard %d/%d: %w", shard, k, err)
				cancel() // one lost shard fails the job; stop the rest
			}
		}(shard)
	}
	wg.Wait()
	close(errCh)
	if err := firstRealError(errCh); err != nil {
		// The job's own cancellation/timeout outranks the shard errors
		// it induced.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return c.failJob(req, ctxErr)
		}
		return c.failJob(req, err)
	}

	req.SetPhase("merging")
	t0 := time.Now()
	res, st, err := m.merge(u)
	if err != nil {
		return c.failJob(req, err)
	}
	c.hMergeNS.Observe(time.Since(t0).Nanoseconds())

	rv := &service.ResultView{
		Engine:   req.Spec.Engine,
		Circuit:  req.CC.Circuit.Name,
		Model:    req.Spec.Model,
		Patterns: vs.Len(),
		Faults:   u.NumFaults(),
		Workers:  k,
		Windows:  w,
		RunNS:    time.Since(start).Nanoseconds(),
		Detected: res.NumDet,
		PotOnly:  res.NumPotOnly(),
		Coverage: res.Coverage(),
		Stats:    service.NewStatsView(st),
	}
	if req.Spec.ReturnDetections {
		rv.Detections = service.NewDetectionsView(res)
	}
	req.SetPhase("done")
	return rv, nil
}

// failJob records a failed distributed job and passes the error up to
// the server's ordinary failure path.
func (c *Coordinator) failJob(req *service.RunRequest, err error) (*service.ResultView, error) {
	c.cJobsFailed.Inc()
	req.SetPhase("failed")
	return nil, err
}

// firstRealError drains a closed error channel preferring a
// non-cancellation error: the shard that actually failed, not the
// siblings it tore down.
func firstRealError(errCh chan error) error {
	var first error
	for err := range errCh {
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return first
}

// permanentError marks a shard failure no other worker can fix (the
// fleet rejected the spec itself); retrying elsewhere is pointless.
type permanentError struct{ err error }

// Error delegates to the wrapped error.
func (e *permanentError) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error.
func (e *permanentError) Unwrap() error { return e.err }

// runShard drives one shard to completion: pick a worker, attempt,
// and on retryable failure re-queue to a different worker with the
// failed one excluded, up to MaxAttempts. When exclusions cover the
// whole fleet with attempts still in hand, the slate is wiped — a
// previously failed worker may have recovered.
func (c *Coordinator) runShard(ctx context.Context, req *service.RunRequest, shard, of, windows int) (*service.ResultView, error) {
	spec := shardSpec(req.Spec, shard, of, windows, c.cfg.ShardTimeout)
	id := jobid.Shard(req.ID, shard, of, shardHash(req.CC.Key, spec))
	excluded := map[int]bool{}
	for attempt := 1; ; attempt++ {
		if len(excluded) >= len(c.reg.workers) {
			excluded = map[int]bool{}
		}
		w, err := c.reg.pick(ctx, excluded)
		if err != nil {
			return nil, err
		}
		c.cDispatched.Inc()
		rv, err := c.attemptShard(ctx, w, id, spec)
		c.reg.release(w)
		if err == nil {
			c.cShardDone.Inc()
			w.cDone.Inc()
			return rv, nil
		}
		w.cFailed.Inc()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			c.cShardFail.Inc()
			return nil, err
		}
		if attempt >= c.cfg.MaxAttempts {
			c.cShardFail.Inc()
			return nil, fmt.Errorf("failed on %d worker(s), last %s: %w", attempt, w.addr, err)
		}
		excluded[w.idx] = true
		c.cRequeued.Inc()
		req.Obs.Recorder().Recordf("requeue", "shard %d re-queued off %s after attempt %d: %v",
			shard, w.addr, attempt, err)
		c.log.Warn("dist shard requeued",
			slog.String("job_id", req.ID),
			slog.String("shard_id", id),
			slog.String("worker", w.addr),
			slog.Int("attempt", attempt),
			slog.String("error", err.Error()))
	}
}

// attemptShard runs one shard attempt against one worker under the
// shard timeout: submit (idempotent ID; 429 backoff with jitter;
// ship-once circuit resolution), then poll to a terminal state.
func (c *Coordinator) attemptShard(ctx context.Context, w *worker, id string, spec *service.JobSpec) (*service.ResultView, error) {
	actx, cancel := context.WithTimeout(obs.WithJobID(ctx, id), c.cfg.ShardTimeout)
	defer cancel()

	// Resolve the circuit reference for this worker: a suite circuit
	// travels by name; an inline netlist ships once, then goes by its
	// cache key.
	s := *spec
	inlineKey := ""
	if s.Bench != "" {
		inlineKey = service.InlineKey(s.Bench)
		if w.benchShipped(inlineKey) {
			s.BenchKey, s.Bench, s.BenchName = inlineKey, "", ""
		}
	}

	backoff := c.cfg.RetryBase
	var waited time.Duration
	for submitted := false; !submitted; {
		_, err := w.client.Submit(actx, s)
		var qf *service.QueueFullError
		var ae *service.APIError
		switch {
		case err == nil:
			submitted = true
		case errors.As(err, &ae) && ae.StatusCode == http.StatusConflict:
			// The idempotency key is live on this worker — an earlier
			// delivery of this very shard. Adopt it instead of duplicating.
			submitted = true
		case isBenchKeyMiss(err):
			// The worker evicted the circuit since we shipped it: forget
			// the key and resubmit with the inline text.
			w.clearShipped(s.BenchKey)
			s.Bench, s.BenchName = spec.Bench, spec.BenchName
			s.BenchKey = ""
		case errors.As(err, &qf):
			// Admission-full: exponential backoff with jitter, honoring the
			// worker's Retry-After when it asks for longer, bounded in
			// total by MaxRetryWait.
			d := backoff
			if qf.RetryAfter > d {
				d = qf.RetryAfter
			}
			d += time.Duration(rand.Int63n(int64(d)/2 + 1))
			if waited+d > c.cfg.MaxRetryWait {
				return nil, fmt.Errorf("submit: 429 backoff budget %s exhausted: %w", c.cfg.MaxRetryWait, err)
			}
			if err := sleepCtx(actx, d); err != nil {
				return nil, err
			}
			waited += d
			backoff *= 2
		case errors.As(err, &ae) && ae.StatusCode >= 500:
			// Server-side trouble (e.g. 503 from a draining worker mid
			// rolling restart): this worker can't take the shard, but
			// another can. Flag it and re-queue.
			c.reg.setHealth(w, false, err)
			return nil, fmt.Errorf("submit: %w", err)
		case errors.As(err, &ae):
			// Any other API-level rejection is a spec problem every worker
			// would agree on; fail the job rather than bounce the shard
			// around the fleet.
			return nil, &permanentError{err: fmt.Errorf("submit: %w", err)}
		default:
			// Transport error: the worker is gone. Flag it now (don't wait
			// for the prober) and let the shard re-queue elsewhere.
			c.reg.setHealth(w, false, err)
			return nil, fmt.Errorf("submit: %w", err)
		}
	}
	if s.Bench != "" && inlineKey != "" {
		w.markShipped(inlineKey)
	}

	v, err := w.client.Wait(actx, id, c.cfg.Poll)
	if err != nil {
		if actx.Err() != nil && ctx.Err() == nil {
			// Shard timeout (not job cancellation): best-effort cancel on
			// the worker so the re-queued copy doesn't compete with it.
			cctx, ccancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			_, _ = w.client.Cancel(cctx, id)
			ccancel()
			return nil, fmt.Errorf("shard timeout after %s on %s", c.cfg.ShardTimeout, w.addr)
		}
		var ae *service.APIError
		if !errors.As(err, &ae) && ctx.Err() == nil {
			c.reg.setHealth(w, false, err)
		}
		return nil, fmt.Errorf("wait: %w", err)
	}
	if v.Status != service.StatusDone {
		return nil, fmt.Errorf("worker %s reported %s: %s", w.addr, v.Status, v.Error)
	}
	if v.Result == nil || v.Result.Detections == nil {
		return nil, fmt.Errorf("worker %s returned no detections payload", w.addr)
	}
	return v.Result, nil
}

// shardSpec derives shard k-of-n's worker-facing spec from the parent
// job's: the grid engine with pinned shard coordinates, the full
// vector axis, and the detections payload switched on.
func shardSpec(parent *service.JobSpec, k, n, windows int, timeout time.Duration) *service.JobSpec {
	s := *parent
	s.Engine = "csim-grid"
	s.Workers = 0
	s.FaultShard, s.FaultShards = k, n
	s.Windows = windows
	s.ReturnDetections = true
	s.TimeoutMS = timeout.Milliseconds()
	return &s
}

// shardHash digests the work a shard spec describes — circuit
// identity, fault model, vector axis, and shard coordinates — into
// the idempotency-key fragment of the shard's job ID. Two dispatches
// of the same shard of the same job collide by construction, which is
// what arms the worker's 409-on-live-ID dedup.
func shardHash(circuitKey string, spec *service.JobSpec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d|s%dof%d|w%d",
		circuitKey, spec.Model, spec.Vectors, spec.Random, spec.Seed,
		spec.FaultShard, spec.FaultShards, spec.Windows)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// isBenchKeyMiss recognizes the worker's stable bench-key-miss 400.
func isBenchKeyMiss(err error) bool {
	var ae *service.APIError
	if !errors.As(err, &ae) {
		return false
	}
	for _, p := range ae.Problems {
		if p == service.BenchKeyMissProblem {
			return true
		}
	}
	return false
}

// sleepCtx sleeps for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
