// Package dist is the distributed tier of csimd: a coordinator that
// accepts jobs on the ordinary service API, splits each into
// fault-partition shards with the parallel scheduler's K×W verdict,
// fans the shards out to a fleet of worker csimd nodes over the same
// HTTP/JSON job API, and merges the streamed-back shard results with
// the deterministic first-detection-wins merge the in-process grid
// already uses. Because parallel.Partition is a pure function of
// (universe, K), every node agrees on shard contents, and
// faults.MergeResults over the K shard payloads is bit-identical to a
// local SimulateGrid run — and therefore to the serial oracle.
//
// Fault tolerance: workers are health-probed against /readyz; a shard
// whose worker dies, times out, or fails is re-queued to a different
// worker (the failed one is excluded for that shard) with bounded
// retries. Shard IDs are idempotency keys — jobid.Shard over the
// parent ID, shard coordinates, and a digest of the work — so a
// re-submission of a still-live shard draws the worker's 409 and the
// coordinator adopts the in-flight run instead of duplicating it.
package dist

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// Config tunes a Coordinator. Workers is required; everything else
// has serviceable defaults.
type Config struct {
	// Workers lists the worker csimd base URLs
	// ("http://10.0.0.7:8416" style). At least one is required.
	Workers []string
	// ProbeInterval spaces the per-worker /readyz health probes
	// (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// ShardTimeout bounds one shard attempt on one worker, submission
	// through terminal state (default 2m). On expiry the shard is
	// cancelled best-effort and re-queued elsewhere.
	ShardTimeout time.Duration
	// MaxAttempts bounds how many workers a single shard may be tried
	// on before the whole job fails (default 3).
	MaxAttempts int
	// PerWorkerInflight bounds concurrently dispatched shards per
	// worker (default 2). Total dispatch concurrency is
	// len(Workers)×PerWorkerInflight.
	PerWorkerInflight int
	// RetryBase seeds the exponential backoff after a worker's 429
	// (default 50ms); the server's Retry-After hint wins when longer.
	RetryBase time.Duration
	// MaxRetryWait caps the total time one shard attempt may spend
	// backing off on 429s before the attempt counts as failed
	// (default 10s).
	MaxRetryWait time.Duration
	// Poll spaces shard-completion polls against a worker
	// (default 20ms).
	Poll time.Duration
	// MaxProcs caps the scheduler's K×W plan for auto-shaped jobs
	// (default len(Workers)×PerWorkerInflight).
	MaxProcs int
	// Obs is the coordinator's observability bundle; nil disables
	// dist metrics.
	Obs *obs.Observer
	// Log is the structured logger; nil disables coordinator logging.
	Log *obs.Logger
	// HTTPClient overrides the transport to workers (nil uses
	// http.DefaultClient).
	HTTPClient *http.Client
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.PerWorkerInflight <= 0 {
		c.PerWorkerInflight = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.MaxRetryWait <= 0 {
		c.MaxRetryWait = 10 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = 20 * time.Millisecond
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = len(c.Workers) * c.PerWorkerInflight
	}
	if c.Obs == nil {
		c.Obs = &obs.Observer{}
	}
	if c.Log == nil {
		c.Log = c.Obs.Log
	}
	return c
}
