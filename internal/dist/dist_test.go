package dist

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serial"
	"repro/internal/service"
	"repro/internal/vectors"
)

// shardPayloads runs every shard of a K-way split locally and wraps
// the results as the worker-facing payloads the coordinator merges.
func shardPayloads(t *testing.T, u *faults.Universe, vs *vectors.Set, k, w int) []*service.ResultView {
	t.Helper()
	out := make([]*service.ResultView, k)
	for shard := 0; shard < k; shard++ {
		res, st, err := parallel.SimulateShard(u, vs, parallel.ShardOptions{
			Shard: shard, Of: k, Windows: w, Config: csim.MV(),
		})
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		out[shard] = &service.ResultView{
			Detections: service.NewDetectionsView(res),
			Stats:      service.NewStatsView(st),
		}
	}
	return out
}

// TestMergerShuffledAndDuplicateArrival is the merge-determinism
// property: any arrival order of the shard payloads, with duplicate
// deliveries interleaved, merges to the same result — the serial
// oracle — and duplicates are dropped by the idempotent slot dedup.
func TestMergerShuffledAndDuplicateArrival(t *testing.T) {
	ckt, err := iscas.Get("s526")
	if err != nil {
		t.Fatal(err)
	}
	u := faults.StuckCollapsed(ckt)
	vs := vectors.Random(ckt, 50, 9)
	want := serial.Simulate(u, vs)
	const k, w = 5, 2
	payloads := shardPayloads(t, u, vs, k, w)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		order := rng.Perm(k)
		m := newMerger(k)
		for i, shard := range order {
			kept, err := m.add(shard, payloads[shard])
			if err != nil {
				t.Fatal(err)
			}
			if !kept {
				t.Fatalf("trial %d: first delivery of shard %d rejected", trial, shard)
			}
			// A duplicate delivery of an already-accepted shard (the
			// re-queued copy's original worker limping in late) is dropped.
			dup := order[rng.Intn(i+1)]
			kept, err = m.add(dup, payloads[dup])
			if err != nil {
				t.Fatal(err)
			}
			if kept {
				t.Fatalf("trial %d: duplicate of shard %d was merged twice", trial, dup)
			}
		}
		if m.complete() != k {
			t.Fatalf("trial %d: %d/%d slots filled", trial, m.complete(), k)
		}
		got, _, err := m.merge(u)
		if err != nil {
			t.Fatal(err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("trial %d (order %v): merged result differs from oracle:\n%s", trial, order, diff)
		}
	}
}

// TestMergerRejectsPayloadlessShard: a shard view without detections
// cannot be merged.
func TestMergerRejectsPayloadlessShard(t *testing.T) {
	m := newMerger(2)
	if _, err := m.add(0, &service.ResultView{}); err == nil {
		t.Error("add accepted a payloadless shard view")
	}
	if _, err := m.add(5, &service.ResultView{Detections: &service.DetectionsView{}}); err == nil {
		t.Error("add accepted an out-of-range shard index")
	}
}

// startWorker brings up one worker csimd node on a loopback port.
func startWorker(t *testing.T) *service.Server {
	t.Helper()
	s := service.New(service.Config{Addr: "127.0.0.1:0", Workers: 2})
	if err := s.Start(); err != nil {
		t.Fatalf("worker Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// startCluster brings up n workers, a coordinator over them, and the
// coordinator-fronting server, returning the client plus the
// coordinator and its metrics registry for assertions.
func startCluster(t *testing.T, n int, tune func(*Config)) (*service.Client, *Coordinator, *obs.Registry) {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = "http://" + startWorker(t).Addr()
	}
	reg := obs.NewRegistry()
	cfg := Config{
		Workers:       addrs,
		ProbeInterval: 20 * time.Millisecond,
		ShardTimeout:  30 * time.Second,
		Poll:          2 * time.Millisecond,
		Obs:           &obs.Observer{Metrics: reg},
	}
	if tune != nil {
		tune(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := service.New(service.Config{Addr: "127.0.0.1:0", Workers: 4, Runner: coord, Obs: cfg.Obs})
	if err := front.Start(); err != nil {
		t.Fatalf("coordinator Start: %v", err)
	}
	t.Cleanup(func() { _ = front.Close() })
	return service.NewClient("http://" + front.Addr()), coord, reg
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestDistributedMatchesSerialOracle is the acceptance contract: a
// coordinator over two workers produces results bit-identical to the
// serial oracle on bundled circuits, for both fault models.
func TestDistributedMatchesSerialOracle(t *testing.T) {
	cl, _, _ := startCluster(t, 2, nil)
	ctx := ctxT(t)
	for _, tc := range []struct {
		circuit, model string
	}{
		{"s344", "stuck"},
		{"s344", "transition"},
		{"s1488", "stuck"},
		{"s1488", "transition"},
	} {
		ckt, err := iscas.Get(tc.circuit)
		if err != nil {
			t.Fatal(err)
		}
		var u *faults.Universe
		if tc.model == "stuck" {
			u = faults.StuckCollapsed(ckt)
		} else {
			u = faults.Transition(ckt)
		}
		want := serial.Simulate(u, vectors.Random(ckt, 60, 11))

		v, err := cl.Run(ctx, service.JobSpec{
			Circuit: tc.circuit, Model: tc.model, Engine: "csim-grid",
			Random: 60, Seed: 11, ReturnDetections: true,
		}, 2*time.Millisecond)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.circuit, tc.model, err)
		}
		if v.Status != service.StatusDone || v.Result == nil {
			t.Fatalf("%s/%s: status %s, error %q", tc.circuit, tc.model, v.Status, v.Error)
		}
		if v.DistPhase != "done" {
			t.Errorf("%s/%s: dist_phase %q, want done", tc.circuit, tc.model, v.DistPhase)
		}
		got, err := v.Result.Detections.Result(u)
		if err != nil {
			t.Fatal(err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("%s/%s: distributed result differs from serial:\n%s", tc.circuit, tc.model, diff)
		}
		if v.Result.Detected != want.NumDet || v.Result.PotOnly != want.NumPotOnly() {
			t.Errorf("%s/%s: counts %d/%d, oracle %d/%d",
				tc.circuit, tc.model, v.Result.Detected, v.Result.PotOnly, want.NumDet, want.NumPotOnly())
		}
	}
}

// TestDistributedStatsMatchLocalGrid: the merged worker stats equal a
// local grid run of the same K×W shape — distribution moves the work,
// it doesn't change it.
func TestDistributedStatsMatchLocalGrid(t *testing.T) {
	cl, _, _ := startCluster(t, 2, nil)
	ctx := ctxT(t)
	ckt, err := iscas.Get("s526")
	if err != nil {
		t.Fatal(err)
	}
	u := faults.StuckCollapsed(ckt)
	vs := vectors.Random(ckt, 40, 3)

	const k, w = 3, 2
	v, err := cl.Run(ctx, service.JobSpec{
		Circuit: "s526", Engine: "csim-grid", Workers: k, Windows: w,
		Random: 40, Seed: 3,
	}, 2*time.Millisecond)
	if err != nil || v.Status != service.StatusDone {
		t.Fatalf("distributed run: %v / %+v", err, v)
	}
	_, gridStats, err := parallel.SimulateGrid(u, vs, parallel.GridOptions{
		FaultShards: k, Windows: w, Config: csim.MV(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Result.Stats.Stats(); got != gridStats {
		t.Errorf("distributed stats %+v != local grid stats %+v", got, gridStats)
	}
	if v.Result.Workers != k || v.Result.Windows != w {
		t.Errorf("distributed shape %dx%d, want %dx%d", v.Result.Workers, v.Result.Windows, k, w)
	}
}

// TestDistributedInlineBenchShipsOnce: an inline netlist travels to
// each worker at most once; subsequent shards reference the cache key.
func TestDistributedInlineBenchShipsOnce(t *testing.T) {
	cl, coord, _ := startCluster(t, 2, nil)
	ctx := ctxT(t)
	ckt, err := iscas.Get("s298")
	if err != nil {
		t.Fatal(err)
	}
	text := netlist.BenchString(ckt)
	u := faults.StuckCollapsed(ckt)
	want := serial.Simulate(u, vectors.Random(ckt, 30, 5))

	for run := 0; run < 2; run++ {
		v, err := cl.Run(ctx, service.JobSpec{
			Bench: text, BenchName: "s298", Engine: "csim-grid",
			Workers: 4, Windows: 1, Random: 30, Seed: 5, ReturnDetections: true,
		}, 2*time.Millisecond)
		if err != nil || v.Status != service.StatusDone {
			t.Fatalf("run %d: %v / status %s error %q", run, err, v.Status, v.Error)
		}
		got, err := v.Result.Detections.Result(u)
		if err != nil {
			t.Fatal(err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("run %d: inline distributed result differs:\n%s", run, diff)
		}
	}
	key := service.InlineKey(text)
	shippedSomewhere := false
	for _, w := range coord.reg.workers {
		if w.benchShipped(key) {
			shippedSomewhere = true
		}
	}
	if !shippedSomewhere {
		t.Error("no worker has the inline circuit's bench key marked shipped")
	}
}

// TestWorkerKillMidJobRequeues is the fault-tolerance acceptance test:
// with a shard pinned in flight on a specific worker, killing that
// worker mid-job must re-queue its shards to the survivor and still
// finish with the oracle's exact result.
func TestWorkerKillMidJobRequeues(t *testing.T) {
	victim := startWorker(t)
	survivor := startWorker(t)
	reg := obs.NewRegistry()
	coord, err := New(Config{
		Workers:           []string{"http://" + victim.Addr(), "http://" + survivor.Addr()},
		ProbeInterval:     20 * time.Millisecond,
		ShardTimeout:      30 * time.Second,
		Poll:              2 * time.Millisecond,
		PerWorkerInflight: 2,
		MaxAttempts:       4,
		Obs:               &obs.Observer{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := service.New(service.Config{Addr: "127.0.0.1:0", Workers: 2, Runner: coord, Obs: coord.ob})
	if err := front.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = front.Close() })
	cl := service.NewClient("http://" + front.Addr())
	ctx := ctxT(t)

	ckt, err := iscas.Get("s1488")
	if err != nil {
		t.Fatal(err)
	}
	u := faults.StuckCollapsed(ckt)
	want := serial.Simulate(u, vectors.Random(ckt, 250, 13))

	jv, err := cl.Submit(ctx, service.JobSpec{
		Circuit: "s1488", Engine: "csim-grid", Workers: 6, Windows: 2,
		Random: 250, Seed: 13, ReturnDetections: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the victim the moment it holds an in-flight shard.
	deadline := time.Now().Add(30 * time.Second)
	for {
		coord.reg.mu.Lock()
		busy := coord.reg.inflight[0] > 0
		coord.reg.mu.Unlock()
		if busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim worker never received a shard")
		}
		time.Sleep(time.Millisecond)
	}
	_ = victim.Close()

	v, err := cl.Wait(ctx, jv.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != service.StatusDone || v.Result == nil {
		t.Fatalf("job after worker kill: status %s, error %q", v.Status, v.Error)
	}
	got, err := v.Result.Detections.Result(u)
	if err != nil {
		t.Fatal(err)
	}
	if diff := want.Diff(got); diff != "" {
		t.Errorf("post-kill result differs from serial oracle:\n%s", diff)
	}
	if p, ok := reg.Get("dist.shards_requeued"); !ok || p.Value < 1 {
		t.Errorf("dist.shards_requeued = %+v, want >= 1", p)
	}
}
