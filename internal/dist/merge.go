package dist

import (
	"fmt"
	"sync"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/service"
)

// merger accumulates shard result payloads as they stream back from
// the fleet, deduplicating by shard index: only the first completion
// of a shard counts, so a re-queued shard whose original worker limps
// in late (or a duplicate delivery) cannot double-merge. Shard slots
// are positional, which makes the final merge independent of arrival
// order — faults.MergeResults is permutation-invariant, and feeding it
// the slots in index order removes even the iteration-order freedom.
type merger struct {
	mu sync.Mutex
	//simlint:guarded_by(mu)
	slots []*shardPayload
}

// shardPayload is one shard's accepted result.
type shardPayload struct {
	det   *service.DetectionsView
	stats service.StatsView
}

// newMerger sizes a merger for a K-shard job.
func newMerger(k int) *merger {
	return &merger{slots: make([]*shardPayload, k)}
}

// add accepts shard k's payload unless one was already accepted,
// reporting whether it was kept. A payload without detections is
// rejected with an error: the merge cannot reconstruct the shard's
// result from counters alone.
func (m *merger) add(k int, rv *service.ResultView) (bool, error) {
	if rv == nil || rv.Detections == nil {
		return false, fmt.Errorf("dist: shard %d returned no detections payload", k)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if k < 0 || k >= len(m.slots) {
		return false, fmt.Errorf("dist: shard index %d out of range (%d shards)", k, len(m.slots))
	}
	if m.slots[k] != nil {
		return false, nil
	}
	m.slots[k] = &shardPayload{det: rv.Detections, stats: rv.Stats}
	return true, nil
}

// complete reports how many shard slots hold accepted payloads.
func (m *merger) complete() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.slots {
		if s != nil {
			n++
		}
	}
	return n
}

// merge reconstructs every shard result over u and folds them with the
// deterministic first-detection-wins merge, returning the combined
// result and the merged engine stats. Every slot must be filled.
func (m *merger) merge(u *faults.Universe) (*faults.Result, csim.Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	parts := make([]*faults.Result, 0, len(m.slots))
	stats := make([]csim.Stats, 0, len(m.slots))
	for k, s := range m.slots {
		if s == nil {
			return nil, csim.Stats{}, fmt.Errorf("dist: shard %d never completed", k)
		}
		res, err := s.det.Result(u)
		if err != nil {
			return nil, csim.Stats{}, fmt.Errorf("dist: shard %d payload: %w", k, err)
		}
		parts = append(parts, res)
		stats = append(stats, s.stats.Stats())
	}
	return faults.MergeResults(parts...), csim.MergeStats(stats...), nil
}
