package dist

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// worker is one fleet member: its job-API client, health bit, and
// ship-once bookkeeping for inline circuits.
type worker struct {
	idx    int
	addr   string
	client *service.Client

	// healthy reflects the last /readyz probe (and flips false
	// immediately on a connection error mid-dispatch, without waiting
	// for the prober).
	healthy atomic.Bool

	mu sync.Mutex
	//simlint:guarded_by(mu)
	shipped map[string]bool // bench keys this worker's cache has seen

	gHealthy  *obs.Gauge
	gInflight *obs.Gauge
	cDone     *obs.Counter
	cFailed   *obs.Counter
}

// benchShipped reports whether key was already shipped to this worker.
func (w *worker) benchShipped(key string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.shipped[key]
}

// markShipped records that the worker's cache holds key.
func (w *worker) markShipped(key string) {
	w.mu.Lock()
	w.shipped[key] = true
	w.mu.Unlock()
}

// clearShipped forgets key after the worker reported a bench-key miss
// (its cache evicted the circuit); the next attempt re-ships the text.
func (w *worker) clearShipped(key string) {
	w.mu.Lock()
	delete(w.shipped, key)
	w.mu.Unlock()
}

// registry tracks the fleet: per-worker health and in-flight shard
// counts, a least-loaded picker with per-shard exclusion, and the
// background health probers.
type registry struct {
	workers []*worker
	limit   int // per-worker in-flight cap
	log     *obs.Logger

	mu sync.Mutex
	//simlint:guarded_by(mu)
	inflight []int

	// wakeCh pulses when a slot frees or health flips, re-arming
	// blocked pickers.
	wakeCh chan struct{}

	gHealthy *obs.Gauge // dist.workers_healthy

	stop chan struct{}
	wg   sync.WaitGroup
}

// newRegistry builds the fleet registry and starts one health-probe
// goroutine per worker; stopProbes tears them down.
func newRegistry(cfg Config) *registry {
	reg := cfg.Obs.Registry()
	r := &registry{
		limit:    cfg.PerWorkerInflight,
		log:      cfg.Log,
		inflight: make([]int, len(cfg.Workers)),
		wakeCh:   make(chan struct{}, 1),
		gHealthy: reg.Gauge("dist.workers_healthy"),
		stop:     make(chan struct{}),
	}
	for i, addr := range cfg.Workers {
		cl := service.NewClient(addr)
		cl.HTTPClient = cfg.HTTPClient
		prefix := fmt.Sprintf("dist.worker%d.", i)
		w := &worker{
			idx: i, addr: addr, client: cl,
			shipped:   map[string]bool{},
			gHealthy:  reg.Gauge(prefix + "healthy"),
			gInflight: reg.Gauge(prefix + "inflight"),
			cDone:     reg.Counter(prefix + "shards_done"),
			cFailed:   reg.Counter(prefix + "shards_failed"),
		}
		r.workers = append(r.workers, w)
	}
	for _, w := range r.workers {
		r.wg.Add(1)
		go func(w *worker) {
			defer r.wg.Done()
			r.probeLoop(w, cfg.ProbeInterval, cfg.ProbeTimeout)
		}(w)
	}
	return r
}

// stopProbes shuts the probe goroutines down and waits them out.
func (r *registry) stopProbes() {
	close(r.stop)
	r.wg.Wait()
}

// probeLoop probes one worker forever (first immediately, then every
// interval) until stopProbes.
func (r *registry) probeLoop(w *worker, interval, timeout time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		r.probeOnce(w, timeout)
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
	}
}

// probeOnce runs one /readyz probe and publishes a health transition.
func (r *registry) probeOnce(w *worker, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := w.client.Ready(ctx)
	r.setHealth(w, err == nil, err)
}

// setHealth records a worker's health verdict, waking pickers and
// logging on transitions.
func (r *registry) setHealth(w *worker, healthy bool, cause error) {
	if w.healthy.Load() == healthy {
		return
	}
	w.healthy.Store(healthy)
	if healthy {
		w.gHealthy.Set(1)
	} else {
		w.gHealthy.Set(0)
	}
	r.gHealthy.Set(r.countHealthy())
	r.wake()
	if healthy {
		r.log.Info("dist worker healthy",
			slog.String("phase", "probe"),
			slog.String("worker", w.addr))
	} else {
		errText := ""
		if cause != nil {
			errText = cause.Error()
		}
		r.log.Warn("dist worker unhealthy",
			slog.String("phase", "probe"),
			slog.String("worker", w.addr),
			slog.String("error", errText))
	}
}

// countHealthy tallies healthy workers.
func (r *registry) countHealthy() int64 {
	var n int64
	for _, w := range r.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// wake pulses the picker wake channel (non-blocking).
func (r *registry) wake() {
	select {
	case r.wakeCh <- struct{}{}:
	default:
	}
}

// pick blocks until a healthy, non-excluded worker has a free slot,
// claims the slot, and returns the worker. It fails fast when the
// exclusion set covers the whole fleet (health may recover; exclusion
// is permanent for the asking shard) or when ctx ends.
func (r *registry) pick(ctx context.Context, excluded map[int]bool) (*worker, error) {
	if len(excluded) >= len(r.workers) {
		return nil, fmt.Errorf("dist: all %d workers excluded for this shard", len(r.workers))
	}
	for {
		r.mu.Lock()
		best := -1
		for i, w := range r.workers {
			if excluded[i] || !w.healthy.Load() || r.inflight[i] >= r.limit {
				continue
			}
			if best < 0 || r.inflight[i] < r.inflight[best] {
				best = i
			}
		}
		if best >= 0 {
			r.inflight[best]++
			r.workers[best].gInflight.Set(int64(r.inflight[best]))
			r.mu.Unlock()
			return r.workers[best], nil
		}
		r.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-r.wakeCh:
		case <-time.After(100 * time.Millisecond):
			// Defensive re-scan: a missed wake pulse only delays, never
			// deadlocks, a picker.
		}
	}
}

// release returns a worker's slot and wakes blocked pickers.
func (r *registry) release(w *worker) {
	r.mu.Lock()
	r.inflight[w.idx]--
	w.gInflight.Set(int64(r.inflight[w.idx]))
	r.mu.Unlock()
	r.wake()
}
