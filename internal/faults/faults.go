// Package faults defines the fault models of the paper — single stuck-at
// faults and gate-input transition (gross delay) faults — together with the
// fault universe construction, structural equivalence collapsing, and
// detection bookkeeping shared by all simulators.
package faults

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Kind identifies the fault type.
type Kind uint8

const (
	// SA0 and SA1 are the classical single stuck-at faults.
	SA0 Kind = iota
	SA1
	// STR (slow to rise) delays a 0→1 transition at the fault site past
	// the sampling edge; STF delays 1→0. These are the paper's §3
	// transition faults: two per gate input.
	STR
	STF
)

// String returns the conventional abbreviation.
func (k Kind) String() string {
	switch k {
	case SA0:
		return "SA0"
	case SA1:
		return "SA1"
	case STR:
		return "STR"
	case STF:
		return "STF"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Stuck reports whether k is a stuck-at kind.
func (k Kind) Stuck() bool { return k == SA0 || k == SA1 }

// StuckValue returns the forced value of a stuck-at kind.
func (k Kind) StuckValue() logic.V {
	if k == SA1 {
		return logic.One
	}
	return logic.Zero
}

// OutPin marks a fault on the gate's output line rather than an input pin.
const OutPin = -1

// Fault is a single fault: a kind at a site (gate, pin). Pin == OutPin
// places the fault on the gate output (stem); otherwise on input pin Pin.
type Fault struct {
	ID   int32 // dense index within its Universe
	Gate netlist.GateID
	Pin  int
	Kind Kind
}

// Name renders the fault as "<gate>/<pin> <kind>", e.g. "G9/IN1 SA0" or
// "G10/O STR".
func (f Fault) Name(c *netlist.Circuit) string {
	if f.Pin == OutPin {
		return fmt.Sprintf("%s/O %s", c.Gate(f.Gate).Name, f.Kind)
	}
	return fmt.Sprintf("%s/IN%d %s", c.Gate(f.Gate).Name, f.Pin, f.Kind)
}

// Universe is a fault list over a circuit, optionally collapsed.
type Universe struct {
	Circuit *netlist.Circuit
	Faults  []Fault
	// Rep maps each fault in the *uncollapsed* universe to the ID of its
	// equivalence-class representative within Faults. Nil when the
	// universe was built uncollapsed.
	Rep []int32
}

// NumFaults returns the number of faults simulators must target.
func (u *Universe) NumFaults() int { return len(u.Faults) }

// StuckAll builds the complete (uncollapsed) single stuck-at universe:
// SA0/SA1 on every gate output line and on every input pin of every
// non-source gate, plus the D input pin of each flip-flop.
func StuckAll(c *netlist.Circuit) *Universe {
	u := &Universe{Circuit: c}
	add := func(g netlist.GateID, pin int, k Kind) {
		u.Faults = append(u.Faults, Fault{
			ID: int32(len(u.Faults)), Gate: g, Pin: pin, Kind: k,
		})
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		id := netlist.GateID(i)
		add(id, OutPin, SA0)
		add(id, OutPin, SA1)
		for p := range g.Fanin {
			add(id, p, SA0)
			add(id, p, SA1)
		}
	}
	return u
}

// StuckCollapsed builds the stuck-at universe collapsed by structural
// equivalence: (a) an input fault with the gate's controlling value is
// equivalent to the corresponding output fault (AND: in-SA0 ≡ out-SA0;
// NAND: in-SA0 ≡ out-SA1; OR: in-SA1 ≡ out-SA1; NOR: in-SA1 ≡ out-SA0),
// (b) NOT/BUFF/DFF input faults are equivalent to the (possibly inverted)
// output fault, and (c) on a fanout-free line the stem fault and the
// single branch fault are the same fault.
//
// Faults on Universe.Faults are class representatives; Rep maps every
// uncollapsed fault index to its representative's ID.
func StuckCollapsed(c *netlist.Circuit) *Universe {
	full := StuckAll(c)
	n := len(full.Faults)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}

	// Index the full universe by site for rule application.
	idx := make(map[Fault]int32, n)
	for i, f := range full.Faults {
		key := f
		key.ID = 0
		idx[key] = int32(i)
	}
	at := func(g netlist.GateID, pin int, k Kind) int32 {
		return idx[Fault{Gate: g, Pin: pin, Kind: k}]
	}

	for i := range c.Gates {
		g := &c.Gates[i]
		id := netlist.GateID(i)
		// Rule (a)/(b): gate-local equivalences.
		switch g.Op {
		case logic.OpAnd:
			for p := range g.Fanin {
				union(at(id, p, SA0), at(id, OutPin, SA0))
			}
		case logic.OpNand:
			for p := range g.Fanin {
				union(at(id, p, SA0), at(id, OutPin, SA1))
			}
		case logic.OpOr:
			for p := range g.Fanin {
				union(at(id, p, SA1), at(id, OutPin, SA1))
			}
		case logic.OpNor:
			for p := range g.Fanin {
				union(at(id, p, SA1), at(id, OutPin, SA0))
			}
		case logic.OpNot:
			union(at(id, 0, SA0), at(id, OutPin, SA1))
			union(at(id, 0, SA1), at(id, OutPin, SA0))
		case logic.OpBuf, logic.OpDFF:
			union(at(id, 0, SA0), at(id, OutPin, SA0))
			union(at(id, 0, SA1), at(id, OutPin, SA1))
		}
		// Rule (c): fanout-free stems.
		if len(g.Fanout) == 1 {
			succ := g.Fanout[0]
			p := c.PinOf(succ, id)
			union(at(id, OutPin, SA0), at(succ, p, SA0))
			union(at(id, OutPin, SA1), at(succ, p, SA1))
		}
	}

	u := &Universe{Circuit: c, Rep: make([]int32, n)}
	classID := make(map[int32]int32, n)
	for i := 0; i < n; i++ {
		root := find(int32(i))
		cid, ok := classID[root]
		if !ok {
			cid = int32(len(u.Faults))
			classID[root] = cid
			rep := full.Faults[root]
			rep.ID = cid
			u.Faults = append(u.Faults, rep)
		}
		u.Rep[i] = cid
	}
	return u
}

// Transition builds the transition-fault universe: one STR and one STF
// fault on every input pin of every non-source gate and on each flip-flop
// D input ("two transition faults are associated with each gate input",
// §3).
func Transition(c *netlist.Circuit) *Universe {
	u := &Universe{Circuit: c}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Op == logic.OpInput {
			continue
		}
		for p := range g.Fanin {
			u.Faults = append(u.Faults,
				Fault{ID: int32(len(u.Faults)), Gate: netlist.GateID(i), Pin: p, Kind: STR},
				Fault{ID: int32(len(u.Faults)) + 1, Gate: netlist.GateID(i), Pin: p, Kind: STF})
		}
	}
	return u
}
