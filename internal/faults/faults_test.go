package faults

import (
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/netlist"
)

const s27Bench = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func s27(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString("s27", s27Bench)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStuckAllCount(t *testing.T) {
	c := s27(t)
	u := StuckAll(c)
	// Every gate output line x2, every input pin x2.
	pins := 0
	for i := range c.Gates {
		pins += len(c.Gates[i].Fanin)
	}
	want := 2 * (len(c.Gates) + pins)
	if got := u.NumFaults(); got != want {
		t.Errorf("StuckAll count = %d, want %d", got, want)
	}
	for i, f := range u.Faults {
		if int(f.ID) != i {
			t.Fatalf("fault %d has ID %d", i, f.ID)
		}
	}
}

func TestStuckCollapsedSmaller(t *testing.T) {
	c := s27(t)
	full := StuckAll(c)
	col := StuckCollapsed(c)
	if col.NumFaults() >= full.NumFaults() {
		t.Errorf("collapsed %d not smaller than full %d", col.NumFaults(), full.NumFaults())
	}
	if len(col.Rep) != full.NumFaults() {
		t.Fatalf("Rep has %d entries, want %d", len(col.Rep), full.NumFaults())
	}
	// Every representative must map to itself.
	for i, f := range full.Faults {
		rep := col.Rep[i]
		if rep < 0 || int(rep) >= col.NumFaults() {
			t.Fatalf("Rep[%d] out of range: %d", i, rep)
		}
		rf := col.Faults[rep]
		// A fault and its representative always share a stuck value parity
		// only up to inversion chains, but the representative of a
		// representative is itself:
		key := rf
		key.ID = 0
		for j, g := range full.Faults {
			gk := g
			gk.ID = 0
			if gk == key && col.Rep[j] != rep {
				t.Fatalf("representative %v not in its own class", rf.Name(c))
			}
		}
		_ = f
	}
}

// TestCollapseRules verifies the local equivalences directly on a single
// gate of each type.
func TestCollapseRules(t *testing.T) {
	cases := []struct {
		op      logic.Op
		inKind  Kind
		outKind Kind
	}{
		{logic.OpAnd, SA0, SA0},
		{logic.OpNand, SA0, SA1},
		{logic.OpOr, SA1, SA1},
		{logic.OpNor, SA1, SA0},
	}
	for _, cse := range cases {
		b := netlist.NewBuilder("one")
		b.Input("a").Input("b")
		b.Gate("z", cse.op, "a", "b")
		b.Output("z")
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		u := StuckCollapsed(c)
		z := c.MustByName("z")
		full := StuckAll(c)
		var inIdx, outIdx int32 = -1, -1
		for i, f := range full.Faults {
			if f.Gate == z && f.Pin == 0 && f.Kind == cse.inKind {
				inIdx = int32(i)
			}
			if f.Gate == z && f.Pin == OutPin && f.Kind == cse.outKind {
				outIdx = int32(i)
			}
		}
		if inIdx < 0 || outIdx < 0 {
			t.Fatal("fault indices not found")
		}
		if u.Rep[inIdx] != u.Rep[outIdx] {
			t.Errorf("%v: input %v and output %v not equivalent", cse.op, cse.inKind, cse.outKind)
		}
	}
}

func TestCollapseInverterChain(t *testing.T) {
	// a -> NOT x -> NOT z : all six faults collapse into exactly 2 classes
	// (SA0/SA1 on the single through-line, with inversions folded).
	b := netlist.NewBuilder("chain")
	b.Input("a")
	b.Gate("x", logic.OpNot, "a")
	b.Gate("z", logic.OpNot, "x")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := StuckCollapsed(c)
	if u.NumFaults() != 2 {
		t.Errorf("inverter chain collapsed to %d faults, want 2", u.NumFaults())
	}
}

func TestFaultName(t *testing.T) {
	c := s27(t)
	g9 := c.MustByName("G9")
	f := Fault{Gate: g9, Pin: 1, Kind: SA0}
	if got := f.Name(c); got != "G9/IN1 SA0" {
		t.Errorf("Name = %q", got)
	}
	f2 := Fault{Gate: g9, Pin: OutPin, Kind: STR}
	if got := f2.Name(c); got != "G9/O STR" {
		t.Errorf("Name = %q", got)
	}
}

func TestTransitionUniverse(t *testing.T) {
	c := s27(t)
	u := Transition(c)
	pins := 0
	for i := range c.Gates {
		if c.Gates[i].Op == logic.OpInput {
			continue
		}
		pins += len(c.Gates[i].Fanin)
	}
	if got := u.NumFaults(); got != 2*pins {
		t.Errorf("Transition count = %d, want %d", got, 2*pins)
	}
	for i, f := range u.Faults {
		if int(f.ID) != i {
			t.Fatalf("fault %d has ID %d", i, f.ID)
		}
		if f.Kind != STR && f.Kind != STF {
			t.Fatalf("fault %d has kind %v", i, f.Kind)
		}
		if f.Pin == OutPin {
			t.Fatalf("transition fault on output pin")
		}
	}
}

// TestTransitionTable checks every row of the paper's Table 1.
func TestTransitionTable(t *testing.T) {
	type row struct{ pv, cv, str, stf logic.V }
	rows := []row{
		// pv  cv   STR-FV  STF-FV
		{0, 0, 0, 0},
		{0, 1, 0, 1}, // rising edge delayed by STR
		{1, 0, 0, 1}, // falling edge delayed by STF
		{1, 1, 1, 1},
		{0, logic.X, 0, logic.X},
		{1, logic.X, logic.X, 1},
		{logic.X, 0, 0, logic.X},
		{logic.X, 1, logic.X, 1},
		{logic.X, logic.X, logic.X, logic.X},
	}
	for _, r := range rows {
		if got := TransitionFV(STR, r.pv, r.cv); got != r.str {
			t.Errorf("STR FV(pv=%v,cv=%v) = %v, want %v", r.pv, r.cv, got, r.str)
		}
		if got := TransitionFV(STF, r.pv, r.cv); got != r.stf {
			t.Errorf("STF FV(pv=%v,cv=%v) = %v, want %v", r.pv, r.cv, got, r.stf)
		}
	}
}

// Property: when no transition is possible (pv == cv) the faulty value
// equals the good value.
func TestTransitionNoOpWhenStable(t *testing.T) {
	f := func(raw uint8, kindRaw bool) bool {
		v := logic.V(raw % 3)
		k := STR
		if kindRaw {
			k = STF
		}
		return TransitionFV(k, v, v) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResult(t *testing.T) {
	c := s27(t)
	u := StuckCollapsed(c)
	r := NewResult(u)
	if r.Coverage() != 0 {
		t.Error("fresh result has nonzero coverage")
	}
	if !r.Detect(3, 7) {
		t.Error("first Detect returned false")
	}
	if r.Detect(3, 9) {
		t.Error("second Detect returned true")
	}
	if r.DetectedAt[3] != 7 {
		t.Errorf("DetectedAt = %d, want 7", r.DetectedAt[3])
	}
	if r.NumDet != 1 {
		t.Errorf("NumDet = %d", r.NumDet)
	}
	set := r.DetectedSet()
	if len(set) != 1 || set[0] != 3 {
		t.Errorf("DetectedSet = %v", set)
	}
	r2 := NewResult(u)
	if d := r.Diff(r2); d == "" {
		t.Error("Diff of differing results is empty")
	}
	r2.Detect(3, 7)
	if d := r.Diff(r2); d != "" {
		t.Errorf("Diff of equal results = %q", d)
	}
}

func TestCoverageEmptyUniverse(t *testing.T) {
	u := &Universe{}
	r := NewResult(u)
	if r.Coverage() != 0 {
		t.Error("empty universe coverage not 0")
	}
}

// TestMergeResults: union of detections, min first-detecting vector on
// overlap, union of potential detections — all independent of argument
// order.
func TestMergeResults(t *testing.T) {
	c := s27(t)
	u := StuckCollapsed(c)
	if u.NumFaults() < 4 {
		t.Fatalf("need at least 4 faults, have %d", u.NumFaults())
	}
	a := NewResult(u)
	a.Detect(0, 5)
	a.Detect(1, 2)
	a.PotDetect(3)
	b := NewResult(u)
	b.Detect(0, 3) // earlier than a's vector 5: the merge must keep 3
	b.Detect(2, 7)
	b.PotDetect(1)

	check := func(m *Result) {
		t.Helper()
		if m.NumDet != 3 {
			t.Errorf("merged NumDet = %d, want 3", m.NumDet)
		}
		wantAt := map[int32]int32{0: 3, 1: 2, 2: 7}
		for id, at := range wantAt {
			if !m.Detected[id] || m.DetectedAt[id] != at {
				t.Errorf("fault %d: detected=%v at %d, want at %d",
					id, m.Detected[id], m.DetectedAt[id], at)
			}
		}
		if !m.PotDetected[1] || !m.PotDetected[3] {
			t.Errorf("potential detections not unioned: %v", m.PotDetected)
		}
	}
	check(MergeResults(a, b))
	check(MergeResults(b, a))

	defer func() {
		if recover() == nil {
			t.Error("merging results over different universe sizes did not panic")
		}
	}()
	tiny := NewResult(&Universe{Circuit: c, Faults: u.Faults[:1]})
	MergeResults(a, tiny)
}
