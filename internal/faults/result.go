package faults

import "fmt"

// Result accumulates detections over a fault universe during simulation.
// All simulators (csim, PROOFS, serial) report through this type so their
// outputs are directly comparable.
type Result struct {
	Universe   *Universe
	Detected   []bool
	DetectedAt []int32 // vector index of first detection; -1 if undetected
	NumDet     int

	// Potential detections: the faulty machine drove X where the good
	// machine drove a binary value at a primary output. Such a fault may
	// or may not be caught on silicon; simulators of this era report the
	// count separately and never drop on it.
	PotDetected []bool
}

// NewResult returns an empty result over u.
func NewResult(u *Universe) *Result {
	r := &Result{
		Universe:    u,
		Detected:    make([]bool, len(u.Faults)),
		DetectedAt:  make([]int32, len(u.Faults)),
		PotDetected: make([]bool, len(u.Faults)),
	}
	for i := range r.DetectedAt {
		r.DetectedAt[i] = -1
	}
	return r
}

// PotDetect marks fault id potentially detected.
func (r *Result) PotDetect(id int32) { r.PotDetected[id] = true }

// NumPotOnly counts faults potentially but never hard detected.
func (r *Result) NumPotOnly() int {
	n := 0
	for i, p := range r.PotDetected {
		if p && !r.Detected[i] {
			n++
		}
	}
	return n
}

// CoverageWithPotential counts hard detections plus faults only ever
// potentially detected.
func (r *Result) CoverageWithPotential() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	return float64(r.NumDet+r.NumPotOnly()) / float64(len(r.Detected))
}

// Detect marks fault id detected at vector vec. It reports whether the
// fault was newly detected.
func (r *Result) Detect(id int32, vec int) bool {
	if r.Detected[id] {
		return false
	}
	r.Detected[id] = true
	r.DetectedAt[id] = int32(vec)
	r.NumDet++
	return true
}

// Coverage returns detected/total in [0,1].
func (r *Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	return float64(r.NumDet) / float64(len(r.Detected))
}

// DetectedSet returns the sorted IDs of detected faults.
func (r *Result) DetectedSet() []int32 {
	out := make([]int32, 0, r.NumDet)
	for i, d := range r.Detected {
		if d {
			out = append(out, int32(i))
		}
	}
	return out
}

// MergeResults combines per-partition results over the same universe into
// a single result. Detections and potential detections are unioned; if
// several parts detected the same fault, the smallest detecting vector
// index wins, so the merge is deterministic regardless of partition
// count, partition order, or goroutine scheduling. All parts must cover
// universes of identical size (normally the same Universe).
func MergeResults(parts ...*Result) *Result {
	if len(parts) == 0 {
		panic("faults: MergeResults needs at least one result")
	}
	out := NewResult(parts[0].Universe)
	for _, p := range parts {
		if len(p.Detected) != len(out.Detected) {
			panic(fmt.Sprintf("faults: merging results over universes of %d and %d faults",
				len(out.Detected), len(p.Detected)))
		}
		for i := range p.Detected {
			if p.PotDetected[i] {
				out.PotDetected[i] = true
			}
			if !p.Detected[i] {
				continue
			}
			if !out.Detected[i] {
				out.Detected[i] = true
				out.DetectedAt[i] = p.DetectedAt[i]
				out.NumDet++
			} else if p.DetectedAt[i] < out.DetectedAt[i] {
				out.DetectedAt[i] = p.DetectedAt[i]
			}
		}
	}
	return out
}

// Diff returns a human-readable description of the first few disagreements
// between two results over the same universe, for cross-validation tests.
func (r *Result) Diff(other *Result) string {
	if len(r.Detected) != len(other.Detected) {
		return fmt.Sprintf("universe sizes differ: %d vs %d", len(r.Detected), len(other.Detected))
	}
	var out string
	n := 0
	for i := range r.Detected {
		if r.Detected[i] != other.Detected[i] {
			out += fmt.Sprintf("fault %s: %v vs %v\n",
				r.Universe.Faults[i].Name(r.Universe.Circuit), r.Detected[i], other.Detected[i])
			n++
			if n >= 10 {
				out += "...\n"
				break
			}
		}
	}
	return out
}
