package faults

import "fmt"

// Result accumulates detections over a fault universe during simulation.
// All simulators (csim, PROOFS, serial) report through this type so their
// outputs are directly comparable.
type Result struct {
	Universe   *Universe
	Detected   []bool
	DetectedAt []int32 // vector index of first detection; -1 if undetected
	NumDet     int

	// Potential detections: the faulty machine drove X where the good
	// machine drove a binary value at a primary output. Such a fault may
	// or may not be caught on silicon; simulators of this era report the
	// count separately and never drop on it.
	PotDetected []bool
}

// NewResult returns an empty result over u.
func NewResult(u *Universe) *Result {
	r := &Result{
		Universe:    u,
		Detected:    make([]bool, len(u.Faults)),
		DetectedAt:  make([]int32, len(u.Faults)),
		PotDetected: make([]bool, len(u.Faults)),
	}
	for i := range r.DetectedAt {
		r.DetectedAt[i] = -1
	}
	return r
}

// PotDetect marks fault id potentially detected.
func (r *Result) PotDetect(id int32) { r.PotDetected[id] = true }

// NumPotOnly counts faults potentially but never hard detected.
func (r *Result) NumPotOnly() int {
	n := 0
	for i, p := range r.PotDetected {
		if p && !r.Detected[i] {
			n++
		}
	}
	return n
}

// CoverageWithPotential counts hard detections plus faults only ever
// potentially detected.
func (r *Result) CoverageWithPotential() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	return float64(r.NumDet+r.NumPotOnly()) / float64(len(r.Detected))
}

// Detect marks fault id detected at vector vec. It reports whether the
// fault was newly detected.
func (r *Result) Detect(id int32, vec int) bool {
	if r.Detected[id] {
		return false
	}
	r.Detected[id] = true
	r.DetectedAt[id] = int32(vec)
	r.NumDet++
	return true
}

// Coverage returns detected/total in [0,1].
func (r *Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	return float64(r.NumDet) / float64(len(r.Detected))
}

// DetectedSet returns the sorted IDs of detected faults.
func (r *Result) DetectedSet() []int32 {
	out := make([]int32, 0, r.NumDet)
	for i, d := range r.Detected {
		if d {
			out = append(out, int32(i))
		}
	}
	return out
}

// Diff returns a human-readable description of the first few disagreements
// between two results over the same universe, for cross-validation tests.
func (r *Result) Diff(other *Result) string {
	if len(r.Detected) != len(other.Detected) {
		return fmt.Sprintf("universe sizes differ: %d vs %d", len(r.Detected), len(other.Detected))
	}
	var out string
	n := 0
	for i := range r.Detected {
		if r.Detected[i] != other.Detected[i] {
			out += fmt.Sprintf("fault %s: %v vs %v\n",
				r.Universe.Faults[i].Name(r.Universe.Circuit), r.Detected[i], other.Detected[i])
			n++
			if n >= 10 {
				out += "...\n"
				break
			}
		}
	}
	return out
}
