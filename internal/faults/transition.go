package faults

import "repro/internal/logic"

// TransitionFV implements the paper's Table 1: the value FV seen at a
// transition-fault site at sampling time, given the site's previous-cycle
// value PV and current-cycle (settled) value CV.
//
// A slow-to-rise fault suppresses a 0→1 transition until after the sample,
// so the observed value is the ternary AND of PV and CV; slow-to-fall is
// the dual (OR). These closed forms reproduce every row of Table 1,
// including the X entries: e.g. PV=0, CV=X under STR yields 0 because the
// site is 0 whether or not the (possibly delayed) rise was due.
func TransitionFV(k Kind, pv, cv logic.V) logic.V {
	switch k {
	case STR:
		return logic.And2(pv, cv)
	case STF:
		return logic.Or2(pv, cv)
	}
	return cv
}
