// Package gen synthesizes random synchronous sequential benchmark
// circuits with prescribed PI/PO/FF/gate counts. The ISCAS-89 netlists the
// paper evaluates are not redistributable inside this repository, so
// structurally comparable stand-ins are generated deterministically from
// fixed seeds (see DESIGN.md, substitutions). The generator reproduces the
// traits that drive fault-simulation cost: 2-3 input gates dominated by
// NAND/NOR, shallow level-bounded logic (real ISCAS-89 depths are 10-30),
// sparse fanout with occasional high-fanout stems, feedback through
// flip-flops, and outputs sampled from cone roots.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Spec prescribes the shape of a generated circuit.
type Spec struct {
	Name  string
	PIs   int
	POs   int
	DFFs  int
	Gates int // combinational gate count (including inverters/buffers)
	Depth int // target combinational depth; 0 picks a size-based default
	Seed  int64
}

// opMix approximates the ISCAS-89 gate-type distribution.
var opMix = []struct {
	op     logic.Op
	weight int
	minIn  int
	maxIn  int
}{
	{logic.OpNand, 20, 2, 3},
	{logic.OpNor, 12, 2, 3},
	{logic.OpAnd, 12, 2, 4},
	{logic.OpOr, 9, 2, 4},
	{logic.OpNot, 21, 1, 1},
	{logic.OpBuf, 6, 1, 1},
	{logic.OpXor, 7, 2, 2},
	{logic.OpXnor, 5, 2, 2},
}

// defaultDepth scales like the published ISCAS-89 depths: shallow even for
// very large circuits.
func defaultDepth(gates int) int {
	d := 6
	for g := gates; g > 64; g /= 4 {
		d += 3
	}
	return d
}

// Generate builds the circuit described by spec. The same spec always
// yields the identical netlist.
func Generate(spec Spec) (*netlist.Circuit, error) {
	if spec.PIs < 1 || spec.Gates < 1 || spec.POs < 1 {
		return nil, fmt.Errorf("gen: spec needs at least one PI, PO and gate: %+v", spec)
	}
	depth := spec.Depth
	if depth <= 0 {
		depth = defaultDepth(spec.Gates)
	}
	if depth > spec.Gates {
		depth = spec.Gates
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := netlist.NewBuilder(spec.Name)

	piNames := make([]string, spec.PIs)
	for i := range piNames {
		piNames[i] = fmt.Sprintf("pi%d", i)
		b.Input(piNames[i])
	}
	ffNames := make([]string, spec.DFFs)
	for i := range ffNames {
		ffNames[i] = fmt.Sprintf("ff%d", i)
	}
	sources := append(append([]string{}, piNames...), ffNames...)

	totalWeight := 0
	for _, m := range opMix {
		totalWeight += m.weight
	}

	// Reserve one synchronous-init gate per flip-flop (AND or OR with a
	// PI) so random patterns can flush the initial X state the way real
	// test sets exercise reset structures; without them X never clears
	// through XOR-rich logic and nothing is observable.
	initGates := 0
	if spec.DFFs > 0 && spec.Gates > 3*spec.DFFs {
		initGates = spec.DFFs
	}

	// Distribute gates over levels with a mild taper (wider near the
	// sources, as in real cones).
	perLevel := make([]int, depth)
	remaining := spec.Gates - initGates
	for l := 0; l < depth; l++ {
		share := remaining / (depth - l)
		// Taper: early levels get up to 40% more than an even share.
		bonus := share * (depth - l) / (3 * depth)
		n := share + bonus
		if n < 1 {
			n = 1
		}
		if n > remaining-(depth-l-1) {
			n = remaining - (depth - l - 1)
		}
		perLevel[l] = n
		remaining -= n
	}
	perLevel[depth-1] += remaining

	fanout := map[string]int{}
	levels := make([][]string, depth)
	gateID := 0
	// prob tracks each signal's estimated probability of being 1 under
	// random patterns (independence assumption). Deep random logic drifts
	// toward near-constant signals, which makes path sensitization
	// impossible; balancing each new gate's family (AND-like vs OR-like)
	// against its fanin bias keeps signals testable, as synthesized logic
	// tends to be.
	prob := map[string]float64{}
	for _, n := range sources {
		prob[n] = 0.5
	}
	for l := 0; l < depth; l++ {
		for i := 0; i < perLevel[l]; i++ {
			w := rng.Intn(totalWeight)
			var op logic.Op
			var minIn, maxIn int
			for _, m := range opMix {
				if w < m.weight {
					op, minIn, maxIn = m.op, m.minIn, m.maxIn
					break
				}
				w -= m.weight
			}
			nIn := minIn
			if maxIn > minIn {
				nIn += rng.Intn(maxIn - minIn + 1)
			}
			name := fmt.Sprintf("n%d", gateID)
			gateID++
			pos := (float64(i) + 0.5) / float64(perLevel[l])
			fanin := pickFanins(rng, nIn, l, pos, levels, sources, fanout)
			if len(fanin) == 1 && (op == logic.OpXor || op == logic.OpXnor || minIn > 1) {
				op = logic.OpBuf
				if rng.Intn(2) == 0 {
					op = logic.OpNot
				}
			}
			op = balanceFamily(op, fanin, prob)
			b.Gate(name, op, fanin...)
			prob[name] = outProb(op, fanin, prob)
			levels[l] = append(levels[l], name)
		}
	}

	var allGates []string
	for _, lv := range levels {
		allGates = append(allGates, lv...)
	}

	// FF D inputs: sample from the deeper levels near the FF's own
	// horizontal position so state columns stay local and feedback loops
	// close within a cone.
	for i := range ffNames {
		var d string
		if len(allGates) > 0 {
			pos := (float64(i) + 0.5) / float64(len(ffNames))
			lv := depth/2 + rng.Intn(depth-depth/2)
			for len(levels[lv]) == 0 {
				lv = rng.Intn(depth)
			}
			list := levels[lv]
			window := len(list)/16 + 2
			idx := int(pos*float64(len(list))) + rng.Intn(2*window+1) - window
			idx = ((idx % len(list)) + len(list)) % len(list)
			d = list[idx]
		} else {
			d = piNames[rng.Intn(len(piNames))]
		}
		if initGates > 0 {
			ig := fmt.Sprintf("n%d", gateID)
			gateID++
			pi := piNames[rng.Intn(len(piNames))]
			op := logic.OpAnd
			if i%2 == 1 {
				op = logic.OpOr
			}
			b.Gate(ig, op, d, pi)
			fanout[d]++
			fanout[pi]++
			d = ig
			allGates = append(allGates, ig)
		}
		fanout[d]++
		b.DFF(ffNames[i], d)
	}

	// POs: prefer unread late gates (cone roots) so logic is observable.
	poSeen := map[string]bool{}
	poCount := 0
	for i := len(allGates) - 1; i >= 0 && poCount < spec.POs; i-- {
		if fanout[allGates[i]] == 0 && !poSeen[allGates[i]] {
			poSeen[allGates[i]] = true
			b.Output(allGates[i])
			poCount++
		}
	}
	for poCount < spec.POs && len(allGates) > 0 {
		cand := allGates[rng.Intn(len(allGates))]
		if !poSeen[cand] {
			poSeen[cand] = true
			b.Output(cand)
			poCount++
		}
		if len(poSeen) == len(allGates) {
			break
		}
	}
	for poCount < spec.POs {
		// Degenerate tiny specs: expose sources.
		cand := sources[rng.Intn(len(sources))]
		if !poSeen[cand] {
			poSeen[cand] = true
			b.Output(cand)
			poCount++
		}
	}

	return b.Build()
}

// pickFanins draws n distinct fanin signals for a gate at level l and
// horizontal position pos in [0,1): mostly the previous level, some skip
// connections, some sources — all biased toward the gate's own position so
// the network decomposes into narrow, weakly interacting cones the way
// real datapath circuits do. Without that locality, fault effects drown in
// reconvergent random logic and nothing is observable.
func pickFanins(rng *rand.Rand, n, l int, pos float64, levels [][]string, sources []string, fanout map[string]int) []string {
	seen := map[string]bool{}
	out := make([]string, 0, n)
	pool := len(sources)
	for i := 0; i < l; i++ {
		pool += len(levels[i])
	}
	if n > pool {
		n = pool
	}
	near := func(list []string) string {
		m := len(list)
		center := int(pos * float64(m))
		window := m/16 + 2
		idx := center + rng.Intn(2*window+1) - window
		idx = ((idx % m) + m) % m
		return list[idx]
	}
	for len(out) < n {
		var cand string
		r := rng.Intn(100)
		switch {
		case l > 0 && r < 62 && len(levels[l-1]) > 0:
			cand = near(levels[l-1])
		case l > 1 && r < 82:
			lv := rng.Intn(l)
			if len(levels[lv]) == 0 {
				continue
			}
			cand = near(levels[lv])
		case r < 97 || len(sources) < 2:
			cand = near(sources)
		default:
			// Rare global stem: long-range connection (clock-enable-like).
			cand = sources[rng.Intn(len(sources))]
		}
		if seen[cand] {
			continue
		}
		seen[cand] = true
		out = append(out, cand)
		fanout[cand]++
	}
	return out
}

// outProb estimates a gate's one-probability from its fanin estimates
// under an independence assumption.
func outProb(op logic.Op, fanin []string, prob map[string]float64) float64 {
	p := func(n string) float64 { return prob[n] }
	switch op.Base() {
	case logic.OpAnd:
		out := 1.0
		for _, f := range fanin {
			out *= p(f)
		}
		if op.Inverting() {
			out = 1 - out
		}
		return out
	case logic.OpOr:
		out := 1.0
		for _, f := range fanin {
			out *= 1 - p(f)
		}
		if !op.Inverting() {
			out = 1 - out
		}
		return out
	case logic.OpXor:
		out := 0.0
		for _, f := range fanin {
			out = out*(1-p(f)) + (1-out)*p(f)
		}
		if op.Inverting() {
			out = 1 - out
		}
		return out
	default: // BUFF base
		out := p(fanin[0])
		if op.Inverting() {
			out = 1 - out
		}
		return out
	}
}

// balanceFamily swaps an AND-family gate for its OR-family dual (keeping
// the inversion) when the dual's output probability is meaningfully closer
// to one half.
func balanceFamily(op logic.Op, fanin []string, prob map[string]float64) logic.Op {
	var dual logic.Op
	switch op {
	case logic.OpAnd:
		dual = logic.OpOr
	case logic.OpNand:
		dual = logic.OpNor
	case logic.OpOr:
		dual = logic.OpAnd
	case logic.OpNor:
		dual = logic.OpNand
	default:
		return op
	}
	skew := func(p float64) float64 {
		if p < 0.5 {
			return 0.5 - p
		}
		return p - 0.5
	}
	if skew(outProb(dual, fanin, prob))+0.05 < skew(outProb(op, fanin, prob)) {
		return dual
	}
	return op
}
