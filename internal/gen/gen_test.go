package gen

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestGenerateShape(t *testing.T) {
	specs := []Spec{
		{Name: "tiny", PIs: 2, POs: 1, DFFs: 0, Gates: 5, Seed: 1},
		{Name: "small", PIs: 4, POs: 3, DFFs: 4, Gates: 60, Seed: 2},
		{Name: "mid", PIs: 18, POs: 19, DFFs: 5, Gates: 289, Seed: 3},
		{Name: "big", PIs: 35, POs: 49, DFFs: 179, Gates: 2779, Seed: 4},
	}
	for _, spec := range specs {
		c, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		st := c.Stats()
		if st.PIs != spec.PIs || st.POs != spec.POs || st.DFFs != spec.DFFs || st.Gates != spec.Gates {
			t.Errorf("%s: got %v, want %+v", spec.Name, st, spec)
		}
		if st.MaxLevel < 2 {
			t.Errorf("%s: circuit is flat (depth %d)", spec.Name, st.MaxLevel)
		}
		if st.MaxFanin > logic.MaxPins {
			t.Errorf("%s: max fanin %d exceeds packing limit", spec.Name, st.MaxFanin)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "d", PIs: 5, POs: 4, DFFs: 6, Gates: 100, Seed: 42}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if netlist.BenchString(a) != netlist.BenchString(b) {
		t.Error("same spec generated different circuits")
	}
	spec.Seed = 43
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if netlist.BenchString(a) == netlist.BenchString(c) {
		t.Error("different seeds generated identical circuits")
	}
}

func TestGenerateRejectsEmpty(t *testing.T) {
	if _, err := Generate(Spec{Name: "x"}); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestGenerateSequentialDepthUsable(t *testing.T) {
	// The generated state machines must actually exercise flip-flops:
	// at least one DFF D input must depend on a flip-flop output
	// (feedback), otherwise the circuit is a pipeline at best.
	c, err := Generate(Spec{Name: "fb", PIs: 4, POs: 4, DFFs: 10, Gates: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Reachability from FF outputs forward to any DFF D input.
	reach := make([]bool, len(c.Gates))
	var stack []netlist.GateID
	for _, ff := range c.DFFs {
		reach[ff] = true
		stack = append(stack, ff)
	}
	feedback := false
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range c.Gate(g).Fanout {
			if c.Gate(fo).Op == logic.OpDFF {
				feedback = true
				continue
			}
			if !reach[fo] {
				reach[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	if !feedback {
		t.Error("no feedback path from any FF output to any FF input")
	}
}
