// Package goodsim is the fault-free (good machine) zero-delay simulator
// for synchronous sequential circuits. It uses the levelized event-driven
// discipline of the paper's §2.1: only gate identifiers are scheduled, and
// gates are evaluated in level order so each gate is evaluated at most once
// per clock cycle. All simulators in this repository share its semantics:
// apply a vector, let the combinational network settle, sample the primary
// outputs, then clock the flip-flops.
package goodsim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Sim is a good-machine simulator. The zero value is not usable; call New.
type Sim struct {
	c   *netlist.Circuit
	val []logic.V

	sched  []bool
	queue  [][]netlist.GateID // per-level event buckets
	inBuf  []logic.V
	Events int // gate evaluations performed (instrumentation)
}

// New returns a simulator with every signal, including flip-flop state,
// initialized to X.
func New(c *netlist.Circuit) *Sim {
	s := &Sim{
		c:     c,
		val:   make([]logic.V, len(c.Gates)),
		sched: make([]bool, len(c.Gates)),
		queue: make([][]netlist.GateID, c.MaxLevel+1),
		inBuf: make([]logic.V, logic.MaxPins),
	}
	s.Reset()
	return s
}

// Circuit returns the simulated circuit.
func (s *Sim) Circuit() *netlist.Circuit { return s.c }

// Reset returns every signal to X and clears pending events.
func (s *Sim) Reset() {
	for i := range s.val {
		s.val[i] = logic.X
	}
	for i := range s.sched {
		s.sched[i] = false
	}
	for l := range s.queue {
		s.queue[l] = s.queue[l][:0]
	}
}

// Val returns the current value of a gate's output line.
func (s *Sim) Val(id netlist.GateID) logic.V { return s.val[id] }

// Values returns the underlying value slice (read-only by convention).
func (s *Sim) Values() []logic.V { return s.val }

func (s *Sim) schedule(id netlist.GateID) {
	if s.sched[id] {
		return
	}
	s.sched[id] = true
	l := s.c.Gate(id).Level
	s.queue[l] = append(s.queue[l], id)
}

// setSource assigns a level-0 signal (PI or FF output) and schedules the
// combinational fanout on change.
func (s *Sim) setSource(id netlist.GateID, v logic.V) {
	v = v.Norm()
	if s.val[id] == v {
		return
	}
	s.val[id] = v
	for _, fo := range s.c.Gate(id).Fanout {
		if !s.c.Gate(fo).IsSource() {
			s.schedule(fo)
		}
	}
}

// eval recomputes one gate from its fanin values.
func (s *Sim) eval(id netlist.GateID) logic.V {
	g := s.c.Gate(id)
	in := s.inBuf[:len(g.Fanin)]
	for j, f := range g.Fanin {
		in[j] = s.val[f]
	}
	s.Events++
	return logic.Eval(g.Op, in)
}

// settle processes the event queue level by level until quiescent.
func (s *Sim) settle() {
	for l := 1; l < len(s.queue); l++ {
		bucket := s.queue[l]
		for i := 0; i < len(bucket); i++ {
			id := bucket[i]
			s.sched[id] = false
			nv := s.eval(id)
			if nv == s.val[id] {
				continue
			}
			s.val[id] = nv
			for _, fo := range s.c.Gate(id).Fanout {
				if !s.c.Gate(fo).IsSource() {
					s.schedule(fo)
				}
			}
		}
		s.queue[l] = s.queue[l][:0]
	}
}

// Apply asserts a primary-input vector (one value per PI, in circuit PI
// order) and settles the combinational network. Flip-flops hold state.
func (s *Sim) Apply(vec []logic.V) {
	for i, pi := range s.c.PIs {
		s.setSource(pi, vec[i])
	}
	s.settle()
}

// Clock latches each flip-flop's D input into its output and schedules the
// resulting events; they propagate at the next Apply (or an explicit
// Settle).
func (s *Sim) Clock() {
	// Sample all D inputs first so FF-to-FF chains latch simultaneously.
	next := make([]logic.V, len(s.c.DFFs))
	for i, ff := range s.c.DFFs {
		next[i] = s.val[s.c.Gate(ff).Fanin[0]]
	}
	for i, ff := range s.c.DFFs {
		s.setSource(ff, next[i])
	}
}

// Settle propagates any pending events (e.g. after Clock) without a new
// input vector.
func (s *Sim) Settle() { s.settle() }

// Outputs copies the current primary-output values into dst (allocating if
// nil) and returns it.
func (s *Sim) Outputs(dst []logic.V) []logic.V {
	if dst == nil {
		dst = make([]logic.V, len(s.c.POs))
	}
	for i, po := range s.c.POs {
		dst[i] = s.val[po]
	}
	return dst
}

// Cycle runs one full clock cycle: apply vec, settle, capture the POs,
// then clock the flip-flops. It returns the sampled PO values.
func (s *Sim) Cycle(vec []logic.V) []logic.V {
	s.Apply(vec)
	out := s.Outputs(nil)
	s.Clock()
	return out
}

// Run simulates a whole vector sequence from the all-X state and returns
// the PO response matrix.
func Run(c *netlist.Circuit, vecs [][]logic.V) [][]logic.V {
	s := New(c)
	out := make([][]logic.V, len(vecs))
	for t, v := range vecs {
		out[t] = s.Cycle(v)
	}
	return out
}

// Trace is a read-only record of the good machine's settled value at every
// gate on every cycle: At(t, g) is gate g's output after the combinational
// network settled under vector t, before the clock edge. Concurrent fault
// simulators replay good values from a shared Trace instead of each
// re-deriving the good machine, so one goodsim run serves any number of
// fault partitions. A Trace is immutable after Record and safe for
// concurrent readers.
//
//simlint:immutable
type Trace struct {
	numGates int
	cycles   int
	vals     []logic.V // cycles × numGates, row-major by cycle
}

// NumGates returns the gate count of the recorded circuit.
func (tr *Trace) NumGates() int { return tr.numGates }

// Cycles returns the number of recorded clock cycles.
func (tr *Trace) Cycles() int { return tr.cycles }

// At returns gate g's settled value on the given cycle.
func (tr *Trace) At(cycle int, g netlist.GateID) logic.V {
	return tr.vals[cycle*tr.numGates+int(g)]
}

// Record simulates the whole vector sequence once from the all-X state and
// captures every gate's settled value each cycle.
func Record(c *netlist.Circuit, vecs [][]logic.V) *Trace {
	return RecordObserved(c, vecs, nil)
}

// RecordObserved is Record under observability: the derivation runs
// inside a "good-sim" tracer span and publishes the good machine's gate
// evaluations and recorded cycles as goodsim.* metrics. ob may be nil.
func RecordObserved(c *netlist.Circuit, vecs [][]logic.V, ob *obs.Observer) *Trace {
	sp := ob.Span("good-sim")
	defer sp.End()
	s := New(c)
	tr := &Trace{
		numGates: len(c.Gates),
		cycles:   len(vecs),
		vals:     make([]logic.V, len(c.Gates)*len(vecs)),
	}
	for t, v := range vecs {
		s.Apply(v)
		copy(tr.vals[t*tr.numGates:(t+1)*tr.numGates], s.val)
		s.Clock()
	}
	if reg := ob.Registry(); reg != nil {
		reg.Counter("goodsim.events").Add(int64(s.Events))
		reg.Counter("goodsim.cycles").Add(int64(len(vecs)))
		reg.Gauge("goodsim.trace_bytes").Set(int64(len(tr.vals)))
	}
	return tr
}
