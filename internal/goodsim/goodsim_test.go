package goodsim

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

const s27Bench = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func mustParse(t *testing.T, name, text string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// bruteCycle is an oracle: full re-evaluation of every gate in level order,
// no event-driven shortcuts.
type brute struct {
	c   *netlist.Circuit
	val []logic.V
}

func newBrute(c *netlist.Circuit) *brute {
	b := &brute{c: c, val: make([]logic.V, len(c.Gates))}
	for i := range b.val {
		b.val[i] = logic.X
	}
	return b
}

func (b *brute) cycle(vec []logic.V) []logic.V {
	for i, pi := range b.c.PIs {
		b.val[pi] = vec[i]
	}
	for _, lv := range b.c.Levels {
		for _, id := range lv {
			g := b.c.Gate(id)
			in := make([]logic.V, len(g.Fanin))
			for j, f := range g.Fanin {
				in[j] = b.val[f]
			}
			b.val[id] = logic.Eval(g.Op, in)
		}
	}
	out := make([]logic.V, len(b.c.POs))
	for i, po := range b.c.POs {
		out[i] = b.val[po]
	}
	next := make([]logic.V, len(b.c.DFFs))
	for i, ff := range b.c.DFFs {
		next[i] = b.val[b.c.Gate(ff).Fanin[0]]
	}
	for i, ff := range b.c.DFFs {
		b.val[ff] = next[i]
	}
	return out
}

const srBench = `
INPUT(set)
INPUT(clr)
OUTPUT(q)
nclr = NOT(clr)
hold = OR(q, set)
d = AND(hold, nclr)
q = DFF(d)
`

func TestSRLatchBehaviour(t *testing.T) {
	c := mustParse(t, "sr", srBench)
	s := New(c)
	steps := []struct {
		set, clr logic.V
		want     logic.V
	}{
		{1, 0, logic.X}, // q still uninitialized when sampled
		{0, 0, 1},       // set latched
		{0, 1, 1},       // clear seen, but q sampled before clock
		{0, 0, 0},       // cleared
		{0, 0, 0},       // holds
		{1, 0, 0},       // set seen; q sampled before clock
		{0, 0, 1},       // set latched
	}
	for i, st := range steps {
		out := s.Cycle([]logic.V{st.set, st.clr})
		if out[0] != st.want {
			t.Errorf("cycle %d: q = %v, want %v", i, out[0], st.want)
		}
	}
}

func TestEventDrivenMatchesBrute(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	vs := vectors.Random(c, 200, 42)
	s := New(c)
	b := newBrute(c)
	for tstep, vec := range vs.Vecs {
		got := s.Cycle(vec)
		want := b.cycle(vec)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cycle %d PO %d: event-driven %v, brute %v", tstep, i, got[i], want[i])
			}
		}
		// Internal state must agree too.
		for g := range c.Gates {
			if s.Val(netlist.GateID(g)) != b.val[g] {
				t.Fatalf("cycle %d gate %s: %v vs %v", tstep, c.Gate(netlist.GateID(g)).Name,
					s.Val(netlist.GateID(g)), b.val[g])
			}
		}
	}
}

func TestEventCountsBelowBrute(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	vs := vectors.Random(c, 500, 7)
	s := New(c)
	for _, vec := range vs.Vecs {
		s.Cycle(vec)
	}
	bruteEvals := 500 * c.Stats().Gates
	if s.Events >= bruteEvals {
		t.Errorf("event-driven evaluated %d gates, brute force would do %d", s.Events, bruteEvals)
	}
}

func TestReset(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	s := New(c)
	s.Cycle([]logic.V{0, 1, 0, 1})
	s.Reset()
	for i := range c.Gates {
		if s.Val(netlist.GateID(i)) != logic.X {
			t.Fatalf("gate %d not X after Reset", i)
		}
	}
	// A reset simulator must behave like a fresh one.
	s2 := New(c)
	vs := vectors.Random(c, 50, 3)
	for tstep, vec := range vs.Vecs {
		a := s.Cycle(vec)
		b := s2.Cycle(vec)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cycle %d: reset sim diverges", tstep)
			}
		}
	}
}

func TestRunMatchesManual(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	vs := vectors.Random(c, 30, 11)
	resp := Run(c, vs.Vecs)
	s := New(c)
	for tstep, vec := range vs.Vecs {
		out := s.Cycle(vec)
		for i := range out {
			if out[i] != resp[tstep][i] {
				t.Fatalf("Run mismatch at cycle %d", tstep)
			}
		}
	}
}

// TestXInitialization: before any binary value reaches a signal it must be
// X, and X must clear only through controlling values.
func TestXInitialization(t *testing.T) {
	c := mustParse(t, "x", "INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = XOR(q, a)\n")
	s := New(c)
	out := s.Cycle([]logic.V{1})
	if out[0] != logic.X {
		t.Errorf("XOR with uninitialized FF = %v, want X", out[0])
	}
	out = s.Cycle([]logic.V{1})
	if out[0] != logic.Zero {
		t.Errorf("after FF init: z = %v, want 0", out[0])
	}
}

func TestApplyWithXInputs(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	s := New(c)
	vec := []logic.V{logic.X, logic.X, logic.X, logic.X}
	out := s.Cycle(vec)
	if !out[0].Valid() {
		t.Errorf("invalid output value %d", out[0])
	}
}

func BenchmarkGoodSimS27(b *testing.B) {
	c, err := netlist.ParseBenchString("s27", s27Bench)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	vec := make([]logic.V, len(c.PIs))
	s := New(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range vec {
			vec[j] = logic.V(rng.Intn(2))
		}
		s.Cycle(vec)
	}
}

// TestTraceMatchesLiveSimulation: Record's per-cycle snapshot must equal
// the values a live simulator holds after each Apply, for every gate.
func TestTraceMatchesLiveSimulation(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	vecs := vectors.Random(c, 50, 3).Vecs
	tr := Record(c, vecs)
	if tr.Cycles() != len(vecs) || tr.NumGates() != len(c.Gates) {
		t.Fatalf("trace shape %dx%d, want %dx%d",
			tr.Cycles(), tr.NumGates(), len(vecs), len(c.Gates))
	}
	s := New(c)
	for cyc, v := range vecs {
		s.Apply(v)
		for g := range c.Gates {
			if got, want := tr.At(cyc, netlist.GateID(g)), s.Val(netlist.GateID(g)); got != want {
				t.Fatalf("cycle %d gate %d: trace %v, live %v", cyc, g, got, want)
			}
		}
		s.Clock()
	}
}
