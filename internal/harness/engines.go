package harness

// EngineInfo describes one registered engine for documentation and
// drift checks: cmd/tables -engines prints this registry, and CI diffs
// it against the README engine table so the two cannot drift apart.
type EngineInfo struct {
	// Name is the Engine constant's string form (the -engine flag value).
	Name Engine
	// Kind classifies the engine: "concurrent" (event-driven concurrent
	// fault simulation), "parallel" (sharded concurrent), "compiled",
	// "baseline", or "good" (good-machine only, no faults).
	Kind string
	// Description is a one-line summary, kept in sync with README.md.
	Description string
}

// Engines returns every registered engine in presentation order. The
// slice is freshly allocated; callers may reorder or filter it.
func Engines() []EngineInfo {
	return []EngineInfo{
		{CsimPlain, "concurrent", "concurrent fault simulation, no improvements (ablation baseline)"},
		{CsimV, "concurrent", "concurrent with the paper's V improvement (visible/invisible list splitting)"},
		{CsimM, "concurrent", "concurrent with the paper's M improvement (macro gates)"},
		{CsimMV, "concurrent", "concurrent with both improvements; the paper's headline engine"},
		{CsimEager, "concurrent", "csim-MV with eager full-scan fault dropping (ablation)"},
		{CsimReconv, "concurrent", "csim-MV with reconvergent-macro extension (ablation)"},
		{CsimP, "parallel", "csim-MV fault-partitioned over worker goroutines sharing one good trace"},
		{CsimV2, "parallel", "csim-MV vector-partitioned into speculative windows with repair"},
		{CsimGrid, "parallel", "2-D fault x vector grid; unified scheduler picks the shape"},
		{CsimC, "compiled", "compiled bit-parallel backend: levelized straight-line code, packed 64-vector passes over the fault cone"},
		{PROOFS, "baseline", "bit-parallel single-fault-propagation baseline (PROOFS-style)"},
		{Serial, "baseline", "brute-force oracle: one full resimulation per fault"},
		{GoodSim, "good", "interpreted event-driven good machine only, no faults"},
		{GoodC, "good", "compiled good machine only: the straight-line fused table-lookup stream"},
	}
}

// EngineByName looks up a registered engine by its string form. The
// second result is false when the name is not registered.
func EngineByName(name string) (EngineInfo, bool) {
	for _, e := range Engines() {
		if string(e.Name) == name {
			return e, true
		}
	}
	return EngineInfo{}, false
}
