// Package harness runs the paper's experiments: it pairs circuits with
// test sets, runs a chosen simulator configuration, and collects the
// CPU-time / memory / coverage measurements that Tables 2-6 report.
package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/parallel"
	"repro/internal/proofs"
	"repro/internal/vectors"
)

// Engine names a simulator configuration under measurement.
type Engine string

// The measured engines. CsimV/CsimM/CsimMV are the paper's variants;
// CsimPlain (no improvements) and CsimEager (full-scan dropping) exist for
// ablations.
const (
	CsimPlain Engine = "csim"
	CsimV     Engine = "csim-V"
	CsimM     Engine = "csim-M"
	CsimMV    Engine = "csim-MV"
	CsimEager Engine = "csim-MV-eagerdrop"
	// CsimReconv uses the paper's reconvergent-macro extension.
	CsimReconv Engine = "csim-MV-reconvergent"
	// CsimP is the fault-partition parallel engine: csim-MV sharded over
	// worker goroutines replaying a shared good-machine trace.
	CsimP  Engine = "csim-P"
	PROOFS Engine = "PROOFS"
)

// Config returns the csim configuration for a csim engine.
func (e Engine) Config() csim.Config {
	switch e {
	case CsimV:
		return csim.V()
	case CsimM:
		return csim.M()
	case CsimMV:
		return csim.MV()
	case CsimEager:
		cfg := csim.MV()
		cfg.EagerDrop = true
		return cfg
	case CsimReconv:
		cfg := csim.MV()
		cfg.ReconvergentMacros = true
		return cfg
	default:
		return csim.Config{}
	}
}

// Measurement is one table cell group: an engine run on one workload.
type Measurement struct {
	Engine   Engine
	Circuit  string
	Patterns int
	Faults   int
	Detected int
	PotOnly  int // potentially-but-never-hard detected
	Coverage float64
	CPU      time.Duration
	MemBytes int64 // accounted fault-structure memory at peak
	Workers  int   // goroutine count (csim-P only; 0 otherwise)
}

// FltCvg returns hard coverage in percent.
func (m Measurement) FltCvg() float64 { return 100 * m.Coverage }

// Run measures one engine over a universe and test set.
func Run(engine Engine, u *faults.Universe, vs *vectors.Set) (Measurement, error) {
	m := Measurement{
		Engine:   engine,
		Circuit:  u.Circuit.Name,
		Patterns: vs.Len(),
		Faults:   u.NumFaults(),
	}
	start := time.Now()
	var res *faults.Result
	switch engine {
	case CsimP:
		return RunParallel(u, vs, 0)
	case PROOFS:
		sim, err := proofs.New(u)
		if err != nil {
			return m, err
		}
		res = sim.Run(vs)
		m.MemBytes = sim.Stats().MemBytes
	default:
		sim, err := csim.New(u, engine.Config())
		if err != nil {
			return m, err
		}
		res = sim.Run(vs)
		m.MemBytes = sim.Stats().MemBytes
	}
	m.CPU = time.Since(start)
	m.Detected = res.NumDet
	m.PotOnly = res.NumPotOnly()
	m.Coverage = res.Coverage()
	return m, nil
}

// RunParallel measures the fault-partition parallel engine: the csim-MV
// variant sharded over the given number of worker goroutines (<= 0 means
// runtime.NumCPU(), always clamped to the universe size), replaying one
// shared good-machine trace. Measurement.Workers records the effective
// partition count.
func RunParallel(u *faults.Universe, vs *vectors.Set, workers int) (Measurement, error) {
	opt := parallel.Options{Workers: workers, Config: csim.MV()}
	m := Measurement{
		Engine:   CsimP,
		Circuit:  u.Circuit.Name,
		Patterns: vs.Len(),
		Faults:   u.NumFaults(),
		Workers:  opt.EffectiveWorkers(u.NumFaults()),
	}
	start := time.Now()
	res, st, err := parallel.Simulate(u, vs, opt)
	if err != nil {
		return m, err
	}
	m.CPU = time.Since(start)
	m.MemBytes = st.MemBytes
	m.Detected = res.NumDet
	m.PotOnly = res.NumPotOnly()
	m.Coverage = res.Coverage()
	return m, nil
}

// Table renders rows of measurements as an aligned text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// Seconds formats a duration as the paper's CPU columns (seconds).
func Seconds(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// Meg formats bytes as megabytes.
func Meg(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
