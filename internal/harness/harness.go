// Package harness runs the paper's experiments: it pairs circuits with
// test sets, runs a chosen simulator configuration, and collects the
// CPU-time / memory / coverage measurements that Tables 2-6 report.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/compiled"
	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/proofs"
	"repro/internal/serial"
	"repro/internal/vectors"
)

// Engine names a simulator configuration under measurement.
type Engine string

// The measured engines. CsimV/CsimM/CsimMV are the paper's variants;
// CsimPlain (no improvements) and CsimEager (full-scan dropping) exist for
// ablations.
const (
	CsimPlain Engine = "csim"
	CsimV     Engine = "csim-V"
	CsimM     Engine = "csim-M"
	CsimMV    Engine = "csim-MV"
	CsimEager Engine = "csim-MV-eagerdrop"
	// CsimReconv uses the paper's reconvergent-macro extension.
	CsimReconv Engine = "csim-MV-reconvergent"
	// CsimP is the fault-partition parallel engine: csim-MV sharded over
	// worker goroutines replaying a shared good-machine trace.
	CsimP Engine = "csim-P"
	// CsimV2 is the vector-partition parallel engine: the vector sequence
	// split into windows simulated concurrently by speculation and repair.
	CsimV2 Engine = "csim-V2"
	// CsimGrid is the 2-D engine: fault shards crossed with vector
	// windows. With both axes unset the unified scheduler picks the shape.
	CsimGrid Engine = "csim-grid"
	// CsimC is the compiled backend: the circuit lowered once into
	// branch-free levelized straight-line evaluation over flat word
	// arrays, a packed 64-cycle-per-word good trace, and per-fault
	// bit-parallel cone re-evaluation (internal/compiled).
	CsimC Engine = "csim-C"
	// PROOFS is the bit-parallel single-fault-propagation baseline.
	PROOFS Engine = "PROOFS"
	// Serial is the brute-force oracle: one full resimulation per fault.
	// It is orders of magnitude slower than every other engine and exists
	// as the ground-truth throughput floor in benchmark reports.
	Serial Engine = "serial"
	// GoodSim runs only the interpreted event-driven good machine
	// (internal/goodsim) — no faults. It exists as the interpreter side
	// of the good-machine throughput comparison in benchmark reports.
	GoodSim Engine = "good-sim"
	// GoodC runs only the compiled good machine: the straight-line fused
	// table-lookup stream over the flat compiled program. The compiled
	// side of the good-machine throughput comparison.
	GoodC Engine = "good-C"
)

// Config returns the csim configuration for a csim engine.
func (e Engine) Config() csim.Config {
	switch e {
	case CsimV:
		return csim.V()
	case CsimM:
		return csim.M()
	case CsimMV:
		return csim.MV()
	case CsimEager:
		cfg := csim.MV()
		cfg.EagerDrop = true
		return cfg
	case CsimReconv:
		cfg := csim.MV()
		cfg.ReconvergentMacros = true
		return cfg
	default:
		return csim.Config{}
	}
}

// Measurement is one table cell group: an engine run on one workload.
type Measurement struct {
	// Engine is the measured simulator configuration.
	Engine Engine
	// Circuit is the workload circuit's name.
	Circuit string
	// Patterns is the applied test-vector count.
	Patterns int
	// Faults is the fault-universe size.
	Faults int
	// Detected is the hard-detection count.
	Detected int
	// PotOnly counts potentially-but-never-hard detected faults.
	PotOnly int
	// Coverage is hard coverage in [0,1].
	Coverage float64
	// CPU is the measured wall time of the run.
	CPU time.Duration
	// MemBytes is the accounted fault-structure memory at peak.
	MemBytes int64
	// Workers is the fault-shard goroutine count (csim-P and csim-grid
	// only; 0 otherwise).
	Workers int
	// Windows is the vector-window count (csim-V2 and csim-grid only;
	// 0 otherwise).
	Windows int
}

// FltCvg returns hard coverage in percent.
func (m Measurement) FltCvg() float64 { return 100 * m.Coverage }

// Run measures one engine over a universe and test set.
func Run(engine Engine, u *faults.Universe, vs *vectors.Set) (Measurement, error) {
	return RunObserved(engine, u, vs, nil)
}

// EnginePrefix is the registry namespace of a csim engine's metrics when
// run through the harness, e.g. "csim-MV." — per-engine eval counts stay
// distinguishable in one metrics snapshot.
func EnginePrefix(engine Engine) string { return string(engine) + "." }

// compiledCache memoizes the compile-once csim-C artifact per circuit.
// The Program is immutable and shared by design — lowering a circuit is
// a one-time cost, exactly like the cached universes and deterministic
// sets — so repeated harness runs (bench trials, table cells) measure
// evaluation, not recompilation. The service layer memoizes the same
// artifact in its own cache (service.Compiled.Program).
var (
	compiledMu    sync.Mutex
	compiledCache = map[*netlist.Circuit]*compiled.Program{}
)

// compiledProgram returns the memoized compiled form of a circuit.
func compiledProgram(c *netlist.Circuit) *compiled.Program {
	compiledMu.Lock()
	defer compiledMu.Unlock()
	p := compiledCache[c]
	if p == nil {
		p = compiled.Compile(c, nil)
		compiledCache[c] = p
	}
	return p
}

// RunObserved measures one engine under the observability layer: the
// engine registers its metrics into ob's registry (namespaced by
// EnginePrefix), the simulation runs inside a "fault-sim" tracer span,
// and — when a registry is attached — the Measurement's memory column is
// sourced from the registry snapshot rather than the bespoke Stats
// counters. ob may be nil, which is exactly Run.
func RunObserved(engine Engine, u *faults.Universe, vs *vectors.Set, ob *obs.Observer) (Measurement, error) {
	m := Measurement{
		Engine:   engine,
		Circuit:  u.Circuit.Name,
		Patterns: vs.Len(),
		Faults:   u.NumFaults(),
	}
	start := time.Now()
	var res *faults.Result
	switch engine {
	case CsimP:
		return RunParallelObserved(u, vs, 0, ob)
	case CsimV2:
		return RunVectorShardedObserved(u, vs, 0, ob)
	case CsimGrid:
		return RunGridObserved(u, vs, 0, 0, ob)
	case Serial:
		sp := ob.Span("fault-sim")
		res = serial.Simulate(u, vs)
		sp.End()
	case CsimC:
		sim, err := compiled.NewWith(compiledProgram(u.Circuit), u)
		if err != nil {
			return m, err
		}
		sp := ob.Span("fault-sim")
		res = sim.Run(vs)
		sp.End()
		st := sim.Stats()
		csim.PublishStats(ob.Registry(), EnginePrefix(engine), st)
		m.MemBytes = st.MemBytes
	case GoodSim:
		sp := ob.Span("good-sim")
		s := goodsim.New(u.Circuit)
		for _, vec := range vs.Vecs {
			s.Apply(vec)
			s.Clock()
		}
		sp.End()
		res = faults.NewResult(u)
		ob.Registry().Counter(EnginePrefix(engine) + "good_evals").Add(int64(s.Events))
	case GoodC:
		g := compiledProgram(u.Circuit).NewGood()
		sp := ob.Span("good-sim")
		g.Run(vs)
		sp.End()
		res = faults.NewResult(u)
		ob.Registry().Counter(EnginePrefix(engine) + "good_evals").Add(g.Evals)
	case PROOFS:
		sim, err := proofs.New(u)
		if err != nil {
			return m, err
		}
		sp := ob.Span("fault-sim")
		res = sim.Run(vs)
		sp.End()
		m.MemBytes = sim.Stats().MemBytes
		ob.Registry().Gauge(EnginePrefix(engine) + "mem_bytes").Set(m.MemBytes)
	default:
		cfg := engine.Config()
		cfg.Obs = ob
		cfg.ObsPrefix = EnginePrefix(engine)
		sim, err := csim.New(u, cfg)
		if err != nil {
			return m, err
		}
		sp := ob.Span("fault-sim")
		res = sim.Run(vs)
		sp.End()
		if st, ok := csim.StatsFromRegistry(ob.Registry(), cfg.ObsPrefix); ok {
			m.MemBytes = st.MemBytes
		} else {
			m.MemBytes = sim.Stats().MemBytes
		}
	}
	m.CPU = time.Since(start)
	m.Detected = res.NumDet
	m.PotOnly = res.NumPotOnly()
	m.Coverage = res.Coverage()
	return m, nil
}

// RunParallel measures the fault-partition parallel engine: the csim-MV
// variant sharded over the given number of worker goroutines (<= 0 means
// runtime.NumCPU(), always clamped to the universe size), replaying one
// shared good-machine trace. Measurement.Workers records the effective
// partition count.
func RunParallel(u *faults.Universe, vs *vectors.Set, workers int) (Measurement, error) {
	return RunParallelObserved(u, vs, workers, nil)
}

// RunParallelObserved is RunParallel under the observability layer: phase
// spans, per-worker gauges under "csim-P.worker<i>.", merged run totals
// under "csim-P.", and a registry-sourced memory column. ob may be nil.
func RunParallelObserved(u *faults.Universe, vs *vectors.Set, workers int, ob *obs.Observer) (Measurement, error) {
	opt := parallel.Options{Workers: workers, Config: csim.MV(), Obs: ob}
	m := Measurement{
		Engine:   CsimP,
		Circuit:  u.Circuit.Name,
		Patterns: vs.Len(),
		Faults:   u.NumFaults(),
		Workers:  opt.EffectiveWorkers(u.NumFaults()),
	}
	start := time.Now()
	res, st, err := parallel.Simulate(u, vs, opt)
	if err != nil {
		return m, err
	}
	m.CPU = time.Since(start)
	if rst, ok := csim.StatsFromRegistry(ob.Registry(), parallel.MergedPrefix); ok {
		m.MemBytes = rst.MemBytes
	} else {
		m.MemBytes = st.MemBytes
	}
	m.Detected = res.NumDet
	m.PotOnly = res.NumPotOnly()
	m.Coverage = res.Coverage()
	return m, nil
}

// RunVectorSharded measures the vector-partition parallel engine: the
// csim-MV variant over the vector sequence split into the given number
// of windows (<= 0 means runtime.NumCPU(), always clamped to the vector
// count), simulated concurrently by speculation and repair.
// Measurement.Windows records the effective window count.
func RunVectorSharded(u *faults.Universe, vs *vectors.Set, windows int) (Measurement, error) {
	return RunVectorShardedObserved(u, vs, windows, nil)
}

// RunVectorShardedObserved is RunVectorSharded under the observability
// layer: phase spans, per-window gauges under "csim-V2.window<i>.",
// merged run totals under "csim-V2.", and a registry-sourced memory
// column. ob may be nil.
func RunVectorShardedObserved(u *faults.Universe, vs *vectors.Set, windows int, ob *obs.Observer) (Measurement, error) {
	opt := parallel.VOptions{Windows: windows, Config: csim.MV(), Obs: ob}
	m := Measurement{
		Engine:   CsimV2,
		Circuit:  u.Circuit.Name,
		Patterns: vs.Len(),
		Faults:   u.NumFaults(),
		Windows:  opt.EffectiveWindows(vs.Len()),
	}
	start := time.Now()
	res, st, err := parallel.SimulateVectorSharded(u, vs, opt)
	if err != nil {
		return m, err
	}
	m.CPU = time.Since(start)
	if rst, ok := csim.StatsFromRegistry(ob.Registry(), parallel.V2Prefix); ok {
		m.MemBytes = rst.MemBytes
	} else {
		m.MemBytes = st.MemBytes
	}
	m.Detected = res.NumDet
	m.PotOnly = res.NumPotOnly()
	m.Coverage = res.Coverage()
	return m, nil
}

// RunGrid measures the 2-D engine: faultShards fault partitions crossed
// with windows vector windows. When both axes are <= 0 the unified
// scheduler picks the shape from the job's dimensions; otherwise a
// non-positive axis defaults to 1. Measurement.Workers and
// Measurement.Windows record the effective grid shape.
func RunGrid(u *faults.Universe, vs *vectors.Set, faultShards, windows int) (Measurement, error) {
	return RunGridObserved(u, vs, faultShards, windows, nil)
}

// RunGridObserved is RunGrid under the observability layer: per-shard
// namespaces under "csim-grid.shard<k>.", merged totals under
// "csim-grid.", and — when the scheduler plans the shape — the
// "sched.*" decision gauges. ob may be nil.
func RunGridObserved(u *faults.Universe, vs *vectors.Set, faultShards, windows int, ob *obs.Observer) (Measurement, error) {
	m := Measurement{
		Engine:   CsimGrid,
		Circuit:  u.Circuit.Name,
		Patterns: vs.Len(),
		Faults:   u.NumFaults(),
	}
	start := time.Now()
	var (
		res *faults.Result
		st  csim.Stats
		err error
	)
	if faultShards <= 0 && windows <= 0 {
		var plan parallel.Plan
		res, st, plan, err = parallel.SimulateAuto(u, vs, parallel.AutoOptions{
			Config: csim.MV(), Obs: ob})
		m.Workers, m.Windows = plan.FaultShards, plan.Windows
	} else {
		opt := parallel.GridOptions{
			FaultShards: faultShards, Windows: windows,
			Config: csim.MV(), Obs: ob,
		}
		m.Workers, m.Windows = opt.EffectiveShape(u.NumFaults(), vs.Len())
		res, st, err = parallel.SimulateGrid(u, vs, opt)
	}
	if err != nil {
		return m, err
	}
	m.CPU = time.Since(start)
	if rst, ok := csim.StatsFromRegistry(ob.Registry(), parallel.GridPrefix); ok {
		m.MemBytes = rst.MemBytes
	} else {
		m.MemBytes = st.MemBytes
	}
	m.Detected = res.NumDet
	m.PotOnly = res.NumPotOnly()
	m.Coverage = res.Coverage()
	return m, nil
}

// NamedSnapshot is one table cell's registry snapshot.
type NamedSnapshot struct {
	// Name identifies the cell as "circuit/engine".
	Name string `json:"name"`
	// Metrics is the cell's full registry snapshot.
	Metrics []obs.Point `json:"metrics"`
}

// MetricsSink accumulates per-run registry snapshots while the harness
// regenerates tables; cmd/tables serializes it behind -metrics-out.
type MetricsSink struct {
	mu   sync.Mutex
	runs []NamedSnapshot
}

// Add records one named snapshot.
func (s *MetricsSink) Add(name string, metrics []obs.Point) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.runs = append(s.runs, NamedSnapshot{Name: name, Metrics: metrics})
	s.mu.Unlock()
}

// Runs returns the collected snapshots in insertion order.
func (s *MetricsSink) Runs() []NamedSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]NamedSnapshot(nil), s.runs...)
}

// WriteJSON writes the collected snapshots as {"runs": [...]}.
func (s *MetricsSink) WriteJSON(w io.Writer) error {
	runs := s.Runs()
	if runs == nil {
		runs = []NamedSnapshot{}
	}
	return writeJSON(w, struct {
		Runs []NamedSnapshot `json:"runs"`
	}{runs})
}

// Table renders rows of measurements as an aligned text table.
type Table struct {
	// Title prints above the header.
	Title string
	// Header is the column-name row.
	Header []string
	// Rows are the body cells, one slice per row.
	Rows [][]string
	// Caption prints below the body.
	Caption string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Seconds formats a duration as the paper's CPU columns (seconds).
func Seconds(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// Meg formats bytes as megabytes.
func Meg(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
