package harness

import (
	"strings"
	"testing"

	"repro/internal/vectors"
)

func TestRunEnginesAgree(t *testing.T) {
	u, err := StuckUniverse("s298")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := RandomSet("s298", 100)
	if err != nil {
		t.Fatal(err)
	}
	var detected = -1
	for _, eng := range []Engine{CsimPlain, CsimV, CsimM, CsimMV, CsimEager, CsimP, CsimV2, CsimGrid, PROOFS} {
		m, err := Run(eng, u, vs)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if m.Faults != u.NumFaults() || m.Patterns != vs.Len() {
			t.Errorf("%s: measurement metadata wrong: %+v", eng, m)
		}
		if detected < 0 {
			detected = m.Detected
		} else if m.Detected != detected {
			t.Errorf("%s detected %d, others %d", eng, m.Detected, detected)
		}
		if m.CPU <= 0 {
			t.Errorf("%s: no CPU time measured", eng)
		}
	}
}

func TestDeterministicSetCachedAndStable(t *testing.T) {
	a, err := DeterministicSet("s298")
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeterministicSet("s298")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("deterministic set not cached")
	}
	if a.Len() == 0 {
		t.Error("empty deterministic set")
	}
}

func TestDeterministicSetLargeUsesConfiguredCount(t *testing.T) {
	vs, err := DeterministicSet("s5378")
	if err != nil {
		t.Fatal(err)
	}
	if vs.Len() != detPatternsLarge["s5378"] {
		t.Errorf("s5378 deterministic set has %d patterns, want %d",
			vs.Len(), detPatternsLarge["s5378"])
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Table X",
		Header:  []string{"ckt", "CPU"},
		Caption: "cap",
	}
	tbl.Add("s298", "0.01")
	tbl.Add("s35932", "12.00")
	s := tbl.String()
	for _, want := range []string{"Table X", "ckt", "s35932", "12.00", "cap"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 6 {
		t.Errorf("table has %d lines, want 6:\n%s", len(lines), s)
	}
}

func TestTable2SmallSubset(t *testing.T) {
	tbl, err := Table2([]string{"s27"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || tbl.Rows[0][0] != "s27" {
		t.Errorf("Table2 rows: %v", tbl.Rows)
	}
}

func TestTable6TransitionCoverageBelowStuck(t *testing.T) {
	// The paper's Table 6 observation: stuck-at tests are poor transition
	// tests.
	name := "s344"
	su, err := StuckUniverse(name)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := TransitionUniverse(name)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := DeterministicSet(name)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Run(CsimMV, su, vs)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := Run(CsimMV, tu, vs)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Coverage >= sm.Coverage {
		t.Errorf("transition coverage %.2f not below stuck coverage %.2f",
			tm.Coverage, sm.Coverage)
	}
}

func TestRunRejectsTransitionOnPROOFS(t *testing.T) {
	tu, err := TransitionUniverse("s27")
	if err != nil {
		t.Fatal(err)
	}
	vs := vectors.Random(tu.Circuit, 5, 1)
	if _, err := Run(PROOFS, tu, vs); err == nil {
		t.Error("PROOFS accepted a transition universe")
	}
}

func TestUnknownCircuit(t *testing.T) {
	if _, err := StuckUniverse("nope"); err == nil {
		t.Error("unknown circuit accepted")
	}
	if _, err := DeterministicSet("nope"); err == nil {
		t.Error("unknown circuit accepted")
	}
	if _, err := RandomSet("nope", 5); err == nil {
		t.Error("unknown circuit accepted")
	}
	if _, err := TransitionUniverse("nope"); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestRunParallelWorkerSweep(t *testing.T) {
	u, err := StuckUniverse("s298")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := RandomSet("s298", 80)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(CsimMV, u, vs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 5} {
		m, err := RunParallel(u, vs, w)
		if err != nil {
			t.Fatal(err)
		}
		if m.Workers != w || m.Engine != CsimP {
			t.Errorf("workers=%d: measurement metadata wrong: %+v", w, m)
		}
		if m.Detected != base.Detected || m.PotOnly != base.PotOnly {
			t.Errorf("workers=%d: detected %d/%d pot, csim-MV %d/%d",
				w, m.Detected, m.PotOnly, base.Detected, base.PotOnly)
		}
	}
	// An absurd request is clamped; Workers records the effective count.
	m, err := RunParallel(u, vs, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != u.NumFaults() {
		t.Errorf("workers=10000: effective %d, want clamp to %d faults",
			m.Workers, u.NumFaults())
	}
}

func TestRunVectorShardedWindowSweep(t *testing.T) {
	u, err := StuckUniverse("s298")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := RandomSet("s298", 80)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(CsimMV, u, vs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 5} {
		m, err := RunVectorSharded(u, vs, w)
		if err != nil {
			t.Fatal(err)
		}
		if m.Windows != w || m.Engine != CsimV2 {
			t.Errorf("windows=%d: measurement metadata wrong: %+v", w, m)
		}
		if m.Detected != base.Detected || m.PotOnly != base.PotOnly {
			t.Errorf("windows=%d: detected %d/%d pot, csim-MV %d/%d",
				w, m.Detected, m.PotOnly, base.Detected, base.PotOnly)
		}
	}
	// An absurd request is clamped; Windows records the effective count.
	m, err := RunVectorSharded(u, vs, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Windows != vs.Len() {
		t.Errorf("windows=10000: effective %d, want clamp to %d vectors",
			m.Windows, vs.Len())
	}
}

func TestRunGridShapes(t *testing.T) {
	u, err := StuckUniverse("s298")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := RandomSet("s298", 80)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(CsimMV, u, vs)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {4, 1}, {1, 4}} {
		m, err := RunGrid(u, vs, shape[0], shape[1])
		if err != nil {
			t.Fatal(err)
		}
		if m.Workers != shape[0] || m.Windows != shape[1] || m.Engine != CsimGrid {
			t.Errorf("shape %v: measurement metadata wrong: %+v", shape, m)
		}
		if m.Detected != base.Detected || m.PotOnly != base.PotOnly {
			t.Errorf("shape %v: detected %d/%d pot, csim-MV %d/%d",
				shape, m.Detected, m.PotOnly, base.Detected, base.PotOnly)
		}
	}
	// Auto mode: the scheduler picks the shape and records it.
	m, err := RunGrid(u, vs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers < 1 || m.Windows < 1 {
		t.Errorf("auto grid did not record a shape: %+v", m)
	}
	if m.Detected != base.Detected {
		t.Errorf("auto grid detected %d, csim-MV %d", m.Detected, base.Detected)
	}
}
