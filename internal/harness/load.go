package harness

import (
	"fmt"
	"sort"
	"time"
)

// LatencySummary aggregates a load run's per-job latencies into the
// cells a serve-mode report prints: count, throughput and the usual
// percentile ladder.
type LatencySummary struct {
	// Count is the number of observations.
	Count int
	// Wall is the whole run's wall-clock span (throughput denominator).
	Wall time.Duration
	// Min, P50, P90, P99 and Max are the latency percentiles.
	Min, P50, P90, P99, Max time.Duration
	// Mean is the arithmetic-mean latency.
	Mean time.Duration
}

// Summarize computes a LatencySummary over per-job latencies observed
// during one wall-clock window. A nil/empty sample yields a zero
// summary.
func Summarize(latencies []time.Duration, wall time.Duration) LatencySummary {
	s := LatencySummary{Count: len(latencies), Wall: wall}
	if len(latencies) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Mean = sum / time.Duration(len(sorted))
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile reads the nearest-rank percentile from an ascending sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Throughput is jobs per second over the wall-clock window (0 when the
// window is empty).
func (s LatencySummary) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Count) / s.Wall.Seconds()
}

// String renders the one-line latency report csimload prints.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d wall=%s rate=%.1f/s min=%s p50=%s p90=%s p99=%s max=%s",
		s.Count, s.Wall.Round(time.Millisecond), s.Throughput(),
		s.Min.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P90.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}
