package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// LatencySummary aggregates a load run's per-job latencies into the
// cells a serve-mode report prints: count, throughput and the usual
// percentile ladder.
type LatencySummary struct {
	// Count is the number of observations.
	Count int
	// Wall is the whole run's wall-clock span (throughput denominator).
	Wall time.Duration
	// Min, P50, P90, P99 and Max are the latency percentiles.
	Min, P50, P90, P99, Max time.Duration
	// Mean is the arithmetic-mean latency.
	Mean time.Duration
}

// quantileBuckets is the nanosecond layout Summarize estimates its
// percentiles over: 2x exponential steps from ~1µs to ~37min, wide
// enough for a timed-out 5m job and fine enough (~2x resolution) for a
// load report. The service's SLO gauges run the same Quantile code over
// their own layout — one quantile implementation, two layouts.
var quantileBuckets = obs.ExpBuckets(1024, 2, 42)

// Summarize computes a LatencySummary over per-job latencies observed
// during one wall-clock window. Count, Min, Max and Mean are exact; the
// percentile ladder is estimated with obs.Histogram.Quantile — the one
// shared quantile implementation — by observing the samples into the
// exponential quantileBuckets layout and interpolating. A nil/empty
// sample yields a zero summary.
func Summarize(latencies []time.Duration, wall time.Duration) LatencySummary {
	s := LatencySummary{Count: len(latencies), Wall: wall}
	if len(latencies) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	h := obs.NewHistogram(quantileBuckets)
	for _, d := range sorted {
		sum += d
		h.Observe(d.Nanoseconds())
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Mean = sum / time.Duration(len(sorted))
	// Bucket interpolation can land outside the observed range (the
	// estimate lives on bucket bounds, the extremes are exact) — clamp so
	// the ladder stays monotone against Min and Max.
	q := func(p float64) time.Duration {
		d := time.Duration(h.Quantile(p))
		if d < s.Min {
			return s.Min
		}
		if d > s.Max {
			return s.Max
		}
		return d
	}
	s.P50 = q(0.50)
	s.P90 = q(0.90)
	s.P99 = q(0.99)
	return s
}

// Throughput is jobs per second over the wall-clock window (0 when the
// window is empty).
func (s LatencySummary) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Count) / s.Wall.Seconds()
}

// String renders the one-line latency report csimload prints.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d wall=%s rate=%.1f/s min=%s p50=%s p90=%s p99=%s max=%s",
		s.Count, s.Wall.Round(time.Millisecond), s.Throughput(),
		s.Min.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P90.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}
