package harness

import (
	"fmt"

	"repro/internal/iscas"
	"repro/internal/obs"
)

// Table3Circuits is the circuit list of the paper's Table 3 (deterministic
// patterns I).
var Table3Circuits = []string{
	"s298", "s344", "s349", "s382", "s386", "s400", "s444", "s510",
	"s526", "s641", "s713", "s820", "s832", "s953", "s1196", "s1238",
	"s1423", "s1488", "s1494", "s5378", "s35932",
}

// Table4Circuits is the higher-coverage-test subset (Table 4): circuits
// where the sequential test generator produced improved sets.
var Table4Circuits = []string{
	"s298", "s344", "s349", "s382", "s386", "s400", "s444",
	"s526", "s820", "s832", "s1488", "s1494",
}

// Table6Circuits is the transition-fault list (Table 6).
var Table6Circuits = []string{
	"s298", "s344", "s349", "s382", "s386", "s400", "s444", "s510",
	"s526", "s641", "s713", "s820", "s832", "s953", "s1196", "s1238",
	"s1423", "s1488", "s1494",
}

// Table5PatternCounts are the random-pattern row sizes of Table 5.
var Table5PatternCounts = []int{100, 200, 500, 1000}

// Table2 reproduces the benchmark-statistics table.
func Table2(circuits []string) (*Table, error) {
	t := &Table{
		Title:  "Table 2. Benchmark circuits and tests",
		Header: []string{"ckt", "#PI", "#PO", "#FF", "#gates", "#flts", "#ptns", "cvg%"},
		Caption: "circuits: s27 genuine; others synthetic stand-ins at published shapes\n" +
			"#flts: equivalence-collapsed stuck-at; #ptns/cvg: deterministic sets (internal/atpg)",
	}
	for _, name := range circuits {
		c, err := iscas.Get(name)
		if err != nil {
			return nil, err
		}
		st := c.Stats()
		u, err := StuckUniverse(name)
		if err != nil {
			return nil, err
		}
		vs, err := DeterministicSet(name)
		if err != nil {
			return nil, err
		}
		m, err := Run(CsimMV, u, vs)
		if err != nil {
			return nil, err
		}
		t.Add(name, itoa(st.PIs), itoa(st.POs), itoa(st.DFFs), itoa(st.Gates),
			itoa(u.NumFaults()), itoa(vs.Len()), fmt.Sprintf("%.1f", m.FltCvg()))
	}
	return t, nil
}

// Table3 reproduces the deterministic-patterns comparison of csim-V,
// csim-M, csim-MV and PROOFS (CPU seconds and memory), extended with a
// csim-P column: the fault-partition parallel engine at NumCPU workers.
func Table3(circuits []string) (*Table, error) { return Table3Observed(circuits, nil) }

// Table3Observed regenerates Table 3 under the observability layer: each
// cell runs with a fresh metric registry and tracer, so the MEM column
// (and the csim-P per-worker gauges) come from registry snapshots instead
// of bespoke counters; every cell's snapshot lands in sink when non-nil
// (the cmd/tables -metrics-out payload).
func Table3Observed(circuits []string, sink *MetricsSink) (*Table, error) {
	t := &Table{
		Title: "Table 3. Deterministic patterns (I)",
		Header: []string{"ckt",
			"V:CPU", "V:MEM", "M:CPU", "M:MEM", "MV:CPU", "MV:MEM",
			"P:CPU", "P:MEM", "V2:CPU", "V2:MEM", "C:CPU", "C:MEM",
			"PROOFS:CPU", "PROOFS:MEM"},
		Caption: "CPU in seconds, MEM in MB of fault-structure storage at peak\n" +
			"csim-P: csim-MV fault-partitioned over NumCPU worker goroutines\n" +
			"csim-V2: csim-MV vector-partitioned over NumCPU speculative windows\n" +
			"csim-C: compiled bit-parallel engine, 64 vectors per masked pass",
	}
	for _, name := range circuits {
		u, err := StuckUniverse(name)
		if err != nil {
			return nil, err
		}
		vs, err := DeterministicSet(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, eng := range []Engine{CsimV, CsimM, CsimMV, CsimP, CsimV2, CsimC, PROOFS} {
			reg := obs.NewRegistry()
			ob := &obs.Observer{Metrics: reg, Tracer: obs.NewTracer(reg)}
			m, err := RunObserved(eng, u, vs, ob)
			if err != nil {
				return nil, err
			}
			sink.Add(name+"/"+string(eng), reg.Snapshot())
			row = append(row, Seconds(m.CPU), Meg(m.MemBytes))
		}
		t.Add(row...)
	}
	return t, nil
}

// Table4 reproduces the higher-coverage deterministic comparison of
// csim-MV against PROOFS.
func Table4(circuits []string) (*Table, error) {
	t := &Table{
		Title: "Table 4. Deterministic patterns (II)",
		Header: []string{"ckt", "#ptns", "cvg%",
			"MV:CPU", "MV:MEM", "PROOFS:CPU", "PROOFS:MEM"},
	}
	for _, name := range circuits {
		u, err := StuckUniverse(name)
		if err != nil {
			return nil, err
		}
		vs, err := DeterministicSet(name)
		if err != nil {
			return nil, err
		}
		mv, err := Run(CsimMV, u, vs)
		if err != nil {
			return nil, err
		}
		pr, err := Run(PROOFS, u, vs)
		if err != nil {
			return nil, err
		}
		t.Add(name, itoa(vs.Len()), fmt.Sprintf("%.1f", mv.FltCvg()),
			Seconds(mv.CPU), Meg(mv.MemBytes), Seconds(pr.CPU), Meg(pr.MemBytes))
	}
	return t, nil
}

// Table5 reproduces the random-pattern campaign on the largest circuit.
func Table5(name string, counts []int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Table 5. Random pattern simulation (%s)", name),
		Header: []string{"#ptns", "fltcvg%",
			"MV:CPU", "MV:MEM", "PROOFS:CPU", "PROOFS:MEM"},
		Caption: "memory stays below the deterministic run of Table 3: faults activate slowly",
	}
	for _, n := range counts {
		u, err := StuckUniverse(name)
		if err != nil {
			return nil, err
		}
		vs, err := RandomSet(name, n)
		if err != nil {
			return nil, err
		}
		mv, err := Run(CsimMV, u, vs)
		if err != nil {
			return nil, err
		}
		pr, err := Run(PROOFS, u, vs)
		if err != nil {
			return nil, err
		}
		t.Add(itoa(n), fmt.Sprintf("%.1f", mv.FltCvg()),
			Seconds(mv.CPU), Meg(mv.MemBytes), Seconds(pr.CPU), Meg(pr.MemBytes))
	}
	return t, nil
}

// Table6 reproduces the transition-fault simulation table: the stuck-at
// test sets applied to the transition universe. The paper's observation —
// coverage generally well below 50% — is the shape to match.
func Table6(circuits []string) (*Table, error) {
	t := &Table{
		Title:   "Table 6. Transition fault simulation",
		Header:  []string{"ckt", "#flts", "MEM", "CPU", "fltcvg%"},
		Caption: "stuck-at test sets are poor transition tests; coverage well below 50%",
	}
	for _, name := range circuits {
		u, err := TransitionUniverse(name)
		if err != nil {
			return nil, err
		}
		vs, err := DeterministicSet(name)
		if err != nil {
			return nil, err
		}
		m, err := Run(CsimMV, u, vs)
		if err != nil {
			return nil, err
		}
		t.Add(name, itoa(u.NumFaults()), Meg(m.MemBytes), Seconds(m.CPU),
			fmt.Sprintf("%.1f", m.FltCvg()))
	}
	return t, nil
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
