package harness

import (
	"sync"

	"repro/internal/atpg"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// Deterministic test sets (Tables 2-4). For circuits up to s1494 scale the
// sets come from the repository's own sequential test generator
// (internal/atpg), reproducing the paper's use of the authors' companion
// generator [14]. For the two large circuits, where deterministic
// generation is outside this reproduction's budget, seeded random
// sequences of the PROOFS-era pattern-set sizes stand in (see DESIGN.md).
var detPatternsLarge = map[string]int{
	"s5378":  912,
	"s35932": 496,
}

// ATPGCutoffGates bounds the circuit size the deterministic generator is
// applied to.
const ATPGCutoffGates = 1000

var (
	detMu    sync.Mutex
	detCache = map[string]*vectors.Set{}
)

// DeterministicSet returns the deterministic test sequence for a suite
// circuit (cached; generation is deterministic).
func DeterministicSet(name string) (*vectors.Set, error) {
	detMu.Lock()
	defer detMu.Unlock()
	if vs, ok := detCache[name]; ok {
		return vs, nil
	}
	c, err := iscas.Get(name)
	if err != nil {
		return nil, err
	}
	var vs *vectors.Set
	if n, big := detPatternsLarge[name]; big || c.Stats().Gates > ATPGCutoffGates {
		if n == 0 {
			n = 512
		}
		vs = vectors.Random(c, n, seed(name)+1)
	} else {
		u := faults.StuckCollapsed(c)
		vs = atpg.GenerateVectors(u, atpg.Options{
			Seed:           seed(name),
			FillRandom:     true,
			RandomPreamble: 8 * c.Stats().PIs,
			MaxBacktrack:   100,
			MaxFrames:      6,
		})
		if vs.Len() == 0 {
			vs = vectors.Random(c, 16, seed(name)+1)
		}
	}
	detCache[name] = vs
	return vs, nil
}

// RandomSet returns n seeded random vectors for a suite circuit.
func RandomSet(name string, n int) (*vectors.Set, error) {
	c, err := iscas.Get(name)
	if err != nil {
		return nil, err
	}
	return vectors.Random(c, n, seed(name)+2), nil
}

// StuckUniverse returns the collapsed stuck-at universe for a suite
// circuit.
func StuckUniverse(name string) (*faults.Universe, error) {
	c, err := iscas.Get(name)
	if err != nil {
		return nil, err
	}
	return faults.StuckCollapsed(c), nil
}

// TransitionUniverse returns the transition-fault universe for a suite
// circuit.
func TransitionUniverse(name string) (*faults.Universe, error) {
	c, err := iscas.Get(name)
	if err != nil {
		return nil, err
	}
	return faults.Transition(c), nil
}

// Circuit fetches a suite circuit.
func Circuit(name string) (*netlist.Circuit, error) { return iscas.Get(name) }

func seed(name string) int64 {
	var h int64 = 99991
	for _, b := range []byte(name) {
		h = h*131 + int64(b)
	}
	return h
}
