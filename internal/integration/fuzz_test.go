// Differential fuzzing: one seed derives an entire scenario — circuit
// shape, fault model, fault sample, vector count, and the parallel shard
// shapes — and every engine must agree with the serial oracle on it.
// TestFuzzDifferentialCorpus replays a fixed corpus in normal test runs
// (CI runs it with -run Fuzz -short); FuzzDifferential hands the same
// case runner to the native fuzzer so `go test -fuzz=FuzzDifferential`
// can search for disagreeing seeds.
package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compiled"
	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/parallel"
	"repro/internal/serial"
	"repro/internal/vectors"
)

// sampleUniverse draws a random fault subset with re-indexed IDs, as a
// service user simulating a fault sample would. Rep is dropped: collapse
// bookkeeping is meaningless for a subset.
func sampleUniverse(u *faults.Universe, rng *rand.Rand) *faults.Universe {
	keep := 5 + rng.Intn(u.NumFaults())
	if keep >= u.NumFaults() {
		return u
	}
	perm := rng.Perm(u.NumFaults())[:keep]
	// Sorted selection keeps fault order (and thus detection events)
	// aligned with the parent universe's site order.
	sel := make([]bool, u.NumFaults())
	for _, i := range perm {
		sel[i] = true
	}
	s := &faults.Universe{Circuit: u.Circuit}
	for i, f := range u.Faults {
		if !sel[i] {
			continue
		}
		f.ID = int32(len(s.Faults))
		s.Faults = append(s.Faults, f)
	}
	return s
}

// fuzzCase is the shared case runner: seed → scenario → all engines must
// match the serial oracle bit for bit.
func fuzzCase(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	pis := 2 + rng.Intn(6)
	pos := 2 + rng.Intn(5)
	ffs := rng.Intn(12)
	gates := 20 + rng.Intn(120)
	nvec := 40 + rng.Intn(100)
	model := "stuck"
	if rng.Intn(2) == 1 {
		model = "transition"
	}

	c := genCircuit(t, seed, pis, pos, ffs, gates)
	var u *faults.Universe
	if model == "stuck" {
		u = faults.StuckCollapsed(c)
	} else {
		u = faults.Transition(c)
	}
	checkModel(t, c, u)
	if rng.Intn(2) == 1 {
		u = sampleUniverse(u, rng)
	}
	vs := vectors.Random(c, nvec, seed)

	workers := 1 + rng.Intn(5)
	windows := 1 + rng.Intn(5)
	gk, gw := 2+rng.Intn(2), 2+rng.Intn(2)
	tag := fmt.Sprintf("seed=%d %s/%s flts=%d vecs=%d w%d v%d %dx%d",
		seed, c.Name, model, u.NumFaults(), nvec, workers, windows, gk, gw)

	oracle := serial.Simulate(u, vs)

	single, err := csim.New(u, csim.MV())
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	compare(t, tag+"/csim-MV", oracle, single.Run(vs))

	res, _, err := parallel.Simulate(u, vs, parallel.Options{Workers: workers, Config: csim.MV()})
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	compare(t, tag+"/csim-P", oracle, res)

	res, _, err = parallel.SimulateVectorSharded(u, vs, parallel.VOptions{Windows: windows, Config: csim.MV()})
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	compare(t, tag+"/csim-V2", oracle, res)

	res, _, err = parallel.SimulateGrid(u, vs, parallel.GridOptions{
		FaultShards: gk, Windows: gw, Config: csim.MV()})
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	compare(t, tag+"/csim-grid", oracle, res)

	csim2, err := compiled.New(u)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	compare(t, tag+"/csim-C", oracle, csim2.Run(vs))
}

// fuzzCorpus is the fixed replayed corpus; FuzzDifferential seeds its
// search from the same values.
var fuzzCorpus = []int64{
	1, 2, 3, 17, 42, 99, 1234, 5678, 90210, 424242,
	7_000_003, 123_456_789,
}

// TestFuzzDifferentialCorpus replays the fixed corpus (a prefix of it in
// -short mode, keeping the CI lint/test job fast).
func TestFuzzDifferentialCorpus(t *testing.T) {
	corpus := fuzzCorpus
	if testing.Short() {
		corpus = corpus[:4]
	}
	for _, seed := range corpus {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fuzzCase(t, seed)
		})
	}
}

// FuzzDifferential is the native fuzz target: any seed the fuzzer
// invents becomes a full differential scenario. Case sizes are bounded
// by construction in fuzzCase, so every execution stays sub-second.
func FuzzDifferential(f *testing.F) {
	for _, seed := range fuzzCorpus {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		fuzzCase(t, seed)
	})
}
