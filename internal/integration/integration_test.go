// Package integration cross-validates every simulator on randomly
// generated circuits — the strongest property test in the repository: for
// any circuit the generator can produce and any random workload, csim in
// all four configurations, PROOFS and the serial oracle must report
// identical detections, first-detection times and potential detections.
package integration

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/compiled"
	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/macro"
	"repro/internal/netcheck"
	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/proofs"
	"repro/internal/serial"
	"repro/internal/vectors"
)

// checkModel runs the netcheck structural verifier over a circuit and
// fault universe before they are simulated: a generator or collapser bug
// should fail here, not as an unexplained detection mismatch downstream.
func checkModel(t *testing.T, c *netlist.Circuit, u *faults.Universe) {
	t.Helper()
	if err := netcheck.AsError(netcheck.Check(c)); err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	if err := netcheck.AsError(netcheck.CheckUniverse(u)); err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
}

func genCircuit(t *testing.T, seed int64, pis, pos, ffs, gates int) *netlist.Circuit {
	t.Helper()
	c, err := gen.Generate(gen.Spec{
		Name: fmt.Sprintf("rnd%d", seed),
		PIs:  pis, POs: pos, DFFs: ffs, Gates: gates, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func compare(t *testing.T, tag string, want, got *faults.Result) {
	t.Helper()
	if d := want.Diff(got); d != "" {
		t.Errorf("%s: detections differ:\n%s", tag, d)
		return
	}
	for i := range want.DetectedAt {
		if want.DetectedAt[i] != got.DetectedAt[i] {
			t.Errorf("%s: fault %s first detected at %d, oracle %d", tag,
				want.Universe.Faults[i].Name(want.Universe.Circuit),
				got.DetectedAt[i], want.DetectedAt[i])
			return
		}
		if want.PotDetected[i] != got.PotDetected[i] {
			t.Errorf("%s: fault %s potential %v, oracle %v", tag,
				want.Universe.Faults[i].Name(want.Universe.Circuit),
				got.PotDetected[i], want.PotDetected[i])
			return
		}
	}
}

// TestRandomCircuitsAllEnginesAgree sweeps seeds and circuit shapes.
func TestRandomCircuitsAllEnginesAgree(t *testing.T) {
	shapes := []struct{ pis, pos, ffs, gates int }{
		{2, 2, 0, 12},   // small combinational
		{3, 3, 4, 30},   // small sequential
		{5, 4, 8, 80},   // medium
		{8, 6, 12, 150}, // larger, reconvergent
	}
	configs := []struct {
		name string
		cfg  csim.Config
	}{
		{"plain", csim.Config{}},
		{"V", csim.V()},
		{"M", csim.M()},
		{"MV", csim.MV()},
	}
	for si, shape := range shapes {
		for seed := int64(1); seed <= 3; seed++ {
			c := genCircuit(t, seed*100+int64(si), shape.pis, shape.pos, shape.ffs, shape.gates)
			u := faults.StuckCollapsed(c)
			checkModel(t, c, u)
			vs := vectors.Random(c, 80, seed)
			oracle := serial.Simulate(u, vs)
			for _, cf := range configs {
				sim, err := csim.New(u, cf.cfg)
				if err != nil {
					t.Fatal(err)
				}
				compare(t, fmt.Sprintf("%s/csim-%s", c.Name, cf.name), oracle, sim.Run(vs))
				if err := sim.CheckInvariants(); err != nil {
					t.Fatalf("%s/csim-%s: %v", c.Name, cf.name, err)
				}
			}
			pr, err := proofs.New(u)
			if err != nil {
				t.Fatal(err)
			}
			compare(t, c.Name+"/PROOFS", oracle, pr.Run(vs))
		}
	}
}

// TestParallelAgreesWithOracle is the csim-P differential property test:
// on seeded generated circuits and random vectors, the parallel engine's
// detected-fault sets at several worker counts (including a
// non-power-of-two) must equal both the serial oracle and single-threaded
// csim-MV — detections, first-detection vectors and potential detections.
func TestParallelAgreesWithOracle(t *testing.T) {
	shapes := []struct{ pis, pos, ffs, gates int }{
		{3, 3, 4, 30},   // small sequential
		{5, 4, 8, 80},   // medium
		{8, 6, 12, 150}, // larger, reconvergent
	}
	for si, shape := range shapes {
		for seed := int64(1); seed <= 2; seed++ {
			c := genCircuit(t, seed*700+int64(si), shape.pis, shape.pos, shape.ffs, shape.gates)
			u := faults.StuckCollapsed(c)
			vs := vectors.Random(c, 80, seed)
			oracle := serial.Simulate(u, vs)
			single, err := csim.New(u, csim.MV())
			if err != nil {
				t.Fatal(err)
			}
			mv := single.Run(vs)
			compare(t, c.Name+"/csim-MV", oracle, mv)
			for _, w := range []int{1, 2, 4, 7} {
				res, _, err := parallel.Simulate(u, vs,
					parallel.Options{Workers: w, Config: csim.MV()})
				if err != nil {
					t.Fatal(err)
				}
				compare(t, fmt.Sprintf("%s/csim-P.w%d-vs-oracle", c.Name, w), oracle, res)
				compare(t, fmt.Sprintf("%s/csim-P.w%d-vs-MV", c.Name, w), mv, res)
			}
		}
	}
}

// TestParallelTransitionAgreesWithOracle repeats the differential test on
// the transition-fault model, where per-fault previous-cycle driver state
// must survive partitioning.
func TestParallelTransitionAgreesWithOracle(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		c := genCircuit(t, 1700+seed, 4, 3, 6, 60)
		u := faults.Transition(c)
		vs := vectors.Random(c, 100, seed)
		oracle := serial.Simulate(u, vs)
		for _, w := range []int{2, 7} {
			res, _, err := parallel.Simulate(u, vs,
				parallel.Options{Workers: w, Config: csim.MV()})
			if err != nil {
				t.Fatal(err)
			}
			compare(t, fmt.Sprintf("%s/csim-P.w%d", c.Name, w), oracle, res)
		}
	}
}

// TestParallelDeterministic guards the merge against ordering races: runs
// at different worker counts (and repeated runs at the same count) must
// produce byte-identical merged results — same detected set, same
// first-detecting vector per fault, same potential detections.
func TestParallelDeterministic(t *testing.T) {
	c := genCircuit(t, 3131, 6, 5, 9, 110)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 150, 23)
	var ref *faults.Result
	for _, w := range []int{1, 3, 5, 8} {
		for rep := 0; rep < 2; rep++ {
			res, _, err := parallel.Simulate(u, vs,
				parallel.Options{Workers: w, Config: csim.MV()})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			tag := fmt.Sprintf("workers=%d rep=%d", w, rep)
			if !reflect.DeepEqual(ref.Detected, res.Detected) {
				t.Fatalf("%s: detected set differs from first run", tag)
			}
			if !reflect.DeepEqual(ref.DetectedAt, res.DetectedAt) {
				t.Fatalf("%s: first-detection vectors differ from first run", tag)
			}
			if !reflect.DeepEqual(ref.PotDetected, res.PotDetected) {
				t.Fatalf("%s: potential detections differ from first run", tag)
			}
			if ref.NumDet != res.NumDet {
				t.Fatalf("%s: NumDet %d, first run %d", tag, res.NumDet, ref.NumDet)
			}
		}
	}
}

// TestRandomCircuitsTransitionAgree does the same for the transition-fault
// model (csim vs serial; PROOFS does not support transition faults).
func TestRandomCircuitsTransitionAgree(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := genCircuit(t, 900+seed, 4, 3, 6, 60)
		u := faults.Transition(c)
		checkModel(t, c, u)
		vs := vectors.Random(c, 100, seed)
		oracle := serial.Simulate(u, vs)
		for _, cfg := range []csim.Config{{}, csim.MV()} {
			sim, err := csim.New(u, cfg)
			if err != nil {
				t.Fatal(err)
			}
			compare(t, fmt.Sprintf("%s/macros=%v", c.Name, cfg.Macros), oracle, sim.Run(vs))
		}
	}
}

// TestInvariantsEveryCycle steps the simulator one vector at a time and
// audits the fault-list machinery between every pair of cycles — the
// finest-grained use of the csim debug hook — plus the macro plan's
// structure and FFR-maximality up front.
func TestInvariantsEveryCycle(t *testing.T) {
	configs := []struct {
		name string
		cfg  csim.Config
	}{
		{"plain", csim.Config{}},
		{"V", csim.V()},
		{"M", csim.M()},
		{"MV", csim.MV()},
		{"MV-reconv", csim.Config{SplitLists: true, Macros: true, ReconvergentMacros: true}},
	}
	for seed := int64(1); seed <= 2; seed++ {
		c := genCircuit(t, 5200+seed, 5, 4, 8, 80)
		u := faults.StuckCollapsed(c)
		checkModel(t, c, u)
		vs := vectors.Random(c, 60, seed)
		for _, cf := range configs {
			sim, err := csim.New(u, cf.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := netcheck.AsError(netcheck.CheckPlan(sim.Plan())); err != nil {
				t.Fatalf("%s/%s: %v", c.Name, cf.name, err)
			}
			if cf.cfg.Macros {
				ps := netcheck.CheckPlanMaximal(sim.Plan(), macro.DefaultMaxInputs, cf.cfg.ReconvergentMacros)
				if err := netcheck.AsError(ps); err != nil {
					t.Fatalf("%s/%s: %v", c.Name, cf.name, err)
				}
			}
			for i, v := range vs.Vecs {
				sim.Cycle(v)
				if err := sim.CheckInvariants(); err != nil {
					t.Fatalf("%s/%s after vector %d: %v", c.Name, cf.name, i, err)
				}
			}
		}
	}
}

// TestCompiledAgreesAcrossBundled is the csim-C three-way differential:
// on bundled suite circuits under both fault models, serial, csim-MV and
// the compiled engine must report identical detections, first-detection
// vectors and potential detections.
func TestCompiledAgreesAcrossBundled(t *testing.T) {
	names := []string{"s27", "s298", "s344", "s444"}
	nv := 60
	if testing.Short() {
		names = names[:2]
		nv = 30
	}
	for _, name := range names {
		c, err := iscas.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		vs := vectors.Random(c, nv, 7)
		for _, model := range []string{"stuck", "transition"} {
			var u *faults.Universe
			if model == "stuck" {
				u = faults.StuckCollapsed(c)
			} else {
				u = faults.Transition(c)
			}
			tag := name + "/" + model
			oracle := serial.Simulate(u, vs)
			mvSim, err := csim.New(u, csim.MV())
			if err != nil {
				t.Fatal(err)
			}
			mv := mvSim.Run(vs)
			compare(t, tag+"/csim-MV-vs-oracle", oracle, mv)
			cs, err := compiled.New(u)
			if err != nil {
				t.Fatal(err)
			}
			res := cs.Run(vs)
			compare(t, tag+"/csim-C-vs-oracle", oracle, res)
			compare(t, tag+"/csim-C-vs-MV", mv, res)
		}
	}
}

// TestDecomposedCircuitSameDetections: wide-gate decomposition must not
// change which (original-site) faults the workload detects for faults on
// preserved gates.
func TestDecomposedCircuitSameDetections(t *testing.T) {
	b := netlist.NewBuilder("wide")
	in := make([]string, 12)
	for i := range in {
		in[i] = fmt.Sprintf("i%d", i)
		b.Input(in[i])
	}
	b.Gate("z", logic.OpNand, in...)
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := netlist.Decompose(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Compare PI-output fault detections (shared sites).
	uc := faults.StuckAll(c)
	ud := faults.StuckAll(d)
	vs := vectors.Random(c, 300, 5)
	rc := serial.Simulate(uc, vs)
	rd := serial.Simulate(ud, vs)
	for _, name := range in {
		gc := c.MustByName(name)
		gd := d.MustByName(name)
		for _, k := range []faults.Kind{faults.SA0, faults.SA1} {
			var fc, fd int32 = -1, -1
			for i, f := range uc.Faults {
				if f.Gate == gc && f.Pin == faults.OutPin && f.Kind == k {
					fc = int32(i)
				}
			}
			for i, f := range ud.Faults {
				if f.Gate == gd && f.Pin == faults.OutPin && f.Kind == k {
					fd = int32(i)
				}
			}
			if rc.Detected[fc] != rd.Detected[fd] {
				t.Errorf("fault %s %v: original %v, decomposed %v",
					name, k, rc.Detected[fc], rd.Detected[fd])
			}
		}
	}
}

// TestLongRunStability: a long random campaign on a mid-size circuit must
// keep csim's element accounting consistent (no leaks, no corruption) and
// match PROOFS at the end.
func TestLongRunStability(t *testing.T) {
	c := genCircuit(t, 4242, 6, 6, 10, 120)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 2000, 17)
	sim, err := csim.New(u, csim.MV())
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(vs)
	st := sim.Stats()
	if st.CurElems < 0 || st.CurElems > st.PeakElems {
		t.Errorf("element accounting broken: %+v", st)
	}
	pr, err := proofs.New(u)
	if err != nil {
		t.Fatal(err)
	}
	compareLite(t, res, pr.Run(vs))
}

func compareLite(t *testing.T, a, b *faults.Result) {
	t.Helper()
	if d := a.Diff(b); d != "" {
		t.Errorf("long-run divergence:\n%s", d)
	}
}
