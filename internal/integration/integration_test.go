// Package integration cross-validates every simulator on randomly
// generated circuits — the strongest property test in the repository: for
// any circuit the generator can produce and any random workload, csim in
// all four configurations, PROOFS and the serial oracle must report
// identical detections, first-detection times and potential detections.
package integration

import (
	"fmt"
	"testing"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/proofs"
	"repro/internal/serial"
	"repro/internal/vectors"
)

func genCircuit(t *testing.T, seed int64, pis, pos, ffs, gates int) *netlist.Circuit {
	t.Helper()
	c, err := gen.Generate(gen.Spec{
		Name: fmt.Sprintf("rnd%d", seed),
		PIs:  pis, POs: pos, DFFs: ffs, Gates: gates, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func compare(t *testing.T, tag string, want, got *faults.Result) {
	t.Helper()
	if d := want.Diff(got); d != "" {
		t.Errorf("%s: detections differ:\n%s", tag, d)
		return
	}
	for i := range want.DetectedAt {
		if want.DetectedAt[i] != got.DetectedAt[i] {
			t.Errorf("%s: fault %s first detected at %d, oracle %d", tag,
				want.Universe.Faults[i].Name(want.Universe.Circuit),
				got.DetectedAt[i], want.DetectedAt[i])
			return
		}
		if want.PotDetected[i] != got.PotDetected[i] {
			t.Errorf("%s: fault %s potential %v, oracle %v", tag,
				want.Universe.Faults[i].Name(want.Universe.Circuit),
				got.PotDetected[i], want.PotDetected[i])
			return
		}
	}
}

// TestRandomCircuitsAllEnginesAgree sweeps seeds and circuit shapes.
func TestRandomCircuitsAllEnginesAgree(t *testing.T) {
	shapes := []struct{ pis, pos, ffs, gates int }{
		{2, 2, 0, 12},   // small combinational
		{3, 3, 4, 30},   // small sequential
		{5, 4, 8, 80},   // medium
		{8, 6, 12, 150}, // larger, reconvergent
	}
	configs := []struct {
		name string
		cfg  csim.Config
	}{
		{"plain", csim.Config{}},
		{"V", csim.V()},
		{"M", csim.M()},
		{"MV", csim.MV()},
	}
	for si, shape := range shapes {
		for seed := int64(1); seed <= 3; seed++ {
			c := genCircuit(t, seed*100+int64(si), shape.pis, shape.pos, shape.ffs, shape.gates)
			u := faults.StuckCollapsed(c)
			vs := vectors.Random(c, 80, seed)
			oracle := serial.Simulate(u, vs)
			for _, cf := range configs {
				sim, err := csim.New(u, cf.cfg)
				if err != nil {
					t.Fatal(err)
				}
				compare(t, fmt.Sprintf("%s/csim-%s", c.Name, cf.name), oracle, sim.Run(vs))
			}
			pr, err := proofs.New(u)
			if err != nil {
				t.Fatal(err)
			}
			compare(t, c.Name+"/PROOFS", oracle, pr.Run(vs))
		}
	}
}

// TestRandomCircuitsTransitionAgree does the same for the transition-fault
// model (csim vs serial; PROOFS does not support transition faults).
func TestRandomCircuitsTransitionAgree(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := genCircuit(t, 900+seed, 4, 3, 6, 60)
		u := faults.Transition(c)
		vs := vectors.Random(c, 100, seed)
		oracle := serial.Simulate(u, vs)
		for _, cfg := range []csim.Config{{}, csim.MV()} {
			sim, err := csim.New(u, cfg)
			if err != nil {
				t.Fatal(err)
			}
			compare(t, fmt.Sprintf("%s/macros=%v", c.Name, cfg.Macros), oracle, sim.Run(vs))
		}
	}
}

// TestDecomposedCircuitSameDetections: wide-gate decomposition must not
// change which (original-site) faults the workload detects for faults on
// preserved gates.
func TestDecomposedCircuitSameDetections(t *testing.T) {
	b := netlist.NewBuilder("wide")
	in := make([]string, 12)
	for i := range in {
		in[i] = fmt.Sprintf("i%d", i)
		b.Input(in[i])
	}
	b.Gate("z", logic.OpNand, in...)
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := netlist.Decompose(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Compare PI-output fault detections (shared sites).
	uc := faults.StuckAll(c)
	ud := faults.StuckAll(d)
	vs := vectors.Random(c, 300, 5)
	rc := serial.Simulate(uc, vs)
	rd := serial.Simulate(ud, vs)
	for _, name := range in {
		gc := c.MustByName(name)
		gd := d.MustByName(name)
		for _, k := range []faults.Kind{faults.SA0, faults.SA1} {
			var fc, fd int32 = -1, -1
			for i, f := range uc.Faults {
				if f.Gate == gc && f.Pin == faults.OutPin && f.Kind == k {
					fc = int32(i)
				}
			}
			for i, f := range ud.Faults {
				if f.Gate == gd && f.Pin == faults.OutPin && f.Kind == k {
					fd = int32(i)
				}
			}
			if rc.Detected[fc] != rd.Detected[fd] {
				t.Errorf("fault %s %v: original %v, decomposed %v",
					name, k, rc.Detected[fc], rd.Detected[fd])
			}
		}
	}
}

// TestLongRunStability: a long random campaign on a mid-size circuit must
// keep csim's element accounting consistent (no leaks, no corruption) and
// match PROOFS at the end.
func TestLongRunStability(t *testing.T) {
	c := genCircuit(t, 4242, 6, 6, 10, 120)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 2000, 17)
	sim, err := csim.New(u, csim.MV())
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(vs)
	st := sim.Stats()
	if st.CurElems < 0 || st.CurElems > st.PeakElems {
		t.Errorf("element accounting broken: %+v", st)
	}
	pr, err := proofs.New(u)
	if err != nil {
		t.Fatal(err)
	}
	compareLite(t, res, pr.Run(vs))
}

func compareLite(t *testing.T, a, b *faults.Result) {
	t.Helper()
	if d := a.Diff(b); d != "" {
		t.Errorf("long-run divergence:\n%s", d)
	}
}
