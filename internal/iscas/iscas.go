// Package iscas provides the benchmark suite the paper evaluates on. The
// real ISCAS-89 s27 is embedded verbatim; the larger circuits are
// deterministic synthetic stand-ins generated to the published ISCAS-89
// PI/PO/FF/gate counts (the original netlists are not redistributable
// here; see DESIGN.md, substitutions). Every circuit is produced by a
// fixed seed, so all experiments are reproducible bit-for-bit.
package iscas

import (
	"fmt"
	"sync"

	"repro/internal/gen"
	"repro/internal/netlist"
)

// S27Bench is the genuine ISCAS-89 s27 netlist.
const S27Bench = `# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

// Info describes one suite circuit with its published ISCAS-89 shape.
type Info struct {
	Name  string
	PIs   int
	POs   int
	DFFs  int
	Gates int
	Real  bool // true when the embedded netlist is the genuine circuit
}

// Suite lists the circuits the paper's Tables 2-6 draw from, with the
// published ISCAS-89 statistics the stand-ins reproduce.
var Suite = []Info{
	{Name: "s27", PIs: 4, POs: 1, DFFs: 3, Gates: 10, Real: true},
	{Name: "s298", PIs: 3, POs: 6, DFFs: 14, Gates: 119},
	{Name: "s344", PIs: 9, POs: 11, DFFs: 15, Gates: 160},
	{Name: "s349", PIs: 9, POs: 11, DFFs: 15, Gates: 161},
	{Name: "s382", PIs: 3, POs: 6, DFFs: 21, Gates: 158},
	{Name: "s386", PIs: 7, POs: 7, DFFs: 6, Gates: 159},
	{Name: "s400", PIs: 3, POs: 6, DFFs: 21, Gates: 162},
	{Name: "s444", PIs: 3, POs: 6, DFFs: 21, Gates: 181},
	{Name: "s510", PIs: 19, POs: 7, DFFs: 6, Gates: 211},
	{Name: "s526", PIs: 3, POs: 6, DFFs: 21, Gates: 193},
	{Name: "s641", PIs: 35, POs: 24, DFFs: 19, Gates: 379},
	{Name: "s713", PIs: 35, POs: 23, DFFs: 19, Gates: 393},
	{Name: "s820", PIs: 18, POs: 19, DFFs: 5, Gates: 289},
	{Name: "s832", PIs: 18, POs: 19, DFFs: 5, Gates: 287},
	{Name: "s953", PIs: 16, POs: 23, DFFs: 29, Gates: 395},
	{Name: "s1196", PIs: 14, POs: 14, DFFs: 18, Gates: 529},
	{Name: "s1238", PIs: 14, POs: 14, DFFs: 18, Gates: 508},
	{Name: "s1423", PIs: 17, POs: 5, DFFs: 74, Gates: 657},
	{Name: "s1488", PIs: 8, POs: 19, DFFs: 6, Gates: 653},
	{Name: "s1494", PIs: 8, POs: 19, DFFs: 6, Gates: 647},
	{Name: "s5378", PIs: 35, POs: 49, DFFs: 179, Gates: 2779},
	{Name: "s35932", PIs: 35, POs: 320, DFFs: 1728, Gates: 16065},
}

// entry is one circuit's single-flight build slot: the first caller runs
// the parse/generation inside the Once while later callers block on it,
// and every caller sees the same *Circuit and error afterwards.
type entry struct {
	once sync.Once
	c    *netlist.Circuit
	err  error
}

var (
	mu    sync.Mutex
	cache = map[string]*entry{}
)

// Get returns a suite circuit by name, building (and caching) it on first
// use. It is safe for concurrent callers: the build is single-flighted
// per name (one parse/generation no matter how many goroutines ask at
// once), the global lock is held only for the map lookup, and different
// circuits build concurrently.
func Get(name string) (*netlist.Circuit, error) {
	info, err := lookup(name)
	if err != nil {
		return nil, err
	}
	mu.Lock()
	e, ok := cache[name]
	if !ok {
		e = &entry{}
		cache[name] = e
	}
	mu.Unlock()
	e.once.Do(func() { e.c, e.err = build(info) })
	return e.c, e.err
}

// build constructs one suite circuit from its published shape.
func build(info Info) (*netlist.Circuit, error) {
	if info.Real {
		return netlist.ParseBenchString(info.Name, S27Bench)
	}
	return gen.Generate(gen.Spec{
		Name: info.Name, PIs: info.PIs, POs: info.POs,
		DFFs: info.DFFs, Gates: info.Gates,
		Seed: seedFor(info.Name),
	})
}

// MustGet is Get for mains and tests with static names.
func MustGet(name string) *netlist.Circuit {
	c, err := Get(name)
	if err != nil {
		panic(err)
	}
	return c
}

func lookup(name string) (Info, error) {
	for _, in := range Suite {
		if in.Name == name {
			return in, nil
		}
	}
	return Info{}, fmt.Errorf("iscas: unknown circuit %q", name)
}

// seedFor derives a stable per-circuit seed from the name.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, b := range []byte(name) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h
}

// Names returns the suite circuit names in order.
func Names() []string {
	out := make([]string, len(Suite))
	for i, in := range Suite {
		out[i] = in.Name
	}
	return out
}
