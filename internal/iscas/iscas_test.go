package iscas

import (
	"sync"
	"testing"

	"repro/internal/netlist"
)

func TestS27IsReal(t *testing.T) {
	c := MustGet("s27")
	st := c.Stats()
	if st.PIs != 4 || st.POs != 1 || st.DFFs != 3 || st.Gates != 10 {
		t.Errorf("s27 stats wrong: %v", st)
	}
	if _, ok := c.ByName("G17"); !ok {
		t.Error("s27 missing G17 (not the real netlist?)")
	}
}

func TestSuiteShapesMatchPublished(t *testing.T) {
	for _, info := range Suite {
		if info.Gates > 1000 && testing.Short() {
			continue
		}
		c, err := Get(info.Name)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		st := c.Stats()
		if st.PIs != info.PIs || st.POs != info.POs || st.DFFs != info.DFFs || st.Gates != info.Gates {
			t.Errorf("%s: generated %v, want %+v", info.Name, st, info)
		}
	}
}

func TestGetCaches(t *testing.T) {
	a := MustGet("s298")
	b := MustGet("s298")
	if a != b {
		t.Error("Get did not cache")
	}
}

// TestGetConcurrent hammers Get from 16 goroutines across a mix of
// circuits (run under -race in CI): every caller must observe the same
// cached *Circuit per name, errors included, with the parse single-
// flighted. csimd's worker pool resolves suite circuits concurrently on
// every job, so this is its admission-path contract.
func TestGetConcurrent(t *testing.T) {
	names := []string{"s27", "s298", "s344", "s386", "s27", "s298", "nosuch"}
	const goroutines = 16
	got := make([]map[string]*netlist.Circuit, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seen := map[string]*netlist.Circuit{}
			for iter := 0; iter < 8; iter++ {
				for _, name := range names {
					c, err := Get(name)
					if name == "nosuch" {
						if err == nil {
							t.Errorf("goroutine %d: Get(nosuch) succeeded", g)
						}
						continue
					}
					if err != nil {
						t.Errorf("goroutine %d: Get(%s): %v", g, name, err)
						continue
					}
					if prev, ok := seen[name]; ok && prev != c {
						t.Errorf("goroutine %d: Get(%s) returned two distinct circuits", g, name)
					}
					seen[name] = c
				}
			}
			got[g] = seen
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for name, c := range got[g] {
			if got[0][name] != c {
				t.Errorf("goroutines 0 and %d disagree on cached %s", g, name)
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("s9999"); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != len(Suite) || names[0] != "s27" {
		t.Errorf("Names() = %v", names)
	}
}
