package iscas

import (
	"testing"
)

func TestS27IsReal(t *testing.T) {
	c := MustGet("s27")
	st := c.Stats()
	if st.PIs != 4 || st.POs != 1 || st.DFFs != 3 || st.Gates != 10 {
		t.Errorf("s27 stats wrong: %v", st)
	}
	if _, ok := c.ByName("G17"); !ok {
		t.Error("s27 missing G17 (not the real netlist?)")
	}
}

func TestSuiteShapesMatchPublished(t *testing.T) {
	for _, info := range Suite {
		if info.Gates > 1000 && testing.Short() {
			continue
		}
		c, err := Get(info.Name)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		st := c.Stats()
		if st.PIs != info.PIs || st.POs != info.POs || st.DFFs != info.DFFs || st.Gates != info.Gates {
			t.Errorf("%s: generated %v, want %+v", info.Name, st, info)
		}
	}
}

func TestGetCaches(t *testing.T) {
	a := MustGet("s298")
	b := MustGet("s298")
	if a != b {
		t.Error("Get did not cache")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("s9999"); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != len(Suite) || names[0] != "s27" {
		t.Errorf("Names() = %v", names)
	}
}
