// Package jobid is the shared job-identifier discipline of the service
// tiers: the single-node server (internal/service) and the distributed
// coordinator (internal/dist) mint, validate and order job IDs through
// one set of rules, so an ID accepted at one tier is accepted at every
// tier. An ID is 1–128 characters, starts with an alphanumeric, and
// continues with alphanumerics plus '.', '_' and '-' (never '/', which
// the job API routes on). Server-minted IDs are "j<seq>"; the
// coordinator derives shard IDs from the parent job's ID plus the shard
// coordinates and an idempotency hash, and those shard IDs satisfy the
// same grammar — which is what lets a coordinator submit them as
// X-Csim-Job-Id headers and lets the worker's 409-on-live-ID-reuse rule
// hold across tiers.
package jobid

import "fmt"

// MaxLen bounds a job ID's length.
const MaxLen = 128

// Valid reports whether id satisfies the job-ID grammar: 1–MaxLen
// chars, leading alphanumeric, then alphanumerics plus . _ -.
func Valid(id string) bool {
	if len(id) == 0 || len(id) > MaxLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if i == 0 {
			if !alnum {
				return false
			}
			continue
		}
		if !alnum && c != '.' && c != '_' && c != '-' {
			return false
		}
	}
	return true
}

// Sequential spells the server-minted ID for a sequence number: "j<seq>".
func Sequential(seq int64) string { return fmt.Sprintf("j%d", seq) }

// Less orders IDs for listings: shorter first, then lexicographic — so
// "j<seq>" IDs sort numerically (j2 < j10) and mixed client-supplied
// IDs still get a total deterministic order.
func Less(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// Shard mints the coordinator's ID for shard k of n of a parent job:
// "<parent>.s<k>of<n>.<hash>", where hash is the shard's idempotency
// key (a hex digest prefix). The result always satisfies Valid: when
// the parent's contribution would push past MaxLen, the parent is
// dropped and the globally unique hash alone carries the identity
// ("s<k>of<n>.<hash>"). Shard panics if the hash itself is empty or
// malformed — coordinator keys are code-derived, never user input.
func Shard(parent string, k, n int, hash string) string {
	if !Valid(hash) {
		panic(fmt.Sprintf("jobid: shard hash %q is not a valid ID fragment", hash))
	}
	suffix := fmt.Sprintf("s%dof%d.%s", k, n, hash)
	id := suffix
	if parent != "" && len(parent)+1+len(suffix) <= MaxLen {
		id = parent + "." + suffix
	}
	if !Valid(id) {
		// A malformed parent (it never passed Valid) falls back to the
		// self-contained spelling.
		return suffix
	}
	return id
}
