package jobid

import (
	"strings"
	"testing"
)

func TestValid(t *testing.T) {
	cases := []struct {
		id   string
		want bool
	}{
		{"j1", true},
		{"j12345", true},
		{"ci-postmortem", true},
		{"a.b_c-d9", true},
		{"A", true},
		{"9x", true},
		{"", false},
		{"-leading", false},
		{".leading", false},
		{"has/slash", false},
		{"has space", false},
		{strings.Repeat("a", MaxLen), true},
		{strings.Repeat("a", MaxLen+1), false},
	}
	for _, c := range cases {
		if got := Valid(c.id); got != c.want {
			t.Errorf("Valid(%q) = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestSequential(t *testing.T) {
	if got := Sequential(7); got != "j7" {
		t.Fatalf("Sequential(7) = %q, want j7", got)
	}
	if !Valid(Sequential(123456)) {
		t.Fatal("sequential IDs must satisfy Valid")
	}
}

func TestLessOrdersNumerically(t *testing.T) {
	if !Less("j2", "j10") {
		t.Error("j2 should sort before j10")
	}
	if Less("j10", "j2") {
		t.Error("j10 should not sort before j2")
	}
	if !Less("a", "b") || Less("b", "a") {
		t.Error("equal-length IDs sort lexicographically")
	}
}

func TestShard(t *testing.T) {
	id := Shard("j42", 3, 8, "deadbeef0123")
	if id != "j42.s3of8.deadbeef0123" {
		t.Fatalf("Shard = %q", id)
	}
	if !Valid(id) {
		t.Fatalf("shard ID %q must satisfy Valid", id)
	}

	// A parent near the length bound drops out rather than overflowing.
	long := strings.Repeat("p", MaxLen-5)
	id = Shard(long, 0, 2, "abc123")
	if strings.HasPrefix(id, long) {
		t.Fatalf("oversized parent should be dropped, got %q", id)
	}
	if id != "s0of2.abc123" {
		t.Fatalf("fallback spelling = %q", id)
	}
	if !Valid(id) {
		t.Fatalf("fallback shard ID %q must satisfy Valid", id)
	}

	// A malformed parent (never passed Valid) falls back too.
	if got := Shard("bad/parent", 1, 2, "abc"); got != "s1of2.abc" {
		t.Fatalf("malformed parent: got %q", got)
	}
}

func TestShardPanicsOnBadHash(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shard with an empty hash must panic")
		}
	}()
	Shard("j1", 0, 1, "")
}
