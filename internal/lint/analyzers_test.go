package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "testdata/src/hotpath")
}

func TestMapRange(t *testing.T) {
	linttest.Run(t, lint.MapRange, "testdata/src/maprange")
}

func TestAtomicDiscipline(t *testing.T) {
	linttest.Run(t, lint.AtomicDiscipline, "testdata/src/atomicdiscipline")
}

func TestCtxDiscipline(t *testing.T) {
	linttest.Run(t, lint.CtxDiscipline, "testdata/src/ctxdiscipline")
}

func TestSlogDiscipline(t *testing.T) {
	linttest.Run(t, lint.SlogDiscipline, "testdata/src/slogdiscipline")
}

func TestStatsTag(t *testing.T) {
	linttest.Run(t, lint.StatsTag, "testdata/src/statstag")
}

func TestExportDoc(t *testing.T) {
	linttest.Run(t, lint.ExportDoc, "testdata/src/exportdoc")
}

func TestImmutablePlan(t *testing.T) {
	linttest.Run(t, lint.ImmutablePlan, "testdata/src/immutableplan")
}

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, lint.GuardedBy, "testdata/src/guardedby")
}

func TestGoroutineLife(t *testing.T) {
	linttest.Run(t, lint.GoroutineLife, "testdata/src/goroutinelife")
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		got, ok := lint.ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v; want %v", a.Name, got, ok, a)
		}
	}
	if _, ok := lint.ByName("nosuch"); ok {
		t.Error("ByName(nosuch) should not resolve")
	}
}
