package lint

import (
	"go/ast"
	"go/types"
)

// AtomicDiscipline enforces two rules around sync/atomic, the layer the
// observability registry's lock-free handles are built on:
//
//  1. Mixed access: a variable or struct field whose address is ever
//     passed to a sync/atomic function must never be read or written
//     plainly — a single plain access races against every atomic one.
//  2. No copies: values of the typed atomics (atomic.Int64, atomic.Value,
//     ...) and of structs containing them must not be copied; the copy
//     shears off concurrent updates. (go vet's copylocks does not cover
//     these: unlike sync.Mutex they embed no Lock method.)
var AtomicDiscipline = &Analyzer{
	Name: "atomicdiscipline",
	Doc: `enforce consistent sync/atomic access

Rule 1: any variable or field used with sync/atomic functions
(atomic.AddInt64(&x, ...)) must be accessed through sync/atomic
everywhere; plain reads and writes of the same location are reported.
Composite-literal keys are exempt (zero-initialization before the value
is shared is safe).

Rule 2: values of sync/atomic handle types (atomic.Int64 & friends) and
structs containing them (obs.Counter, obs.Gauge, obs.Histogram) must not
be copied: by-value parameters, results, receivers, assignments from
existing values, and by-value call arguments are reported.`,
	Run: runAtomicDiscipline,
}

func runAtomicDiscipline(pass *Pass) error {
	targets, sanctioned := atomicTargets(pass)
	if len(targets) > 0 {
		reportPlainAccess(pass, targets, sanctioned)
	}
	reportAtomicCopies(pass)
	return nil
}

// atomicTargets collects the objects whose address is passed to a
// sync/atomic function, plus the identifier nodes inside those sanctioned
// argument expressions (and composite-literal keys, which initialize
// rather than access).
func atomicTargets(pass *Pass) (targets map[types.Object]bool, sanctioned map[*ast.Ident]bool) {
	targets = map[types.Object]bool{}
	sanctioned = map[*ast.Ident]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							sanctioned[id] = true
						}
					}
				}
			case *ast.CallExpr:
				if !isSyncAtomicCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					un, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					var id *ast.Ident
					switch x := unparen(un.X).(type) {
					case *ast.Ident:
						id = x
					case *ast.SelectorExpr:
						id = x.Sel
					}
					if id == nil {
						continue
					}
					if obj := pass.ObjectOf(id); obj != nil {
						targets[obj] = true
						sanctioned[id] = true
					}
				}
			}
			return true
		})
	}
	return targets, sanctioned
}

func isSyncAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	// Package functions only: method calls on typed atomics (v.Load())
	// are the discipline, not a violation of it.
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// reportPlainAccess flags every use of a target object outside a
// sanctioned atomic-call argument.
func reportPlainAccess(pass *Pass, targets map[types.Object]bool, sanctioned map[*ast.Ident]bool) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !targets[obj] {
				return true
			}
			pass.Reportf(id.Pos(),
				"plain access to %s, which is accessed with sync/atomic elsewhere; use the atomic API everywhere",
				id.Name)
			return true
		})
	}
}

// reportAtomicCopies flags by-value movement of atomic-containing types.
func reportAtomicCopies(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, nil, n.Type)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Discarding into the blank identifier copies nothing.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					checkCopyExpr(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopyExpr(pass, v)
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopyExpr(pass, r)
				}
			case *ast.CallExpr:
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
					return true // conversions re-type, the operand check suffices elsewhere
				}
				for _, arg := range n.Args {
					checkCopyExpr(pass, arg)
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if t := pass.TypeOf(n.Value); t != nil && containsAtomic(t, nil) {
					pass.Reportf(n.Value.Pos(), "range copies %s values; iterate by index or over pointers", t)
				}
			}
			return true
		})
	}
}

func checkFuncSig(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.TypeOf(f.Type)
			if t != nil && containsAtomic(t, nil) {
				pass.Reportf(f.Type.Pos(), "%s passes %s by value; it contains sync/atomic state — use a pointer", what, t)
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// checkCopyExpr reports e when it reads an existing atomic-containing
// value (identifiers, field selections, indexing, dereferences). Fresh
// values — composite literals, function results — are legal to move once.
func checkCopyExpr(pass *Pass, e ast.Expr) {
	switch unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pass.TypeOf(e)
	if t == nil || !containsAtomic(t, nil) {
		return
	}
	pass.Reportf(e.Pos(), "copy of %s, which contains sync/atomic state; use a pointer", t)
}

// containsAtomic reports whether t is (or contains, through struct fields
// or array elements) one of sync/atomic's typed values. Pointers, slices,
// maps and channels break containment: holding a reference is fine.
func containsAtomic(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic(u.Elem(), seen)
	}
	return false
}
