package lint

import (
	"go/ast"
	"go/types"
)

// CtxDiscipline enforces the repo's context.Context conventions, the
// rules the service layer's cancellation correctness rests on:
//
//  1. First parameter: a function that takes a context.Context must take
//     it as its first parameter (after the receiver), so call sites and
//     signatures stay uniform and a context is never an afterthought.
//  2. No storage: a struct field must not have type context.Context.
//     A stored context outlives the call that created it and silently
//     decouples cancellation from call structure — hold a cancel func
//     (as service.job does) or pass the context per call instead.
var CtxDiscipline = &Analyzer{
	Name: "ctxdiscipline",
	Doc: `enforce context.Context conventions

Rule 1: context.Context parameters come first. Any function, method or
function literal with a context.Context parameter in a later position is
reported.

Rule 2: context.Context never lands in a struct field (named or
embedded). Contexts are call-scoped values; storing one hides its
lifetime. Keep a context.CancelFunc or re-derive the context per call.`,
	Run: runCtxDiscipline,
}

func runCtxDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				// Every signature in the file is a FuncType: declarations,
				// literals, interface methods, and function-typed fields.
				checkCtxParams(pass, n)
			case *ast.StructType:
				checkCtxFields(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCtxParams reports context.Context parameters in any position but
// the first.
func checkCtxParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, f := range ft.Params.List {
		n := len(f.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		if isContextType(pass.TypeOf(f.Type)) && pos > 0 {
			pass.Reportf(f.Type.Pos(),
				"context.Context must be the first parameter, not parameter %d", pos+1)
		}
		pos += n
	}
}

// checkCtxFields reports struct fields (named or embedded) of type
// context.Context.
func checkCtxFields(pass *Pass, st *ast.StructType) {
	for _, f := range st.Fields.List {
		if !isContextType(pass.TypeOf(f.Type)) {
			continue
		}
		name := "embedded field"
		if len(f.Names) > 0 {
			name = "field " + f.Names[0].Name
		}
		pass.Reportf(f.Type.Pos(),
			"%s stores a context.Context; contexts are call-scoped — pass them per call and store a context.CancelFunc if cancellation must outlive the call", name)
	}
}

// isContextType reports whether t is context.Context (possibly behind an
// alias).
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
