package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// exportDocPackages is the documented-surface scope: the packages whose
// exported identifiers form the API that README/BENCHMARKS.md point
// users at, and must therefore all carry doc comments. "exportdoc" is
// the analyzer's own test fixture.
var exportDocPackages = map[string]bool{
	"repro":                   true, // the faultsim facade
	"repro/internal/bench":    true,
	"repro/internal/compiled": true,
	"repro/internal/dist":     true,
	"repro/internal/harness":  true,
	"repro/internal/jobid":    true,
	"repro/internal/obs":      true,
	"repro/internal/parallel": true,
	"repro/internal/service":  true,
	"exportdoc":               true, // testdata fixture
}

// ExportDoc requires a doc comment on every exported identifier of the
// documented-surface packages.
var ExportDoc = &Analyzer{
	Name: "exportdoc",
	Doc: `require doc comments on all exported identifiers of surface packages

Scoped to the packages that form the documented API (the faultsim root
package, internal/bench, internal/compiled, internal/dist,
internal/harness, internal/jobid, internal/obs, internal/parallel,
internal/service). Within them,
every exported top-level function, type, variable and constant, every
method with an exported name on an exported type, every exported field
of an exported struct, and every method of an exported interface needs
a doc comment in the godoc convention: a comment group immediately
above the declaration. Grouped const/var declarations may share the
group's doc comment; trailing same-line comments do not count.`,
	Run: runExportDoc,
}

func runExportDoc(pass *Pass) error {
	if !exportDocPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		// Test files share the surface packages' import paths (internal
		// test variants) but Test*/Benchmark* functions are not API.
		// The repo loader never feeds them in; this guard keeps vet
		// -vettool mode, which does, in agreement.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
	return nil
}

// checkFuncDoc reports exported functions, and exported methods on
// exported receiver types, that lack a doc comment.
func checkFuncDoc(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || hasDoc(fn.Doc) {
		return
	}
	kind := "function"
	if fn.Recv != nil {
		recv := receiverTypeName(fn.Recv)
		if recv == "" || !token.IsExported(recv) {
			return // method on an unexported type: not API surface
		}
		kind = "method"
	}
	pass.Reportf(fn.Name.Pos(), "exported %s %s is missing a doc comment", kind, fn.Name.Name)
}

// checkGenDoc reports undocumented exported names in a type/var/const
// declaration, and recurses into exported struct and interface types.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			// A single-type declaration hangs its doc on the GenDecl; in
			// a parenthesized group every type needs its own doc.
			if !hasDoc(s.Doc) && (d.Lparen.IsValid() || !groupDoc) {
				pass.Reportf(s.Name.Pos(), "exported type %s is missing a doc comment", s.Name.Name)
			}
			switch t := s.Type.(type) {
			case *ast.StructType:
				checkFieldDocs(pass, s.Name.Name, t.Fields, "field")
			case *ast.InterfaceType:
				checkFieldDocs(pass, s.Name.Name, t.Methods, "interface method")
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				// Grouped const/var blocks may document the group once;
				// otherwise each exported spec needs its own doc.
				if groupDoc || hasDoc(s.Doc) {
					continue
				}
				what := "variable"
				if d.Tok == token.CONST {
					what = "constant"
				}
				pass.Reportf(name.Pos(), "exported %s %s is missing a doc comment", what, name.Name)
			}
		}
	}
}

// checkFieldDocs reports undocumented exported fields (or interface
// methods) of an exported type. Each field needs its own preceding doc
// comment: a doc group introducing several fields only covers the field
// it is attached to, so the rest must carry their own.
func checkFieldDocs(pass *Pass, typeName string, fields *ast.FieldList, what string) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if hasDoc(f.Doc) {
			continue
		}
		for _, name := range f.Names {
			if !name.IsExported() {
				continue
			}
			pass.Reportf(name.Pos(), "exported %s %s.%s is missing a doc comment", what, typeName, name.Name)
		}
	}
}

// receiverTypeName unwraps a method receiver to its type identifier.
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// hasDoc reports whether a comment group carries any documentation text.
// CommentGroup.Text strips directives (//go:..., //simlint:...), so a
// group holding only a directive does not count as documentation.
func hasDoc(cg *ast.CommentGroup) bool { return cg != nil && cg.Text() != "" }
