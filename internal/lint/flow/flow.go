// Package flow is the interprocedural layer under the simlint analyzers:
// a per-package static call graph over go/ast + go/types (no x/tools),
// with reachability and call-path reconstruction on top. The concurrency
// analyzers (immutableplan, guardedby, goroutinelife) consume it to see
// facts that intraprocedural AST walks cannot — a store that happens two
// calls away from publication, a lock taken by the caller of a helper, a
// goroutine body behind a named function.
//
// The graph is deliberately per-package: in `go vet -vettool` mode the
// driver only ever sees one compilation unit's source, so cross-package
// edges could never be built uniformly. Cross-package *types* still
// resolve (export data carries them); cross-package *calls* are opaque
// nodes. The analyzers compensate with package-path manifests where a
// contract spans packages (see lint.KnownImmutable).
//
// Approximations, all toward under-approximating the edge set (missed
// edges can hide a diagnostic, never invent one):
//
//   - only static calls are resolved: direct calls of package functions,
//     methods, and function literals. Calls through interface methods,
//     function-typed variables and method values produce no edge.
//   - a function literal gets a containment edge from its enclosing
//     function: creating the closure is treated as (potentially) running
//     it. Literals that escape into long-lived structures are therefore
//     attributed to their creator, not to the eventual caller.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Node is one function body in the analyzed package: a declared function
// or method (Func/Decl set) or a function literal (Lit/Encl set).
type Node struct {
	// Func is the declared function object; nil for literals.
	Func *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Encl is the node lexically enclosing a literal; nil for declared
	// functions and for literals in package-level initializers.
	Encl *Node

	// Calls are the static call sites inside this node's body, in source
	// order. Containment edges to nested literals are included.
	Calls []*Call

	callers []*Call
}

// Body returns the node's statement body (nil for bodyless declarations,
// e.g. assembly stubs).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// Name renders the node for diagnostics: Extract, (*Macro).buildTable,
// or "func literal in <encl>".
func (n *Node) Name() string {
	if n.Func != nil {
		if recv := n.Func.Type().(*types.Signature).Recv(); recv != nil {
			return fmt.Sprintf("(%s).%s", types.TypeString(recv.Type(), func(p *types.Package) string { return "" }), n.Func.Name())
		}
		return n.Func.Name()
	}
	if n.Encl != nil {
		return "func literal in " + n.Encl.Name()
	}
	return "func literal"
}

// Exported reports whether the node is an exported declared function or
// an exported method (callable from outside the package once its receiver
// escapes). Literals are never exported.
func (n *Node) Exported() bool {
	return n.Func != nil && n.Func.Exported()
}

// Call is one static edge: Caller invokes Callee at Site. For a
// containment edge (enclosing function → nested literal) Site is the
// literal itself.
type Call struct {
	Caller *Node
	Callee *Node
	Site   ast.Node
}

// Graph is the package's static call graph.
type Graph struct {
	nodes []*Node
	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
}

// Nodes returns every node in declaration order (literals follow their
// enclosing declaration).
func (g *Graph) Nodes() []*Node { return g.nodes }

// NodeOf returns the node for a declared function object, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byObj[fn] }

// NodeOfLit returns the node for a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// CallersOf returns the edges targeting n.
func (g *Graph) CallersOf(n *Node) []*Call { return n.callers }

// Build constructs the call graph for one package's files. Files for
// which skip returns true (e.g. _test.go files in vet mode) contribute
// neither nodes nor edges; skip may be nil.
func Build(fset *token.FileSet, files []*ast.File, info *types.Info, skip func(*ast.File) bool) *Graph {
	g := &Graph{
		byObj: map[*types.Func]*Node{},
		byLit: map[*ast.FuncLit]*Node{},
	}
	// Phase 1: register every declared function so that forward calls
	// resolve regardless of declaration order.
	var roots []*Node
	for _, f := range files {
		if skip != nil && skip(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := &Node{Func: fn, Decl: fd}
			g.nodes = append(g.nodes, n)
			g.byObj[fn] = n
			roots = append(roots, n)
		}
	}
	// Phase 2: walk bodies, materializing literals and recording edges.
	for _, n := range roots {
		g.walkBody(n, n.Decl.Body, info)
	}
	return g
}

// walkBody records n's call sites and materializes nested literals as
// their own nodes, attributing each call to its innermost enclosing
// function.
func (g *Graph) walkBody(n *Node, body *ast.BlockStmt, info *types.Info) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			lit := &Node{Lit: node, Encl: n}
			g.nodes = append(g.nodes, lit)
			g.byLit[node] = lit
			g.addEdge(n, lit, node)
			g.walkBody(lit, node.Body, info)
			return false // the literal's calls belong to the literal
		case *ast.CallExpr:
			if callee := g.resolve(node, info); callee != nil {
				g.addEdge(n, callee, node)
			}
		}
		return true
	})
}

// resolve finds the in-package node a call statically targets, or nil
// for dynamic, cross-package and builtin calls. Direct literal calls
// (func(){...}()) resolve to the literal's node.
func (g *Graph) resolve(call *ast.CallExpr, info *types.Info) *Node {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return g.byLit[fun] // registered by the enclosing Inspect before descent
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return g.byObj[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return g.byObj[fn]
		}
	}
	return nil
}

func (g *Graph) addEdge(from, to *Node, site ast.Node) {
	e := &Call{Caller: from, Callee: to, Site: site}
	from.Calls = append(from.Calls, e)
	to.callers = append(to.callers, e)
}

// Reach runs a BFS from roots and returns, for every reached node, the
// tree edge it was first discovered through (nil for the roots
// themselves). Edges are only followed *out of* nodes for which through
// returns true — a reached node failing the predicate is recorded but
// not expanded, so e.g. immutableplan can stop propagation at
// constructor boundaries. A nil through expands everything.
func (g *Graph) Reach(roots []*Node, through func(*Node) bool) map[*Node]*Call {
	reached := make(map[*Node]*Call, len(roots))
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if _, ok := reached[r]; ok {
			continue
		}
		reached[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if through != nil && !through(n) {
			continue
		}
		for _, e := range n.Calls {
			if _, ok := reached[e.Callee]; ok {
				continue
			}
			reached[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return reached
}

// Path reconstructs the BFS-tree call chain from a root to target as a
// " → "-joined name list, e.g. "EvalStuck → memoize". It returns "" when
// target was not reached.
func Path(reached map[*Node]*Call, target *Node) string {
	if _, ok := reached[target]; !ok {
		return ""
	}
	var names []string
	for n := target; n != nil; {
		names = append(names, n.Name())
		e := reached[n]
		if e == nil {
			break
		}
		n = e.Caller
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	out := ""
	for i, s := range names {
		if i > 0 {
			out += " → "
		}
		out += s
	}
	return out
}
