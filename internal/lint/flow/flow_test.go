package flow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint/flow"
)

// check parses and type-checks one synthetic file and builds its graph.
func check(t *testing.T, src string) (*flow.Graph, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "g.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: map[*ast.Ident]types.Object{},
		Uses: map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("g", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return flow.Build(fset, []*ast.File{f}, info, nil), info, fset
}

func node(t *testing.T, g *flow.Graph, name string) *flow.Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

const src = `package g

type T struct{ n int }

func New() *T { t := &T{}; t.init(); return t }

func (t *T) init() { t.n = 1 }

func (t *T) Get() int { return t.lookup() }

func (t *T) lookup() int { return t.n }

func Spawn() {
	go func() {
		helper()
	}()
}

func helper() {}

func Dead() {}
`

func TestGraphEdges(t *testing.T) {
	g, _, _ := check(t, src)

	for caller, callee := range map[string]string{
		"New":      "(*T).init",
		"(*T).Get": "(*T).lookup",
	} {
		from := node(t, g, caller)
		found := false
		for _, e := range from.Calls {
			if e.Callee.Name() == callee {
				found = true
			}
		}
		if !found {
			t.Errorf("missing edge %s → %s", caller, callee)
		}
	}

	// The goroutine literal hangs off Spawn via a containment edge, and
	// its own call to helper is attributed to the literal, not to Spawn.
	spawn := node(t, g, "Spawn")
	var lit *flow.Node
	for _, e := range spawn.Calls {
		if e.Callee.Lit != nil {
			lit = e.Callee
		}
		if e.Callee.Name() == "helper" {
			t.Error("helper call wrongly attributed to Spawn instead of its literal")
		}
	}
	if lit == nil {
		t.Fatal("no containment edge Spawn → literal")
	}
	if len(lit.Calls) != 1 || lit.Calls[0].Callee.Name() != "helper" {
		t.Errorf("literal calls = %v, want [helper]", lit.Calls)
	}
	if got := lit.Name(); got != "func literal in Spawn" {
		t.Errorf("literal name = %q", got)
	}
}

func TestReachAndPath(t *testing.T) {
	g, _, _ := check(t, src)
	get := node(t, g, "(*T).Get")
	lookup := node(t, g, "(*T).lookup")
	initN := node(t, g, "(*T).init")

	reached := g.Reach([]*flow.Node{get}, nil)
	if _, ok := reached[lookup]; !ok {
		t.Error("lookup not reached from Get")
	}
	if _, ok := reached[initN]; ok {
		t.Error("init wrongly reached from Get")
	}
	if p := flow.Path(reached, lookup); p != "(*T).Get → (*T).lookup" {
		t.Errorf("path = %q", p)
	}
	if p := flow.Path(reached, initN); p != "" {
		t.Errorf("path to unreached node = %q, want empty", p)
	}
}

func TestReachThroughFilter(t *testing.T) {
	g, _, _ := check(t, src)
	newN := node(t, g, "New")
	initN := node(t, g, "(*T).init")

	// Stopping traversal at New (a "builder") records New but not its
	// callees — the immutableplan construction-boundary rule.
	reached := g.Reach([]*flow.Node{newN}, func(n *flow.Node) bool { return n != newN })
	if _, ok := reached[initN]; ok {
		t.Error("traversal passed through a node the filter rejected")
	}
}

func TestCallersAndExported(t *testing.T) {
	g, _, _ := check(t, src)
	lookup := node(t, g, "(*T).lookup")
	callers := g.CallersOf(lookup)
	if len(callers) != 1 || callers[0].Caller.Name() != "(*T).Get" {
		t.Fatalf("CallersOf(lookup) = %v", callers)
	}
	if !node(t, g, "New").Exported() || node(t, g, "helper").Exported() {
		t.Error("Exported misclassified New or helper")
	}
	if len(g.CallersOf(node(t, g, "Dead"))) != 0 {
		t.Error("Dead has callers")
	}
	if !strings.Contains(node(t, g, "(*T).init").Name(), "init") {
		t.Error("method name rendering broken")
	}
}
