package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/flow"
)

// goroutineLifePackages are the packages whose `go` statements must be
// lifecycle-tied: the fan-out engines and the long-running service.
// Elsewhere (benchmark drivers, one-shot tools) a fire-and-forget
// goroutine can be legitimate. The fixture package rides along so the
// analyzer is testable.
var goroutineLifePackages = map[string]bool{
	"repro/internal/dist":     true,
	"repro/internal/parallel": true,
	"repro/internal/service":  true,
	"goroutinelife":           true,
}

// GoroutineLife requires every goroutine in the scoped packages to have
// a provable end: a WaitGroup pairing, a Wait of its own, or a
// cancellable context in scope.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc: `require goroutines in parallel/service code to have a bounded lifetime

A worker spawned per shard or per server must be joinable or
cancellable — an untracked goroutine in these packages outlives its
job, holds its arena, and turns a cancelled request into a leak. Each
go statement is accepted when the spawned body (a literal, or the
declaration a named call resolves to through the flow graph):

  - calls X.Done() on a sync.WaitGroup for which the spawning body
    calls X.Add(...) before the go statement (the canonical
    Add/go/defer-Done shape), or
  - calls Wait() on a sync.WaitGroup itself (a joiner goroutine whose
    lifetime is bounded by the workers it collects), or
  - references a context.Context — directly or via the spawn's
    arguments — so cancellation can reach it.

Anything else is a leak-shaped spawn. A deliberate exception (an
http.Serve pump whose lifetime is the listener's) takes a
//simlint:ignore goroutinelife <reason> suppression.`,
	Run: runGoroutineLife,
}

func runGoroutineLife(pass *Pass) error {
	if !goroutineLifePackages[normalizePkgPath(pass.Pkg.Path())] {
		return nil
	}
	g := flow.Build(pass.Fset, pass.Files, pass.TypesInfo, pass.skipTestFile)
	for _, n := range g.Nodes() {
		body := n.Body()
		if body == nil {
			continue
		}
		ast.Inspect(body, func(node ast.Node) bool {
			if _, ok := node.(*ast.FuncLit); ok {
				return false // literals are their own nodes
			}
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			pass.checkSpawn(g, n, gs)
			return true
		})
	}
	return nil
}

// normalizePkgPath strips the variant suffix `go vet` appends to test
// units ("repro/internal/service [repro/internal/service.test]").
func normalizePkgPath(p string) string {
	if i := strings.IndexByte(p, ' '); i >= 0 {
		return p[:i]
	}
	return p
}

// checkSpawn validates one go statement inside spawner.
func (p *Pass) checkSpawn(g *flow.Graph, spawner *flow.Node, gs *ast.GoStmt) {
	// A context-typed argument at the spawn is cancellation reaching the
	// goroutine, whatever the body does with it.
	for _, arg := range gs.Call.Args {
		if isContextType(p.TypeOf(arg)) {
			return
		}
	}
	body := p.spawnedBody(g, gs.Call)
	if body == nil {
		p.Reportf(gs.Pos(), "cannot resolve the spawned function statically; tie the goroutine to a WaitGroup or context the analyzer can see")
		return
	}
	var doneBases []string
	waits := false
	ctx := false
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			if base, name := p.waitGroupOp(node); name != "" {
				switch name {
				case "Done":
					doneBases = append(doneBases, base)
				case "Wait":
					waits = true
				}
			}
		case *ast.Ident:
			if obj := p.TypesInfo.Uses[node]; obj != nil && isContextType(obj.Type()) {
				ctx = true
			}
		}
		return true
	})
	if waits || ctx {
		return
	}
	for _, base := range doneBases {
		if base != "" && p.addBefore(spawner, base, gs.Pos()) {
			return
		}
	}
	if len(doneBases) > 0 {
		p.Reportf(gs.Pos(), "goroutine calls Done() but the spawning body has no matching Add() before the go statement")
		return
	}
	p.Reportf(gs.Pos(), "goroutine has no bounded lifetime: no WaitGroup Done/Add pair, no Wait, and no context reaches it (leak-shaped spawn)")
}

// spawnedBody resolves the body the go statement runs: the literal
// itself, or the in-package declaration of a directly named function.
func (p *Pass) spawnedBody(g *flow.Graph, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := p.TypesInfo.Uses[fun].(*types.Func); ok {
			if n := g.NodeOf(fn); n != nil {
				return n.Body()
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if n := g.NodeOf(fn); n != nil {
				return n.Body()
			}
		}
	}
	return nil
}

// addBefore reports whether spawner's body contains base.Add(...)
// positioned before pos. The position check keeps a later, unrelated
// Add from excusing an earlier spawn.
func (p *Pass) addBefore(spawner *flow.Node, base string, pos token.Pos) bool {
	found := false
	ast.Inspect(spawner.Body(), func(node ast.Node) bool {
		if found {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b, name := p.waitGroupOp(call); name == "Add" && b == base && call.Pos() < pos {
			found = true
		}
		return true
	})
	return found
}

// waitGroupOp classifies a call as a sync.WaitGroup method, returning
// the canonical receiver ("wg", "s.workerWG") and the method name.
func (p *Pass) waitGroupOp(call *ast.CallExpr) (base, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isWaitGroupType(recv.Type()) {
		return "", ""
	}
	return canonicalExpr(sel.X), fn.Name()
}

// isWaitGroupType reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
