package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/flow"
)

// GuardedBy enforces //simlint:guarded_by(mu) field annotations: every
// access to an annotated field must happen on a path where the named
// sibling mutex is held, with the requirement propagated through
// locked()-style helpers via the flow-layer call graph.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: `require the named mutex around accesses to //simlint:guarded_by fields

A struct field annotated //simlint:guarded_by(mu) may only be read or
written while the sibling mutex field mu (sync.Mutex or sync.RWMutex)
is held. The analyzer walks each function linearly, tracking the set of
held mutexes: Lock/RLock acquire, Unlock/RUnlock release, a deferred
unlock keeps the mutex held to the end, branches merge by intersection
(a mutex counts as held after an if/else only when both arms hold it),
and sync.Cond.Wait is transparent (it reacquires before returning).

An access in a function that never locks is not immediately a bug — the
lock may be the caller's job. Such a requirement is propagated to every
call site through the call graph: an unexported helper is clean when
all of its callers hold the mapped mutex at the call (or themselves
propagate the requirement upward). An exported function, a function
with no in-package callers, or a call site that cannot be mapped back
(dynamic call, unmappable argument) ends propagation and the access is
reported.

Goroutine bodies start with no mutexes held regardless of what the
spawning function holds; other function literals inherit the held set
at their creation point.`,
	Run: runGuardedBy,
}

// guardedField is one annotated field: the field object plus the name
// of its sibling mutex field.
type guardedField struct {
	mutex string
}

type gbAccess struct {
	pos token.Pos
	// expr renders the access ("q.items"), key the required mutex
	// ("q.mu").
	expr, key string
	// baseVar is the root object of the access base when it is a plain
	// identifier (receiver, parameter or closed-over variable) — the
	// handle for propagating the requirement to call sites; nil when the
	// base is a more complex expression.
	baseVar *types.Var
	mutex   string
}

type gbChecker struct {
	pass    *Pass
	graph   *flow.Graph
	guarded map[*types.Var]guardedField
	// heldAt snapshots the held set at each static call site and at each
	// function-literal creation, for requirement propagation.
	heldAt map[ast.Node]map[string]bool
	// litInit is the held set a literal's body starts with.
	litInit  map[*ast.FuncLit]map[string]bool
	accesses map[*flow.Node][]gbAccess
}

func runGuardedBy(pass *Pass) error {
	c := &gbChecker{
		pass:     pass,
		guarded:  map[*types.Var]guardedField{},
		heldAt:   map[ast.Node]map[string]bool{},
		litInit:  map[*ast.FuncLit]map[string]bool{},
		accesses: map[*flow.Node][]gbAccess{},
	}
	c.collectAnnotations()
	if len(c.guarded) == 0 {
		return nil
	}
	c.graph = flow.Build(pass.Fset, pass.Files, pass.TypesInfo, pass.skipTestFile)
	for _, n := range c.graph.Nodes() {
		body := n.Body()
		if body == nil {
			continue
		}
		state := map[string]bool{}
		if n.Lit != nil {
			state = cloneHeld(c.litInit[n.Lit])
		}
		c.walkStmts(n, body.List, state)
	}
	// Resolve the collected requirements bottom-up through the graph.
	for _, n := range c.graph.Nodes() {
		reported := map[string]bool{}
		for _, acc := range c.accesses[n] {
			if c.satisfied(n, acc.baseVar, acc.mutex, map[*flow.Node]bool{}) {
				continue
			}
			// One diagnostic per line and mutex: `q.items = append(q.items, x)`
			// is one violation, not two.
			pos := c.pass.Fset.Position(acc.pos)
			dk := fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, acc.key)
			if reported[dk] {
				continue
			}
			reported[dk] = true
			c.pass.Reportf(acc.pos, "access to %s without holding %s (field marked //simlint:guarded_by(%s))",
				acc.expr, acc.key, acc.mutex)
		}
	}
	return nil
}

// collectAnnotations gathers the package's guarded fields, validating
// that each names a sibling mutex.
func (c *gbChecker) collectAnnotations() {
	for _, file := range c.pass.Files {
		if c.pass.skipTestFile(file) {
			continue
		}
		ast.Inspect(file, func(node ast.Node) bool {
			st, ok := node.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				doc := field.Doc
				if doc == nil {
					doc = field.Comment
				}
				arg, found := markerArg(doc, MarkerGuardedBy)
				if !found {
					continue
				}
				if arg == "" {
					c.pass.Reportf(field.Pos(), "//simlint:guarded_by requires the sibling mutex field name, e.g. //simlint:guarded_by(mu)")
					continue
				}
				mu, ok := siblingField(st, arg)
				if !ok {
					c.pass.Reportf(field.Pos(), "//simlint:guarded_by(%s): no sibling field named %s", arg, arg)
					continue
				}
				if !isMutexType(c.pass.TypeOf(mu.Type)) {
					c.pass.Reportf(field.Pos(), "//simlint:guarded_by(%s): %s is not a sync.Mutex or sync.RWMutex", arg, arg)
					continue
				}
				for _, name := range field.Names {
					if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.guarded[v] = guardedField{mutex: arg}
					}
				}
			}
			return true
		})
	}
}

// siblingField finds the struct field named name.
func siblingField(st *ast.StructType, name string) (*ast.Field, bool) {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return f, true
			}
		}
	}
	return nil, false
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex or a
// pointer to one.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// walkStmts runs the held-set interpreter over a statement list,
// mutating state in place. The return value reports whether control
// cannot fall out of the list (return, panic, branch).
func (c *gbChecker) walkStmts(n *flow.Node, stmts []ast.Stmt, state map[string]bool) bool {
	for _, stmt := range stmts {
		if c.walkStmt(n, stmt, state) {
			return true
		}
	}
	return false
}

func (c *gbChecker) walkStmt(n *flow.Node, stmt ast.Stmt, state map[string]bool) bool {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return c.walkStmts(n, s.List, state)
	case *ast.LabeledStmt:
		return c.walkStmt(n, s.Stmt, state)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(n, e, state)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto divert control; excluding their state from
		// the enclosing merge under-approximates the held set, which can
		// only cause a false report, never hide one.
		return true
	case *ast.ExprStmt:
		if isPanicCall(s.X) {
			c.scanExpr(n, s.X, state)
			return true
		}
		c.scanExpr(n, s.X, state)
		return false
	case *ast.DeferStmt:
		// A deferred unlock releases at return — the mutex stays held for
		// the rest of the body, which is exactly "no state change now".
		if _, op := c.mutexOpInfo(s.Call); op != "" {
			return false
		}
		c.scanDeferredCall(n, s.Call, state)
		return false
	case *ast.GoStmt:
		c.scanDeferredCall(n, s.Call, state)
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(n, s.Init, state)
		}
		c.scanExpr(n, s.Cond, state)
		thenState := cloneHeld(state)
		thenTerm := c.walkStmts(n, s.Body.List, thenState)
		elseState := cloneHeld(state)
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(n, s.Else, elseState)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceHeld(state, elseState)
		case elseTerm:
			replaceHeld(state, thenState)
		default:
			intersectHeld(thenState, elseState)
			replaceHeld(state, thenState)
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(n, s.Init, state)
		}
		if s.Cond != nil {
			c.scanExpr(n, s.Cond, state)
		}
		bodyState := cloneHeld(state)
		term := c.walkStmts(n, s.Body.List, bodyState)
		if s.Post != nil {
			c.walkStmt(n, s.Post, bodyState)
		}
		if !term {
			intersectHeld(state, bodyState) // the body may run zero times
		}
		return false
	case *ast.RangeStmt:
		c.scanExpr(n, s.X, state)
		bodyState := cloneHeld(state)
		if !c.walkStmts(n, s.Body.List, bodyState) {
			intersectHeld(state, bodyState)
		}
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(n, s.Init, state)
		}
		if s.Tag != nil {
			c.scanExpr(n, s.Tag, state)
		}
		return c.walkCases(n, s.Body.List, state, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(n, s.Init, state)
		}
		c.walkStmt(n, s.Assign, state)
		return c.walkCases(n, s.Body.List, state, false)
	case *ast.SelectStmt:
		// A default-free select blocks until some clause runs, so the
		// merge never includes the entry state.
		return c.walkCases(n, s.Body.List, state, true)
	default:
		// Assignments, declarations, sends, ++/--: no control flow, just
		// expressions to scan (walkStmt on nested Init stmts lands here
		// too).
		ast.Inspect(stmt, func(node ast.Node) bool {
			if e, ok := node.(ast.Expr); ok {
				c.scanExpr(n, e, state)
				return false
			}
			return true
		})
		return false
	}
}

// walkCases merges switch/select clause bodies by intersection. For a
// switch without a default clause the entry state joins the merge (no
// clause may match); a select (selectAlways) always runs one clause.
func (c *gbChecker) walkCases(n *flow.Node, clauses []ast.Stmt, state map[string]bool, selectAlways bool) bool {
	var out []map[string]bool
	hasDefault := false
	for _, cl := range clauses {
		cs := cloneHeld(state)
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.scanExpr(n, e, cs)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.walkStmt(n, cl.Comm, cs)
			}
			body = cl.Body
		}
		if !c.walkStmts(n, body, cs) {
			out = append(out, cs)
		}
	}
	if !hasDefault && !selectAlways {
		out = append(out, cloneHeld(state))
	}
	if len(out) == 0 {
		return len(clauses) > 0 // every clause terminated
	}
	merged := out[0]
	for _, s := range out[1:] {
		intersectHeld(merged, s)
	}
	replaceHeld(state, merged)
	return false
}

// scanExpr records guarded-field accesses, applies mutex operations and
// snapshots call sites, without descending into function literals
// (their bodies are separate graph nodes).
func (c *gbChecker) scanExpr(n *flow.Node, e ast.Expr, state map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			// The literal's body starts with the held set at its creation
			// point ("creating is running", flow's containment rule).
			c.litInit[node] = cloneHeld(state)
			c.heldAt[node] = cloneHeld(state)
			return false
		case *ast.CallExpr:
			if key, op := c.mutexOpInfo(node); op != "" {
				switch op {
				case "Lock", "RLock":
					state[key] = true
				case "Unlock", "RUnlock":
					delete(state, key)
				}
				return false // the receiver chain is not an access
			}
			c.heldAt[node] = cloneHeld(state)
			return true
		case *ast.SelectorExpr:
			c.checkAccess(n, node, state)
			return true
		}
		return true
	})
}

// scanDeferredCall handles go/defer calls: any literal involved starts
// with an empty held set (it runs on another goroutine or after an
// unknown amount of unwinding), and the call site itself snapshots an
// empty set for propagation.
func (c *gbChecker) scanDeferredCall(n *flow.Node, call *ast.CallExpr, state map[string]bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.litInit[lit] = map[string]bool{}
		c.heldAt[lit] = map[string]bool{}
	} else {
		c.scanExpr(n, call.Fun, state)
	}
	c.heldAt[call] = map[string]bool{}
	for _, a := range call.Args {
		c.scanExpr(n, a, state)
	}
}

// mutexOpInfo classifies a call as a mutex acquire/release, returning
// the canonical receiver key and the operation name ("" when the call
// is not one). It never mutates state — defer handling needs the
// classification without the effect.
func (c *gbChecker) mutexOpInfo(call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isMutexType(recv.Type()) {
		return "", ""
	}
	key := canonicalExpr(sel.X)
	if key == "" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return key, fn.Name()
	}
	return "", ""
}

// checkAccess tests one selector against the guarded-field set.
func (c *gbChecker) checkAccess(n *flow.Node, sel *ast.SelectorExpr, state map[string]bool) {
	v, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	gf, ok := c.guarded[v]
	if !ok {
		return
	}
	base := canonicalExpr(sel.X)
	if base == "" {
		// Unrenderable base (index expression, call result): require the
		// lock to be provably held via some canonical alias is impossible,
		// so record an unpropagatable access.
		c.accesses[n] = append(c.accesses[n], gbAccess{
			pos: sel.Pos(), expr: "." + sel.Sel.Name, key: "its " + gf.mutex, mutex: gf.mutex,
		})
		return
	}
	key := base + "." + gf.mutex
	if state[key] {
		return
	}
	acc := gbAccess{pos: sel.Pos(), expr: base + "." + sel.Sel.Name, key: key, mutex: gf.mutex}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if bv, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
			acc.baseVar = bv
		}
	}
	c.accesses[n] = append(c.accesses[n], acc)
}

// satisfied reports whether every path to n holds baseVar's mutex — the
// interprocedural half: an unexported helper is clean when all its call
// sites hold the mapped mutex or propagate the requirement further up.
func (c *gbChecker) satisfied(n *flow.Node, baseVar *types.Var, mutex string, visiting map[*flow.Node]bool) bool {
	if baseVar == nil || visiting[n] {
		return false
	}
	visiting[n] = true
	defer delete(visiting, n)

	if n.Lit != nil {
		// The literal inherited its creation-point state; the base being a
		// closed-over variable, callers cannot be mapped further.
		return false
	}
	if n.Exported() {
		return false // external callers are invisible; the lock must be local
	}
	recvIndex, paramIndex := signatureIndex(n.Func, baseVar)
	if recvIndex < 0 && paramIndex < 0 {
		return false // base is a local or package variable: not mappable
	}
	callers := c.graph.CallersOf(n)
	if len(callers) == 0 {
		return false
	}
	for _, edge := range callers {
		call, ok := edge.Site.(*ast.CallExpr)
		if !ok {
			return false
		}
		var argExpr ast.Expr
		if recvIndex == 0 {
			selFun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return false // method value / expression call: unmappable
			}
			argExpr = selFun.X
		} else {
			if paramIndex >= len(call.Args) {
				return false
			}
			argExpr = call.Args[paramIndex]
		}
		base := canonicalExpr(argExpr)
		if base == "" {
			return false
		}
		if c.heldAt[call][base+"."+mutex] {
			continue
		}
		id, ok := ast.Unparen(argExpr).(*ast.Ident)
		if !ok {
			return false
		}
		bv, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !c.satisfied(edge.Caller, bv, mutex, visiting) {
			return false
		}
	}
	return true
}

// signatureIndex locates v in fn's signature: (0, -1) for the receiver,
// (-1, i) for parameter i, (-1, -1) when absent.
func signatureIndex(fn *types.Func, v *types.Var) (recvIndex, paramIndex int) {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == v {
		return 0, -1
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == v {
			return -1, i
		}
	}
	return -1, -1
}

// isPanicCall reports whether e is a call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// canonicalExpr renders a selector chain of plain identifiers ("q",
// "s.queue", "(*p).mu" as "p.mu"); "" for anything with an index, call
// or other non-path component. Two textually equal keys are assumed to
// alias — sound enough for lock discipline, where the guarded struct
// and its mutex travel together.
func canonicalExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := canonicalExpr(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return canonicalExpr(e.X)
	}
	return ""
}

// cloneHeld copies a held set.
func cloneHeld(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, v := range s {
		if v {
			out[k] = v
		}
	}
	return out
}

// intersectHeld drops from a every key not held in b.
func intersectHeld(a, b map[string]bool) {
	for k := range a {
		if !b[k] {
			delete(a, k)
		}
	}
}

// replaceHeld overwrites a's contents with b's.
func replaceHeld(a, b map[string]bool) {
	for k := range a {
		delete(a, k)
	}
	for k, v := range b {
		a[k] = v
	}
}
