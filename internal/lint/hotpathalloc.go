package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathAlloc enforces the no-allocation discipline on functions marked
// //simlint:hotpath: the concurrent simulator's per-cycle walk must not
// allocate (arena elements are recycled through a free list precisely so
// the steady state is allocation-free) and must not call into the
// observability layer (PR 2's no-Heisenberg rule: counters are plain ints
// flushed once per cycle, never per-event metric calls).
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: `forbid allocations and observability calls in //simlint:hotpath functions

Reports, inside any function whose doc comment carries the
//simlint:hotpath directive:

  - make and new calls, map/slice composite literals, and composite
    literals whose address is taken (all heap-allocate);
  - function literals (closures capture and escape);
  - string <-> []byte/[]rune conversions (copy + allocate);
  - go and defer statements;
  - calls into package fmt (formatting allocates);
  - any call into the observability layer (repro/internal/obs) — hot
    paths keep plain counters and flush once per cycle.`,
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasMarker(fn.Doc, MarkerHotPath) {
				continue
			}
			checkHotPathBody(pass, fn)
		}
	}
	return nil
}

func checkHotPathBody(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Report(n.Pos(), "function literal in hot path: closures allocate; hoist it out of the //simlint:hotpath function")
			return false // inner violations are subsumed
		case *ast.GoStmt:
			pass.Report(n.Pos(), "go statement in hot path allocates a goroutine")
			return false
		case *ast.DeferStmt:
			pass.Report(n.Pos(), "defer in hot path: run the call directly")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					pass.Report(n.Pos(), "address of composite literal escapes to the heap in hot path")
					return false
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Report(n.Pos(), "map literal allocates in hot path")
					return false
				case *types.Slice:
					pass.Report(n.Pos(), "slice literal allocates in hot path")
					return false
				}
			}
		case *ast.CallExpr:
			checkHotPathCall(pass, n)
		}
		return true
	})
}

func checkHotPathCall(pass *Pass, call *ast.CallExpr) {
	// Type conversions: string <-> []byte / []rune copy and allocate.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypeOf(call.Args[0])
		if from != nil && stringBytesConv(to, from) {
			pass.Reportf(call.Pos(), "conversion %s -> %s allocates in hot path", from, to)
		}
		return
	}

	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = pass.ObjectOf(fun.Sel)
	}
	switch obj := obj.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			pass.Report(call.Pos(), "make allocates in hot path: preallocate in the constructor and reuse")
		case "new":
			pass.Report(call.Pos(), "new allocates in hot path: preallocate in the constructor and reuse")
		}
	case *types.Func:
		pkg := obj.Pkg()
		if pkg == nil {
			return
		}
		switch {
		case pkg.Path() == "fmt":
			pass.Reportf(call.Pos(), "fmt.%s in hot path formats and allocates", obj.Name())
		case isObsPath(pkg.Path()):
			pass.Reportf(call.Pos(),
				"observability call %s.%s in hot path: keep plain counters and flush once per cycle (no-Heisenberg rule)",
				pkg.Name(), obj.Name())
		}
	}
}

// isObsPath reports whether the package path is the observability layer.
func isObsPath(path string) bool {
	return path == "repro/internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

// stringBytesConv reports whether converting from -> to crosses the
// string/byte-slice (or string/rune-slice) boundary.
func stringBytesConv(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isString(from) && isByteOrRuneSlice(to))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Byte, types.Rune: // aliases of Uint8 / Int32
		return true
	}
	return false
}
