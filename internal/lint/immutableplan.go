package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/flow"
)

// KnownImmutable mirrors the //simlint:immutable annotations across
// package boundaries: compiler export data drops comments, so in
// `go vet -vettool` mode a package storing to another package's frozen
// type (csim writing through csim.Config.Plan, say) could not see the
// marker. The manifest makes the contract visible everywhere; when the
// defining package itself is analyzed, each listed type must carry the
// in-source marker, so the two spellings cannot drift apart.
var KnownImmutable = map[string][]string{
	"repro/internal/goodsim": {"Trace"},
	"repro/internal/macro":   {"Macro", "Plan"},
	"repro/internal/netlist": {"Circuit", "Gate"},
}

// ImmutablePlan proves the shared-plan discipline the service tier's
// compiled-circuit cache rests on: a type marked //simlint:immutable
// (macro plans, post-Build netlist arenas, recorded good traces) is
// handed concurrently to any number of jobs, so every store to it must
// happen before publication — inside its construction closure.
var ImmutablePlan = &Analyzer{
	Name: "immutableplan",
	Doc: `forbid post-construction stores to //simlint:immutable types

A type marked //simlint:immutable is frozen once its constructor
returns; the compiled-circuit cache shares such values across
concurrently running jobs, so a single late store is a data race.

The analyzer classifies every function in the package through the
flow-layer call graph. Construction closure: functions whose results
reach the marked type (constructors like Extract or Build), functions
marked //simlint:builder <Type>, and helpers reachable only from those.
Everything else — every exported function or method plus whatever they
transitively call — runs after publication, and a field, slice-element
or map store to the marked type there is reported with the
store-to-publication call path (the exact shape of the PR 5 macro-table
lazy-memo race, now a compile-time diagnostic).

Known approximations: stores through an alias that severs the selector
chain from a marked base (p := &c.Gates[i] in an unmarked type) are
only seen when the aliased element type is itself marked, and closures
created during construction are attributed to their creator even if
they escape into the published value.`,
	Run: runImmutablePlan,
}

func runImmutablePlan(pass *Pass) error {
	marked := markedImmutable(pass)
	manifestCheck(pass, marked)
	isImm := func(t types.Type) (string, bool) { return immutableName(t, marked) }

	g := flow.Build(pass.Fset, pass.Files, pass.TypesInfo, pass.skipTestFile)
	builders := map[*flow.Node]bool{}
	for _, n := range g.Nodes() {
		if n.Func != nil && (signatureBuilds(pass, n, marked) || hasBuilderMarker(pass, n)) {
			builders[n] = true
		}
	}

	// Publication roots: exported non-builders (callable on a shared
	// value from anywhere) plus non-builder functions nothing in the
	// package calls (main, handlers registered by value, ...).
	var entries []*flow.Node
	for _, n := range g.Nodes() {
		if builders[n] || n.Func == nil {
			continue
		}
		if n.Exported() || len(g.CallersOf(n)) == 0 {
			entries = append(entries, n)
		}
	}
	// Post-publication closure: everything reachable from an entry
	// without passing through a builder — calling a constructor starts a
	// fresh construction context, so traversal stops there.
	reached := g.Reach(entries, func(n *flow.Node) bool { return !builders[n] })

	for _, n := range g.Nodes() {
		if builders[n] {
			continue
		}
		if _, ok := reached[n]; !ok {
			continue // construction-only helper
		}
		path := flow.Path(reached, n)
		forEachStore(pass, n, func(pos ast.Node, target string) {
			pass.Reportf(pos.Pos(), "store to %s after construction (path: %s); the type is marked //simlint:immutable and shared across concurrent simulations",
				target, path)
		}, isImm)
	}
	return nil
}

// markedImmutable collects the package's //simlint:immutable types.
func markedImmutable(pass *Pass) map[*types.TypeName]bool {
	marked := map[*types.TypeName]bool{}
	for _, file := range pass.Files {
		if pass.skipTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasMarker(ts.Doc, MarkerImmutable) && !(len(gd.Specs) == 1 && hasMarker(gd.Doc, MarkerImmutable)) {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					marked[tn] = true
				}
			}
		}
	}
	return marked
}

// manifestCheck keeps KnownImmutable honest: when the defining package
// is being analyzed, every manifest entry must exist and carry the
// in-source marker.
func manifestCheck(pass *Pass, marked map[*types.TypeName]bool) {
	names, ok := KnownImmutable[pass.Pkg.Path()]
	if !ok {
		return
	}
	byName := map[string]bool{}
	for tn := range marked {
		byName[tn.Name()] = true
	}
	for _, name := range names {
		if byName[name] {
			continue
		}
		pos := pass.Files[0].Package
		if obj := pass.Pkg.Scope().Lookup(name); obj != nil {
			pos = obj.Pos()
		}
		pass.Reportf(pos, "type %s is listed in lint.KnownImmutable but does not carry //simlint:immutable (manifest drift)", name)
	}
}

// immutableName reports whether t (possibly behind a pointer) is a
// marked or manifest-listed immutable type, returning its pkg.Name
// rendering.
func immutableName(t types.Type, marked map[*types.TypeName]bool) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if marked[obj] {
		return renderTypeName(obj), true
	}
	if obj.Pkg() != nil {
		for _, name := range KnownImmutable[obj.Pkg().Path()] {
			if name == obj.Name() {
				return renderTypeName(obj), true
			}
		}
	}
	return "", false
}

func renderTypeName(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// signatureBuilds reports whether any result type of n reaches a marked
// type — returning *Plan, []*Macro, or a struct containing one all make
// the function a constructor (building a composite includes building
// its parts).
func signatureBuilds(pass *Pass, n *flow.Node, marked map[*types.TypeName]bool) bool {
	sig, ok := n.Func.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if typeReachesImmutable(res.At(i).Type(), marked, map[types.Type]bool{}) {
			return true
		}
	}
	return false
}

func typeReachesImmutable(t types.Type, marked map[*types.TypeName]bool, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if _, ok := immutableName(t, marked); ok {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return typeReachesImmutable(u.Elem(), marked, seen)
	case *types.Slice:
		return typeReachesImmutable(u.Elem(), marked, seen)
	case *types.Array:
		return typeReachesImmutable(u.Elem(), marked, seen)
	case *types.Map:
		return typeReachesImmutable(u.Elem(), marked, seen)
	case *types.Chan:
		return typeReachesImmutable(u.Elem(), marked, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeReachesImmutable(u.Field(i).Type(), marked, seen) {
				return true
			}
		}
	}
	return false
}

// hasBuilderMarker reports whether n's declaration carries
// //simlint:builder naming a marked (or manifest) type.
func hasBuilderMarker(pass *Pass, n *flow.Node) bool {
	if n.Decl == nil || n.Decl.Doc == nil {
		return false
	}
	arg, found := markerArg(n.Decl.Doc, MarkerBuilder)
	if !found {
		return false
	}
	if arg == "" {
		pass.Reportf(n.Decl.Pos(), "//simlint:builder requires the constructed type's name as argument")
		return false
	}
	return true
}

// forEachStore walks n's own body (nested literals are their own nodes)
// and invokes report for every store whose target chain is rooted in an
// immutable type: assignments (including op-assigns), ++/--, and the
// mutating builtins copy and clear.
func forEachStore(pass *Pass, n *flow.Node, report func(pos ast.Node, target string), isImm func(types.Type) (string, bool)) {
	body := n.Body()
	if body == nil {
		return
	}
	var visit func(node ast.Node) bool
	visit = func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false // separate node
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				checkStoreTarget(pass, lhs, report, isImm)
			}
		case *ast.IncDecStmt:
			checkStoreTarget(pass, node.X, report, isImm)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && len(node.Args) > 0 {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && (id.Name == "copy" || id.Name == "clear") {
					checkStoreTarget(pass, node.Args[0], report, isImm)
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// checkStoreTarget peels the assigned expression's selector/index/deref
// chain outward-in and reports the innermost base whose type is marked
// immutable: m.gateInstr[g] = v, c.Gates[i].Fanin = x, *p = Plan{} all
// resolve to their frozen root.
func checkStoreTarget(pass *Pass, e ast.Expr, report func(pos ast.Node, target string), isImm func(types.Type) (string, bool)) {
	orig := e
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if name, ok := isImm(pass.TypeOf(x.X)); ok {
				report(orig, fmt.Sprintf("(%s).%s", name, x.Sel.Name))
				return
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			if name, ok := isImm(pass.TypeOf(x.X)); ok {
				report(orig, "*"+name)
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// skipTestFile reports whether the file is a _test.go file. The three
// flow analyzers check the production sharing contract only: tests
// construct adversarial states on purpose, and `go vet` feeds test
// units through the same driver.
func (p *Pass) skipTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}
