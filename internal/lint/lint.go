// Package lint is the repo's static-analysis layer: a small, dependency-free
// workalike of golang.org/x/tools/go/analysis hosting the custom analyzers
// that machine-check the invariants the simulator's speed claims rest on
// (see DESIGN.md, "Static analysis"). The x/tools module is deliberately
// not imported — the framework runs on go/parser + go/types alone, so the
// lint suite builds in a hermetic environment with nothing but the Go
// toolchain.
//
// The shape mirrors go/analysis on purpose: an Analyzer bundles a name,
// documentation and a Run function over a Pass; a Pass exposes the parsed
// files, the type information and a Report sink. Porting an analyzer to the
// real framework is a mechanical import swap.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. By
	// convention it is a single lowercase word.
	Name string
	// Doc is the help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one package being
// analyzed. It is valid only for the duration of the Run call.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Report records a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  msg,
	})
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object denoted by ident (uses or defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// Run applies each analyzer to each package and returns every diagnostic,
// sorted by file position. Analyzer errors (not diagnostics) abort the
// run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// All returns the full simlint analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		MapRange,
		AtomicDiscipline,
		CtxDiscipline,
		SlogDiscipline,
		StatsTag,
		ExportDoc,
	}
}

// ByName resolves a comma-free analyzer name against the suite.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
