// Package lint is the repo's static-analysis layer: a small, dependency-free
// workalike of golang.org/x/tools/go/analysis hosting the custom analyzers
// that machine-check the invariants the simulator's speed claims rest on
// (see DESIGN.md, "Static analysis"). The x/tools module is deliberately
// not imported — the framework runs on go/parser + go/types alone, so the
// lint suite builds in a hermetic environment with nothing but the Go
// toolchain.
//
// The shape mirrors go/analysis on purpose: an Analyzer bundles a name,
// documentation and a Run function over a Pass; a Pass exposes the parsed
// files, the type information and a Report sink. Porting an analyzer to the
// real framework is a mechanical import swap.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. By
	// convention it is a single lowercase word.
	Name string
	// Doc is the help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one package being
// analyzed. It is valid only for the duration of the Run call.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a diagnostic silenced by a //simlint:ignore
	// directive; SuppressReason carries the directive's mandatory
	// justification. Suppressed diagnostics never fail a run but stay
	// visible to machine consumers (cmd/simlint -json).
	Suppressed     bool
	SuppressReason string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Report records a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  msg,
	})
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object denoted by ident (uses or defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// Report is the full outcome of one analysis run: the active
// diagnostics, the ones silenced by //simlint:ignore directives, the
// directives that silenced nothing, and malformed directives. Active,
// malformed and unused entries are failures; suppressed ones are not.
type Report struct {
	// Diags are the active (unsuppressed) diagnostics, sorted.
	Diags []Diagnostic
	// Suppressed are the diagnostics matched by an ignore directive,
	// sorted, each carrying its SuppressReason.
	Suppressed []Diagnostic
	// Unused are the ignore directives (for analyzers that actually ran)
	// that matched no diagnostic.
	Unused []*Suppression
	// Malformed are broken ignore directives (missing reason, unknown
	// analyzer), reported under the pseudo-analyzer "simlint".
	Malformed []Diagnostic
}

// Failed reports whether the run should fail the build: any active or
// malformed diagnostic, or any unused suppression.
func (r *Report) Failed() bool {
	return len(r.Diags) > 0 || len(r.Malformed) > 0 || len(r.Unused) > 0
}

// RunAll applies each analyzer to each package, honors the packages'
// //simlint:ignore directives, and returns the full report with every
// diagnostic list sorted by (file, line, column, analyzer) — a total,
// run-independent order, so CI logs and -json artifacts are stable.
// Analyzer errors (not diagnostics) abort the run.
func RunAll(pkgs []*Package, analyzers []*Analyzer) (*Report, error) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	r := &Report{}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		sups, malformed := collectSuppressions(pkg.Fset, pkg.Syntax)
		kept, suppressed := applySuppressions(diags, sups)
		r.Diags = append(r.Diags, kept...)
		r.Suppressed = append(r.Suppressed, suppressed...)
		r.Malformed = append(r.Malformed, malformed...)
		for _, s := range sups {
			// A directive for an analyzer that did not run this time is
			// neither used nor stale; only directives the run could have
			// consumed count as unused.
			if !s.Used() && ran[s.Analyzer] {
				r.Unused = append(r.Unused, s)
			}
		}
	}
	sortDiags(r.Diags)
	sortDiags(r.Suppressed)
	sortDiags(r.Malformed)
	sort.SliceStable(r.Unused, func(i, j int) bool {
		a, b := r.Unused[i].Pos, r.Unused[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return r, nil
}

// Run is the single-list view of RunAll for callers that treat every
// problem alike (the fixture runner): active plus malformed
// diagnostics, sorted; suppressed ones are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	r, err := RunAll(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	diags := append(r.Diags, r.Malformed...)
	sortDiags(diags)
	return diags, nil
}

// sortDiags orders diagnostics by (file, line, column, analyzer,
// message) — deterministic across runs and analyzer registration order.
func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// All returns the full simlint analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		MapRange,
		AtomicDiscipline,
		CtxDiscipline,
		SlogDiscipline,
		StatsTag,
		ExportDoc,
		ImmutablePlan,
		GuardedBy,
		GoroutineLife,
	}
}

// ByName resolves a comma-free analyzer name against the suite.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
