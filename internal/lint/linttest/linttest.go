// Package linttest runs an analyzer over a testdata fixture package and
// asserts its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	s.buf = make([]int, 4) // want `make allocates`
//
// Each backquoted (or double-quoted) string after // want is a regular
// expression; the line must produce exactly one diagnostic matching each,
// and every diagnostic must be claimed by a want. Fixtures live under
// testdata/src/<name>/ and may import the module's own packages; the
// shared Loader type-checks them from source.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var (
	loaderOnce sync.Once
	loaderVal  *lint.Loader
	loaderErr  error
)

// loader returns the process-wide fixture loader, rooted at the module
// directory (found by walking up from the working directory to go.mod).
func loader() (*lint.Loader, error) {
	loaderOnce.Do(func() {
		dir, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		for {
			if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
				break
			}
			parent := filepath.Dir(dir)
			if parent == dir {
				loaderErr = fmt.Errorf("linttest: no go.mod above working directory")
				return
			}
			dir = parent
		}
		loaderVal = lint.NewLoader(dir)
	})
	return loaderVal, loaderErr
}

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run analyzes the fixture package at dir (e.g. "testdata/src/hotpath")
// and matches diagnostics against its // want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	l, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckDir(filepath.Base(abs), abs)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", filepath.Base(d.Pos.Filename), d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// claim marks the first unhit expectation on the diagnostic's line whose
// pattern matches.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants extracts the // want expectations from every fixture file.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				spec, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(t, pos.String(), spec) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitWantPatterns parses the backquoted or double-quoted patterns of
// one want spec.
func splitWantPatterns(t *testing.T, pos, spec string) []string {
	t.Helper()
	var out []string
	rest := strings.TrimSpace(spec)
	for rest != "" {
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, rest)
			}
			out = append(out, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
		case '"':
			s, err := strconv.QuotedPrefix(rest)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, rest, err)
			}
			uq, _ := strconv.Unquote(s)
			out = append(out, uq)
			rest = strings.TrimSpace(rest[len(s):])
		default:
			t.Fatalf("%s: want patterns must be backquoted or quoted, got %q", pos, rest)
		}
	}
	if len(out) == 0 {
		t.Fatalf("%s: empty want spec", pos)
	}
	return out
}
