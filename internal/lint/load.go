package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Loader resolves and type-checks packages from source, with no
// dependency beyond the go toolchain: package metadata comes from
// `go list`, and every package — the module's and the standard library's
// alike — is type-checked from its source files. Loaded packages are
// cached, so one Loader amortizes the standard-library closure across
// many Load calls (the fixture runner leans on this).
type Loader struct {
	// Dir is the directory go list runs in (the module root, or any
	// directory inside the module).
	Dir string

	fset  *token.FileSet
	meta  map[string]*listPkg       // import path -> metadata
	types map[string]*types.Package // import path -> checked package
	pkgs  map[string]*Package       // import path -> full load (module pkgs)
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:   dir,
		fset:  token.NewFileSet(),
		meta:  map[string]*listPkg{},
		types: map[string]*types.Package{},
		pkgs:  map[string]*Package{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goList runs `go list -e -json` with the given extra arguments and
// merges the streamed package objects into the metadata table, returning
// them in listing order.
func (l *Loader) goList(args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=Dir,ImportPath,Name,Standard,GoFiles,Imports,ImportMap,Error"}, args...)...)
	cmd.Dir = l.Dir
	// Pure-Go file lists: packages that would use cgo (net, os/user)
	// must type-check from their fallback sources.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	var listed []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if prev, ok := l.meta[p.ImportPath]; !ok || len(prev.GoFiles) == 0 {
			l.meta[p.ImportPath] = p
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// Load lists the packages matching the patterns (any form `go list`
// accepts, e.g. "./..." or explicit import paths), type-checks them and
// their whole dependency closure from source, and returns the matched
// packages in listing order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	if _, err := l.goList(append([]string{"-deps"}, patterns...)...); err != nil {
		return nil, err
	}
	var out []*Package
	for _, r := range roots {
		if r.Error != nil && len(r.GoFiles) == 0 {
			return nil, fmt.Errorf("go list: %s: %s", r.ImportPath, r.Error.Err)
		}
		if len(r.GoFiles) == 0 {
			continue // nothing to analyze (e.g. test-only package)
		}
		p, err := l.load(r.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// resolve finds the metadata for an import path, consulting the GOROOT
// vendor namespace (net/http depends on golang.org/x/... packages that
// `go list` reports under vendor/golang.org/x/...), and falling back to
// an on-demand `go list` for paths outside every closure seen so far.
func (l *Loader) resolve(path string) (*listPkg, error) {
	if p, ok := l.meta[path]; ok {
		return p, nil
	}
	if p, ok := l.meta["vendor/"+path]; ok {
		return p, nil
	}
	if _, err := l.goList("-deps", path); err != nil {
		return nil, err
	}
	if p, ok := l.meta[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("lint: unknown package %q", path)
}

// Import implements types.Importer over the loader: packages are
// type-checked from source on first use and cached.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.types[path]; ok {
		return tp, nil
	}
	meta, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	if tp, ok := l.types[meta.ImportPath]; ok {
		l.types[path] = tp
		return tp, nil
	}
	// Module packages always take the full load path so that the package
	// type-checked for analysis and the one seen by its importers are the
	// same identity; stdlib packages are never analysis roots, so a light
	// check (no types.Info) suffices.
	if !meta.Standard {
		p, err := l.load(meta.ImportPath)
		if err != nil {
			return nil, err
		}
		l.types[path] = p.Types
		return p.Types, nil
	}
	files, err := l.parseFiles(meta.Dir, meta.GoFiles)
	if err != nil {
		return nil, err
	}
	tp, err := l.check(meta.ImportPath, files, nil)
	if err != nil {
		return nil, err
	}
	l.types[meta.ImportPath] = tp
	l.types[path] = tp
	return tp, nil
}

// load fully loads one module package: parse with comments, type-check
// with a populated types.Info, cache.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	meta, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseFiles(meta.Dir, meta.GoFiles)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	tp, err := l.check(meta.ImportPath, files, info)
	if err != nil {
		return nil, err
	}
	l.types[meta.ImportPath] = tp
	p := &Package{
		PkgPath:   meta.ImportPath,
		Name:      meta.Name,
		Dir:       meta.Dir,
		Fset:      l.fset,
		Syntax:    files,
		Types:     tp,
		TypesInfo: info,
	}
	l.pkgs[path] = p
	return p, nil
}

// CheckDir parses and type-checks the .go files of a directory outside
// the go-list universe (analyzer testdata fixtures live under testdata/,
// which the go tool refuses to list) as a package with the given import
// path. Fixture imports resolve through the loader like any other.
func (l *Loader) CheckDir(pkgPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !e.IsDir() {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	tp, err := l.check(pkgPath, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath:   pkgPath,
		Name:      files[0].Name.Name,
		Dir:       dir,
		Fset:      l.fset,
		Syntax:    files,
		Types:     tp,
		TypesInfo: info,
	}, nil
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tp, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
