package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapRange forbids map iteration where ordering matters. Go randomizes
// map iteration order per range statement, so a map walk in the per-cycle
// hot path or in csim-P's partition merge would make runs nondeterministic
// — the parallel engine's contract is bit-identical results regardless of
// worker count, and the differential tests compare against a serial
// oracle element by element.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: `forbid map iteration in hot-path and deterministic-merge code

Reports any range statement over a map inside:

  - functions marked //simlint:hotpath (map walks also defeat the
    no-allocation discipline: hot-path state lives in dense slices);
  - functions marked //simlint:deterministic;
  - functions whose name starts with "Merge" (the csim-P result/stats
    merge contract is deterministic output).

Iterate a sorted slice of keys, or keep the data in a slice, instead.`,
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			why := ""
			switch {
			case hasMarker(fn.Doc, MarkerHotPath):
				why = "//simlint:hotpath function"
			case hasMarker(fn.Doc, MarkerDeterministic):
				why = "//simlint:deterministic function"
			case strings.HasPrefix(fn.Name.Name, "Merge"):
				why = "merge function (must be deterministic)"
			default:
				continue
			}
			checkMapRange(pass, fn, why)
		}
	}
	return nil
}

func checkMapRange(pass *Pass, fn *ast.FuncDecl, why string) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			pass.Reportf(rng.Pos(),
				"map iteration in %s: order is randomized per run; range a sorted slice instead", why)
		}
		return true
	})
}
