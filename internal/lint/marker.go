package lint

import (
	"go/ast"
	"strings"
)

// The marker directives the analyzers key on. A marker is a comment line
// of the form //simlint:<name> placed in (or directly forming) the doc
// comment of a function or type declaration:
//
//	//simlint:hotpath
//	func (s *Simulator) evalRoot(r netlist.GateID) { ... }
//
// Like go:build or go:generate directives, marker lines are stripped from
// rendered documentation by gofmt/go doc, so they annotate without
// polluting docs.
const (
	// MarkerHotPath declares a function to be on the per-cycle hot path:
	// hotpathalloc forbids allocations and observability calls inside it,
	// and maprange forbids map iteration.
	MarkerHotPath = "simlint:hotpath"
	// MarkerDeterministic declares that a function's behavior must not
	// depend on iteration order (csim-P merge code); maprange forbids map
	// iteration inside it.
	MarkerDeterministic = "simlint:deterministic"
	// MarkerStats declares a struct to be a tag-driven stats block even
	// if no field is tagged yet; statstag then requires every field to
	// carry a well-formed `obs` tag.
	MarkerStats = "simlint:stats"
)

// hasMarker reports whether the comment group contains the given marker
// directive as its own line.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if i := strings.IndexAny(text, " \t"); i >= 0 {
			// Directives take no arguments; ignore trailing text so a
			// stray "//simlint:hotpath because ..." still counts.
			text = text[:i]
		}
		if strings.TrimSpace(text) == marker {
			return true
		}
	}
	return false
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
