package lint

import (
	"go/ast"
	"strings"
)

// The marker directives the analyzers key on. A marker is a comment line
// of the form //simlint:<name> placed in (or directly forming) the doc
// comment of a function or type declaration:
//
//	//simlint:hotpath
//	func (s *Simulator) evalRoot(r netlist.GateID) { ... }
//
// Like go:build or go:generate directives, marker lines are stripped from
// rendered documentation by gofmt/go doc, so they annotate without
// polluting docs.
const (
	// MarkerHotPath declares a function to be on the per-cycle hot path:
	// hotpathalloc forbids allocations and observability calls inside it,
	// and maprange forbids map iteration.
	MarkerHotPath = "simlint:hotpath"
	// MarkerDeterministic declares that a function's behavior must not
	// depend on iteration order (csim-P merge code); maprange forbids map
	// iteration inside it.
	MarkerDeterministic = "simlint:deterministic"
	// MarkerStats declares a struct to be a tag-driven stats block even
	// if no field is tagged yet; statstag then requires every field to
	// carry a well-formed `obs` tag.
	MarkerStats = "simlint:stats"
	// MarkerImmutable declares a type frozen once its constructor
	// returns: immutableplan reports any field/slice/map store to it
	// that is reachable — through the call graph — from outside the
	// construction closure.
	MarkerImmutable = "simlint:immutable"
	// MarkerBuilder declares a function part of an immutable type's
	// construction even though its signature does not return the type
	// (the netlist.Builder pattern); immutableplan permits its stores
	// and excludes it from publication reachability. The marker takes
	// the type name as its argument: //simlint:builder Circuit.
	MarkerBuilder = "simlint:builder"
	// MarkerGuardedBy, written //simlint:guarded_by(mu) on a struct
	// field, names the sibling mutex that must be held on every path to
	// any access of the field; guardedby checks it interprocedurally.
	MarkerGuardedBy = "simlint:guarded_by"
	// MarkerIgnore, written //simlint:ignore <analyzer> <reason> on (or
	// directly above) an offending line, suppresses that analyzer's
	// diagnostics for the line. The reason is mandatory and unused
	// suppressions are themselves reported (see suppress.go).
	MarkerIgnore = "simlint:ignore"
)

// hasMarker reports whether the comment group contains the given marker
// directive as its own line.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if i := strings.IndexAny(text, " \t"); i >= 0 {
			// Directives take no arguments; ignore trailing text so a
			// stray "//simlint:hotpath because ..." still counts.
			text = text[:i]
		}
		if strings.TrimSpace(text) == marker {
			return true
		}
	}
	return false
}

// markerArg returns the argument of the first marker directive line in
// the comment group, in either spelling: "//simlint:builder Circuit"
// (space-separated) or "//simlint:guarded_by(mu)" (parenthesized).
// found reports whether the directive is present at all, even with an
// empty argument (so callers can flag a missing argument).
func markerArg(doc *ast.CommentGroup, marker string) (arg string, found bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		rest, ok := strings.CutPrefix(text, marker)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '(') {
			continue
		}
		rest = strings.TrimSpace(rest)
		if after, ok := strings.CutPrefix(rest, "("); ok {
			if i := strings.IndexByte(after, ')'); i >= 0 {
				return strings.TrimSpace(after[:i]), true
			}
			return "", true // unterminated parens: present, malformed
		}
		// Space form: the first word is the argument.
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			rest = rest[:i]
		}
		return rest, true
	}
	return "", false
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
