package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestRepoClean runs every analyzer over the whole module: the tree must
// lint clean so CI can treat any diagnostic as a regression.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short mode")
	}
	l := lint.NewLoader("../..")
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
