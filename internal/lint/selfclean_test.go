package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestRepoClean runs every analyzer over the whole module: the tree must
// lint clean so CI can treat any diagnostic as a regression. Clean means
// no active diagnostics, no malformed //simlint:ignore directives and no
// stale ones — a suppression whose diagnostic disappeared must be
// removed with it.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short mode")
	}
	l := lint.NewLoader("../..")
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	r, err := lint.RunAll(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Diags {
		t.Errorf("%s", d)
	}
	for _, d := range r.Malformed {
		t.Errorf("%s", d)
	}
	for _, s := range r.Unused {
		t.Errorf("%s: unused suppression: no %s diagnostic on this or the next line", s.Pos, s.Analyzer)
	}
	// The tree intentionally carries at least one real suppression (the
	// http.Serve pump in internal/service); if this count drops to zero
	// the suppression layer has silently stopped matching.
	if len(r.Suppressed) == 0 {
		t.Error("expected at least one used //simlint:ignore suppression in the tree")
	}
	for _, d := range r.Suppressed {
		if d.SuppressReason == "" {
			t.Errorf("%s: suppressed diagnostic lost its reason", d)
		}
	}
}
