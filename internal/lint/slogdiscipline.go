package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// SlogDiscipline enforces the repo's structured-logging conventions on
// slog-style logging calls (slog package functions, *slog.Logger methods
// and the obs.Logger wrapper):
//
//  1. Constant message: the message argument must be a string literal.
//     A computed message smuggles variables into the one field log
//     indexers key on; variability belongs in attrs.
//  2. snake_case keys: literal attr keys (slog.String/Int/... first
//     arguments and key-value pairs) must be lowercase snake_case so the
//     field namespace stays greppable and collision-free.
//  3. No fmt.Sprintf in arguments: pre-rendering a value throws away its
//     type and makes the record unqueryable — pass the raw value in a
//     typed attr instead.
var SlogDiscipline = &Analyzer{
	Name: "slogdiscipline",
	Doc: `enforce structured-logging conventions on slog calls

Rule 1: the message passed to Debug/Info/Warn/Error (and their *Context
variants) must be a constant string literal.

Rule 2: literal attr keys — the first argument of slog.String, slog.Int,
slog.Int64, slog.Uint64, slog.Float64, slog.Bool, slog.Duration,
slog.Time, slog.Any and slog.Group, and key positions of key-value style
calls — must match ^[a-z][a-z0-9_]*$.

Rule 3: no fmt.Sprintf anywhere in a logging call's arguments; use typed
attrs so values keep their types.`,
	Run: runSlogDiscipline,
}

// slogKeyRe is the attr-key shape rule 2 demands.
var slogKeyRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// slogAttrCtors are the slog package constructors whose first argument
// is an attr key.
var slogAttrCtors = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint64": true,
	"Float64": true, "Bool": true, "Duration": true, "Time": true,
	"Any": true, "Group": true,
}

func runSlogDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			base := strings.TrimSuffix(name, "Context")
			switch base {
			case "Debug", "Info", "Warn", "Error":
				if isSlogLoggerExpr(pass, sel.X) {
					msgIdx := 0
					if base != name { // *Context variants: ctx first
						msgIdx = 1
					}
					checkSlogLogCall(pass, call, msgIdx)
				}
			default:
				if slogAttrCtors[name] && isSlogPkgIdent(pass, sel.X) {
					checkSlogAttrKey(pass, call)
				}
			}
			return true
		})
	}
	return nil
}

// checkSlogLogCall applies rules 1–3 to one logging call whose message
// sits at args[msgIdx].
func checkSlogLogCall(pass *Pass, call *ast.CallExpr, msgIdx int) {
	if len(call.Args) <= msgIdx {
		return
	}
	msg := call.Args[msgIdx]
	if lit, ok := msg.(*ast.BasicLit); !ok || lit.Kind != token.STRING {
		pass.Report(msg.Pos(),
			"slog message must be a constant string literal; put the variable part in a typed attr")
	}
	// Key-value style: args after the message alternate key, value unless
	// the slot already holds a slog.Attr (which occupies one position).
	i := msgIdx + 1
	for i < len(call.Args) {
		arg := call.Args[i]
		if isSlogAttrType(pass.TypeOf(arg)) {
			i++
			continue
		}
		if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if key, err := strconv.Unquote(lit.Value); err == nil && !slogKeyRe.MatchString(key) {
				pass.Reportf(lit.Pos(),
					"slog key %q is not lowercase snake_case", key)
			}
		}
		i += 2
	}
	for _, arg := range call.Args[msgIdx:] {
		reportSprintfIn(pass, arg)
	}
}

// checkSlogAttrKey applies rule 2 to a slog attr constructor call.
// Rule 3 is handled by the enclosing log call's walk, which already
// covers the constructor's arguments.
func checkSlogAttrKey(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
		if key, err := strconv.Unquote(lit.Value); err == nil && !slogKeyRe.MatchString(key) {
			pass.Reportf(lit.Pos(), "slog key %q is not lowercase snake_case", key)
		}
	}
}

// reportSprintfIn reports any fmt.Sprintf call inside expr.
func reportSprintfIn(pass *Pass, expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sprintf" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Report(call.Pos(),
					"fmt.Sprintf inside a slog call flattens the value; pass it through a typed attr")
			}
		}
		return true
	})
}

// isSlogPkgIdent reports whether e names the log/slog package.
func isSlogPkgIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "log/slog"
}

// isSlogLoggerExpr reports whether e is the log/slog package itself, a
// (*)slog.Logger, or the repo's (*)obs.Logger wrapper.
func isSlogLoggerExpr(pass *Pass, e ast.Expr) bool {
	if isSlogPkgIdent(pass, e) {
		return true
	}
	t := pass.TypeOf(e)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Logger" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "log/slog" || strings.HasSuffix(path, "internal/obs")
}

// isSlogAttrType reports whether t is slog.Attr.
func isSlogAttrType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "log/slog" && obj.Name() == "Attr"
}
