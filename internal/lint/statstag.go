package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// StatsTag statically mirrors the runtime tag-table check in
// internal/csim/stats.go: every field of a tag-driven stats struct must
// carry a well-formed `obs:"name,kind,policy"` tag, because that one tag
// table drives registration, publishing, snapshot read-back and — the
// part that silently loses data when a tag is missing — partition
// merging. (PR 2 fixed a MergeStats that dropped newly added fields; this
// analyzer makes the regression impossible to compile in unnoticed.)
var StatsTag = &Analyzer{
	Name: "statstag",
	Doc: `require complete, well-formed obs tags on stats structs

A struct qualifies when any of its fields carries an ` + "`obs:\"...\"`" + ` tag,
or when its declaration is marked //simlint:stats. Inside a qualifying
struct every field must have:

  - an obs tag of exactly three comma-separated parts: name,kind,policy;
  - a non-empty metric name, unique within the struct;
  - kind "counter" or "gauge";
  - merge policy "sum" or "max";
  - a plain integer field type (the generic publish/merge path reads
    fields with reflect.Value.Int).`,
	Run: runStatsTag,
}

func runStatsTag(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			marked := hasMarker(gd.Doc, MarkerStats)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if marked || hasMarker(ts.Doc, MarkerStats) || anyObsTag(st) {
					checkStatsStruct(pass, ts.Name.Name, st)
				}
			}
		}
	}
	return nil
}

func anyObsTag(st *ast.StructType) bool {
	for _, f := range st.Fields.List {
		if _, ok := obsTag(f); ok {
			return true
		}
	}
	return false
}

func obsTag(f *ast.Field) (string, bool) {
	if f.Tag == nil {
		return "", false
	}
	// Tag literal includes the quotes.
	return reflect.StructTag(strings.Trim(f.Tag.Value, "`")).Lookup("obs")
}

func checkStatsStruct(pass *Pass, name string, st *ast.StructType) {
	seen := map[string]bool{}
	for _, f := range st.Fields.List {
		fieldName := "(embedded)"
		if len(f.Names) > 0 {
			fieldName = f.Names[0].Name
		}
		tag, ok := obsTag(f)
		if !ok {
			pass.Reportf(f.Pos(),
				"field %s of stats struct %s has no obs tag: it would be registered, published and merged as nothing (the MergeStats-drops-new-fields bug)",
				fieldName, name)
			continue
		}
		parts := strings.Split(tag, ",")
		if len(parts) != 3 {
			pass.Reportf(f.Pos(), "field %s: obs tag %q must be name,kind,policy", fieldName, tag)
			continue
		}
		mname, kind, policy := parts[0], parts[1], parts[2]
		if mname == "" {
			pass.Reportf(f.Pos(), "field %s: obs tag has an empty metric name", fieldName)
		} else if seen[mname] {
			pass.Reportf(f.Pos(), "field %s: duplicate metric name %q in %s", fieldName, mname, name)
		}
		seen[mname] = true
		if kind != "counter" && kind != "gauge" {
			pass.Reportf(f.Pos(), "field %s: obs kind %q must be counter or gauge", fieldName, kind)
		}
		if policy != "sum" && policy != "max" {
			pass.Reportf(f.Pos(), "field %s: obs merge policy %q must be sum or max", fieldName, policy)
		}
		if t := pass.TypeOf(f.Type); t != nil && !isPlainInt(t) {
			pass.Reportf(f.Pos(), "field %s: type %s is not a plain integer; the generic publish/merge path requires one", fieldName, t)
		}
	}
}

func isPlainInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Int8, types.Int16, types.Int32, types.Int64:
		return true
	}
	return false
}
