package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression is one //simlint:ignore directive: it silences a single
// analyzer on the line it sits on (trailing comment) or the line
// directly below it (comment-above form). The reason string is
// mandatory — a suppression is a documented debt, not a mute button —
// and a suppression that silences nothing is itself reported, so stale
// ignores cannot accumulate.
type Suppression struct {
	// Pos is the directive's position.
	Pos token.Position
	// Analyzer names the single analyzer being silenced.
	Analyzer string
	// Reason is the mandatory justification text.
	Reason string

	used bool
}

// Used reports whether the suppression matched at least one diagnostic.
func (s *Suppression) Used() bool { return s.used }

// String renders the directive for error messages.
func (s *Suppression) String() string {
	return fmt.Sprintf("%s: //simlint:ignore %s %s", s.Pos, s.Analyzer, s.Reason)
}

// collectSuppressions scans a package's comments for ignore directives.
// Malformed directives (missing reason, unknown analyzer) come back as
// diagnostics under the pseudo-analyzer name "simlint" so the driver
// treats them as failures rather than silently honoring — or silently
// dropping — them.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (sups []*Suppression, malformed []Diagnostic) {
	bad := func(pos token.Pos, format string, args ...any) {
		malformed = append(malformed, Diagnostic{
			Analyzer: "simlint",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments cannot carry directives
				}
				rest, ok := strings.CutPrefix(text, MarkerIgnore)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "malformed //simlint:ignore: missing analyzer name")
					continue
				}
				name := fields[0]
				if _, known := ByName(name); !known {
					bad(c.Pos(), "malformed //simlint:ignore: unknown analyzer %q", name)
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					bad(c.Pos(), "malformed //simlint:ignore %s: a reason is mandatory", name)
					continue
				}
				sups = append(sups, &Suppression{
					Pos:      fset.Position(c.Pos()),
					Analyzer: name,
					Reason:   reason,
				})
			}
		}
	}
	return sups, malformed
}

// applySuppressions partitions diags into kept and suppressed, marking
// each matching suppression used. A suppression matches a diagnostic of
// its analyzer in the same file on its own line or the line below.
func applySuppressions(diags []Diagnostic, sups []*Suppression) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		match := (*Suppression)(nil)
		for _, s := range sups {
			if s.Analyzer != d.Analyzer || s.Pos.Filename != d.Pos.Filename {
				continue
			}
			if d.Pos.Line == s.Pos.Line || d.Pos.Line == s.Pos.Line+1 {
				match = s
				break
			}
		}
		if match == nil {
			kept = append(kept, d)
			continue
		}
		match.used = true
		d.Suppressed = true
		d.SuppressReason = match.Reason
		suppressed = append(suppressed, d)
	}
	return kept, suppressed
}
