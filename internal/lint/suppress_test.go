package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForSuppress(t *testing.T, src string) ([]*Suppression, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return collectSuppressions(fset, []*ast.File{f})
}

func TestCollectSuppressions(t *testing.T) {
	src := `package p

func f() {
	//simlint:ignore maprange iteration order is irrelevant here
	_ = 1
	//simlint:ignore maprange
	_ = 2
	//simlint:ignore nosuchanalyzer a reason
	_ = 3
	//simlint:ignore
	_ = 4
	//simlint:ignored maprange not a directive at all
	_ = 5
}
`
	sups, malformed := parseForSuppress(t, src)
	if len(sups) != 1 {
		t.Fatalf("got %d suppressions, want 1: %v", len(sups), sups)
	}
	s := sups[0]
	if s.Analyzer != "maprange" || s.Reason != "iteration order is irrelevant here" || s.Pos.Line != 4 {
		t.Errorf("unexpected suppression: %+v", s)
	}
	wantMalformed := []string{
		"a reason is mandatory",
		`unknown analyzer "nosuchanalyzer"`,
		"missing analyzer name",
	}
	if len(malformed) != len(wantMalformed) {
		t.Fatalf("got %d malformed, want %d: %v", len(malformed), len(wantMalformed), malformed)
	}
	for i, want := range wantMalformed {
		if malformed[i].Analyzer != "simlint" || !strings.Contains(malformed[i].Message, want) {
			t.Errorf("malformed[%d] = %s, want containing %q", i, malformed[i], want)
		}
	}
}

func TestApplySuppressions(t *testing.T) {
	diag := func(file string, line int, analyzer string) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line}, Message: "m"}
	}
	sup := func(file string, line int, analyzer string) *Suppression {
		return &Suppression{Pos: token.Position{Filename: file, Line: line}, Analyzer: analyzer, Reason: "r"}
	}
	sups := []*Suppression{
		sup("a.go", 10, "maprange"), // matches same line and line below
		sup("a.go", 50, "maprange"), // matches nothing: stays unused
	}
	diags := []Diagnostic{
		diag("a.go", 10, "maprange"),     // same line: suppressed
		diag("a.go", 11, "maprange"),     // line below: suppressed
		diag("a.go", 12, "maprange"),     // two lines below: kept
		diag("a.go", 10, "hotpathalloc"), // other analyzer: kept
		diag("b.go", 10, "maprange"),     // other file: kept
	}
	kept, suppressed := applySuppressions(diags, sups)
	if len(kept) != 3 || len(suppressed) != 2 {
		t.Fatalf("kept %d suppressed %d, want 3 and 2", len(kept), len(suppressed))
	}
	for _, d := range suppressed {
		if !d.Suppressed || d.SuppressReason != "r" {
			t.Errorf("suppressed diagnostic missing state: %+v", d)
		}
	}
	if !sups[0].Used() {
		t.Error("matching suppression not marked used")
	}
	if sups[1].Used() {
		t.Error("non-matching suppression marked used")
	}
}

func TestSortDiags(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "b", Pos: token.Position{Filename: "x.go", Line: 5, Column: 2}},
		{Analyzer: "a", Pos: token.Position{Filename: "x.go", Line: 5, Column: 2}},
		{Analyzer: "c", Pos: token.Position{Filename: "x.go", Line: 5, Column: 1}},
		{Analyzer: "c", Pos: token.Position{Filename: "x.go", Line: 4, Column: 9}},
		{Analyzer: "c", Pos: token.Position{Filename: "w.go", Line: 9, Column: 9}},
	}
	sortDiags(diags)
	var got []string
	for _, d := range diags {
		got = append(got, d.Pos.String()+":"+d.Analyzer)
	}
	want := []string{
		"w.go:9:9:c",
		"x.go:4:9:c",
		"x.go:5:1:c",
		"x.go:5:2:a",
		"x.go:5:2:b",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d:\ngot  %v\nwant %v", i, got, want)
		}
	}
}
