// Package atomicdiscipline seeds violations of the atomicdiscipline
// analyzer.
package atomicdiscipline

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
}

func (c *counters) add() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) bad() int64 {
	c.hits++      // want `plain access to hits`
	return c.hits // want `plain access to hits`
}

func (c *counters) good() int64 {
	c.total++ // never touched atomically: plain access is fine
	return atomic.LoadInt64(&c.hits)
}

func newCounters() *counters {
	return &counters{hits: 0} // composite-literal init precedes sharing
}

var ops int64

func bump() { atomic.AddInt64(&ops, 1) }

func read() int64 { return ops } // want `plain access to ops`

type handle struct {
	n atomic.Int64
}

func snapshot(h handle) int64 { // want `parameter passes .*handle by value`
	return 0
}

func give(h *handle) handle { // want `result passes .*handle by value`
	return *h // want `copy of .*handle`
}

func caller(h *handle) {
	dup := *h // want `copy of .*handle`
	_ = dup
	snapshot(*h) // want `copy of .*handle`
}

func sum(hs []handle) int64 {
	var t int64
	for i, h := range hs { // want `range copies .*handle values`
		_ = h
		t += hs[i].n.Load()
	}
	return t
}

// pointers and slices of handles move freely.
func collect(hs []*handle) []*handle { return hs }
