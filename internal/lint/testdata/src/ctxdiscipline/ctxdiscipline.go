// Package ctxdiscipline is the fixture for the ctxdiscipline analyzer.
package ctxdiscipline

import (
	"context"
	"time"
)

// --- Rule 1: context.Context must be the first parameter ---

func firstOK(ctx context.Context, name string) error { // no diagnostic
	_ = ctx
	_ = name
	return nil
}

func noCtxOK(a, b int) int { return a + b } // no diagnostic

func ctxSecond(name string, ctx context.Context) { // want `context.Context must be the first parameter`
	_ = name
	_ = ctx
}

func ctxThird(a int, b string, ctx context.Context) { // want `context.Context must be the first parameter, not parameter 3`
	_, _, _ = a, b, ctx
}

func ctxAfterMultiName(a, b int, ctx context.Context) { // want `not parameter 3`
	_, _, _ = a, b, ctx
}

type runner struct{ n int }

// Methods: the receiver does not count; ctx first after it is fine.
func (r *runner) runOK(ctx context.Context) error { // no diagnostic
	_ = ctx
	return nil
}

func (r *runner) runBad(d time.Duration, ctx context.Context) { // want `context.Context must be the first parameter`
	_, _ = d, ctx
}

// Function literals are checked too.
var _ = func(n int, ctx context.Context) { // want `context.Context must be the first parameter`
	_, _ = n, ctx
}

var _ = func(ctx context.Context, n int) { _, _ = ctx, n } // no diagnostic

// Interface method contracts are signatures as well.
type doer interface {
	DoOK(ctx context.Context, job string) error
	DoBad(job string, ctx context.Context) error // want `context.Context must be the first parameter`
}

// --- Rule 2: no context.Context struct fields ---

type jobOK struct {
	id string
	// Holding the cancel half is the sanctioned pattern.
	cancel context.CancelFunc
}

type jobBad struct {
	id  string
	ctx context.Context // want `field ctx stores a context.Context`
}

type embedBad struct {
	context.Context // want `embedded field stores a context.Context`
	id              string
}

// A context-typed variable or parameter is not storage; only struct
// fields are.
var bg = context.Background() // no diagnostic

func use() {
	_ = jobOK{}
	_ = jobBad{}
	_ = embedBad{}
	_ = bg
	ctxSecond("x", bg)
	ctxThird(1, "y", bg)
	ctxAfterMultiName(1, 2, bg)
	(&runner{}).runBad(0, bg)
	_ = firstOK
	_ = noCtxOK
	var _ doer
}
