// Package exportdoc seeds violations of the exportdoc analyzer. The
// fixture's package path is in the analyzer's scope list; a package
// outside that list would produce no diagnostics at all.
package exportdoc

// Documented is fine.
type Documented struct {
	// Field carries a doc comment.
	Field int
	Naked int // want `exported field Documented.Naked is missing a doc comment`

	// unexported fields need nothing.
	hidden int
}

type Undocumented struct{} // want `exported type Undocumented is missing a doc comment`

// Iface is documented.
type Iface interface {
	// Done is documented.
	Done() bool
	Missing() int // want `exported interface method Iface.Missing is missing a doc comment`
}

// Grouped type specs need per-spec docs.
type (
	// Pair is documented.
	Pair struct{}
	Solo struct{} // want `exported type Solo is missing a doc comment`
)

// Good has a doc comment.
func Good() {}

func Bad() {} // want `exported function Bad is missing a doc comment`

// A bare directive is not documentation.
//
//simlint:hotpath
func directivePrelude() {}

//simlint:deterministic
func DirectiveOnly() {} // want `exported function DirectiveOnly is missing a doc comment`

func internalOnly() {}

// OK is a documented method on an exported type.
func (Documented) OK() {}

func (d *Documented) NoDoc() {} // want `exported method NoDoc is missing a doc comment`

type unexported struct{}

// Exported methods on unexported types are not API surface.
func (unexported) Exported() {}

// Grouped constants may share the group doc.
const (
	A = 1
	B = 2
)

const C = 3 // want `exported constant C is missing a doc comment`

// D is documented.
const D = 4

var E = 5 // want `exported variable E is missing a doc comment`

// Vars with a group doc are fine.
var (
	F = 6
	G = 7
)

var _ = internalOnly
var _ = directivePrelude
var _ = unexported{}
