// Package goroutinelife is the fixture for the goroutinelife analyzer.
package goroutinelife

import (
	"context"
	"sync"
)

// The canonical Add / go / defer-Done shape.
func waitGroupOK(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Done without a preceding Add: the Add after the spawn races the
// Wait, so the pairing must be in program order.
func addAfterBad() {
	var wg sync.WaitGroup
	go func() { // want `goroutine calls Done\(\) but the spawning body has no matching Add\(\) before the go statement`
		defer wg.Done()
	}()
	wg.Add(1)
	wg.Wait()
}

func bareBad() {
	go func() { // want `leak-shaped spawn`
	}()
}

// A context reaching the body means cancellation reaches the goroutine.
func ctxOK(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// A context-typed spawn argument counts even for a named function.
func ctxArgOK(ctx context.Context) {
	go worker(ctx)
}

func worker(ctx context.Context) {
	<-ctx.Done()
}

// A named spawn resolves through the call graph to its declaration.
func namedOK() {
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(&wg)
	wg.Wait()
}

func drain(wg *sync.WaitGroup) {
	defer wg.Done()
}

// A joiner goroutine is bounded by the workers it collects.
func joinerOK(done chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	go func() {
		wg.Wait()
		close(done)
	}()
}

// A function value cannot be resolved statically.
func dynamicBad(f func()) {
	go f() // want `cannot resolve the spawned function statically`
}

// A deliberate exception takes a suppression; the diagnostic is
// produced, matched, and dropped — so no want here.
func suppressedOK() {
	//simlint:ignore goroutinelife the pump's lifetime is bounded by the listener it serves
	go func() {}()
}
