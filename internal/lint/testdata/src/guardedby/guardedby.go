// Package guardedby is the fixture for the guardedby analyzer.
package guardedby

import "sync"

type queue struct {
	mu sync.Mutex
	//simlint:guarded_by(mu)
	items []int
	cap   int
}

// --- intraprocedural: held tracking ---

func (q *queue) pushOK(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, v)
	return true
}

func (q *queue) explicitOK() {
	q.mu.Lock()
	q.items = nil
	q.mu.Unlock()
}

func (q *queue) lenBad() int {
	return len(q.items) // want `access to q.items without holding q.mu`
}

func (q *queue) afterUnlockBad() {
	q.mu.Lock()
	q.items = nil
	q.mu.Unlock()
	q.items = append(q.items, 1) // want `access to q.items without holding q.mu`
}

// branchBad only locks on one arm, so the merge point holds nothing.
func (q *queue) branchBad(flush bool) {
	if flush {
		q.mu.Lock()
	}
	q.items = nil // want `access to q.items without holding q.mu`
	if flush {
		q.mu.Unlock()
	}
}

func (q *queue) branchOK(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n > 0 {
		q.items = append(q.items, n)
	} else {
		q.items = nil
	}
	for i := range q.items {
		q.items[i] = 0
	}
}

// --- interprocedural: locked()-style helpers ---

// dropLocked requires q.mu held by the caller; every caller does.
func (q *queue) dropLocked() {
	q.items = q.items[:0] // no diagnostic
}

func (q *queue) FlushOK() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.dropLocked()
}

// resetLocked has a caller that does not hold the lock.
func (q *queue) resetLocked() {
	q.items = nil // want `access to q.items without holding q.mu`
}

func (q *queue) ResetBad() {
	q.resetLocked()
}

// The requirement propagates through two frames.
func (q *queue) innerLocked() int {
	return len(q.items) // no diagnostic
}

func (q *queue) midLocked() int { return q.innerLocked() }

func (q *queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.midLocked()
}

// Exported functions end propagation: external callers are invisible.
func (q *queue) Exposed() int {
	return len(q.items) // want `access to q.items without holding q.mu`
}

// A free function with the guarded struct as parameter propagates too.
func fillLocked(q *queue, v int) {
	q.items = append(q.items, v) // no diagnostic
}

func FillOK(q *queue) {
	q.mu.Lock()
	fillLocked(q, 1)
	q.mu.Unlock()
}

// --- literals and goroutines ---

// A literal inherits the held set at its creation point.
func (q *queue) litOK() {
	q.mu.Lock()
	defer q.mu.Unlock()
	func() { q.items = append(q.items, 0) }()
}

// A goroutine body starts with nothing held, whatever the spawner holds.
func (q *queue) spawnBad() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.items = nil // want `access to q.items without holding q.mu`
	}()
}

// --- RWMutex ---

type stats struct {
	mu sync.RWMutex
	//simlint:guarded_by(mu)
	counts map[string]int
}

func (s *stats) GetOK(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counts[k]
}

// --- malformed annotations ---

type badAnnot struct {
	n int
	//simlint:guarded_by(lock)
	data int // want `no sibling field named lock`
	//simlint:guarded_by(n)
	data2 int // want `n is not a sync.Mutex or sync.RWMutex`
	//simlint:guarded_by
	data3 int // want `requires the sibling mutex field name`
}
