// Package hotpath seeds violations of the hotpathalloc analyzer.
package hotpath

import (
	"fmt"

	"repro/internal/obs"
)

type sim struct {
	reg   *obs.Registry
	buf   []int
	evals int
}

//simlint:hotpath
func (s *sim) cycle(reg *obs.Registry) {
	s.buf = make([]int, 4) // want `make allocates`
	p := new(sim)          // want `new allocates`
	_ = p
	q := &sim{} // want `address of composite literal`
	_ = q
	m := map[int]int{} // want `map literal`
	_ = m
	sl := []int{1} // want `slice literal`
	_ = sl
	f := func() {} // want `function literal`
	f()
	go helper()                // want `go statement`
	defer helper()             // want `defer`
	fmt.Println("x")           // want `fmt\.Println`
	reg.Counter("evals").Inc() // want `observability call obs\.Counter` `observability call obs\.Inc`
	b := []byte("hi")          // want `conversion`
	_ = string(b)              // want `conversion`

	s.evals++ // plain counters are the sanctioned pattern
}

// cycleClean stays on the hot path legally: dense-slice walks, plain
// counters, appends into preallocated buffers.
//
//simlint:hotpath
func (s *sim) cycleClean() {
	for i := range s.buf {
		s.buf[i] = i
	}
	s.buf = append(s.buf[:0], 1, 2)
	s.evals++
}

// unmarked functions may allocate freely.
func unmarked() []int { return make([]int, 8) }

func helper() {}
