// Package immutableplan is the fixture for the immutableplan analyzer.
package immutableplan

// Sub is reachable from Plan but deliberately unmarked: stores to it
// through a Plan must still be caught by peeling the selector chain.
type Sub struct{ X int }

//simlint:immutable
type Plan struct {
	Steps []int
	Sub   *Sub
	memo  map[int]int
}

// New is a constructor: its result type is the marked type, so every
// store inside it — and inside helpers only it calls — is construction.
func New(n int) *Plan {
	p := &Plan{memo: map[int]int{}, Sub: &Sub{}}
	for i := 0; i < n; i++ {
		p.Steps = append(p.Steps, i) // no diagnostic: builder
	}
	p.finish()
	return p
}

// finish is reachable only from New, so it is inside the construction
// closure even though its own signature returns nothing.
func (p *Plan) finish() {
	p.memo[0] = 1 // no diagnostic: only a builder reaches here
}

// Eval reads through an unexported helper; the helper's lazy-memo write
// is the bug, reported with the path from the publication entry.
func (p *Plan) Eval(x int) int {
	return p.memoize(x)
}

func (p *Plan) memoize(x int) int {
	if v, ok := p.memo[x]; ok {
		return v
	}
	v := x * 2
	p.memo[x] = v // want `store to \(immutableplan\.Plan\)\.memo after construction \(path: \(\*Plan\)\.Eval → \(\*Plan\)\.memoize\)`
	return v
}

// Reset mutates the published value directly in an exported method.
func (p *Plan) Reset() {
	p.Steps = nil // want `store to \(immutableplan\.Plan\)\.Steps after construction`
	clear(p.memo) // want `store to \(immutableplan\.Plan\)\.memo after construction`
}

// Bump stores through an index expression; the chain still roots in the
// marked type.
func (p *Plan) Bump() {
	p.Steps[0]++ // want `store to \(immutableplan\.Plan\)\.Steps after construction`
}

// Pierce stores into an unmarked struct held by the marked one.
func (p *Plan) Pierce() {
	p.Sub.X = 9 // want `store to \(immutableplan\.Plan\)\.Sub after construction`
}

// Apply hides the store in a function literal; the containment edge
// keeps it in the post-publication closure.
func (p *Plan) Apply() {
	f := func() {
		p.memo[1] = 2 // want `store to \(immutableplan\.Plan\)\.memo after construction \(path: \(\*Plan\)\.Apply → func literal in \(\*Plan\)\.Apply\)`
	}
	f()
}

// orphan has no in-package caller, so it must be assumed to run after
// publication.
func orphan(p *Plan) {
	p.memo[3] = 3 // want `store to \(immutableplan\.Plan\)\.memo after construction`
}

// Builder assembles a Plan across calls without ever returning it; the
// marker admits it to the construction closure.
type Builder struct{ p *Plan }

//simlint:builder Plan
func (b *Builder) Grow(step int) {
	b.p.Steps = append(b.p.Steps, step) // no diagnostic: marked builder
}

// Build returns the marked type, so it is a builder by signature.
func (b *Builder) Build() *Plan {
	b.p.Steps = append(b.p.Steps, -1) // no diagnostic: builder
	return b.p
}

// Summarize only reads; reads are always fine.
func Summarize(p *Plan) int {
	total := 0
	for _, s := range p.Steps {
		total += s
	}
	return total + p.Eval(1)
}
