// pr5.go pins the shared-plan race this analyzer exists for: macro.Macro
// used to memoize its per-fault stuck table lazily inside StuckTable, so
// two jobs sharing one compiled plan raced on the map write (fixed by
// moving the memo into the per-job Simulator). The original shape must
// stay a diagnostic forever.
package immutableplan

//simlint:immutable
type Macro struct {
	Gates  []int
	tables map[int][]byte
}

// Extract is the constructor (builder by signature).
func Extract(n int) *Macro {
	return &Macro{Gates: make([]int, n), tables: map[int][]byte{}}
}

// StuckTable is the PR 5 bug: a lazy memo write on the read path of a
// value the compiled-circuit cache shares across concurrent jobs.
func (m *Macro) StuckTable(f int) []byte {
	if t, ok := m.tables[f]; ok {
		return t
	}
	t := make([]byte, len(m.Gates))
	m.tables[f] = t // want `store to \(immutableplan\.Macro\)\.tables after construction \(path: \(\*Macro\)\.StuckTable\)`
	return t
}
