// Package maprange seeds violations of the maprange analyzer.
package maprange

var table = map[string]int{"a": 1}

//simlint:hotpath
func walk() int {
	total := 0
	for _, v := range table { // want `map iteration`
		total += v
	}
	for i := range [4]int{} { // arrays are ordered: fine
		total += i
	}
	return total
}

//simlint:deterministic
func combine(parts map[string]int) int {
	out := 0
	for k := range parts { // want `map iteration`
		out += len(k)
	}
	return out
}

// MergeCounts is covered by the Merge* naming rule alone.
func MergeCounts(parts map[string]int) []string {
	var keys []string
	for k := range parts { // want `map iteration`
		keys = append(keys, k)
	}
	return keys
}

// unchecked functions may range maps.
func unchecked(parts map[string]int) int {
	n := 0
	for range parts {
		n++
	}
	return n
}
