// Package slogdiscipline is the fixture for the slogdiscipline analyzer.
package slogdiscipline

import (
	"fmt"
	"log/slog"
)

var lg *slog.Logger

// --- Rule 1: constant message ---

func constMsgOK() {
	slog.Info("job admitted") // no diagnostic
	lg.Debug("shard started", slog.Int("shard", 3))
}

func dynamicMsg(name string) {
	slog.Info("job " + name)                    // want `slog message must be a constant string literal`
	lg.Warn(fmt.Sprintf("job %s failed", name)) // want `slog message must be a constant string literal` `fmt.Sprintf inside a slog call`
	msg := "precomputed"
	slog.Error(msg) // want `slog message must be a constant string literal`
}

// --- Rule 2: lowercase snake_case keys ---

func keysOK() {
	slog.Info("ok", slog.String("job_id", "j1"), slog.Int("fault_shards", 4))
	slog.Info("ok", "queue_depth", 7) // key-value style, conforming key
}

func keysBad() {
	slog.Info("bad", slog.String("jobID", "j1"))    // want `slog key "jobID" is not lowercase snake_case`
	slog.Info("bad", slog.Int("Shard", 3))          // want `slog key "Shard" is not lowercase snake_case`
	slog.Info("bad", slog.Any("fault-shards", 4))   // want `slog key "fault-shards" is not lowercase snake_case`
	slog.Info("bad", "QueueDepth", 7)               // want `slog key "QueueDepth" is not lowercase snake_case`
	lg.Error("bad", slog.Bool("Timed_Out", true))   // want `slog key "Timed_Out" is not lowercase snake_case`
	slog.Info("ok", "engine", "csim-P")             // no diagnostic: "csim-P" is a value, not a key
	slog.Info("bad", slog.Group("Grid",            // want `slog key "Grid" is not lowercase snake_case`
		slog.Int("windows", 2)))
}

// --- Rule 3: no fmt.Sprintf in arguments ---

func sprintfBad(n int) {
	slog.Info("shape chosen", slog.String("plan", fmt.Sprintf("%dx%d", n, n))) // want `fmt.Sprintf inside a slog call`
	lg.Info("shape chosen", "plan", fmt.Sprintf("%dx%d", n, n))                // want `fmt.Sprintf inside a slog call`
}

func sprintfElsewhereOK(n int) string {
	// Sprintf outside a logging call is none of this analyzer's business.
	s := fmt.Sprintf("%dx%d", n, n) // no diagnostic
	slog.Info("shape chosen", slog.String("plan", s))
	return s
}

// A non-slog type with the same method names is left alone.
type fakeLogger struct{}

func (fakeLogger) Info(msg string, args ...any) {}

func fakeOK(name string) {
	var f fakeLogger
	f.Info("job "+name, "BadKey", 1) // no diagnostic
}
