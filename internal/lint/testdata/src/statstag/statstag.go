// Package statstag seeds violations of the statstag analyzer.
package statstag

// Stats qualifies because fields carry obs tags; every field must then
// have a complete, well-formed one.
type Stats struct {
	Evals   int     `obs:"evals,counter,sum"`
	Skips   int     `obs:"skips,counter,sum"`
	Peak    int     `obs:"peak,gauge,max"`
	Dropped int     // want `has no obs tag`
	Ratio   float64 `obs:"ratio,gauge,sum"` // want `not a plain integer`
	Bad     int     `obs:"bad,histogram,sum"` // want `must be counter or gauge`
	Bad2    int     `obs:"bad2,counter,avg"` // want `must be sum or max`
	Bad3    int     `obs:"evals,counter,sum"` // want `duplicate metric name`
	Bad4    int     `obs:"short,counter"` // want `must be name,kind,policy`
	Bad5    int     `obs:",counter,sum"` // want `empty metric name`
}

// NotStats carries no obs tags and no marker: ignored entirely.
type NotStats struct {
	A int
	B string
}

// Marked opts in explicitly even though nothing is tagged yet.
//
//simlint:stats
type Marked struct {
	N int // want `has no obs tag`
}
