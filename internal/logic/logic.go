// Package logic provides the ternary (0/1/X) logic system used throughout
// the fault simulators: values, two-bit packed encodings, gate-evaluation
// lookup tables, and packed gate-state words.
//
// The paper evaluates gates by table lookup on a state word that packs all
// input values and the output value of a gate ("the state of a gate is
// packed into a word so that the output can be efficiently evaluated by
// table look up", §2). This package is the Go rendering of that machinery.
package logic

import "fmt"

// V is a ternary logic value. The zero value is logic 0.
//
// Values are encoded in two bits so that gate states pack into words:
// 0 = 0b00, 1 = 0b01, X = 0b10. The encoding 0b11 is invalid and is
// normalized to X wherever it could be observed.
type V uint8

// The three logic values.
const (
	Zero V = 0 // logic 0
	One  V = 1 // logic 1
	X    V = 2 // unknown
)

// VBits is the number of bits a value occupies in packed encodings.
const VBits = 2

// VMask masks a single packed value.
const VMask = 0b11

// Valid reports whether v is one of the three defined logic values.
func (v V) Valid() bool { return v <= X }

// Norm maps the unused encoding 0b11 (and anything larger) to X.
func (v V) Norm() V {
	if v > X {
		return X
	}
	return v
}

// Binary reports whether v is 0 or 1.
func (v V) Binary() bool { return v <= One }

// Not returns the ternary complement of v.
func (v V) Not() V { return notTab[v.Norm()] }

var notTab = [3]V{One, Zero, X}

// String returns "0", "1" or "X".
func (v V) String() string {
	switch v.Norm() {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "X"
	}
}

// ParseV parses one of the characters 0, 1, x, X into a value.
func ParseV(c byte) (V, error) {
	switch c {
	case '0':
		return Zero, nil
	case '1':
		return One, nil
	case 'x', 'X':
		return X, nil
	}
	return X, fmt.Errorf("logic: invalid value character %q", c)
}

// Op identifies a primitive gate function.
type Op uint8

// Primitive gate operations. Input, Output and DFF appear in netlists but
// are not combinational functions; their evaluation is identity on input 0.
const (
	OpAnd Op = iota
	OpNand
	OpOr
	OpNor
	OpXor
	OpXnor
	OpNot
	OpBuf
	OpInput  // primary input: value assigned externally
	OpOutput // primary output marker: buffer semantics
	OpDFF    // D flip-flop: value assigned at clock edges
	numOps
)

var opNames = [numOps]string{
	"AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUFF",
	"INPUT", "OUTPUT", "DFF",
}

// String returns the ISCAS-89 style keyword for the operation.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// ParseOp maps an ISCAS-89 gate keyword (case-insensitive) to an Op.
func ParseOp(s string) (Op, error) {
	switch up(s) {
	case "AND":
		return OpAnd, nil
	case "NAND":
		return OpNand, nil
	case "OR":
		return OpOr, nil
	case "NOR":
		return OpNor, nil
	case "XOR":
		return OpXor, nil
	case "XNOR":
		return OpXnor, nil
	case "NOT", "INV":
		return OpNot, nil
	case "BUF", "BUFF":
		return OpBuf, nil
	case "DFF":
		return OpDFF, nil
	}
	return 0, fmt.Errorf("logic: unknown gate type %q", s)
}

func up(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// Inverting reports whether the operation complements its base function
// (NAND, NOR, XNOR, NOT).
func (op Op) Inverting() bool {
	switch op {
	case OpNand, OpNor, OpXnor, OpNot:
		return true
	}
	return false
}

// Base returns the non-inverting counterpart of op (NAND→AND, NOT→BUFF, …).
func (op Op) Base() Op {
	switch op {
	case OpNand:
		return OpAnd
	case OpNor:
		return OpOr
	case OpXnor:
		return OpXor
	case OpNot:
		return OpBuf
	}
	return op
}

// Controlling returns the controlling input value of op and whether one
// exists (AND/NAND: 0, OR/NOR: 1; XOR-family and buffers have none).
func (op Op) Controlling() (V, bool) {
	switch op {
	case OpAnd, OpNand:
		return Zero, true
	case OpOr, OpNor:
		return One, true
	}
	return X, false
}

// pair2 indexes a two-input lookup table: a in bits 2-3, b in bits 0-1.
func pair2(a, b V) int { return int(a)<<VBits | int(b) }

// tab2 holds one 16-entry two-input evaluation table per base operation.
// Invalid encodings (0b11 operands) evaluate as X.
type tab2 [16]V

func buildTab2(f func(a, b V) V) tab2 {
	var t tab2
	for i := range t {
		a := V(i >> VBits).Norm()
		b := V(i & VMask).Norm()
		t[i] = f(a, b)
	}
	return t
}

func and2(a, b V) V {
	switch {
	case a == Zero || b == Zero:
		return Zero
	case a == One && b == One:
		return One
	}
	return X
}

func or2(a, b V) V {
	switch {
	case a == One || b == One:
		return One
	case a == Zero && b == Zero:
		return Zero
	}
	return X
}

func xor2(a, b V) V {
	if a == X || b == X {
		return X
	}
	return a ^ b
}

var (
	andTab = buildTab2(and2)
	orTab  = buildTab2(or2)
	xorTab = buildTab2(xor2)
)

// And2, Or2, Xor2 evaluate the two-input primitives by table lookup.
func And2(a, b V) V { return andTab[pair2(a, b)] }

// Or2 evaluates two-input OR with ternary semantics.
func Or2(a, b V) V { return orTab[pair2(a, b)] }

// Xor2 evaluates two-input XOR with ternary semantics.
func Xor2(a, b V) V { return xorTab[pair2(a, b)] }

// Eval evaluates a gate of operation op over the given inputs.
// INPUT and DFF gates evaluate to their first input if present (useful for
// clocking), otherwise X. It panics if a non-unary op receives no inputs.
func Eval(op Op, in []V) V {
	switch op {
	case OpNot:
		return in[0].Not()
	case OpBuf, OpOutput, OpDFF:
		return in[0].Norm()
	case OpInput:
		if len(in) == 0 {
			return X
		}
		return in[0].Norm()
	}
	var acc V
	var tab *tab2
	switch op.Base() {
	case OpAnd:
		acc, tab = One, &andTab
	case OpOr:
		acc, tab = Zero, &orTab
	case OpXor:
		acc, tab = Zero, &xorTab
	default:
		panic(fmt.Sprintf("logic: Eval on %v", op))
	}
	for _, v := range in {
		acc = tab[pair2(acc, v)]
		// Short-circuit on controlling values for the monotone ops.
		if op.Base() != OpXor {
			if c, ok := op.Controlling(); ok && acc == c {
				break
			}
		}
	}
	if op.Inverting() {
		acc = acc.Not()
	}
	return acc
}
