package logic

import (
	"testing"
	"testing/quick"
)

func TestVString(t *testing.T) {
	cases := []struct {
		v    V
		want string
	}{{Zero, "0"}, {One, "1"}, {X, "X"}, {V(3), "X"}}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("V(%d).String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseV(t *testing.T) {
	for _, c := range []struct {
		in   byte
		want V
	}{{'0', Zero}, {'1', One}, {'x', X}, {'X', X}} {
		got, err := ParseV(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseV(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseV('z'); err == nil {
		t.Error("ParseV('z') succeeded, want error")
	}
}

func TestNot(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Errorf("Not truth table wrong: %v %v %v", Zero.Not(), One.Not(), X.Not())
	}
}

func TestTwoInputTables(t *testing.T) {
	type row struct{ a, b, and, or, xor V }
	rows := []row{
		{Zero, Zero, Zero, Zero, Zero},
		{Zero, One, Zero, One, One},
		{One, Zero, Zero, One, One},
		{One, One, One, One, Zero},
		{Zero, X, Zero, X, X},
		{X, Zero, Zero, X, X},
		{One, X, X, One, X},
		{X, One, X, One, X},
		{X, X, X, X, X},
	}
	for _, r := range rows {
		if got := And2(r.a, r.b); got != r.and {
			t.Errorf("And2(%v,%v) = %v, want %v", r.a, r.b, got, r.and)
		}
		if got := Or2(r.a, r.b); got != r.or {
			t.Errorf("Or2(%v,%v) = %v, want %v", r.a, r.b, got, r.or)
		}
		if got := Xor2(r.a, r.b); got != r.xor {
			t.Errorf("Xor2(%v,%v) = %v, want %v", r.a, r.b, got, r.xor)
		}
	}
}

func vals() []V { return []V{Zero, One, X} }

func TestCommutativity(t *testing.T) {
	for _, a := range vals() {
		for _, b := range vals() {
			if And2(a, b) != And2(b, a) {
				t.Errorf("And2 not commutative at %v,%v", a, b)
			}
			if Or2(a, b) != Or2(b, a) {
				t.Errorf("Or2 not commutative at %v,%v", a, b)
			}
			if Xor2(a, b) != Xor2(b, a) {
				t.Errorf("Xor2 not commutative at %v,%v", a, b)
			}
		}
	}
}

func TestDeMorgan(t *testing.T) {
	for _, a := range vals() {
		for _, b := range vals() {
			if And2(a, b).Not() != Or2(a.Not(), b.Not()) {
				t.Errorf("De Morgan (AND) fails at %v,%v", a, b)
			}
			if Or2(a, b).Not() != And2(a.Not(), b.Not()) {
				t.Errorf("De Morgan (OR) fails at %v,%v", a, b)
			}
		}
	}
}

// TestXMonotone: replacing an X input by a binary value must never change a
// binary output (X-pessimism is sound).
func TestXMonotone(t *testing.T) {
	ops := []Op{OpAnd, OpNand, OpOr, OpNor, OpXor, OpXnor}
	for _, op := range ops {
		for _, a := range vals() {
			out := Eval(op, []V{a, X})
			if !out.Binary() {
				continue
			}
			for _, b := range []V{Zero, One} {
				if got := Eval(op, []V{a, b}); got != out {
					t.Errorf("%v(%v,X)=%v but %v(%v,%v)=%v", op, a, out, op, a, b, got)
				}
			}
		}
	}
}

func TestEvalNary(t *testing.T) {
	cases := []struct {
		op   Op
		in   []V
		want V
	}{
		{OpAnd, []V{One, One, One}, One},
		{OpAnd, []V{One, Zero, X}, Zero},
		{OpNand, []V{One, One, One}, Zero},
		{OpNand, []V{Zero, X, X}, One},
		{OpOr, []V{Zero, Zero, One}, One},
		{OpNor, []V{Zero, Zero, Zero}, One},
		{OpXor, []V{One, One, One}, One},
		{OpXor, []V{One, One, Zero}, Zero},
		{OpXnor, []V{One, Zero}, Zero},
		{OpNot, []V{Zero}, One},
		{OpBuf, []V{X}, X},
		{OpAnd, []V{X, X}, X},
		{OpOr, []V{X, One, X}, One},
	}
	for _, c := range cases {
		if got := Eval(c.op, c.in); got != c.want {
			t.Errorf("Eval(%v, %v) = %v, want %v", c.op, c.in, got, c.want)
		}
	}
}

func TestParseOp(t *testing.T) {
	for _, c := range []struct {
		s    string
		want Op
	}{
		{"AND", OpAnd}, {"nand", OpNand}, {"Or", OpOr}, {"NOR", OpNor},
		{"XOR", OpXor}, {"XNOR", OpXnor}, {"NOT", OpNot}, {"INV", OpNot},
		{"BUF", OpBuf}, {"BUFF", OpBuf}, {"DFF", OpDFF},
	} {
		got, err := ParseOp(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", c.s, got, err, c.want)
		}
	}
	if _, err := ParseOp("MUX"); err == nil {
		t.Error("ParseOp(MUX) succeeded, want error")
	}
}

func TestOpRoundTrip(t *testing.T) {
	for op := OpAnd; op <= OpBuf; op++ {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", op.String(), got, err, op)
		}
	}
}

func TestControlling(t *testing.T) {
	if c, ok := OpAnd.Controlling(); !ok || c != Zero {
		t.Errorf("AND controlling = %v,%v", c, ok)
	}
	if c, ok := OpNor.Controlling(); !ok || c != One {
		t.Errorf("NOR controlling = %v,%v", c, ok)
	}
	if _, ok := OpXor.Controlling(); ok {
		t.Error("XOR should have no controlling value")
	}
}

func TestWordPackUnpack(t *testing.T) {
	in := []V{One, Zero, X, One}
	w := PackWord(in, X)
	if w.Out() != X {
		t.Errorf("Out = %v, want X", w.Out())
	}
	for i, v := range in {
		if w.In(i) != v {
			t.Errorf("In(%d) = %v, want %v", i, w.In(i), v)
		}
	}
	got := w.Inputs(len(in))
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("Inputs()[%d] = %v, want %v", i, got[i], in[i])
		}
	}
}

func TestWordWith(t *testing.T) {
	w := PackWord([]V{Zero, Zero}, Zero)
	w = w.WithIn(1, One).WithOut(X)
	if w.In(0) != Zero || w.In(1) != One || w.Out() != X {
		t.Errorf("WithIn/WithOut wrong: %s", w.Format(2))
	}
	if w.InputBits().Out() != Zero {
		t.Error("InputBits should zero the output field")
	}
	if w.InputBits().In(1) != One {
		t.Error("InputBits should preserve inputs")
	}
}

// TestEvalWordMatchesEval: EvalWordOut must agree with Eval on every op and
// random input vectors (property-based).
func TestEvalWordMatchesEval(t *testing.T) {
	ops := []Op{OpAnd, OpNand, OpOr, OpNor, OpXor, OpXnor}
	f := func(raw []uint8, opIdx uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > MaxPins {
			raw = raw[:MaxPins]
		}
		in := make([]V, len(raw))
		for i, r := range raw {
			in[i] = V(r % 3)
		}
		op := ops[int(opIdx)%len(ops)]
		w := PackWord(in, X)
		return EvalWordOut(op, len(in), w) == Eval(op, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEvalWordUnary(t *testing.T) {
	w := PackWord([]V{Zero}, X)
	if got := EvalWordOut(OpNot, 1, w); got != One {
		t.Errorf("NOT(0) via word = %v", got)
	}
	if got := EvalWordOut(OpBuf, 1, w); got != Zero {
		t.Errorf("BUFF(0) via word = %v", got)
	}
}

func TestWordFormat(t *testing.T) {
	w := PackWord([]V{One, X}, Zero)
	if got := w.Format(2); got != "1,X->0" {
		t.Errorf("Format = %q", got)
	}
}

func TestPackWordPanicsOnTooManyPins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PackWord with too many pins did not panic")
		}
	}()
	PackWord(make([]V, MaxPins+1), Zero)
}

func TestInvalidEncodingActsAsX(t *testing.T) {
	// Craft a word whose pin 0 carries the invalid 0b11 encoding.
	w := Word(0b11 << 2)
	if got := EvalWordOut(OpBuf, 1, w); got != X {
		t.Errorf("BUFF(invalid) = %v, want X", got)
	}
	if got := EvalWordOut(OpAnd, 1, w); got != X {
		t.Errorf("AND(invalid) = %v, want X", got)
	}
}
