package logic

import (
	"fmt"
	"strings"
)

// MaxPins is the maximum number of input pins representable in a packed
// gate-state Word. Netlists are decomposed so every gate fits.
const MaxPins = 30

// Word packs the complete state of one gate — every input pin value and
// the output value, two bits each — into a single machine word, as the
// paper's concurrent simulator does for fast comparison and table-lookup
// evaluation. The output occupies bits 0-1; input pin i occupies bits
// 2+2i .. 3+2i.
type Word uint64

// outShift is the bit offset of the output field.
const outShift = 0

func inShift(pin int) uint { return uint(VBits + pin*VBits) }

// Out extracts the output value.
func (w Word) Out() V { return V(w>>outShift) & VMask }

// In extracts input pin i's value.
func (w Word) In(pin int) V { return V(w>>inShift(pin)) & VMask }

// WithOut returns w with the output field replaced by v.
func (w Word) WithOut(v V) Word {
	return (w &^ (VMask << outShift)) | Word(v)<<outShift
}

// WithIn returns w with input pin i replaced by v.
func (w Word) WithIn(pin int, v V) Word {
	s := inShift(pin)
	return (w &^ (VMask << s)) | Word(v)<<s
}

// InputBits returns only the input-pin fields of w (output field zeroed),
// for comparing faulty inputs against good inputs.
func (w Word) InputBits() Word { return w &^ (VMask << outShift) }

// PackWord builds a Word from input values and an output value.
// It panics if len(in) exceeds MaxPins.
func PackWord(in []V, out V) Word {
	if len(in) > MaxPins {
		panic(fmt.Sprintf("logic: %d pins exceed MaxPins", len(in)))
	}
	w := Word(out.Norm())
	for i, v := range in {
		w |= Word(v.Norm()) << inShift(i)
	}
	return w
}

// Inputs unpacks the first n input pins of w.
func (w Word) Inputs(n int) []V {
	in := make([]V, n)
	for i := range in {
		in[i] = w.In(i).Norm()
	}
	return in
}

// EvalWord evaluates op over the first n input pins of w and returns w
// with the output field updated.
func EvalWord(op Op, n int, w Word) Word {
	return w.WithOut(EvalWordOut(op, n, w))
}

// EvalWordOut evaluates op over the first n input pins of w.
func EvalWordOut(op Op, n int, w Word) V {
	switch op {
	case OpNot:
		return w.In(0).Not()
	case OpBuf, OpOutput, OpDFF, OpInput:
		return w.In(0).Norm()
	}
	var acc V
	var tab *tab2
	invert := op.Inverting()
	switch op.Base() {
	case OpAnd:
		acc, tab = One, &andTab
	case OpOr:
		acc, tab = Zero, &orTab
	case OpXor:
		acc, tab = Zero, &xorTab
	default:
		panic(fmt.Sprintf("logic: EvalWordOut on %v", op))
	}
	bits := uint64(w) >> VBits
	for i := 0; i < n; i++ {
		acc = tab[int(acc)<<VBits|int(bits&VMask)]
		bits >>= VBits
	}
	if invert {
		acc = acc.Not()
	}
	return acc
}

// String renders the word as "in0,in1,...->out" over n pins; with n
// unknown callers should use Format.
func (w Word) Format(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(w.In(i).String())
	}
	b.WriteString("->")
	b.WriteString(w.Out().String())
	return b.String()
}
