package macro

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Plan partitions a circuit's combinational network into macros. Sources
// (PIs and DFFs) stay standalone. Every combinational gate belongs to
// exactly one macro; its macro's root is the only gate the concurrent
// simulator schedules and keeps fault lists for. The compiled-circuit
// cache hands one Plan to any number of concurrent jobs (csim.Config
// carries it by pointer), so a Plan is frozen once extraction returns.
//
//simlint:immutable
type Plan struct {
	C *netlist.Circuit

	// Owner maps every gate to the root of the macro that absorbed it;
	// sources and roots map to themselves.
	Owner []netlist.GateID

	// ByRoot maps a root gate to its macro; nil entries for non-roots.
	ByRoot []*Macro

	// Roots lists macro roots grouped by evaluation level: Levels[l] holds
	// roots whose macro level is l (>= 1). A macro's level is 1 + max of
	// its leaves' macro levels, with sources at level 0.
	Levels   [][]netlist.GateID
	MaxLevel int32
	// RootLevel holds the macro level per gate (roots only; 0 otherwise).
	RootLevel []int32

	// MaxFrame is the largest FrameSize over all macros.
	MaxFrame int
}

// Macro returns the macro rooted at g, or nil.
func (p *Plan) Macro(g netlist.GateID) *Macro { return p.ByRoot[g] }

// NumMacros counts the macros in the plan.
func (p *Plan) NumMacros() int {
	n := 0
	for _, m := range p.ByRoot {
		if m != nil {
			n++
		}
	}
	return n
}

// PlanSummary aggregates a plan's shape for instrumentation: how far the
// extraction compressed the gate-level network, and how deep and wide the
// resulting macro graph is.
type PlanSummary struct {
	Macros        int // macro count (scheduling units)
	AbsorbedGates int // combinational gates folded into a non-trivial macro
	MaxLevel      int // macro-graph depth
	MaxFrame      int // largest evaluation frame over all macros
}

// Summary computes the plan's aggregate shape.
func (p *Plan) Summary() PlanSummary {
	s := PlanSummary{
		Macros:   p.NumMacros(),
		MaxLevel: int(p.MaxLevel),
		MaxFrame: p.MaxFrame,
	}
	for g, owner := range p.Owner {
		if netlist.GateID(g) != owner {
			s.AbsorbedGates++
		}
	}
	return s
}

// Trivial returns the identity plan: every combinational gate is a
// one-instruction macro. The concurrent simulator without macro extraction
// (csim-V) runs on this plan.
func Trivial(c *netlist.Circuit) *Plan {
	p := newPlan(c)
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.IsSource() {
			continue
		}
		id := netlist.GateID(i)
		m := &Macro{Root: id, gateInstr: map[netlist.GateID]int32{id: 0}}
		m.Leaves = append(m.Leaves, g.Fanin...)
		args := make([]int32, len(g.Fanin))
		for j := range args {
			args[j] = int32(j)
		}
		m.Prog = []Instr{{Op: g.Op, Gate: id, Args: args, Out: int32(len(m.Leaves))}}
		p.ByRoot[id] = m
	}
	p.finish(false)
	return p
}

// Extract builds the fanout-free-region plan: each macro is grown
// backwards from its root, absorbing any feeder that (a) is a
// combinational non-source gate, (b) fans out only to the growing macro,
// (c) is not itself observable (PO), as long as the leaf count stays
// within maxInputs. Macros with at most TableMaxInputs leaves get full
// ternary lookup tables.
func Extract(c *netlist.Circuit, maxInputs int) (*Plan, error) {
	return extract(c, maxInputs, false)
}

// ExtractReconvergent builds the paper's §2.2 extension: macros need not
// be fanout free — a feeder is absorbable whenever its *entire* fanout
// lies inside the growing macro, so reconvergent regions collapse too and
// more stuck-at faults become functional faults.
func ExtractReconvergent(c *netlist.Circuit, maxInputs int) (*Plan, error) {
	return extract(c, maxInputs, true)
}

func extract(c *netlist.Circuit, maxInputs int, reconvergent bool) (*Plan, error) {
	if maxInputs < 2 {
		return nil, fmt.Errorf("macro: maxInputs %d < 2", maxInputs)
	}
	if maxInputs > TableMaxInputs+8 {
		maxInputs = TableMaxInputs + 8
	}
	p := newPlan(c)

	absorbed := make([]bool, len(c.Gates))
	// Natural roots: observable gates and gates feeding non-combinational
	// consumers. In fanout-free mode every multi-fanout gate is also a
	// root; in reconvergent mode such gates may be absorbed whenever all
	// their consumers land in one macro.
	isRoot := make([]bool, len(c.Gates))
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.IsSource() {
			continue
		}
		if g.PO || len(g.Fanout) == 0 {
			isRoot[i] = true
			continue
		}
		if !reconvergent && len(g.Fanout) != 1 {
			isRoot[i] = true
			continue
		}
		for _, fo := range g.Fanout {
			if c.Gate(fo).IsSource() { // feeds a DFF D pin
				isRoot[i] = true
				break
			}
		}
	}
	// Grow macros from the natural roots; any gate left unabsorbed after a
	// pass becomes a root itself (leaf-cap cuts, or consumers spanning
	// several macros), so iterate to fixpoint.
	for {
		for i := range c.Gates {
			if isRoot[i] && p.ByRoot[i] == nil {
				p.ByRoot[i] = growMacro(c, netlist.GateID(i), maxInputs, isRoot, absorbed, reconvergent)
			}
		}
		// Promote orphans (combinational, not absorbed, not rooted) — but
		// only those whose consumers are all assigned already (absorbed, a
		// root, or a DFF). Such a gate can never be absorbed later (its
		// consumers span macros, or the leaf cap cut it), so rooting it is
		// final; holding back the rest lets them be absorbed into the new
		// roots' macros on the next pass, keeping macros maximal. The
		// highest-level orphan always qualifies, so each pass progresses.
		orphan := false
		for i := range c.Gates {
			g := &c.Gates[i]
			if g.IsSource() || absorbed[i] || isRoot[i] {
				continue
			}
			ready := true
			for _, fo := range g.Fanout {
				fog := c.Gate(fo)
				if !fog.IsSource() && !absorbed[fo] && !isRoot[fo] {
					ready = false
					break
				}
			}
			if ready {
				isRoot[i] = true
				orphan = true
			}
		}
		if !orphan {
			break
		}
	}
	p.finish(true)
	return p, nil
}

// growMacro grows the region rooted at root: the fanout-free cone, or —
// in reconvergent mode — any feeder whose whole fanout lies inside the
// region.
func growMacro(c *netlist.Circuit, root netlist.GateID, maxInputs int, isRoot, absorbed []bool, reconvergent bool) *Macro {
	members := map[netlist.GateID]bool{root: true}
	var leaves []netlist.GateID
	leafSet := map[netlist.GateID]bool{}
	addLeaf := func(g netlist.GateID) {
		if !leafSet[g] {
			leafSet[g] = true
			leaves = append(leaves, g)
		}
	}
	for _, f := range c.Gate(root).Fanin {
		addLeaf(f)
	}
	// Absorb leaves while the cap permits. Work queue order is
	// deterministic (slice order).
	for changed := true; changed; {
		changed = false
		for li := 0; li < len(leaves); li++ {
			cand := leaves[li]
			g := c.Gate(cand)
			if g.IsSource() || isRoot[cand] || absorbed[cand] {
				continue
			}
			if !reconvergent && len(g.Fanout) != 1 {
				continue
			}
			inside := true
			for _, fo := range g.Fanout {
				if !members[fo] {
					inside = false
					break
				}
			}
			if !inside {
				continue // some consumer is outside this region
			}
			// Tentative new leaf set.
			newCount := len(leaves) - 1
			fresh := 0
			for _, f := range g.Fanin {
				if !leafSet[f] || f == cand {
					fresh++
				}
			}
			if newCount+fresh > maxInputs {
				continue
			}
			// Absorb: remove cand from leaves, add its fanins.
			leaves = append(leaves[:li], leaves[li+1:]...)
			delete(leafSet, cand)
			members[cand] = true
			absorbed[cand] = true
			for _, f := range g.Fanin {
				addLeaf(f)
			}
			changed = true
			li = -1 // restart scan after mutation
		}
	}
	return compile(c, root, members, leaves)
}

// compile orders the member gates topologically and emits the instruction
// sequence.
func compile(c *netlist.Circuit, root netlist.GateID, members map[netlist.GateID]bool, leaves []netlist.GateID) *Macro {
	order := make([]netlist.GateID, 0, len(members))
	for g := range members {
		order = append(order, g)
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := c.Gate(order[a]).Level, c.Gate(order[b]).Level
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	m := &Macro{Root: root, Leaves: leaves, gateInstr: make(map[netlist.GateID]int32, len(order))}
	slot := make(map[netlist.GateID]int32, len(leaves)+len(order))
	for i, l := range leaves {
		slot[l] = int32(i)
	}
	for i, g := range order {
		gg := c.Gate(g)
		args := make([]int32, len(gg.Fanin))
		for j, f := range gg.Fanin {
			s, ok := slot[f]
			if !ok {
				panic(fmt.Sprintf("macro: operand %s of %s unresolved", c.Gate(f).Name, gg.Name))
			}
			args[j] = s
		}
		out := int32(len(leaves) + i)
		slot[g] = out
		m.gateInstr[g] = int32(i)
		m.Prog = append(m.Prog, Instr{Op: gg.Op, Gate: g, Args: args, Out: out})
	}
	if m.Prog[len(m.Prog)-1].Gate != root {
		panic("macro: root is not the last instruction")
	}
	return m
}

func newPlan(c *netlist.Circuit) *Plan {
	p := &Plan{
		C:         c,
		Owner:     make([]netlist.GateID, len(c.Gates)),
		ByRoot:    make([]*Macro, len(c.Gates)),
		RootLevel: make([]int32, len(c.Gates)),
	}
	for i := range p.Owner {
		p.Owner[i] = netlist.GateID(i)
	}
	return p
}

// finish fills Owner, computes macro levels and optionally builds tables.
func (p *Plan) finish(tables bool) {
	c := p.C
	for id, m := range p.ByRoot {
		if m == nil {
			continue
		}
		for g := range m.gateInstr {
			p.Owner[g] = netlist.GateID(id)
		}
		if tables {
			m.buildTable()
		}
		if fs := m.FrameSize(); fs > p.MaxFrame {
			p.MaxFrame = fs
		}
	}
	// Macro levels: longest-path over the macro graph.
	// Iterate in original level order of roots; a root's leaves are
	// sources or roots with strictly lower original level, so one pass in
	// ascending original-level order suffices.
	roots := make([]netlist.GateID, 0, len(c.Gates))
	for id, m := range p.ByRoot {
		if m != nil {
			roots = append(roots, netlist.GateID(id))
		}
	}
	sort.Slice(roots, func(a, b int) bool {
		la, lb := c.Gate(roots[a]).Level, c.Gate(roots[b]).Level
		if la != lb {
			return la < lb
		}
		return roots[a] < roots[b]
	})
	p.MaxLevel = 0
	for _, r := range roots {
		lvl := int32(0)
		for _, l := range p.ByRoot[r].Leaves {
			if ll := p.RootLevel[l]; ll >= lvl {
				lvl = ll + 1
			}
		}
		if lvl == 0 {
			lvl = 1
		}
		p.RootLevel[r] = lvl
		if lvl > p.MaxLevel {
			p.MaxLevel = lvl
		}
	}
	p.Levels = make([][]netlist.GateID, p.MaxLevel+1)
	for _, r := range roots {
		p.Levels[p.RootLevel[r]] = append(p.Levels[p.RootLevel[r]], r)
	}
	// Consistency: every combinational gate must be owned by a macro.
	for i := range c.Gates {
		if c.Gates[i].IsSource() {
			continue
		}
		own := p.Owner[i]
		if p.ByRoot[own] == nil || !p.ByRoot[own].Contains(netlist.GateID(i)) {
			panic(fmt.Sprintf("macro: gate %s not covered by any macro", c.Gates[i].Name))
		}
	}
}
