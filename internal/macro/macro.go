// Package macro implements the paper's §2.2 macro extraction: maximal
// fanout-free regions of the combinational network are collapsed into
// single macro gates evaluated by table lookup (small macros) or compiled
// cone replay (wide macros). Stuck-at faults internal to a macro become
// functional faults evaluated through per-fault injected replay.
//
// The concurrent simulator always works against a Plan; with extraction
// disabled the Trivial plan makes every gate its own one-instruction macro,
// so both csim variants share one code path.
package macro

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// TableMaxInputs bounds the leaf count for which a full ternary lookup
// table (4^n entries) is precomputed; wider macros replay their cone.
const TableMaxInputs = 6

// DefaultMaxInputs is the default leaf-count cap for extracted macros.
const DefaultMaxInputs = 10

// Instr is one compiled gate of a macro cone. Operand slots index the
// evaluation frame: slots [0,L) hold the macro's leaf values, slot L+i
// holds the output of instruction i.
type Instr struct {
	Op   logic.Op
	Gate netlist.GateID // original gate, for fault-site mapping
	Args []int32
	Out  int32
}

// Macro is one extracted fanout-free region. A Macro is immutable once
// extraction returns — nothing in its evaluation methods writes to the
// receiver — so a Plan may be shared by any number of concurrently
// running simulators. Callers that want the paper's per-fault lookup
// tables ("each fault descriptor holds an adequate look up table entry")
// memoize StuckTable results on their own side, as internal/csim does
// per simulator instance.
//
//simlint:immutable
type Macro struct {
	Root   netlist.GateID
	Leaves []netlist.GateID // external driver gates, deduplicated, in first-use order
	Prog   []Instr          // topological order; the root is the last instruction
	Table  []logic.V        // ternary lookup table, nil if len(Leaves) > TableMaxInputs

	gateInstr map[netlist.GateID]int32 // member gate -> Prog index
}

// NumLeaves returns the macro's external input count.
func (m *Macro) NumLeaves() int { return len(m.Leaves) }

// FrameSize returns the scratch-frame length required by Replay.
func (m *Macro) FrameSize() int { return len(m.Leaves) + len(m.Prog) }

// Contains reports whether the original gate g was absorbed into m.
func (m *Macro) Contains(g netlist.GateID) bool {
	_, ok := m.gateInstr[g]
	return ok
}

// TableIndex packs ternary leaf values into a lookup-table index, 2 bits
// per leaf — the index scheme of Table and of StuckTable results.
func TableIndex(in []logic.V) int {
	idx := 0
	for i, v := range in {
		idx |= int(v) << (2 * i)
	}
	return idx
}

// Eval computes the macro output for the given leaf values. frame must
// have at least FrameSize entries (ignored when a table is present).
func (m *Macro) Eval(in []logic.V, frame []logic.V) logic.V {
	if m.Table != nil {
		return m.Table[TableIndex(in)]
	}
	return m.replay(in, frame, -1, nil)
}

// EvalStuck evaluates the macro with a stuck-at fault injected at the
// original site (gate, pin): pin == faults.OutPin forces the gate output,
// otherwise input pin `pin` is forced to v. Every call replays the cone;
// callers that evaluate the same fault repeatedly on a table-sized macro
// should memoize StuckTable instead. (The memo deliberately does not live
// here: it would make shared Plans mutable.)
func (m *Macro) EvalStuck(in, frame []logic.V, gate netlist.GateID, pin int, v logic.V) logic.V {
	return m.evalStuckReplay(in, frame, gate, pin, v)
}

func (m *Macro) evalStuckReplay(in, frame []logic.V, gate netlist.GateID, pin int, v logic.V) logic.V {
	gi, ok := m.gateInstr[gate]
	if !ok {
		panic(fmt.Sprintf("macro: fault site gate %d not in macro rooted at %d", gate, m.Root))
	}
	return m.replay(in, frame, gi, func(cur logic.V, p int) (logic.V, bool) {
		if p == pin {
			return v, true
		}
		return cur, false
	})
}

// StuckTable precomputes the full ternary lookup table of the macro with
// the stuck-at fault (gate, pin, v) injected — the per-fault functional
// table of §2.2, indexed by TableIndex. It returns nil when the macro is
// not table-sized (more than TableMaxInputs leaves); such faults must go
// through EvalStuck replay. The build is pure: the macro itself is not
// modified, so callers own the memoization (and its thread-safety).
func (m *Macro) StuckTable(gate netlist.GateID, pin int, v logic.V) []logic.V {
	if m.Table == nil {
		return nil
	}
	n := len(m.Leaves)
	size := 1 << (2 * n)
	tbl := make([]logic.V, size)
	in := make([]logic.V, n)
	frame := make([]logic.V, m.FrameSize())
	for idx := 0; idx < size; idx++ {
		for i := 0; i < n; i++ {
			in[i] = logic.V((idx >> (2 * i)) & logic.VMask).Norm()
		}
		tbl[idx] = m.evalStuckReplay(in, frame, gate, pin, v)
	}
	return tbl
}

// EvalTransition evaluates the macro with a transition fault at (gate,
// pin). prev is the faulty machine's driver value at the previous cycle;
// the returned driver value is the site's driver value in this evaluation
// (the caller stores it as the next cycle's prev).
func (m *Macro) EvalTransition(in, frame []logic.V, gate netlist.GateID, pin int, kind faults.Kind, prev logic.V) (out, driver logic.V) {
	gi, ok := m.gateInstr[gate]
	if !ok {
		panic(fmt.Sprintf("macro: fault site gate %d not in macro rooted at %d", gate, m.Root))
	}
	driver = logic.X
	out = m.replay(in, frame, gi, func(cur logic.V, p int) (logic.V, bool) {
		if p == pin {
			driver = cur
			return faults.TransitionFV(kind, prev, cur), true
		}
		return cur, false
	})
	return out, driver
}

// replay executes the cone. When faultInstr >= 0, inject is consulted for
// each input pin of that instruction (pin >= 0) and once for its output
// (pin == faults.OutPin) to apply fault forcing.
func (m *Macro) replay(in, frame []logic.V, faultInstr int32, inject func(cur logic.V, pin int) (logic.V, bool)) logic.V {
	copy(frame, in)
	var argsArr [logic.MaxPins]logic.V
	args := argsArr[:0]
	for i := range m.Prog {
		ins := &m.Prog[i]
		args = args[:0]
		for p, a := range ins.Args {
			v := frame[a]
			if int32(i) == faultInstr {
				if nv, forced := inject(v, p); forced {
					v = nv
				}
			}
			args = append(args, v)
		}
		out := logic.Eval(ins.Op, args)
		if int32(i) == faultInstr {
			if nv, forced := inject(out, faults.OutPin); forced {
				out = nv
			}
		}
		frame[ins.Out] = out
	}
	return frame[m.Prog[len(m.Prog)-1].Out]
}

// BuildTable exports the macro's full ternary lookup table for
// compilation backends that inline macros as table lookups (csim-C).
// Unlike the Table field — which extraction only fills up to
// TableMaxInputs leaves — BuildTable computes tables up to maxInputs
// leaves (4^n entries, indexed by TableIndex), returning the memoized
// Table when one exists and nil when the macro is wider than
// maxInputs. The build is pure: the macro is not modified, so callers
// own any memoization, exactly as with StuckTable.
func (m *Macro) BuildTable(maxInputs int) []logic.V {
	if m.Table != nil {
		return m.Table
	}
	n := len(m.Leaves)
	if n > maxInputs || len(m.Prog) == 0 {
		return nil
	}
	size := 1 << (2 * n)
	tbl := make([]logic.V, size)
	in := make([]logic.V, n)
	frame := make([]logic.V, m.FrameSize())
	for idx := 0; idx < size; idx++ {
		for i := 0; i < n; i++ {
			in[i] = logic.V((idx >> (2 * i)) & logic.VMask).Norm()
		}
		tbl[idx] = m.replay(in, frame, -1, nil)
	}
	return tbl
}

// buildTable precomputes the full ternary truth table for small macros.
func (m *Macro) buildTable() {
	n := len(m.Leaves)
	if n > TableMaxInputs || len(m.Prog) == 0 {
		return
	}
	size := 1 << (2 * n)
	tbl := make([]logic.V, size)
	in := make([]logic.V, n)
	frame := make([]logic.V, m.FrameSize())
	for idx := 0; idx < size; idx++ {
		for i := 0; i < n; i++ {
			in[i] = logic.V((idx >> (2 * i)) & logic.VMask).Norm()
		}
		tbl[idx] = m.replay(in, frame, -1, nil)
	}
	m.Table = tbl
}
