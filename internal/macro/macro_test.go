package macro

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
)

const s27Bench = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func mustParse(t *testing.T, name, text string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fig3Bench mirrors the paper's Figure 3: a fanout-free three-gate cone.
const fig3Bench = `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(z)
g1 = AND(a, b)
g2 = OR(c, d)
z = NAND(g1, g2)
`

func TestFigure3CollapsesToOneMacro(t *testing.T) {
	c := mustParse(t, "fig3", fig3Bench)
	p, err := Extract(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumMacros(); got != 1 {
		t.Fatalf("figure-3 circuit extracted %d macros, want 1", got)
	}
	m := p.Macro(c.MustByName("z"))
	if m == nil {
		t.Fatal("macro not rooted at z")
	}
	if len(m.Prog) != 3 {
		t.Errorf("macro has %d instructions, want 3", len(m.Prog))
	}
	if m.NumLeaves() != 4 {
		t.Errorf("macro has %d leaves, want 4", m.NumLeaves())
	}
	if m.Table == nil {
		t.Error("4-leaf macro should have a lookup table")
	}
}

func planInvariants(t *testing.T, c *netlist.Circuit, p *Plan) {
	t.Helper()
	seen := make(map[netlist.GateID]netlist.GateID)
	for id, m := range p.ByRoot {
		if m == nil {
			continue
		}
		if m.Root != netlist.GateID(id) {
			t.Fatalf("macro indexed at %d has root %d", id, m.Root)
		}
		for g := range m.gateInstr {
			if prev, dup := seen[g]; dup {
				t.Fatalf("gate %d in macros %d and %d", g, prev, id)
			}
			seen[g] = netlist.GateID(id)
			if p.Owner[g] != netlist.GateID(id) {
				t.Fatalf("Owner[%d] = %d, want %d", g, p.Owner[g], id)
			}
		}
		for _, l := range m.Leaves {
			lg := c.Gate(l)
			if !lg.IsSource() && p.ByRoot[l] == nil {
				t.Fatalf("leaf %s of macro %d is neither source nor root", lg.Name, id)
			}
		}
	}
	for i := range c.Gates {
		if c.Gates[i].IsSource() {
			continue
		}
		if _, ok := seen[netlist.GateID(i)]; !ok {
			t.Fatalf("gate %s not in any macro", c.Gates[i].Name)
		}
	}
	// Level sanity: every root above all its leaf roots.
	for id, m := range p.ByRoot {
		if m == nil {
			continue
		}
		for _, l := range m.Leaves {
			if p.RootLevel[l] >= p.RootLevel[id] {
				t.Fatalf("root %d (level %d) not above leaf %d (level %d)",
					id, p.RootLevel[id], l, p.RootLevel[l])
			}
		}
	}
}

func TestExtractInvariantsS27(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	p, err := Extract(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	planInvariants(t, c, p)
	if p.NumMacros() >= c.Stats().Gates {
		t.Errorf("extraction produced %d macros for %d gates; nothing collapsed",
			p.NumMacros(), c.Stats().Gates)
	}
}

func TestTrivialInvariants(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	p := Trivial(c)
	planInvariants(t, c, p)
	if p.NumMacros() != c.Stats().Gates {
		t.Errorf("trivial plan has %d macros, want %d", p.NumMacros(), c.Stats().Gates)
	}
}

// evalPlan evaluates the full combinational network through a plan, given
// values for all source gates; returns values of every root.
func evalPlan(p *Plan, src map[netlist.GateID]logic.V) map[netlist.GateID]logic.V {
	val := make(map[netlist.GateID]logic.V, len(p.C.Gates))
	for g, v := range src {
		val[g] = v
	}
	frame := make([]logic.V, p.MaxFrame)
	for _, lv := range p.Levels {
		for _, r := range lv {
			m := p.ByRoot[r]
			in := make([]logic.V, len(m.Leaves))
			for i, l := range m.Leaves {
				in[i] = val[l]
			}
			val[r] = m.Eval(in, frame)
		}
	}
	return val
}

// flatEval evaluates gate-by-gate as the reference.
func flatEval(c *netlist.Circuit, src map[netlist.GateID]logic.V) map[netlist.GateID]logic.V {
	val := make(map[netlist.GateID]logic.V, len(c.Gates))
	for g, v := range src {
		val[g] = v
	}
	for _, lv := range c.Levels {
		for _, id := range lv {
			g := c.Gate(id)
			in := make([]logic.V, len(g.Fanin))
			for j, f := range g.Fanin {
				in[j] = val[f]
			}
			val[id] = logic.Eval(g.Op, in)
		}
	}
	return val
}

func randomSources(c *netlist.Circuit, rng *rand.Rand) map[netlist.GateID]logic.V {
	src := make(map[netlist.GateID]logic.V)
	for _, pi := range c.PIs {
		src[pi] = logic.V(rng.Intn(3))
	}
	for _, ff := range c.DFFs {
		src[ff] = logic.V(rng.Intn(3))
	}
	return src
}

func TestPlanEvalMatchesFlat(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	for _, mk := range []struct {
		name string
		plan func() *Plan
	}{
		{"trivial", func() *Plan { return Trivial(c) }},
		{"extracted", func() *Plan {
			p, err := Extract(c, DefaultMaxInputs)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
	} {
		p := mk.plan()
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 300; trial++ {
			src := randomSources(c, rng)
			want := flatEval(c, src)
			got := evalPlan(p, src)
			for id, m := range p.ByRoot {
				if m == nil {
					continue
				}
				if got[netlist.GateID(id)] != want[netlist.GateID(id)] {
					t.Fatalf("%s: root %s: plan %v, flat %v",
						mk.name, c.Gate(netlist.GateID(id)).Name,
						got[netlist.GateID(id)], want[netlist.GateID(id)])
				}
			}
		}
	}
}

// TestEvalStuckMatchesFlatInjection cross-checks macro functional-fault
// evaluation against direct pin forcing on the flat circuit.
func TestEvalStuckMatchesFlatInjection(t *testing.T) {
	c := mustParse(t, "fig3", fig3Bench)
	p, err := Extract(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Macro(c.MustByName("z"))
	u := faults.StuckAll(c)
	rng := rand.New(rand.NewSource(5))
	frame := make([]logic.V, m.FrameSize())
	for trial := 0; trial < 200; trial++ {
		src := randomSources(c, rng)
		in := make([]logic.V, len(m.Leaves))
		for i, l := range m.Leaves {
			in[i] = src[l]
		}
		for _, f := range u.Faults {
			if !m.Contains(f.Gate) {
				continue
			}
			got := m.EvalStuck(in, frame, f.Gate, f.Pin, f.Kind.StuckValue())
			want := flatEvalStuck(c, src, f)
			if got != want {
				t.Fatalf("fault %s: macro %v, flat %v (inputs %v)", f.Name(c), got, want, in)
			}
		}
	}
}

func flatEvalStuck(c *netlist.Circuit, src map[netlist.GateID]logic.V, f faults.Fault) logic.V {
	val := make(map[netlist.GateID]logic.V, len(c.Gates))
	for g, v := range src {
		val[g] = v
	}
	for _, lv := range c.Levels {
		for _, id := range lv {
			g := c.Gate(id)
			in := make([]logic.V, len(g.Fanin))
			for j, fi := range g.Fanin {
				in[j] = val[fi]
				if f.Gate == id && f.Pin == j {
					in[j] = f.Kind.StuckValue()
				}
			}
			out := logic.Eval(g.Op, in)
			if f.Gate == id && f.Pin == faults.OutPin {
				out = f.Kind.StuckValue()
			}
			val[id] = out
		}
	}
	return val[c.MustByName("z")]
}

func TestEvalTransitionDriver(t *testing.T) {
	c := mustParse(t, "fig3", fig3Bench)
	p, err := Extract(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Macro(c.MustByName("z"))
	// STR on z's pin 0 (driven by g1 = AND(a,b)).
	z := c.MustByName("z")
	in := []logic.V{logic.One, logic.One, logic.Zero, logic.Zero} // a,b,c,d order unknown; map by leaves
	vals := map[string]logic.V{"a": 1, "b": 1, "c": 0, "d": 0}
	for i, l := range m.Leaves {
		in[i] = vals[c.Gate(l).Name]
	}
	frame := make([]logic.V, m.FrameSize())
	out, driver := m.EvalTransition(in, frame, z, 0, faults.STR, logic.Zero)
	// g1 = AND(1,1) = 1; prev 0, so STR holds site at 0; g2 = OR(0,0) = 0;
	// z = NAND(0,0) = 1. Good z = NAND(1,0) = 1 too (not detected here),
	// but the driver must be reported as 1.
	if driver != logic.One {
		t.Errorf("driver = %v, want 1", driver)
	}
	if out != logic.One {
		t.Errorf("out = %v, want 1", out)
	}
	// Same with prev=1: no delayed edge, fault invisible.
	out2, _ := m.EvalTransition(in, frame, z, 0, faults.STR, logic.One)
	goodOut := m.Eval(in, frame)
	if out2 != goodOut {
		t.Errorf("stable site: faulty %v != good %v", out2, goodOut)
	}
}

func TestTableMatchesReplay(t *testing.T) {
	c := mustParse(t, "fig3", fig3Bench)
	p, err := Extract(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Macro(c.MustByName("z"))
	if m.Table == nil {
		t.Fatal("no table")
	}
	saved := m.Table
	m.Table = nil
	frame := make([]logic.V, m.FrameSize())
	in := make([]logic.V, m.NumLeaves())
	var walk func(i int)
	walk = func(i int) {
		if i == len(in) {
			replayOut := m.Eval(in, frame)
			m.Table = saved
			tableOut := m.Eval(in, frame)
			m.Table = nil
			if replayOut != tableOut {
				t.Fatalf("table %v != replay %v at %v", tableOut, replayOut, in)
			}
			return
		}
		for _, v := range []logic.V{logic.Zero, logic.One, logic.X} {
			in[i] = v
			walk(i + 1)
		}
	}
	walk(0)
	m.Table = saved
}

func TestExtractWideGateNoTable(t *testing.T) {
	b := netlist.NewBuilder("wide")
	names := make([]string, 8)
	for i := range names {
		names[i] = string(rune('a' + i))
		b.Input(names[i])
	}
	b.Gate("z", logic.OpAnd, names...)
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Extract(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Macro(c.MustByName("z"))
	if m.Table != nil {
		t.Error("8-leaf macro should not build a 4^8 table")
	}
}

func TestExtractLeafCap(t *testing.T) {
	// A deep chain of 2-input ANDs with fresh inputs; cap at 3 leaves
	// forces cuts, and every gate must still be covered.
	b := netlist.NewBuilder("chain")
	b.Input("i0")
	prev := "i0"
	for i := 1; i <= 10; i++ {
		in := string(rune('A' + i))
		b.Input(in)
		g := "g" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		b.Gate(g, logic.OpAnd, prev, in)
		prev = g
	}
	b.Output(prev)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Extract(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	planInvariants(t, c, p)
	for _, m := range p.ByRoot {
		if m != nil && m.NumLeaves() > 3 {
			t.Errorf("macro rooted at %d has %d leaves, cap 3", m.Root, m.NumLeaves())
		}
	}
}

func TestExtractRejectsBadCap(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	if _, err := Extract(c, 1); err == nil {
		t.Error("Extract(1) succeeded, want error")
	}
}

func TestDuplicateFaninTrivial(t *testing.T) {
	c := mustParse(t, "dup", "INPUT(a)\nOUTPUT(z)\nz = AND(a, a)\n")
	p := Trivial(c)
	m := p.Macro(c.MustByName("z"))
	if m.NumLeaves() != 2 {
		t.Fatalf("trivial macro over AND(a,a) has %d leaves, want 2 (per pin)", m.NumLeaves())
	}
	frame := make([]logic.V, m.FrameSize())
	if got := m.Eval([]logic.V{logic.One, logic.One}, frame); got != logic.One {
		t.Errorf("AND(a,a) with a=1 = %v", got)
	}
}

// diamondBench has reconvergent fanout: s feeds both arms, which re-join
// at z. Fanout-free extraction must keep s as its own macro; reconvergent
// extraction collapses the whole diamond into one.
const diamondBench = `
INPUT(a)
INPUT(b)
OUTPUT(z)
s = NAND(a, b)
p1 = NOT(s)
p2 = OR(s, b)
z = AND(p1, p2)
`

func TestExtractReconvergentDiamond(t *testing.T) {
	c := mustParse(t, "diamond", diamondBench)
	ff, err := Extract(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := ExtractReconvergent(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	planInvariants(t, c, rc)
	if rc.NumMacros() >= ff.NumMacros() {
		t.Errorf("reconvergent %d macros, fanout-free %d; expected further collapse",
			rc.NumMacros(), ff.NumMacros())
	}
	m := rc.Macro(c.MustByName("z"))
	if m == nil || !m.Contains(c.MustByName("s")) {
		t.Fatal("diamond stem not absorbed by reconvergent extraction")
	}
	// Functional equivalence on all source assignments.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		src := randomSources(c, rng)
		want := flatEval(c, src)
		got := evalPlan(rc, src)
		for id, mm := range rc.ByRoot {
			if mm == nil {
				continue
			}
			if got[netlist.GateID(id)] != want[netlist.GateID(id)] {
				t.Fatalf("reconvergent eval mismatch at %s", c.Gate(netlist.GateID(id)).Name)
			}
		}
	}
}

func TestExtractReconvergentS27Invariants(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	p, err := ExtractReconvergent(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	planInvariants(t, c, p)
	ff, err := Extract(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumMacros() > ff.NumMacros() {
		t.Errorf("reconvergent produced more macros (%d) than fanout-free (%d)",
			p.NumMacros(), ff.NumMacros())
	}
}

func TestReconvergentStuckInjectionMatchesFlat(t *testing.T) {
	c := mustParse(t, "diamond", diamondBench)
	p, err := ExtractReconvergent(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Macro(c.MustByName("z"))
	u := faults.StuckAll(c)
	rng := rand.New(rand.NewSource(77))
	frame := make([]logic.V, m.FrameSize())
	for trial := 0; trial < 200; trial++ {
		src := randomSources(c, rng)
		in := make([]logic.V, len(m.Leaves))
		for i, l := range m.Leaves {
			in[i] = src[l]
		}
		for _, f := range u.Faults {
			if !m.Contains(f.Gate) {
				continue
			}
			got := m.EvalStuck(in, frame, f.Gate, f.Pin, f.Kind.StuckValue())
			want := flatEvalStuck(c, src, f)
			if got != want {
				t.Fatalf("fault %s: reconvergent macro %v, flat %v", f.Name(c), got, want)
			}
		}
	}
}

// TestFaultTableMatchesReplay: the per-fault lookup tables (functional
// faults, §2.2) must agree with direct injected replay on every input
// combination.
func TestFaultTableMatchesReplay(t *testing.T) {
	c := mustParse(t, "fig3", fig3Bench)
	p, err := Extract(c, DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Macro(c.MustByName("z"))
	if m.Table == nil {
		t.Fatal("expected a table-sized macro")
	}
	u := faults.StuckAll(c)
	frame := make([]logic.V, m.FrameSize())
	in := make([]logic.V, m.NumLeaves())
	built := 0
	for _, f := range u.Faults {
		if !m.Contains(f.Gate) {
			continue
		}
		tbl := m.StuckTable(f.Gate, f.Pin, f.Kind.StuckValue())
		if tbl == nil {
			t.Fatalf("fault %s: StuckTable returned nil for a table-sized macro", f.Name(c))
		}
		built++
		var walk func(i int)
		walk = func(i int) {
			if i == len(in) {
				viaTable := tbl[TableIndex(in)]
				direct := m.EvalStuck(in, frame, f.Gate, f.Pin, f.Kind.StuckValue())
				if viaTable != direct {
					t.Fatalf("fault %s at %v: table %v, replay %v", f.Name(c), in, viaTable, direct)
				}
				return
			}
			for _, v := range []logic.V{logic.Zero, logic.One, logic.X} {
				in[i] = v
				walk(i + 1)
			}
		}
		walk(0)
	}
	if built == 0 {
		t.Error("no per-fault tables were built")
	}
}

// wideBench builds a single n-input AND cone, wide enough to exceed the
// lookup-table leaf cap.
func wideBench(n int) string {
	var b strings.Builder
	args := make([]string, n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "INPUT(i%d)\n", i)
		args[i] = fmt.Sprintf("i%d", i)
	}
	b.WriteString("OUTPUT(z)\n")
	fmt.Fprintf(&b, "z = AND(%s)\n", strings.Join(args, ", "))
	return b.String()
}

// TestStuckTableNilForWideMacro: macros beyond TableMaxInputs leaves have
// no base table and must report nil so callers fall back to replay.
func TestStuckTableNilForWideMacro(t *testing.T) {
	c := mustParse(t, "wide", wideBench(TableMaxInputs+2))
	p, err := Extract(c, TableMaxInputs+2)
	if err != nil {
		t.Fatal(err)
	}
	var m *Macro
	for _, cand := range p.ByRoot {
		if cand != nil && cand.NumLeaves() > TableMaxInputs {
			m = cand
			break
		}
	}
	if m == nil {
		t.Fatal("no wide macro extracted")
	}
	u := faults.StuckAll(c)
	for _, f := range u.Faults {
		if !m.Contains(f.Gate) {
			continue
		}
		if tbl := m.StuckTable(f.Gate, f.Pin, f.Kind.StuckValue()); tbl != nil {
			t.Fatalf("fault %s: expected nil table for %d-leaf macro", f.Name(c), m.NumLeaves())
		}
		break
	}
}
