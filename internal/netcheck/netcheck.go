// Package netcheck verifies model-level invariants of circuits, macro
// plans and fault universes: the structural well-formedness every
// simulator in this repository assumes but none re-validates on its hot
// path. It backs `cmd/csim -check`, the differential tests' debug hooks,
// and the CI sweep over the bundled ISCAS benchmarks.
package netcheck

import (
	"fmt"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Problem is one invariant violation, tagged with the check that found it.
type Problem struct {
	Check  string // short check name, e.g. "comb-loop"
	Detail string
}

func (p Problem) String() string { return p.Check + ": " + p.Detail }

// AsError folds a problem list into a single error, or nil if empty.
func AsError(ps []Problem) error {
	if len(ps) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "netcheck: %d problem(s)", len(ps))
	for _, p := range ps {
		b.WriteString("\n  ")
		b.WriteString(p.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Check runs every structural circuit check and returns the problems
// found: driver arity and op arity, fanin/fanout edge mirroring, index
// table consistency, combinational loops, and level monotonicity.
func Check(c *netlist.Circuit) []Problem {
	var ps []Problem
	ps = append(ps, checkDrivers(c)...)
	ps = append(ps, checkEdges(c)...)
	ps = append(ps, checkIndexes(c)...)
	// Loop detection needs sane edges; skip on broken graphs.
	if len(ps) == 0 {
		ps = append(ps, checkCombLoops(c)...)
		ps = append(ps, checkLevels(c)...)
	}
	return ps
}

func gname(c *netlist.Circuit, id netlist.GateID) string {
	if id < 0 || int(id) >= len(c.Gates) {
		return fmt.Sprintf("#%d", id)
	}
	return c.Gate(id).Name
}

// checkDrivers verifies every net has exactly the drivers its op allows:
// INPUT gates are undriven by definition, everything else needs fanin
// (undriven net), and no op accepts more fanins than its arity (the
// graph model's form of a multiply-driven net).
func checkDrivers(c *netlist.Circuit) []Problem {
	var ps []Problem
	for i := range c.Gates {
		g := &c.Gates[i]
		for _, f := range g.Fanin {
			if f < 0 || int(f) >= len(c.Gates) {
				ps = append(ps, Problem{"bad-edge",
					fmt.Sprintf("%s has out-of-range fanin %d", g.Name, f)})
			}
		}
		if g.Op == logic.OpInput {
			if len(g.Fanin) != 0 {
				ps = append(ps, Problem{"multiply-driven",
					fmt.Sprintf("input %s is driven by %d gate(s)", g.Name, len(g.Fanin))})
			}
			continue
		}
		if len(g.Fanin) == 0 {
			ps = append(ps, Problem{"undriven",
				fmt.Sprintf("%s (%v) has no fanin", g.Name, g.Op)})
			continue
		}
		if !netlist.ArityOK(g.Op, len(g.Fanin)) {
			ps = append(ps, Problem{"arity",
				fmt.Sprintf("%s: %v cannot take %d input(s)", g.Name, g.Op, len(g.Fanin))})
		}
	}
	return ps
}

// checkEdges verifies the fanin and fanout adjacency lists mirror each
// other exactly, with matching edge multiplicity.
func checkEdges(c *netlist.Circuit) []Problem {
	var ps []Problem
	type edge struct{ from, to netlist.GateID }
	down := map[edge]int{} // from fanin lists
	up := map[edge]int{}   // from fanout lists
	for i := range c.Gates {
		id := netlist.GateID(i)
		for _, f := range c.Gates[i].Fanin {
			if f >= 0 && int(f) < len(c.Gates) {
				down[edge{f, id}]++
			}
		}
		for _, t := range c.Gates[i].Fanout {
			if t < 0 || int(t) >= len(c.Gates) {
				ps = append(ps, Problem{"bad-edge",
					fmt.Sprintf("%s has out-of-range fanout %d", c.Gates[i].Name, t)})
				continue
			}
			up[edge{id, t}]++
		}
	}
	for e, n := range down {
		if up[e] != n {
			ps = append(ps, Problem{"edge-mirror",
				fmt.Sprintf("%s->%s: %d fanin reference(s) but %d fanout reference(s)",
					gname(c, e.from), gname(c, e.to), n, up[e])})
		}
	}
	for e, n := range up {
		if _, ok := down[e]; !ok {
			ps = append(ps, Problem{"edge-mirror",
				fmt.Sprintf("%s->%s: %d fanout reference(s) but no fanin reference",
					gname(c, e.from), gname(c, e.to), n)})
		}
	}
	return sortProblems(ps)
}

// checkIndexes verifies the PI/PO/DFF index lists agree with per-gate ops
// and flags.
func checkIndexes(c *netlist.Circuit) []Problem {
	var ps []Problem
	inPIs := map[netlist.GateID]bool{}
	for _, pi := range c.PIs {
		inPIs[pi] = true
		if int(pi) >= len(c.Gates) || c.Gate(pi).Op != logic.OpInput {
			ps = append(ps, Problem{"index",
				fmt.Sprintf("PIs lists %s, which is not an INPUT gate", gname(c, pi))})
		}
	}
	inDFFs := map[netlist.GateID]bool{}
	for _, ff := range c.DFFs {
		inDFFs[ff] = true
		if int(ff) >= len(c.Gates) || c.Gate(ff).Op != logic.OpDFF {
			ps = append(ps, Problem{"index",
				fmt.Sprintf("DFFs lists %s, which is not a DFF gate", gname(c, ff))})
		}
	}
	inPOs := map[netlist.GateID]bool{}
	for _, po := range c.POs {
		inPOs[po] = true
		if int(po) >= len(c.Gates) || !c.Gate(po).PO {
			ps = append(ps, Problem{"index",
				fmt.Sprintf("POs lists %s, which is not flagged PO", gname(c, po))})
		}
	}
	for i := range c.Gates {
		id := netlist.GateID(i)
		g := &c.Gates[i]
		if g.Op == logic.OpInput && !inPIs[id] {
			ps = append(ps, Problem{"index", fmt.Sprintf("INPUT gate %s missing from PIs", g.Name)})
		}
		if g.Op == logic.OpDFF && !inDFFs[id] {
			ps = append(ps, Problem{"index", fmt.Sprintf("DFF gate %s missing from DFFs", g.Name)})
		}
		if g.PO && !inPOs[id] {
			ps = append(ps, Problem{"index", fmt.Sprintf("PO-flagged gate %s missing from POs", g.Name)})
		}
	}
	return ps
}

// checkCombLoops finds cycles in the combinational subgraph. Flip-flops
// legally close sequential loops: their D-input edge is sequential, so
// paths through a DFF do not count.
func checkCombLoops(c *netlist.Circuit) []Problem {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(c.Gates))
	// Iterative DFS with an explicit stack; on finding a gray successor,
	// the gray stack suffix names the cycle.
	var ps []Problem
	type frame struct {
		g  netlist.GateID
		fi int
	}
	var stack []frame
	for start := range c.Gates {
		if color[start] != white || c.Gates[start].IsSource() {
			continue
		}
		stack = append(stack[:0], frame{netlist.GateID(start), 0})
		color[start] = gray
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			g := &c.Gates[fr.g]
			if fr.fi >= len(g.Fanin) {
				color[fr.g] = black
				stack = stack[:len(stack)-1]
				continue
			}
			next := g.Fanin[fr.fi]
			fr.fi++
			if c.Gate(next).IsSource() {
				continue // DFF or PI: sequential/terminal, not part of a comb path
			}
			switch color[next] {
			case white:
				color[next] = gray
				stack = append(stack, frame{next, 0})
			case gray:
				// Collect the cycle from the stack suffix.
				names := []string{gname(c, next)}
				for i := len(stack) - 1; i >= 0 && stack[i].g != next; i-- {
					names = append(names, gname(c, stack[i].g))
				}
				ps = append(ps, Problem{"comb-loop",
					"combinational cycle through " + strings.Join(names, " <- ")})
				return ps // one witness is enough; the graph is unusable anyway
			}
		}
	}
	return ps
}

// checkLevels verifies combinational levelization: sources at level 0,
// every combinational gate at a level strictly above all of its fanins,
// and the Levels buckets/MaxLevel agreeing with per-gate levels.
func checkLevels(c *netlist.Circuit) []Problem {
	var ps []Problem
	var maxSeen int32
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.IsSource() {
			if g.Level != 0 {
				ps = append(ps, Problem{"level",
					fmt.Sprintf("source %s at level %d, want 0", g.Name, g.Level)})
			}
			continue
		}
		if g.Level < 1 {
			ps = append(ps, Problem{"level",
				fmt.Sprintf("gate %s at level %d, want >= 1", g.Name, g.Level)})
		}
		if g.Level > maxSeen {
			maxSeen = g.Level
		}
		for _, f := range g.Fanin {
			fg := c.Gate(f)
			fl := fg.Level
			if fg.IsSource() {
				fl = 0
			}
			if g.Level <= fl {
				ps = append(ps, Problem{"level",
					fmt.Sprintf("gate %s (level %d) not above fanin %s (level %d)",
						g.Name, g.Level, fg.Name, fl)})
			}
		}
	}
	if c.MaxLevel != maxSeen {
		ps = append(ps, Problem{"level",
			fmt.Sprintf("MaxLevel is %d, deepest gate is at %d", c.MaxLevel, maxSeen)})
	}
	seen := map[netlist.GateID]bool{}
	for l, bucket := range c.Levels {
		for _, id := range bucket {
			if seen[id] {
				ps = append(ps, Problem{"level",
					fmt.Sprintf("gate %s appears in Levels twice", gname(c, id))})
			}
			seen[id] = true
			if int(id) < len(c.Gates) && int(c.Gate(id).Level) != l {
				ps = append(ps, Problem{"level",
					fmt.Sprintf("gate %s bucketed at level %d but has Level %d",
						gname(c, id), l, c.Gate(id).Level)})
			}
		}
	}
	for i := range c.Gates {
		if !c.Gates[i].IsSource() && !seen[netlist.GateID(i)] {
			ps = append(ps, Problem{"level",
				fmt.Sprintf("gate %s missing from Levels buckets", c.Gates[i].Name)})
		}
	}
	return ps
}

func sortProblems(ps []Problem) []Problem {
	// Map iteration above makes order nondeterministic; sort for stable
	// output and stable tests.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].String() < ps[j-1].String(); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	return ps
}
