package netcheck

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/macro"
	"repro/internal/netlist"
)

// TestISCASSuiteClean sweeps every bundled benchmark: the circuits, the
// fault universes over them, and all extraction plans must verify clean.
func TestISCASSuiteClean(t *testing.T) {
	for _, name := range iscas.Names() {
		c := iscas.MustGet(name)
		if err := AsError(Check(c)); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for _, u := range []*faults.Universe{
			faults.StuckAll(c), faults.StuckCollapsed(c), faults.Transition(c),
		} {
			if err := AsError(CheckUniverse(u)); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
		trivial := macro.Trivial(c)
		if err := AsError(CheckPlan(trivial)); err != nil {
			t.Errorf("%s trivial plan: %v", name, err)
		}
		for _, reconv := range []bool{false, true} {
			var p *macro.Plan
			var err error
			if reconv {
				p, err = macro.ExtractReconvergent(c, macro.DefaultMaxInputs)
			} else {
				p, err = macro.Extract(c, macro.DefaultMaxInputs)
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := AsError(CheckPlan(p)); err != nil {
				t.Errorf("%s reconv=%v: %v", name, reconv, err)
			}
			if err := AsError(CheckPlanMaximal(p, macro.DefaultMaxInputs, reconv)); err != nil {
				t.Errorf("%s reconv=%v: %v", name, reconv, err)
			}
		}
	}
}

// chain builds the two-gate circuit i -> a(NOT) -> b(NOT) -> PO b.
func chain(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := netlist.NewBuilder("chain").
		Input("i").
		Gate("a", logic.OpNot, "i").
		Gate("b", logic.OpNot, "a").
		Output("b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func wantProblem(t *testing.T, ps []Problem, check, substr string) {
	t.Helper()
	for _, p := range ps {
		if p.Check == check && strings.Contains(p.Detail, substr) {
			return
		}
	}
	t.Errorf("no %q problem mentioning %q in %v", check, substr, ps)
}

func TestUndrivenGate(t *testing.T) {
	c := chain(t)
	c.Gates[c.MustByName("a")].Fanin = nil
	wantProblem(t, Check(c), "undriven", "a")
}

func TestMultiplyDrivenInput(t *testing.T) {
	c := chain(t)
	i := c.MustByName("i")
	c.Gates[i].Fanin = []netlist.GateID{c.MustByName("b")}
	wantProblem(t, Check(c), "multiply-driven", "i")
}

func TestArityViolation(t *testing.T) {
	c := chain(t)
	a := c.MustByName("a")
	c.Gates[a].Fanin = append(c.Gates[a].Fanin, c.MustByName("i"))
	wantProblem(t, Check(c), "arity", "a")
}

func TestEdgeMirrorBreak(t *testing.T) {
	c := chain(t)
	i := c.MustByName("i")
	c.Gates[i].Fanout = nil // a still lists i as fanin
	wantProblem(t, Check(c), "edge-mirror", "i")
}

func TestIndexDrift(t *testing.T) {
	c := chain(t)
	c.PIs = nil
	wantProblem(t, Check(c), "index", "i")
}

func TestCombLoop(t *testing.T) {
	// Rewire a's fanin from i to b: a <- b <- a.
	c := chain(t)
	a, b, i := c.MustByName("a"), c.MustByName("b"), c.MustByName("i")
	c.Gates[a].Fanin = []netlist.GateID{b}
	c.Gates[b].Fanout = append(c.Gates[b].Fanout, a)
	c.Gates[i].Fanout = nil
	ps := Check(c)
	wantProblem(t, ps, "comb-loop", "a")
}

func TestLevelViolations(t *testing.T) {
	c := chain(t)
	b := c.MustByName("b")
	c.Gates[b].Level = 1 // same as its fanin a
	ps := Check(c)
	wantProblem(t, ps, "level", "b")

	c2 := chain(t)
	c2.MaxLevel = 9
	wantProblem(t, Check(c2), "level", "MaxLevel")
}

func TestUniverseViolations(t *testing.T) {
	c := chain(t)
	u := faults.StuckAll(c)
	u.Faults[3].ID = 99
	wantProblem(t, CheckUniverse(u), "fault-id", "index 3")

	u = faults.StuckAll(c)
	u.Faults[0].Gate = 1000
	wantProblem(t, CheckUniverse(u), "fault-site", "out-of-range")

	u = faults.StuckAll(c)
	u.Faults[2].Pin = 7
	wantProblem(t, CheckUniverse(u), "fault-site", "pin 7")

	u = faults.StuckAll(c)
	u.Faults[1].Kind = faults.STR
	u.Faults[1].Pin = faults.OutPin
	wantProblem(t, CheckUniverse(u), "fault-kind", "output")

	u = faults.StuckCollapsed(c)
	u.Rep[0] = 1 << 20
	wantProblem(t, CheckUniverse(u), "fault-rep", "Rep[0]")
}

func TestPlanViolations(t *testing.T) {
	c := chain(t)
	p, err := macro.Extract(c, macro.DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := AsError(CheckPlan(p)); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	a := c.MustByName("a")
	p.Owner[a] = a // a was absorbed into b's macro; claim it owns itself
	wantProblem(t, CheckPlan(p), "plan-cover", "a")
}

// TestTrivialPlanNotMaximal: the Trivial plan on a chain keeps the two
// NOT gates separate, which FFR extraction would merge — the maximality
// check must say so (and must not be run on Trivial plans in anger).
func TestTrivialPlanNotMaximal(t *testing.T) {
	c := chain(t)
	p := macro.Trivial(c)
	if err := AsError(CheckPlan(p)); err != nil {
		t.Fatalf("trivial plan structurally invalid: %v", err)
	}
	wantProblem(t, CheckPlanMaximal(p, macro.DefaultMaxInputs, false), "plan-maximal", "a")
}
