package netcheck

import (
	"fmt"

	"repro/internal/macro"
	"repro/internal/netlist"
)

// CheckPlan verifies a macro plan's structural invariants: every
// combinational gate owned by exactly one macro, leaves strictly outside
// their macro, roots as the last instruction, and macro levels strictly
// above all leaf levels.
func CheckPlan(p *macro.Plan) []Problem {
	c := p.C
	var ps []Problem
	for i := range c.Gates {
		id := netlist.GateID(i)
		g := &c.Gates[i]
		own := p.Owner[i]
		if g.IsSource() {
			if own != id {
				ps = append(ps, Problem{"plan-owner",
					fmt.Sprintf("source %s owned by %s", g.Name, gname(c, own))})
			}
			if p.ByRoot[i] != nil {
				ps = append(ps, Problem{"plan-owner",
					fmt.Sprintf("source %s has a macro", g.Name)})
			}
			continue
		}
		m := p.ByRoot[own]
		if m == nil || !m.Contains(id) {
			ps = append(ps, Problem{"plan-cover",
				fmt.Sprintf("gate %s not covered by its owner macro %s", g.Name, gname(c, own))})
			continue
		}
		if own != id && p.ByRoot[i] != nil {
			ps = append(ps, Problem{"plan-cover",
				fmt.Sprintf("absorbed gate %s also roots a macro", g.Name)})
		}
	}
	for i, m := range p.ByRoot {
		if m == nil {
			continue
		}
		root := netlist.GateID(i)
		if m.Root != root {
			ps = append(ps, Problem{"plan-root",
				fmt.Sprintf("macro at %s records root %s", gname(c, root), gname(c, m.Root))})
			continue
		}
		seen := map[netlist.GateID]bool{}
		for _, l := range m.Leaves {
			if seen[l] {
				ps = append(ps, Problem{"plan-leaves",
					fmt.Sprintf("macro %s lists leaf %s twice", gname(c, root), gname(c, l))})
			}
			seen[l] = true
			if m.Contains(l) {
				ps = append(ps, Problem{"plan-leaves",
					fmt.Sprintf("macro %s absorbs its own leaf %s", gname(c, root), gname(c, l))})
			}
			// A combinational leaf must root its own macro: its output is
			// consumed outside whatever macro owns it.
			if !c.Gate(l).IsSource() && p.ByRoot[l] == nil {
				ps = append(ps, Problem{"plan-leaves",
					fmt.Sprintf("macro %s has combinational leaf %s that roots no macro",
						gname(c, root), gname(c, l))})
			}
		}
		// Macro level strictly above every leaf's macro level.
		lvl := p.RootLevel[root]
		if lvl < 1 {
			ps = append(ps, Problem{"plan-level",
				fmt.Sprintf("macro %s at level %d, want >= 1", gname(c, root), lvl)})
		}
		for _, l := range m.Leaves {
			if ll := p.RootLevel[l]; lvl <= ll {
				ps = append(ps, Problem{"plan-level",
					fmt.Sprintf("macro %s (level %d) not above leaf %s (level %d)",
						gname(c, root), lvl, gname(c, l), ll)})
			}
		}
	}
	return ps
}

// CheckPlanMaximal verifies the FFR-maximality of an extracted plan
// built with the given leaf cap: no macro may have a leaf that the
// extraction rules would still absorb. maxInputs and reconvergent must
// match the macro.Extract / macro.ExtractReconvergent call that built
// the plan; Trivial plans are intentionally non-maximal and should not
// be checked.
func CheckPlanMaximal(p *macro.Plan, maxInputs int, reconvergent bool) []Problem {
	c := p.C
	// Mirror extract's internal cap clamp.
	if maxInputs > macro.TableMaxInputs+8 {
		maxInputs = macro.TableMaxInputs + 8
	}
	var ps []Problem
	for i, m := range p.ByRoot {
		if m == nil {
			continue
		}
		root := netlist.GateID(i)
		leafSet := map[netlist.GateID]bool{}
		for _, l := range m.Leaves {
			leafSet[l] = true
		}
		for _, l := range m.Leaves {
			if absorbable(p, m, l, leafSet, maxInputs, reconvergent) {
				ps = append(ps, Problem{"plan-maximal",
					fmt.Sprintf("macro %s is not maximal: leaf %s is still absorbable",
						gname(c, root), gname(c, l))})
			}
		}
	}
	return ps
}

// absorbable reports whether extraction would fold leaf l into macro m:
// a combinational non-observable gate whose entire fanout lies inside
// the macro (fanout-free mode additionally requires single fanout),
// without pushing the leaf count past maxInputs.
func absorbable(p *macro.Plan, m *macro.Macro, l netlist.GateID, leafSet map[netlist.GateID]bool, maxInputs int, reconvergent bool) bool {
	c := p.C
	g := c.Gate(l)
	if g.IsSource() || g.PO || len(g.Fanout) == 0 {
		return false
	}
	if !reconvergent && len(g.Fanout) != 1 {
		return false
	}
	for _, fo := range g.Fanout {
		if c.Gate(fo).IsSource() {
			return false // feeds a DFF D pin: natural root
		}
		if fo != m.Root && !m.Contains(fo) {
			return false // consumed outside the macro
		}
	}
	newCount := len(m.Leaves) - 1
	fresh := 0
	for _, f := range g.Fanin {
		if !leafSet[f] || f == l {
			fresh++
		}
	}
	return newCount+fresh <= maxInputs
}
