package netcheck

import (
	"fmt"

	"repro/internal/faults"
)

// CheckUniverse verifies fault-list well-formedness: dense ascending
// IDs, in-range sites (gate exists; pin is OutPin or a real input pin),
// kinds drawn from the defined set, transition faults only on input
// pins, and — for collapsed universes — a total Rep map targeting real
// representatives.
func CheckUniverse(u *faults.Universe) []Problem {
	c := u.Circuit
	var ps []Problem
	for i, f := range u.Faults {
		if int(f.ID) != i {
			ps = append(ps, Problem{"fault-id",
				fmt.Sprintf("fault at index %d has ID %d", i, f.ID)})
			continue
		}
		if f.Gate < 0 || int(f.Gate) >= len(c.Gates) {
			ps = append(ps, Problem{"fault-site",
				fmt.Sprintf("fault %d sited at out-of-range gate %d", f.ID, f.Gate)})
			continue
		}
		g := c.Gate(f.Gate)
		if f.Pin != faults.OutPin && (f.Pin < 0 || f.Pin >= len(g.Fanin)) {
			ps = append(ps, Problem{"fault-site",
				fmt.Sprintf("fault %d on %s pin %d, gate has %d input(s)",
					f.ID, g.Name, f.Pin, len(g.Fanin))})
		}
		switch f.Kind {
		case faults.SA0, faults.SA1:
		case faults.STR, faults.STF:
			if f.Pin == faults.OutPin {
				ps = append(ps, Problem{"fault-kind",
					fmt.Sprintf("transition fault %d on %s output; transitions attach to input pins",
						f.ID, g.Name)})
			}
		default:
			ps = append(ps, Problem{"fault-kind",
				fmt.Sprintf("fault %d has unknown kind %d", f.ID, f.Kind)})
		}
	}
	if u.Rep != nil {
		for i, r := range u.Rep {
			if r < 0 || int(r) >= len(u.Faults) {
				ps = append(ps, Problem{"fault-rep",
					fmt.Sprintf("Rep[%d] = %d outside the collapsed universe of %d", i, r, len(u.Faults))})
			}
		}
	}
	return ps
}
