package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
)

// ParseBench reads a circuit in ISCAS-89 .bench format:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = NAND(G0, G4)
//	G5  = DFF(G10)
//
// Keywords are case-insensitive; whitespace is free-form.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	b := NewBuilder(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseBenchLine(b, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return b.Build()
}

// ParseBenchString parses .bench text from a string.
func ParseBenchString(name, text string) (*Circuit, error) {
	return ParseBench(name, strings.NewReader(text))
}

func parseBenchLine(b *Builder, line string) error {
	if eq := strings.IndexByte(line, '='); eq >= 0 {
		lhs := strings.TrimSpace(line[:eq])
		rhs := strings.TrimSpace(line[eq+1:])
		op, args, err := parseCall(rhs)
		if err != nil {
			return err
		}
		gop, err := logic.ParseOp(op)
		if err != nil {
			return err
		}
		if gop == logic.OpDFF {
			if len(args) != 1 {
				return fmt.Errorf("DFF %q needs exactly one input, got %d", lhs, len(args))
			}
			b.DFF(lhs, args[0])
			return nil
		}
		b.Gate(lhs, gop, args...)
		return nil
	}
	op, args, err := parseCall(line)
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("%s declaration needs one signal, got %d", op, len(args))
	}
	switch strings.ToUpper(op) {
	case "INPUT":
		b.Input(args[0])
	case "OUTPUT":
		b.Output(args[0])
	default:
		return fmt.Errorf("unrecognized declaration %q", op)
	}
	return nil
}

// parseCall splits "OP(a, b, c)" into its keyword and arguments.
func parseCall(s string) (op string, args []string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed expression %q", s)
	}
	op = strings.TrimSpace(s[:open])
	inner := s[open+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return op, nil, nil
	}
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, fmt.Errorf("empty argument in %q", s)
		}
		args = append(args, a)
	}
	return op, args, nil
}

// WriteBench serializes the circuit in .bench format. Parsing the output
// reproduces an isomorphic circuit (round-trip property).
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	for _, id := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[id].Name)
	}
	for _, id := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[id].Name)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Op == logic.OpInput {
			continue
		}
		names := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			names[j] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Op, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// BenchString renders the circuit as .bench text.
func BenchString(c *Circuit) string {
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		panic(err) // strings.Builder never errors
	}
	return sb.String()
}
