package netlist

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/logic"
)

// Builder assembles a Circuit incrementally by signal name. Signals may be
// referenced before they are defined; Build resolves everything, validates
// arities, detects combinational cycles and levelizes.
type Builder struct {
	name    string
	gates   []protoGate
	byName  map[string]int
	inputs  []string
	outputs []string
	errs    []error
}

type protoGate struct {
	name  string
	op    logic.Op
	fanin []string
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]int)}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

func (b *Builder) define(name string, op logic.Op, fanin []string) {
	if name == "" {
		b.errf("netlist: empty signal name")
		return
	}
	if _, dup := b.byName[name]; dup {
		b.errf("netlist: signal %q defined twice", name)
		return
	}
	b.byName[name] = len(b.gates)
	b.gates = append(b.gates, protoGate{name: name, op: op, fanin: fanin})
}

// Input declares a primary input signal.
func (b *Builder) Input(name string) *Builder {
	b.inputs = append(b.inputs, name)
	b.define(name, logic.OpInput, nil)
	return b
}

// Output marks an existing or future signal as a primary output.
func (b *Builder) Output(name string) *Builder {
	b.outputs = append(b.outputs, name)
	return b
}

// Gate defines a combinational gate driving signal name.
func (b *Builder) Gate(name string, op logic.Op, fanin ...string) *Builder {
	b.define(name, op, fanin)
	return b
}

// DFF defines a D flip-flop whose output drives signal name and whose D
// input is the signal d.
func (b *Builder) DFF(name, d string) *Builder {
	b.define(name, logic.OpDFF, []string{d})
	return b
}

// ArityOK reports whether op accepts n fanins. Exposed for the netcheck
// verifier, which re-validates circuits that bypassed the Builder.
func ArityOK(op logic.Op, n int) bool {
	switch op {
	case logic.OpInput:
		return n == 0
	case logic.OpNot, logic.OpBuf, logic.OpDFF:
		return n == 1
	case logic.OpXor, logic.OpXnor:
		return n >= 2
	default:
		return n >= 1
	}
}

// Build resolves the netlist into a levelized Circuit. Rather than
// stopping at the first defect it validates the whole netlist and returns
// every problem found, joined, so a malformed .bench file surfaces all of
// its undefined-fanin and duplicate-definition sites in one pass.
func (b *Builder) Build() (*Circuit, error) {
	errs := append([]error(nil), b.errs...)
	c := &Circuit{
		Name:   b.name,
		Gates:  make([]Gate, len(b.gates)),
		byName: make(map[string]GateID, len(b.gates)),
	}
	for i, p := range b.gates {
		c.Gates[i] = Gate{Name: p.name, Op: p.op}
		c.byName[p.name] = GateID(i)
	}
	for i, p := range b.gates {
		if !ArityOK(p.op, len(p.fanin)) {
			errs = append(errs, fmt.Errorf("netlist: gate %q (%v) has %d inputs", p.name, p.op, len(p.fanin)))
		}
		if len(p.fanin) > logic.MaxPins {
			errs = append(errs, fmt.Errorf("netlist: gate %q has %d inputs; exceeds %d (run Decompose)",
				p.name, len(p.fanin), logic.MaxPins))
		}
		for _, fn := range p.fanin {
			src, ok := c.byName[fn]
			if !ok {
				errs = append(errs, fmt.Errorf("netlist: gate %q references undriven signal %q", p.name, fn))
				continue
			}
			c.Gates[i].Fanin = append(c.Gates[i].Fanin, src)
			c.Gates[src].Fanout = append(c.Gates[src].Fanout, GateID(i))
		}
		switch p.op {
		case logic.OpInput:
			c.PIs = append(c.PIs, GateID(i))
		case logic.OpDFF:
			c.DFFs = append(c.DFFs, GateID(i))
		}
	}
	seenPO := make(map[string]bool)
	for _, on := range b.outputs {
		id, ok := c.byName[on]
		if !ok {
			errs = append(errs, fmt.Errorf("netlist: primary output %q is undriven", on))
			continue
		}
		if seenPO[on] {
			continue
		}
		seenPO[on] = true
		c.POs = append(c.POs, id)
		c.Gates[id].PO = true
	}
	// Levelizing a netlist with unresolved fanins would misattribute the
	// holes as cycles, so stop here once anything is wrong.
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if err := c.levelize(); err != nil {
		return nil, err
	}
	return c, nil
}

// levelize assigns combinational levels: sources (PIs, DFFs) at level 0,
// every other gate at 1 + max(fanin levels). Detects combinational cycles.
func (c *Circuit) levelize() error {
	const unset = int32(-1)
	for i := range c.Gates {
		if c.Gates[i].IsSource() {
			c.Gates[i].Level = 0
		} else {
			c.Gates[i].Level = unset
		}
	}
	// Kahn-style: count unresolved combinational fanins.
	pending := make([]int32, len(c.Gates))
	queue := make([]GateID, 0, len(c.Gates))
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.IsSource() {
			queue = append(queue, GateID(i))
			continue
		}
		pending[i] = int32(len(g.Fanin))
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, fo := range c.Gates[id].Fanout {
			fg := &c.Gates[fo]
			if fg.IsSource() {
				continue // DFF D-input does not propagate levels
			}
			pending[fo]--
			if pending[fo] == 0 {
				lvl := int32(0)
				for _, fi := range fg.Fanin {
					if l := c.Gates[fi].Level; l > lvl {
						lvl = l
					}
				}
				fg.Level = lvl + 1
				queue = append(queue, fo)
			}
		}
	}
	for i := range c.Gates {
		if c.Gates[i].Level == unset {
			return fmt.Errorf("netlist: combinational cycle through gate %q", c.Gates[i].Name)
		}
	}
	c.MaxLevel = 0
	for i := range c.Gates {
		if l := c.Gates[i].Level; l > c.MaxLevel {
			c.MaxLevel = l
		}
	}
	c.Levels = make([][]GateID, c.MaxLevel+1)
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.IsSource() {
			continue
		}
		c.Levels[g.Level] = append(c.Levels[g.Level], GateID(i))
	}
	for _, lv := range c.Levels {
		sort.Slice(lv, func(a, b int) bool { return lv[a] < lv[b] })
	}
	return nil
}
