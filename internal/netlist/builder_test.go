package netlist

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// TestBuildReportsAllErrors: Build must not stop at the first defect — a
// netlist with several independent problems reports every one of them in a
// single joined error.
func TestBuildReportsAllErrors(t *testing.T) {
	_, err := NewBuilder("bad").
		Input("a").
		Gate("x", logic.OpAnd, "a", "missing1").
		Gate("x", logic.OpOr, "a").          // duplicate definition
		Gate("y", logic.OpNot, "a", "a").    // arity violation
		Gate("w", logic.OpNand, "missing2"). // second undefined fanin
		Output("zz").                        // undriven primary output
		Build()
	if err == nil {
		t.Fatal("Build succeeded on a netlist with five defects")
	}
	for _, want := range []string{
		`"missing1"`, `"missing2"`, // both undefined fanins, not just the first
		`"x" defined twice`,
		`"y"`, // arity
		`"zz" is undriven`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
}

// TestBuildUndefinedFaninNotMisreportedAsCycle: a hole in the fanin graph
// must surface as an undriven-signal error, never as a phantom
// combinational cycle from levelizing the incomplete graph.
func TestBuildUndefinedFaninNotMisreportedAsCycle(t *testing.T) {
	_, err := NewBuilder("hole").
		Input("a").
		Gate("x", logic.OpAnd, "a", "ghost").
		Gate("y", logic.OpNot, "x").
		Output("y").
		Build()
	if err == nil {
		t.Fatal("Build succeeded with undefined fanin")
	}
	if strings.Contains(err.Error(), "cycle") {
		t.Errorf("undefined fanin misreported as cycle: %v", err)
	}
	if !strings.Contains(err.Error(), `"ghost"`) {
		t.Errorf("error does not name the missing signal: %v", err)
	}
}

// TestDecomposeDegenerateOneInput: 1-input AND/NAND gates are legal
// (identity / inversion); Decompose must keep them verbatim and preserve
// the function.
func TestDecomposeDegenerateOneInput(t *testing.T) {
	c, err := NewBuilder("degen").
		Input("a").
		Gate("buf1", logic.OpAnd, "a").
		Gate("inv1", logic.OpNand, "a").
		Gate("z", logic.OpOr, "buf1", "inv1").
		Output("z").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Gates) != len(c.Gates) {
		t.Errorf("decompose changed gate count %d -> %d on in-limit circuit",
			len(c.Gates), len(d.Gates))
	}
	for _, v := range []logic.V{logic.Zero, logic.One, logic.X} {
		vals := map[string]logic.V{"a": v}
		if w, g := evalFlat(t, c, vals, "z"), evalFlat(t, d, vals, "z"); w != g {
			t.Errorf("a=%v: %v vs %v", v, w, g)
		}
	}
}

// TestDecomposeDFFOnlyCycle: a register loop with no combinational logic
// at all (two DFFs feeding each other) is a legal synchronous circuit;
// Build and Decompose must both accept it unchanged.
func TestDecomposeDFFOnlyCycle(t *testing.T) {
	c, err := NewBuilder("ffring").
		DFF("q1", "q2").
		DFF("q2", "q1").
		Output("q1").
		Build()
	if err != nil {
		t.Fatalf("DFF-only cycle rejected: %v", err)
	}
	if c.MaxLevel != 0 {
		t.Errorf("DFF-only circuit has MaxLevel %d, want 0", c.MaxLevel)
	}
	d, err := Decompose(c, 2)
	if err != nil {
		t.Fatalf("Decompose on DFF-only cycle: %v", err)
	}
	if len(d.Gates) != 2 || len(d.DFFs) != 2 {
		t.Errorf("decompose changed DFF ring shape: %d gates, %d DFFs",
			len(d.Gates), len(d.DFFs))
	}
}

// TestDecomposeWideWithDFFFeedback: decomposition across a register
// boundary — the wide gate sits on a DFF feedback path, so the rebuilt
// circuit must keep the loop legal and the per-cycle function intact.
func TestDecomposeWideWithDFFFeedback(t *testing.T) {
	b := NewBuilder("widefb")
	in := make([]string, 7)
	for i := range in {
		in[i] = string(rune('a' + i))
		b.Input(in[i])
	}
	fanin := append([]string{"q"}, in...)
	b.DFF("q", "z").
		Gate("z", logic.OpNor, fanin...).
		Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Gates {
		if n := len(d.Gates[i].Fanin); n > 3 {
			t.Errorf("gate %s still has %d fanins", d.Gates[i].Name, n)
		}
	}
	if len(d.DFFs) != 1 {
		t.Fatalf("DFF lost in decomposition")
	}
}
