package netlist

import (
	"fmt"

	"repro/internal/logic"
)

// Decompose rewrites every combinational gate with more than maxFanin
// inputs into a tree of gates of at most maxFanin inputs computing the same
// function, and returns the rebuilt circuit. Gates already within the limit
// are kept verbatim (same names), so fault universes over original gates
// remain meaningful. Introduced gates are named <gate>$dN.
//
// AND/NAND/OR/NOR/XOR trees use the base (non-inverting) op for internal
// nodes and keep the original op at the root; this preserves the function
// because all five ops are associative in their base form.
func Decompose(c *Circuit, maxFanin int) (*Circuit, error) {
	if maxFanin < 2 {
		return nil, fmt.Errorf("netlist: maxFanin %d < 2", maxFanin)
	}
	b := NewBuilder(c.Name)
	aux := 0
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Op {
		case logic.OpInput:
			b.Input(g.Name)
			continue
		case logic.OpDFF:
			b.DFF(g.Name, c.Gates[g.Fanin[0]].Name)
			continue
		}
		names := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			names[j] = c.Gates[f].Name
		}
		if len(names) <= maxFanin {
			b.Gate(g.Name, g.Op, names...)
			continue
		}
		base := g.Op.Base()
		// Reduce in rounds: group maxFanin signals into an internal base
		// gate until the survivor count fits under the root.
		for len(names) > maxFanin {
			var next []string
			for lo := 0; lo < len(names); lo += maxFanin {
				hi := lo + maxFanin
				if hi > len(names) {
					hi = len(names)
				}
				grp := names[lo:hi]
				if len(grp) == 1 {
					next = append(next, grp[0])
					continue
				}
				an := fmt.Sprintf("%s$d%d", g.Name, aux)
				aux++
				b.Gate(an, base, grp...)
				next = append(next, an)
			}
			names = next
		}
		if len(names) == 1 && g.Op.Inverting() {
			// Root must still apply the inversion.
			b.Gate(g.Name, logic.OpNot, names[0])
		} else if len(names) == 1 {
			b.Gate(g.Name, logic.OpBuf, names[0])
		} else {
			b.Gate(g.Name, g.Op, names...)
		}
	}
	for _, id := range c.POs {
		b.Output(c.Gates[id].Name)
	}
	return b.Build()
}
