// Package netlist models gate-level synchronous sequential circuits in the
// ISCAS-89 style: primary inputs, primary outputs, D flip-flops and
// combinational gates. It provides a builder, a .bench reader/writer,
// levelization, wide-gate decomposition and structural statistics.
//
// A circuit here is the substrate everything else runs on: the good-machine
// simulator, the concurrent fault simulator, the PROOFS baseline and the
// test generator all consume this representation.
package netlist

import (
	"fmt"

	"repro/internal/logic"
)

// GateID indexes a gate within its circuit. IDs are dense, starting at 0.
type GateID int32

// NoGate is the invalid gate ID.
const NoGate GateID = -1

// Gate is one node of the circuit graph. INPUT gates have no fanin; DFF
// gates have exactly one fanin (the D line) and act as level-0 sources for
// combinational levelization. Gates live in the shared Circuit arena, so
// they are as frozen as the Circuit that holds them.
//
//simlint:immutable
type Gate struct {
	Name   string
	Op     logic.Op
	Fanin  []GateID
	Fanout []GateID
	Level  int32 // combinational level; 0 for PIs and DFFs
	PO     bool  // the gate's output line is a primary output
}

// IsSource reports whether the gate is a combinational source (PI or DFF).
func (g *Gate) IsSource() bool {
	return g.Op == logic.OpInput || g.Op == logic.OpDFF
}

// Circuit is an immutable levelized gate network. Construct one with a
// Builder or the .bench parser.
//
//simlint:immutable
type Circuit struct {
	Name  string
	Gates []Gate

	PIs  []GateID // OpInput gates, in declaration order
	POs  []GateID // driver gates of primary output lines, in declaration order
	DFFs []GateID // OpDFF gates, in declaration order

	// Levels[l] lists the combinational gates at level l (l >= 1).
	// Level 0 (sources) is PIs plus DFFs.
	Levels   [][]GateID
	MaxLevel int32

	byName map[string]GateID
}

// NumGates returns the total node count including PIs and DFFs.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// Gate returns the gate with the given ID.
func (c *Circuit) Gate(id GateID) *Gate { return &c.Gates[id] }

// ByName looks a gate up by its signal name.
func (c *Circuit) ByName(name string) (GateID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// MustByName looks a gate up by name and panics if absent (test helper).
func (c *Circuit) MustByName(name string) GateID {
	id, ok := c.byName[name]
	if !ok {
		panic(fmt.Sprintf("netlist: no gate named %q in %s", name, c.Name))
	}
	return id
}

// PinOf returns the input-pin index of gate `from` within gate `to`'s
// fanin list, or -1 if not connected.
func (c *Circuit) PinOf(to, from GateID) int {
	for i, f := range c.Gates[to].Fanin {
		if f == from {
			return i
		}
	}
	return -1
}

// Stats summarizes circuit structure, matching the columns of the paper's
// Table 2 (gates, flip-flops) plus levelization depth.
type Stats struct {
	Name     string
	PIs      int
	POs      int
	DFFs     int
	Gates    int // combinational gates (everything except INPUT and DFF)
	Ops      map[logic.Op]int
	MaxLevel int
	Fanouts  int // total fanout edge count
	MaxFanin int
}

// Stats computes structural statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Name: c.Name, PIs: len(c.PIs), POs: len(c.POs), DFFs: len(c.DFFs),
		Ops: make(map[logic.Op]int), MaxLevel: int(c.MaxLevel),
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		s.Ops[g.Op]++
		s.Fanouts += len(g.Fanout)
		if !g.IsSource() {
			s.Gates++
		}
		if len(g.Fanin) > s.MaxFanin {
			s.MaxFanin = len(g.Fanin)
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PI, %d PO, %d DFF, %d gates, depth %d",
		s.Name, s.PIs, s.POs, s.DFFs, s.Gates, s.MaxLevel)
}
