package netlist

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// s27Bench is the real ISCAS-89 s27 netlist.
const s27Bench = `
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func parseS27(t *testing.T) *Circuit {
	t.Helper()
	c, err := ParseBenchString("s27", s27Bench)
	if err != nil {
		t.Fatalf("ParseBench(s27): %v", err)
	}
	return c
}

func TestParseS27Stats(t *testing.T) {
	c := parseS27(t)
	s := c.Stats()
	if s.PIs != 4 || s.POs != 1 || s.DFFs != 3 || s.Gates != 10 {
		t.Errorf("s27 stats = %+v, want 4 PI / 1 PO / 3 DFF / 10 gates", s)
	}
	if s.Ops[logic.OpNor] != 3 || s.Ops[logic.OpNand] != 2 || s.Ops[logic.OpNot] != 2 {
		t.Errorf("op histogram wrong: %v", s.Ops)
	}
}

func TestLevelization(t *testing.T) {
	c := parseS27(t)
	for _, pi := range c.PIs {
		if c.Gate(pi).Level != 0 {
			t.Errorf("PI %s at level %d", c.Gate(pi).Name, c.Gate(pi).Level)
		}
	}
	for _, ff := range c.DFFs {
		if c.Gate(ff).Level != 0 {
			t.Errorf("DFF %s at level %d", c.Gate(ff).Name, c.Gate(ff).Level)
		}
	}
	// Every gate must be strictly above all its combinational fanins.
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.IsSource() {
			continue
		}
		for _, f := range g.Fanin {
			if c.Gates[f].Level >= g.Level {
				t.Errorf("gate %s (level %d) not above fanin %s (level %d)",
					g.Name, g.Level, c.Gates[f].Name, c.Gates[f].Level)
			}
		}
	}
	// Levels slices must partition the combinational gates.
	n := 0
	for l, lv := range c.Levels {
		for _, id := range lv {
			if int(c.Gate(id).Level) != l {
				t.Errorf("gate %s in Levels[%d] but Level=%d", c.Gate(id).Name, l, c.Gate(id).Level)
			}
			n++
		}
	}
	if n != c.Stats().Gates {
		t.Errorf("Levels hold %d gates, want %d", n, c.Stats().Gates)
	}
}

func TestFanoutConsistency(t *testing.T) {
	c := parseS27(t)
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			if c.PinOf(GateID(i), f) < 0 {
				t.Fatalf("PinOf broken for %s", c.Gates[i].Name)
			}
			found := false
			for _, fo := range c.Gates[f].Fanout {
				if fo == GateID(i) {
					found = true
				}
			}
			if !found {
				t.Errorf("fanin edge %s->%s missing from fanout list",
					c.Gates[f].Name, c.Gates[i].Name)
			}
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c := parseS27(t)
	c2, err := ParseBenchString("s27rt", BenchString(c))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(c2.Gates) != len(c.Gates) || len(c2.PIs) != len(c.PIs) ||
		len(c2.POs) != len(c.POs) || len(c2.DFFs) != len(c.DFFs) {
		t.Fatalf("round trip changed shape: %v vs %v", c2.Stats(), c.Stats())
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		id2, ok := c2.ByName(g.Name)
		if !ok {
			t.Fatalf("gate %q lost in round trip", g.Name)
		}
		g2 := c2.Gate(id2)
		if g2.Op != g.Op || len(g2.Fanin) != len(g.Fanin) || g2.PO != g.PO {
			t.Errorf("gate %q changed: op %v->%v", g.Name, g.Op, g2.Op)
		}
		for j, f := range g.Fanin {
			if c2.Gate(g2.Fanin[j]).Name != c.Gate(f).Name {
				t.Errorf("gate %q fanin %d changed", g.Name, j)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"undriven", "INPUT(a)\nOUTPUT(z)\nz = AND(a, b)\n"},
		{"dupDef", "INPUT(a)\nINPUT(a)\n"},
		{"badOp", "INPUT(a)\nz = MAJ(a)\n"},
		{"badDecl", "WIBBLE(a)\n"},
		{"malformed", "z = AND(a\n"},
		{"dffArity", "INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n"},
		{"notArity", "INPUT(a)\nINPUT(b)\nz = NOT(a, b)\nOUTPUT(z)\n"},
		{"emptyArg", "INPUT(a)\nz = AND(a,, a)\n"},
		{"undrivenPO", "INPUT(a)\nOUTPUT(zz)\n"},
		{"cycle", "INPUT(a)\nx = AND(a, y)\ny = AND(a, x)\nOUTPUT(y)\n"},
	}
	for _, c := range cases {
		if _, err := ParseBenchString(c.name, c.text); err == nil {
			t.Errorf("%s: parse succeeded, want error", c.name)
		}
	}
}

func TestSelfLoopThroughDFFAllowed(t *testing.T) {
	// Feedback through a flip-flop is legal in a synchronous circuit.
	text := "INPUT(a)\nq = DFF(z)\nz = AND(a, q)\nOUTPUT(z)\n"
	if _, err := ParseBenchString("ffloop", text); err != nil {
		t.Fatalf("DFF feedback rejected: %v", err)
	}
}

func TestCommentsAndCase(t *testing.T) {
	text := "input(a) # the input\n  Output(a)  \n"
	c, err := ParseBenchString("cc", text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(c.PIs) != 1 || len(c.POs) != 1 {
		t.Errorf("got %d PIs %d POs", len(c.PIs), len(c.POs))
	}
}

func TestDecompose(t *testing.T) {
	b := NewBuilder("wide")
	in := make([]string, 9)
	for i := range in {
		in[i] = string(rune('a' + i))
		b.Input(in[i])
	}
	b.Gate("z", logic.OpNand, in...)
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Gates {
		if n := len(d.Gates[i].Fanin); n > 4 {
			t.Errorf("gate %s still has %d fanins", d.Gates[i].Name, n)
		}
	}
	if _, ok := d.ByName("z"); !ok {
		t.Fatal("root gate lost")
	}
	// Exhaustively verify functional equivalence over a sample of inputs.
	for trial := 0; trial < 512; trial++ {
		vals := make(map[string]logic.V)
		pat := trial
		for _, n := range in {
			vals[n] = logic.V(pat % 3)
			pat /= 3
		}
		want := evalFlat(t, c, vals, "z")
		got := evalFlat(t, d, vals, "z")
		if want != got {
			t.Fatalf("decompose changed function at %v: %v vs %v", vals, want, got)
		}
	}
}

// evalFlat evaluates a purely combinational circuit in level order.
func evalFlat(t *testing.T, c *Circuit, piVals map[string]logic.V, out string) logic.V {
	t.Helper()
	val := make([]logic.V, len(c.Gates))
	for _, pi := range c.PIs {
		val[pi] = piVals[c.Gate(pi).Name]
	}
	for _, lv := range c.Levels {
		for _, id := range lv {
			g := c.Gate(id)
			in := make([]logic.V, len(g.Fanin))
			for j, f := range g.Fanin {
				in[j] = val[f]
			}
			val[id] = logic.Eval(g.Op, in)
		}
	}
	return val[c.MustByName(out)]
}

func TestDecomposeXnor(t *testing.T) {
	b := NewBuilder("xn")
	in := []string{"a", "b", "c", "d", "e"}
	for _, n := range in {
		b.Input(n)
	}
	b.Gate("z", logic.OpXnor, in...)
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 1<<len(in); trial++ {
		vals := make(map[string]logic.V)
		for i, n := range in {
			vals[n] = logic.V((trial >> i) & 1)
		}
		if w, g := evalFlat(t, c, vals, "z"), evalFlat(t, d, vals, "z"); w != g {
			t.Fatalf("XNOR decompose wrong at %v: %v vs %v", vals, w, g)
		}
	}
}

func TestDecomposeRejectsSmallLimit(t *testing.T) {
	c := parseS27(t)
	if _, err := Decompose(c, 1); err == nil {
		t.Error("Decompose(1) succeeded, want error")
	}
}

func TestMustByNamePanics(t *testing.T) {
	c := parseS27(t)
	defer func() {
		if recover() == nil {
			t.Error("MustByName on missing gate did not panic")
		}
	}()
	c.MustByName("nope")
}

func TestDuplicateOutputDeclaration(t *testing.T) {
	text := "INPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n"
	c, err := ParseBenchString("dup", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.POs) != 1 {
		t.Errorf("duplicate OUTPUT produced %d POs", len(c.POs))
	}
}

func TestStatsString(t *testing.T) {
	c := parseS27(t)
	s := c.Stats().String()
	if !strings.Contains(s, "s27") || !strings.Contains(s, "10 gates") {
		t.Errorf("Stats.String() = %q", s)
	}
}
