package obs

import (
	"log/slog"
	"testing"
)

// TestNilObsZeroAllocs is the disabled-path regression gate (run in CI):
// every handle operation on the nil fast path must cost zero heap
// allocations, so engines can instrument hot loops unconditionally.
func TestNilObsZeroAllocs(t *testing.T) {
	var (
		r  *Registry
		c  *Counter
		g  *Gauge
		h  *Histogram
		l  *FaultLog
		o  *Observer
		lg *Logger
		fr *FlightRecorder
	)
	checks := map[string]func(){
		"counter.add":    func() { c.Add(1) },
		"gauge.set":      func() { g.Set(1) },
		"gauge.setmax":   func() { g.SetMax(1) },
		"hist.observe":   func() { h.Observe(1) },
		"hist.quantile":  func() { _ = h.Quantile(0.9) },
		"registry.hand":  func() { _ = r.Counter("x") },
		"faultlog.emit":  func() { l.Emit(FaultEvent{Fault: 1}) },
		"faultlog.track": func() { _ = l.Tracks(1) },
		"observer.span":  func() { o.Span("x").End() },
		// Note logger.With is absent: it is a per-job setup call whose
		// attrs intentionally escape into the handler, not a hot path.
		"logger.info": func() { lg.Info("msg", slog.Int("shard", 1)) },
		"flight.record": func() { fr.Record("kind", "detail") },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the nil fast path, want 0", name, allocs)
		}
	}
}

// TestEnabledHandleZeroAllocs asserts the steady-state cost of enabled
// handles: after registration, Add/Set/Observe never allocate either.
func TestEnabledHandleZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 2, 10))
	checks := map[string]func(){
		"counter.add":  func() { c.Add(1) },
		"gauge.set":    func() { g.Set(1) },
		"hist.observe": func() { h.Observe(3) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the enabled path, want 0", name, allocs)
		}
	}
}

// BenchmarkDisabledCounter measures the nil fast path an instrumented
// hot loop pays when observability is off: expected ~1 ns and 0 B/op.
func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkDisabledHistogram is the nil fast path of Observe.
func BenchmarkDisabledHistogram(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkDisabledFaultLog is the nil fast path of the lifecycle log.
func BenchmarkDisabledFaultLog(b *testing.B) {
	var l *FaultLog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(FaultEvent{Vec: int32(i), Fault: 1, Kind: FaultDiverged})
	}
}

// BenchmarkDisabledLogger is the nil fast path of structured logging:
// the attrs fold into a slice that never escapes (slog.LogAttrs copies
// them into the record's inline array), so the disabled cost is the nil
// check alone.
func BenchmarkDisabledLogger(b *testing.B) {
	var lg *Logger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg.Info("job running", slog.Int("shard", i))
	}
}

// BenchmarkDisabledFlight is the nil fast path of the flight recorder.
func BenchmarkDisabledFlight(b *testing.B) {
	var fr *FlightRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr.Record("shard_start", "detail")
	}
}

// BenchmarkEnabledCounter is the enabled-path cost (one atomic add).
func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledHistogram is the enabled-path cost of Observe over the
// standard exponential duration layout.
func BenchmarkEnabledHistogram(b *testing.B) {
	h := NewRegistry().Histogram("h", ExpBuckets(1000, 4, 12))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
