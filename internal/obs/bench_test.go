package obs

import "testing"

// TestNilObsZeroAllocs is the disabled-path regression gate (run in CI):
// every handle operation on the nil fast path must cost zero heap
// allocations, so engines can instrument hot loops unconditionally.
func TestNilObsZeroAllocs(t *testing.T) {
	var (
		r *Registry
		c *Counter
		g *Gauge
		h *Histogram
		l *FaultLog
		o *Observer
	)
	checks := map[string]func(){
		"counter.add":    func() { c.Add(1) },
		"gauge.set":      func() { g.Set(1) },
		"gauge.setmax":   func() { g.SetMax(1) },
		"hist.observe":   func() { h.Observe(1) },
		"registry.hand":  func() { _ = r.Counter("x") },
		"faultlog.emit":  func() { l.Emit(FaultEvent{Fault: 1}) },
		"faultlog.track": func() { _ = l.Tracks(1) },
		"observer.span":  func() { o.Span("x").End() },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the nil fast path, want 0", name, allocs)
		}
	}
}

// TestEnabledHandleZeroAllocs asserts the steady-state cost of enabled
// handles: after registration, Add/Set/Observe never allocate either.
func TestEnabledHandleZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 2, 10))
	checks := map[string]func(){
		"counter.add":  func() { c.Add(1) },
		"gauge.set":    func() { g.Set(1) },
		"hist.observe": func() { h.Observe(3) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the enabled path, want 0", name, allocs)
		}
	}
}

// BenchmarkDisabledCounter measures the nil fast path an instrumented
// hot loop pays when observability is off: expected ~1 ns and 0 B/op.
func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkDisabledHistogram is the nil fast path of Observe.
func BenchmarkDisabledHistogram(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkDisabledFaultLog is the nil fast path of the lifecycle log.
func BenchmarkDisabledFaultLog(b *testing.B) {
	var l *FaultLog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(FaultEvent{Vec: int32(i), Fault: 1, Kind: FaultDiverged})
	}
}

// BenchmarkEnabledCounter is the enabled-path cost (one atomic add).
func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledHistogram is the enabled-path cost of Observe over the
// standard exponential duration layout.
func BenchmarkEnabledHistogram(b *testing.B) {
	h := NewRegistry().Histogram("h", ExpBuckets(1000, 4, 12))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
