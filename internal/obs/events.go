package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// FaultEventKind enumerates the lifecycle stages of one faulty machine.
type FaultEventKind uint8

// The fault lifecycle. A fault is injected when its site is registered
// with a simulator, diverges when it first needs an explicit element at a
// gate, becomes visible when its output differs from the good machine at
// a fanout point, latches when a differing state is captured by a
// flip-flop (the only way a fault survives a cycle), may be potentially
// detected (X vs binary at a PO), is detected on a binary mismatch at a
// PO, and is dropped — its elements reclaimed — immediately after
// detection. Convergence events mark elements reclaimed because the
// faulty machine's state rejoined the good machine.
const (
	FaultInjected FaultEventKind = iota
	FaultDiverged
	FaultConverged
	FaultVisible
	FaultLatched
	FaultPotDetected
	FaultDetected
	FaultDropped
)

var faultEventNames = [...]string{
	FaultInjected:    "injected",
	FaultDiverged:    "diverged",
	FaultConverged:   "converged",
	FaultVisible:     "became-visible",
	FaultLatched:     "latched-to-FF",
	FaultPotDetected: "potentially-detected",
	FaultDetected:    "detected",
	FaultDropped:     "dropped",
}

// String returns the event-stream spelling of the kind.
func (k FaultEventKind) String() string {
	if int(k) < len(faultEventNames) {
		return faultEventNames[k]
	}
	return fmt.Sprintf("fault-event(%d)", k)
}

// FaultEvent is one lifecycle observation.
type FaultEvent struct {
	// Vec is the vector index; -1 for construction-time events.
	Vec int32 `json:"vec"`
	// Fault is the fault ID the event concerns.
	Fault int32 `json:"fault"`
	// Gate is the netlist gate (or macro root) where the event occurred.
	Gate int32 `json:"gate"`
	// Kind classifies the lifecycle transition.
	Kind FaultEventKind `json:"-"`
}

// MarshalJSON spells the kind symbolically.
func (e FaultEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Vec   int32  `json:"vec"`
		Fault int32  `json:"fault"`
		Gate  int32  `json:"gate"`
		Event string `json:"event"`
	}{e.Vec, e.Fault, e.Gate, e.Kind.String()})
}

// FaultLog collects lifecycle events for a sampled subset of fault IDs
// (the -trace-faults filter). The nil *FaultLog is the disabled state:
// Tracks reports false and Emit is a no-op. A single log may be shared by
// the csim-P partition workers; Emit serializes internally.
type FaultLog struct {
	track []bool // nil = track every fault
	limit int

	mu      sync.Mutex
	events  []FaultEvent
	clipped bool
}

// DefaultFaultLogLimit caps an unbounded log (tracking every fault on a
// large run would otherwise dominate memory).
const DefaultFaultLogLimit = 1 << 20

// NewFaultLog returns a log tracking the given fault IDs out of a
// universe of n faults; ids == nil tracks every fault. limit <= 0 uses
// DefaultFaultLogLimit.
func NewFaultLog(n int, ids []int32, limit int) *FaultLog {
	l := &FaultLog{limit: limit}
	if l.limit <= 0 {
		l.limit = DefaultFaultLogLimit
	}
	if ids != nil {
		l.track = make([]bool, n)
		for _, id := range ids {
			if id >= 0 && int(id) < n {
				l.track[id] = true
			}
		}
	}
	return l
}

// Tracks reports whether fault f is sampled (false on nil).
func (l *FaultLog) Tracks(f int32) bool {
	if l == nil {
		return false
	}
	if l.track == nil {
		return true
	}
	return int(f) < len(l.track) && l.track[f]
}

// Emit records one event if the fault is sampled and the log has room.
func (l *FaultLog) Emit(ev FaultEvent) {
	if l == nil || !l.Tracks(ev.Fault) {
		return
	}
	l.mu.Lock()
	if len(l.events) < l.limit {
		l.events = append(l.events, ev)
	} else {
		l.clipped = true
	}
	l.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
// Clipped reports whether the limit discarded any.
func (l *FaultLog) Events() (events []FaultEvent, clipped bool) {
	if l == nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]FaultEvent(nil), l.events...), l.clipped
}

// WriteJSON writes the event stream as an indented JSON document
// {"events": [...], "clipped": bool}.
func (l *FaultLog) WriteJSON(w io.Writer) error {
	events, clipped := l.Events()
	if events == nil {
		events = []FaultEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Events  []FaultEvent `json:"events"`
		Clipped bool         `json:"clipped"`
	}{events, clipped})
}
