package obs

import (
	"fmt"
	"sync"
	"time"
)

// DefaultFlightEvents is the flight-recorder ring capacity used when a
// caller passes a non-positive one.
const DefaultFlightEvents = 256

// FlightEvent is one entry in a job's flight recorder: a timestamped
// lifecycle marker (admitted, queued, cache hit/miss, scheduler
// verdict, shard start/finish, repair, merge, finish).
type FlightEvent struct {
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Kind is the event class (admitted, queued, cache, decide,
	// shard_start, shard_finish, repair, merge, run_start, finish).
	Kind string `json:"kind"`
	// Detail is the human-readable specifics (chosen K×W split, shard
	// index and fault count, repair totals, ...).
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is a bounded ring buffer of FlightEvents, one per job:
// cheap enough to run on every job, complete enough that dumping it on
// failure/timeout/cancellation yields a useful postmortem. Once the
// ring is full the oldest events are overwritten and counted as
// dropped. The nil *FlightRecorder is the disabled state: Record and
// Recordf no-op (Recordf before formatting, so disabled call sites pay
// no fmt cost), Events returns nil.
type FlightRecorder struct {
	mu sync.Mutex
	//simlint:guarded_by(mu)
	buf []FlightEvent
	//simlint:guarded_by(mu)
	next int // write position once the ring is full
	//simlint:guarded_by(mu)
	full bool
	//simlint:guarded_by(mu)
	dropped int64
}

// NewFlightRecorder builds a recorder holding at most capacity events
// (DefaultFlightEvents when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, capacity)}
}

// Record appends one event, evicting the oldest when the ring is full.
func (f *FlightRecorder) Record(kind, detail string) {
	if f == nil {
		return
	}
	ev := FlightEvent{Time: time.Now(), Kind: kind, Detail: detail}
	f.mu.Lock()
	if !f.full {
		f.buf = append(f.buf, ev)
		if len(f.buf) == cap(f.buf) {
			f.full = true
		}
	} else {
		f.buf[f.next] = ev
		f.next++
		if f.next == len(f.buf) {
			f.next = 0
		}
		f.dropped++
	}
	f.mu.Unlock()
}

// Recordf is Record with fmt.Sprintf formatting for the detail; the
// format work happens after the nil check, so a disabled recorder costs
// only the check.
func (f *FlightRecorder) Recordf(kind, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(kind, fmt.Sprintf(format, args...))
}

// Events returns the retained events oldest-first (nil on a nil
// recorder).
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	if f.full {
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
	} else {
		out = append(out, f.buf...)
	}
	return out
}

// Len returns the number of retained events (0 on nil).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Dropped returns how many events were evicted to make room (0 on nil).
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}
