package obs

import (
	"context"
	"log/slog"
)

// Logger is the structured-logging handle, a thin nil-safe wrapper over
// log/slog. It follows the same discipline as the nil *Registry: the
// nil *Logger is the disabled state, every method no-ops on it, and the
// attr-building call sites fold to an inlined nil check with zero
// allocations (slog.LogAttrs copies the variadic attrs into the
// record's inline array, so the slice never escapes). Engines and the
// service therefore log unconditionally and let a nil handle switch the
// whole path off.
type Logger struct {
	s *slog.Logger
}

// NewLogger wraps a slog handler; a nil handler yields the disabled
// (nil) logger.
func NewLogger(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{s: slog.New(h)}
}

// With returns a logger whose every record carries attrs (e.g. the job
// correlation ID and engine, attached once at job start). Nil-safe: the
// nil logger stays nil.
func (l *Logger) With(attrs ...slog.Attr) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	return &Logger{s: slog.New(l.s.Handler().WithAttrs(attrs))}
}

// Enabled reports whether records at the given level would be emitted
// (false on nil) — for guarding attr construction that is itself
// expensive.
func (l *Logger) Enabled(level slog.Level) bool {
	return l != nil && l.s.Enabled(context.Background(), level)
}

// Debug emits a debug-level record.
func (l *Logger) Debug(msg string, attrs ...slog.Attr) { l.emit(slog.LevelDebug, msg, attrs) }

// Info emits an info-level record.
func (l *Logger) Info(msg string, attrs ...slog.Attr) { l.emit(slog.LevelInfo, msg, attrs) }

// Warn emits a warn-level record.
func (l *Logger) Warn(msg string, attrs ...slog.Attr) { l.emit(slog.LevelWarn, msg, attrs) }

// Error emits an error-level record.
func (l *Logger) Error(msg string, attrs ...slog.Attr) { l.emit(slog.LevelError, msg, attrs) }

// emit funnels every level through the one nil check and LogAttrs call.
func (l *Logger) emit(level slog.Level, msg string, attrs []slog.Attr) {
	if l == nil {
		return
	}
	l.s.LogAttrs(context.Background(), level, msg, attrs...)
}

// jobIDKey is the context key for the job correlation ID.
type jobIDKey struct{}

// WithJobID returns a context carrying the job correlation ID. The ID
// is minted (or accepted from the X-Csim-Job-Id header) at csimd
// admission and follows the job through queue, cache, scheduler
// decision and engine shards; ServeClient forwards it on outbound
// requests so a future coordinator→worker fan-out stays traceable
// end-to-end.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey{}, id)
}

// JobIDFrom extracts the job correlation ID from ctx ("" when absent).
func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}
