// Package obs is the simulation observability layer: a typed metric
// registry (counters, gauges, fixed-bucket histograms), a span-style phase
// tracer emitting chrome://tracing JSON, a fault-lifecycle event log, and
// opt-in expvar/pprof HTTP serving.
//
// The package is built around a nil fast path: every handle method —
// Counter.Add, Gauge.Set, Histogram.Observe, Tracer.Span, Span.End,
// FaultLog.Emit — is a no-op on a nil receiver, and a nil *Registry hands
// out nil handles. An engine therefore registers its metrics once at
// construction and instruments its hot paths unconditionally; when
// observability is disabled the instrumentation folds to an inlined nil
// check with zero allocations (asserted by this package's benchmarks and
// the CI regression gate).
//
// All handles are safe for concurrent use (atomics), so the csim-P
// partition workers publish into one shared registry without locking.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the snapshot spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Counter is a monotonically increasing metric. The nil Counter is a
// valid no-op handle.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value. The nil Gauge is a valid no-op handle.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is greater (high-water marks).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into a fixed ascending bucket layout.
// An observation v lands in the first bucket with v <= bound; values
// above the last bound land in the implicit overflow bucket. The nil
// Histogram is a valid no-op handle.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the bucket bounds and per-bucket counts; the final
// count is the overflow bucket (values above the last bound).
func (h *Histogram) Buckets() (bounds []int64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]int64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation inside the fixed bucket layout:
// the target rank q·n is located in the cumulative bucket counts and
// mapped to a value between the bucket's lower and upper bound. The
// first bucket interpolates from 0; ranks landing in the overflow
// bucket clamp to the last bound (there is no upper edge to
// interpolate toward). Returns 0 on a nil or empty histogram. This is
// the one quantile implementation in the tree — the load harness and
// the service's SLO burn-rate gauges both call it.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Sum a consistent view of the per-bucket counts rather than trusting
	// h.n: concurrent Observe calls bump counts and n separately, and the
	// walk below must never run past its own total.
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: unbounded above, clamp to the last bound.
			return float64(h.bounds[len(h.bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(h.bounds[i-1])
		}
		hi := float64(h.bounds[i])
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + frac*(hi-lo)
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// NewHistogram builds a standalone histogram with the given ascending
// bounds, outside any registry — for callers that want Observe/Quantile
// over a private sample set (the load harness) without publishing a
// metric. Panics if bounds are empty or not strictly ascending.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: NewHistogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: NewHistogram bounds not ascending")
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets builds n ascending bounds starting at start, each factor
// times the previous — the fixed layouts used for durations and sizes.
func ExpBuckets(start, factor int64, n int) []int64 {
	if start <= 0 || factor < 2 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor >= 2, n > 0")
	}
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is one registry entry.
type metric struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics. The nil *Registry is the disabled state:
// it hands out nil handles whose methods are no-ops.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
	order  []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func (r *Registry) lookup(name string, kind Kind) *metric {
	m, ok := r.byName[name]
	if !ok {
		return nil
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s",
			name, m.kind, kind))
	}
	return m
}

// Counter registers (or returns the existing) counter under name. A nil
// registry returns a nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, KindCounter); m != nil {
		return m.c
	}
	m := &metric{name: name, kind: KindCounter, c: &Counter{}}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m.c
}

// Gauge registers (or returns the existing) gauge under name. A nil
// registry returns a nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, KindGauge); m != nil {
		return m.g
	}
	m := &metric{name: name, kind: KindGauge, g: &Gauge{}}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m.g
}

// Histogram registers (or returns the existing) histogram under name with
// the given ascending bounds. A nil registry returns a nil handle;
// re-registering with different bounds panics.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, KindHistogram); m != nil {
		if len(m.h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		for i := range bounds {
			if m.h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
			}
		}
		return m.h
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	m := &metric{name: name, kind: KindHistogram, h: h}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m.h
}

// Point is one metric in a snapshot.
type Point struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Kind is the metric kind's snapshot spelling.
	Kind string `json:"kind"`
	// Value is the counter or gauge value.
	Value int64 `json:"value,omitempty"`

	// Count is the histogram observation count.
	Count int64 `json:"count,omitempty"`
	// Sum is the histogram's observed-value sum.
	Sum int64 `json:"sum,omitempty"`
	// Bounds are the histogram's ascending bucket bounds.
	Bounds []int64 `json:"bounds,omitempty"`
	// Buckets are the per-bucket counts: len(Bounds)+1, last = overflow.
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot returns the current value of every metric, sorted by name. A
// nil registry snapshots empty.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	out := make([]Point, 0, len(metrics))
	for _, m := range metrics {
		p := Point{Name: m.name, Kind: m.kind.String()}
		switch m.kind {
		case KindCounter:
			p.Value = m.c.Value()
		case KindGauge:
			p.Value = m.g.Value()
		case KindHistogram:
			p.Count = m.h.Count()
			p.Sum = m.h.Sum()
			p.Bounds, p.Buckets = m.h.Buckets()
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the snapshot point for one metric and whether it exists.
func (r *Registry) Get(name string) (Point, bool) {
	for _, p := range r.Snapshot() {
		if p.Name == name {
			return p, true
		}
	}
	return Point{}, false
}

// WriteJSON writes the snapshot as an indented JSON document
// {"metrics": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Point `json:"metrics"`
	}{r.Snapshot()})
}

// Observer bundles the observability sinks an engine can be given. A
// nil *Observer — and any nil field of a non-nil one — disables that
// aspect with the zero-cost fast path.
type Observer struct {
	// Metrics receives counter/gauge/histogram updates.
	Metrics *Registry
	// Tracer records span-style phase timings.
	Tracer *Tracer
	// Faults records per-fault lifecycle events.
	Faults *FaultLog
	// Log receives structured log records (nil disables logging).
	Log *Logger
	// Flight receives job-lifecycle flight-recorder events.
	Flight *FlightRecorder
}

// Registry returns the metric registry (nil when disabled).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// FaultLog returns the fault-lifecycle log (nil when disabled).
func (o *Observer) FaultLog() *FaultLog {
	if o == nil {
		return nil
	}
	return o.Faults
}

// Logger returns the structured logger (nil when disabled).
func (o *Observer) Logger() *Logger {
	if o == nil {
		return nil
	}
	return o.Log
}

// Recorder returns the flight recorder (nil when disabled).
func (o *Observer) Recorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// Span opens a span on the observer's tracer (nil-safe).
func (o *Observer) Span(name string) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.Span(name)
}

// SpanTID opens a span attributed to a specific trace lane (e.g. one
// csim-P worker).
func (o *Observer) SpanTID(name string, tid int) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.SpanTID(name, tid)
}
