package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"strings"
	"testing"
)

// TestHistogramQuantile pins the interpolation: a uniform fill of
// 1..100 into ten equal buckets must put the q-quantile at ~100q.
func TestHistogramQuantile(t *testing.T) {
	bounds := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := NewHistogram(bounds)
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}, {0.0, 0},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1.0 {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileEdges covers the empty, nil, and overflow cases.
func TestHistogramQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	h := NewHistogram([]int64{10, 100})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	// All mass in the overflow bucket clamps to the last bound.
	h.Observe(5000)
	h.Observe(9000)
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("overflow Quantile = %v, want 100 (last bound)", got)
	}
}

// TestWritePrometheusRoundTrip feeds the writer's own output through
// the exposition checker and spot-checks the emitted series.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs_total").Add(7)
	r.Gauge("sched.fault_shards").Set(4)
	h := r.Histogram("serve.job_run_ns", ExpBuckets(1000, 10, 3))
	h.Observe(500)    // first bucket
	h.Observe(5000)   // second
	h.Observe(999999) // overflow
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE serve_jobs_total counter",
		"serve_jobs_total 7",
		"# TYPE sched_fault_shards gauge",
		"sched_fault_shards 4",
		"# TYPE serve_job_run_ns histogram",
		`serve_job_run_ns_bucket{le="1000"} 1`,
		`serve_job_run_ns_bucket{le="10000"} 2`,
		`serve_job_run_ns_bucket{le="+Inf"} 3`,
		"serve_job_run_ns_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	n, err := CheckExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("CheckExposition rejected our own output: %v\n%s", err, text)
	}
	if n < 7 {
		t.Errorf("CheckExposition validated %d samples, want >= 7", n)
	}
}

// TestCheckExpositionRejects pins the checker against malformed
// payloads so the CI scrape validation means something.
func TestCheckExpositionRejects(t *testing.T) {
	for name, payload := range map[string]string{
		"bad-name":          "# TYPE ok counter\n0bad 1\n",
		"bad-value":         "# TYPE x counter\nx one\n",
		"no-type":           "lonely 3\n",
		"missing-inf":       "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":    "# TYPE h histogram\nh_bucket{le=\"10\"} 5\nh_bucket{le=\"20\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"count-vs-inf":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
		"descending-bounds": "# TYPE h histogram\nh_bucket{le=\"20\"} 1\nh_bucket{le=\"10\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
	} {
		if _, err := CheckExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: CheckExposition accepted malformed payload:\n%s", name, payload)
		}
	}
}

// TestFlightRecorderWraparound fills a small ring past capacity and
// checks the retained window is the newest events, oldest-first, with
// the overwritten ones counted as dropped.
func TestFlightRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Recordf("ev", "%d", i)
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("%d", 6+i); ev.Detail != want {
			t.Errorf("event %d detail = %q, want %q", i, ev.Detail, want)
		}
		if ev.Kind != "ev" {
			t.Errorf("event %d kind = %q", i, ev.Kind)
		}
	}
	if got := fr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	if got := fr.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	// Timestamps must be monotone non-decreasing oldest-first.
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Errorf("event %d timestamp before event %d", i, i-1)
		}
	}
}

// TestFlightRecorderNil pins the disabled state.
func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.Record("x", "y")
	fr.Recordf("x", "%d", 1)
	if fr.Events() != nil || fr.Len() != 0 || fr.Dropped() != 0 {
		t.Error("nil recorder must be inert")
	}
}

// TestLoggerAttrs checks the JSON handler path end-to-end: With-bound
// attrs plus per-record attrs all land in the record.
func TestLoggerAttrs(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	jl := lg.With(slog.String("job_id", "j42"), slog.String("engine", "csim-grid"))
	jl.Info("job running", slog.String("phase", "run"), slog.Int("shard", 3))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log record is not JSON: %v (%q)", err, buf.String())
	}
	for k, want := range map[string]any{
		"msg": "job running", "job_id": "j42", "engine": "csim-grid",
		"phase": "run", "shard": float64(3), "level": "INFO",
	} {
		if rec[k] != want {
			t.Errorf("record[%q] = %v, want %v", k, rec[k], want)
		}
	}
	if !lg.Enabled(slog.LevelDebug) {
		t.Error("Enabled(debug) = false on a debug-level handler")
	}
}

// TestLoggerNil pins the disabled state: nil in, nil out, no panics.
func TestLoggerNil(t *testing.T) {
	if NewLogger(nil) != nil {
		t.Error("NewLogger(nil) must return the disabled logger")
	}
	var lg *Logger
	if lg.With(slog.String("k", "v")) != nil {
		t.Error("nil.With must stay nil")
	}
	lg.Debug("x")
	lg.Info("x")
	lg.Warn("x")
	lg.Error("x")
	if lg.Enabled(slog.LevelError) {
		t.Error("nil logger must report disabled")
	}
}

// TestJobIDContext round-trips the correlation ID through a context.
func TestJobIDContext(t *testing.T) {
	ctx := context.Background()
	if got := JobIDFrom(ctx); got != "" {
		t.Errorf("JobIDFrom(empty ctx) = %q, want empty", got)
	}
	ctx = WithJobID(ctx, "grid-7")
	if got := JobIDFrom(ctx); got != "grid-7" {
		t.Errorf("JobIDFrom = %q, want grid-7", got)
	}
}

// TestSampleRuntime checks the runtime. gauges exist and are sane after
// one sample; nil registry must be a no-op.
func TestSampleRuntime(t *testing.T) {
	SampleRuntime(nil)
	r := NewRegistry()
	SampleRuntime(r)
	p, ok := r.Get("runtime.goroutines")
	if !ok || p.Value < 1 {
		t.Errorf("runtime.goroutines = %+v (ok=%v), want >= 1", p, ok)
	}
	if _, ok := r.Get("runtime.heap_objects_bytes"); !ok {
		t.Error("runtime.heap_objects_bytes not published")
	}
	for _, name := range []string{
		"runtime.gc_cycles",
		"runtime.gc_pause_p50_ns", "runtime.gc_pause_p99_ns",
		"runtime.sched_latency_p50_ns", "runtime.sched_latency_p99_ns",
	} {
		if _, ok := r.Get(name); !ok {
			t.Errorf("%s not published", name)
		}
	}
}
