package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("evals")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("evals"); again != c {
		t.Fatalf("re-registering a counter must return the same handle")
	}

	g := r.Gauge("cur_elems")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax(3) lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax(9) = %d, want 9", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering %q as gauge after counter must panic", "x")
		}
	}()
	r.Gauge("x")
}

// TestHistogramBucketEdges pins the boundary semantics: a value lands in
// the first bucket whose bound is >= the value; values above the last
// bound land in the overflow bucket; negatives land in the first bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})

	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0},   // below everything
		{0, 0},    // min in-range
		{9, 0},    // strictly inside first
		{10, 0},   // exact first bound → first bucket
		{11, 1},   // just past first bound
		{100, 1},  // exact middle bound
		{1000, 2}, // exact last bound
		{1001, 3}, // overflow
	}
	for _, tc := range cases {
		h.Observe(tc.v)
	}
	_, counts := h.Buckets()
	want := make([]int64, 4)
	var sum int64
	for _, tc := range cases {
		want[tc.bucket]++
		sum += tc.v
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != int64(len(cases)) || h.Sum() != sum {
		t.Fatalf("count/sum = %d/%d, want %d/%d", h.Count(), h.Sum(), len(cases), sum)
	}
}

func TestHistogramReregisterDifferentBoundsPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []int64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering with different bounds must panic")
		}
	}()
	r.Histogram("h", []int64{1, 3})
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1000, 4, 5)
	want := []int64{1000, 4000, 16000, 64000, 256000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Gauge("a.level").Set(-1)
	r.Histogram("c.hist", []int64{5}).Observe(7)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(snap))
	}
	// Sorted by name.
	if snap[0].Name != "a.level" || snap[1].Name != "b.count" || snap[2].Name != "c.hist" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[2].Count != 1 || snap[2].Buckets[1] != 1 {
		t.Fatalf("histogram point wrong: %+v", snap[2])
	}
	if p, ok := r.Get("b.count"); !ok || p.Value != 3 {
		t.Fatalf("Get(b.count) = %+v, %v", p, ok)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Point `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("JSON round-trip lost metrics: %+v", doc.Metrics)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge(fmt.Sprintf("worker%d.depth", w))
			h := r.Histogram("hist", []int64{8, 64})
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if p, _ := r.Get("shared"); p.Value != 8000 {
		t.Fatalf("shared counter = %d, want 8000", p.Value)
	}
	if p, _ := r.Get("hist"); p.Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", p.Count)
	}
}

func TestTracerSpansAndChromeTrace(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	sp := tr.Span("good-sim")
	time.Sleep(time.Millisecond)
	sp.End()
	sp2 := tr.SpanTID("worker", 3)
	sp2.End()

	durs := tr.PhaseDurations()
	if durs["good-sim"] <= 0 {
		t.Fatalf("good-sim duration not recorded: %v", durs)
	}
	if p, ok := r.Get("phase.good-sim_ns"); !ok || p.Value <= 0 {
		t.Fatalf("phase duration counter missing: %+v, %v", p, ok)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "X" || doc.TraceEvents[0].Dur <= 0 {
		t.Fatalf("span not serialized as a complete event: %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].TID != 3 {
		t.Fatalf("worker lane lost: %+v", doc.TraceEvents[1])
	}
}

func TestTracerAllocDeltas(t *testing.T) {
	tr := NewTracer(nil)
	tr.AllocDeltas = true
	sp := tr.Span("alloc-heavy")
	sink := make([]byte, 1<<20)
	_ = sink
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alloc_bytes") {
		t.Fatalf("alloc delta missing from trace:\n%s", buf.String())
	}
}

func TestFaultLogFilterAndLimit(t *testing.T) {
	l := NewFaultLog(10, []int32{2, 5}, 3)
	if l.Tracks(3) || !l.Tracks(2) || !l.Tracks(5) {
		t.Fatalf("filter wrong")
	}
	for i := 0; i < 5; i++ {
		l.Emit(FaultEvent{Vec: int32(i), Fault: 2, Kind: FaultDiverged})
		l.Emit(FaultEvent{Vec: int32(i), Fault: 3, Kind: FaultDiverged}) // filtered out
	}
	events, clipped := l.Events()
	if len(events) != 3 || !clipped {
		t.Fatalf("got %d events (clipped=%v), want 3 clipped", len(events), clipped)
	}

	all := NewFaultLog(10, nil, 0)
	if !all.Tracks(9) {
		t.Fatalf("nil ids must track every fault")
	}

	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"event": "diverged"`) {
		t.Fatalf("event kind not spelled symbolically:\n%s", buf.String())
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if o.Registry() != nil || o.FaultLog() != nil {
		t.Fatalf("nil observer must hand out nil sinks")
	}
	o.Span("x").End() // must not panic
	o.SpanTID("x", 1).End()

	o2 := &Observer{} // all sinks nil
	o2.Span("y").End()
	if o2.Registry().Counter("c") != nil {
		t.Fatalf("nil registry must hand out nil counters")
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("csim.evals").Add(123)
	PublishExpvar("faultsim_metrics", r)
	// Republishing must rebind, not panic.
	PublishExpvar("faultsim_metrics", r)

	addr, stop, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if body := get("/metricsz"); !strings.Contains(body, "csim.evals") {
		t.Fatalf("/metricsz missing registry metric:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "faultsim_metrics") {
		t.Fatalf("/debug/vars missing published registry:\n%s", body)
	}
	if body := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/goroutine not serving:\n%s", body)
	}
}
