package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes a registry metric name into the Prometheus data
// model ([a-zA-Z_:][a-zA-Z0-9_:]*): the registry's dotted hierarchy and
// engine dashes map to underscores, and a leading digit gets an
// underscore prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket series with an le="+Inf"
// bucket plus _sum and _count. A nil registry writes nothing. Metric
// names pass through promName, so the registry's dotted names arrive as
// e.g. serve_job_run_ns_bucket{le="16384"}.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range r.Snapshot() {
		name := promName(p.Name)
		fmt.Fprintf(bw, "# HELP %s %s\n", name, p.Name)
		switch p.Kind {
		case "counter":
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, p.Value)
		case "gauge":
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, p.Value)
		case "histogram":
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			var cum int64
			for i, bound := range p.Bounds {
				cum += p.Buckets[i]
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
			}
			if n := len(p.Bounds); n < len(p.Buckets) {
				cum += p.Buckets[n]
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(bw, "%s_sum %d\n", name, p.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", name, p.Count)
		}
	}
	return bw.Flush()
}

// promFamily accumulates what CheckExposition has seen of one metric
// family while scanning the exposition line by line.
type promFamily struct {
	typ        string
	lastLE     float64
	lastBucket float64
	infBucket  float64
	hasInf     bool
	hasSum     bool
	count      float64
	hasCount   bool
	samples    int
}

// CheckExposition validates a Prometheus text-format payload against
// the subset of the 0.0.4 exposition format WritePrometheus emits: well
// formed metric and label names, parseable sample values, a # TYPE line
// before each family's samples, and for histograms cumulative
// non-decreasing buckets ending in le="+Inf" with _count equal to the
// +Inf bucket. It returns the number of samples validated, or an error
// naming the first offending line. This is the checker the serve-smoke
// CI job runs over a live /metricsz?format=prometheus scrape.
func CheckExposition(r io.Reader) (samples int, err error) {
	families := map[string]*promFamily{}
	var order []string
	family := func(name string) *promFamily {
		f, ok := families[name]
		if !ok {
			f = &promFamily{lastLE: -1}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				f := family(fields[2])
				if f.samples > 0 {
					return samples, fmt.Errorf("line %d: # TYPE %s after its samples", lineNo, fields[2])
				}
				if f.typ != "" {
					return samples, fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, fields[2])
				}
				f.typ = fields[3]
			}
			continue
		}
		name, labels, value, perr := parsePromSample(line)
		if perr != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, s)
			if trimmed != name && families[trimmed] != nil && families[trimmed].typ == "histogram" {
				base, suffix = trimmed, s
				break
			}
		}
		f := family(base)
		if f.typ == "" {
			return samples, fmt.Errorf("line %d: sample %s before any # TYPE", lineNo, name)
		}
		f.samples++
		samples++
		if f.typ == "histogram" {
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return samples, fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
				if le == "+Inf" {
					f.hasInf = true
					f.infBucket = value
				} else {
					lev, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return samples, fmt.Errorf("line %d: bad le value %q", lineNo, le)
					}
					if f.lastLE != -1 && lev <= f.lastLE {
						return samples, fmt.Errorf("line %d: le=%q not ascending", lineNo, le)
					}
					f.lastLE = lev
				}
				if value < f.lastBucket {
					return samples, fmt.Errorf("line %d: bucket counts of %s not cumulative", lineNo, base)
				}
				f.lastBucket = value
			case "_sum":
				f.hasSum = true
			case "_count":
				f.hasCount = true
				f.count = value
			default:
				return samples, fmt.Errorf("line %d: histogram %s has non-histogram sample %s", lineNo, base, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	sort.Strings(order)
	for _, name := range order {
		f := families[name]
		if f.typ == "" || f.typ != "histogram" {
			continue
		}
		if !f.hasInf {
			return samples, fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", name)
		}
		if !f.hasSum || !f.hasCount {
			return samples, fmt.Errorf("histogram %s missing _sum or _count", name)
		}
		if f.count != f.infBucket {
			return samples, fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", name, f.count, f.infBucket)
		}
	}
	return samples, nil
}

// parsePromSample splits one exposition sample line into metric name,
// labels and value, enforcing the Prometheus name charsets.
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && isPromNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", nil, 0, fmt.Errorf("bad metric name in %q", line)
	}
	name, rest = rest[:i], rest[i:]
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated labels in %q", line)
		}
		for _, pair := range strings.Split(rest[1:end], ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("bad label %q", pair)
			}
			for j := 0; j < len(k); j++ {
				if !isPromNameChar(k[j], j == 0) {
					return "", nil, 0, fmt.Errorf("bad label name %q", k)
				}
			}
			labels[k] = v[1 : len(v)-1]
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("expected value after %q", name)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	return name, labels, value, nil
}

// isPromNameChar reports whether c is legal in a Prometheus metric or
// label name (digits disallowed in the first position).
func isPromNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
