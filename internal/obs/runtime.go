package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// runtimeSampleNames are the runtime/metrics series the sampler reads;
// the order matches the switch in publishRuntimeSample.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// SampleRuntime reads one runtime/metrics snapshot and publishes it
// into the registry under the runtime. prefix:
//
//	runtime.goroutines            live goroutine count
//	runtime.heap_objects_bytes    bytes in live + unswept heap objects
//	runtime.gc_cycles             completed GC cycles
//	runtime.gc_pause_p50_ns       median stop-the-world GC pause
//	runtime.gc_pause_p99_ns       tail stop-the-world GC pause
//	runtime.sched_latency_p50_ns  median goroutine ready→run latency
//	runtime.sched_latency_p99_ns  tail goroutine ready→run latency
//
// The pause and latency quantiles come from the runtime's own
// accumulated Float64Histograms, interpolated the same way as
// Histogram.Quantile. A nil registry makes this a no-op.
func SampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			setRuntimeGauge(reg, "runtime.goroutines", s)
		case "/memory/classes/heap/objects:bytes":
			setRuntimeGauge(reg, "runtime.heap_objects_bytes", s)
		case "/gc/cycles/total:gc-cycles":
			setRuntimeGauge(reg, "runtime.gc_cycles", s)
		case "/gc/pauses:seconds":
			setRuntimeQuantiles(reg, "runtime.gc_pause", s)
		case "/sched/latencies:seconds":
			setRuntimeQuantiles(reg, "runtime.sched_latency", s)
		}
	}
}

// setRuntimeGauge publishes one scalar runtime sample as a gauge.
func setRuntimeGauge(reg *Registry, name string, s metrics.Sample) {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		reg.Gauge(name).Set(int64(s.Value.Uint64()))
	case metrics.KindFloat64:
		reg.Gauge(name).Set(int64(s.Value.Float64()))
	}
}

// setRuntimeQuantiles publishes the p50/p99 of a seconds-valued runtime
// histogram as <name>_p50_ns / <name>_p99_ns gauges.
func setRuntimeQuantiles(reg *Registry, name string, s metrics.Sample) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := s.Value.Float64Histogram()
	reg.Gauge(name+"_p50_ns").Set(int64(float64HistQuantile(h, 0.50) * 1e9))
	reg.Gauge(name+"_p99_ns").Set(int64(float64HistQuantile(h, 0.99) * 1e9))
}

// float64HistQuantile interpolates the q-quantile of a runtime
// Float64Histogram: Buckets has len(Counts)+1 edges and may open with
// -Inf or close with +Inf, which clamp to the nearest finite edge.
func float64HistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		if c == 0 || float64(cum+c) < rank {
			cum += c
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + frac*(hi-lo)
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return last
}

// StartRuntimeSampler samples the runtime once immediately and then
// every interval (default 5s when interval <= 0) until the returned
// stop function is called. csimd runs one for the lifetime of the
// process so /metricsz always carries fresh runtime. gauges.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	SampleRuntime(reg)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				SampleRuntime(reg)
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(done)
		<-finished
	}
}
