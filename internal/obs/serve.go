package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarBindings indirects the published expvar funcs: expvar.Publish
// panics on duplicate names, so each name is published once and later
// calls just re-point the binding at the new registry.
var (
	expvarMu       sync.Mutex
	expvarBindings = map[string]*Registry{}
)

// PublishExpvar exposes the registry's snapshot under the given expvar
// variable name (served at /debug/vars). Republishing the same name
// rebinds it to r, so tests and repeated runs in one process are safe.
func PublishExpvar(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarBindings[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			bound := expvarBindings[name]
			expvarMu.Unlock()
			return bound.Snapshot()
		}))
	}
	expvarBindings[name] = r
}

// Register mounts the observability endpoints on an existing mux:
//
//	/debug/vars   expvar JSON (including the registry, once published)
//	/debug/pprof  the full net/http/pprof suite
//	/metricsz     the registry snapshot as {"metrics": [...]}; with
//	              ?format=prometheus, the text exposition format instead
//
// csimd composes these with its own job API; Serve uses them standalone.
func Register(mux *http.ServeMux, r *Registry) {
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// Serve starts an HTTP server on addr exposing the Register endpoints.
// It returns the bound address (useful with ":0") and a shutdown
// function. The server runs until stopped; handler errors are ignored.
func Serve(addr string, r *Registry) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	Register(mux, r)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
