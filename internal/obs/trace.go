package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"time"
)

// Tracer records span-style phase timings (parse → collapse →
// macro-extract → good-sim → fault-sim → merge) and serializes them as a
// chrome://tracing JSON document. The nil *Tracer is the disabled state:
// Span returns a nil *Span whose End is a no-op.
//
// When Metrics is set, every completed span also accumulates into the
// counter "phase.<name>_ns", so phase durations appear in metrics.json
// snapshots alongside the engine counters.
type Tracer struct {
	// AllocDeltas samples runtime.MemStats at span boundaries and
	// annotates each span with the bytes allocated inside it. Sampling
	// costs a runtime.ReadMemStats per boundary — enable only for
	// coarse phases, never per-cycle.
	AllocDeltas bool
	// Metrics, when non-nil, receives per-phase duration counters.
	Metrics *Registry

	mu     sync.Mutex
	t0     time.Time
	spans  []spanRecord
	inited bool
}

type spanRecord struct {
	Name       string
	TID        int
	Start, Dur time.Duration
	AllocBytes int64 // -1 when not sampled
}

// NewTracer returns an empty tracer; metrics may be nil.
func NewTracer(metrics *Registry) *Tracer {
	return &Tracer{Metrics: metrics}
}

// Span opens a span in the default lane. Close it with End.
func (t *Tracer) Span(name string) *Span { return t.SpanTID(name, 0) }

// SpanTID opens a span in lane tid (rendered as a chrome://tracing
// thread; csim-P uses one lane per partition worker).
func (t *Tracer) SpanTID(name string, tid int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if !t.inited {
		t.t0 = time.Now()
		t.inited = true
	}
	t0 := t.t0
	t.mu.Unlock()
	sp := &Span{t: t, name: name, tid: tid, start: time.Since(t0), alloc0: -1}
	if t.AllocDeltas {
		sp.alloc0 = int64(readAllocBytes())
	}
	return sp
}

// Span is one open phase. End is nil-safe.
type Span struct {
	t      *Tracer
	name   string
	tid    int
	start  time.Duration
	alloc0 int64
}

// End closes the span, recording wall-clock (and, when enabled, the
// allocation delta) on the tracer and the phase-duration counter on the
// linked registry.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	t := sp.t
	end := time.Since(t.t0)
	rec := spanRecord{
		Name: sp.name, TID: sp.tid,
		Start: sp.start, Dur: end - sp.start,
		AllocBytes: -1,
	}
	if sp.alloc0 >= 0 {
		rec.AllocBytes = int64(readAllocBytes()) - sp.alloc0
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
	t.Metrics.Counter("phase." + sp.name + "_ns").Add(int64(rec.Dur))
}

// readAllocBytes returns cumulative heap allocation.
func readAllocBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// PhaseDurations returns the total recorded wall-clock per span name.
func (t *Tracer) PhaseDurations() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.spans))
	for _, s := range t.spans {
		out[s.Name] += s.Dur
	}
	return out
}

// chromeEvent is one entry of the chrome://tracing JSON array format:
// "X" (complete) events with microsecond timestamps.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome serializes the recorded spans as a chrome://tracing (and
// Perfetto) compatible JSON document.
func (t *Tracer) WriteChrome(w io.Writer) error {
	var events []chromeEvent
	if t != nil {
		t.mu.Lock()
		for _, s := range t.spans {
			ev := chromeEvent{
				Name: s.Name, Ph: "X",
				TS:  float64(s.Start.Nanoseconds()) / 1e3,
				Dur: float64(s.Dur.Nanoseconds()) / 1e3,
				PID: 1, TID: s.TID,
			}
			if s.AllocBytes >= 0 {
				ev.Args = map[string]any{"alloc_bytes": s.AllocBytes}
			}
			events = append(events, ev)
		}
		t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
