package parallel

import (
	"fmt"
	"log/slog"
	"sync"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// GridOptions configures a csim-grid run: fault-axis sharding (csim-P's
// partitioner) crossed with vector-axis sharding (csim-V2's windowed
// engine). Each of the K fault shards runs the W-window speculation +
// repair pipeline against the one shared good trace, and the per-shard
// results merge with faults.MergeResults exactly as csim-P's do.
type GridOptions struct {
	// FaultShards is the fault-partition count K; <= 0 means 1. Clamped
	// to the universe size.
	FaultShards int
	// Windows is the vector-window count W per shard; <= 0 means 1.
	// Clamped to the vector count.
	Windows int
	// Config is the per-simulator variant (typically csim.MV()).
	Config csim.Config
	// Obs attaches the observability layer: per-shard-window metrics
	// under "csim-grid.shard<k>.window<i>." and merged totals under
	// "csim-grid.". Nil disables observability.
	Obs *obs.Observer
}

// GridPrefix namespaces the merged csim-grid run totals in the registry.
const GridPrefix = "csim-grid."

// GridShardPrefix namespaces one fault shard's windowed metrics.
func GridShardPrefix(k int) string { return fmt.Sprintf("csim-grid.shard%d.", k) }

// EffectiveShape reports the (K, W) shape SimulateGrid will actually use
// for nf faults over nv vectors, after defaulting and clamping.
func (o GridOptions) EffectiveShape(nf, nv int) (k, w int) {
	k = o.FaultShards
	if k <= 0 {
		k = 1
	}
	if k > nf {
		k = nf
	}
	if k < 1 {
		k = 1
	}
	w = o.Windows
	if w <= 0 {
		w = 1
	}
	if w > nv {
		w = nv
	}
	if w < 1 {
		w = 1
	}
	return k, w
}

// SimulateGrid runs the 2-D fault×vector grid over the whole vector set
// and returns the merged detections and summed stats. K=1 degenerates to
// csim-V2 over the full universe; W=1 degenerates to csim-P (every
// window run is then exact and no repairs happen).
func SimulateGrid(u *faults.Universe, vs *vectors.Set, opt GridOptions) (*faults.Result, csim.Stats, error) {
	ob := opt.Obs
	k, w := opt.EffectiveShape(u.NumFaults(), vs.Len())
	trace := goodsim.RecordObserved(u.Circuit, vs.Vecs, ob)
	psp := ob.Span("partition")
	parts := Partition(u, k)
	psp.End()

	results := make([]*faults.Result, k)
	stats := make([]csim.Stats, k)
	repairs := make([]int, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ob.Recorder().Recordf("shard_start", "csim-grid shard %d: %d faults over %d windows", i, len(parts[i]), w)
			ob.Logger().Debug("shard start",
				slog.String("phase", "fault-sim"),
				slog.Int("shard", i),
				slog.Int("faults", len(parts[i])),
				slog.Int("windows", w))
			results[i], stats[i], repairs[i], errs[i] = simulateWindows(
				u, vs, trace, parts[i], w, opt.Config, ob, GridShardPrefix(i), i*w)
			if errs[i] == nil {
				ob.Recorder().Recordf("shard_finish", "csim-grid shard %d: %d detected, %d repaired", i, results[i].NumDet, repairs[i])
				ob.Logger().Debug("shard finish",
					slog.String("phase", "fault-sim"),
					slog.Int("shard", i),
					slog.Int("detected", results[i].NumDet),
					slog.Int("repaired", repairs[i]))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, csim.Stats{}, err
		}
	}
	msp := ob.Span("merge")
	res := faults.MergeResults(results...)
	merged := csim.MergeStats(stats...)
	msp.End()
	totalRepaired := 0
	for _, r := range repairs {
		totalRepaired += r
	}
	ob.Recorder().Recordf("merge", "csim-grid: %dx%d grid merged, %d detected, %d repaired", k, w, res.NumDet, totalRepaired)
	ob.Logger().Debug("merge",
		slog.String("phase", "merge"),
		slog.Int("fault_shards", k),
		slog.Int("windows", w),
		slog.Int("detected", res.NumDet),
		slog.Int("repaired", totalRepaired))
	if reg := ob.Registry(); reg != nil {
		repaired := totalRepaired
		csim.PublishStats(reg, GridPrefix, merged)
		reg.Gauge(GridPrefix + "fault_shards").Set(int64(k))
		reg.Gauge(GridPrefix + "windows").Set(int64(w))
		reg.Gauge(GridPrefix + "repaired_faults").Set(int64(repaired))
	}
	return res, merged, nil
}
