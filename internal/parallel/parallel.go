// Package parallel is the fault-partition parallel concurrent fault
// simulator, csim-P. Concurrent fault simulation evolves every faulty
// machine independently against the one good machine, so the fault
// universe shards cleanly: the good machine is simulated once per vector
// set and its per-cycle settled state recorded (goodsim.Record); the
// collapsed fault universe is dealt into K disjoint partitions, balanced
// by fault-site level; one independent csim.Simulator per partition runs
// on its own goroutine, replaying good values from the shared read-only
// trace instead of re-deriving the good machine; and the per-partition
// results merge deterministically (min detecting-vector index wins), so
// the output is bit-identical to the single-threaded run regardless of
// worker count or goroutine scheduling.
package parallel

import (
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// Options configures a csim-P run.
type Options struct {
	// Workers is the partition/goroutine count; <= 0 means
	// runtime.NumCPU(). It is clamped to the universe size.
	Workers int
	// Config is the per-partition simulator variant (typically csim.MV()).
	// Its Obs/ObsPrefix fields are overridden per worker; attach
	// observability through Options.Obs instead.
	Config csim.Config
	// Obs attaches the observability layer to the whole run: phase spans
	// (good-sim, partition, fault-sim with one lane per worker, merge),
	// per-worker metrics under "csim-P.worker<i>.", and the merged run
	// totals under "csim-P.". Nil disables observability.
	Obs *obs.Observer
}

// EffectiveWorkers reports the partition count Simulate will actually use
// for a universe of n faults, after defaulting and clamping.
func (o Options) EffectiveWorkers(n int) int { return o.workers(n) }

func (o Options) workers(n int) int {
	k := o.Workers
	if k <= 0 {
		k = runtime.NumCPU()
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Partition shards the universe's fault IDs into k disjoint, jointly
// exhaustive groups. Faults are ordered by site level (ties broken by ID)
// and dealt round-robin, so every partition receives a similar mix of
// shallow and deep fault sites — simulation cost tracks fault activity,
// not fault count, and activity correlates with site depth.
//
//simlint:deterministic
func Partition(u *faults.Universe, k int) [][]int32 {
	order := make([]int32, len(u.Faults))
	for i := range order {
		order[i] = int32(i)
	}
	c := u.Circuit
	level := func(id int32) int32 { return c.Gate(u.Faults[id].Gate).Level }
	sort.SliceStable(order, func(i, j int) bool {
		li, lj := level(order[i]), level(order[j])
		if li != lj {
			return li < lj
		}
		return order[i] < order[j]
	})
	parts := make([][]int32, k)
	for i, id := range order {
		parts[i%k] = append(parts[i%k], id)
	}
	return parts
}

// Simulate runs csim-P over the whole vector set and returns the merged
// detections along with the merged per-partition stats.
func Simulate(u *faults.Universe, vs *vectors.Set, opt Options) (*faults.Result, csim.Stats, error) {
	ob := opt.Obs
	k := opt.workers(u.NumFaults())
	trace := goodsim.RecordObserved(u.Circuit, vs.Vecs, ob)
	psp := ob.Span("partition")
	parts := Partition(u, k)
	psp.End()

	results := make([]*faults.Result, k)
	stats := make([]csim.Stats, k)
	errs := make([]error, k)
	fsp := ob.Span("fault-sim")
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each worker publishes into its own metric namespace and
			// trace lane; lane 0 stays for the run-level phases.
			wsp := ob.SpanTID(fmt.Sprintf("worker%d", i), i+1)
			defer wsp.End()
			ob.Recorder().Recordf("shard_start", "csim-P worker %d: %d faults", i, len(parts[i]))
			ob.Logger().Debug("shard start",
				slog.String("phase", "fault-sim"),
				slog.Int("shard", i),
				slog.Int("faults", len(parts[i])))
			cfg := opt.Config
			cfg.Obs = ob
			cfg.ObsPrefix = WorkerPrefix(i)
			sim, err := csim.NewPartition(u, cfg, parts[i])
			if err != nil {
				errs[i] = err
				return
			}
			if err := sim.SetGoodTrace(trace); err != nil {
				errs[i] = err
				return
			}
			results[i] = sim.Run(vs)
			stats[i] = sim.Stats()
			ob.Recorder().Recordf("shard_finish", "csim-P worker %d: %d detected", i, results[i].NumDet)
			ob.Logger().Debug("shard finish",
				slog.String("phase", "fault-sim"),
				slog.Int("shard", i),
				slog.Int("detected", results[i].NumDet))
		}(i)
	}
	wg.Wait()
	fsp.End()
	for _, err := range errs {
		if err != nil {
			return nil, csim.Stats{}, err
		}
	}
	msp := ob.Span("merge")
	res := faults.MergeResults(results...)
	merged := csim.MergeStats(stats...)
	msp.End()
	ob.Recorder().Recordf("merge", "csim-P: %d workers merged, %d detected", k, res.NumDet)
	ob.Logger().Debug("merge",
		slog.String("phase", "merge"),
		slog.Int("workers", k),
		slog.Int("detected", res.NumDet))
	if reg := ob.Registry(); reg != nil {
		// Run totals next to the per-worker namespaces, via the same
		// generic Stats tag table the merge uses.
		csim.PublishStats(reg, MergedPrefix, merged)
		reg.Gauge(MergedPrefix + "workers").Set(int64(k))
	}
	return res, merged, nil
}

// MergedPrefix namespaces the merged csim-P run totals in the registry.
const MergedPrefix = "csim-P."

// WorkerPrefix namespaces one partition worker's metrics (queue depth,
// cycles simulated, faults live, detections/drops, element gauges).
func WorkerPrefix(i int) string { return fmt.Sprintf("csim-P.worker%d.", i) }
