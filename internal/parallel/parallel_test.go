package parallel

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/vectors"
)

func testCircuit(t *testing.T, seed int64, pis, pos, ffs, gates int) *netlist.Circuit {
	t.Helper()
	c, err := gen.Generate(gen.Spec{
		Name: fmt.Sprintf("par%d", seed),
		PIs:  pis, POs: pos, DFFs: ffs, Gates: gates, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPartitionDisjointExhaustive: every fault lands in exactly one
// partition and sizes differ by at most one.
func TestPartitionDisjointExhaustive(t *testing.T) {
	c := testCircuit(t, 7, 5, 4, 6, 90)
	u := faults.StuckCollapsed(c)
	for _, k := range []int{1, 2, 3, 7, 16} {
		parts := Partition(u, k)
		if len(parts) != k {
			t.Fatalf("k=%d: got %d partitions", k, len(parts))
		}
		seen := make([]int, u.NumFaults())
		lo, hi := u.NumFaults(), 0
		for _, p := range parts {
			if len(p) < lo {
				lo = len(p)
			}
			if len(p) > hi {
				hi = len(p)
			}
			for _, id := range p {
				seen[id]++
			}
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("k=%d: fault %d appears in %d partitions", k, id, n)
			}
		}
		if hi-lo > 1 {
			t.Errorf("k=%d: partition sizes unbalanced: min %d max %d", k, lo, hi)
		}
	}
}

// TestMatchesSingleThreaded: csim-P at several worker counts must produce
// a Result byte-identical to the single-threaded csim run of the same
// configuration.
func TestMatchesSingleThreaded(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := testCircuit(t, seed, 4, 4, 6, 70)
		u := faults.StuckCollapsed(c)
		vs := vectors.Random(c, 120, seed)
		single, err := csim.New(u, csim.MV())
		if err != nil {
			t.Fatal(err)
		}
		want := single.Run(vs)
		for _, w := range []int{1, 2, 4, 7} {
			got, _, err := Simulate(u, vs, Options{Workers: w, Config: csim.MV()})
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("seed %d workers %d", seed, w)
			if d := want.Diff(got); d != "" {
				t.Errorf("%s: detections differ:\n%s", tag, d)
			}
			if !reflect.DeepEqual(want.DetectedAt, got.DetectedAt) {
				t.Errorf("%s: first-detection indices differ", tag)
			}
			if !reflect.DeepEqual(want.PotDetected, got.PotDetected) {
				t.Errorf("%s: potential detections differ", tag)
			}
		}
	}
}

// TestTransitionMatchesSingleThreaded covers the transition-fault model:
// partitioned replay must keep per-fault previous-cycle driver state
// exactly as the single-threaded run does.
func TestTransitionMatchesSingleThreaded(t *testing.T) {
	c := testCircuit(t, 11, 4, 3, 5, 60)
	u := faults.Transition(c)
	vs := vectors.Random(c, 100, 3)
	single, err := csim.New(u, csim.MV())
	if err != nil {
		t.Fatal(err)
	}
	want := single.Run(vs)
	for _, w := range []int{2, 5} {
		got, _, err := Simulate(u, vs, Options{Workers: w, Config: csim.MV()})
		if err != nil {
			t.Fatal(err)
		}
		if d := want.Diff(got); d != "" {
			t.Errorf("workers %d: detections differ:\n%s", w, d)
		}
		if !reflect.DeepEqual(want.DetectedAt, got.DetectedAt) {
			t.Errorf("workers %d: first-detection indices differ", w)
		}
	}
}

// TestWorkerCountClamped: more workers than faults must not break the
// partitioning (no empty-universe goroutines beyond the fault count).
func TestWorkerCountClamped(t *testing.T) {
	b := netlist.NewBuilder("tiny")
	b.Input("a")
	b.Gate("z", logic.OpNot, "a")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 10, 1)
	res, _, err := Simulate(u, vs, Options{Workers: 64, Config: csim.MV()})
	if err != nil {
		t.Fatal(err)
	}
	single, err := csim.New(u, csim.MV())
	if err != nil {
		t.Fatal(err)
	}
	if d := single.Run(vs).Diff(res); d != "" {
		t.Errorf("clamped run diverged:\n%s", d)
	}
}

// TestStatsWorkersOneMatchSingle: a one-partition csim-P run performs
// exactly the single-threaded run's work, so every merged counter must
// match the single-threaded totals field for field.
func TestStatsWorkersOneMatchSingle(t *testing.T) {
	c := testCircuit(t, 21, 5, 4, 8, 100)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 150, 9)
	single, err := csim.New(u, csim.MV())
	if err != nil {
		t.Fatal(err)
	}
	single.Run(vs)
	_, merged, err := Simulate(u, vs, Options{Workers: 1, Config: csim.MV()})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged, single.Stats(); got != want {
		t.Errorf("workers=1 stats = %+v, single-threaded %+v", got, want)
	}
}

// TestStatsPartitionInvariants: counters that are per-fault properties
// must sum across partitions to the single-threaded totals, whatever the
// worker count. Detections are exactly invariant; element counts are not
// (dropped faults' elements are reclaimed lazily, so end-of-run residue
// depends on which traversals ran), but the summed peak can never fall
// below the single-threaded peak.
func TestStatsPartitionInvariants(t *testing.T) {
	c := testCircuit(t, 33, 5, 4, 8, 100)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 150, 9)
	single, err := csim.New(u, csim.MV())
	if err != nil {
		t.Fatal(err)
	}
	single.Run(vs)
	want := single.Stats()
	for _, w := range []int{2, 4, 7} {
		_, merged, err := Simulate(u, vs, Options{Workers: w, Config: csim.MV()})
		if err != nil {
			t.Fatal(err)
		}
		if merged.Detections != want.Detections {
			t.Errorf("workers=%d: merged detections %d, single-threaded %d",
				w, merged.Detections, want.Detections)
		}
		if merged.PeakElems < want.PeakElems {
			t.Errorf("workers=%d: summed peaks %d below single-threaded peak %d",
				w, merged.PeakElems, want.PeakElems)
		}
	}
}

// TestObservedParallelRun attaches the full observability layer to a
// csim-P run and checks the per-worker metric namespaces, the merged
// "csim-P." totals (which must agree with the returned merged Stats and
// with a generic re-merge of the per-worker registry values), the phase
// spans, and that observation does not perturb the detections.
func TestObservedParallelRun(t *testing.T) {
	c := testCircuit(t, 11, 5, 4, 6, 120)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 80, 11)
	const k = 3

	plain, _, err := Simulate(u, vs, Options{Workers: k, Config: csim.MV()})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	ob := &obs.Observer{Metrics: reg, Tracer: tr}
	res, merged, err := Simulate(u, vs, Options{Workers: k, Config: csim.MV(), Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	if diff := plain.Diff(res); diff != "" {
		t.Fatalf("observability changed the merged result:\n%s", diff)
	}

	// Merged totals published under csim-P. must equal the returned Stats.
	got, ok := csim.StatsFromRegistry(reg, MergedPrefix)
	if !ok {
		t.Fatalf("no merged stats under %q", MergedPrefix)
	}
	if got != merged {
		t.Fatalf("registry merged stats %+v != returned %+v", got, merged)
	}
	if p, ok := reg.Get(MergedPrefix + "workers"); !ok || p.Value != k {
		t.Fatalf("workers gauge = %+v, want %d", p, k)
	}

	// Per-worker namespaces exist and re-merge (generically, through the
	// registry) to the same totals.
	var parts []csim.Stats
	for i := 0; i < k; i++ {
		st, ok := csim.StatsFromRegistry(reg, WorkerPrefix(i))
		if !ok {
			t.Fatalf("worker %d published no metrics", i)
		}
		if p, ok := reg.Get(WorkerPrefix(i) + "cycles"); !ok || p.Value != int64(vs.Len()) {
			t.Fatalf("worker %d cycles = %+v, want %d", i, p, vs.Len())
		}
		if _, ok := reg.Get(WorkerPrefix(i) + "queue_depth"); !ok {
			t.Fatalf("worker %d missing queue_depth gauge", i)
		}
		if p, ok := reg.Get(WorkerPrefix(i) + "faults_live"); !ok ||
			p.Value != int64(len(Partition(u, k)[i])-st.Detections) {
			t.Fatalf("worker %d faults_live = %+v inconsistent with detections %d",
				i, p, st.Detections)
		}
		parts = append(parts, st)
	}
	if remerged := csim.MergeStats(parts...); remerged != merged {
		t.Fatalf("per-worker registry stats re-merge to %+v, want %+v", remerged, merged)
	}

	// Phase spans: good-sim, partition, fault-sim, merge, one lane per
	// worker.
	durs := tr.PhaseDurations()
	for _, phase := range []string{"good-sim", "partition", "fault-sim", "merge"} {
		if _, ok := durs[phase]; !ok {
			t.Errorf("phase span %q missing (have %v)", phase, durs)
		}
	}
	for i := 0; i < k; i++ {
		if _, ok := durs[fmt.Sprintf("worker%d", i)]; !ok {
			t.Errorf("worker%d span missing", i)
		}
	}
}
