package parallel

import (
	"fmt"
	"log/slog"
	"runtime"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// The unified fault×vector scheduler: given a job's shape, pick a grid
// plan — fault-split (csim-P-like), vector-split (csim-V2-like), or a
// genuine 2-D grid. The heuristics:
//
//   - a fault shard below MinFaultsPerShard faults drowns in per-shard
//     fixed cost (trace replay, full first-cycle sweep), so the fault
//     axis offers at most Faults/MinFaultsPerShard useful shards;
//   - a vector window below MinVectorsPerWindow cycles likewise, and a
//     high observed drop rate shrinks the useful window count further:
//     late windows then speculate mostly about already-dropped faults;
//   - when both axes have capacity, the fault axis is preferred (its
//     shards never need repair runs) and the vector axis takes the rest
//     of the processor budget.
//
// The decision is a pure function of the JobShape, so the same job
// always gets the same plan.

// Shard-granularity floors: below these per-shard sizes another shard
// costs more in fixed overhead than it saves.
const (
	MinFaultsPerShard   = 64
	MinVectorsPerWindow = 32
)

// MinVectorsCompiled is the vector count from which the scheduler
// recommends the compiled backend (internal/compiled): below one full
// 64-lane word the packed passes run partly empty and the one-time
// compile plus packed-trace cost is not amortized.
const MinVectorsCompiled = 64

// JobShape describes one simulation job for the scheduler.
type JobShape struct {
	// Gates is the circuit size (informational; granularity floors are
	// expressed in faults and vectors, which already scale with it).
	Gates int
	// Faults is the fault-universe size.
	Faults int
	// Vectors is the vector-sequence length.
	Vectors int
	// MaxProcs bounds the total shard count K*W; <= 0 means
	// runtime.NumCPU(). Pin it for deterministic planning across hosts.
	MaxProcs int
	// DropRate is the expected fraction of faults detected (and thus
	// dropped) over the run, in [0,1]; 0 when unknown. High drop rates
	// devalue late vector windows.
	DropRate float64
}

// Plan is the scheduler's decision: a K×W fault×vector grid. K=1 is a
// pure vector split, W=1 a pure fault split, K=W=1 a single simulator.
type Plan struct {
	// FaultShards is K, the fault-partition count.
	FaultShards int
	// Windows is W, the vector-window count.
	Windows int
	// Compiled is advisory: the vector sequence is long enough
	// (MinVectorsCompiled) that the compiled bit-parallel backend
	// (engine csim-C) would run its packed passes at full word
	// occupancy. The grid runners ignore it — it exists for callers
	// choosing an engine before choosing a shard shape.
	Compiled bool
}

// Grid reports whether the plan splits along both axes.
func (p Plan) Grid() bool { return p.FaultShards > 1 && p.Windows > 1 }

// String renders the plan as "KxW", with a "+C" suffix when the
// compiled backend is recommended.
func (p Plan) String() string {
	if p.Compiled {
		return fmt.Sprintf("%dx%d+C", p.FaultShards, p.Windows)
	}
	return fmt.Sprintf("%dx%d", p.FaultShards, p.Windows)
}

// Decide picks the grid shape for a job. It is deterministic: equal
// shapes yield equal plans (with MaxProcs <= 0 the processor count of
// the deciding host is part of the shape).
func Decide(sh JobShape) Plan {
	plan, _ := Explain(sh)
	return plan
}

// Explain is Decide plus the verdict's reasoning: the same plan and a
// one-line account of the axis capacities and which branch of the
// heuristic fired — what the flight recorder stores so a postmortem
// shows not just the K×W split but why it was chosen.
func Explain(sh JobShape) (Plan, string) {
	p := sh.MaxProcs
	if p <= 0 {
		p = runtime.NumCPU()
	}
	if p < 1 {
		p = 1
	}
	clamp := func(v int) int {
		if v < 1 {
			return 1
		}
		if v > p {
			return p
		}
		return v
	}
	maxF := clamp(sh.Faults / MinFaultsPerShard)
	dr := sh.DropRate
	if dr < 0 {
		dr = 0
	}
	if dr > 1 {
		dr = 1
	}
	maxW := clamp(int(float64(sh.Vectors/MinVectorsPerWindow) * (1 - dr)))
	compiled := sh.Vectors >= MinVectorsCompiled
	caps := fmt.Sprintf("procs=%d fault_axis_cap=%d vector_axis_cap=%d drop_rate=%.2f compiled_ok=%t",
		p, maxF, maxW, dr, compiled)
	if maxF == 1 || maxW == 1 {
		// At most one axis has capacity: single-axis split (or 1×1).
		why := caps + ": at most one axis clears its granularity floor, single-axis split"
		if maxF == 1 && maxW == 1 {
			why = caps + ": both axes below their granularity floors, single simulator"
		}
		return Plan{FaultShards: maxF, Windows: maxW, Compiled: compiled}, why
	}
	f := maxF
	if f > p {
		f = p
	}
	why := caps + ": fault axis first, vector axis takes the remaining budget"
	if f == p && p >= 4 {
		// Both axes have capacity and faults alone would eat the whole
		// budget: cede half to the vector axis for a 2-D grid.
		f = p / 2
		why = caps + ": fault axis would eat the whole budget, ceding half to the vector axis"
	}
	w := p / f
	if w > maxW {
		w = maxW
	}
	if w < 1 {
		w = 1
	}
	return Plan{FaultShards: f, Windows: w, Compiled: compiled}, why
}

// AutoOptions configures a scheduler-planned run.
type AutoOptions struct {
	// MaxProcs bounds the total shard count; <= 0 means
	// runtime.NumCPU().
	MaxProcs int
	// DropRate is the expected detected fraction in [0,1] (0: unknown).
	DropRate float64
	// Config is the per-simulator variant (typically csim.MV()).
	Config csim.Config
	// Obs attaches the observability layer; the chosen plan is published
	// as "sched.fault_shards" / "sched.windows" / "sched.max_procs"
	// gauges next to the csim-grid metrics.
	Obs *obs.Observer
}

// SimulateAuto lets the scheduler pick the grid shape for the job and
// runs it, returning the merged result, summed stats and the plan used.
func SimulateAuto(u *faults.Universe, vs *vectors.Set, opt AutoOptions) (*faults.Result, csim.Stats, Plan, error) {
	sh := JobShape{
		Gates:    len(u.Circuit.Gates),
		Faults:   u.NumFaults(),
		Vectors:  vs.Len(),
		MaxProcs: opt.MaxProcs,
		DropRate: opt.DropRate,
	}
	plan, why := Explain(sh)
	if reg := opt.Obs.Registry(); reg != nil {
		reg.Gauge("sched.fault_shards").Set(int64(plan.FaultShards))
		reg.Gauge("sched.windows").Set(int64(plan.Windows))
		mp := sh.MaxProcs
		if mp <= 0 {
			mp = runtime.NumCPU()
		}
		reg.Gauge("sched.max_procs").Set(int64(mp))
	}
	opt.Obs.Recorder().Recordf("decide", "plan %s (%s)", plan, why)
	opt.Obs.Logger().Info("sched decide",
		slog.String("phase", "decide"),
		slog.Int("fault_shards", plan.FaultShards),
		slog.Int("windows", plan.Windows),
		slog.String("why", why))
	res, st, err := SimulateGrid(u, vs, GridOptions{
		FaultShards: plan.FaultShards,
		Windows:     plan.Windows,
		Config:      opt.Config,
		Obs:         opt.Obs,
	})
	return res, st, plan, err
}
