package parallel

import (
	"testing"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// TestDecideSplitAxis is the table-driven scheduler test: tiny fault
// populations with long vector sequences go vector-split, huge fault
// lists over short sequences go fault-split, and jobs large along both
// axes get a 2-D grid within the processor budget.
func TestDecideSplitAxis(t *testing.T) {
	cases := []struct {
		name string
		sh   JobShape
		want Plan
	}{
		{"tiny circuit, huge vectors",
			JobShape{Gates: 100, Faults: 50, Vectors: 10000, MaxProcs: 8},
			Plan{FaultShards: 1, Windows: 8, Compiled: true}},
		{"huge fault list, short vectors",
			JobShape{Gates: 50000, Faults: 100000, Vectors: 40, MaxProcs: 8},
			Plan{FaultShards: 8, Windows: 1}},
		{"both large",
			JobShape{Gates: 50000, Faults: 100000, Vectors: 10000, MaxProcs: 8},
			Plan{FaultShards: 4, Windows: 2, Compiled: true}},
		{"both large, four procs",
			JobShape{Gates: 50000, Faults: 100000, Vectors: 10000, MaxProcs: 4},
			Plan{FaultShards: 2, Windows: 2, Compiled: true}},
		{"both large, two procs prefer faults",
			JobShape{Gates: 50000, Faults: 100000, Vectors: 10000, MaxProcs: 2},
			Plan{FaultShards: 2, Windows: 1, Compiled: true}},
		{"fault axis capped, windows take the rest",
			JobShape{Gates: 1000, Faults: 150, Vectors: 10000, MaxProcs: 8},
			Plan{FaultShards: 2, Windows: 4, Compiled: true}},
		{"high drop rate kills late windows",
			JobShape{Gates: 50000, Faults: 100000, Vectors: 320, DropRate: 0.95, MaxProcs: 8},
			Plan{FaultShards: 8, Windows: 1, Compiled: true}},
		{"full drop rate",
			JobShape{Gates: 50000, Faults: 100000, Vectors: 10000, DropRate: 1.0, MaxProcs: 8},
			Plan{FaultShards: 8, Windows: 1, Compiled: true}},
		{"tiny everything",
			JobShape{Gates: 20, Faults: 30, Vectors: 20, MaxProcs: 8},
			Plan{FaultShards: 1, Windows: 1}},
		{"single proc",
			JobShape{Gates: 50000, Faults: 100000, Vectors: 10000, MaxProcs: 1},
			Plan{FaultShards: 1, Windows: 1, Compiled: true}},
	}
	for _, tc := range cases {
		if got := Decide(tc.sh); got != tc.want {
			t.Errorf("%s: Decide(%+v) = %v, want %v", tc.name, tc.sh, got, tc.want)
		}
		if got := Decide(tc.sh); got.FaultShards*got.Windows > maxProcsOf(tc.sh) {
			t.Errorf("%s: plan %v exceeds the processor budget %d", tc.name, got, maxProcsOf(tc.sh))
		}
	}
}

func maxProcsOf(sh JobShape) int {
	if sh.MaxProcs > 0 {
		return sh.MaxProcs
	}
	return 1 << 30 // NumCPU default; only budget-capped cases pin MaxProcs
}

// TestDecideDeterministic: the same shape must always get the same plan.
func TestDecideDeterministic(t *testing.T) {
	shapes := []JobShape{
		{Gates: 100, Faults: 50, Vectors: 10000, MaxProcs: 8},
		{Gates: 50000, Faults: 100000, Vectors: 10000, MaxProcs: 8},
		{Gates: 5000, Faults: 9000, Vectors: 496, DropRate: 0.7, MaxProcs: 16},
		{Gates: 5000, Faults: 9000, Vectors: 496}, // MaxProcs from NumCPU, still stable in-process
	}
	for _, sh := range shapes {
		first := Decide(sh)
		for i := 0; i < 50; i++ {
			if got := Decide(sh); got != first {
				t.Fatalf("Decide(%+v) flapped: %v then %v", sh, first, got)
			}
		}
	}
}

// TestSimulateAuto runs the scheduler end to end: the planned grid must
// match the single-threaded detections and publish its decision gauges.
func TestSimulateAuto(t *testing.T) {
	c := testCircuit(t, 8600, 5, 4, 8, 90)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 120, 3)
	single, err := csim.New(u, csim.MV())
	if err != nil {
		t.Fatal(err)
	}
	want := single.Run(vs)
	reg := obs.NewRegistry()
	ob := &obs.Observer{Metrics: reg}
	res, _, plan, err := SimulateAuto(u, vs, AutoOptions{MaxProcs: 4, Config: csim.MV(), Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "auto "+plan.String(), want, res)
	if plan.FaultShards < 1 || plan.Windows < 1 || plan.FaultShards*plan.Windows > 4 {
		t.Errorf("plan %v outside the MaxProcs=4 budget", plan)
	}
	if p, ok := reg.Get("sched.fault_shards"); !ok || p.Value != int64(plan.FaultShards) {
		t.Errorf("sched.fault_shards gauge = %+v, want %d", p, plan.FaultShards)
	}
	if p, ok := reg.Get("sched.windows"); !ok || p.Value != int64(plan.Windows) {
		t.Errorf("sched.windows gauge = %+v, want %d", p, plan.Windows)
	}
	if p, ok := reg.Get("sched.max_procs"); !ok || p.Value != 4 {
		t.Errorf("sched.max_procs gauge = %+v, want 4", p)
	}
}
