package parallel

import (
	"fmt"
	"log/slog"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// ShardOptions configures one slice of the distributed grid: fault
// partition Shard of Of crossed with Windows vector windows. A worker
// csimd node executes exactly this when a coordinator fans a job out —
// the partitioner is the deterministic csim-P dealer, so every node
// that computes Partition(u, Of) agrees on which faults shard k holds,
// and MergeResults over all Of shard results is bit-identical to a
// local SimulateGrid (and hence to the serial oracle).
type ShardOptions struct {
	// Shard is the fault-partition index in [0, Of).
	Shard int
	// Of is the total fault-partition count (K of the K×W grid).
	Of int
	// Windows is the vector-window count run locally over the shard's
	// faults; <= 0 means 1. Clamped to the vector count.
	Windows int
	// Config is the per-simulator variant (typically csim.MV()).
	Config csim.Config
	// Obs attaches the observability layer: the shard publishes under
	// "csim-grid.shard<k>." exactly as the same shard of a local grid
	// run would. Nil disables observability.
	Obs *obs.Observer
}

// SimulateShard runs fault shard opt.Shard of opt.Of over the whole
// vector set in opt.Windows windows and returns the shard's detections
// (a Result over the full universe in which only the shard's faults can
// be detected) and the shard's stats. It is the worker-side half of the
// distributed tier: the coordinator merges Of such results with
// faults.MergeResults, first detection winning, so the distributed run
// reproduces the single-node grid bit for bit.
func SimulateShard(u *faults.Universe, vs *vectors.Set, opt ShardOptions) (*faults.Result, csim.Stats, error) {
	if opt.Of < 1 {
		return nil, csim.Stats{}, fmt.Errorf("parallel: shard count %d < 1", opt.Of)
	}
	if opt.Shard < 0 || opt.Shard >= opt.Of {
		return nil, csim.Stats{}, fmt.Errorf("parallel: shard index %d outside [0, %d)", opt.Shard, opt.Of)
	}
	ob := opt.Obs
	w := opt.Windows
	if w < 1 {
		w = 1
	}
	if w > vs.Len() {
		w = vs.Len()
	}
	psp := ob.Span("partition")
	part := Partition(u, opt.Of)[opt.Shard]
	psp.End()
	if len(part) == 0 {
		// More shards than faults: this shard holds nothing. An empty
		// result merges as a no-op.
		return faults.NewResult(u), csim.Stats{}, nil
	}
	trace := goodsim.RecordObserved(u.Circuit, vs.Vecs, ob)
	ob.Recorder().Recordf("shard_start", "shard %d of %d: %d faults over %d windows",
		opt.Shard, opt.Of, len(part), w)
	ob.Logger().Debug("shard start",
		slog.String("phase", "fault-sim"),
		slog.Int("shard", opt.Shard),
		slog.Int("of", opt.Of),
		slog.Int("faults", len(part)),
		slog.Int("windows", w))
	res, st, repaired, err := simulateWindows(
		u, vs, trace, part, w, opt.Config, ob, GridShardPrefix(opt.Shard), opt.Shard*w)
	if err != nil {
		return nil, csim.Stats{}, err
	}
	ob.Recorder().Recordf("shard_finish", "shard %d of %d: %d detected, %d repaired",
		opt.Shard, opt.Of, res.NumDet, repaired)
	ob.Logger().Debug("shard finish",
		slog.String("phase", "fault-sim"),
		slog.Int("shard", opt.Shard),
		slog.Int("detected", res.NumDet),
		slog.Int("repaired", repaired))
	return res, st, nil
}
