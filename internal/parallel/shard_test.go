package parallel

import (
	"testing"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/serial"
	"repro/internal/vectors"
)

// TestSimulateShardMergesToSerial is the distributed-tier contract:
// running every shard of a K-way partition independently (each with its
// own good-trace recording, exactly as remote workers do) and merging
// the results reproduces the serial oracle bit for bit.
func TestSimulateShardMergesToSerial(t *testing.T) {
	for _, tc := range []struct {
		circuit string
		model   string
		k, w    int
	}{
		{"s344", "stuck", 3, 2},
		{"s344", "transition", 2, 3},
		{"s526", "stuck", 4, 1},
		{"s526", "transition", 1, 4},
	} {
		ckt, err := iscas.Get(tc.circuit)
		if err != nil {
			t.Fatal(err)
		}
		var u *faults.Universe
		if tc.model == "stuck" {
			u = faults.StuckCollapsed(ckt)
		} else {
			u = faults.Transition(ckt)
		}
		vs := vectors.Random(ckt, 60, 1)
		want := serial.Simulate(u, vs)

		parts := make([]*faults.Result, tc.k)
		stats := make([]csim.Stats, tc.k)
		for k := 0; k < tc.k; k++ {
			parts[k], stats[k], err = SimulateShard(u, vs, ShardOptions{
				Shard: k, Of: tc.k, Windows: tc.w, Config: csim.MV(),
			})
			if err != nil {
				t.Fatalf("%s/%s shard %d: %v", tc.circuit, tc.model, k, err)
			}
		}
		got := faults.MergeResults(parts...)
		if diff := want.Diff(got); diff != "" {
			t.Errorf("%s/%s %dx%d: merged shards differ from serial:\n%s",
				tc.circuit, tc.model, tc.k, tc.w, diff)
		}

		// The merged shard stats equal a local grid run's merged stats:
		// per-shard work is identical, only the placement differs.
		gridRes, gridStats, err := SimulateGrid(u, vs, GridOptions{
			FaultShards: tc.k, Windows: tc.w, Config: csim.MV(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if diff := gridRes.Diff(got); diff != "" {
			t.Errorf("%s/%s: shards differ from local grid:\n%s", tc.circuit, tc.model, diff)
		}
		if merged := csim.MergeStats(stats...); merged != gridStats {
			t.Errorf("%s/%s %dx%d: shard stats %+v != grid stats %+v",
				tc.circuit, tc.model, tc.k, tc.w, merged, gridStats)
		}
	}
}

// TestSimulateShardEmptyPartition: more shards than faults yields empty
// partitions whose results merge as no-ops.
func TestSimulateShardEmptyPartition(t *testing.T) {
	ckt, err := iscas.Get("s27")
	if err != nil {
		t.Fatal(err)
	}
	u := faults.StuckCollapsed(ckt)
	vs := vectors.Random(ckt, 8, 1)
	k := u.NumFaults() + 3
	res, st, err := SimulateShard(u, vs, ShardOptions{Shard: k - 1, Of: k, Windows: 2, Config: csim.MV()})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDet != 0 {
		t.Fatalf("empty shard detected %d faults", res.NumDet)
	}
	if st != (csim.Stats{}) {
		t.Fatalf("empty shard has nonzero stats: %+v", st)
	}
}

// TestSimulateShardBounds rejects out-of-range coordinates.
func TestSimulateShardBounds(t *testing.T) {
	ckt, err := iscas.Get("s27")
	if err != nil {
		t.Fatal(err)
	}
	u := faults.StuckCollapsed(ckt)
	vs := vectors.Random(ckt, 4, 1)
	for _, bad := range []ShardOptions{
		{Shard: 0, Of: 0},
		{Shard: -1, Of: 2},
		{Shard: 2, Of: 2},
	} {
		bad.Config = csim.MV()
		if _, _, err := SimulateShard(u, vs, bad); err == nil {
			t.Errorf("ShardOptions %+v: want error, got nil", bad)
		}
	}
}
