// Vector-axis parallelism, csim-V2: the vector sequence is split into W
// contiguous windows simulated concurrently. Sequential circuits carry
// fault state across clock edges, so naive splitting is wrong; csim-V2
// runs speculation + repair instead. The good machine is simulated once
// and recorded (the same trace csim-P replays); from the trace alone,
// ExpectedSeqState derives the flip-flop/driver state every *clean*
// faulty machine holds at each window boundary. Every window then runs
// speculatively from its expected boundary state, all in parallel. A
// sequential stitch pass walks the windows in order, compares each
// window's exact incoming state (captured from the previous window) with
// the expected state it speculated from, and re-simulates just the
// disagreeing ("dirty") faults — typically the few machines that kept
// divergent flip-flops alive across the boundary. Detections merge in
// window order, first detection freezing the fault, so the result is
// bit-identical to the single-threaded run at every window count.
package parallel

import (
	"fmt"
	"log/slog"
	"runtime"
	"sync"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// VOptions configures a csim-V2 run.
type VOptions struct {
	// Windows is the vector-window count; <= 0 means runtime.NumCPU().
	// It is clamped to the vector count.
	Windows int
	// Config is the per-window simulator variant (typically csim.MV()).
	// Its Obs/ObsPrefix fields are overridden per window; attach
	// observability through Options.Obs instead.
	Config csim.Config
	// Obs attaches the observability layer: phase spans (good-sim,
	// window-plan, fault-sim with one lane per window, stitch, merge),
	// per-window metrics under "csim-V2.window<i>." (repair runs under
	// "csim-V2.window<i>.repair."), and merged run totals under
	// "csim-V2.". Nil disables observability.
	Obs *obs.Observer
}

// EffectiveWindows reports the window count SimulateVectorSharded will
// actually use for a run of n vectors, after defaulting and clamping.
func (o VOptions) EffectiveWindows(n int) int {
	w := o.Windows
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// V2Prefix namespaces the merged csim-V2 run totals in the registry.
const V2Prefix = "csim-V2."

// WindowPrefix namespaces one speculative window run's metrics.
func WindowPrefix(i int) string { return fmt.Sprintf("csim-V2.window%d.", i) }

// windowBounds splits n vectors into w contiguous windows: boundaries
// b[0]=0 < b[1] < ... < b[w]=n, sizes differing by at most one.
func windowBounds(n, w int) []int {
	b := make([]int, w+1)
	base, rem := n/w, n%w
	for i := 1; i <= w; i++ {
		b[i] = b[i-1] + base
		if i <= rem {
			b[i]++
		}
	}
	return b
}

// SimulateVectorSharded runs csim-V2 over the whole vector set and
// returns the merged detections along with the summed per-window stats
// (total work across speculative and repair runs).
func SimulateVectorSharded(u *faults.Universe, vs *vectors.Set, opt VOptions) (*faults.Result, csim.Stats, error) {
	ob := opt.Obs
	w := opt.EffectiveWindows(vs.Len())
	trace := goodsim.RecordObserved(u.Circuit, vs.Vecs, ob)
	res, merged, repaired, err := simulateWindows(u, vs, trace, nil, w, opt.Config, ob, V2Prefix, 0)
	if err != nil {
		return nil, csim.Stats{}, err
	}
	if reg := ob.Registry(); reg != nil {
		csim.PublishStats(reg, V2Prefix, merged)
		reg.Gauge(V2Prefix + "windows").Set(int64(w))
		reg.Gauge(V2Prefix + "repaired_faults").Set(int64(repaired))
	}
	return res, merged, nil
}

// windowRun is one finished (speculative or repair) window simulation.
type windowRun struct {
	res   *faults.Result
	stats csim.Stats
	end   *csim.SeqState
	err   error
}

// simulateWindows is the shared windowed engine: it simulates the fault
// subset ids (nil = whole universe) over vs in w windows against the
// prerecorded trace, and returns the merged result, summed stats and the
// total repaired-fault count. prefix namespaces per-window metrics;
// laneBase offsets the trace lanes (so grid shards get disjoint lanes).
func simulateWindows(u *faults.Universe, vs *vectors.Set, trace *goodsim.Trace,
	ids []int32, w int, cfg csim.Config, ob *obs.Observer, prefix string,
	laneBase int) (*faults.Result, csim.Stats, int, error) {

	bounds := windowBounds(vs.Len(), w)

	// runWindow simulates vectors [bounds[wi], bounds[wi+1]) for the
	// fault subset runIDs, warm-started from the boundary state start.
	runWindow := func(wi int, runIDs []int32, start *csim.SeqState, pfx string) windowRun {
		wcfg := cfg
		wcfg.Obs = ob
		wcfg.ObsPrefix = pfx
		var sim *csim.Simulator
		var err error
		if runIDs == nil {
			sim, err = csim.New(u, wcfg)
		} else {
			sim, err = csim.NewPartition(u, wcfg, runIDs)
		}
		if err != nil {
			return windowRun{err: err}
		}
		if err := sim.SetGoodTrace(trace); err != nil {
			return windowRun{err: err}
		}
		if err := sim.StartWindow(bounds[wi], start); err != nil {
			return windowRun{err: err}
		}
		for t := bounds[wi]; t < bounds[wi+1]; t++ {
			sim.Cycle(vs.Vecs[t])
		}
		return windowRun{res: sim.Result(), stats: sim.Stats(), end: sim.CaptureSeqState()}
	}

	// Phase 1: all windows speculate in parallel from their expected
	// (clean-machine) boundary states.
	psp := ob.Span("window-plan")
	expected := make([]*csim.SeqState, w)
	psp.End()
	spec := make([]windowRun, w)
	fsp := ob.Span("fault-sim")
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			wsp := ob.SpanTID(fmt.Sprintf("window%d", wi), laneBase+wi+1)
			defer wsp.End()
			ob.Recorder().Recordf("window_start", "%swindow %d: vectors [%d,%d) speculating", prefix, wi, bounds[wi], bounds[wi+1])
			ob.Logger().Debug("window speculate",
				slog.String("phase", "fault-sim"),
				slog.Int("window", wi),
				slog.Int("vec_from", bounds[wi]),
				slog.Int("vec_to", bounds[wi+1]))
			expected[wi] = csim.ExpectedSeqState(u, trace, bounds[wi], ids)
			spec[wi] = runWindow(wi, ids, expected[wi], prefix+fmt.Sprintf("window%d.", wi))
			if spec[wi].err == nil {
				ob.Recorder().Recordf("window_finish", "%swindow %d: %d detected", prefix, wi, spec[wi].res.NumDet)
			}
		}(wi)
	}
	wg.Wait()
	fsp.End()
	for wi := range spec {
		if spec[wi].err != nil {
			return nil, csim.Stats{}, 0, spec[wi].err
		}
	}

	// Phase 2: stitch the windows in order. exact is the true boundary
	// state entering window wi; window 0's expected state (derived from
	// the all-X initial state) is exact by construction.
	ssp := ob.Span("stitch")
	res := faults.NewResult(u)
	frozen := make([]bool, len(u.Faults))
	isFrozen := func(f int32) bool { return frozen[f] }
	allStats := make([]csim.Stats, 0, w)
	repaired := 0
	exact := expected[0]
	for wi := 0; wi < w; wi++ {
		dirty := csim.DiffSeqStates(exact, expected[wi], isFrozen)
		allStats = append(allStats, spec[wi].stats)
		var rep *windowRun
		if len(dirty) > 0 {
			ob.Recorder().Recordf("repair", "%swindow %d: %d dirty faults re-simulated", prefix, wi, len(dirty))
			ob.Logger().Debug("window repair",
				slog.String("phase", "stitch"),
				slog.Int("window", wi),
				slog.Int("dirty", len(dirty)))
			r := runWindow(wi, dirty, exact.Restrict(dirty),
				prefix+fmt.Sprintf("window%d.repair.", wi))
			if r.err != nil {
				ssp.End()
				return nil, csim.Stats{}, 0, r.err
			}
			rep = &r
			allStats = append(allStats, r.stats)
			repaired += len(dirty)
		}
		inDirty := make(map[int32]bool, len(dirty))
		for _, f := range dirty {
			inDirty[f] = true
		}
		// Merge this window's detections: the repair run is authoritative
		// for dirty faults, the speculative run for everything else. A
		// detection freezes the fault — later windows' events for it are
		// speculative garbage, exactly like post-drop events in a
		// single-threaded run.
		mergeFault := func(f int32) {
			if frozen[f] {
				return
			}
			src := spec[wi].res
			if inDirty[f] {
				src = rep.res
			}
			if src.PotDetected[f] {
				res.PotDetect(f)
			}
			if src.Detected[f] {
				res.Detect(f, int(src.DetectedAt[f]))
				frozen[f] = true
			}
		}
		if ids == nil {
			for f := 0; f < len(u.Faults); f++ {
				mergeFault(int32(f))
			}
		} else {
			for _, f := range ids {
				mergeFault(f)
			}
		}
		if wi+1 < w {
			var repEnd *csim.SeqState
			if rep != nil {
				repEnd = rep.end
			}
			exact = csim.SpliceSeqState(spec[wi].end, repEnd, dirty, isFrozen)
		}
	}
	ssp.End()
	msp := ob.Span("merge")
	merged := csim.MergeStats(allStats...)
	msp.End()
	return res, merged, repaired, nil
}
