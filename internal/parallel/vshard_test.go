package parallel

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/obs"
	"repro/internal/vectors"
)

// TestVectorShardedMatchesSingleThreaded: csim-V2 at several window
// counts must produce a Result byte-identical to the single-threaded
// csim run — detections, first-detection vectors and potential
// detections — on generated sequential circuits.
func TestVectorShardedMatchesSingleThreaded(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := testCircuit(t, 8000+seed, 4, 4, 6, 70)
		u := faults.StuckCollapsed(c)
		vs := vectors.Random(c, 120, seed)
		single, err := csim.New(u, csim.MV())
		if err != nil {
			t.Fatal(err)
		}
		want := single.Run(vs)
		for _, w := range []int{1, 2, 3, 5, 8} {
			got, _, err := SimulateVectorSharded(u, vs, VOptions{Windows: w, Config: csim.MV()})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, fmt.Sprintf("seed %d windows %d", seed, w), want, got)
		}
	}
}

// TestVectorShardedTransition repeats the differential check on the
// transition model, where both the flip-flop elements and the per-fault
// driver history must survive window boundaries.
func TestVectorShardedTransition(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := testCircuit(t, 8100+seed, 4, 3, 6, 60)
		u := faults.Transition(c)
		vs := vectors.Random(c, 100, seed)
		single, err := csim.New(u, csim.MV())
		if err != nil {
			t.Fatal(err)
		}
		want := single.Run(vs)
		for _, w := range []int{2, 4, 7} {
			got, _, err := SimulateVectorSharded(u, vs, VOptions{Windows: w, Config: csim.MV()})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, fmt.Sprintf("seed %d windows %d", seed, w), want, got)
		}
	}
}

// TestGridMatchesSingleThreaded crosses both axes on generated circuits.
func TestGridMatchesSingleThreaded(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		c := testCircuit(t, 8200+seed, 5, 4, 8, 90)
		for _, model := range []string{"stuck", "transition"} {
			var u *faults.Universe
			if model == "stuck" {
				u = faults.StuckCollapsed(c)
			} else {
				u = faults.Transition(c)
			}
			vs := vectors.Random(c, 110, seed)
			single, err := csim.New(u, csim.MV())
			if err != nil {
				t.Fatal(err)
			}
			want := single.Run(vs)
			for _, shape := range [][2]int{{1, 1}, {1, 4}, {4, 1}, {2, 2}, {3, 5}} {
				got, _, err := SimulateGrid(u, vs, GridOptions{
					FaultShards: shape[0], Windows: shape[1], Config: csim.MV()})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, fmt.Sprintf("%s seed %d shape %dx%d",
					model, seed, shape[0], shape[1]), want, got)
			}
		}
	}
}

// TestVectorShardedAllISCAS is the bundled-circuit battery: on every
// suite circuit, both fault models, csim-V2 and the 2-D grid must be
// bit-identical to the single-threaded run (itself pinned to the serial
// oracle by the harness and integration tests). Vector counts scale down
// with circuit size to keep the battery fast; window counts stay
// non-trivial.
func TestVectorShardedAllISCAS(t *testing.T) {
	for _, name := range iscas.Names() {
		c := iscas.MustGet(name)
		nvec, windows := 100, []int{2, 4}
		switch {
		case len(c.Gates) > 10000:
			nvec, windows = 24, []int{3}
		case len(c.Gates) > 2000:
			nvec, windows = 48, []int{2, 4}
		}
		if testing.Short() && len(c.Gates) > 2000 {
			continue
		}
		vs := vectors.Random(c, nvec, 7)
		for _, model := range []string{"stuck", "transition"} {
			var u *faults.Universe
			if model == "stuck" {
				u = faults.StuckCollapsed(c)
			} else {
				u = faults.Transition(c)
			}
			single, err := csim.New(u, csim.MV())
			if err != nil {
				t.Fatal(err)
			}
			want := single.Run(vs)
			for _, w := range windows {
				got, _, err := SimulateVectorSharded(u, vs, VOptions{Windows: w, Config: csim.MV()})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, fmt.Sprintf("%s/%s/csim-V2.v%d", name, model, w), want, got)
			}
			got, _, err := SimulateGrid(u, vs, GridOptions{
				FaultShards: 2, Windows: 2, Config: csim.MV()})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, fmt.Sprintf("%s/%s/csim-grid.2x2", name, model), want, got)
		}
	}
}

// TestVectorShardedOneWindowStats: a one-window csim-V2 run performs
// exactly the work of a one-partition csim-P run (same trace replay,
// same cycles), so every merged counter must match.
func TestVectorShardedOneWindowStats(t *testing.T) {
	c := testCircuit(t, 8300, 5, 4, 8, 100)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 150, 9)
	_, pstats, err := Simulate(u, vs, Options{Workers: 1, Config: csim.MV()})
	if err != nil {
		t.Fatal(err)
	}
	_, vstats, err := SimulateVectorSharded(u, vs, VOptions{Windows: 1, Config: csim.MV()})
	if err != nil {
		t.Fatal(err)
	}
	if vstats != pstats {
		t.Errorf("one-window csim-V2 stats %+v, one-partition csim-P %+v", vstats, pstats)
	}
}

// TestGridShapesDeterministic is the MergeStats scheduling-order
// regression test: for every shard shape, repeated runs must merge to
// byte-identical Stats (MergeStats must not depend on goroutine
// scheduling), and the detections — including first-detection cycles —
// must be identical across all shapes and to the single-threaded run.
func TestGridShapesDeterministic(t *testing.T) {
	c := testCircuit(t, 8400, 6, 5, 9, 110)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 150, 23)
	single, err := csim.New(u, csim.MV())
	if err != nil {
		t.Fatal(err)
	}
	want := single.Run(vs)
	for _, shape := range [][2]int{{1, 1}, {1, 4}, {4, 1}, {2, 2}, {7, 3}} {
		tag := fmt.Sprintf("shape %dx%d", shape[0], shape[1])
		var first csim.Stats
		for rep := 0; rep < 3; rep++ {
			res, st, err := SimulateGrid(u, vs, GridOptions{
				FaultShards: shape[0], Windows: shape[1], Config: csim.MV()})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, tag, want, res)
			if rep == 0 {
				first = st
				continue
			}
			if st != first {
				t.Errorf("%s rep %d: merged stats %+v, first run %+v", tag, rep, st, first)
			}
		}
	}
}

// TestMergeStatsOrderInsensitive pins MergeStats itself: merging the same
// per-shard stats in any order must give the same totals, so the merged
// block cannot depend on worker completion order.
func TestMergeStatsOrderInsensitive(t *testing.T) {
	parts := []csim.Stats{
		{Evals: 10, Skips: 3, GoodEvals: 7, Scheds: 12, PeakElems: 40, CurElems: 2, Detections: 5, Macros: 9, MemBytes: 640},
		{Evals: 1, Skips: 30, GoodEvals: 2, Scheds: 4, PeakElems: 8, CurElems: 0, Detections: 1, Macros: 9, MemBytes: 128},
		{Evals: 100, Skips: 0, GoodEvals: 50, Scheds: 60, PeakElems: 200, CurElems: 11, Detections: 17, Macros: 12, MemBytes: 3200},
	}
	want := csim.MergeStats(parts...)
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		got := csim.MergeStats(parts[p[0]], parts[p[1]], parts[p[2]])
		if got != want {
			t.Errorf("permutation %v: merged %+v, want %+v", p, got, want)
		}
	}
}

// TestObservedVectorShardedRun attaches the observability layer to a
// csim-V2 run: per-window namespaces, merged "csim-V2." totals matching
// the returned stats, the windows/repaired gauges, the phase spans, and
// no detection perturbation.
func TestObservedVectorShardedRun(t *testing.T) {
	c := testCircuit(t, 8500, 5, 4, 6, 120)
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 80, 11)
	const w = 3

	plain, _, err := SimulateVectorSharded(u, vs, VOptions{Windows: w, Config: csim.MV()})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	ob := &obs.Observer{Metrics: reg, Tracer: tr}
	res, merged, err := SimulateVectorSharded(u, vs, VOptions{Windows: w, Config: csim.MV(), Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	if diff := plain.Diff(res); diff != "" {
		t.Fatalf("observability changed the merged result:\n%s", diff)
	}
	got, ok := csim.StatsFromRegistry(reg, V2Prefix)
	if !ok {
		t.Fatalf("no merged stats under %q", V2Prefix)
	}
	if got != merged {
		t.Fatalf("registry merged stats %+v != returned %+v", got, merged)
	}
	if p, ok := reg.Get(V2Prefix + "windows"); !ok || p.Value != w {
		t.Fatalf("windows gauge = %+v, want %d", p, w)
	}
	if _, ok := reg.Get(V2Prefix + "repaired_faults"); !ok {
		t.Fatalf("repaired_faults gauge missing")
	}
	for i := 0; i < w; i++ {
		if _, ok := csim.StatsFromRegistry(reg, WindowPrefix(i)); !ok {
			t.Fatalf("window %d published no metrics under %q", i, WindowPrefix(i))
		}
	}
	durs := tr.PhaseDurations()
	for _, phase := range []string{"good-sim", "window-plan", "fault-sim", "stitch", "merge"} {
		if _, ok := durs[phase]; !ok {
			t.Errorf("phase span %q missing (have %v)", phase, durs)
		}
	}
	for i := 0; i < w; i++ {
		if _, ok := durs[fmt.Sprintf("window%d", i)]; !ok {
			t.Errorf("window%d span missing", i)
		}
	}
}

// assertSameResult compares detections, first-detection vectors and
// potential detections.
func assertSameResult(t *testing.T, tag string, want, got *faults.Result) {
	t.Helper()
	if d := want.Diff(got); d != "" {
		t.Errorf("%s: detections differ:\n%s", tag, d)
		return
	}
	if !reflect.DeepEqual(want.DetectedAt, got.DetectedAt) {
		t.Errorf("%s: first-detection indices differ", tag)
	}
	if !reflect.DeepEqual(want.PotDetected, got.PotDetected) {
		t.Errorf("%s: potential detections differ", tag)
	}
}
