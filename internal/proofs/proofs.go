// Package proofs reimplements the comparison baseline of the paper's §4:
// PROOFS (Niermann, Cheng and Patel, DAC 1990), a fault simulator for
// synchronous sequential circuits that combines single fault propagation
// with bit-parallelism. Undetected faults are packed 64 to a machine word;
// for each group the faulty machines start from the good-machine values,
// differ only in their stored flip-flop state differences and injected
// fault sites, and are propagated event-driven through the levelized
// network using two bit-plane ternary encoding.
package proofs

import (
	"fmt"
	"math/bits"

	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// W is the group width: faults simulated concurrently per pass.
const W = 64

// ffDiff records one flip-flop whose faulty state differs from the good
// machine: PROOFS stores faulty state as differences, which is what makes
// it memory-efficient.
type ffDiff struct {
	ff  int32 // index into circuit DFFs
	val logic.V
}

// Stats instruments a run.
type Stats struct {
	Groups    int   // fault-group propagation passes
	Evals     int   // bit-parallel gate evaluations
	PeakDiffs int   // high-water mark of stored FF differences
	MemBytes  int64 // accounted memory at peak (diffs + planes)
}

// Sim is a PROOFS-style fault simulator. Only stuck-at universes are
// supported (the paper, like PROOFS itself, runs transition faults only on
// the concurrent simulator).
type Sim struct {
	c    *netlist.Circuit
	u    *faults.Universe
	good *goodsim.Sim
	res  *faults.Result

	active []int32    // undetected fault IDs, in ID order
	diffs  [][]ffDiff // per fault: FF state differences vs good

	// Per-group scratch, epoch-stamped so only touched gates are reset.
	v1, v0  []uint64
	stamp   []int32
	epoch   int32
	sched   []bool
	queue   [][]netlist.GateID
	touched []netlist.GateID

	// Current group's injections at combinational gate sites.
	inject   [][]injection
	injGates []netlist.GateID

	// dffsFedBy[g] lists DFF indices whose D input is gate g.
	dffsFedBy [][]int32

	stats    Stats
	vecIndex int
}

type injection struct {
	lane int
	pin  int // faults.OutPin for output forcing
	val  logic.V
}

// New builds a PROOFS simulator over a stuck-at universe.
func New(u *faults.Universe) (*Sim, error) {
	for i := range u.Faults {
		if !u.Faults[i].Kind.Stuck() {
			return nil, fmt.Errorf("proofs: fault %d is not stuck-at", i)
		}
	}
	c := u.Circuit
	n := len(c.Gates)
	s := &Sim{
		c: c, u: u,
		good:      goodsim.New(c),
		res:       faults.NewResult(u),
		diffs:     make([][]ffDiff, len(u.Faults)),
		v1:        make([]uint64, n),
		v0:        make([]uint64, n),
		stamp:     make([]int32, n),
		sched:     make([]bool, n),
		queue:     make([][]netlist.GateID, c.MaxLevel+1),
		inject:    make([][]injection, n),
		dffsFedBy: make([][]int32, n),
	}
	for i := range s.stamp {
		s.stamp[i] = -1
	}
	s.active = make([]int32, len(u.Faults))
	for i := range s.active {
		s.active[i] = int32(i)
	}
	for di, ff := range c.DFFs {
		d := c.Gate(ff).Fanin[0]
		s.dffsFedBy[d] = append(s.dffsFedBy[d], int32(di))
	}
	return s, nil
}

// Result returns the accumulated detections.
func (s *Sim) Result() *faults.Result { return s.res }

// Stats returns instrumentation counters.
func (s *Sim) Stats() Stats {
	st := s.stats
	st.MemBytes = int64(st.PeakDiffs)*8 + int64(len(s.v1))*17
	return st
}

// planes returns the group bit-planes of gate g, lazily initialized from
// the good value when the gate was not yet touched in this group.
func (s *Sim) planes(g netlist.GateID) (uint64, uint64) {
	if s.stamp[g] != s.epoch {
		s.initPlanes(g)
	}
	return s.v1[g], s.v0[g]
}

func (s *Sim) initPlanes(g netlist.GateID) {
	switch s.good.Val(g) {
	case logic.One:
		s.v1[g], s.v0[g] = ^uint64(0), 0
	case logic.Zero:
		s.v1[g], s.v0[g] = 0, ^uint64(0)
	default:
		s.v1[g], s.v0[g] = 0, 0
	}
	s.stamp[g] = s.epoch
}

func (s *Sim) setLane(g netlist.GateID, lane int, v logic.V) {
	if s.stamp[g] != s.epoch {
		s.initPlanes(g)
	}
	m := uint64(1) << uint(lane)
	s.v1[g] &^= m
	s.v0[g] &^= m
	switch v {
	case logic.One:
		s.v1[g] |= m
	case logic.Zero:
		s.v0[g] |= m
	}
}

func laneVal(v1, v0 uint64, lane int) logic.V {
	m := uint64(1) << uint(lane)
	switch {
	case v1&m != 0:
		return logic.One
	case v0&m != 0:
		return logic.Zero
	}
	return logic.X
}

func (s *Sim) schedule(g netlist.GateID) {
	if s.sched[g] || s.c.Gate(g).IsSource() {
		return
	}
	s.sched[g] = true
	s.queue[s.c.Gate(g).Level] = append(s.queue[s.c.Gate(g).Level], g)
}

func (s *Sim) scheduleFanouts(g netlist.GateID) {
	for _, fo := range s.c.Gate(g).Fanout {
		s.schedule(fo)
	}
}

// evalGroup evaluates gate g bit-parallel over the group, applying any pin
// injections, and returns the new planes.
func (s *Sim) evalGroup(g netlist.GateID, inj []injection) (uint64, uint64) {
	gate := s.c.Gate(g)
	var o1, o0 uint64
	first := true
	acc := func(a1, a0 uint64) {
		switch gate.Op.Base() {
		case logic.OpAnd:
			if first {
				o1, o0 = a1, a0
			} else {
				o1, o0 = o1&a1, o0|a0
			}
		case logic.OpOr:
			if first {
				o1, o0 = a1, a0
			} else {
				o1, o0 = o1|a1, o0&a0
			}
		case logic.OpXor:
			if first {
				o1, o0 = a1, a0
			} else {
				o1, o0 = o1&a0|o0&a1, o1&a1|o0&a0
			}
		default: // BUFF base
			o1, o0 = a1, a0
		}
		first = false
	}
	for p, f := range gate.Fanin {
		a1, a0 := s.planes(f)
		for _, in := range inj {
			if in.pin == p {
				m := uint64(1) << uint(in.lane)
				a1 &^= m
				a0 &^= m
				if in.val == logic.One {
					a1 |= m
				} else if in.val == logic.Zero {
					a0 |= m
				}
			}
		}
		acc(a1, a0)
	}
	if gate.Op.Inverting() {
		o1, o0 = o0, o1
	}
	for _, in := range inj {
		if in.pin == faults.OutPin {
			m := uint64(1) << uint(in.lane)
			o1 &^= m
			o0 &^= m
			if in.val == logic.One {
				o1 |= m
			} else if in.val == logic.Zero {
				o0 |= m
			}
		}
	}
	s.stats.Evals++
	return o1, o0
}

// Cycle simulates one clock period for the good machine and every active
// fault.
func (s *Sim) Cycle(vec []logic.V) {
	s.good.Apply(vec)

	for lo := 0; lo < len(s.active); lo += W {
		hi := lo + W
		if hi > len(s.active) {
			hi = len(s.active)
		}
		s.runGroup(s.active[lo:hi])
	}

	// Remove dropped faults from the active list.
	keep := s.active[:0]
	for _, fid := range s.active {
		if !s.res.Detected[fid] {
			keep = append(keep, fid)
		} else {
			s.diffs[fid] = nil
		}
	}
	s.active = keep

	s.good.Clock()
	s.vecIndex++
}

// runGroup propagates one group of up to W faults through the settled
// combinational network and computes their next flip-flop differences.
func (s *Sim) runGroup(group []int32) {
	s.epoch++
	s.stats.Groups++
	s.touched = s.touched[:0]
	c := s.c

	// Install FF state differences and fault injections.
	for lane, fid := range group {
		f := &s.u.Faults[fid]
		for _, d := range s.diffs[fid] {
			ff := c.DFFs[d.ff]
			s.setLane(ff, lane, d.val)
			s.scheduleFanouts(ff)
		}
		site := f.Gate
		sg := c.Gate(site)
		switch {
		case sg.Op == logic.OpInput:
			// PI output fault: force the source lane directly.
			s.setLane(site, lane, f.Kind.StuckValue())
			s.scheduleFanouts(site)
		case sg.Op == logic.OpDFF:
			if f.Pin == faults.OutPin {
				s.setLane(site, lane, f.Kind.StuckValue())
				s.scheduleFanouts(site)
			}
			// D-pin faults act at the clock edge; handled below.
		default:
			if len(s.inject[site]) == 0 {
				s.injGates = append(s.injGates, site)
			}
			s.inject[site] = append(s.inject[site],
				injection{lane: lane, pin: f.Pin, val: f.Kind.StuckValue()})
			s.schedule(site)
		}
	}

	// Event-driven propagation in level order.
	for l := 1; l < len(s.queue); l++ {
		bucket := s.queue[l]
		for i := 0; i < len(bucket); i++ {
			g := bucket[i]
			s.sched[g] = false
			o1, o0 := s.evalGroup(g, s.inject[g])
			p1, p0 := s.planes(g)
			if o1 != p1 || o0 != p0 {
				s.v1[g], s.v0[g] = o1, o0
				s.scheduleFanouts(g)
			}
			if len(s.dffsFedBy[g]) > 0 {
				s.touched = append(s.touched, g)
			}
		}
		s.queue[l] = s.queue[l][:0]
	}

	// Detection at the primary outputs.
	var det, pot uint64
	groupMask := ^uint64(0)
	if len(group) < W {
		groupMask = (uint64(1) << uint(len(group))) - 1
	}
	for _, po := range c.POs {
		if s.stamp[po] != s.epoch {
			continue // untouched: identical to good
		}
		if !s.good.Val(po).Binary() {
			continue
		}
		x := ^(s.v1[po] | s.v0[po])
		pot |= x
		if s.good.Val(po) == logic.One {
			det |= s.v0[po]
		} else {
			det |= s.v1[po]
		}
	}
	det &= groupMask
	pot &= groupMask
	for d := pot; d != 0; d &= d - 1 {
		s.res.PotDetect(group[bits.TrailingZeros64(d)])
	}
	for d := det; d != 0; d &= d - 1 {
		lane := bits.TrailingZeros64(d)
		s.res.Detect(group[lane], s.vecIndex)
	}

	// Next-state differences: only flip-flops whose D gate was touched can
	// differ from the new good state; plus explicit DFF-pin faults.
	var carry []ffDiff
	for lane, fid := range group {
		if s.res.Detected[fid] {
			s.diffs[fid] = s.diffs[fid][:0]
			continue
		}
		// A faulty flip-flop that directly feeds another flip-flop's D pin
		// latches its (source-side) difference through; sources never
		// enter touched, so collect these carries before rebuilding.
		carry = carry[:0]
		for _, d := range s.diffs[fid] {
			src := c.DFFs[d.ff]
			for _, di := range s.dffsFedBy[src] {
				carry = append(carry, ffDiff{ff: di, val: d.val})
			}
		}
		nd := s.diffs[fid][:0]
		for _, g := range s.touched {
			for _, di := range s.dffsFedBy[g] {
				goodD := s.good.Val(g)
				fv := laneVal(s.v1[g], s.v0[g], lane)
				if fv != goodD {
					nd = append(nd, ffDiff{ff: di, val: fv})
				}
			}
		}
		for _, ce := range carry {
			goodNewQ := s.good.Val(c.Gate(c.DFFs[ce.ff]).Fanin[0])
			nd = setDiff(nd, ce.ff, ce.val, goodNewQ)
		}
		// Faults sited on sources feeding D pins, or on the DFF itself.
		f := &s.u.Faults[fid]
		nd = s.applyDFFSiteFault(nd, f, lane)
		s.diffs[fid] = nd
	}
	cur := 0
	for _, d := range s.diffs {
		cur += len(d)
	}
	if cur > s.stats.PeakDiffs {
		s.stats.PeakDiffs = cur
	}

	// Clear injections.
	for _, g := range s.injGates {
		s.inject[g] = s.inject[g][:0]
	}
	s.injGates = s.injGates[:0]
}

// applyDFFSiteFault folds persistent DFF-sited fault effects into the new
// difference list: an output stuck-at pins the FF state; a D-pin stuck-at
// pins the latched value; and a forced source (PI/DFF output fault)
// feeding a D pin latches through.
func (s *Sim) applyDFFSiteFault(nd []ffDiff, f *faults.Fault, lane int) []ffDiff {
	c := s.c
	site := c.Gate(f.Gate)
	// Forced sources (PI output fault or DFF output fault) directly
	// feeding D pins: the forced value latches into those FFs.
	if (site.Op == logic.OpInput || (site.Op == logic.OpDFF && f.Pin == faults.OutPin)) &&
		len(s.dffsFedBy[f.Gate]) > 0 {
		for _, di := range s.dffsFedBy[f.Gate] {
			goodD := s.good.Val(f.Gate)
			nd = setDiff(nd, di, f.Kind.StuckValue(), goodD)
		}
	}
	if site.Op != logic.OpDFF {
		return nd
	}
	di := int32(-1)
	for i, ff := range c.DFFs {
		if ff == f.Gate {
			di = int32(i)
			break
		}
	}
	goodNewQ := s.good.Val(site.Fanin[0])
	switch f.Pin {
	case faults.OutPin:
		nd = setDiff(nd, di, f.Kind.StuckValue(), goodNewQ)
	case 0:
		nd = setDiff(nd, di, f.Kind.StuckValue(), goodNewQ)
	}
	return nd
}

// setDiff sets or clears the difference entry for one FF.
func setDiff(nd []ffDiff, di int32, v, goodNew logic.V) []ffDiff {
	for i := range nd {
		if nd[i].ff == di {
			if v == goodNew {
				return append(nd[:i], nd[i+1:]...)
			}
			nd[i].val = v
			return nd
		}
	}
	if v != goodNew {
		nd = append(nd, ffDiff{ff: di, val: v})
	}
	return nd
}

// Run simulates the whole vector set.
func (s *Sim) Run(vs *vectors.Set) *faults.Result {
	if vs.NumPIs != len(s.c.PIs) {
		panic(fmt.Sprintf("proofs: vector width %d, circuit has %d PIs", vs.NumPIs, len(s.c.PIs)))
	}
	for _, v := range vs.Vecs {
		s.Cycle(v)
	}
	return s.res
}
