package proofs

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/serial"
	"repro/internal/vectors"
)

const s27Bench = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

var testCircuits = []struct{ name, text string }{
	{"s27", s27Bench},
	{"comb", `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
OUTPUT(w)
n1 = NAND(a, b)
n2 = NOR(b, c)
z = XOR(n1, n2)
w = AND(n1, n2, a)
`},
	{"ffchain", `
INPUT(a)
OUTPUT(z)
q1 = DFF(a)
q2 = DFF(q1)
q3 = DFF(q2)
z = XNOR(q3, a)
`},
	{"feedback", `
INPUT(en)
INPUT(d)
OUTPUT(q)
OUTPUT(nz)
sel = NOT(en)
h1 = AND(q, sel)
h2 = AND(d, en)
nxt = OR(h1, h2)
q = DFF(nxt)
nz = NOT(q)
`},
	{"piToDff", `
INPUT(a)
OUTPUT(z)
q = DFF(a)
z = NOT(q)
`},
	{"poOnPi", `
INPUT(a)
OUTPUT(a)
OUTPUT(z)
q = DFF(a)
z = NOT(q)
`},
}

func mustParse(t *testing.T, name, text string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMatchesSerial cross-validates PROOFS against the brute-force oracle:
// identical detected sets and identical first-detection vectors.
func TestMatchesSerial(t *testing.T) {
	for _, tc := range testCircuits {
		c := mustParse(t, tc.name, tc.text)
		for _, uni := range []struct {
			name string
			u    *faults.Universe
		}{
			{"full", faults.StuckAll(c)},
			{"collapsed", faults.StuckCollapsed(c)},
		} {
			vs := vectors.Random(c, 150, int64(len(tc.name)*31+7))
			want := serial.Simulate(uni.u, vs)
			sim, err := New(uni.u)
			if err != nil {
				t.Fatalf("%s/%s: New: %v", tc.name, uni.name, err)
			}
			got := sim.Run(vs)
			if d := want.Diff(got); d != "" {
				t.Errorf("%s/%s: PROOFS disagrees with serial:\n%s", tc.name, uni.name, d)
				continue
			}
			for i := range want.DetectedAt {
				if want.DetectedAt[i] != got.DetectedAt[i] {
					t.Errorf("%s/%s: fault %s first detected at %d, serial says %d",
						tc.name, uni.name, uni.u.Faults[i].Name(c),
						got.DetectedAt[i], want.DetectedAt[i])
					break
				}
				if want.PotDetected[i] != got.PotDetected[i] {
					t.Errorf("%s/%s: fault %s potential detection %v, serial says %v",
						tc.name, uni.name, uni.u.Faults[i].Name(c),
						got.PotDetected[i], want.PotDetected[i])
					break
				}
			}
		}
	}
}

// TestManyFaultsSpanGroups forces multiple 64-fault groups by using the
// full uncollapsed universe (s27 has 32 lines -> >64 faults).
func TestManyFaultsSpanGroups(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckAll(c)
	if u.NumFaults() <= W {
		t.Fatalf("universe too small (%d) to span groups", u.NumFaults())
	}
	vs := vectors.Random(c, 100, 555)
	sim, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	got := sim.Run(vs)
	want := serial.Simulate(u, vs)
	if d := want.Diff(got); d != "" {
		t.Errorf("multi-group run disagrees with serial:\n%s", d)
	}
	if sim.Stats().Groups == 0 {
		t.Error("no groups simulated")
	}
}

func TestRejectsTransitionUniverse(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	if _, err := New(faults.Transition(c)); err == nil {
		t.Error("New accepted a transition universe")
	}
}

func TestFaultDroppingShrinksWork(t *testing.T) {
	c := mustParse(t, "buf", "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
	u := faults.StuckAll(c)
	sim, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := vectors.ParseString("1\n0\n1\n0\n", 1)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(vs)
	if res.Coverage() != 1.0 {
		t.Fatalf("coverage %v, want 1", res.Coverage())
	}
	if len(sim.active) != 0 {
		t.Errorf("%d faults still active after full coverage", len(sim.active))
	}
}

func TestStatsPopulated(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	u := faults.StuckCollapsed(c)
	sim, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(vectors.Random(c, 50, 3))
	st := sim.Stats()
	if st.Groups == 0 || st.Evals == 0 || st.MemBytes == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}
