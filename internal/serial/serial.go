// Package serial is the brute-force oracle fault simulator: one complete
// faulty-machine resimulation of the whole vector sequence per fault, full
// level-order evaluation every cycle, no event-driven shortcuts. It is far
// too slow for the paper's workloads but algorithmically transparent, so
// the concurrent simulator and the PROOFS baseline are cross-validated
// against it in the integration tests.
package serial

import (
	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// machine is a full-evaluation simulator with an optional injected fault.
type machine struct {
	c   *netlist.Circuit
	val []logic.V

	fault      *faults.Fault // nil for the good machine
	prevDriver logic.V       // transition faults: driver value last cycle
}

func newMachine(c *netlist.Circuit, f *faults.Fault) *machine {
	m := &machine{c: c, val: make([]logic.V, len(c.Gates)), fault: f, prevDriver: logic.X}
	for i := range m.val {
		m.val[i] = logic.X
	}
	// An output stuck-at holds its line from time zero, before the first
	// evaluation or clock reaches it.
	if f != nil && f.Pin == faults.OutPin && f.Kind.Stuck() {
		m.val[f.Gate] = f.Kind.StuckValue()
	}
	return m
}

// pinValue returns the effective value of gate g's input pin p, applying
// the injected fault if it sits on that pin.
func (m *machine) pinValue(g netlist.GateID, p int, raw logic.V) logic.V {
	f := m.fault
	if f == nil || f.Gate != g || f.Pin != p {
		return raw
	}
	switch f.Kind {
	case faults.SA0, faults.SA1:
		return f.Kind.StuckValue()
	case faults.STR, faults.STF:
		return faults.TransitionFV(f.Kind, m.prevDriver, raw)
	}
	return raw
}

// outValue applies an output-pin stuck-at fault, if any, to gate g's value.
func (m *machine) outValue(g netlist.GateID, raw logic.V) logic.V {
	f := m.fault
	if f != nil && f.Gate == g && f.Pin == faults.OutPin && f.Kind.Stuck() {
		return f.Kind.StuckValue()
	}
	return raw
}

// cycle applies one vector, settles combinationally, samples POs, and
// clocks the flip-flops. It returns the sampled PO values.
func (m *machine) cycle(vec []logic.V) []logic.V {
	for i, pi := range m.c.PIs {
		m.val[pi] = m.outValue(pi, vec[i])
	}
	// Flip-flop outputs already hold state (set at previous clock).
	in := make([]logic.V, logic.MaxPins)
	for _, lv := range m.c.Levels {
		for _, id := range lv {
			g := m.c.Gate(id)
			for j, fi := range g.Fanin {
				in[j] = m.pinValue(id, j, m.val[fi])
			}
			m.val[id] = m.outValue(id, logic.Eval(g.Op, in[:len(g.Fanin)]))
		}
	}
	out := make([]logic.V, len(m.c.POs))
	for i, po := range m.c.POs {
		out[i] = m.val[po]
	}
	next := make([]logic.V, len(m.c.DFFs))
	for i, ff := range m.c.DFFs {
		d := m.pinValue(ff, 0, m.val[m.c.Gate(ff).Fanin[0]])
		next[i] = d
	}
	// Record the driver value for a transition fault site (the fired,
	// settled value): the delayed edge completes within the cycle, so the
	// site reaches the driver's value before the next sample. This must
	// happen after the D pins were sampled above.
	if f := m.fault; f != nil && !f.Kind.Stuck() {
		driver := m.c.Gate(f.Gate).Fanin[f.Pin]
		m.prevDriver = m.val[driver]
	}
	for i, ff := range m.c.DFFs {
		m.val[ff] = m.outValue(ff, next[i])
	}
	return out
}

// detected reports whether good/faulty PO samples expose the fault (both
// binary and different on at least one output) and whether they expose it
// potentially (good binary, faulty X).
func detected(good, faulty []logic.V) (hard, potential bool) {
	for i := range good {
		if !good[i].Binary() {
			continue
		}
		if faulty[i].Binary() && good[i] != faulty[i] {
			hard = true
		} else if !faulty[i].Binary() {
			potential = true
		}
	}
	return hard, potential
}

// Simulate runs every fault of u against the vector sequence and returns
// the detections. It handles stuck-at and transition universes uniformly.
func Simulate(u *faults.Universe, vecs *vectors.Set) *faults.Result {
	c := u.Circuit
	res := faults.NewResult(u)

	// Precompute the good-machine PO trace once.
	good := newMachine(c, nil)
	goodOut := make([][]logic.V, vecs.Len())
	for t, vec := range vecs.Vecs {
		goodOut[t] = good.cycle(vec)
	}

	for fi := range u.Faults {
		f := &u.Faults[fi]
		m := newMachine(c, f)
		for t, vec := range vecs.Vecs {
			out := m.cycle(vec)
			hard, potential := detected(goodOut[t], out)
			if potential {
				res.PotDetect(f.ID)
			}
			if hard {
				res.Detect(f.ID, t)
				break
			}
		}
	}
	return res
}
