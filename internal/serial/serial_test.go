package serial

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

func mustParse(t *testing.T, name, text string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustVecs(t *testing.T, text string, n int) *vectors.Set {
	t.Helper()
	v, err := vectors.ParseString(text, n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBufferStuckAt(t *testing.T) {
	c := mustParse(t, "buf", "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
	u := faults.StuckAll(c)
	vs := mustVecs(t, "1\n0\n", 1)
	res := Simulate(u, vs)
	// Every fault on the a->z line is detected: SA0s by vector 1,
	// SA1s by vector 0.
	for i, f := range u.Faults {
		if !res.Detected[i] {
			t.Errorf("fault %s undetected", f.Name(c))
			continue
		}
		wantAt := int32(0)
		if f.Kind == faults.SA1 {
			wantAt = 1
		}
		if res.DetectedAt[i] != wantAt {
			t.Errorf("fault %s detected at %d, want %d", f.Name(c), res.DetectedAt[i], wantAt)
		}
	}
	if res.Coverage() != 1.0 {
		t.Errorf("coverage = %v, want 1", res.Coverage())
	}
}

func TestAndGateStuckAt(t *testing.T) {
	c := mustParse(t, "and", "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")
	u := faults.StuckAll(c)
	// 11 detects all SA0 on the cone; 01 detects a-line SA1; 10 b-line SA1.
	vs := mustVecs(t, "11\n01\n10\n", 2)
	res := Simulate(u, vs)
	if res.Coverage() != 1.0 {
		t.Fatalf("coverage = %v, want 1\nundetected:\n%s", res.Coverage(), undetected(res))
	}
	// z output SA1 requires an output 0: first such vector is 01 (t=1).
	for i, f := range u.Faults {
		if f.Gate == c.MustByName("z") && f.Pin == faults.OutPin && f.Kind == faults.SA1 {
			if res.DetectedAt[i] != 1 {
				t.Errorf("z/O SA1 detected at %d, want 1", res.DetectedAt[i])
			}
		}
	}
}

func undetected(r *faults.Result) string {
	out := ""
	for i, d := range r.Detected {
		if !d {
			out += r.Universe.Faults[i].Name(r.Universe.Circuit) + "\n"
		}
	}
	return out
}

func TestSequentialStuckAt(t *testing.T) {
	// q latches a; PO observes q one cycle later.
	c := mustParse(t, "ff", "INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = BUFF(q)\n")
	u := faults.StuckAll(c)
	vs := mustVecs(t, "1\n0\n1\n", 1)
	res := Simulate(u, vs)
	// Detections are delayed one cycle through the FF: SA0 on the a line
	// needs a=1 latched then observed, i.e. cycle 1 at the earliest.
	for i, f := range u.Faults {
		if f.Kind == faults.SA0 && !res.Detected[i] {
			t.Errorf("SA0 fault %s undetected", f.Name(c))
		}
		if f.Kind == faults.SA0 && res.Detected[i] && res.DetectedAt[i] < 1 {
			t.Errorf("fault %s detected at %d, before FF could expose it",
				f.Name(c), res.DetectedAt[i])
		}
	}
	if res.Coverage() != 1.0 {
		t.Errorf("coverage = %v, want 1\n%s", res.Coverage(), undetected(res))
	}
}

func TestStuckOutputOnDFFForcedFromStart(t *testing.T) {
	c := mustParse(t, "ff", "INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = BUFF(q)\n")
	u := faults.StuckAll(c)
	var q1 int32 = -1
	for i, f := range u.Faults {
		if f.Gate == c.MustByName("q") && f.Pin == faults.OutPin && f.Kind == faults.SA1 {
			q1 = int32(i)
		}
	}
	// Good machine outputs X at cycle 0 (FF uninitialized), so the forced 1
	// cannot be detected at cycle 0; a=0 latched for cycle 1 exposes it.
	vs := mustVecs(t, "0\n0\n", 1)
	res := Simulate(u, vs)
	if !res.Detected[q1] || res.DetectedAt[q1] != 1 {
		t.Errorf("q/O SA1: detected=%v at %d, want detection at 1",
			res.Detected[q1], res.DetectedAt[q1])
	}
}

func TestTransitionBufferSTR(t *testing.T) {
	c := mustParse(t, "buf", "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
	u := faults.Transition(c)
	var str, stf int32 = -1, -1
	for i, f := range u.Faults {
		if f.Gate == c.MustByName("z") && f.Pin == 0 {
			if f.Kind == faults.STR {
				str = int32(i)
			} else {
				stf = int32(i)
			}
		}
	}
	// 0 then 1: a rising edge the STR fault delays past the sample.
	res := Simulate(u, mustVecs(t, "0\n1\n", 1))
	if !res.Detected[str] || res.DetectedAt[str] != 1 {
		t.Errorf("STR: detected=%v at %d, want at 1", res.Detected[str], res.DetectedAt[str])
	}
	if res.Detected[stf] {
		t.Error("STF detected by a rising-only sequence")
	}
	// 1 then 0 catches STF, not STR.
	res = Simulate(u, mustVecs(t, "1\n0\n", 1))
	if !res.Detected[stf] || res.DetectedAt[stf] != 1 {
		t.Errorf("STF: detected=%v at %d, want at 1", res.Detected[stf], res.DetectedAt[stf])
	}
	if res.Detected[str] {
		t.Error("STR detected by a falling-only sequence")
	}
}

func TestTransitionThroughFF(t *testing.T) {
	c := mustParse(t, "ff", "INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = BUFF(q)\n")
	u := faults.Transition(c)
	var strQ int32 = -1
	for i, f := range u.Faults {
		if f.Gate == c.MustByName("q") && f.Kind == faults.STR {
			strQ = int32(i)
		}
	}
	// Cycle 0: a=0, D site sees FV(X,0)=0, latch 0.
	// Cycle 1: a=1, 0->1 at the D pin is delayed: FV(0,1)=0, latch 0;
	//          good latches 1.
	// Cycle 2: good z = 1, faulty z = 0 -> detected.
	res := Simulate(u, mustVecs(t, "0\n1\n1\n", 1))
	if !res.Detected[strQ] || res.DetectedAt[strQ] != 2 {
		t.Errorf("STR at FF D pin: detected=%v at %d, want at 2",
			res.Detected[strQ], res.DetectedAt[strQ])
	}
}

func TestTransitionNotDetectedWithoutTransition(t *testing.T) {
	c := mustParse(t, "buf", "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
	u := faults.Transition(c)
	// Constant input: no transitions, no detections.
	res := Simulate(u, mustVecs(t, "1\n1\n1\n", 1))
	if res.NumDet != 0 {
		t.Errorf("constant input detected %d transition faults", res.NumDet)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	c := mustParse(t, "and", "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")
	u := faults.StuckCollapsed(c)
	vs := vectors.Random(c, 20, 5)
	a := Simulate(u, vs)
	b := Simulate(u, vs)
	if d := a.Diff(b); d != "" {
		t.Errorf("nondeterministic results:\n%s", d)
	}
}
