package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"sync"
	"sync/atomic"

	"repro/internal/compiled"
	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/macro"
	"repro/internal/netcheck"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Compiled is one cached circuit with its derived artifacts: the parsed
// and verified netlist plus lazily built, memoized fault universes (per
// model) and macro plans (per extraction mode). All artifacts are
// immutable once built and safe to share across concurrent jobs — csim
// reads plans and universes without mutating them, exactly as csim-P's
// partitions already share one universe.
type Compiled struct {
	// Key is the cache key ("suite:<name>" or "sha256:<hex>").
	Key string
	// Circuit is the parsed, netcheck-verified netlist.
	Circuit *netlist.Circuit

	mu sync.Mutex
	//simlint:guarded_by(mu)
	universes map[string]*faults.Universe
	//simlint:guarded_by(mu)
	plans map[string]*macro.Plan
	//simlint:guarded_by(mu)
	program *compiled.Program
}

// Program returns the memoized csim-C compiled form of the circuit,
// lowering it on first use. Like plans and universes it is immutable
// and shared: every csim-C job on this circuit reuses one Program.
func (cc *Compiled) Program() *compiled.Program {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.program == nil {
		cc.program = compiled.Compile(cc.Circuit, nil)
	}
	return cc.program
}

// Universe returns the memoized fault universe for a model ("stuck",
// "stuck-all", "transition"), collapsing it on first use.
func (cc *Compiled) Universe(model string) (*faults.Universe, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if u, ok := cc.universes[model]; ok {
		return u, nil
	}
	var u *faults.Universe
	switch model {
	case "stuck":
		u = faults.StuckCollapsed(cc.Circuit)
	case "stuck-all":
		u = faults.StuckAll(cc.Circuit)
	case "transition":
		u = faults.Transition(cc.Circuit)
	default:
		return nil, fmt.Errorf("service: unknown fault model %q", model)
	}
	cc.universes[model] = u
	return u, nil
}

// Plan returns the memoized macro plan for a csim configuration,
// extracting it on first use. The plan key distinguishes trivial,
// fanout-free and reconvergent extraction at each MacroMaxInputs.
func (cc *Compiled) Plan(cfg csim.Config) (*macro.Plan, error) {
	maxIn := cfg.MacroMaxInputs
	if maxIn == 0 {
		maxIn = macro.DefaultMaxInputs
	}
	var key string
	switch {
	case cfg.ReconvergentMacros:
		key = fmt.Sprintf("reconv:%d", maxIn)
	case cfg.Macros:
		key = fmt.Sprintf("ffr:%d", maxIn)
	default:
		key = "trivial"
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if p, ok := cc.plans[key]; ok {
		return p, nil
	}
	var p *macro.Plan
	var err error
	switch {
	case cfg.ReconvergentMacros:
		p, err = macro.ExtractReconvergent(cc.Circuit, maxIn)
	case cfg.Macros:
		p, err = macro.Extract(cc.Circuit, maxIn)
	default:
		p = macro.Trivial(cc.Circuit)
	}
	if err != nil {
		return nil, err
	}
	cc.plans[key] = p
	return p, nil
}

// CompileError is a structured compilation failure: a parse error or a
// list of netcheck diagnostics. The server renders it as a 400 body so
// a malformed inline .bench comes back with the same diagnostics
// `cmd/csim -check` would print.
type CompileError struct {
	// Msg is the one-line summary.
	Msg string
	// Problems are the individual diagnostics (netcheck problems or the
	// parse error).
	Problems []string
}

// Error renders the summary plus problem count.
func (e *CompileError) Error() string {
	return fmt.Sprintf("%s (%d problem(s))", e.Msg, len(e.Problems))
}

// cacheEntry is one LRU slot. The build is single-flighted through
// once: concurrent first requests for the same key block on one parse.
type cacheEntry struct {
	key  string
	once sync.Once
	cc   *Compiled
	err  error
	elem *list.Element
	// built flips true once the single-flight build finished; Peek only
	// serves built entries, so it never races (or steals) the once.
	built atomic.Bool
}

// Cache is the compiled-circuit cache: an LRU over Compiled entries
// keyed by circuit identity, with hit/miss/eviction metrics. A suite
// circuit is keyed by name; an inline netlist by the SHA-256 of its
// text, so resubmitting the same .bench body — byte for byte — hits
// regardless of the client.
type Cache struct {
	mu  sync.Mutex
	max int
	//simlint:guarded_by(mu)
	entries map[string]*cacheEntry
	//simlint:guarded_by(mu)
	ll *list.List // front = most recently used

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	size      *obs.Gauge
}

// NewCache builds a cache bounded to max compiled circuits (min 1),
// registering its metrics (serve.cache_*) in reg (nil disables metrics).
func NewCache(max int, reg *obs.Registry) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:       max,
		entries:   map[string]*cacheEntry{},
		ll:        list.New(),
		hits:      reg.Counter("serve.cache_hits"),
		misses:    reg.Counter("serve.cache_misses"),
		evictions: reg.Counter("serve.cache_evictions"),
		size:      reg.Gauge("serve.cache_entries"),
	}
}

// SuiteKey is the cache key of a built-in suite circuit.
func SuiteKey(name string) string { return "suite:" + name }

// InlineKey is the cache key of an inline netlist body.
func InlineKey(bench string) string {
	sum := sha256.Sum256([]byte(bench))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// BenchKeyMissProblem is the stable problems-list entry of the 400 a
// bench_key submission draws when the referenced circuit is not (or no
// longer) in the cache. A coordinator seeing it re-ships the netlist
// text instead of the key.
const BenchKeyMissProblem = "bench-key-miss"

// Lookup resolves a job spec to a compiled circuit, reporting whether it
// was served from cache. Build failures (parse errors, netcheck
// diagnostics, unknown suite names) return a *CompileError and are not
// cached — a client fixing its netlist should not need to wait out a
// negative entry. A BenchKey spec never builds: it either hits the
// already-cached circuit or fails with a BenchKeyMissProblem
// *CompileError telling the submitter to re-ship the text.
func (c *Cache) Lookup(spec *JobSpec) (cc *Compiled, hit bool, err error) {
	if spec.Circuit != "" {
		return c.get(SuiteKey(spec.Circuit), func() (*netlist.Circuit, error) {
			return iscas.Get(spec.Circuit)
		})
	}
	if spec.BenchKey != "" {
		cc, ok := c.Peek(spec.BenchKey)
		if !ok {
			return nil, false, &CompileError{
				Msg:      fmt.Sprintf("bench_key %q is not in the compiled-circuit cache (evicted, or never shipped); resubmit with the inline netlist", spec.BenchKey),
				Problems: []string{BenchKeyMissProblem},
			}
		}
		return cc, true, nil
	}
	return c.get(InlineKey(spec.Bench), func() (*netlist.Circuit, error) {
		return netlist.ParseBenchString(spec.BenchName, spec.Bench)
	})
}

// Peek returns the already-built entry for key without building,
// refreshing its LRU position and counting a hit or miss. A key whose
// single-flight build is still in flight reads as a miss — the
// submitter falls back to shipping the text, which joins the build.
func (c *Cache) Peek(key string) (*Compiled, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.ll.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	if !ok || !e.built.Load() || e.err != nil || e.cc == nil {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return e.cc, true
}

// get returns the entry for key, building it single-flight on miss.
func (c *Cache) get(key string, parse func() (*netlist.Circuit, error)) (*Compiled, bool, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.ll.MoveToFront(e.elem)
	} else {
		e = &cacheEntry{key: key}
		e.elem = c.ll.PushFront(e)
		c.entries[key] = e
		for c.ll.Len() > c.max {
			oldest := c.ll.Back()
			ev := oldest.Value.(*cacheEntry)
			c.ll.Remove(oldest)
			delete(c.entries, ev.key)
			c.evictions.Inc()
		}
		c.size.Set(int64(c.ll.Len()))
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.cc, e.err = compile(key, parse)
		e.built.Store(true)
	})
	if e.err != nil {
		// Failed builds don't count as cache entries: drop the slot so a
		// corrected resubmission re-parses immediately.
		c.mu.Lock()
		if cur, present := c.entries[key]; present && cur == e {
			c.ll.Remove(e.elem)
			delete(c.entries, key)
			c.size.Set(int64(c.ll.Len()))
		}
		c.mu.Unlock()
		c.misses.Inc()
		return nil, false, e.err
	}
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return e.cc, ok, nil
}

// compile parses and verifies one circuit.
func compile(key string, parse func() (*netlist.Circuit, error)) (*Compiled, error) {
	ckt, err := parse()
	if err != nil {
		return nil, &CompileError{Msg: "netlist rejected", Problems: []string{err.Error()}}
	}
	if ps := netcheck.Check(ckt); len(ps) > 0 {
		ce := &CompileError{Msg: "netlist failed structural verification"}
		for _, p := range ps {
			ce.Problems = append(ce.Problems, p.String())
		}
		return nil, ce
	}
	return &Compiled{
		Key: key, Circuit: ckt,
		universes: map[string]*faults.Universe{},
		plans:     map[string]*macro.Plan{},
	}, nil
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
