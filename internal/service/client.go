package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// QueueFullError is the client-side rendering of a 429: the server's
// admission queue was full. RetryAfter carries the server's hint.
type QueueFullError struct {
	// RetryAfter is the server's suggested backoff.
	RetryAfter time.Duration
	// Msg is the server's error line.
	Msg string
}

// Error renders the rejection with the backoff hint.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("queue full: %s (retry after %s)", e.Msg, e.RetryAfter)
}

// APIError is any non-2xx response other than a queue rejection.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Msg is the server's error line.
	Msg string
	// Problems carries structured diagnostics (netcheck output on a 400).
	Problems []string
}

// Error renders the status and message.
func (e *APIError) Error() string {
	if len(e.Problems) > 0 {
		return fmt.Sprintf("HTTP %d: %s (%d diagnostic(s), first: %s)",
			e.StatusCode, e.Msg, len(e.Problems), e.Problems[0])
	}
	return fmt.Sprintf("HTTP %d: %s", e.StatusCode, e.Msg)
}

// Client talks to a csimd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8416".
	BaseURL string
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient builds a client for a server root URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out,
// translating error statuses into *QueueFullError / *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the correlation ID: a context prepared with
	// obs.WithJobID names the job at submit time and correlates every
	// follow-up request — the coordinator→worker fan-out contract.
	if id := obs.JobIDFrom(ctx); id != "" {
		req.Header.Set(JobIDHeader, id)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		if resp.StatusCode == http.StatusTooManyRequests {
			retry := time.Second
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
			return &QueueFullError{RetryAfter: retry, Msg: eb.Error}
		}
		return &APIError{StatusCode: resp.StatusCode, Msg: eb.Error, Problems: eb.Problems}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit submits a job, returning its initial (queued) view. A full
// queue surfaces as *QueueFullError. When ctx carries a correlation ID
// (obs.WithJobID), it is sent as the X-Csim-Job-Id header and becomes
// the job's ID; a duplicate surfaces as an *APIError with status 409.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", spec, &v)
	return v, err
}

// Debug fetches a job's flight-recorder postmortem
// (GET /api/v1/jobs/{id}/debug).
func (c *Client) Debug(ctx context.Context, id string) (Postmortem, error) {
	var pm Postmortem
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/debug", nil, &pm)
	return pm, err
}

// Job fetches a job's current view.
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &v)
	return v, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+id, nil, &v)
	return v, err
}

// Wait polls a job until it reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobView, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return v, err
		}
		if v.Status.Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-t.C:
		}
	}
}

// Run submits a job and waits for its terminal view.
func (c *Client) Run(ctx context.Context, spec JobSpec, poll time.Duration) (JobView, error) {
	v, err := c.Submit(ctx, spec)
	if err != nil {
		return v, err
	}
	return c.Wait(ctx, v.ID, poll)
}

// Ready probes the server's /readyz endpoint: nil when the server
// accepts new jobs, an error when it is unreachable, down, or
// draining. The distributed coordinator's worker prober calls this.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Metricsz fetches the server's metrics snapshot (/metricsz) as a
// name → point map for assertions and load reports.
func (c *Client) Metricsz(ctx context.Context) (map[string]obs.Point, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metricsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metricsz: HTTP %d", resp.StatusCode)
	}
	var doc struct {
		Metrics []obs.Point `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("metricsz: %w", err)
	}
	out := make(map[string]obs.Point, len(doc.Metrics))
	for _, p := range doc.Metrics {
		out[p.Name] = p
	}
	return out, nil
}

// MetricszProm fetches the server's metrics in the Prometheus text
// exposition format (/metricsz?format=prometheus), raw.
func (c *Client) MetricszProm(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metricsz?format=prometheus", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metricsz: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("metricsz: %w", err)
	}
	return string(body), nil
}
