// Package service is the networked fault-simulation service behind
// cmd/csimd: an HTTP/JSON job API in front of the repository's engines.
// A job names a circuit (built-in suite member or inline .bench text), a
// fault model, a vector spec and an engine; jobs are admitted into a
// bounded queue (full queue → 429 + Retry-After, never a hang), executed
// by a worker pool that reuses the csim/csim-P engines, and their
// Result/Stats are retrievable as JSON until evicted. A compiled-circuit
// cache keyed by netlist hash memoizes parse + fault-list collapse +
// macro extraction, so repeated jobs on the same netlist skip cone
// compilation entirely. See DESIGN.md §10 and the README "Serving"
// section.
package service

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// JobIDHeader is the correlation header: a submit request may carry its
// own job ID in it (minted by a coordinator, say), the server echoes
// the admitted ID on every job-API response, and ServeClient forwards
// the ID it finds in the request context — so one correlation ID
// follows a job across process boundaries.
const JobIDHeader = "X-Csim-Job-Id"

// validJobID constrains client-supplied correlation IDs: 1–128 chars,
// leading alphanumeric, then alphanumerics plus . _ - (no "/", which
// the job API routes on).
func validJobID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if i == 0 {
			if !alnum {
				return false
			}
			continue
		}
		if !alnum && c != '.' && c != '_' && c != '-' {
			return false
		}
	}
	return true
}

// Fault models and engine names accepted by JobSpec, in the spelling the
// CLIs use.
var (
	// Models lists the accepted fault models.
	Models = []string{"stuck", "stuck-all", "transition"}
	// Engines lists the accepted engine names.
	Engines = []string{"csim", "csim-V", "csim-M", "csim-MV",
		"csim-MV-eagerdrop", "csim-MV-reconvergent", "csim-P", "csim-V2",
		"csim-grid", "csim-C", "PROOFS", "serial"}
)

// JobSpec is the submit-request body: what to simulate and how.
type JobSpec struct {
	// Circuit names a built-in suite circuit (e.g. "s5378"). Exactly one
	// of Circuit and Bench must be set.
	Circuit string `json:"circuit,omitempty"`
	// Bench is an inline ISCAS-89 .bench netlist. Its size is bounded by
	// the server's MaxInlineBytes (oversized → 413).
	Bench string `json:"bench,omitempty"`
	// BenchName names the inline netlist in diagnostics (default
	// "inline").
	BenchName string `json:"bench_name,omitempty"`
	// Model is the fault model: stuck (default), stuck-all, transition.
	Model string `json:"model,omitempty"`
	// Engine selects the simulator: csim, csim-V, csim-M, csim-MV
	// (default), csim-MV-eagerdrop, csim-MV-reconvergent, csim-P, csim-V2,
	// csim-grid, csim-C (compiled bit-parallel; reuses the circuit's
	// cached compiled program), PROOFS, serial.
	Engine string `json:"engine,omitempty"`
	// Workers is the csim-P partition worker count, or the csim-grid
	// fault-shard count (<=0: server default; for csim-grid, <=0 with
	// Windows <=0 lets the scheduler plan the whole shape).
	Workers int `json:"workers,omitempty"`
	// Windows is the csim-V2 / csim-grid vector-window count (<=0: server
	// default for csim-V2; scheduler-planned for csim-grid when Workers is
	// also <=0).
	Windows int `json:"windows,omitempty"`
	// Random asks for this many seeded random vectors. Exactly one of
	// Random and Vectors must be set.
	Random int `json:"random,omitempty"`
	// Seed seeds the random vectors (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Vectors is inline vector text: one 0/1/X line per cycle.
	Vectors string `json:"vectors,omitempty"`
	// TimeoutMS bounds the job's run time in milliseconds; 0 means the
	// server default. The server caps it at its configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// normalize fills defaults and validates the spec shape (everything that
// can be judged without compiling the circuit). It returns a user-facing
// error for a 400 response.
func (sp *JobSpec) normalize() error {
	if (sp.Circuit == "") == (sp.Bench == "") {
		return fmt.Errorf("exactly one of circuit and bench is required")
	}
	if sp.BenchName == "" {
		sp.BenchName = "inline"
	}
	if sp.Model == "" {
		sp.Model = "stuck"
	}
	if !contains(Models, sp.Model) {
		return fmt.Errorf("unknown fault model %q (models: %s)", sp.Model, strings.Join(Models, " | "))
	}
	if sp.Engine == "" {
		sp.Engine = "csim-MV"
	}
	if !contains(Engines, sp.Engine) {
		return fmt.Errorf("unknown engine %q (engines: %s)", sp.Engine, strings.Join(Engines, " | "))
	}
	if sp.Engine == "PROOFS" && sp.Model == "transition" {
		return fmt.Errorf("engine PROOFS simulates stuck-at faults only")
	}
	if (sp.Random > 0) == (sp.Vectors != "") {
		return fmt.Errorf("exactly one of random > 0 and vectors is required")
	}
	if sp.Random < 0 {
		return fmt.Errorf("random must be >= 0")
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. Queued and running are live; done, failed and
// cancelled are terminal.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// StatsView is the engine instrumentation block of a job result.
type StatsView struct {
	// Evals counts faulty-machine gate evaluations.
	Evals int `json:"evals"`
	// Skips counts merged machines skipped without re-evaluation.
	Skips int `json:"skips"`
	// GoodEvals counts good-machine value refreshes.
	GoodEvals int `json:"good_evals"`
	// Scheds counts macro roots scheduled for evaluation.
	Scheds int `json:"scheds"`
	// PeakElems is the high-water mark of live fault elements.
	PeakElems int `json:"peak_elems"`
	// Macros is the macro count of the plan in use.
	Macros int `json:"macros"`
	// MemBytes is the accounted fault-element memory at peak.
	MemBytes int64 `json:"mem_bytes"`
}

// ResultView is a finished job's payload: the detections and counters a
// harness.Measurement would carry, as JSON.
type ResultView struct {
	// Engine is the engine that ran.
	Engine string `json:"engine"`
	// Circuit is the simulated circuit's name.
	Circuit string `json:"circuit"`
	// Model is the fault model simulated.
	Model string `json:"model"`
	// Patterns is the applied vector count.
	Patterns int `json:"patterns"`
	// Faults is the fault-universe size.
	Faults int `json:"faults"`
	// Detected is the hard-detection count.
	Detected int `json:"detected"`
	// PotOnly counts potentially-but-never-hard detected faults.
	PotOnly int `json:"pot_only"`
	// Coverage is hard coverage in [0,1].
	Coverage float64 `json:"coverage"`
	// Workers is the csim-P partition / csim-grid fault-shard count
	// (0 otherwise).
	Workers int `json:"workers,omitempty"`
	// Windows is the csim-V2 / csim-grid vector-window count (0
	// otherwise).
	Windows int `json:"windows,omitempty"`
	// RunNS is the measured engine wall time in nanoseconds.
	RunNS int64 `json:"run_ns"`
	// CacheHit reports whether the compiled-circuit cache served the
	// netlist (parse + collapse + macro extraction skipped).
	CacheHit bool `json:"cache_hit"`
	// Stats is the engine instrumentation block (zero for PROOFS/serial).
	Stats StatsView `json:"stats"`
}

// JobView is the job-status response body.
type JobView struct {
	// ID is the job identifier ("j1", "j2", ...).
	ID string `json:"id"`
	// Status is the lifecycle state.
	Status Status `json:"status"`
	// Spec echoes the normalized submission.
	Spec JobSpec `json:"spec"`
	// Submitted, Started and Finished are RFC3339Nano timestamps; Started
	// and Finished are empty until reached.
	Submitted string `json:"submitted"`
	// Started is set when a worker picks the job up.
	Started string `json:"started,omitempty"`
	// Finished is set on a terminal state.
	Finished string `json:"finished,omitempty"`
	// Error describes a failed job.
	Error string `json:"error,omitempty"`
	// Result is present once Status is done.
	Result *ResultView `json:"result,omitempty"`
}

// Postmortem is the flight-recorder dump served at
// GET /api/v1/jobs/{id}/debug: the job's identity and terminal state
// plus every retained lifecycle event — admission, queueing, cache
// verdict, the scheduler's K×W decision and why, shard/window
// start/finish, repair counts, merge — oldest first. It is most useful
// for failed, timed-out or cancelled jobs, but is available for any
// job still retained.
type Postmortem struct {
	// JobID is the correlation ID.
	JobID string `json:"job_id"`
	// Status is the job's lifecycle state at dump time.
	Status Status `json:"status"`
	// Engine is the engine the spec named.
	Engine string `json:"engine"`
	// Circuit is the circuit label (suite name or inline bench name).
	Circuit string `json:"circuit"`
	// Model is the fault model.
	Model string `json:"model"`
	// Submitted, Started and Finished are RFC3339Nano timestamps
	// (Started/Finished empty until reached).
	Submitted string `json:"submitted"`
	// Started is set when a worker picked the job up.
	Started string `json:"started,omitempty"`
	// Finished is set on a terminal state.
	Finished string `json:"finished,omitempty"`
	// Error is the failure/cancellation reason, if any.
	Error string `json:"error,omitempty"`
	// Events is the flight-recorder ring content, oldest first.
	Events []obs.FlightEvent `json:"events"`
	// DroppedEvents counts events evicted by the ring bound.
	DroppedEvents int64 `json:"dropped_events"`
}

// job is the server-side record. Mutable fields are guarded by mu; done
// closes exactly once on reaching a terminal state.
type job struct {
	id   string
	spec JobSpec
	// cc and cacheHit are fixed at admission (the submit handler compiles
	// through the cache before enqueueing) and read-only afterwards.
	cc       *Compiled
	cacheHit bool
	// flight is the job's bounded lifecycle recorder, fixed at admission;
	// the recorder is internally synchronized.
	flight *obs.FlightRecorder

	mu        sync.Mutex
	status    Status
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       string
	result    *ResultView
	// cancelRun cancels the running job's context; nil until running.
	// Cancelling a queued job goes through the queue instead.
	cancelRun func()

	done chan struct{}
}

func newJob(id string, spec JobSpec, now time.Time) *job {
	return &job{
		id: id, spec: spec,
		status: StatusQueued, submitted: now,
		done: make(chan struct{}),
	}
}

// view snapshots the job for JSON.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Status:    j.status,
		Spec:      j.spec,
		Submitted: j.submitted.Format(time.RFC3339Nano),
		Error:     j.err,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		v.Started = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.Format(time.RFC3339Nano)
	}
	return v
}

// postmortem snapshots the job state and flight-recorder content.
func (j *job) postmortem() Postmortem {
	j.mu.Lock()
	pm := Postmortem{
		JobID:     j.id,
		Status:    j.status,
		Engine:    j.spec.Engine,
		Circuit:   circuitLabel(&j.spec),
		Model:     j.spec.Model,
		Submitted: j.submitted.Format(time.RFC3339Nano),
		Error:     j.err,
	}
	if !j.started.IsZero() {
		pm.Started = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		pm.Finished = j.finished.Format(time.RFC3339Nano)
	}
	j.mu.Unlock()
	pm.Events = j.flight.Events()
	if pm.Events == nil {
		pm.Events = []obs.FlightEvent{}
	}
	pm.DroppedEvents = j.flight.Dropped()
	return pm
}

// setRunning transitions queued → running; false when already terminal
// (a cancelled job popped by a worker).
func (j *job) setRunning(now time.Time, cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = now
	j.cancelRun = cancel
	return true
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(status Status, now time.Time, res *ResultView, err string) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.finished = now
	j.result = res
	j.err = err
	j.cancelRun = nil
	j.mu.Unlock()
	close(j.done)
}

// requestCancel asks a live job to stop: a queued job is finished here
// directly (the caller has already removed it from the queue); a running
// job has its context cancelled and finishes on the worker. Reports
// whether the job was still live.
func (j *job) requestCancel(now time.Time) bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.finished = now
		j.err = "cancelled while queued"
		j.mu.Unlock()
		j.flight.Record("finish", "cancelled while queued")
		close(j.done)
		return true
	}
	cancel := j.cancelRun
	j.mu.Unlock()
	j.flight.Record("cancel_requested", "cancelling the running engine")
	if cancel != nil {
		cancel()
	}
	return true
}

// currentStatus reads the state under the lock.
func (j *job) currentStatus() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}
