// Package service is the networked fault-simulation service behind
// cmd/csimd: an HTTP/JSON job API in front of the repository's engines.
// A job names a circuit (built-in suite member or inline .bench text), a
// fault model, a vector spec and an engine; jobs are admitted into a
// bounded queue (full queue → 429 + Retry-After, never a hang), executed
// by a worker pool that reuses the csim/csim-P engines, and their
// Result/Stats are retrievable as JSON until evicted. A compiled-circuit
// cache keyed by netlist hash memoizes parse + fault-list collapse +
// macro extraction, so repeated jobs on the same netlist skip cone
// compilation entirely. See DESIGN.md §10 and the README "Serving"
// section.
package service

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/obs"
)

// JobIDHeader is the correlation header: a submit request may carry its
// own job ID in it (minted by a coordinator, say), the server echoes
// the admitted ID on every job-API response, and ServeClient forwards
// the ID it finds in the request context — so one correlation ID
// follows a job across process boundaries. The accepted grammar and the
// server's "j<seq>" minting live in internal/jobid, shared with the
// distributed coordinator so shard IDs obey the same rules at every
// tier (including 409 on live-ID reuse).
const JobIDHeader = "X-Csim-Job-Id"

// Fault models and engine names accepted by JobSpec, in the spelling the
// CLIs use.
var (
	// Models lists the accepted fault models.
	Models = []string{"stuck", "stuck-all", "transition"}
	// Engines lists the accepted engine names.
	Engines = []string{"csim", "csim-V", "csim-M", "csim-MV",
		"csim-MV-eagerdrop", "csim-MV-reconvergent", "csim-P", "csim-V2",
		"csim-grid", "csim-C", "PROOFS", "serial"}
)

// JobSpec is the submit-request body: what to simulate and how.
type JobSpec struct {
	// Circuit names a built-in suite circuit (e.g. "s5378"). Exactly one
	// of Circuit and Bench must be set.
	Circuit string `json:"circuit,omitempty"`
	// Bench is an inline ISCAS-89 .bench netlist. Its size is bounded by
	// the server's MaxInlineBytes (oversized → 413).
	Bench string `json:"bench,omitempty"`
	// BenchKey references an inline netlist already in the server's
	// compiled-circuit cache by its cache key ("sha256:<hex>"), instead
	// of shipping the text again. The distributed coordinator ships a
	// circuit once per worker, then submits every further shard by key.
	// An unknown or evicted key is a 400 whose problems list carries
	// BenchKeyMissProblem, telling the submitter to re-ship the text.
	// Exactly one of Circuit, Bench and BenchKey must be set.
	BenchKey string `json:"bench_key,omitempty"`
	// BenchName names the inline netlist in diagnostics (default
	// "inline").
	BenchName string `json:"bench_name,omitempty"`
	// Model is the fault model: stuck (default), stuck-all, transition.
	Model string `json:"model,omitempty"`
	// Engine selects the simulator: csim, csim-V, csim-M, csim-MV
	// (default), csim-MV-eagerdrop, csim-MV-reconvergent, csim-P, csim-V2,
	// csim-grid, csim-C (compiled bit-parallel; reuses the circuit's
	// cached compiled program), PROOFS, serial.
	Engine string `json:"engine,omitempty"`
	// Workers is the csim-P partition worker count, or the csim-grid
	// fault-shard count (<=0: server default; for csim-grid, <=0 with
	// Windows <=0 lets the scheduler plan the whole shape).
	Workers int `json:"workers,omitempty"`
	// Windows is the csim-V2 / csim-grid vector-window count (<=0: server
	// default for csim-V2; scheduler-planned for csim-grid when Workers is
	// also <=0).
	Windows int `json:"windows,omitempty"`
	// Random asks for this many seeded random vectors. Exactly one of
	// Random and Vectors must be set.
	Random int `json:"random,omitempty"`
	// Seed seeds the random vectors (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Vectors is inline vector text: one 0/1/X line per cycle.
	Vectors string `json:"vectors,omitempty"`
	// TimeoutMS bounds the job's run time in milliseconds; 0 means the
	// server default. The server caps it at its configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// FaultShards restricts the job to one fault partition of a K-way
	// split: the universe is dealt by the deterministic csim-P
	// partitioner into FaultShards groups and only group FaultShard is
	// simulated. 0 (the default) simulates the whole universe. Shard
	// specs require engine csim-grid — they are what a distributed
	// coordinator submits to worker nodes, with Windows carrying the
	// vector-axis width of the shard.
	FaultShards int `json:"fault_shards,omitempty"`
	// FaultShard is the partition index in [0, FaultShards) when
	// FaultShards > 0.
	FaultShard int `json:"fault_shard,omitempty"`
	// ReturnDetections asks for the per-fault detection arrays
	// (ResultView.Detections) in addition to the counters — the payload
	// a coordinator needs to merge shard results deterministically.
	ReturnDetections bool `json:"return_detections,omitempty"`
}

// normalize fills defaults and validates the spec shape (everything that
// can be judged without compiling the circuit). It returns a user-facing
// error for a 400 response.
func (sp *JobSpec) normalize() error {
	set := 0
	for _, s := range []string{sp.Circuit, sp.Bench, sp.BenchKey} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("exactly one of circuit, bench and bench_key is required")
	}
	if sp.BenchName == "" {
		sp.BenchName = "inline"
	}
	if sp.Model == "" {
		sp.Model = "stuck"
	}
	if !contains(Models, sp.Model) {
		return fmt.Errorf("unknown fault model %q (models: %s)", sp.Model, strings.Join(Models, " | "))
	}
	if sp.Engine == "" {
		sp.Engine = "csim-MV"
	}
	if !contains(Engines, sp.Engine) {
		return fmt.Errorf("unknown engine %q (engines: %s)", sp.Engine, strings.Join(Engines, " | "))
	}
	if sp.Engine == "PROOFS" && sp.Model == "transition" {
		return fmt.Errorf("engine PROOFS simulates stuck-at faults only")
	}
	if (sp.Random > 0) == (sp.Vectors != "") {
		return fmt.Errorf("exactly one of random > 0 and vectors is required")
	}
	if sp.Random < 0 {
		return fmt.Errorf("random must be >= 0")
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	if sp.FaultShards < 0 {
		return fmt.Errorf("fault_shards must be >= 0")
	}
	if sp.FaultShards > 0 {
		if sp.Engine != "csim-grid" {
			return fmt.Errorf("fault-shard specs require engine csim-grid, not %q", sp.Engine)
		}
		if sp.FaultShard < 0 || sp.FaultShard >= sp.FaultShards {
			return fmt.Errorf("fault_shard %d outside [0, %d)", sp.FaultShard, sp.FaultShards)
		}
	} else if sp.FaultShard != 0 {
		return fmt.Errorf("fault_shard requires fault_shards > 0")
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. Queued and running are live; done, failed and
// cancelled are terminal.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// DetectionsView is the per-fault detection payload a result carries
// when the spec set ReturnDetections: enough to reconstruct — and
// deterministically merge — a faults.Result without re-simulating.
// Fault indexing follows the universe's collapsed order, which is a
// pure function of (circuit, model), so every node that compiles the
// same circuit agrees on it.
type DetectionsView struct {
	// DetectedAt is the first detecting vector index per fault, -1 when
	// undetected. Its length is the universe size.
	DetectedAt []int32 `json:"detected_at"`
	// Pot lists the indices of potentially-detected faults, ascending.
	Pot []int32 `json:"pot,omitempty"`
}

// NewDetectionsView extracts the detection payload from a result.
func NewDetectionsView(res *faults.Result) *DetectionsView {
	dv := &DetectionsView{DetectedAt: make([]int32, len(res.DetectedAt))}
	copy(dv.DetectedAt, res.DetectedAt)
	for i, p := range res.PotDetected {
		if p {
			dv.Pot = append(dv.Pot, int32(i))
		}
	}
	return dv
}

// Result reconstructs the faults.Result the payload was taken from,
// over a universe of the same (circuit, model). The round trip is
// exact, so coordinator-side MergeResults over reconstructed shard
// payloads equals a local merge of the in-process shard results.
func (dv *DetectionsView) Result(u *faults.Universe) (*faults.Result, error) {
	res := faults.NewResult(u)
	if len(dv.DetectedAt) != len(res.DetectedAt) {
		return nil, fmt.Errorf("service: detections payload covers %d faults, universe has %d",
			len(dv.DetectedAt), len(res.DetectedAt))
	}
	copy(res.DetectedAt, dv.DetectedAt)
	for i, at := range res.DetectedAt {
		if at >= 0 {
			res.Detected[i] = true
			res.NumDet++
		}
	}
	for _, id := range dv.Pot {
		if id < 0 || int(id) >= len(res.PotDetected) {
			return nil, fmt.Errorf("service: pot fault index %d out of range (universe %d)",
				id, len(res.PotDetected))
		}
		res.PotDetected[id] = true
	}
	return res, nil
}

// NumDetected counts the hard detections in the payload.
func (dv *DetectionsView) NumDetected() int {
	n := 0
	for _, at := range dv.DetectedAt {
		if at >= 0 {
			n++
		}
	}
	return n
}

// NumPotOnly counts faults potentially but never hard detected.
func (dv *DetectionsView) NumPotOnly() int {
	n := 0
	for _, id := range dv.Pot {
		if int(id) < len(dv.DetectedAt) && dv.DetectedAt[id] < 0 {
			n++
		}
	}
	return n
}

// StatsView is the engine instrumentation block of a job result.
type StatsView struct {
	// Evals counts faulty-machine gate evaluations.
	Evals int `json:"evals"`
	// Skips counts merged machines skipped without re-evaluation.
	Skips int `json:"skips"`
	// GoodEvals counts good-machine value refreshes.
	GoodEvals int `json:"good_evals"`
	// Scheds counts macro roots scheduled for evaluation.
	Scheds int `json:"scheds"`
	// PeakElems is the high-water mark of live fault elements.
	PeakElems int `json:"peak_elems"`
	// CurElems is the live fault-element count at the end of the run.
	CurElems int `json:"cur_elems,omitempty"`
	// Macros is the macro count of the plan in use.
	Macros int `json:"macros"`
	// MemBytes is the accounted fault-element memory at peak.
	MemBytes int64 `json:"mem_bytes"`
	// Detections counts the engine-observed detection events.
	Detections int `json:"detections,omitempty"`
}

// Stats converts the view back to the engine counter struct, so views
// collected from remote shards can merge through csim.MergeStats with
// the exact sum/max policies the local grid merge uses.
func (v StatsView) Stats() csim.Stats {
	return csim.Stats{
		Evals:      v.Evals,
		Skips:      v.Skips,
		GoodEvals:  v.GoodEvals,
		Scheds:     v.Scheds,
		PeakElems:  v.PeakElems,
		CurElems:   v.CurElems,
		Macros:     v.Macros,
		MemBytes:   v.MemBytes,
		Detections: v.Detections,
	}
}

// NewStatsView copies the engine counters into the view.
func NewStatsView(st csim.Stats) StatsView {
	return StatsView{
		Evals:      st.Evals,
		Skips:      st.Skips,
		GoodEvals:  st.GoodEvals,
		Scheds:     st.Scheds,
		PeakElems:  st.PeakElems,
		CurElems:   st.CurElems,
		Macros:     st.Macros,
		MemBytes:   st.MemBytes,
		Detections: st.Detections,
	}
}

// ResultView is a finished job's payload: the detections and counters a
// harness.Measurement would carry, as JSON.
type ResultView struct {
	// Engine is the engine that ran.
	Engine string `json:"engine"`
	// Circuit is the simulated circuit's name.
	Circuit string `json:"circuit"`
	// Model is the fault model simulated.
	Model string `json:"model"`
	// Patterns is the applied vector count.
	Patterns int `json:"patterns"`
	// Faults is the fault-universe size.
	Faults int `json:"faults"`
	// Detected is the hard-detection count.
	Detected int `json:"detected"`
	// PotOnly counts potentially-but-never-hard detected faults.
	PotOnly int `json:"pot_only"`
	// Coverage is hard coverage in [0,1].
	Coverage float64 `json:"coverage"`
	// Workers is the csim-P partition / csim-grid fault-shard count
	// (0 otherwise).
	Workers int `json:"workers,omitempty"`
	// Windows is the csim-V2 / csim-grid vector-window count (0
	// otherwise).
	Windows int `json:"windows,omitempty"`
	// RunNS is the measured engine wall time in nanoseconds.
	RunNS int64 `json:"run_ns"`
	// CacheHit reports whether the compiled-circuit cache served the
	// netlist (parse + collapse + macro extraction skipped).
	CacheHit bool `json:"cache_hit"`
	// Stats is the engine instrumentation block (zero for PROOFS/serial).
	Stats StatsView `json:"stats"`
	// Detections is the per-fault payload, present when the spec set
	// ReturnDetections.
	Detections *DetectionsView `json:"detections,omitempty"`
}

// JobView is the job-status response body.
type JobView struct {
	// ID is the job identifier ("j1", "j2", ...).
	ID string `json:"id"`
	// Status is the lifecycle state.
	Status Status `json:"status"`
	// DistPhase is the coordinator-side state-machine phase of a
	// distributed job (pending → dispatched → merging → done/failed);
	// empty for locally executed jobs.
	DistPhase string `json:"dist_phase,omitempty"`
	// Spec echoes the normalized submission.
	Spec JobSpec `json:"spec"`
	// Submitted, Started and Finished are RFC3339Nano timestamps; Started
	// and Finished are empty until reached.
	Submitted string `json:"submitted"`
	// Started is set when a worker picks the job up.
	Started string `json:"started,omitempty"`
	// Finished is set on a terminal state.
	Finished string `json:"finished,omitempty"`
	// Error describes a failed job.
	Error string `json:"error,omitempty"`
	// Result is present once Status is done.
	Result *ResultView `json:"result,omitempty"`
}

// Postmortem is the flight-recorder dump served at
// GET /api/v1/jobs/{id}/debug: the job's identity and terminal state
// plus every retained lifecycle event — admission, queueing, cache
// verdict, the scheduler's K×W decision and why, shard/window
// start/finish, repair counts, merge — oldest first. It is most useful
// for failed, timed-out or cancelled jobs, but is available for any
// job still retained.
type Postmortem struct {
	// JobID is the correlation ID.
	JobID string `json:"job_id"`
	// Status is the job's lifecycle state at dump time.
	Status Status `json:"status"`
	// Engine is the engine the spec named.
	Engine string `json:"engine"`
	// Circuit is the circuit label (suite name or inline bench name).
	Circuit string `json:"circuit"`
	// Model is the fault model.
	Model string `json:"model"`
	// Submitted, Started and Finished are RFC3339Nano timestamps
	// (Started/Finished empty until reached).
	Submitted string `json:"submitted"`
	// Started is set when a worker picked the job up.
	Started string `json:"started,omitempty"`
	// Finished is set on a terminal state.
	Finished string `json:"finished,omitempty"`
	// Error is the failure/cancellation reason, if any.
	Error string `json:"error,omitempty"`
	// Events is the flight-recorder ring content, oldest first.
	Events []obs.FlightEvent `json:"events"`
	// DroppedEvents counts events evicted by the ring bound.
	DroppedEvents int64 `json:"dropped_events"`
}

// job is the server-side record. Mutable fields are guarded by mu; done
// closes exactly once on reaching a terminal state.
type job struct {
	id   string
	spec JobSpec
	// cc and cacheHit are fixed at admission (the submit handler compiles
	// through the cache before enqueueing) and read-only afterwards.
	cc       *Compiled
	cacheHit bool
	// flight is the job's bounded lifecycle recorder, fixed at admission;
	// the recorder is internally synchronized.
	flight *obs.FlightRecorder

	mu        sync.Mutex
	status    Status
	distPhase string
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       string
	result    *ResultView
	// cancelRun cancels the running job's context; nil until running.
	// Cancelling a queued job goes through the queue instead.
	cancelRun func()

	done chan struct{}
}

func newJob(id string, spec JobSpec, now time.Time) *job {
	return &job{
		id: id, spec: spec,
		status: StatusQueued, submitted: now,
		done: make(chan struct{}),
	}
}

// view snapshots the job for JSON.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Status:    j.status,
		DistPhase: j.distPhase,
		Spec:      j.spec,
		Submitted: j.submitted.Format(time.RFC3339Nano),
		Error:     j.err,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		v.Started = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.Format(time.RFC3339Nano)
	}
	return v
}

// postmortem snapshots the job state and flight-recorder content.
func (j *job) postmortem() Postmortem {
	j.mu.Lock()
	pm := Postmortem{
		JobID:     j.id,
		Status:    j.status,
		Engine:    j.spec.Engine,
		Circuit:   circuitLabel(&j.spec),
		Model:     j.spec.Model,
		Submitted: j.submitted.Format(time.RFC3339Nano),
		Error:     j.err,
	}
	if !j.started.IsZero() {
		pm.Started = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		pm.Finished = j.finished.Format(time.RFC3339Nano)
	}
	j.mu.Unlock()
	pm.Events = j.flight.Events()
	if pm.Events == nil {
		pm.Events = []obs.FlightEvent{}
	}
	pm.DroppedEvents = j.flight.Dropped()
	return pm
}

// setRunning transitions queued → running; false when already terminal
// (a cancelled job popped by a worker).
func (j *job) setRunning(now time.Time, cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = now
	j.cancelRun = cancel
	return true
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(status Status, now time.Time, res *ResultView, err string) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.finished = now
	j.result = res
	j.err = err
	j.cancelRun = nil
	j.mu.Unlock()
	close(j.done)
}

// requestCancel asks a live job to stop: a queued job is finished here
// directly (the caller has already removed it from the queue); a running
// job has its context cancelled and finishes on the worker. Reports
// whether the job was still live.
func (j *job) requestCancel(now time.Time) bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.finished = now
		j.err = "cancelled while queued"
		j.mu.Unlock()
		j.flight.Record("finish", "cancelled while queued")
		close(j.done)
		return true
	}
	cancel := j.cancelRun
	j.mu.Unlock()
	j.flight.Record("cancel_requested", "cancelling the running engine")
	if cancel != nil {
		cancel()
	}
	return true
}

// currentStatus reads the state under the lock.
func (j *job) currentStatus() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// setDistPhase records the coordinator state-machine phase (surfaced in
// JobView.DistPhase) and mirrors it into the flight recorder.
func (j *job) setDistPhase(phase string) {
	j.mu.Lock()
	j.distPhase = phase
	j.mu.Unlock()
	j.flight.Recordf("dist_phase", "coordinator phase %s", phase)
}
