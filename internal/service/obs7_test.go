package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRetryAfterEmptyHistogram pins the 429 backoff fallback: before any
// job has finished, the run-time histogram is empty and the hint must be
// the 1-second floor, not zero or garbage.
func TestRetryAfterEmptyHistogram(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	if got := s.retryAfter(); got != 1 {
		t.Fatalf("retryAfter on empty histogram = %d, want 1", got)
	}
	// After observations the hint derives from the p90 and stays in the
	// clamp range.
	for i := 0; i < 20; i++ {
		s.hRunNS.Observe((2 * time.Second).Nanoseconds())
	}
	got := s.retryAfter()
	if got < 1 || got > 60 {
		t.Fatalf("retryAfter after observations = %d, want within [1,60]", got)
	}
}

// TestJobIDHeaderRoundTrip drives the correlation contract through
// ServeClient: an ID supplied via obs.WithJobID becomes the job's ID, is
// echoed in the response header, survives status polls, and collides
// with a 409 on reuse.
func TestJobIDHeaderRoundTrip(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 2})
	ctx := obs.WithJobID(ctxT(t), "trace-abc.1")

	v, err := cl.Submit(ctx, JobSpec{Circuit: "s298", Random: 20, Seed: 3})
	if err != nil {
		t.Fatalf("submit with header: %v", err)
	}
	if v.ID != "trace-abc.1" {
		t.Fatalf("job ID = %q, want the supplied correlation ID", v.ID)
	}
	fv := waitTerminal(t, cl, v.ID)
	if fv.Status != StatusDone {
		t.Fatalf("correlated job status %s, error %q", fv.Status, fv.Error)
	}

	// Raw request: the server must echo the ID back as a header too.
	body, _ := json.Marshal(JobSpec{Circuit: "s298", Random: 20, Seed: 4})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		cl.BaseURL+"/api/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(JobIDHeader, "trace-abc.2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("raw submit: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(JobIDHeader); got != "trace-abc.2" {
		t.Fatalf("response %s = %q, want echo of request ID", JobIDHeader, got)
	}

	// Reusing a live ID is a conflict, not a silent overwrite.
	_, err = cl.Submit(ctx, JobSpec{Circuit: "s298", Random: 20, Seed: 5})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate ID: got %v, want 409", err)
	}

	// Malformed IDs are rejected up front.
	bctx := obs.WithJobID(ctxT(t), "-leading-dash")
	_, err = cl.Submit(bctx, JobSpec{Circuit: "s298", Random: 20})
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid ID: got %v, want 400", err)
	}
}

// TestJobIDUniqueUnderConcurrentSubmit hammers submission from 16
// goroutines and checks every minted ID is distinct — including against
// a client-supplied ID shaped like the server's own "j<seq>" names.
func TestJobIDUniqueUnderConcurrentSubmit(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 4, QueueDepth: 32})
	ctx := ctxT(t)

	// Squat on "j3" so the mint loop has to skip it.
	if _, err := cl.Submit(obs.WithJobID(ctx, "j3"), JobSpec{Circuit: "s298", Random: 10}); err != nil {
		t.Fatalf("squat submit: %v", err)
	}

	const n = 16
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v, err := cl.Submit(ctx, JobSpec{Circuit: "s298", Random: 10, Seed: seed})
			if err != nil {
				t.Errorf("concurrent submit: %v", err)
				return
			}
			ids <- v.ID
		}(int64(i + 1))
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{"j3": true}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job ID %q", id)
		}
		seen[id] = true
	}
}

// TestObservabilityDoesNotChangeDetections is the no-Heisenberg gate:
// attaching a logger and flight recorder must not perturb simulation
// results. The same spec runs against an instrumented server and a bare
// one; detections must match exactly.
func TestObservabilityDoesNotChangeDetections(t *testing.T) {
	ob := &obs.Observer{Metrics: obs.NewRegistry()}
	lg := obs.NewLogger(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, instrumented := startServer(t, Config{
		Workers: 2, Obs: ob, Log: lg, FlightEvents: 64,
	})
	_, bare := startServer(t, Config{Workers: 2})
	ctx := ctxT(t)

	for _, engine := range []string{"csim-P", "csim-grid"} {
		spec := JobSpec{Circuit: "s298", Engine: engine, Random: 40, Seed: 7}
		a, err := instrumented.Run(ctx, spec, time.Millisecond)
		if err != nil {
			t.Fatalf("%s instrumented: %v", engine, err)
		}
		b, err := bare.Run(ctx, spec, time.Millisecond)
		if err != nil {
			t.Fatalf("%s bare: %v", engine, err)
		}
		if a.Result == nil || b.Result == nil {
			t.Fatalf("%s: nil result (instrumented %v, bare %v)", engine, a.Result, b.Result)
		}
		if a.Result.Detected != b.Result.Detected || a.Result.PotOnly != b.Result.PotOnly {
			t.Errorf("%s: instrumented det/pot %d/%d != bare %d/%d",
				engine, a.Result.Detected, a.Result.PotOnly, b.Result.Detected, b.Result.PotOnly)
		}
	}
}

// TestTimedOutJobPostmortemHasDecide forces an auto-planned grid job to
// time out and checks its /debug postmortem still carries the
// scheduler's K×W verdict: Decide runs (and is recorded) before the
// engine's cancellation check, so even a job that never simulates a
// cycle explains what shape it would have run.
func TestTimedOutJobPostmortemHasDecide(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	spec := JobSpec{Circuit: "s5378", Engine: "csim-grid", Random: 200000, Seed: 1, TimeoutMS: 1}
	v, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fv := waitTerminal(t, cl, v.ID)
	if fv.Status != StatusFailed || !strings.Contains(fv.Error, "timeout") {
		t.Fatalf("job status %s, error %q, want timeout failure", fv.Status, fv.Error)
	}

	pm, err := cl.Debug(ctx, v.ID)
	if err != nil {
		t.Fatalf("debug: %v", err)
	}
	if pm.JobID != v.ID || pm.Status != StatusFailed {
		t.Fatalf("postmortem job %q status %s, want %q failed", pm.JobID, pm.Status, v.ID)
	}
	var kinds []string
	var decide string
	for _, ev := range pm.Events {
		kinds = append(kinds, ev.Kind)
		if ev.Kind == "decide" {
			decide = ev.Detail
		}
	}
	for _, want := range []string{"admitted", "queued", "run_start", "decide", "finish"} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("postmortem missing %q event (got %v)", want, kinds)
		}
	}
	if decide != "" && !strings.Contains(decide, "plan") {
		t.Errorf("decide event %q does not explain the plan", decide)
	}
}

// TestDebugRouteErrors pins the /debug endpoint's failure modes.
func TestDebugRouteErrors(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	var ae *APIError
	if _, err := cl.Debug(ctx, "nope"); !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("debug of unknown job: got %v, want 404", err)
	}
	v, err := cl.Submit(ctx, JobSpec{Circuit: "s298", Random: 10})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, cl, v.ID)
	req, _ := http.NewRequestWithContext(ctx, http.MethodDelete, cl.BaseURL+"/api/v1/jobs/"+v.ID+"/debug", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("raw delete: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /debug: status %d, want 405", resp.StatusCode)
	}
}

// TestLogLineCarriesCorrelation runs one correlated job with a capturing
// JSON handler and checks the admit and run records carry the job ID,
// phase and engine keys the schema promises.
func TestLogLineCarriesCorrelation(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lg := obs.NewLogger(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &buf},
		&slog.HandlerOptions{Level: slog.LevelDebug}))
	_, cl := startServer(t, Config{Workers: 1, Log: lg})
	ctx := obs.WithJobID(ctxT(t), "corr-77")
	v, err := cl.Submit(ctx, JobSpec{Circuit: "s298", Engine: "csim-grid", Random: 40, Seed: 7})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, cl, v.ID)

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	var sawAdmit, sawDecide bool
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == "job admitted" && rec["job_id"] == "corr-77" && rec["engine"] == "csim-grid" {
			sawAdmit = true
		}
		if rec["msg"] == "sched decide" && rec["job_id"] == "corr-77" && rec["phase"] == "decide" {
			sawDecide = true
		}
	}
	if !sawAdmit {
		t.Errorf("no admit record with job_id/engine attrs in %d lines", len(lines))
	}
	if !sawDecide {
		t.Errorf("no correlated decide record in %d lines", len(lines))
	}
}

// lockedWriter serializes handler writes so the test can read the buffer
// without racing the server's goroutines.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
