package service

import "sync"

// jobQueue is the bounded admission queue. It is a mutex/cond FIFO
// rather than a channel so that cancelling a queued job frees its slot
// immediately — with a buffered channel the slot would stay occupied
// until a worker drained the tombstone, and admission control would
// reject submissions the server actually has room for. A failed push
// is answered with 429 plus a Retry-After hint derived from the
// observed p90 of the job run-time histogram (Server.retryAfter); an
// empty histogram falls back to a 1s hint.
type jobQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	//simlint:guarded_by(mu)
	items []*job
	cap   int
	//simlint:guarded_by(mu)
	closed bool
}

func newJobQueue(capacity int) *jobQueue {
	if capacity < 1 {
		capacity = 1
	}
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits j, reporting false when the queue is full or closed.
func (q *jobQueue) push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return true
}

// pop blocks until a job is available or the queue is closed and empty;
// ok is false only on that terminal drain.
func (q *jobQueue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j = q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return j, true
}

// remove deletes a queued job by ID, freeing its admission slot; false
// when the job is no longer queued (already popped or never admitted).
func (q *jobQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.id == id {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			return true
		}
	}
	return false
}

// close stops admissions and wakes every blocked pop so workers can
// drain the remaining items and exit.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth reports the queued-job count.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
