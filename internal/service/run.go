package service

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/compiled"
	"repro/internal/csim"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/proofs"
	"repro/internal/serial"
	"repro/internal/vectors"
)

// BuildVectors materializes the job's vector spec against the compiled
// circuit. Inline vector parse errors are user errors (400 at admission,
// where this is first called). The distributed coordinator calls it too,
// to size the vector axis before planning a K×W split.
func BuildVectors(spec *JobSpec, cc *Compiled) (*vectors.Set, error) {
	numPIs := len(cc.Circuit.PIs)
	if spec.Vectors != "" {
		vs, err := vectors.ParseString(spec.Vectors, numPIs)
		if err != nil {
			return nil, err
		}
		if vs.Len() == 0 {
			return nil, fmt.Errorf("vectors: empty vector set")
		}
		return vs, nil
	}
	return vectors.Random(cc.Circuit, spec.Random, spec.Seed), nil
}

// execute runs one admitted job's engine under ctx and returns the
// result view. Cancellation granularity: the csim variants check the
// context between clock cycles; csim-P, csim-V2, csim-grid, csim-C,
// PROOFS and serial check it only before starting (a cancelled running
// job of those engines finishes its simulation, then reports cancelled).
func execute(ctx context.Context, spec *JobSpec, cc *Compiled, ob *obs.Observer, prefix string, workersDefault int) (*ResultView, error) {
	u, err := cc.Universe(spec.Model)
	if err != nil {
		return nil, err
	}
	vs, err := BuildVectors(spec, cc)
	if err != nil {
		return nil, err
	}
	// For the scheduler-planned grid, decide (and record) the K×W
	// verdict before the cancellation check below: a job that times out
	// before its engine starts still carries the decision in its
	// postmortem. Explain is pure, so the pinned plan used later is the
	// exact plan SimulateAuto would have chosen.
	var autoPlan *parallel.Plan
	if spec.Engine == "csim-grid" && spec.FaultShards == 0 && spec.Workers <= 0 && spec.Windows <= 0 {
		sh := parallel.JobShape{
			Gates:    len(cc.Circuit.Gates),
			Faults:   u.NumFaults(),
			Vectors:  vs.Len(),
			MaxProcs: workersDefault,
		}
		plan, why := parallel.Explain(sh)
		autoPlan = &plan
		ob.Recorder().Recordf("decide", "plan %s (%s)", plan, why)
		ob.Logger().Info("sched decide",
			slog.String("phase", "decide"),
			slog.Int("fault_shards", plan.FaultShards),
			slog.Int("windows", plan.Windows),
			slog.String("why", why))
		if reg := ob.Registry(); reg != nil {
			reg.Gauge("sched.fault_shards").Set(int64(plan.FaultShards))
			reg.Gauge("sched.windows").Set(int64(plan.Windows))
			reg.Gauge("sched.max_procs").Set(int64(sh.MaxProcs))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rv := &ResultView{
		Engine:   spec.Engine,
		Circuit:  cc.Circuit.Name,
		Model:    spec.Model,
		Patterns: vs.Len(),
		Faults:   u.NumFaults(),
	}
	start := time.Now()
	var res *faults.Result
	switch spec.Engine {
	case "serial":
		res = serial.Simulate(u, vs)
	case "PROOFS":
		sim, err := proofs.New(u)
		if err != nil {
			return nil, err
		}
		res = sim.Run(vs)
		rv.Stats.MemBytes = sim.Stats().MemBytes
	case "csim-C":
		sim, err := compiled.NewWith(cc.Program(), u)
		if err != nil {
			return nil, err
		}
		res = sim.Run(vs)
		fillStats(rv, sim.Stats())
	case "csim-P":
		workers := spec.Workers
		if workers <= 0 {
			workers = workersDefault
		}
		cfg := csim.MV()
		cfg.Plan, err = cc.Plan(cfg)
		if err != nil {
			return nil, err
		}
		opt := parallel.Options{Workers: workers, Config: cfg, Obs: ob}
		rv.Workers = opt.EffectiveWorkers(u.NumFaults())
		var st csim.Stats
		res, st, err = parallel.Simulate(u, vs, opt)
		if err != nil {
			return nil, err
		}
		fillStats(rv, st)
	case "csim-V2":
		windows := spec.Windows
		if windows <= 0 {
			windows = workersDefault
		}
		cfg := csim.MV()
		cfg.Plan, err = cc.Plan(cfg)
		if err != nil {
			return nil, err
		}
		opt := parallel.VOptions{Windows: windows, Config: cfg, Obs: ob}
		rv.Windows = opt.EffectiveWindows(vs.Len())
		var st csim.Stats
		res, st, err = parallel.SimulateVectorSharded(u, vs, opt)
		if err != nil {
			return nil, err
		}
		fillStats(rv, st)
	case "csim-grid":
		cfg := csim.MV()
		cfg.Plan, err = cc.Plan(cfg)
		if err != nil {
			return nil, err
		}
		var st csim.Stats
		if spec.FaultShards > 0 {
			// One fault-partition × vector-window slice of a distributed
			// grid: exactly what a coordinator dispatches to this worker.
			windows := spec.Windows
			if windows <= 0 {
				windows = 1
			}
			res, st, err = parallel.SimulateShard(u, vs, parallel.ShardOptions{
				Shard: spec.FaultShard, Of: spec.FaultShards,
				Windows: windows, Config: cfg, Obs: ob,
			})
			if err != nil {
				return nil, err
			}
			rv.Workers, rv.Windows = spec.FaultShards, windows
		} else if autoPlan != nil {
			// Neither axis pinned: run the shape the scheduler chose (and
			// recorded) above. SimulateGrid with the pinned plan is what
			// SimulateAuto would have run.
			res, st, err = parallel.SimulateGrid(u, vs, parallel.GridOptions{
				FaultShards: autoPlan.FaultShards, Windows: autoPlan.Windows,
				Config: cfg, Obs: ob,
			})
			if err != nil {
				return nil, err
			}
			rv.Workers, rv.Windows = autoPlan.FaultShards, autoPlan.Windows
		} else {
			opt := parallel.GridOptions{
				FaultShards: spec.Workers, Windows: spec.Windows,
				Config: cfg, Obs: ob,
			}
			rv.Workers, rv.Windows = opt.EffectiveShape(u.NumFaults(), vs.Len())
			res, st, err = parallel.SimulateGrid(u, vs, opt)
			if err != nil {
				return nil, err
			}
		}
		fillStats(rv, st)
	default:
		cfg := engineConfig(spec.Engine)
		cfg.Plan, err = cc.Plan(cfg)
		if err != nil {
			return nil, err
		}
		cfg.Obs = ob
		cfg.ObsPrefix = prefix
		sim, err := csim.New(u, cfg)
		if err != nil {
			return nil, err
		}
		// Run cycle by cycle so cancellation and the per-job timeout take
		// effect mid-simulation instead of after the whole vector set.
		for _, vec := range vs.Vecs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sim.Cycle(vec)
		}
		res = sim.Result()
		fillStats(rv, sim.Stats())
	}
	rv.RunNS = time.Since(start).Nanoseconds()
	rv.Detected = res.NumDet
	rv.PotOnly = res.NumPotOnly()
	rv.Coverage = res.Coverage()
	if spec.ReturnDetections {
		rv.Detections = NewDetectionsView(res)
	}
	// A cancellation that raced the final cycles still wins: the client
	// asked for the job to stop, so it reports cancelled, not done.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rv, nil
}

// engineConfig maps an engine name to its csim configuration.
func engineConfig(engine string) csim.Config {
	switch engine {
	case "csim-V":
		return csim.V()
	case "csim-M":
		return csim.M()
	case "csim-MV":
		return csim.MV()
	case "csim-MV-eagerdrop":
		cfg := csim.MV()
		cfg.EagerDrop = true
		return cfg
	case "csim-MV-reconvergent":
		cfg := csim.MV()
		cfg.ReconvergentMacros = true
		return cfg
	default:
		return csim.Config{}
	}
}

// fillStats copies the engine counters into the view.
func fillStats(rv *ResultView, st csim.Stats) {
	rv.Stats = NewStatsView(st)
}
