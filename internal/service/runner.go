package service

import (
	"context"

	"repro/internal/obs"
)

// RunRequest carries everything an admitted job needs to execute: the
// normalized spec, the circuit pinned at admission, and the per-job
// observability hooks the server wired up for the worker slot.
type RunRequest struct {
	// ID is the job's correlation ID (also in the context via
	// obs.WithJobID).
	ID string
	// Spec is the normalized job spec.
	Spec *JobSpec
	// CC is the compiled circuit, pinned at admission.
	CC *Compiled
	// Obs is the per-job observability bundle (shared metrics registry,
	// per-job logger and flight recorder).
	Obs *obs.Observer
	// ObsPrefix namespaces engine metrics per worker slot.
	ObsPrefix string
	// EngineWorkers is the server's default intra-job parallelism.
	EngineWorkers int
	// SetPhase publishes a coordinator-visible phase string on the job
	// (surfaced as JobView.DistPhase). Never nil.
	SetPhase func(phase string)
}

// JobRunner executes one admitted job. The default runner calls the
// in-process engines; a distributed coordinator substitutes itself via
// Config.Runner to fan the job out to a worker fleet while reusing the
// server's admission queue, retention, correlation and job API
// unchanged. Implementations must honor ctx cancellation and are
// called concurrently, one goroutine per busy worker slot.
type JobRunner interface {
	// RunJob executes one admitted job to a result view or an error;
	// context cancellation must abort the run.
	RunJob(ctx context.Context, req *RunRequest) (*ResultView, error)
}

// localRunner is the default JobRunner: the in-process engine switch.
type localRunner struct{}

// RunJob executes the job with the repository's local engines.
func (localRunner) RunJob(ctx context.Context, req *RunRequest) (*ResultView, error) {
	return execute(ctx, req.Spec, req.CC, req.Obs, req.ObsPrefix, req.EngineWorkers)
}
