package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobid"
	"repro/internal/obs"
)

// Config tunes a Server. The zero value gets sensible defaults from
// Start.
type Config struct {
	// Addr is the listen address (":8416" style; ":0" picks a free port).
	Addr string
	// Workers is the worker-pool size (default runtime.NumCPU).
	Workers int
	// QueueDepth bounds the admission queue (default 256). In-flight
	// capacity — admitted but unfinished jobs — is Workers + QueueDepth.
	QueueDepth int
	// MaxInlineBytes bounds an inline .bench or vectors body (default
	// 4 MiB); an oversized submission is answered with 413.
	MaxInlineBytes int64
	// DefaultTimeout bounds a job's run time when the spec names none
	// (default 5m); MaxTimeout caps spec-requested timeouts (default
	// 30m).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-job timeout a spec may request.
	MaxTimeout time.Duration
	// CacheSize bounds the compiled-circuit cache (default 64 circuits).
	CacheSize int
	// Retained bounds finished jobs kept for polling (default 8192);
	// beyond it the oldest finished jobs are evicted.
	Retained int
	// EngineWorkers is the csim-P partition count when a spec leaves
	// Workers at 0 (default runtime.NumCPU).
	EngineWorkers int
	// Obs is the observability bundle. Nil runs with a fresh registry
	// (metrics always on — the service serves them) and no tracer.
	Obs *obs.Observer
	// Log is the structured logger; nil disables service logging at the
	// zero-cost nil fast path.
	Log *obs.Logger
	// FlightEvents bounds each job's flight-recorder ring (default
	// obs.DefaultFlightEvents = 256).
	FlightEvents int
	// SLOTarget is the default per-engine run-latency objective the
	// burn-rate gauges measure against (default 5s).
	SLOTarget time.Duration
	// SLOByEngine overrides SLOTarget for individual engines.
	SLOByEngine map[string]time.Duration
	// Runner substitutes the job execution strategy. Nil runs jobs on
	// the in-process engines; a distributed coordinator injects itself
	// here to fan admitted jobs out to a worker fleet.
	Runner JobRunner
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8416"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxInlineBytes <= 0 {
		c.MaxInlineBytes = 4 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.Retained <= 0 {
		c.Retained = 8192
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = runtime.NumCPU()
	}
	if c.Obs == nil {
		c.Obs = &obs.Observer{Metrics: obs.NewRegistry()}
	}
	if c.Obs.Metrics == nil {
		c.Obs.Metrics = obs.NewRegistry()
	}
	if c.Log == nil {
		// A logger attached to the Observer bundle works too.
		c.Log = c.Obs.Log
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = obs.DefaultFlightEvents
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 5 * time.Second
	}
	return c
}

// Server is the fault-simulation service: HTTP admission in front of a
// bounded queue and a worker pool over the repository's engines, with a
// compiled-circuit cache and full metrics. Create with New, run with
// Start, stop with Drain (graceful) or Close (hard).
type Server struct {
	cfg   Config
	ob    *obs.Observer
	log   *obs.Logger
	slo    *sloTracker
	cache  *Cache
	q      *jobQueue
	runner JobRunner

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job IDs, oldest first (retention eviction)
	seq      int64

	draining atomic.Bool
	stopped  atomic.Bool
	// cancelWorkers tears down the worker base context (Close; Drain
	// after its grace period).
	cancelWorkers func()
	workerWG      sync.WaitGroup
	httpSrv       *http.Server
	ln            net.Listener

	mQueueDepth *obs.Gauge
	mInflight   *obs.Gauge
	mSubmitted  *obs.Counter
	mRejected   *obs.Counter
	mCompleted  *obs.Counter
	mFailed     *obs.Counter
	mCancelled  *obs.Counter
	hQueueNS    *obs.Histogram
	hRunNS      *obs.Histogram
	hTotalNS    *obs.Histogram
}

// latencyBuckets is the job-latency histogram layout: 16 µs to ~17 s,
// ×4 per bucket.
var latencyBuckets = obs.ExpBuckets(16384, 4, 11)

// New builds a server; Start brings it up.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Obs.Metrics
	s := &Server{
		cfg:   cfg,
		ob:    cfg.Obs,
		log:   cfg.Log,
		slo:   newSLOTracker(reg, cfg.SLOTarget, cfg.SLOByEngine),
		cache: NewCache(cfg.CacheSize, reg),
		q:     newJobQueue(cfg.QueueDepth),
		jobs:  map[string]*job{},

		mQueueDepth: reg.Gauge("serve.queue_depth"),
		mInflight:   reg.Gauge("serve.inflight"),
		mSubmitted:  reg.Counter("serve.jobs_submitted"),
		mRejected:   reg.Counter("serve.jobs_rejected"),
		mCompleted:  reg.Counter("serve.jobs_completed"),
		mFailed:     reg.Counter("serve.jobs_failed"),
		mCancelled:  reg.Counter("serve.jobs_cancelled"),
		hQueueNS:    reg.Histogram("serve.job_queue_ns", latencyBuckets),
		hRunNS:      reg.Histogram("serve.job_run_ns", latencyBuckets),
		hTotalNS:    reg.Histogram("serve.job_total_ns", latencyBuckets),
	}
	s.runner = cfg.Runner
	if s.runner == nil {
		s.runner = localRunner{}
	}
	reg.Gauge("serve.workers").Set(int64(cfg.Workers))
	reg.Gauge("serve.queue_capacity").Set(int64(cfg.QueueDepth))
	return s
}

// Start binds the listener, launches the worker pool, and serves HTTP in
// the background. It returns once the server accepts connections.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	ctx, cancel := context.WithCancel(context.Background())
	s.cancelWorkers = cancel
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go func(slot int) {
			defer s.workerWG.Done()
			s.workerLoop(ctx, slot)
		}(i)
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	//simlint:ignore goroutinelife the accept pump's lifetime is the listener's; Stop closes it via httpSrv.Shutdown
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Handler builds the service's HTTP mux: the job API plus the
// observability endpoints (/metricsz, /debug/vars, /debug/pprof) and the
// health probes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	obs.Register(mux, s.ob.Metrics)
	return mux
}

// Drain gracefully shuts the server down: admissions stop (submit → 503,
// /readyz → 503), every already-admitted job — queued or running — is
// finished, then the workers and the HTTP listener stop. If ctx expires
// first, outstanding jobs are cancelled and Drain returns ctx's error
// after the workers exit.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.q.close()
	s.log.Info("server draining",
		slog.String("phase", "drain"),
		slog.Int("queued", s.q.depth()))

	done := make(chan struct{})
	go func() { s.workerWG.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.log.Warn("drain grace period expired, cancelling outstanding jobs",
			slog.String("phase", "drain"))
		s.cancelOutstanding()
		s.cancelWorkers()
		<-done
	}
	s.shutdownHTTP()
	s.stopped.Store(true)
	s.log.Info("server drained", slog.String("phase", "drain"))
	return err
}

// Close hard-stops the server: cancels every job, closes the queue and
// the listener, and waits for the workers.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.q.close()
	s.cancelOutstanding()
	if s.cancelWorkers != nil {
		s.cancelWorkers()
	}
	s.workerWG.Wait()
	s.shutdownHTTP()
	s.stopped.Store(true)
	return nil
}

func (s *Server) shutdownHTTP() {
	if s.httpSrv == nil {
		return
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.httpSrv.Shutdown(sctx)
}

// cancelOutstanding cancels every live job (queue tombstones included).
func (s *Server) cancelOutstanding() {
	now := time.Now()
	for _, j := range s.liveJobs() {
		s.q.remove(j.id)
		j.requestCancel(now)
	}
}

// liveJobs snapshots the non-terminal jobs.
func (s *Server) liveJobs() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*job
	for _, j := range s.jobs {
		if !j.currentStatus().Terminal() {
			out = append(out, j)
		}
	}
	return out
}

// workerLoop pops and executes jobs until the queue closes.
func (s *Server) workerLoop(ctx context.Context, slot int) {
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.mQueueDepth.Set(int64(s.q.depth()))
		s.runJob(ctx, slot, j)
	}
}

// runJob executes one admitted job on a worker slot.
func (s *Server) runJob(ctx context.Context, slot int, j *job) {
	now := time.Now()
	timeout := s.cfg.DefaultTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	// The correlation ID rides the job context so anything downstream
	// (engine logs, a future coordinator fan-out) can recover it.
	jctx, cancel := context.WithTimeout(obs.WithJobID(ctx, j.id), timeout)
	defer cancel()
	if !j.setRunning(now, cancel) {
		// Cancelled while queued and already finished; nothing to run.
		return
	}
	s.hQueueNS.Observe(now.Sub(j.submitted).Nanoseconds())
	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)

	jlog := s.log.With(
		slog.String("job_id", j.id),
		slog.String("engine", j.spec.Engine),
		slog.String("circuit", circuitLabel(&j.spec)))
	j.flight.Recordf("run_start", "worker slot %d picked the job up after %s queued",
		slot, now.Sub(j.submitted).Round(time.Microsecond))
	jlog.Info("job running",
		slog.String("phase", "run"),
		slog.Int("worker_slot", slot),
		slog.Duration("queued_for", now.Sub(j.submitted)))

	// The submit handler compiled the circuit at admission and pinned it
	// on the job, so cache eviction between admission and execution can't
	// fail the run.
	cc := j.cc

	// One engine-metrics namespace and one trace lane per worker slot:
	// bounded registry growth no matter how many jobs run. The logger and
	// flight recorder are per-job, so engine shard events correlate.
	prefix := fmt.Sprintf("serve.worker%d.", slot)
	engineOb := &obs.Observer{
		Metrics: s.ob.Metrics,
		Tracer:  s.ob.Tracer,
		Faults:  s.ob.Faults,
		Log:     jlog,
		Flight:  j.flight,
	}
	if j.spec.Engine == "csim-P" {
		// csim-P publishes under its own fixed worker prefixes, which
		// concurrent jobs would trample; keep its registry (and the
		// fault log, as before) off — tracer, logger and flight stay.
		engineOb.Metrics = nil
		engineOb.Faults = nil
	}
	sp := s.ob.SpanTID(fmt.Sprintf("%s/%s/%s", j.id, j.spec.Engine, circuitLabel(&j.spec)), slot+1)
	rv, err := s.runner.RunJob(jctx, &RunRequest{
		ID: j.id, Spec: &j.spec, CC: cc,
		Obs: engineOb, ObsPrefix: prefix,
		EngineWorkers: s.cfg.EngineWorkers,
		SetPhase:      j.setDistPhase,
	})
	sp.End()

	finished := time.Now()
	runNS := finished.Sub(now).Nanoseconds()
	s.hRunNS.Observe(runNS)
	s.hTotalNS.Observe(finished.Sub(j.submitted).Nanoseconds())
	s.slo.observe(j.spec.Engine, runNS)
	switch {
	case err == nil:
		rv.CacheHit = j.cacheHit
		j.flight.Recordf("finish", "done: %d/%d detected in %s",
			rv.Detected, rv.Faults, time.Duration(rv.RunNS).Round(time.Microsecond))
		s.finishJob(j, StatusDone, rv, "")
		jlog.Info("job done",
			slog.String("phase", "finish"),
			slog.Int("detected", rv.Detected),
			slog.Int("faults", rv.Faults),
			slog.Int64("run_ns", rv.RunNS),
			slog.Bool("cache_hit", rv.CacheHit))
	case errors.Is(err, context.Canceled):
		j.flight.Record("finish", "cancelled while running")
		s.finishJob(j, StatusCancelled, nil, "cancelled while running")
		s.dumpPostmortem(jlog, j)
	case errors.Is(err, context.DeadlineExceeded):
		j.flight.Recordf("finish", "timeout after %s", timeout)
		s.finishJob(j, StatusFailed, nil, fmt.Sprintf("timeout after %s", timeout))
		s.dumpPostmortem(jlog, j)
	default:
		j.flight.Recordf("finish", "failed: %v", err)
		s.finishJob(j, StatusFailed, nil, err.Error())
		s.dumpPostmortem(jlog, j)
	}
}

// dumpPostmortem logs a failed/timed-out/cancelled job's flight
// recorder as one structured record — the same payload GET
// /api/v1/jobs/{id}/debug serves, pushed into the log stream so the
// evidence survives job retention eviction.
func (s *Server) dumpPostmortem(jlog *obs.Logger, j *job) {
	if jlog == nil {
		return
	}
	pm := j.postmortem()
	jlog.Error("job postmortem",
		slog.String("phase", "postmortem"),
		slog.String("status", string(pm.Status)),
		slog.String("error", pm.Error),
		slog.Int64("dropped_events", pm.DroppedEvents),
		slog.Any("events", pm.Events))
}

// finishJob records the terminal state, bumps the status counters, and
// applies the retention bound.
func (s *Server) finishJob(j *job, status Status, rv *ResultView, errMsg string) {
	j.finish(status, time.Now(), rv, errMsg)
	switch j.currentStatus() {
	case StatusDone:
		s.mCompleted.Inc()
	case StatusFailed:
		s.mFailed.Inc()
	case StatusCancelled:
		s.mCancelled.Inc()
	}
	s.mu.Lock()
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.Retained {
		evict := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, evict)
	}
	s.mu.Unlock()
}

func circuitLabel(spec *JobSpec) string {
	if spec.Circuit != "" {
		return spec.Circuit
	}
	return spec.BenchName
}

// handleJobs serves POST /api/v1/jobs (submit) and GET /api/v1/jobs
// (list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.handleList(w)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use POST to submit or GET to list", nil)
	}
}

// handleSubmit admits one job: decode (oversized body → 413), validate
// (→ 400), compile through the cache (malformed netlist → structured
// 400), then enqueue (full → 429 + Retry-After).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining", nil)
		return
	}
	// The JSON framing adds overhead beyond the inline netlist itself;
	// allow a fixed envelope on top of the configured inline bound.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxInlineBytes+64<<10)
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), nil)
			return
		}
		writeError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error(), nil)
		return
	}
	if int64(len(spec.Bench)) > s.cfg.MaxInlineBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("inline netlist is %d bytes, limit %d", len(spec.Bench), s.cfg.MaxInlineBytes), nil)
		return
	}
	if int64(len(spec.Vectors)) > s.cfg.MaxInlineBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("inline vectors are %d bytes, limit %d", len(spec.Vectors), s.cfg.MaxInlineBytes), nil)
		return
	}
	if err := spec.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}

	// Compile (or hit the cache) at admission so malformed netlists are
	// rejected with diagnostics immediately instead of failing the job
	// later, and so the queue only ever holds runnable work.
	sp := s.ob.Span("compile/" + circuitLabel(&spec))
	cc, hit, err := s.cache.Lookup(&spec)
	sp.End()
	if err != nil {
		var ce *CompileError
		if errors.As(err, &ce) {
			writeError(w, http.StatusBadRequest, ce.Msg, ce.Problems)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	// Vector validation needs the circuit's PI count, so it happens
	// post-compile; inline vector text errors are 400s too.
	if _, err := BuildVectors(&spec, cc); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}

	// Correlation ID: accept one from the X-Csim-Job-Id header (a
	// coordinator fanning a job out names it once), else mint "j<seq>".
	// The admitted ID is echoed back in the same header and in the body.
	reqID := strings.TrimSpace(r.Header.Get(JobIDHeader))
	if reqID != "" && !jobid.Valid(reqID) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("invalid %s %q: want 1-128 chars, alphanumeric then [alnum._-]", JobIDHeader, reqID), nil)
		return
	}
	s.mu.Lock()
	id := reqID
	if id != "" {
		if _, exists := s.jobs[id]; exists {
			s.mu.Unlock()
			writeError(w, http.StatusConflict,
				fmt.Sprintf("job %q already exists", id), nil)
			return
		}
	} else {
		// Client-supplied IDs may collide with the "j<seq>" spelling, so
		// minting skips over taken names.
		for {
			s.seq++
			id = jobid.Sequential(s.seq)
			if _, exists := s.jobs[id]; !exists {
				break
			}
		}
	}
	j := newJob(id, spec, time.Now())
	j.cc, j.cacheHit = cc, hit
	j.flight = obs.NewFlightRecorder(s.cfg.FlightEvents)
	s.jobs[id] = j
	s.mu.Unlock()

	cacheVerdict := "miss"
	if hit {
		cacheVerdict = "hit"
	}
	j.flight.Recordf("admitted", "engine %s, circuit %s, model %s", spec.Engine, circuitLabel(&spec), spec.Model)
	j.flight.Recordf("cache", "compiled-circuit cache %s for %s", cacheVerdict, circuitLabel(&spec))

	w.Header().Set(JobIDHeader, id)
	if !s.q.push(j) {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.mRejected.Inc()
		retry := s.retryAfter()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		s.log.Warn("job rejected",
			slog.String("job_id", id),
			slog.String("phase", "admit"),
			slog.String("engine", spec.Engine),
			slog.Int("queue_depth", s.q.depth()),
			slog.Int("retry_after_s", retry))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full (%d queued); retry after %ds", s.q.depth(), retry), nil)
		return
	}
	s.mSubmitted.Inc()
	s.mQueueDepth.Set(int64(s.q.depth()))
	j.flight.Recordf("queued", "position at enqueue %d", s.q.depth())
	s.log.Info("job admitted",
		slog.String("job_id", id),
		slog.String("phase", "admit"),
		slog.String("engine", spec.Engine),
		slog.String("circuit", circuitLabel(&spec)),
		slog.String("model", spec.Model),
		slog.Bool("cache_hit", hit))
	writeJSON(w, http.StatusAccepted, j.view())
}

// retryAfter estimates, in whole seconds (>= 1, capped at 60), when a
// queue slot should free up: one queue's worth of the observed p90 job
// run time spread over the worker pool. Before any job has completed
// the histogram is empty and the estimate falls back to 1s.
func (s *Server) retryAfter() int {
	if s.hRunNS.Count() == 0 {
		return 1
	}
	p90 := s.hRunNS.Quantile(0.90)
	if p90 <= 0 {
		return 1
	}
	est := time.Duration(p90) * time.Duration(s.cfg.QueueDepth) / time.Duration(s.cfg.Workers) / 4
	secs := int(est / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// handleList serves job summaries sorted by ID.
func (s *Server) handleList(w http.ResponseWriter) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobid.Less(jobs[i].id, jobs[k].id) })
	for _, j := range jobs {
		views = append(views, j.view())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// handleJob serves GET (status) and DELETE (cancel) on
// /api/v1/jobs/<id>, and GET /api/v1/jobs/<id>/debug (the
// flight-recorder postmortem).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "debug") {
		writeError(w, http.StatusNotFound, "no such job", nil)
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such job %q", id), nil)
		return
	}
	w.Header().Set(JobIDHeader, id)
	if sub == "debug" {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET for the postmortem", nil)
			return
		}
		writeJSON(w, http.StatusOK, j.postmortem())
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, j.view())
	case http.MethodDelete:
		s.cancelJob(w, j)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET for status or DELETE to cancel", nil)
	}
}

// cancelJob cancels a live job. A queued job is removed from the queue
// first — freeing its admission slot immediately — then finished as
// cancelled; a running job gets its context cancelled and reports
// cancelled when the engine notices.
func (s *Server) cancelJob(w http.ResponseWriter, j *job) {
	s.log.Info("job cancel requested",
		slog.String("job_id", j.id),
		slog.String("phase", "cancel"),
		slog.String("engine", j.spec.Engine))
	if s.q.remove(j.id) {
		j.requestCancel(time.Now())
		s.mCancelled.Inc()
		s.mQueueDepth.Set(int64(s.q.depth()))
		s.mu.Lock()
		s.finished = append(s.finished, j.id)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	j.requestCancel(time.Now())
	writeJSON(w, http.StatusOK, j.view())
}

// errorBody is the structured error response.
type errorBody struct {
	// Error is the one-line summary.
	Error string `json:"error"`
	// Problems carries individual diagnostics (netcheck output) when the
	// failure is a malformed netlist.
	Problems []string `json:"problems,omitempty"`
}

func writeError(w http.ResponseWriter, code int, msg string, problems []string) {
	writeJSON(w, code, errorBody{Error: msg, Problems: problems})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
